file(REMOVE_RECURSE
  "CMakeFiles/fleet_provisioning.dir/fleet_provisioning.cpp.o"
  "CMakeFiles/fleet_provisioning.dir/fleet_provisioning.cpp.o.d"
  "fleet_provisioning"
  "fleet_provisioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_provisioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
