# Empty dependencies file for fleet_provisioning.
# This may be replaced when dependencies are built.
