# Empty compiler generated dependencies file for trng_service.
# This may be replaced when dependencies are built.
