file(REMOVE_RECURSE
  "CMakeFiles/trng_service.dir/trng_service.cpp.o"
  "CMakeFiles/trng_service.dir/trng_service.cpp.o.d"
  "trng_service"
  "trng_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trng_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
