# Empty dependencies file for bench_puf_quality.
# This may be replaced when dependencies are built.
