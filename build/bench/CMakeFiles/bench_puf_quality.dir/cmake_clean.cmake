file(REMOVE_RECURSE
  "CMakeFiles/bench_puf_quality.dir/bench_puf_quality.cpp.o"
  "CMakeFiles/bench_puf_quality.dir/bench_puf_quality.cpp.o.d"
  "bench_puf_quality"
  "bench_puf_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_puf_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
