# Empty dependencies file for bench_system_level.
# This may be replaced when dependencies are built.
