file(REMOVE_RECURSE
  "CMakeFiles/bench_system_level.dir/bench_system_level.cpp.o"
  "CMakeFiles/bench_system_level.dir/bench_system_level.cpp.o.d"
  "bench_system_level"
  "bench_system_level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_system_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
