file(REMOVE_RECURSE
  "CMakeFiles/bench_ml_attack.dir/bench_ml_attack.cpp.o"
  "CMakeFiles/bench_ml_attack.dir/bench_ml_attack.cpp.o.d"
  "bench_ml_attack"
  "bench_ml_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ml_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
