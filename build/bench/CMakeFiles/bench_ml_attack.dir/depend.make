# Empty dependencies file for bench_ml_attack.
# This may be replaced when dependencies are built.
