# Empty dependencies file for bench_aka_eke.
# This may be replaced when dependencies are built.
