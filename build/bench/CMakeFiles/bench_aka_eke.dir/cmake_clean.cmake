file(REMOVE_RECURSE
  "CMakeFiles/bench_aka_eke.dir/bench_aka_eke.cpp.o"
  "CMakeFiles/bench_aka_eke.dir/bench_aka_eke.cpp.o.d"
  "bench_aka_eke"
  "bench_aka_eke.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_aka_eke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
