# Empty compiler generated dependencies file for bench_fuzzy_extractor.
# This may be replaced when dependencies are built.
