file(REMOVE_RECURSE
  "CMakeFiles/bench_fuzzy_extractor.dir/bench_fuzzy_extractor.cpp.o"
  "CMakeFiles/bench_fuzzy_extractor.dir/bench_fuzzy_extractor.cpp.o.d"
  "bench_fuzzy_extractor"
  "bench_fuzzy_extractor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fuzzy_extractor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
