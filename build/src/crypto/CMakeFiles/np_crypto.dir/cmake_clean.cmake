file(REMOVE_RECURSE
  "CMakeFiles/np_crypto.dir/aes.cpp.o"
  "CMakeFiles/np_crypto.dir/aes.cpp.o.d"
  "CMakeFiles/np_crypto.dir/bignum.cpp.o"
  "CMakeFiles/np_crypto.dir/bignum.cpp.o.d"
  "CMakeFiles/np_crypto.dir/bytes.cpp.o"
  "CMakeFiles/np_crypto.dir/bytes.cpp.o.d"
  "CMakeFiles/np_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/np_crypto.dir/chacha20.cpp.o.d"
  "CMakeFiles/np_crypto.dir/ctr_drbg.cpp.o"
  "CMakeFiles/np_crypto.dir/ctr_drbg.cpp.o.d"
  "CMakeFiles/np_crypto.dir/dh.cpp.o"
  "CMakeFiles/np_crypto.dir/dh.cpp.o.d"
  "CMakeFiles/np_crypto.dir/hmac.cpp.o"
  "CMakeFiles/np_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/np_crypto.dir/sha256.cpp.o"
  "CMakeFiles/np_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/np_crypto.dir/siphash.cpp.o"
  "CMakeFiles/np_crypto.dir/siphash.cpp.o.d"
  "libnp_crypto.a"
  "libnp_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/np_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
