# Empty compiler generated dependencies file for np_crypto.
# This may be replaced when dependencies are built.
