file(REMOVE_RECURSE
  "libnp_crypto.a"
)
