file(REMOVE_RECURSE
  "CMakeFiles/np_accel.dir/accelerator.cpp.o"
  "CMakeFiles/np_accel.dir/accelerator.cpp.o.d"
  "CMakeFiles/np_accel.dir/network.cpp.o"
  "CMakeFiles/np_accel.dir/network.cpp.o.d"
  "CMakeFiles/np_accel.dir/secure_api.cpp.o"
  "CMakeFiles/np_accel.dir/secure_api.cpp.o.d"
  "libnp_accel.a"
  "libnp_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/np_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
