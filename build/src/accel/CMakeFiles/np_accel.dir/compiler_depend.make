# Empty compiler generated dependencies file for np_accel.
# This may be replaced when dependencies are built.
