file(REMOVE_RECURSE
  "libnp_accel.a"
)
