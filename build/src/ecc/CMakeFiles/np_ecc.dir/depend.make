# Empty dependencies file for np_ecc.
# This may be replaced when dependencies are built.
