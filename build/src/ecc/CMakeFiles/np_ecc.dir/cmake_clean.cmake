file(REMOVE_RECURSE
  "CMakeFiles/np_ecc.dir/bch.cpp.o"
  "CMakeFiles/np_ecc.dir/bch.cpp.o.d"
  "CMakeFiles/np_ecc.dir/fuzzy_extractor.cpp.o"
  "CMakeFiles/np_ecc.dir/fuzzy_extractor.cpp.o.d"
  "CMakeFiles/np_ecc.dir/gf2m.cpp.o"
  "CMakeFiles/np_ecc.dir/gf2m.cpp.o.d"
  "CMakeFiles/np_ecc.dir/repetition.cpp.o"
  "CMakeFiles/np_ecc.dir/repetition.cpp.o.d"
  "libnp_ecc.a"
  "libnp_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/np_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
