
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ecc/bch.cpp" "src/ecc/CMakeFiles/np_ecc.dir/bch.cpp.o" "gcc" "src/ecc/CMakeFiles/np_ecc.dir/bch.cpp.o.d"
  "/root/repo/src/ecc/fuzzy_extractor.cpp" "src/ecc/CMakeFiles/np_ecc.dir/fuzzy_extractor.cpp.o" "gcc" "src/ecc/CMakeFiles/np_ecc.dir/fuzzy_extractor.cpp.o.d"
  "/root/repo/src/ecc/gf2m.cpp" "src/ecc/CMakeFiles/np_ecc.dir/gf2m.cpp.o" "gcc" "src/ecc/CMakeFiles/np_ecc.dir/gf2m.cpp.o.d"
  "/root/repo/src/ecc/repetition.cpp" "src/ecc/CMakeFiles/np_ecc.dir/repetition.cpp.o" "gcc" "src/ecc/CMakeFiles/np_ecc.dir/repetition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/np_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
