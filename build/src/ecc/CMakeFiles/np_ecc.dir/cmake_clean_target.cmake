file(REMOVE_RECURSE
  "libnp_ecc.a"
)
