file(REMOVE_RECURSE
  "CMakeFiles/np_filter.dir/filter.cpp.o"
  "CMakeFiles/np_filter.dir/filter.cpp.o.d"
  "libnp_filter.a"
  "libnp_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/np_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
