# Empty compiler generated dependencies file for np_filter.
# This may be replaced when dependencies are built.
