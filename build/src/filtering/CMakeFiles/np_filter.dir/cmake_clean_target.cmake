file(REMOVE_RECURSE
  "libnp_filter.a"
)
