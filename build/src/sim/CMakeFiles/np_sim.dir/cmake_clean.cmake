file(REMOVE_RECURSE
  "CMakeFiles/np_sim.dir/cpu.cpp.o"
  "CMakeFiles/np_sim.dir/cpu.cpp.o.d"
  "CMakeFiles/np_sim.dir/mmio.cpp.o"
  "CMakeFiles/np_sim.dir/mmio.cpp.o.d"
  "CMakeFiles/np_sim.dir/peripherals.cpp.o"
  "CMakeFiles/np_sim.dir/peripherals.cpp.o.d"
  "CMakeFiles/np_sim.dir/scheduler.cpp.o"
  "CMakeFiles/np_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/np_sim.dir/stats.cpp.o"
  "CMakeFiles/np_sim.dir/stats.cpp.o.d"
  "CMakeFiles/np_sim.dir/system.cpp.o"
  "CMakeFiles/np_sim.dir/system.cpp.o.d"
  "libnp_sim.a"
  "libnp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/np_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
