
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cpu.cpp" "src/sim/CMakeFiles/np_sim.dir/cpu.cpp.o" "gcc" "src/sim/CMakeFiles/np_sim.dir/cpu.cpp.o.d"
  "/root/repo/src/sim/mmio.cpp" "src/sim/CMakeFiles/np_sim.dir/mmio.cpp.o" "gcc" "src/sim/CMakeFiles/np_sim.dir/mmio.cpp.o.d"
  "/root/repo/src/sim/peripherals.cpp" "src/sim/CMakeFiles/np_sim.dir/peripherals.cpp.o" "gcc" "src/sim/CMakeFiles/np_sim.dir/peripherals.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/sim/CMakeFiles/np_sim.dir/scheduler.cpp.o" "gcc" "src/sim/CMakeFiles/np_sim.dir/scheduler.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/sim/CMakeFiles/np_sim.dir/stats.cpp.o" "gcc" "src/sim/CMakeFiles/np_sim.dir/stats.cpp.o.d"
  "/root/repo/src/sim/system.cpp" "src/sim/CMakeFiles/np_sim.dir/system.cpp.o" "gcc" "src/sim/CMakeFiles/np_sim.dir/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/np_core.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/np_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/puf/CMakeFiles/np_puf.dir/DependInfo.cmake"
  "/root/repo/build/src/photonic/CMakeFiles/np_photonic.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/np_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/np_net.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/np_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
