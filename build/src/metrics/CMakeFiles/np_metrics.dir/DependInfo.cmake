
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/identification.cpp" "src/metrics/CMakeFiles/np_metrics.dir/identification.cpp.o" "gcc" "src/metrics/CMakeFiles/np_metrics.dir/identification.cpp.o.d"
  "/root/repo/src/metrics/nist.cpp" "src/metrics/CMakeFiles/np_metrics.dir/nist.cpp.o" "gcc" "src/metrics/CMakeFiles/np_metrics.dir/nist.cpp.o.d"
  "/root/repo/src/metrics/population.cpp" "src/metrics/CMakeFiles/np_metrics.dir/population.cpp.o" "gcc" "src/metrics/CMakeFiles/np_metrics.dir/population.cpp.o.d"
  "/root/repo/src/metrics/special_functions.cpp" "src/metrics/CMakeFiles/np_metrics.dir/special_functions.cpp.o" "gcc" "src/metrics/CMakeFiles/np_metrics.dir/special_functions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/np_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
