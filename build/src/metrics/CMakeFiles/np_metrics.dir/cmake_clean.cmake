file(REMOVE_RECURSE
  "CMakeFiles/np_metrics.dir/identification.cpp.o"
  "CMakeFiles/np_metrics.dir/identification.cpp.o.d"
  "CMakeFiles/np_metrics.dir/nist.cpp.o"
  "CMakeFiles/np_metrics.dir/nist.cpp.o.d"
  "CMakeFiles/np_metrics.dir/population.cpp.o"
  "CMakeFiles/np_metrics.dir/population.cpp.o.d"
  "CMakeFiles/np_metrics.dir/special_functions.cpp.o"
  "CMakeFiles/np_metrics.dir/special_functions.cpp.o.d"
  "libnp_metrics.a"
  "libnp_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/np_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
