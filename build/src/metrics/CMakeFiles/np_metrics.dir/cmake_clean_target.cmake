file(REMOVE_RECURSE
  "libnp_metrics.a"
)
