# Empty compiler generated dependencies file for np_metrics.
# This may be replaced when dependencies are built.
