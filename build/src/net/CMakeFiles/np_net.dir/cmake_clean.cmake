file(REMOVE_RECURSE
  "CMakeFiles/np_net.dir/channel.cpp.o"
  "CMakeFiles/np_net.dir/channel.cpp.o.d"
  "CMakeFiles/np_net.dir/message.cpp.o"
  "CMakeFiles/np_net.dir/message.cpp.o.d"
  "libnp_net.a"
  "libnp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/np_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
