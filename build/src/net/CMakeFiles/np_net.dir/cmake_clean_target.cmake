file(REMOVE_RECURSE
  "libnp_net.a"
)
