file(REMOVE_RECURSE
  "libnp_photonic.a"
)
