file(REMOVE_RECURSE
  "CMakeFiles/np_photonic.dir/circuit.cpp.o"
  "CMakeFiles/np_photonic.dir/circuit.cpp.o.d"
  "CMakeFiles/np_photonic.dir/components.cpp.o"
  "CMakeFiles/np_photonic.dir/components.cpp.o.d"
  "CMakeFiles/np_photonic.dir/constants.cpp.o"
  "CMakeFiles/np_photonic.dir/constants.cpp.o.d"
  "CMakeFiles/np_photonic.dir/detector.cpp.o"
  "CMakeFiles/np_photonic.dir/detector.cpp.o.d"
  "CMakeFiles/np_photonic.dir/ring.cpp.o"
  "CMakeFiles/np_photonic.dir/ring.cpp.o.d"
  "CMakeFiles/np_photonic.dir/source.cpp.o"
  "CMakeFiles/np_photonic.dir/source.cpp.o.d"
  "libnp_photonic.a"
  "libnp_photonic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/np_photonic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
