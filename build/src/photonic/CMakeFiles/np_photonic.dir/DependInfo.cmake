
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/photonic/circuit.cpp" "src/photonic/CMakeFiles/np_photonic.dir/circuit.cpp.o" "gcc" "src/photonic/CMakeFiles/np_photonic.dir/circuit.cpp.o.d"
  "/root/repo/src/photonic/components.cpp" "src/photonic/CMakeFiles/np_photonic.dir/components.cpp.o" "gcc" "src/photonic/CMakeFiles/np_photonic.dir/components.cpp.o.d"
  "/root/repo/src/photonic/constants.cpp" "src/photonic/CMakeFiles/np_photonic.dir/constants.cpp.o" "gcc" "src/photonic/CMakeFiles/np_photonic.dir/constants.cpp.o.d"
  "/root/repo/src/photonic/detector.cpp" "src/photonic/CMakeFiles/np_photonic.dir/detector.cpp.o" "gcc" "src/photonic/CMakeFiles/np_photonic.dir/detector.cpp.o.d"
  "/root/repo/src/photonic/ring.cpp" "src/photonic/CMakeFiles/np_photonic.dir/ring.cpp.o" "gcc" "src/photonic/CMakeFiles/np_photonic.dir/ring.cpp.o.d"
  "/root/repo/src/photonic/source.cpp" "src/photonic/CMakeFiles/np_photonic.dir/source.cpp.o" "gcc" "src/photonic/CMakeFiles/np_photonic.dir/source.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/np_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
