# Empty compiler generated dependencies file for np_photonic.
# This may be replaced when dependencies are built.
