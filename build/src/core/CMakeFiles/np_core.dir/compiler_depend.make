# Empty compiler generated dependencies file for np_core.
# This may be replaced when dependencies are built.
