file(REMOVE_RECURSE
  "CMakeFiles/np_core.dir/aka_eke.cpp.o"
  "CMakeFiles/np_core.dir/aka_eke.cpp.o.d"
  "CMakeFiles/np_core.dir/attestation.cpp.o"
  "CMakeFiles/np_core.dir/attestation.cpp.o.d"
  "CMakeFiles/np_core.dir/key_manager.cpp.o"
  "CMakeFiles/np_core.dir/key_manager.cpp.o.d"
  "CMakeFiles/np_core.dir/mutual_auth.cpp.o"
  "CMakeFiles/np_core.dir/mutual_auth.cpp.o.d"
  "CMakeFiles/np_core.dir/secure_channel.cpp.o"
  "CMakeFiles/np_core.dir/secure_channel.cpp.o.d"
  "libnp_core.a"
  "libnp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/np_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
