
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aka_eke.cpp" "src/core/CMakeFiles/np_core.dir/aka_eke.cpp.o" "gcc" "src/core/CMakeFiles/np_core.dir/aka_eke.cpp.o.d"
  "/root/repo/src/core/attestation.cpp" "src/core/CMakeFiles/np_core.dir/attestation.cpp.o" "gcc" "src/core/CMakeFiles/np_core.dir/attestation.cpp.o.d"
  "/root/repo/src/core/key_manager.cpp" "src/core/CMakeFiles/np_core.dir/key_manager.cpp.o" "gcc" "src/core/CMakeFiles/np_core.dir/key_manager.cpp.o.d"
  "/root/repo/src/core/mutual_auth.cpp" "src/core/CMakeFiles/np_core.dir/mutual_auth.cpp.o" "gcc" "src/core/CMakeFiles/np_core.dir/mutual_auth.cpp.o.d"
  "/root/repo/src/core/secure_channel.cpp" "src/core/CMakeFiles/np_core.dir/secure_channel.cpp.o" "gcc" "src/core/CMakeFiles/np_core.dir/secure_channel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/np_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/np_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/puf/CMakeFiles/np_puf.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/np_net.dir/DependInfo.cmake"
  "/root/repo/build/src/photonic/CMakeFiles/np_photonic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
