# Empty dependencies file for np_attacks.
# This may be replaced when dependencies are built.
