file(REMOVE_RECURSE
  "libnp_attacks.a"
)
