file(REMOVE_RECURSE
  "CMakeFiles/np_attacks.dir/brute_force.cpp.o"
  "CMakeFiles/np_attacks.dir/brute_force.cpp.o.d"
  "CMakeFiles/np_attacks.dir/cpa.cpp.o"
  "CMakeFiles/np_attacks.dir/cpa.cpp.o.d"
  "CMakeFiles/np_attacks.dir/ml_attack.cpp.o"
  "CMakeFiles/np_attacks.dir/ml_attack.cpp.o.d"
  "CMakeFiles/np_attacks.dir/protocol_attacks.cpp.o"
  "CMakeFiles/np_attacks.dir/protocol_attacks.cpp.o.d"
  "CMakeFiles/np_attacks.dir/side_channel.cpp.o"
  "CMakeFiles/np_attacks.dir/side_channel.cpp.o.d"
  "libnp_attacks.a"
  "libnp_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/np_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
