
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attacks/brute_force.cpp" "src/attacks/CMakeFiles/np_attacks.dir/brute_force.cpp.o" "gcc" "src/attacks/CMakeFiles/np_attacks.dir/brute_force.cpp.o.d"
  "/root/repo/src/attacks/cpa.cpp" "src/attacks/CMakeFiles/np_attacks.dir/cpa.cpp.o" "gcc" "src/attacks/CMakeFiles/np_attacks.dir/cpa.cpp.o.d"
  "/root/repo/src/attacks/ml_attack.cpp" "src/attacks/CMakeFiles/np_attacks.dir/ml_attack.cpp.o" "gcc" "src/attacks/CMakeFiles/np_attacks.dir/ml_attack.cpp.o.d"
  "/root/repo/src/attacks/protocol_attacks.cpp" "src/attacks/CMakeFiles/np_attacks.dir/protocol_attacks.cpp.o" "gcc" "src/attacks/CMakeFiles/np_attacks.dir/protocol_attacks.cpp.o.d"
  "/root/repo/src/attacks/side_channel.cpp" "src/attacks/CMakeFiles/np_attacks.dir/side_channel.cpp.o" "gcc" "src/attacks/CMakeFiles/np_attacks.dir/side_channel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/puf/CMakeFiles/np_puf.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/np_core.dir/DependInfo.cmake"
  "/root/repo/build/src/photonic/CMakeFiles/np_photonic.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/np_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/np_net.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/np_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
