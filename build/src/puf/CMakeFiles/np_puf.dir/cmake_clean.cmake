file(REMOVE_RECURSE
  "CMakeFiles/np_puf.dir/arbiter_puf.cpp.o"
  "CMakeFiles/np_puf.dir/arbiter_puf.cpp.o.d"
  "CMakeFiles/np_puf.dir/composite.cpp.o"
  "CMakeFiles/np_puf.dir/composite.cpp.o.d"
  "CMakeFiles/np_puf.dir/crp_db.cpp.o"
  "CMakeFiles/np_puf.dir/crp_db.cpp.o.d"
  "CMakeFiles/np_puf.dir/photonic_puf.cpp.o"
  "CMakeFiles/np_puf.dir/photonic_puf.cpp.o.d"
  "CMakeFiles/np_puf.dir/puf.cpp.o"
  "CMakeFiles/np_puf.dir/puf.cpp.o.d"
  "CMakeFiles/np_puf.dir/ro_puf.cpp.o"
  "CMakeFiles/np_puf.dir/ro_puf.cpp.o.d"
  "CMakeFiles/np_puf.dir/spectral_puf.cpp.o"
  "CMakeFiles/np_puf.dir/spectral_puf.cpp.o.d"
  "CMakeFiles/np_puf.dir/sram_puf.cpp.o"
  "CMakeFiles/np_puf.dir/sram_puf.cpp.o.d"
  "CMakeFiles/np_puf.dir/trng.cpp.o"
  "CMakeFiles/np_puf.dir/trng.cpp.o.d"
  "libnp_puf.a"
  "libnp_puf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/np_puf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
