file(REMOVE_RECURSE
  "libnp_puf.a"
)
