
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/puf/arbiter_puf.cpp" "src/puf/CMakeFiles/np_puf.dir/arbiter_puf.cpp.o" "gcc" "src/puf/CMakeFiles/np_puf.dir/arbiter_puf.cpp.o.d"
  "/root/repo/src/puf/composite.cpp" "src/puf/CMakeFiles/np_puf.dir/composite.cpp.o" "gcc" "src/puf/CMakeFiles/np_puf.dir/composite.cpp.o.d"
  "/root/repo/src/puf/crp_db.cpp" "src/puf/CMakeFiles/np_puf.dir/crp_db.cpp.o" "gcc" "src/puf/CMakeFiles/np_puf.dir/crp_db.cpp.o.d"
  "/root/repo/src/puf/photonic_puf.cpp" "src/puf/CMakeFiles/np_puf.dir/photonic_puf.cpp.o" "gcc" "src/puf/CMakeFiles/np_puf.dir/photonic_puf.cpp.o.d"
  "/root/repo/src/puf/puf.cpp" "src/puf/CMakeFiles/np_puf.dir/puf.cpp.o" "gcc" "src/puf/CMakeFiles/np_puf.dir/puf.cpp.o.d"
  "/root/repo/src/puf/ro_puf.cpp" "src/puf/CMakeFiles/np_puf.dir/ro_puf.cpp.o" "gcc" "src/puf/CMakeFiles/np_puf.dir/ro_puf.cpp.o.d"
  "/root/repo/src/puf/spectral_puf.cpp" "src/puf/CMakeFiles/np_puf.dir/spectral_puf.cpp.o" "gcc" "src/puf/CMakeFiles/np_puf.dir/spectral_puf.cpp.o.d"
  "/root/repo/src/puf/sram_puf.cpp" "src/puf/CMakeFiles/np_puf.dir/sram_puf.cpp.o" "gcc" "src/puf/CMakeFiles/np_puf.dir/sram_puf.cpp.o.d"
  "/root/repo/src/puf/trng.cpp" "src/puf/CMakeFiles/np_puf.dir/trng.cpp.o" "gcc" "src/puf/CMakeFiles/np_puf.dir/trng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/np_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/photonic/CMakeFiles/np_photonic.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/np_ecc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
