# Empty dependencies file for np_puf.
# This may be replaced when dependencies are built.
