# Empty dependencies file for test_crypto_bignum.
# This may be replaced when dependencies are built.
