file(REMOVE_RECURSE
  "CMakeFiles/test_crypto_prng.dir/crypto/test_prng.cpp.o"
  "CMakeFiles/test_crypto_prng.dir/crypto/test_prng.cpp.o.d"
  "test_crypto_prng"
  "test_crypto_prng.pdb"
  "test_crypto_prng[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crypto_prng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
