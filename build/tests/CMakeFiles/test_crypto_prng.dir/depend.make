# Empty dependencies file for test_crypto_prng.
# This may be replaced when dependencies are built.
