# Empty compiler generated dependencies file for test_ecc_bch_property.
# This may be replaced when dependencies are built.
