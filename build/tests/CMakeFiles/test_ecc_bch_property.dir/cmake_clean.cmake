file(REMOVE_RECURSE
  "CMakeFiles/test_ecc_bch_property.dir/ecc/test_bch_property.cpp.o"
  "CMakeFiles/test_ecc_bch_property.dir/ecc/test_bch_property.cpp.o.d"
  "test_ecc_bch_property"
  "test_ecc_bch_property.pdb"
  "test_ecc_bch_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ecc_bch_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
