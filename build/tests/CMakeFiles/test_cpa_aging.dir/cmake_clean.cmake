file(REMOVE_RECURSE
  "CMakeFiles/test_cpa_aging.dir/attacks/test_cpa_aging.cpp.o"
  "CMakeFiles/test_cpa_aging.dir/attacks/test_cpa_aging.cpp.o.d"
  "test_cpa_aging"
  "test_cpa_aging.pdb"
  "test_cpa_aging[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpa_aging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
