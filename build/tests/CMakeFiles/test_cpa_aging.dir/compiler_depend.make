# Empty compiler generated dependencies file for test_cpa_aging.
# This may be replaced when dependencies are built.
