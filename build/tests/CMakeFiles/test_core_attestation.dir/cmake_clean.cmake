file(REMOVE_RECURSE
  "CMakeFiles/test_core_attestation.dir/core/test_attestation.cpp.o"
  "CMakeFiles/test_core_attestation.dir/core/test_attestation.cpp.o.d"
  "test_core_attestation"
  "test_core_attestation.pdb"
  "test_core_attestation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_attestation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
