# Empty compiler generated dependencies file for test_core_attestation.
# This may be replaced when dependencies are built.
