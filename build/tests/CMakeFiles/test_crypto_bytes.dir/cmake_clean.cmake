file(REMOVE_RECURSE
  "CMakeFiles/test_crypto_bytes.dir/crypto/test_bytes.cpp.o"
  "CMakeFiles/test_crypto_bytes.dir/crypto/test_bytes.cpp.o.d"
  "test_crypto_bytes"
  "test_crypto_bytes.pdb"
  "test_crypto_bytes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crypto_bytes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
