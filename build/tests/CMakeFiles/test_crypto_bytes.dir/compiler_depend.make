# Empty compiler generated dependencies file for test_crypto_bytes.
# This may be replaced when dependencies are built.
