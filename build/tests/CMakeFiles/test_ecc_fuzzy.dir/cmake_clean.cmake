file(REMOVE_RECURSE
  "CMakeFiles/test_ecc_fuzzy.dir/ecc/test_fuzzy_extractor.cpp.o"
  "CMakeFiles/test_ecc_fuzzy.dir/ecc/test_fuzzy_extractor.cpp.o.d"
  "test_ecc_fuzzy"
  "test_ecc_fuzzy.pdb"
  "test_ecc_fuzzy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ecc_fuzzy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
