# Empty dependencies file for test_ecc_fuzzy.
# This may be replaced when dependencies are built.
