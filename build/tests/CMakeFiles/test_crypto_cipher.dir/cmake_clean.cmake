file(REMOVE_RECURSE
  "CMakeFiles/test_crypto_cipher.dir/crypto/test_cipher.cpp.o"
  "CMakeFiles/test_crypto_cipher.dir/crypto/test_cipher.cpp.o.d"
  "test_crypto_cipher"
  "test_crypto_cipher.pdb"
  "test_crypto_cipher[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crypto_cipher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
