# Empty dependencies file for test_crypto_cipher.
# This may be replaced when dependencies are built.
