# Empty compiler generated dependencies file for test_photonic_components.
# This may be replaced when dependencies are built.
