file(REMOVE_RECURSE
  "CMakeFiles/test_photonic_components.dir/photonic/test_components.cpp.o"
  "CMakeFiles/test_photonic_components.dir/photonic/test_components.cpp.o.d"
  "test_photonic_components"
  "test_photonic_components.pdb"
  "test_photonic_components[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_photonic_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
