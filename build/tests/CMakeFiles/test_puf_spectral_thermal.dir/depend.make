# Empty dependencies file for test_puf_spectral_thermal.
# This may be replaced when dependencies are built.
