
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/puf/test_spectral_thermal.cpp" "tests/CMakeFiles/test_puf_spectral_thermal.dir/puf/test_spectral_thermal.cpp.o" "gcc" "tests/CMakeFiles/test_puf_spectral_thermal.dir/puf/test_spectral_thermal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/puf/CMakeFiles/np_puf.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/np_core.dir/DependInfo.cmake"
  "/root/repo/build/src/photonic/CMakeFiles/np_photonic.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/np_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/np_net.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/np_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
