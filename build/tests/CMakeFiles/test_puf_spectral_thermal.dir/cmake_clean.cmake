file(REMOVE_RECURSE
  "CMakeFiles/test_puf_spectral_thermal.dir/puf/test_spectral_thermal.cpp.o"
  "CMakeFiles/test_puf_spectral_thermal.dir/puf/test_spectral_thermal.cpp.o.d"
  "test_puf_spectral_thermal"
  "test_puf_spectral_thermal.pdb"
  "test_puf_spectral_thermal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_puf_spectral_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
