file(REMOVE_RECURSE
  "CMakeFiles/test_crypto_property.dir/crypto/test_crypto_property.cpp.o"
  "CMakeFiles/test_crypto_property.dir/crypto/test_crypto_property.cpp.o.d"
  "test_crypto_property"
  "test_crypto_property.pdb"
  "test_crypto_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crypto_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
