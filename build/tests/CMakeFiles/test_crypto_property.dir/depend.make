# Empty dependencies file for test_crypto_property.
# This may be replaced when dependencies are built.
