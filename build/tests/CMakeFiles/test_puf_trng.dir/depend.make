# Empty dependencies file for test_puf_trng.
# This may be replaced when dependencies are built.
