file(REMOVE_RECURSE
  "CMakeFiles/test_puf_trng.dir/puf/test_trng.cpp.o"
  "CMakeFiles/test_puf_trng.dir/puf/test_trng.cpp.o.d"
  "test_puf_trng"
  "test_puf_trng.pdb"
  "test_puf_trng[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_puf_trng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
