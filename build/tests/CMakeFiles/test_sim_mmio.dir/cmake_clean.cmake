file(REMOVE_RECURSE
  "CMakeFiles/test_sim_mmio.dir/sim/test_mmio.cpp.o"
  "CMakeFiles/test_sim_mmio.dir/sim/test_mmio.cpp.o.d"
  "test_sim_mmio"
  "test_sim_mmio.pdb"
  "test_sim_mmio[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_mmio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
