# Empty dependencies file for test_ecc_gf_bch.
# This may be replaced when dependencies are built.
