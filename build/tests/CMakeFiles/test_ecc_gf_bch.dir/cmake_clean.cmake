file(REMOVE_RECURSE
  "CMakeFiles/test_ecc_gf_bch.dir/ecc/test_gf_bch.cpp.o"
  "CMakeFiles/test_ecc_gf_bch.dir/ecc/test_gf_bch.cpp.o.d"
  "test_ecc_gf_bch"
  "test_ecc_gf_bch.pdb"
  "test_ecc_gf_bch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ecc_gf_bch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
