file(REMOVE_RECURSE
  "CMakeFiles/test_puf_photonic.dir/puf/test_photonic_puf.cpp.o"
  "CMakeFiles/test_puf_photonic.dir/puf/test_photonic_puf.cpp.o.d"
  "test_puf_photonic"
  "test_puf_photonic.pdb"
  "test_puf_photonic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_puf_photonic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
