# Empty dependencies file for test_puf_photonic.
# This may be replaced when dependencies are built.
