# Empty dependencies file for test_core_eke_keys.
# This may be replaced when dependencies are built.
