file(REMOVE_RECURSE
  "CMakeFiles/test_core_eke_keys.dir/core/test_eke_keys.cpp.o"
  "CMakeFiles/test_core_eke_keys.dir/core/test_eke_keys.cpp.o.d"
  "test_core_eke_keys"
  "test_core_eke_keys.pdb"
  "test_core_eke_keys[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_eke_keys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
