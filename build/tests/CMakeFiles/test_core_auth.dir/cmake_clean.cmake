file(REMOVE_RECURSE
  "CMakeFiles/test_core_auth.dir/core/test_mutual_auth.cpp.o"
  "CMakeFiles/test_core_auth.dir/core/test_mutual_auth.cpp.o.d"
  "test_core_auth"
  "test_core_auth.pdb"
  "test_core_auth[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_auth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
