file(REMOVE_RECURSE
  "CMakeFiles/test_photonic_property.dir/photonic/test_photonic_property.cpp.o"
  "CMakeFiles/test_photonic_property.dir/photonic/test_photonic_property.cpp.o.d"
  "test_photonic_property"
  "test_photonic_property.pdb"
  "test_photonic_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_photonic_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
