# Empty dependencies file for test_photonic_property.
# This may be replaced when dependencies are built.
