# Empty dependencies file for test_photonic_chain.
# This may be replaced when dependencies are built.
