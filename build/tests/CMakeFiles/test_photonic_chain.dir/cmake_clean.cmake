file(REMOVE_RECURSE
  "CMakeFiles/test_photonic_chain.dir/photonic/test_circuit_chain.cpp.o"
  "CMakeFiles/test_photonic_chain.dir/photonic/test_circuit_chain.cpp.o.d"
  "test_photonic_chain"
  "test_photonic_chain.pdb"
  "test_photonic_chain[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_photonic_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
