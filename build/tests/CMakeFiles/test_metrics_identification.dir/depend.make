# Empty dependencies file for test_metrics_identification.
# This may be replaced when dependencies are built.
