file(REMOVE_RECURSE
  "CMakeFiles/test_metrics_identification.dir/metrics/test_identification.cpp.o"
  "CMakeFiles/test_metrics_identification.dir/metrics/test_identification.cpp.o.d"
  "test_metrics_identification"
  "test_metrics_identification.pdb"
  "test_metrics_identification[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_metrics_identification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
