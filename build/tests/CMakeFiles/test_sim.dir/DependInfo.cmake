
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_sim.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_sim.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/np_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/np_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/np_net.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/np_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/puf/CMakeFiles/np_puf.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/np_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/photonic/CMakeFiles/np_photonic.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/np_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
