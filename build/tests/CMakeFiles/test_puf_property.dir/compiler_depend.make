# Empty compiler generated dependencies file for test_puf_property.
# This may be replaced when dependencies are built.
