file(REMOVE_RECURSE
  "CMakeFiles/test_puf_property.dir/puf/test_puf_property.cpp.o"
  "CMakeFiles/test_puf_property.dir/puf/test_puf_property.cpp.o.d"
  "test_puf_property"
  "test_puf_property.pdb"
  "test_puf_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_puf_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
