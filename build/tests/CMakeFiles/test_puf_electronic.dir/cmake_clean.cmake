file(REMOVE_RECURSE
  "CMakeFiles/test_puf_electronic.dir/puf/test_electronic_pufs.cpp.o"
  "CMakeFiles/test_puf_electronic.dir/puf/test_electronic_pufs.cpp.o.d"
  "test_puf_electronic"
  "test_puf_electronic.pdb"
  "test_puf_electronic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_puf_electronic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
