# Empty compiler generated dependencies file for test_puf_electronic.
# This may be replaced when dependencies are built.
