# Empty dependencies file for test_protocol_attacks.
# This may be replaced when dependencies are built.
