file(REMOVE_RECURSE
  "CMakeFiles/test_protocol_attacks.dir/attacks/test_protocol_attacks.cpp.o"
  "CMakeFiles/test_protocol_attacks.dir/attacks/test_protocol_attacks.cpp.o.d"
  "test_protocol_attacks"
  "test_protocol_attacks.pdb"
  "test_protocol_attacks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocol_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
