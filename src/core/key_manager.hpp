// Device key management: weak PUF -> fuzzy extractor -> key hierarchy.
//
// Fig. 1's left column: the weak PUF (with ECC) feeds "cryptographic key
// generation". At enrollment the device reads its weak PUF, runs the
// code-offset fuzzy extractor, and stores only the *helper data* (public)
// — never the key. At every boot the key is re-derived from a fresh noisy
// reading; HKDF then splits it into purpose-bound sub-keys so the Table I
// encryption key, the MAC key, and the PIC/ASIC binding key are pairwise
// independent ("this key is never exposed to the software layer" — here
// enforced by handing out derived sub-keys only).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/mutex.hpp"
#include "common/secret.hpp"
#include "common/thread_annotations.hpp"
#include "crypto/bytes.hpp"
#include "ecc/fuzzy_extractor.hpp"
#include "puf/puf.hpp"

namespace neuropuls::core {

/// Gathers `bits` response bits from a PUF by evaluating a deterministic
/// sequence of fixed enrollment challenges (weak-PUF usage of a strong
/// PUF; weak PUFs with empty challenges are read directly).
/// `readings` > 1 majority-votes each evaluation (Puf::evaluate_robust) —
/// the graceful-degradation re-measurement used when a single noisy read
/// is too corrupted for the code.
ecc::BitVec collect_response_bits(puf::Puf& puf, std::size_t bits,
                                  unsigned readings = 1);

/// Public, persistable enrollment record.
struct DeviceKeyRecord {
  ecc::HelperData helper;
};

struct DeviceKeys {
  common::SecretBytes encryption_key;  // Table I bulk encryption (16 bytes)
  common::SecretBytes mac_key;         // message authentication (32 bytes)
  common::SecretBytes binding_key;  // PIC<->ASIC composite binding (16 bytes)
};

/// Thread-safe: enrollment and derivation serialize on one internal
/// mutex — the PUF reference is not thread-safe, and the enrolled root
/// must never be observed half-written by a concurrent exporter.
class KeyManager {
 public:
  /// `key_bytes` sizes the fuzzy-extractor root key.
  explicit KeyManager(puf::Puf& puf, std::size_t key_bytes = 16);

  /// Manufacturing-time enrollment. Returns the public record to persist.
  DeviceKeyRecord enroll(crypto::ChaChaDrbg& rng) NP_EXCLUDES(mutex_);

  /// Boot-time key derivation from a fresh noisy PUF reading. Returns
  /// std::nullopt when the reading is too noisy for the code (the caller
  /// retries — physically, re-powers the PUF).
  std::optional<DeviceKeys> derive(const DeviceKeyRecord& record)
      NP_EXCLUDES(mutex_);

  /// Degradation-tolerant derivation: up to `attempts` tries, each using a
  /// k-of-n majority over `readings` re-measurements per challenge. The
  /// escalation path for devices whose single-read error rate has drifted
  /// past the code's correction radius (thermal spikes, aged shifters);
  /// std::nullopt only when every attempt fails — the device is then a
  /// candidate for accel::SecureAccelerator lockout.
  std::optional<DeviceKeys> derive_robust(const DeviceKeyRecord& record,
                                          unsigned attempts = 3,
                                          unsigned readings = 5)
      NP_EXCLUDES(mutex_);

  /// A copy of the root key derived at enrollment (for verifier-side
  /// provisioning in tests/examples; a production flow would never export
  /// it). By value: a reference into guarded state would outlive the lock.
  common::SecretBytes enrolled_root() const NP_EXCLUDES(mutex_);

  std::size_t response_bits() const noexcept {
    return extractor_.response_bits();
  }

 private:
  static DeviceKeys split(const crypto::Bytes& root);

  /// Serializes PUF access and guards root_.
  mutable common::Mutex mutex_;
  puf::Puf& puf_;
  ecc::FuzzyExtractor extractor_;
  common::SecretBytes root_ NP_GUARDED_BY(mutex_);
};

}  // namespace neuropuls::core
