#include "core/session_engine.hpp"

#include <algorithm>

namespace neuropuls::core {

SessionEngine::SessionEngine(common::ThreadPool& pool,
                             SessionEngineConfig config)
    : pool_(pool), config_(config) {
  config_.max_in_flight = std::max<std::size_t>(1, config_.max_in_flight);
  config_.steps_per_wave = std::max<std::size_t>(1, config_.steps_per_wave);
}

std::size_t SessionEngine::submit(std::uint64_t seed,
                                  const MachineFactory& build) {
  auto session = std::make_unique<Session>(seed);
  const std::size_t index = submitted_++;
  session->index = index;
  session->machine = build(session->rng);
  pending_.push_back(std::move(session));
  return index;
}

std::vector<SessionReport> SessionEngine::run() {
  std::vector<std::unique_ptr<Session>> queue = std::move(pending_);
  pending_.clear();
  submitted_ = 0;

  // Reports are keyed by submission index: completion order is
  // schedule-dependent, the result must not be.
  std::vector<SessionReport> reports(queue.size());

  std::vector<std::unique_ptr<Session>> active;
  active.reserve(std::min(config_.max_in_flight, queue.size()));
  std::size_t next = 0;

  while (next < queue.size() || !active.empty()) {
    while (active.size() < config_.max_in_flight && next < queue.size()) {
      active.push_back(std::move(queue[next]));
      ++next;
    }

    ++stats_.waves;
    pool_.parallel_for(active.size(), [&](std::size_t i) {
      SessionMachine& machine = *active[i]->machine;
      for (std::size_t k = 0; k < config_.steps_per_wave && !machine.done();
           ++k) {
        machine.step();
      }
    });

    // Retire finished sessions and compact the in-flight set; freed slots
    // refill from the queue on the next wave.
    std::size_t keep = 0;
    for (std::size_t i = 0; i < active.size(); ++i) {
      Session& session = *active[i];
      if (session.machine->done()) {
        const SessionReport& report = session.machine->report();
        reports[session.index] = report;
        ++stats_.completed;
        if (report.result == SessionResult::kConverged) ++stats_.converged;
      } else {
        active[keep++] = std::move(active[i]);
      }
    }
    active.resize(keep);
  }
  return reports;
}

}  // namespace neuropuls::core
