#include "core/session_engine.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <stdexcept>

namespace neuropuls::core {

namespace {
constexpr std::uint64_t kNoDeadline = std::numeric_limits<std::uint64_t>::max();
}  // namespace

// Per-session control record, arena-allocated at submit() and destroyed
// en masse when run() finishes. sstate/park_epoch are guarded by the
// reactor's scheduler mutex; wake_pending/stepping are lock-free flags.
struct SessionEngine::Session {
  explicit Session(std::uint64_t seed)
      : rng(session_driver_seed_bytes(seed)) {}

  crypto::ChaChaDrbg rng;
  /// Deferred construction: held from submit() until the session passes
  /// admission, so a shed session costs a control record and nothing else.
  MachineFactory build;
  std::unique_ptr<SessionMachine> machine;
  std::size_t index = 0;
  std::uint64_t client_id = 0;
  std::size_t cost_bytes = 0;
  /// Set by the admission controller's half-open eviction (possibly from
  /// a worker stepping a different session); the owner observes it at the
  /// next pickup and retires the session as kEvicted instead of stepping.
  std::atomic<bool> evicted{false};

  enum class SState : std::uint8_t { kRunnable, kParked };
  SState sstate = SState::kRunnable;
  /// Bumped on every park *and* every wake, so a wheel entry is live iff
  /// its recorded epoch still matches — a woken session's stale entry
  /// self-invalidates without a wheel search.
  std::uint64_t park_epoch = 0;
  /// Set by a cross-thread wake that found the session not parked; the
  /// owner consumes it at the next park decision (requeue instead).
  std::atomic<bool> wake_pending{false};
  /// Exactly-one-worker-steps-me guard.
  std::atomic<bool> stepping{false};
};

namespace {

/// The session this thread is currently stepping (type-erased — Session
/// is engine-private) — lets the channel wakeup hook recognise the
/// session's own sends (already visible to its next wait_hint()) and
/// skip the cross-thread wake path entirely.
thread_local void* tl_current_session = nullptr;

}  // namespace

// One reactor instantiation per run(): per-worker steal deques, a shared
// timer wheel + ready list under one scheduler mutex (park/wake
// transitions are rare next to steps, so a single mutex is both simple
// and TSan-clean), a parking lot for idle workers, and admission state.
struct SessionEngine::Reactor {
  /// Two-level hierarchical timer wheel over virtual poll time. Entries
  /// carry absolute deadlines; each bucket caches its minimum so
  /// advance() finds the earliest pending deadline in O(slots), not
  /// O(parked). Guarded externally by sched_mutex. Bucket vectors keep
  /// their capacity across drains, so parking is allocation-free once
  /// the wheel is warm.
  class TimerWheel {
   public:
    static constexpr std::size_t kSlots = 64;
    /// Pre-reserved entries per bucket: parking only allocates once a
    /// single bucket collects more sessions than this (and then keeps
    /// the grown capacity), so the steady-state park path is heap-free.
    static constexpr std::size_t kBucketReserve = 8;

    TimerWheel() {
      for (Bucket& bucket : level0_) bucket.items.reserve(kBucketReserve);
      for (Bucket& bucket : level1_) bucket.items.reserve(kBucketReserve);
      overflow_.items.reserve(kBucketReserve);
    }

    void insert(Session* session, std::size_t delay) {
      const std::uint64_t deadline =
          now_ + std::max<std::size_t>(std::size_t{1}, delay);
      Bucket& bucket = bucket_for(deadline);
      bucket.items.push_back(Entry{session, session->park_epoch, deadline});
      bucket.min_deadline = std::min(bucket.min_deadline, deadline);
      ++entries_;
    }

    /// Jumps virtual time to the earliest live deadline and moves every
    /// session due at it into `out` (marking them runnable). Returns the
    /// number emitted; 0 when the wheel holds no live entry.
    std::size_t advance(std::vector<Session*>& out) {
      while (entries_ > 0) {
        Bucket* best = nullptr;
        for (Bucket& bucket : level0_) {
          if (bucket.min_deadline < (best ? best->min_deadline : kNoDeadline)) {
            best = &bucket;
          }
        }
        for (Bucket& bucket : level1_) {
          if (bucket.min_deadline < (best ? best->min_deadline : kNoDeadline)) {
            best = &bucket;
          }
        }
        if (overflow_.min_deadline < (best ? best->min_deadline : kNoDeadline)) {
          best = &overflow_;
        }
        if (best == nullptr) return 0;  // only stale-cleared buckets remain
        now_ = std::max(now_, best->min_deadline);

        std::size_t emitted = 0;
        std::size_t keep = 0;
        std::uint64_t new_min = kNoDeadline;
        auto& items = best->items;
        for (std::size_t i = 0; i < items.size(); ++i) {
          Entry entry = items[i];
          if (entry.deadline <= now_) {
            --entries_;
            // A mismatched epoch means the session was woken (or
            // re-parked) after this entry was written — it is stale.
            if (entry.session->park_epoch == entry.epoch &&
                entry.session->sstate == Session::SState::kParked) {
              entry.session->sstate = Session::SState::kRunnable;
              ++entry.session->park_epoch;
              out.push_back(entry.session);
              ++emitted;
            }
          } else {
            items[keep++] = entry;
            new_min = std::min(new_min, entry.deadline);
          }
        }
        items.resize(keep);
        best->min_deadline = new_min;
        if (emitted > 0) return emitted;
        // Every due entry was stale; keep scanning for the next deadline.
      }
      return 0;
    }

    std::uint64_t now() const noexcept { return now_; }

   private:
    struct Entry {
      Session* session;
      std::uint64_t epoch;
      std::uint64_t deadline;
    };
    struct Bucket {
      std::vector<Entry> items;
      std::uint64_t min_deadline = kNoDeadline;
    };

    Bucket& bucket_for(std::uint64_t deadline) {
      const std::uint64_t delta = deadline - now_;
      if (delta <= kSlots) return level0_[deadline % kSlots];
      if (delta <= kSlots * kSlots) {
        return level1_[(deadline / kSlots) % kSlots];
      }
      return overflow_;
    }

    std::uint64_t now_ = 0;
    std::size_t entries_ = 0;  // bucket entries, stale included
    Bucket level0_[kSlots];    // deadlines within (now, now+64]
    Bucket level1_[kSlots];    // deadlines within (now+64, now+4096]
    Bucket overflow_;          // beyond the hierarchical horizon
  };

  Reactor(SessionEngine& engine_in, std::vector<Session*>& all_in,
          std::vector<SessionReport>& reports_in, std::size_t width_in)
      : engine(engine_in),
        all(all_in),
        reports(reports_in),
        width(width_in),
        lot(width_in),
        remaining(all_in.size()) {
    queues.reserve(width);
    scratch.resize(width);
    // Eviction lets a freshly admitted session coexist briefly with its
    // not-yet-retired victim, so the runnable population can exceed
    // max_in_flight; double the headroom rather than reason about the
    // exact transient.
    const std::size_t capacity = engine.config_.max_in_flight * 2 + 2;
    for (std::size_t w = 0; w < width; ++w) {
      queues.push_back(std::make_unique<common::StealDeque>(capacity));
      scratch[w].reserve(engine.config_.max_in_flight);
    }
    ready.reserve(engine.config_.max_in_flight);
  }

  SessionEngine& engine;
  std::vector<Session*>& all;
  std::vector<SessionReport>& reports;
  std::size_t width;

  std::vector<std::unique_ptr<common::StealDeque>> queues;
  std::vector<std::vector<Session*>> scratch;  // per-worker wheel-drain buffer
  common::ParkingLot lot;
  std::atomic<std::size_t> remaining;
  std::atomic<bool> failed{false};

  /// Also guards every Session's sstate/park_epoch transition (a
  /// cross-object contract the annotations cannot name — Session fields
  /// cannot reference a Reactor member — so it is documented here and
  /// checked by the TSan flavors instead).
  common::Mutex sched_mutex;
  TimerWheel wheel NP_GUARDED_BY(sched_mutex);
  std::vector<Session*> ready NP_GUARDED_BY(sched_mutex);

  common::Mutex admit_mutex;
  std::size_t next_admit NP_GUARDED_BY(admit_mutex) = 0;

  std::atomic<std::uint64_t> steps{0};
  std::atomic<std::uint64_t> steals{0};
  std::atomic<std::uint64_t> parks{0};
  std::atomic<std::uint64_t> wakeups{0};
  std::atomic<std::uint64_t> wheel_ticks{0};
  std::atomic<std::uint64_t> worker_parks{0};
  std::atomic<std::size_t> peak_depth{0};
  std::atomic<std::size_t> completed{0};
  std::atomic<std::size_t> converged{0};
  std::atomic<std::uint64_t> admitted{0};
  std::atomic<std::uint64_t> shed_rate_limited{0};
  std::atomic<std::uint64_t> shed_memory{0};
  std::atomic<std::uint64_t> evicted_half_open{0};
  std::atomic<std::uint64_t> malformed{0};

  void attach(Session* s) {
    s->machine->channel().set_wakeup_hook(
        [this, s](net::Direction) { wake(s); });
  }

  /// Clears every installed wakeup hook. Normally a no-op (retire clears
  /// each), but after a worker exception it keeps user-owned channels
  /// from holding dangling references into this (stack-local) reactor.
  void detach_all() {
    common::MutexLock lock(admit_mutex);
    for (std::size_t i = 0; i < next_admit; ++i) {
      // Shed sessions never built a machine (reject-before-alloc).
      if (all[i]->machine) all[i]->machine->channel().set_wakeup_hook(nullptr);
    }
  }

  void push_runnable(std::size_t w, Session* s) {
    if (!queues[w]->push(s)) {
      throw std::logic_error("SessionEngine: run queue overflow");
    }
    const std::size_t depth = queues[w]->size();
    std::size_t prev = peak_depth.load(std::memory_order_relaxed);
    while (depth > prev && !peak_depth.compare_exchange_weak(
                               prev, depth, std::memory_order_relaxed)) {
    }
    lot.unpark_one();
  }

  /// Channel wakeup: a frame landed for `s`. Self-sends while `s` is
  /// being stepped on this very thread are already visible to its next
  /// wait_hint(), so only genuinely external arrivals take the slow path.
  void wake(Session* s) {
    if (tl_current_session == s) return;
    common::MutexLock lock(sched_mutex);
    if (s->sstate == Session::SState::kParked) {
      s->sstate = Session::SState::kRunnable;
      ++s->park_epoch;  // the wheel entry is now stale
      ready.push_back(s);
      wakeups.fetch_add(1, std::memory_order_relaxed);
      lot.unpark_one();
    } else {
      // Running or queued: make the owner's next park decision a requeue,
      // closing the stepping→park window without a lock on the hot path.
      s->wake_pending.store(true, std::memory_order_relaxed);
    }
  }

  bool try_park(Session* s, std::size_t hint) {
    common::MutexLock lock(sched_mutex);
    if (s->wake_pending.exchange(false, std::memory_order_acq_rel)) {
      return false;  // a wake raced the park — keep the session runnable
    }
    s->sstate = Session::SState::kParked;
    ++s->park_epoch;
    wheel.insert(s, hint);
    parks.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  Session* pop_ready() {
    common::MutexLock lock(sched_mutex);
    if (ready.empty()) return nullptr;
    Session* s = ready.back();
    ready.pop_back();
    return s;
  }

  bool advance_wheel(std::vector<Session*>& out) {
    out.clear();
    common::MutexLock lock(sched_mutex);
    if (wheel.advance(out) == 0) return false;
    wheel_ticks.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Retires a session the controller shed at the gate: no machine was
  /// ever built, the report records only the decision.
  void finish_shed(Session* s, AdmitDecision decision) {
    SessionReport report;
    report.result = SessionResult::kShed;
    reports[s->index] = report;
    completed.fetch_add(1, std::memory_order_relaxed);
    if (decision == AdmitDecision::kShedRateLimited) {
      shed_rate_limited.fetch_add(1, std::memory_order_relaxed);
    } else {
      shed_memory.fetch_add(1, std::memory_order_relaxed);
    }
    if (engine.config_.on_complete) engine.config_.on_complete(s->index);
    if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      lot.close();
    }
  }

  /// Marks the half-open victim of an eviction and wakes it so whichever
  /// worker picks it up next retires it instead of stepping it.
  void evict(std::size_t handle) {
    Session* victim = all[handle];
    victim->evicted.store(true, std::memory_order_release);
    evicted_half_open.fetch_add(1, std::memory_order_relaxed);
    wake(victim);
  }

  void admit_one(std::size_t w) {
    // Loops because a shed session frees no capacity: keep consuming the
    // pending queue until one session is actually admitted (or it's empty).
    for (;;) {
      Session* s = nullptr;
      {
        common::MutexLock lock(admit_mutex);
        if (next_admit >= all.size()) return;
        s = all[next_admit++];
      }
      AdmissionController* ctl = engine.config_.admission;
      if (ctl != nullptr) {
        const AdmitResult verdict =
            ctl->try_admit(s->client_id, s->index, s->cost_bytes);
        if (verdict.decision != AdmitDecision::kAdmitted) {
          finish_shed(s, verdict.decision);
          continue;
        }
        admitted.fetch_add(1, std::memory_order_relaxed);
        if (verdict.evicted) evict(verdict.evicted_handle);
      }
      // Reject-before-alloc: the machine (channel buffers, endpoints'
      // working state) is built only after admission charged its cost.
      s->machine = s->build(s->rng);
      attach(s);
      push_runnable(w, s);
      return;
    }
  }

  void retire(std::size_t w, Session* s) {
    s->machine->channel().set_wakeup_hook(nullptr);
    SessionReport report = s->machine->report();
    if (s->evicted.load(std::memory_order_acquire)) {
      report.result = SessionResult::kEvicted;
    }
    reports[s->index] = report;
    completed.fetch_add(1, std::memory_order_relaxed);
    if (report.result == SessionResult::kConverged) {
      converged.fetch_add(1, std::memory_order_relaxed);
    }
    malformed.fetch_add(report.malformed_frames, std::memory_order_relaxed);
    AdmissionController* ctl = engine.config_.admission;
    if (ctl != nullptr) {
      // complete() is idempotent, so an evicted session (whose slot the
      // controller already released) double-releases nothing.
      ctl->complete(s->index);
      if (report.malformed_frames > 0) {
        ctl->note_malformed(s->client_id, report.malformed_frames);
      }
    }
    if (engine.config_.on_complete) engine.config_.on_complete(s->index);
    admit_one(w);
    if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      lot.close();  // last session retired — release every sleeping worker
    }
  }

  void run_burst(std::size_t w, Session* s) {
    if (s->stepping.exchange(true, std::memory_order_acquire)) {
      throw std::logic_error(
          "SessionEngine: session stepped by two workers at once");
    }
    if (s->evicted.load(std::memory_order_acquire)) {
      s->stepping.store(false, std::memory_order_release);
      retire(w, s);  // killed half-open: never stepped again
      return;
    }
    tl_current_session = s;
    std::uint64_t executed = 0;
    bool done = false;
    std::size_t hint = 0;
    const std::size_t slice = engine.config_.steps_per_slice;
    for (std::size_t k = 0; k < slice; ++k) {
      ++executed;
      if (!s->machine->step()) {
        done = true;
        break;
      }
      hint = s->machine->wait_hint();
      if (hint >= engine.config_.park_threshold) break;
    }
    steps.fetch_add(executed, std::memory_order_relaxed);
    tl_current_session = nullptr;
    // Publish before the session becomes reachable by other workers.
    s->stepping.store(false, std::memory_order_release);
    if (done) {
      retire(w, s);
      return;
    }
    if (hint >= engine.config_.park_threshold && try_park(s, hint)) return;
    push_runnable(w, s);  // yield: back of nobody's line — our own bottom
  }

  void worker_loop(std::size_t w) {
    std::vector<Session*>& wheel_out = scratch[w];
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      auto* s = static_cast<Session*>(queues[w]->pop());
      if (s == nullptr) s = pop_ready();
      if (s == nullptr) {
        for (std::size_t i = 1; i < width && s == nullptr; ++i) {
          s = static_cast<Session*>(queues[(w + i) % width]->steal());
        }
        if (s != nullptr) steals.fetch_add(1, std::memory_order_relaxed);
      }
      if (s == nullptr && advance_wheel(wheel_out)) {
        s = wheel_out.front();
        for (std::size_t i = 1; i < wheel_out.size(); ++i) {
          push_runnable(w, wheel_out[i]);
        }
      }
      if (s == nullptr) {
        if (remaining.load(std::memory_order_acquire) == 0) return;
        if (lot.park()) worker_parks.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      run_burst(w, s);
    }
  }
};

SessionEngine::SessionEngine(common::ThreadPool& pool,
                             SessionEngineConfig config)
    : pool_(pool), config_(std::move(config)) {
  config_.max_in_flight = std::max<std::size_t>(1, config_.max_in_flight);
  config_.steps_per_wave = std::max<std::size_t>(1, config_.steps_per_wave);
  config_.steps_per_slice = std::max<std::size_t>(1, config_.steps_per_slice);
  config_.park_threshold = std::max<std::size_t>(1, config_.park_threshold);
}

SessionEngine::~SessionEngine() = default;

std::size_t SessionEngine::submit(std::uint64_t seed,
                                  const MachineFactory& build,
                                  SubmitOptions options) {
  Session* session = arena_.create<Session>(seed);
  const std::size_t index = submitted_++;
  session->index = index;
  session->build = build;
  session->client_id = options.client_id;
  session->cost_bytes = options.cost_bytes;
  pending_.push_back(session);
  return index;
}

std::vector<SessionReport> SessionEngine::run() {
  std::vector<Session*> queue = std::move(pending_);
  pending_.clear();
  submitted_ = 0;

  // Reports are keyed by submission index: completion order is
  // schedule-dependent, the result must not be.
  std::vector<SessionReport> reports(queue.size());
  if (!queue.empty()) {
    if (config_.mode == EngineMode::kDeterministic) {
      run_waves(queue, reports);
    } else {
      run_reactor(queue, reports);
    }
  }
  arena_.reset();  // every Session record of this run dies together
  return reports;
}

void SessionEngine::notify(std::size_t index) {
  common::MutexLock lock(notify_mutex_);
  if (active_ == nullptr || index >= active_->all.size()) return;
  active_->wake(active_->all[index]);
}

void SessionEngine::run_reactor(std::vector<Session*>& queue,
                                std::vector<SessionReport>& reports) {
  const std::size_t width =
      std::max<std::size_t>(1, std::min(pool_.thread_count(), queue.size()));
  Reactor reactor(*this, queue, reports, width);

  // Initial admission, round-robin across workers. Still single-threaded
  // here, but admit_one() takes the admission lock anyway: uncontended
  // locking is cheap, and the alternative (touching next_admit bare) is
  // exactly the unguarded access the capability analysis exists to ban.
  const std::size_t initial = std::min(config_.max_in_flight, queue.size());
  for (std::size_t i = 0; i < initial; ++i) {
    reactor.admit_one(i % width);
  }

  {
    common::MutexLock lock(notify_mutex_);
    active_ = &reactor;
  }
  try {
    pool_.parallel_for(width, [&reactor](std::size_t w) {
      try {
        reactor.worker_loop(w);
      } catch (...) {
        // Unblock the other workers so parallel_for can join and rethrow.
        reactor.failed.store(true, std::memory_order_relaxed);
        reactor.lot.close();
        throw;
      }
    });
  } catch (...) {
    {
      common::MutexLock lock(notify_mutex_);
      active_ = nullptr;
    }
    reactor.detach_all();
    throw;
  }
  {
    common::MutexLock lock(notify_mutex_);
    active_ = nullptr;
  }
  reactor.detach_all();

  // The workers are joined (parallel_for returned), so relaxed loads
  // suffice — and match the relaxed increments on the write side; mixing
  // in seq_cst here implied a synchronization role these loads don't
  // have (and tripped ctlint's atomic-misuse pass).
  stats_.completed += reactor.completed.load(std::memory_order_relaxed);
  stats_.converged += reactor.converged.load(std::memory_order_relaxed);
  stats_.steps += reactor.steps.load(std::memory_order_relaxed);
  stats_.steals += reactor.steals.load(std::memory_order_relaxed);
  stats_.parks += reactor.parks.load(std::memory_order_relaxed);
  stats_.wakeups += reactor.wakeups.load(std::memory_order_relaxed);
  stats_.wheel_ticks += reactor.wheel_ticks.load(std::memory_order_relaxed);
  stats_.worker_parks +=
      reactor.worker_parks.load(std::memory_order_relaxed);
  stats_.peak_queue_depth = std::max(
      stats_.peak_queue_depth,
      reactor.peak_depth.load(std::memory_order_relaxed));
  stats_.admitted += reactor.admitted.load(std::memory_order_relaxed);
  stats_.shed_rate_limited +=
      reactor.shed_rate_limited.load(std::memory_order_relaxed);
  stats_.shed_memory += reactor.shed_memory.load(std::memory_order_relaxed);
  stats_.evicted_half_open +=
      reactor.evicted_half_open.load(std::memory_order_relaxed);
  stats_.malformed += reactor.malformed.load(std::memory_order_relaxed);
}

void SessionEngine::run_waves(std::vector<Session*>& queue,
                              std::vector<SessionReport>& reports) {
  std::vector<Session*> active;
  active.reserve(std::min(config_.max_in_flight, queue.size()));
  std::size_t next = 0;
  AdmissionController* ctl = config_.admission;

  // Everything here runs between waves on the submitting thread, so the
  // admission bookkeeping needs no synchronization beyond the
  // controller's own lock.
  const auto finish = [&](Session* session, SessionReport report) {
    reports[session->index] = report;
    ++stats_.completed;
    if (report.result == SessionResult::kConverged) ++stats_.converged;
    stats_.malformed += report.malformed_frames;
    if (ctl != nullptr && session->machine) {
      ctl->complete(session->index);
      if (report.malformed_frames > 0) {
        ctl->note_malformed(session->client_id, report.malformed_frames);
      }
    }
    if (config_.on_complete) config_.on_complete(session->index);
  };

  while (next < queue.size() || !active.empty()) {
    while (active.size() < config_.max_in_flight && next < queue.size()) {
      Session* session = queue[next];
      ++next;
      if (ctl != nullptr) {
        const AdmitResult verdict = ctl->try_admit(
            session->client_id, session->index, session->cost_bytes);
        if (verdict.decision != AdmitDecision::kAdmitted) {
          SessionReport report;
          report.result = SessionResult::kShed;
          if (verdict.decision == AdmitDecision::kShedRateLimited) {
            ++stats_.shed_rate_limited;
          } else {
            ++stats_.shed_memory;
          }
          finish(session, report);
          continue;
        }
        ++stats_.admitted;
        if (verdict.evicted) {
          queue[verdict.evicted_handle]->evicted.store(
              true, std::memory_order_release);
          ++stats_.evicted_half_open;
        }
      }
      session->machine = session->build(session->rng);
      active.push_back(session);
    }

    ++stats_.waves;
    pool_.parallel_for(active.size(), [&](std::size_t i) {
      if (active[i]->evicted.load(std::memory_order_acquire)) return;
      SessionMachine& machine = *active[i]->machine;
      for (std::size_t k = 0; k < config_.steps_per_wave && !machine.done();
           ++k) {
        machine.step();
      }
    });

    // Retire finished sessions and compact the in-flight set; freed slots
    // refill from the queue on the next wave.
    std::size_t keep = 0;
    for (Session* session : active) {
      if (session->evicted.load(std::memory_order_acquire)) {
        SessionReport report = session->machine->report();
        report.result = SessionResult::kEvicted;
        finish(session, report);
      } else if (session->machine->done()) {
        finish(session, session->machine->report());
      } else {
        active[keep++] = session;
      }
    }
    active.resize(keep);
  }
}

}  // namespace neuropuls::core
