// HSC-IoT mutual authentication (§III-A, Fig. 4; Hossain et al. [19]).
//
// One CRP is the entire shared state: the Device holds (c_i, r_i) and the
// Verifier holds r_i. Per session:
//
//   Verifier -> Device : auth request (nonce)
//   Device             : c_{i+1} = RNG(r_i)         (challenge update)
//                        r_{i+1} = PUF(c_{i+1})
//                        m = (r_{i+1} ^ r_i) || H || CC || N
//   Device  -> Verifier: m, MAC(m, r_i)
//   Verifier           : check MAC with r_i  -> Device authentic
//                        r_{i+1} = (r_{i+1} ^ r_i) ^ r_i  (unmask)
//   Verifier-> Device  : MAC(c_{i+1}, r_{i+1})
//   Device             : check               -> Verifier authentic
//   both               : current CRP := (c_{i+1}, r_{i+1})
//
// H is a hash of device memory (a lightweight integrity hint), CC a clock
// count standing in for "time needed to perform a given task", N a fresh
// nonce. CRPs never cross the wire in clear; the Verifier stores exactly
// one response per device (O(1), vs the O(#CRPs) database baseline in
// `puf/crp_db.hpp`).
//
// Desynchronisation: if the confirm message is lost the Verifier has
// rotated but the Device has not. The Verifier therefore retains the
// previous response as a fallback secret for exactly one session — the
// standard recovery, exercised by the protocol-attack tests.
//
// What the PUF buys here — and what it does not: each session's MAC
// proves knowledge of the *current shared secret*, not possession of the
// physical PUF; an adversary who extracts r_i from the device can run
// sessions (the protocol's security reduces to the secrecy of one
// ephemeral value instead of a long-term NVM key, which is the HSC-IoT
// improvement). Verifying the *physical assembly* — that the genuine
// PIC+ASIC pair is still present — is the job of the model-based
// attestation path (`attestation.hpp`), where the Verifier owns a clone
// of the composite PUF and any swapped chip diverges (see the
// CompositeBindingGatesAttestation integration test).
#pragma once

#include <cstdint>
#include <optional>

#include "common/secret.hpp"
#include "crypto/bytes.hpp"
#include "crypto/chacha20.hpp"
#include "net/channel.hpp"
#include "puf/puf.hpp"

namespace neuropuls::core {

/// Result of a completed (or failed) authentication step.
enum class AuthStatus {
  kOk,
  kBadMac,
  kBadSession,
  kMalformed,
  // A re-sent response for a session that already authenticated. Rejected
  // before any MAC work or secret rotation: a replay storm burns the
  // attacker's rate-limit tokens, never a fresh CRP.
  kReplayed,
};

/// Shared provisioning record created at manufacturing time: the first CRP.
struct ProvisionedCrp {
  puf::Challenge challenge;
  puf::Response response;
};

/// Device-side endpoint. Owns the PUF and the current CRP.
class AuthDevice {
 public:
  /// `memory_view` is hashed into H each session (integrity hint);
  /// `clock_count` models the CC field.
  AuthDevice(puf::Puf& puf, ProvisionedCrp initial,
             crypto::Bytes memory_snapshot);

  /// Handles an auth request; produces the signed message m.
  /// Returns kMalformed / kBadSession without touching state on bad input.
  std::optional<net::Message> handle_request(const net::Message& request);

  /// Handles the verifier's confirm; on success rotates the CRP.
  AuthStatus handle_confirm(const net::Message& confirm);

  /// Current (secret) response — exposed for tests only; taint-typed so
  /// test assertions must go through common::ct_equal, never `==`.
  const common::SecretBytes& current_response() const noexcept {
    return current_response_;
  }
  std::uint64_t completed_sessions() const noexcept { return sessions_; }

  /// Mutates the device memory snapshot (models a compromise; the H field
  /// then mismatches on the next session).
  void corrupt_memory(std::size_t offset, std::uint8_t value);

 private:
  puf::Puf& puf_;
  common::SecretBytes current_response_;  // r_i — the live shared secret
  // Pending next CRP, applied when the verifier's confirm checks out. The
  // challenge is public; the response rides in its own taint wrapper.
  std::optional<puf::Challenge> pending_challenge_;
  common::SecretBytes pending_response_;
  crypto::Bytes memory_;
  std::uint64_t clock_count_ = 0;
  std::uint64_t sessions_ = 0;
  std::uint64_t active_session_ = 0;
  // Wire copy of the in-flight response: a byte-identical re-sent request
  // (replay, or a verifier retry after a lost frame) gets this back verbatim
  // instead of burning a fresh PUF evaluation per replayed frame.
  std::optional<net::Message> cached_response_;
  std::uint64_t cached_nonce_ = 0;
};

/// Verifier-side endpoint. Stores one response (plus a one-deep fallback).
class AuthVerifier {
 public:
  /// `challenge_bytes` is the device PUF's challenge size — the Verifier
  /// needs it to regenerate c_{i+1} = RNG(r_i) on its side.
  AuthVerifier(puf::Response initial_response,
               crypto::Bytes expected_memory_hash,
               std::size_t challenge_bytes);

  /// Starts session `session_id`; returns the request message.
  net::Message start(std::uint64_t session_id, std::uint64_t nonce);

  /// Processes the device's response. On success returns the confirm
  /// message and rotates the stored secret (keeping a fallback).
  struct Outcome {
    AuthStatus status = AuthStatus::kMalformed;
    std::optional<net::Message> confirm;
    bool memory_hash_ok = false;
    std::uint64_t clock_count = 0;
  };
  Outcome process_response(const net::Message& response);

  const common::SecretBytes& current_secret() const noexcept {
    return secret_;
  }
  std::uint64_t completed_sessions() const noexcept { return sessions_; }

 private:
  Outcome try_secret(const net::Message& response, crypto::ByteView secret);

  common::SecretBytes secret_;
  common::SecretBytes fallback_;  // pre-rotation secret; empty = none
  crypto::Bytes expected_memory_hash_;
  std::size_t challenge_bytes_;
  std::uint64_t active_session_ = 0;
  std::uint64_t nonce_ = 0;
  std::uint64_t sessions_ = 0;
  // Set once the active session authenticates. A second acceptable-looking
  // response for the same session is a replay: without this latch the
  // fallback secret (== the secret that just authenticated) would verify
  // the replayed MAC and rotate the stored secret a second time.
  bool session_complete_ = false;
};

/// Persists a provisioned CRP for device NVM / verifier database.
/// Format: u32 challenge-len || challenge || u32 response-len || response.
crypto::Bytes serialize_crp(const ProvisionedCrp& crp);

/// Parses a persisted CRP. Throws std::runtime_error on malformed input.
ProvisionedCrp deserialize_crp(crypto::ByteView blob);

/// Factory performing the manufacturing-time step: evaluates the PUF on a
/// random challenge and hands matching state to both parties.
struct ProvisioningResult {
  ProvisionedCrp device_crp;
  puf::Response verifier_secret;
};
ProvisioningResult provision(puf::Puf& puf, crypto::ChaChaDrbg& rng);

/// Runs one full session over a channel. Returns true iff both sides
/// authenticated and rotated. Convenience for examples/benches.
bool run_auth_session(AuthVerifier& verifier, AuthDevice& device,
                      net::DuplexChannel& channel, std::uint64_t session_id,
                      std::uint64_t nonce);

}  // namespace neuropuls::core
