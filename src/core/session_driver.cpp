#include "core/session_driver.hpp"

#include <algorithm>
#include <limits>

namespace neuropuls::core {

namespace {

crypto::Bytes driver_seed_bytes(std::uint64_t seed) {
  crypto::Bytes bytes = crypto::bytes_of("np-session-driver");
  crypto::append_u64_be(bytes, seed);
  return bytes;
}

}  // namespace

SessionDriver::SessionDriver(net::DuplexChannel& channel, RetryPolicy policy)
    : channel_(channel),
      policy_(policy),
      rng_(driver_seed_bytes(policy.seed)) {}

std::optional<net::Message> SessionDriver::expect(net::Direction direction,
                                                  net::MessageType type,
                                                  std::uint64_t session_id,
                                                  SessionReport& report) {
  std::size_t polls = 0;
  for (;;) {
    if (auto frame = channel_.receive(direction)) {
      if (frame->type == type && frame->session_id == session_id) {
        return frame;
      }
      // Duplicate, stale-attempt, or type-corrupted frame: skip it. This
      // cannot loop unboundedly — each discard consumes a queued frame,
      // and only polls (bounded below) can enqueue more.
      ++report.discarded_frames;
      continue;
    }
    if (polls >= policy_.receive_poll_budget) return std::nullopt;
    ++polls;
    ++report.poll_ticks;
    channel_.poll();
  }
}

void SessionDriver::backoff(unsigned attempt, SessionReport& report) {
  const std::size_t base = std::max<std::size_t>(1, policy_.backoff_base_polls);
  // Saturate at backoff_max_polls *before* shifting: base << shift wraps
  // (or is UB past the type width) long before attempt reaches its
  // policy-configurable maximum, which would collapse the exponential
  // term to zero instead of holding it at the cap.
  const unsigned shift = attempt - 1;
  std::size_t exp = policy_.backoff_max_polls;
  if (shift < static_cast<unsigned>(std::numeric_limits<std::size_t>::digits) &&
      base <= (policy_.backoff_max_polls >> shift)) {
    exp = base << shift;
  }
  const std::size_t jitter = static_cast<std::size_t>(rng_.uniform(base));
  for (std::size_t i = 0; i < exp + jitter; ++i) {
    ++report.backoff_ticks;
    channel_.poll();
  }
}

void SessionDriver::drain(SessionReport& report) {
  while (channel_.receive(net::Direction::kAtoB)) ++report.discarded_frames;
  while (channel_.receive(net::Direction::kBtoA)) ++report.discarded_frames;
}

SessionReport SessionDriver::run_mutual_auth(AuthVerifier& verifier,
                                             AuthDevice& device,
                                             std::uint64_t session_base) {
  using net::Direction;
  using net::MessageType;
  SessionReport report;

  for (unsigned attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
    report.attempts = attempt;
    if (attempt > 1) {
      backoff(attempt - 1, report);
      drain(report);
    }
    const std::uint64_t sid = session_base + attempt;
    const std::uint64_t nonce = rng_.next_u64();

    channel_.send(Direction::kAtoB, verifier.start(sid, nonce));
    const auto request =
        expect(Direction::kAtoB, MessageType::kAuthRequest, sid, report);
    if (!request) continue;

    const auto response = device.handle_request(*request);
    if (!response) continue;  // corrupted request payload
    channel_.send(Direction::kBtoA, *response);

    const auto delivered =
        expect(Direction::kBtoA, MessageType::kAuthResponse, sid, report);
    if (!delivered) continue;
    const auto outcome = verifier.process_response(*delivered);
    report.last_auth_status = outcome.status;
    if (outcome.status != AuthStatus::kOk || !outcome.confirm) continue;
    channel_.send(Direction::kAtoB, *outcome.confirm);

    // The verifier has already rotated; if the confirm is lost the device
    // stays on the old secret and the *next* attempt recovers through the
    // verifier's one-deep fallback (mutual_auth.hpp) — no lockout.
    const auto confirm =
        expect(Direction::kAtoB, MessageType::kAuthConfirm, sid, report);
    if (!confirm) continue;
    if (device.handle_confirm(*confirm) != AuthStatus::kOk) continue;

    report.result = SessionResult::kConverged;
    report.last_auth_status = AuthStatus::kOk;
    return report;
  }
  return report;
}

SessionReport SessionDriver::run_eke(EkeParty& initiator, EkeParty& responder,
                                     std::uint64_t session_base) {
  using net::Direction;
  using net::MessageType;
  SessionReport report;

  for (unsigned attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
    report.attempts = attempt;
    if (attempt > 1) {
      backoff(attempt - 1, report);
      drain(report);
    }
    const std::uint64_t sid = session_base + attempt;

    // initiate() rolls fresh ephemerals per attempt, so a replayed or
    // delayed hello of a dead attempt can never be completed later.
    channel_.send(Direction::kAtoB, initiator.initiate(sid));
    const auto hello =
        expect(Direction::kAtoB, MessageType::kEkeClientHello, sid, report);
    if (!hello) continue;

    const auto server_hello = responder.respond(*hello);
    if (!server_hello) continue;  // corrupted hello (bad length/element)
    channel_.send(Direction::kBtoA, *server_hello);

    const auto delivered =
        expect(Direction::kBtoA, MessageType::kEkeServerHello, sid, report);
    if (!delivered) continue;
    const auto client_confirm = initiator.confirm(*delivered);
    if (!client_confirm) continue;  // MAC mismatch wipes the key — retry
    channel_.send(Direction::kAtoB, *client_confirm);

    const auto finalize =
        expect(Direction::kAtoB, MessageType::kEkeClientConfirm, sid, report);
    if (!finalize) continue;
    if (!responder.finalize(*finalize)) continue;

    report.result = SessionResult::kConverged;
    return report;
  }
  return report;
}

}  // namespace neuropuls::core
