#include "core/session_driver.hpp"

#include <algorithm>
#include <limits>

namespace neuropuls::core {

crypto::Bytes session_driver_seed_bytes(std::uint64_t seed) {
  crypto::Bytes bytes = crypto::bytes_of("np-session-driver");
  crypto::append_u64_be(bytes, seed);
  return bytes;
}

SessionMachine::SessionMachine(net::DuplexChannel& channel,
                               const RetryPolicy& policy,
                               crypto::ChaChaDrbg& rng,
                               std::uint64_t session_base)
    : channel_(channel),
      policy_(policy),
      rng_(rng),
      session_base_(session_base) {}

void SessionMachine::expect_next(net::Direction direction,
                                 net::MessageType type) {
  expect_direction_ = direction;
  expect_type_ = type;
  expect_polls_ = 0;
  mode_ = Mode::kExpect;
}

void SessionMachine::start_attempt() {
  sid_ = session_base_ + attempt_;
  begin_attempt();
}

void SessionMachine::fail_attempt() {
  ++attempt_;
  mode_ = Mode::kStartAttempt;
}

std::size_t SessionMachine::backoff_ticks(unsigned attempt) {
  const std::size_t base = std::max<std::size_t>(1, policy_.backoff_base_polls);
  // Saturate at backoff_max_polls *before* shifting: base << shift wraps
  // (or is UB past the type width) long before attempt reaches its
  // policy-configurable maximum, which would collapse the exponential
  // term to zero instead of holding it at the cap.
  const unsigned shift = attempt - 1;
  std::size_t exp = policy_.backoff_max_polls;
  if (shift < static_cast<unsigned>(std::numeric_limits<std::size_t>::digits) &&
      base <= (policy_.backoff_max_polls >> shift)) {
    exp = base << shift;
  }
  return exp + static_cast<std::size_t>(rng_.uniform(base));
}

void SessionMachine::drain() {
  while (channel_.receive(net::Direction::kAtoB)) ++report_.discarded_frames;
  while (channel_.receive(net::Direction::kBtoA)) ++report_.discarded_frames;
}

std::size_t SessionMachine::wait_hint() const noexcept {
  switch (mode_) {
    case Mode::kDone:
    case Mode::kStartAttempt:
      return 0;
    case Mode::kBackoff:
      return backoff_remaining_;
    case Mode::kExpect:
      if (channel_.readable(expect_direction_)) return 0;
      // A pollable channel (delay-injecting fault layer) may deliver the
      // expected frame on any tick, so the next poll is worth running
      // soon. A bare channel cannot conjure a frame: the remaining budget
      // is pure waiting, plus one step to trigger the attempt failure.
      if (channel_.pollable()) return 1;
      return policy_.receive_poll_budget >= expect_polls_
                 ? policy_.receive_poll_budget - expect_polls_ + 1
                 : 1;
  }
  return 0;
}

bool SessionMachine::step() {
  for (;;) {
    switch (mode_) {
      case Mode::kDone:
        return false;

      case Mode::kStartAttempt: {
        if (attempt_ > policy_.max_attempts) {
          mode_ = Mode::kDone;
          return false;
        }
        report_.attempts = attempt_;
        if (attempt_ > 1) {
          // Jitter is drawn now, before the first backoff poll — the same
          // DRBG draw order as the blocking driver's backoff().
          backoff_remaining_ = backoff_ticks(attempt_ - 1);
          mode_ = Mode::kBackoff;
          continue;
        }
        start_attempt();
        continue;
      }

      case Mode::kBackoff: {
        if (backoff_remaining_ == 0) {
          drain();
          start_attempt();
          continue;
        }
        --backoff_remaining_;
        ++report_.backoff_ticks;
        channel_.poll();
        return true;
      }

      case Mode::kExpect: {
        bool matched = false;
        std::size_t discards_this_step = 0;
        while (auto frame = channel_.receive(expect_direction_)) {
          if (frame->type != expect_type_ || frame->session_id != sid_) {
            // Duplicate, stale-attempt, or type-corrupted frame: skip it.
            // Each discard consumes a queued frame, and the per-step
            // budget below yields to the scheduler under a flood — a
            // hostile inbox can cost us steps, never an unbounded one.
            ++report_.discarded_frames;
            if (policy_.max_discards_per_step != 0 &&
                ++discards_this_step >= policy_.max_discards_per_step) {
              // Yield without polling: the remaining frames are handled
              // on the next step, so transcripts are byte-identical to
              // an unbudgeted run.
              return true;
            }
            continue;
          }
          if (policy_.max_frame_bytes != 0 &&
              frame->payload.size() > policy_.max_frame_bytes) {
            // Matches the expectation but cannot be legitimate: reject on
            // length alone, before any parse or MAC code touches it.
            ++report_.discarded_frames;
            ++report_.malformed_frames;
            if (policy_.max_discards_per_step != 0 &&
                ++discards_this_step >= policy_.max_discards_per_step) {
              return true;
            }
            continue;
          }
          matched = true;
          switch (on_frame(*frame)) {
            case FrameOutcome::kAdvance:
              break;  // on_frame installed the next expectation
            case FrameOutcome::kConverged:
              report_.result = SessionResult::kConverged;
              mode_ = Mode::kDone;
              break;
            case FrameOutcome::kFailAttempt:
              // The frame parsed as ours but failed protocol checks —
              // corruption or hostility either way.
              ++report_.malformed_frames;
              fail_attempt();
              break;
          }
          break;
        }
        if (matched) continue;
        if (expect_polls_ >= policy_.receive_poll_budget) {
          fail_attempt();
          continue;
        }
        ++expect_polls_;
        ++report_.poll_ticks;
        channel_.poll();
        return true;
      }
    }
  }
}

AuthSessionMachine::AuthSessionMachine(net::DuplexChannel& channel,
                                       const RetryPolicy& policy,
                                       crypto::ChaChaDrbg& rng,
                                       AuthVerifier& verifier,
                                       AuthDevice& device,
                                       std::uint64_t session_base)
    : SessionMachine(channel, policy, rng, session_base),
      verifier_(verifier),
      device_(device) {}

void AuthSessionMachine::begin_attempt() {
  phase_ = 0;
  const std::uint64_t nonce = rng_.next_u64();
  channel_.send(net::Direction::kAtoB, verifier_.start(sid_, nonce));
  expect_next(net::Direction::kAtoB, net::MessageType::kAuthRequest);
}

SessionMachine::FrameOutcome AuthSessionMachine::on_frame(
    const net::Message& frame) {
  using net::Direction;
  using net::MessageType;
  switch (phase_) {
    case 0: {
      const auto response = device_.handle_request(frame);
      if (!response) return FrameOutcome::kFailAttempt;  // corrupted payload
      channel_.send(Direction::kBtoA, *response);
      phase_ = 1;
      expect_next(Direction::kBtoA, MessageType::kAuthResponse);
      return FrameOutcome::kAdvance;
    }
    case 1: {
      const auto outcome = verifier_.process_response(frame);
      report_.last_auth_status = outcome.status;
      if (outcome.status != AuthStatus::kOk || !outcome.confirm) {
        return FrameOutcome::kFailAttempt;
      }
      channel_.send(Direction::kAtoB, *outcome.confirm);
      phase_ = 2;
      // The verifier has already rotated; if the confirm is lost the
      // device stays on the old secret and the *next* attempt recovers
      // through the verifier's one-deep fallback (mutual_auth.hpp).
      expect_next(Direction::kAtoB, MessageType::kAuthConfirm);
      return FrameOutcome::kAdvance;
    }
    default: {
      if (device_.handle_confirm(frame) != AuthStatus::kOk) {
        return FrameOutcome::kFailAttempt;
      }
      report_.last_auth_status = AuthStatus::kOk;
      return FrameOutcome::kConverged;
    }
  }
}

EkeSessionMachine::EkeSessionMachine(net::DuplexChannel& channel,
                                     const RetryPolicy& policy,
                                     crypto::ChaChaDrbg& rng,
                                     EkeParty& initiator, EkeParty& responder,
                                     std::uint64_t session_base)
    : SessionMachine(channel, policy, rng, session_base),
      initiator_(initiator),
      responder_(responder) {}

void EkeSessionMachine::begin_attempt() {
  phase_ = 0;
  // initiate() rolls fresh ephemerals per attempt, so a replayed or
  // delayed hello of a dead attempt can never be completed later.
  channel_.send(net::Direction::kAtoB, initiator_.initiate(sid_));
  expect_next(net::Direction::kAtoB, net::MessageType::kEkeClientHello);
}

SessionMachine::FrameOutcome EkeSessionMachine::on_frame(
    const net::Message& frame) {
  using net::Direction;
  using net::MessageType;
  switch (phase_) {
    case 0: {
      const auto server_hello = responder_.respond(frame);
      if (!server_hello) return FrameOutcome::kFailAttempt;  // bad hello
      channel_.send(Direction::kBtoA, *server_hello);
      phase_ = 1;
      expect_next(Direction::kBtoA, MessageType::kEkeServerHello);
      return FrameOutcome::kAdvance;
    }
    case 1: {
      const auto client_confirm = initiator_.confirm(frame);
      // MAC mismatch wipes the key — retry with fresh ephemerals.
      if (!client_confirm) return FrameOutcome::kFailAttempt;
      channel_.send(Direction::kAtoB, *client_confirm);
      phase_ = 2;
      expect_next(Direction::kAtoB, MessageType::kEkeClientConfirm);
      return FrameOutcome::kAdvance;
    }
    default: {
      if (!responder_.finalize(frame)) return FrameOutcome::kFailAttempt;
      return FrameOutcome::kConverged;
    }
  }
}

SessionDriver::SessionDriver(net::DuplexChannel& channel, RetryPolicy policy)
    : channel_(channel),
      policy_(policy),
      rng_(session_driver_seed_bytes(policy.seed)) {}

SessionReport SessionDriver::run_mutual_auth(AuthVerifier& verifier,
                                             AuthDevice& device,
                                             std::uint64_t session_base) {
  AuthSessionMachine machine(channel_, policy_, rng_, verifier, device,
                             session_base);
  while (machine.step()) {
  }
  return machine.report();
}

SessionReport SessionDriver::run_eke(EkeParty& initiator, EkeParty& responder,
                                     std::uint64_t session_base) {
  EkeSessionMachine machine(channel_, policy_, rng_, initiator, responder,
                            session_base);
  while (machine.step()) {
  }
  return machine.report();
}

}  // namespace neuropuls::core
