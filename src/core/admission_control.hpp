// Admission control for a fleet-facing verifier under hostile load.
//
// ROADMAP item 4: a public verifier endpoint gets attacked, not just
// used. This layer sits between session submission and the
// core::SessionEngine runtimes and decides, *before any per-session
// allocation happens*, whether a session may enter the system:
//
//   1. Rate: a per-client token bucket, keyed by SipHash-2-4 of the
//      client id. The client table is fixed-size and open-addressed with
//      LRU eviction inside a small probe window, so an attacker minting
//      fresh client ids can churn the table but never grow it. Buckets
//      refill lazily from an explicit virtual clock (advance()) — no
//      wall-clock reads, so floods replay deterministically in tests.
//   2. Memory: a per-session cost cap and a global charged-bytes budget.
//      A session declares its cost (arena record + helper data + frame
//      buffers) at admission; the controller rejects before the engine
//      builds anything (reject-before-alloc), charges on admit, and
//      releases on completion. peak_charged_bytes is the provable
//      high-water mark the chaos tests pin against the budget.
//   3. Half-open accounting: every admitted-but-incomplete session holds
//      a slot in a fixed table. A client at its per-client cap evicts its
//      *own* oldest half-open session; a full table evicts the globally
//      oldest — pastel's orphan-pool discipline. One client can never pin
//      the table, and the victim is reported so the engine can kill it.
//
// Malformed/oversized frames observed downstream (SessionReport::
// malformed_frames, ChannelShedStats) are charged back to the sender's
// bucket via note_malformed(), so a client that floods garbage rate-
// limits itself out of future admissions.
//
// Threading: every method is safe from any engine worker. All state sits
// behind one leaf mutex (admission_mutex_ — below every engine lock in
// the canonical order, see common/mutex.hpp); the admit/complete fast
// paths are allocation-free (all tables are preallocated in the
// constructor), which tools/ctlint's admission-alloc pass enforces.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace neuropuls::core {

struct AdmissionConfig {
  /// Client-bucket table slots (rounded up to a power of two). The table
  /// never grows: excess client cardinality causes LRU eviction, not
  /// allocation.
  std::size_t client_slots = 1024;
  /// Token bucket depth: admissions a quiet client may burst.
  std::uint32_t bucket_capacity = 8;
  /// Virtual ticks per token refilled (advance() supplies the ticks).
  std::uint32_t refill_every_ticks = 1;
  /// Tokens burned per malformed/oversized frame attributed to a client.
  std::uint32_t malformed_token_cost = 1;
  /// Global charged-bytes ceiling across all half-open sessions.
  std::size_t global_budget_bytes = 8u << 20;
  /// Largest cost a single session may declare.
  std::size_t session_budget_bytes = 64u << 10;
  /// Half-open session table capacity (the hard concurrency ceiling the
  /// memory budget is accounted against).
  std::size_t half_open_slots = 256;
  /// Half-open sessions one client may hold before its oldest is evicted.
  std::size_t half_open_per_client = 4;
  /// SipHash key for client-id hashing. Deterministic default so tests
  /// reproduce; a deployment seeds it per-process so an attacker cannot
  /// precompute probe-window collisions.
  std::array<std::uint8_t, 16> hash_key{
      0x4e, 0x50, 0x2d, 0x61, 0x64, 0x6d, 0x69, 0x74,
      0x2d, 0x6b, 0x65, 0x79, 0x2d, 0x76, 0x31, 0x00};
};

enum class AdmitDecision : std::uint8_t {
  kAdmitted,
  kShedRateLimited,  // client bucket empty
  kShedMemory,       // session or global byte budget exceeded
};

struct AdmitResult {
  AdmitDecision decision = AdmitDecision::kShedRateLimited;
  /// True when admitting this session evicted a half-open victim; the
  /// caller must kill the session whose handle is below.
  bool evicted = false;
  std::size_t evicted_handle = 0;
};

struct AdmissionStats {
  std::uint64_t admitted = 0;
  std::uint64_t shed_rate_limited = 0;
  std::uint64_t shed_memory = 0;
  std::uint64_t evicted_half_open = 0;
  std::uint64_t malformed = 0;       // frames charged via note_malformed
  std::uint64_t clients_evicted = 0; // LRU evictions in the client table
  std::size_t half_open = 0;         // current half-open sessions
  std::size_t charged_bytes = 0;     // current charged memory
  std::size_t peak_charged_bytes = 0;
};

/// See file comment. One controller fronts one engine's runs; handles are
/// the engine's submission indices and must be complete()d (idempotent)
/// when the session retires, so the table drains between runs.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config = {});

  /// Advances the virtual refill clock. Deterministic: buckets only
  /// refill through this, never through wall time.
  void advance(std::uint64_t ticks) NP_EXCLUDES(admission_mutex_);

  /// Full admission decision for a session `client_id` wants to open,
  /// costing `cost_bytes` of budget, identified by `handle`. Order:
  /// rate bucket, per-session cap, global budget, half-open table (which
  /// may evict). On kAdmitted one token is consumed and the bytes are
  /// charged; on any shed, nothing is.
  AdmitResult try_admit(std::uint64_t client_id, std::size_t handle,
                        std::size_t cost_bytes) NP_EXCLUDES(admission_mutex_);

  /// Releases `handle`'s half-open slot and charged bytes. Idempotent —
  /// eviction may already have freed it.
  void complete(std::size_t handle) NP_EXCLUDES(admission_mutex_);

  /// Charges `frames` malformed/oversized frames to `client_id`'s bucket
  /// (saturating at empty). The sender of garbage pays in future
  /// admissions, exactly like pastel's misbehavior accounting.
  void note_malformed(std::uint64_t client_id, std::uint64_t frames)
      NP_EXCLUDES(admission_mutex_);

  AdmissionStats stats() const NP_EXCLUDES(admission_mutex_);
  const AdmissionConfig& config() const noexcept { return config_; }

 private:
  struct ClientSlot {
    bool used = false;
    std::uint64_t tag = 0;        // full SipHash of the client id
    std::uint32_t tokens = 0;
    std::uint64_t last_refill = 0;  // virtual tick of the last refill
    std::uint64_t last_used = 0;    // LRU stamp (monotone use counter)
  };
  struct HalfOpenSlot {
    bool used = false;
    std::uint64_t client_tag = 0;
    std::size_t handle = 0;
    std::uint64_t admit_seq = 0;  // monotone: smallest == oldest
    std::size_t cost_bytes = 0;
  };

  static constexpr std::size_t kProbeWindow = 8;

  std::uint64_t hash_client(std::uint64_t client_id) const noexcept;
  /// Finds or (LRU-evicting) creates the bucket for `tag`, refilled to
  /// the current virtual tick.
  ClientSlot& bucket_for(std::uint64_t tag) NP_REQUIRES(admission_mutex_);
  void refill(ClientSlot& slot) NP_REQUIRES(admission_mutex_);
  void release_slot(HalfOpenSlot& slot) NP_REQUIRES(admission_mutex_);

  AdmissionConfig config_;
  std::size_t client_mask_ = 0;

  mutable common::Mutex admission_mutex_;
  std::vector<ClientSlot> clients_ NP_GUARDED_BY(admission_mutex_);
  std::vector<HalfOpenSlot> half_open_ NP_GUARDED_BY(admission_mutex_);
  std::uint64_t now_ NP_GUARDED_BY(admission_mutex_) = 0;
  std::uint64_t use_seq_ NP_GUARDED_BY(admission_mutex_) = 0;
  std::uint64_t admit_seq_ NP_GUARDED_BY(admission_mutex_) = 0;
  std::size_t open_count_ NP_GUARDED_BY(admission_mutex_) = 0;
  AdmissionStats stats_ NP_GUARDED_BY(admission_mutex_);
};

}  // namespace neuropuls::core
