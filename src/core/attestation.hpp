// PUF-based remote software attestation (§III-B).
//
// The Verifier sends (timestamp t, challenge c1). The Device:
//   r_1 = pPUF(c_1)
//   m_1..m_n = RNG(r_1 + t)            -- random walk visiting all chunks
//   h_1 = HASH(m_1, r_1)
//   r_{i+1} = pPUF(r_i)                -- continuous challenge chaining
//   h_{i+1} = HASH(m_{i+1}, r_{i+1}, h_i)
// and returns h_n. The Verifier holds a copy of the uncompromised memory
// and a *model of the pPUF*, recomputes h_n concurrently, and accepts iff
// the digest matches AND the response arrived within the temporal
// constraint. Hiding compromised memory (shuffling it around during the
// walk) forces extra work per chunk, which the time bound catches; the
// paper's point is that a >= 5 Gb/s pPUF never becomes the bottleneck, so
// the bound can be set tight around the hash+memory time alone.
//
// Per §III-B the construction assumes "an ideally reliable strong PUF":
// both sides use the noiseless PUF evaluation; the PUF-model requirement
// is modelled by giving the Verifier a deterministic clone.
#pragma once

#include <cstdint>
#include <optional>

#include "crypto/bytes.hpp"
#include "crypto/chacha20.hpp"
#include "net/channel.hpp"
#include "puf/puf.hpp"

namespace neuropuls::core {

struct AttestationConfig {
  std::size_t chunk_size = 1024;  // bytes hashed per walk step
  /// Verifier accepts elapsed <= honest_estimate * time_bound_factor.
  double time_bound_factor = 1.30;
};

/// Simulated cost model for the device-side computation (nanoseconds).
/// Defaults approximate a small embedded core with a hash engine.
struct AttestationCostModel {
  double hash_ns_per_byte = 1.2;
  double hash_ns_fixed = 60.0;
  double memory_read_ns_per_byte = 0.125;
  double puf_response_ns = 60.0;  // << hash time: the §III-B speed claim
  double network_round_trip_ns = 2e6;
};

/// Digest computation shared by Device and Verifier (who runs it on the
/// reference memory with the PUF model).
crypto::Bytes attestation_digest(const crypto::Bytes& memory,
                                 const puf::Puf& puf, std::uint64_t timestamp,
                                 const puf::Challenge& c1,
                                 std::size_t chunk_size);

/// Honest device-side runtime estimate for the cost model.
double honest_attestation_time_ns(std::size_t memory_bytes,
                                  const AttestationConfig& config,
                                  const AttestationCostModel& cost);

/// Device endpoint.
class AttestDevice {
 public:
  AttestDevice(puf::Puf& puf, crypto::Bytes memory, AttestationConfig config);

  /// Processes a request; returns the report message (h_n).
  std::optional<net::Message> handle_request(const net::Message& request);

  /// Models a compromise: overwrite a memory byte. The digest then
  /// mismatches unless the attacker also plays hide-the-memory (below).
  void corrupt_memory(std::size_t offset, std::uint8_t value);

  /// Models the memory-hiding attacker of §III-B: the device keeps a
  /// pristine copy and redirects reads of corrupted regions to it, paying
  /// `overhead_factor` extra time per chunk. Digest matches; timing does
  /// not.
  void enable_memory_hiding(crypto::Bytes pristine_copy,
                            double overhead_factor);

  /// The runtime multiplier of the last attestation (1.0 when honest).
  double last_time_factor() const noexcept { return last_time_factor_; }

  const crypto::Bytes& memory() const noexcept { return memory_; }

 private:
  puf::Puf& puf_;
  crypto::Bytes memory_;
  AttestationConfig config_;
  std::optional<crypto::Bytes> pristine_;
  double hiding_overhead_ = 1.0;
  double last_time_factor_ = 1.0;
};

/// Verifier endpoint: owns the reference memory and the PUF model.
class AttestVerifier {
 public:
  AttestVerifier(const puf::Puf& puf_model, crypto::Bytes reference_memory,
                 AttestationConfig config, AttestationCostModel cost);

  /// Builds the attestation request for (session, timestamp); the
  /// challenge comes from `rng`.
  net::Message start(std::uint64_t session_id, std::uint64_t timestamp,
                     crypto::ChaChaDrbg& rng);

  struct Outcome {
    bool digest_ok = false;
    bool time_ok = false;
    bool accepted = false;
    double time_budget_ns = 0.0;
    double elapsed_ns = 0.0;
  };

  /// Checks the device's report against the expected digest and the
  /// temporal constraint. `elapsed_ns` is the measured round-trip minus
  /// network estimate (supplied by the caller's clock — the system
  /// simulator in `src/sim` provides it end-to-end).
  Outcome check(const net::Message& report, double elapsed_ns);

  /// Expected honest compute time (the basis of the bound).
  double honest_time_ns() const;

 private:
  const puf::Puf& puf_model_;
  crypto::Bytes reference_memory_;
  AttestationConfig config_;
  AttestationCostModel cost_;
  std::uint64_t active_session_ = 0;
  std::uint64_t timestamp_ = 0;
  puf::Challenge active_challenge_;
};

}  // namespace neuropuls::core
