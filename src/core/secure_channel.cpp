#include "core/secure_channel.hpp"

#include <stdexcept>

#include "crypto/aes.hpp"
#include "crypto/hmac.hpp"

namespace neuropuls::core {

namespace {
constexpr std::size_t kSeqLen = 8;
constexpr std::size_t kTagLen = 16;

crypto::Bytes nonce_for(std::uint64_t sequence) {
  crypto::Bytes nonce(16, 0);
  crypto::put_u64_be(std::span<std::uint8_t>(nonce.data(), 8), sequence);
  return nonce;
}
}  // namespace

common::SecretBytes SecureChannel::direction_key(
    crypto::ByteView session_key, bool initiator_to_responder) {
  return common::SecretBytes(crypto::hkdf(
      crypto::ByteView{}, session_key,
      initiator_to_responder ? crypto::bytes_of("np-sc-i2r")
                             : crypto::bytes_of("np-sc-r2i"),
      32));
}

SecureChannel::SecureChannel(common::SecretBytes session_key,
                             bool is_initiator, SecureChannelConfig config)
    : config_(config) {
  if (session_key.empty()) {
    throw std::invalid_argument("SecureChannel: empty session key");
  }
  if (config_.rekey_interval == 0) {
    throw std::invalid_argument("SecureChannel: zero rekey interval");
  }
  send_key_ = direction_key(session_key.reveal(), is_initiator);
  recv_key_ = direction_key(session_key.reveal(), !is_initiator);
  // `session_key` wipes on scope exit (SecretBytes destructor).
}

void SecureChannel::maybe_ratchet(common::SecretBytes& key,
                                  std::uint64_t seq) {
  if (seq != 0 && seq % config_.rekey_interval == 0) {
    // Move-assignment wipes the pre-ratchet key before installing the
    // stepped one — forward secrecy within the record stream.
    key = common::SecretBytes(crypto::hkdf(
        crypto::ByteView{}, key.reveal(), crypto::bytes_of("np-sc-ratchet"),
        32));
  }
}

crypto::Bytes SecureChannel::seal(crypto::ByteView plaintext) {
  maybe_ratchet(send_key_, send_seq_);
  const std::uint64_t seq = send_seq_++;

  crypto::Bytes record(kSeqLen);
  crypto::put_u64_be(record, seq);

  const crypto::Bytes enc_key = crypto::hkdf(
      crypto::ByteView{}, send_key_.reveal(), crypto::bytes_of("enc"), 16);
  const crypto::Bytes mac_key = crypto::hkdf(
      crypto::ByteView{}, send_key_.reveal(), crypto::bytes_of("mac"), 16);

  const crypto::Bytes body =
      crypto::aes_ctr(enc_key, nonce_for(seq), plaintext);
  record.insert(record.end(), body.begin(), body.end());

  const crypto::Bytes tag = crypto::aes_cmac(mac_key, record);
  record.insert(record.end(), tag.begin(), tag.begin() + kTagLen);
  return record;
}

std::optional<crypto::Bytes> SecureChannel::open(crypto::ByteView record) {
  if (poisoned_) return std::nullopt;
  if (record.size() < kSeqLen + kTagLen) {
    poisoned_ = true;
    return std::nullopt;
  }
  const std::uint64_t seq = crypto::get_u64_be(record.first(kSeqLen));

  maybe_ratchet(recv_key_, recv_seq_);
  if (seq != recv_seq_) {  // replay, reorder, or drop
    poisoned_ = true;
    return std::nullopt;
  }

  const crypto::Bytes enc_key = crypto::hkdf(
      crypto::ByteView{}, recv_key_.reveal(), crypto::bytes_of("enc"), 16);
  const crypto::Bytes mac_key = crypto::hkdf(
      crypto::ByteView{}, recv_key_.reveal(), crypto::bytes_of("mac"), 16);

  const crypto::ByteView signed_part = record.first(record.size() - kTagLen);
  const crypto::ByteView tag = record.subspan(record.size() - kTagLen);
  const crypto::Bytes expected = crypto::aes_cmac(mac_key, signed_part);
  if (!crypto::ct_equal(tag,
                        crypto::ByteView(expected).first(kTagLen))) {
    poisoned_ = true;
    return std::nullopt;
  }

  ++recv_seq_;
  const crypto::ByteView body = signed_part.subspan(kSeqLen);
  return crypto::aes_ctr(enc_key, nonce_for(seq), body);
}

}  // namespace neuropuls::core
