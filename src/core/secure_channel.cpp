#include "core/secure_channel.hpp"

#include <stdexcept>

#include "crypto/aes.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/hmac.hpp"

namespace neuropuls::core {

namespace {
constexpr std::size_t kSeqLen = 8;
constexpr std::size_t kTagLen = 16;

// 12-byte ChaCha20 nonce: the direction-bound sequence number big-endian,
// zero-padded. Sequence uniqueness per direction key is the rekey
// interval's job.
std::array<std::uint8_t, 12> nonce_for(std::uint64_t sequence) {
  std::array<std::uint8_t, 12> nonce{};
  crypto::put_u64_be(std::span<std::uint8_t>(nonce.data(), 8), sequence);
  return nonce;
}
}  // namespace

common::SecretBytes SecureChannel::direction_key(
    crypto::ByteView session_key, bool initiator_to_responder) {
  return common::SecretBytes(crypto::hkdf(
      crypto::ByteView{}, session_key,
      initiator_to_responder ? crypto::bytes_of("np-sc-i2r")
                             : crypto::bytes_of("np-sc-r2i"),
      32));
}

SecureChannel::DirectionKeys SecureChannel::make_direction_keys(
    common::SecretBytes root) {
  DirectionKeys keys;
  keys.enc = common::SecretBytes(crypto::hkdf(
      crypto::ByteView{}, root.reveal(), crypto::bytes_of("enc"), 32));
  keys.mac = common::SecretBytes(crypto::hkdf(
      crypto::ByteView{}, root.reveal(), crypto::bytes_of("mac"), 16));
  keys.root = std::move(root);
  return keys;
}

SecureChannel::SecureChannel(common::SecretBytes session_key,
                             bool is_initiator, SecureChannelConfig config)
    : config_(config) {
  if (session_key.empty()) {
    throw std::invalid_argument("SecureChannel: empty session key");
  }
  if (config_.rekey_interval == 0) {
    throw std::invalid_argument("SecureChannel: zero rekey interval");
  }
  send_ = make_direction_keys(direction_key(session_key.reveal(),
                                            is_initiator));
  recv_ = make_direction_keys(direction_key(session_key.reveal(),
                                            !is_initiator));
  // `session_key` wipes on scope exit (SecretBytes destructor).
}

void SecureChannel::maybe_ratchet(DirectionKeys& keys, std::uint64_t seq) {
  if (seq != 0 && seq % config_.rekey_interval == 0) {
    // Move-assignment wipes the pre-ratchet keys before installing the
    // stepped ones — forward secrecy within the record stream.
    keys = make_direction_keys(common::SecretBytes(crypto::hkdf(
        crypto::ByteView{}, keys.root.reveal(),
        crypto::bytes_of("np-sc-ratchet"), 32)));
  }
}

crypto::Bytes SecureChannel::seal(crypto::ByteView plaintext) {
  maybe_ratchet(send_, send_seq_);
  const std::uint64_t seq = send_seq_++;

  crypto::Bytes record(kSeqLen);
  crypto::put_u64_be(record, seq);

  record.insert(record.end(), plaintext.begin(), plaintext.end());
  const auto nonce = nonce_for(seq);
  crypto::chacha20_xor_inplace(
      send_.enc.reveal(), nonce, 0,
      std::span<std::uint8_t>(record.data() + kSeqLen,
                              record.size() - kSeqLen));

  const crypto::Bytes tag = crypto::aes_cmac(send_.mac.reveal(), record);
  record.insert(record.end(), tag.begin(), tag.begin() + kTagLen);
  return record;
}

std::optional<crypto::Bytes> SecureChannel::open(crypto::ByteView record) {
  if (poisoned_) return std::nullopt;
  if (record.size() < kSeqLen + kTagLen) {
    poisoned_ = true;
    return std::nullopt;
  }
  const std::uint64_t seq = crypto::get_u64_be(record.first(kSeqLen));

  maybe_ratchet(recv_, recv_seq_);
  if (seq != recv_seq_) {  // replay, reorder, or drop
    poisoned_ = true;
    return std::nullopt;
  }

  const crypto::ByteView signed_part = record.first(record.size() - kTagLen);
  const crypto::ByteView tag = record.subspan(record.size() - kTagLen);
  const crypto::Bytes expected = crypto::aes_cmac(recv_.mac.reveal(),
                                                  signed_part);
  if (!crypto::ct_equal(tag,
                        crypto::ByteView(expected).first(kTagLen))) {
    poisoned_ = true;
    return std::nullopt;
  }

  ++recv_seq_;
  const crypto::ByteView body = signed_part.subspan(kSeqLen);
  crypto::Bytes plain(body.begin(), body.end());
  const auto nonce = nonce_for(seq);
  crypto::chacha20_xor_inplace(recv_.enc.reveal(), nonce, 0, plain);
  return plain;
}

}  // namespace neuropuls::core
