// Multiplexed verifier session engine — many handshakes in flight at
// once over one thread pool.
//
// The paper's verifier is fleet-facing: §III/§IV describe one
// infrastructure endpoint authenticating and key-exchanging with a
// population of PUF devices, so verifier throughput is sessions/sec, not
// single-handshake latency. A thread-per-session design caps concurrency
// at the OS thread budget and wastes every thread that is blocked in a
// retry backoff; this engine instead keeps M sessions in flight as
// resumable core::SessionMachine state machines and steps them in waves
// over a common::ThreadPool — each step costs one channel poll, never a
// blocked thread.
//
// Determinism: every session owns its channel, protocol endpoints, and a
// private ChaCha DRBG seeded exactly like a serial SessionDriver with
// RetryPolicy::seed == the submitted seed (session_driver_seed_bytes).
// Sessions share no mutable state, so the wave schedule cannot influence
// any session's operation order — K concurrent sessions produce
// byte-identical per-session transcripts to K serial runs (pinned by
// tests/core/test_session_engine.cpp, including over faulty channels).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/parallel.hpp"
#include "core/session_driver.hpp"
#include "crypto/chacha20.hpp"

namespace neuropuls::core {

struct SessionEngineConfig {
  /// Sessions stepped concurrently; admission is in submission order.
  std::size_t max_in_flight = 64;
  /// step() calls per session per scheduling wave. Amortises the
  /// parallel_for barrier; per-session transcripts are schedule-free, so
  /// this is a pure throughput knob.
  std::size_t steps_per_wave = 8;
};

struct SessionEngineStats {
  std::size_t completed = 0;
  std::size_t converged = 0;
  /// parallel_for rounds run — with max_in_flight sessions admitted this
  /// approximates total-steps / (in_flight * steps_per_wave).
  std::uint64_t waves = 0;
};

/// Runs submitted sessions to completion across a borrowed thread pool.
/// Not itself thread-safe: one thread submits and runs; the parallelism
/// lives inside run().
class SessionEngine {
 public:
  /// Builds the machine for one session, bound to the engine-owned DRBG
  /// (stable address for the machine's lifetime). The caller keeps the
  /// channel and protocol endpoints the machine borrows alive until run()
  /// returns.
  using MachineFactory =
      std::function<std::unique_ptr<SessionMachine>(crypto::ChaChaDrbg& rng)>;

  explicit SessionEngine(common::ThreadPool& pool,
                         SessionEngineConfig config = {});

  /// Queues one session; returns its submission index (the slot of its
  /// report in run()'s result).
  std::size_t submit(std::uint64_t seed, const MachineFactory& build);

  /// Runs every queued session to completion. Reports are returned in
  /// submission order; stats() accumulates across calls.
  std::vector<SessionReport> run();

  std::size_t queued() const noexcept { return pending_.size(); }
  const SessionEngineStats& stats() const noexcept { return stats_; }
  const SessionEngineConfig& config() const noexcept { return config_; }

 private:
  /// unique_ptr keeps the DRBG's address stable when the pending vector
  /// reallocates — the machine holds a reference to it.
  struct Session {
    explicit Session(std::uint64_t seed)
        : rng(session_driver_seed_bytes(seed)) {}
    crypto::ChaChaDrbg rng;
    std::unique_ptr<SessionMachine> machine;
    std::size_t index = 0;
  };

  common::ThreadPool& pool_;
  SessionEngineConfig config_;
  std::vector<std::unique_ptr<Session>> pending_;
  SessionEngineStats stats_;
  std::size_t submitted_ = 0;
};

}  // namespace neuropuls::core
