// Verifier session runtime — many handshakes in flight at once.
//
// The paper's verifier is fleet-facing: §III/§IV describe one
// infrastructure endpoint authenticating and key-exchanging with a
// population of PUF devices, so verifier throughput is sessions/sec, not
// single-handshake latency. A thread-per-session design caps concurrency
// at the OS thread budget; the engine instead keeps M sessions in flight
// as resumable core::SessionMachine state machines.
//
// Two scheduling runtimes share the submission/report API:
//
//   * kReactor (default) — a readiness-driven work-stealing reactor.
//     Every worker owns a run queue (common::StealDeque: LIFO for the
//     owner so the cache-warm session runs next, FIFO for thieves so the
//     coldest work migrates). A machine whose channel has nothing
//     readable and whose wait_hint() says it will only burn poll ticks is
//     parked on a hierarchical timer wheel and re-queued when its
//     virtual deadline expires — or immediately when a frame lands on
//     its channel (net::DuplexChannel wakeup hook) — instead of being
//     busy-polled. Idle workers steal, then advance the wheel, then park
//     in a common::ParkingLot. Per-session control records live in a
//     common::Arena, and the steady-state step path — deque push/pop,
//     stepping a waiting machine, parking — performs zero heap
//     allocations (pinned by tests/core/test_engine_alloc.cpp).
//
//   * kDeterministic — the original wave multiplexer: synchronized
//     parallel_for rounds of steps_per_wave steps per active session.
//     Kept as the reference scheduler for the determinism contract and
//     as the baseline the reactor is benchmarked against (bench_server's
//     skewed-latency scenario is exactly where waves collapse: one slow
//     session holds its whole wave at the barrier).
//
// Determinism contract (both modes, pinned by
// tests/core/test_session_engine.cpp): every session owns its channel,
// protocol endpoints, and a private ChaCha DRBG seeded exactly like a
// serial SessionDriver with RetryPolicy::seed == the submitted seed
// (session_driver_seed_bytes). Sessions share no mutable state and every
// channel poll is an explicit machine step, so no schedule — wave order,
// steal order, park/wake timing, even spurious notify() calls — can
// influence any session's operation order: per-session transcripts are
// byte-identical to serial SessionDriver runs, faulty channels included.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/arena.hpp"
#include "common/mutex.hpp"
#include "common/parallel.hpp"
#include "common/thread_annotations.hpp"
#include "core/admission_control.hpp"
#include "core/session_driver.hpp"
#include "crypto/chacha20.hpp"

namespace neuropuls::core {

enum class EngineMode {
  /// Work-stealing readiness reactor (run queues + timer wheel).
  kReactor,
  /// Synchronized-wave multiplexer — the legacy engine, kept as the
  /// deterministic reference scheduler.
  kDeterministic,
};

struct SessionEngineConfig {
  /// Sessions stepped concurrently; admission is in submission order.
  std::size_t max_in_flight = 64;
  /// Wave mode: step() calls per session per scheduling wave.
  std::size_t steps_per_wave = 8;
  EngineMode mode = EngineMode::kReactor;
  /// Reactor: max step() calls per activation before the session yields
  /// back to the run queue (bounds how long one session can monopolise a
  /// worker while others are runnable).
  std::size_t steps_per_slice = 32;
  /// Reactor: smallest wait_hint() worth a park — shorter waits are
  /// cheaper to burn in place than to route through the wheel.
  std::size_t park_threshold = 4;
  /// Invoked (from whichever worker retires the session) with the
  /// submission index the moment a session completes. Must be
  /// thread-safe; used by bench_server to measure completion-latency
  /// percentiles. May be empty.
  std::function<void(std::size_t)> on_complete;
  /// Optional admission controller consulted *before* a session's machine
  /// is built (reject-before-alloc). Shed sessions retire immediately
  /// with SessionResult::kShed; half-open victims it evicts retire with
  /// kEvicted. Borrowed — must outlive run(). nullptr = admit everything
  /// (the historical behavior, and what every determinism suite uses).
  AdmissionController* admission = nullptr;
};

/// Per-session admission identity, passed at submit(). Defaults model a
/// single well-behaved client with a free session (which the default
/// null controller admits unconditionally).
struct SubmitOptions {
  /// Client the session belongs to (rate bucket + half-open cap key).
  std::uint64_t client_id = 0;
  /// Bytes charged against the memory budgets while half-open.
  std::size_t cost_bytes = 0;
};

struct SessionEngineStats {
  std::size_t completed = 0;
  std::size_t converged = 0;
  /// Wave mode: parallel_for rounds run.
  std::uint64_t waves = 0;
  /// Reactor: machine.step() calls executed.
  std::uint64_t steps = 0;
  /// Reactor: sessions taken from another worker's run queue.
  std::uint64_t steals = 0;
  /// Reactor: sessions parked on the timer wheel.
  std::uint64_t parks = 0;
  /// Reactor: parked sessions re-queued by a channel wakeup or notify()
  /// before their wheel deadline.
  std::uint64_t wakeups = 0;
  /// Reactor: virtual-time advances of the wheel.
  std::uint64_t wheel_ticks = 0;
  /// Reactor: workers that went to sleep in the parking lot.
  std::uint64_t worker_parks = 0;
  /// Reactor: deepest run queue observed (scheduling-pressure signal).
  std::size_t peak_queue_depth = 0;
  /// Admission (zero when no controller is configured): sessions the
  /// controller let in / shed at the gate / killed half-open.
  std::uint64_t admitted = 0;
  std::uint64_t shed_rate_limited = 0;
  std::uint64_t shed_memory = 0;
  std::uint64_t evicted_half_open = 0;
  /// Malformed/oversized frames reported by retired sessions (charged to
  /// their client's bucket when a controller is configured).
  std::uint64_t malformed = 0;
};

/// Runs submitted sessions to completion across a borrowed thread pool.
/// Not itself thread-safe: one thread submits and runs; the parallelism
/// lives inside run(). notify() is the one exception — it may be called
/// from any thread *while run() executes* to wake a parked session.
class SessionEngine {
 public:
  /// Builds the machine for one session, bound to the engine-owned DRBG
  /// (stable address for the machine's lifetime). The caller keeps the
  /// channel and protocol endpoints the machine borrows alive until run()
  /// returns.
  using MachineFactory =
      std::function<std::unique_ptr<SessionMachine>(crypto::ChaChaDrbg& rng)>;

  explicit SessionEngine(common::ThreadPool& pool,
                         SessionEngineConfig config = {});
  ~SessionEngine();

  /// Queues one session; returns its submission index (the slot of its
  /// report in run()'s result). The factory runs at *admission* time, not
  /// here — with an AdmissionController configured, a shed session never
  /// builds its machine (reject-before-alloc).
  std::size_t submit(std::uint64_t seed, const MachineFactory& build,
                     SubmitOptions options = {});

  /// Runs every queued session to completion. Reports are returned in
  /// submission order; stats() accumulates across calls.
  std::vector<SessionReport> run();

  /// Wakes the session with the given submission index if it is parked
  /// (no-op otherwise, including after run() returned). Safe from any
  /// thread concurrent with run(); a spurious notify can only make a
  /// session poll earlier, never change its transcript. This is the seam
  /// a real wire transport uses to report asynchronous frame arrival.
  void notify(std::size_t index) NP_EXCLUDES(notify_mutex_);

  std::size_t queued() const noexcept { return pending_.size(); }
  const SessionEngineStats& stats() const noexcept { return stats_; }
  const SessionEngineConfig& config() const noexcept { return config_; }

 private:
  struct Session;
  struct Reactor;

  void run_waves(std::vector<Session*>& queue,
                 std::vector<SessionReport>& reports);
  void run_reactor(std::vector<Session*>& queue,
                   std::vector<SessionReport>& reports);

  common::ThreadPool& pool_;
  SessionEngineConfig config_;
  /// Owns every Session control record between submit() and the end of
  /// run(): admission is a bump allocation, retirement is free, and the
  /// whole run's bookkeeping is destroyed together.
  common::Arena arena_;
  std::vector<Session*> pending_;
  SessionEngineStats stats_;
  std::size_t submitted_ = 0;
  /// Guards active_ against notify() racing run_reactor() teardown.
  /// Ordered above the reactor's sched_mutex (notify() holds it across
  /// wake()); nothing acquires it with sched_mutex held.
  common::Mutex notify_mutex_;
  Reactor* active_ NP_GUARDED_BY(notify_mutex_) = nullptr;
};

}  // namespace neuropuls::core
