// Authenticated-encryption channel keyed by the EKE session key (§IV:
// the AKA output is "to be used in the secure channel implementation",
// and the session keys it generates serve "for the data encryption").
//
// Framing per record: seq(8, big-endian) || ChaCha20 body || CMAC tag —
// the cipher nonce is derived from the direction-bound sequence number,
// so records are self-describing, replay of any record fails the
// sequence check, reordering fails the MAC (the tag covers the sequence
// number), and the two directions use independent keys (no reflection
// attacks). The body runs through the batched in-place ChaCha20 keystream
// (the paper's lightweight cipher for this device class; the table-free
// AES here is audit-oriented and an order of magnitude slower per byte,
// so it keeps only the CMAC tag role). Rekeying via HKDF ratchet after a
// configurable record count bounds key usage.
#pragma once

#include <cstdint>
#include <optional>

#include "common/secret.hpp"
#include "crypto/bytes.hpp"

namespace neuropuls::core {

struct SecureChannelConfig {
  /// Records per direction before the ratchet steps the keys forward.
  std::uint64_t rekey_interval = 1u << 20;
};

/// One endpoint of the record channel. Construct both ends from the same
/// session key with opposite `is_initiator` flags.
class SecureChannel {
 public:
  /// `session_key` is the 32-byte EKE output, taint-typed: callers hand
  /// over ownership (move, or `.clone()` an EkeResult key). Throws
  /// std::invalid_argument on an empty key.
  SecureChannel(common::SecretBytes session_key, bool is_initiator,
                SecureChannelConfig config = {});

  /// Seals one application record for the peer.
  crypto::Bytes seal(crypto::ByteView plaintext);

  /// Opens a record from the peer. Returns std::nullopt on any failure:
  /// truncation, wrong sequence (replay/reorder/drop), bad tag. The
  /// channel is poisoned after a failure (all later opens fail) — a
  /// tampered stream must not be resynchronisable by the attacker.
  std::optional<crypto::Bytes> open(crypto::ByteView record);

  std::uint64_t records_sent() const noexcept { return send_seq_; }
  std::uint64_t records_received() const noexcept { return recv_seq_; }
  bool poisoned() const noexcept { return poisoned_; }

 private:
  /// Cached per-direction record keys. The enc/mac subkeys are a pure
  /// function of the direction key, so they are derived once here (and
  /// again on each ratchet) instead of re-running HKDF on every record —
  /// the seal/open hot path then runs only ChaCha20 + CMAC.
  struct DirectionKeys {
    common::SecretBytes root;  // the ratcheting direction key
    common::SecretBytes enc;
    common::SecretBytes mac;
  };

  void maybe_ratchet(DirectionKeys& keys, std::uint64_t seq);
  static DirectionKeys make_direction_keys(common::SecretBytes root);
  static common::SecretBytes direction_key(crypto::ByteView session_key,
                                           bool initiator_to_responder);

  SecureChannelConfig config_;
  DirectionKeys send_;
  DirectionKeys recv_;
  std::uint64_t send_seq_ = 0;
  std::uint64_t recv_seq_ = 0;
  bool poisoned_ = false;
};

}  // namespace neuropuls::core
