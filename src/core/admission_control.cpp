#include "core/admission_control.hpp"

#include <algorithm>

#include "crypto/bytes.hpp"
#include "crypto/siphash.hpp"

namespace neuropuls::core {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(config) {
  config_.client_slots =
      round_up_pow2(std::max<std::size_t>(kProbeWindow, config_.client_slots));
  config_.bucket_capacity = std::max<std::uint32_t>(1, config_.bucket_capacity);
  config_.refill_every_ticks =
      std::max<std::uint32_t>(1, config_.refill_every_ticks);
  config_.half_open_slots = std::max<std::size_t>(1, config_.half_open_slots);
  config_.half_open_per_client =
      std::max<std::size_t>(1, config_.half_open_per_client);
  client_mask_ = config_.client_slots - 1;
  // The whole working set is allocated here, once. Every later call path
  // (admit, complete, note_malformed) touches only these tables — the
  // admission fast path never allocates, which ctlint's admission-alloc
  // pass lints and tests/chaos/test_flood.cpp probes with counted
  // operator new.
  clients_.resize(config_.client_slots);
  half_open_.resize(config_.half_open_slots);
}

std::uint64_t AdmissionController::hash_client(
    std::uint64_t client_id) const noexcept {
  std::array<std::uint8_t, 8> bytes;
  crypto::put_u64_be(bytes, client_id);
  return crypto::siphash24(config_.hash_key, bytes);
}

void AdmissionController::refill(ClientSlot& slot) {
  const std::uint64_t elapsed = now_ - slot.last_refill;
  const std::uint64_t earned = elapsed / config_.refill_every_ticks;
  if (earned == 0) return;
  const std::uint64_t room = config_.bucket_capacity - slot.tokens;
  slot.tokens += static_cast<std::uint32_t>(std::min<std::uint64_t>(earned,
                                                                    room));
  // Advance by whole refill periods only, so fractional ticks keep
  // accumulating toward the next token instead of being dropped.
  slot.last_refill += earned * config_.refill_every_ticks;
}

AdmissionController::ClientSlot& AdmissionController::bucket_for(
    std::uint64_t tag) {
  const std::size_t base = static_cast<std::size_t>(tag) & client_mask_;
  ClientSlot* victim = nullptr;
  for (std::size_t i = 0; i < kProbeWindow; ++i) {
    ClientSlot& slot = clients_[(base + i) & client_mask_];
    if (slot.used && slot.tag == tag) {
      refill(slot);
      slot.last_used = ++use_seq_;
      return slot;
    }
    if (!slot.used) {
      if (victim == nullptr || victim->used) victim = &slot;
    } else if (victim == nullptr ||
               (victim->used && slot.last_used < victim->last_used)) {
      victim = &slot;
    }
  }
  // Unknown client: claim the emptiest/least-recently-used slot in the
  // window. An attacker minting ids can evict strangers' buckets (they
  // restart full — no worse than a fresh client) but cannot grow the
  // table by a byte.
  if (victim->used) ++stats_.clients_evicted;
  victim->used = true;
  victim->tag = tag;
  victim->tokens = config_.bucket_capacity;
  victim->last_refill = now_;
  victim->last_used = ++use_seq_;
  return *victim;
}

void AdmissionController::release_slot(HalfOpenSlot& slot) {
  stats_.charged_bytes -= slot.cost_bytes;
  slot.used = false;
  slot.cost_bytes = 0;
  --open_count_;
}

void AdmissionController::advance(std::uint64_t ticks) {
  common::MutexLock lock(admission_mutex_);
  now_ += ticks;
}

AdmitResult AdmissionController::try_admit(std::uint64_t client_id,
                                           std::size_t handle,
                                           std::size_t cost_bytes) {
  const std::uint64_t tag = hash_client(client_id);
  common::MutexLock lock(admission_mutex_);
  AdmitResult result;

  ClientSlot& bucket = bucket_for(tag);
  if (bucket.tokens == 0) {
    ++stats_.shed_rate_limited;
    result.decision = AdmitDecision::kShedRateLimited;
    return result;
  }
  if (cost_bytes > config_.session_budget_bytes) {
    ++stats_.shed_memory;
    result.decision = AdmitDecision::kShedMemory;
    return result;
  }

  // Half-open discipline before the global budget: an eviction frees the
  // victim's bytes, so the budget check must see the post-eviction state.
  HalfOpenSlot* free_slot = nullptr;
  HalfOpenSlot* own_oldest = nullptr;
  HalfOpenSlot* global_oldest = nullptr;
  std::size_t own_count = 0;
  for (HalfOpenSlot& slot : half_open_) {
    if (!slot.used) {
      if (free_slot == nullptr) free_slot = &slot;
      continue;
    }
    if (global_oldest == nullptr || slot.admit_seq < global_oldest->admit_seq) {
      global_oldest = &slot;
    }
    if (slot.client_tag == tag) {
      ++own_count;
      if (own_oldest == nullptr || slot.admit_seq < own_oldest->admit_seq) {
        own_oldest = &slot;
      }
    }
  }
  HalfOpenSlot* evictee = nullptr;
  if (own_count >= config_.half_open_per_client) {
    // A client at its cap pays with its own oldest session — it cannot
    // pin table slots by opening faster than it finishes.
    evictee = own_oldest;
  } else if (free_slot == nullptr) {
    evictee = global_oldest;  // table full: the globally oldest goes
  }
  const std::size_t charged_after_eviction =
      stats_.charged_bytes - (evictee ? evictee->cost_bytes : 0);
  if (cost_bytes > config_.global_budget_bytes - charged_after_eviction) {
    ++stats_.shed_memory;
    result.decision = AdmitDecision::kShedMemory;
    return result;
  }

  if (evictee != nullptr) {
    result.evicted = true;
    result.evicted_handle = evictee->handle;
    ++stats_.evicted_half_open;
    release_slot(*evictee);
    free_slot = evictee;
  }

  --bucket.tokens;
  free_slot->used = true;
  free_slot->client_tag = tag;
  free_slot->handle = handle;
  free_slot->admit_seq = ++admit_seq_;
  free_slot->cost_bytes = cost_bytes;
  ++open_count_;
  stats_.charged_bytes += cost_bytes;
  stats_.peak_charged_bytes =
      std::max(stats_.peak_charged_bytes, stats_.charged_bytes);
  ++stats_.admitted;
  result.decision = AdmitDecision::kAdmitted;
  return result;
}

void AdmissionController::complete(std::size_t handle) {
  common::MutexLock lock(admission_mutex_);
  for (HalfOpenSlot& slot : half_open_) {
    if (slot.used && slot.handle == handle) {
      release_slot(slot);
      return;
    }
  }
  // Not found: already evicted or completed — complete() is idempotent.
}

void AdmissionController::note_malformed(std::uint64_t client_id,
                                         std::uint64_t frames) {
  if (frames == 0) return;
  const std::uint64_t tag = hash_client(client_id);
  common::MutexLock lock(admission_mutex_);
  ClientSlot& bucket = bucket_for(tag);
  const std::uint64_t cost =
      frames * static_cast<std::uint64_t>(config_.malformed_token_cost);
  bucket.tokens = cost >= bucket.tokens
                      ? 0
                      : bucket.tokens - static_cast<std::uint32_t>(cost);
  stats_.malformed += frames;
}

AdmissionStats AdmissionController::stats() const {
  common::MutexLock lock(admission_mutex_);
  AdmissionStats snapshot = stats_;
  snapshot.half_open = open_count_;
  return snapshot;
}

}  // namespace neuropuls::core
