#include "core/aka_eke.hpp"

#include <stdexcept>

#include "crypto/aes.hpp"
#include "crypto/hmac.hpp"

namespace neuropuls::core {

namespace {
constexpr std::size_t kNonceLen = 16;
constexpr std::size_t kMacLen = 32;

crypto::Aes make_password_cipher(const common::SecretBytes& secret) {
  crypto::Bytes key =  // ctlint:secret password key — wiped after keying
      crypto::hkdf(crypto::ByteView{}, secret.reveal(),
                   crypto::bytes_of("np-eke-pw"), 16);
  crypto::Aes cipher{crypto::ByteView(key)};
  crypto::secure_wipe(key);
  return cipher;
}

}  // namespace

EkeParty::EkeParty(crypto::Bytes secret, const crypto::DhGroup& group,
                   crypto::ChaChaDrbg rng)
    : secret_(std::move(secret)),
      pw_cipher_(make_password_cipher(secret_)),
      group_(group),
      rng_(std::move(rng)) {
  if (secret_.empty()) {
    throw std::invalid_argument("EkeParty: empty shared secret");
  }
}

crypto::Bytes EkeParty::encrypt_public(const crypto::BigUint& value,
                                       crypto::ByteView nonce) const {
  return crypto::aes_ctr(pw_cipher_, nonce,
                         value.to_bytes_be(group_.prime_bytes));
}

crypto::BigUint EkeParty::decrypt_public(crypto::ByteView nonce,
                                         crypto::ByteView ciphertext) const {
  const crypto::Bytes plain = crypto::aes_ctr(pw_cipher_, nonce, ciphertext);
  return crypto::BigUint::from_bytes_be(plain);
}

void EkeParty::derive_session_key(const crypto::Bytes& shared) {
  session_key_ = common::SecretBytes(crypto::hkdf(
      transcript_, shared, crypto::bytes_of("np-eke-session"), 32));
}

net::Message EkeParty::initiate(std::uint64_t session_id) {
  session_id_ = session_id;
  ephemeral_ = crypto::dh_generate(group_, rng_);

  crypto::Bytes payload = rng_.generate(kNonceLen);
  const crypto::Bytes enc =
      encrypt_public(ephemeral_.public_value,
                     crypto::ByteView(payload).first(kNonceLen));
  payload.insert(payload.end(), enc.begin(), enc.end());

  transcript_ = payload;
  return net::Message{net::MessageType::kEkeClientHello, session_id,
                      std::move(payload)};
}

std::optional<net::Message> EkeParty::respond(
    const net::Message& client_hello) {
  if (client_hello.type != net::MessageType::kEkeClientHello ||
      client_hello.payload.size() != kNonceLen + group_.prime_bytes) {
    return std::nullopt;
  }
  session_id_ = client_hello.session_id;
  const crypto::ByteView payload(client_hello.payload);
  const crypto::BigUint peer = decrypt_public(
      payload.first(kNonceLen), payload.subspan(kNonceLen));
  if (!crypto::dh_public_is_valid(group_, peer)) {
    // A wrong password decrypts to a random group element, which is
    // almost always valid — rejection happens at key confirmation. This
    // check only filters degenerate values.
    return std::nullopt;
  }

  ephemeral_ = crypto::dh_generate(group_, rng_);
  crypto::Bytes shared;  // ctlint:secret g^xy — wiped after the KDF below
  try {
    shared = crypto::dh_shared_secret(group_, ephemeral_.secret, peer);
  } catch (const std::runtime_error&) {
    return std::nullopt;
  }

  crypto::Bytes payload_out = rng_.generate(kNonceLen);
  const crypto::Bytes enc =
      encrypt_public(ephemeral_.public_value,
                     crypto::ByteView(payload_out).first(kNonceLen));
  payload_out.insert(payload_out.end(), enc.begin(), enc.end());

  // Transcript: client hello || server hello (before the MAC).
  transcript_ = client_hello.payload;
  transcript_.insert(transcript_.end(), payload_out.begin(),
                     payload_out.end());
  derive_session_key(shared);
  crypto::secure_wipe(shared);

  // Responder key confirmation.
  const crypto::Bytes mac = crypto::hmac_sha256(
      session_key_.reveal(),
      crypto::concat({crypto::bytes_of("np-eke-server"), transcript_}));
  payload_out.insert(payload_out.end(), mac.begin(), mac.end());

  return net::Message{net::MessageType::kEkeServerHello, session_id_,
                      std::move(payload_out)};
}

std::optional<net::Message> EkeParty::confirm(
    const net::Message& server_hello) {
  if (server_hello.type != net::MessageType::kEkeServerHello ||
      server_hello.payload.size() !=
          kNonceLen + group_.prime_bytes + kMacLen ||
      server_hello.session_id != session_id_) {
    return std::nullopt;
  }
  const crypto::ByteView payload(server_hello.payload);
  const crypto::ByteView hello =
      payload.first(kNonceLen + group_.prime_bytes);
  const crypto::ByteView mac = payload.subspan(hello.size());

  const crypto::BigUint peer =
      decrypt_public(hello.first(kNonceLen), hello.subspan(kNonceLen));
  if (!crypto::dh_public_is_valid(group_, peer)) return std::nullopt;

  crypto::Bytes shared;  // ctlint:secret g^xy — wiped after the KDF below
  try {
    shared = crypto::dh_shared_secret(group_, ephemeral_.secret, peer);
  } catch (const std::runtime_error&) {
    return std::nullopt;
  }

  transcript_.insert(transcript_.end(), hello.begin(), hello.end());
  derive_session_key(shared);
  crypto::secure_wipe(shared);

  const crypto::Bytes expected = crypto::hmac_sha256(
      session_key_.reveal(),
      crypto::concat({crypto::bytes_of("np-eke-server"), transcript_}));
  if (!crypto::ct_equal(mac, expected)) {
    session_key_.wipe();
    return std::nullopt;
  }

  const crypto::Bytes client_mac = crypto::hmac_sha256(
      session_key_.reveal(),
      crypto::concat({crypto::bytes_of("np-eke-client"), transcript_}));
  return net::Message{net::MessageType::kEkeClientConfirm, session_id_,
                      client_mac};
}

bool EkeParty::finalize(const net::Message& client_confirm) {
  // Exact-length check before any HMAC work: a flooded responder must not
  // spend a keyed hash on a frame that cannot possibly verify.
  if (client_confirm.type != net::MessageType::kEkeClientConfirm ||
      client_confirm.session_id != session_id_ || session_key_.empty() ||
      client_confirm.payload.size() != kMacLen) {
    return false;
  }
  const crypto::Bytes expected = crypto::hmac_sha256(
      session_key_.reveal(),
      crypto::concat({crypto::bytes_of("np-eke-client"), transcript_}));
  if (!crypto::ct_equal(client_confirm.payload, expected)) {
    session_key_.wipe();
    return false;
  }
  return true;
}

EkeHandshakeOutcome run_eke_handshake(const crypto::Bytes& initiator_secret,
                                      const crypto::Bytes& responder_secret,
                                      const crypto::DhGroup& group,
                                      std::uint64_t session_id,
                                      std::uint64_t seed) {
  crypto::Bytes seed_i = crypto::bytes_of("eke-i");
  crypto::append_u64_be(seed_i, seed);
  crypto::Bytes seed_r = crypto::bytes_of("eke-r");
  crypto::append_u64_be(seed_r, seed);

  EkeParty initiator(initiator_secret, group, crypto::ChaChaDrbg(seed_i));
  EkeParty responder(responder_secret, group, crypto::ChaChaDrbg(seed_r));

  EkeHandshakeOutcome outcome;
  const net::Message hello = initiator.initiate(session_id);
  const auto server_hello = responder.respond(hello);
  if (!server_hello) return outcome;
  const auto client_confirm = initiator.confirm(*server_hello);
  if (!client_confirm) return outcome;
  if (!responder.finalize(*client_confirm)) return outcome;

  outcome.initiator = {true, initiator.session_key().clone()};
  outcome.responder = {true, responder.session_key().clone()};
  outcome.keys_match =
      common::ct_equal(initiator.session_key(), responder.session_key());
  return outcome;
}

}  // namespace neuropuls::core
