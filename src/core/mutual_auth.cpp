#include "core/mutual_auth.hpp"

#include <array>
#include <stdexcept>

#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"

namespace neuropuls::core {

namespace {

constexpr std::size_t kMacLen = 32;
constexpr std::size_t kHashLen = 32;

// Deterministic challenge update shared by both parties:
// c_{i+1} = RNG(r_i), where RNG is the ChaCha DRBG seeded with r_i.
puf::Challenge next_challenge(crypto::ByteView response,
                              std::size_t challenge_bytes) {
  crypto::ChaChaDrbg rng(
      crypto::concat({crypto::bytes_of("np-auth-rng"), response}));
  return rng.generate(challenge_bytes);
}

crypto::Bytes mac_over(crypto::ByteView key, std::uint64_t session_id,
                       crypto::ByteView data) {
  crypto::HmacSha256 mac(key);
  // Stack scratch, not a heap Bytes: mac_over runs on every frame of
  // every session, and the engine's steady-state allocation budget
  // charges each stray allocation here to every authentication step.
  std::array<std::uint8_t, 8> sid;
  crypto::put_u64_be(sid, session_id);
  mac.update(sid);
  mac.update(data);
  return mac.finalize();
}

}  // namespace

AuthDevice::AuthDevice(puf::Puf& puf, ProvisionedCrp initial,
                       crypto::Bytes memory_snapshot)
    : puf_(puf),
      current_response_(common::SecretBytes(std::move(initial.response))),
      memory_(std::move(memory_snapshot)) {
  if (current_response_.empty()) {
    throw std::invalid_argument("AuthDevice: empty provisioned response");
  }
}

void AuthDevice::corrupt_memory(std::size_t offset, std::uint8_t value) {
  memory_.at(offset) = value;
}

std::optional<net::Message> AuthDevice::handle_request(
    const net::Message& request) {
  if (request.type != net::MessageType::kAuthRequest ||
      request.payload.size() != 8) {
    return std::nullopt;
  }
  const std::uint64_t nonce = crypto::get_u64_be(request.payload);

  // Replayed request for the in-flight session: answer from the wire cache.
  // The response is deterministic given (r_i, sid, nonce), so this changes
  // no transcript bytes — it only stops a request flood from driving one
  // PUF evaluation (and one derived CRP) per replayed frame.
  if (cached_response_ && pending_challenge_ &&
      request.session_id == active_session_ && nonce == cached_nonce_) {
    return *cached_response_;
  }
  active_session_ = request.session_id;

  // Fresh CRP derived from the current secret. r_{i+1} is born straight
  // into the taint wrapper — it never exists as a loose buffer.
  puf::Challenge next_chal =
      next_challenge(current_response_.reveal(), puf_.challenge_bytes());
  common::SecretBytes next_resp(puf_.evaluate(next_chal));

  ++clock_count_;

  // m = (r_{i+1} ^ r_i) || H || CC || N
  crypto::Bytes m =
      crypto::xor_bytes(next_resp.reveal(), current_response_.reveal());
  const crypto::Bytes h = crypto::Sha256::hash(memory_);
  m.insert(m.end(), h.begin(), h.end());
  crypto::append_u64_be(m, clock_count_);
  crypto::append_u64_be(m, nonce);

  const crypto::Bytes mac =
      mac_over(current_response_.reveal(), active_session_, m);
  m.insert(m.end(), mac.begin(), mac.end());

  pending_challenge_ = std::move(next_chal);
  pending_response_ = std::move(next_resp);

  net::Message response{net::MessageType::kAuthResponse, active_session_,
                        std::move(m)};
  cached_response_ = response;
  cached_nonce_ = nonce;
  return response;
}

AuthStatus AuthDevice::handle_confirm(const net::Message& confirm) {
  if (confirm.type != net::MessageType::kAuthConfirm ||
      confirm.payload.size() != kMacLen) {
    return AuthStatus::kMalformed;
  }
  if (!pending_challenge_ || confirm.session_id != active_session_) {
    return AuthStatus::kBadSession;
  }
  const crypto::Bytes expected = mac_over(
      pending_response_.reveal(), active_session_, *pending_challenge_);
  if (!crypto::ct_equal(confirm.payload, expected)) {
    return AuthStatus::kBadMac;
  }
  // Move-assignment wipes the superseded r_i before installing r_{i+1}.
  current_response_ = std::move(pending_response_);
  pending_challenge_.reset();
  cached_response_.reset();
  ++sessions_;
  return AuthStatus::kOk;
}

AuthVerifier::AuthVerifier(puf::Response initial_response,
                           crypto::Bytes expected_memory_hash,
                           std::size_t challenge_bytes)
    : secret_(common::SecretBytes(std::move(initial_response))),
      expected_memory_hash_(std::move(expected_memory_hash)),
      challenge_bytes_(challenge_bytes) {
  if (secret_.empty() || challenge_bytes_ == 0) {
    throw std::invalid_argument("AuthVerifier: bad provisioning");
  }
}

net::Message AuthVerifier::start(std::uint64_t session_id,
                                 std::uint64_t nonce) {
  active_session_ = session_id;
  nonce_ = nonce;
  session_complete_ = false;
  crypto::Bytes payload(8);
  crypto::put_u64_be(payload, nonce);
  return net::Message{net::MessageType::kAuthRequest, session_id,
                      std::move(payload)};
}

AuthVerifier::Outcome AuthVerifier::try_secret(const net::Message& response,
                                               crypto::ByteView secret) {
  Outcome outcome;
  const std::size_t response_len = secret.size();
  const std::size_t expected_len = response_len + kHashLen + 8 + 8 + kMacLen;
  if (response.payload.size() != expected_len) {
    outcome.status = AuthStatus::kMalformed;
    return outcome;
  }

  const crypto::ByteView payload(response.payload);
  const crypto::ByteView m = payload.first(expected_len - kMacLen);
  const crypto::ByteView mac = payload.subspan(expected_len - kMacLen);

  const crypto::Bytes expected_mac =
      mac_over(secret, response.session_id, m);
  if (!crypto::ct_equal(mac, expected_mac)) {
    outcome.status = AuthStatus::kBadMac;
    return outcome;
  }

  // Freshness: the echoed nonce must match the active session's.
  const crypto::ByteView nonce_view = m.subspan(response_len + kHashLen + 8, 8);
  if (crypto::get_u64_be(nonce_view) != nonce_) {
    outcome.status = AuthStatus::kBadSession;
    return outcome;
  }

  // Unmask the new response and inspect the integrity fields.
  const crypto::ByteView masked = m.first(response_len);
  const crypto::ByteView memory_hash = m.subspan(response_len, kHashLen);
  outcome.clock_count =
      crypto::get_u64_be(m.subspan(response_len + kHashLen, 8));
  outcome.memory_hash_ok =
      crypto::ct_equal(memory_hash, expected_memory_hash_);

  common::SecretBytes next_secret(crypto::xor_bytes(masked, secret));
  const puf::Challenge next_chal = next_challenge(secret, challenge_bytes_);
  const crypto::Bytes confirm_mac =
      mac_over(next_secret.reveal(), response.session_id, next_chal);

  // The fallback becomes the secret that actually authenticated: if the
  // device is stale (missed our previous confirm) this keeps its secret
  // recoverable across repeated confirm losses. Copy first — `secret` may
  // view fallback_'s buffer, which the assignment below wipes.
  common::SecretBytes used = common::SecretBytes::copy_of(secret);
  fallback_ = std::move(used);
  secret_ = std::move(next_secret);
  ++sessions_;

  outcome.status = AuthStatus::kOk;
  outcome.confirm = net::Message{net::MessageType::kAuthConfirm,
                                 response.session_id, confirm_mac};
  return outcome;
}

AuthVerifier::Outcome AuthVerifier::process_response(
    const net::Message& response) {
  Outcome outcome;
  if (response.type != net::MessageType::kAuthResponse) {
    outcome.status = AuthStatus::kMalformed;
    return outcome;
  }
  if (response.session_id != active_session_) {
    outcome.status = AuthStatus::kBadSession;
    return outcome;
  }
  // Replay latch: the active session already rotated. Reject before any
  // MAC computation — the fallback secret would otherwise re-verify a
  // byte-identical replay of the response that just authenticated, and
  // each accepted replay costs a full rotation (a fresh derived CRP).
  if (session_complete_) {
    outcome.status = AuthStatus::kReplayed;
    return outcome;
  }
  outcome = try_secret(response, secret_.reveal());
  if (outcome.status == AuthStatus::kOk) {
    session_complete_ = true;
    return outcome;
  }

  // Desync recovery: the device may still hold the pre-rotation secret
  // (our confirm of the previous session was lost). Accept exactly one
  // session under the fallback.
  if (!fallback_.empty()) {
    Outcome fallback_outcome = try_secret(response, fallback_.reveal());
    if (fallback_outcome.status == AuthStatus::kOk) {
      session_complete_ = true;
      return fallback_outcome;
    }
  }
  return outcome;
}

crypto::Bytes serialize_crp(const ProvisionedCrp& crp) {
  crypto::Bytes out;
  crypto::append_u32_be(out, static_cast<std::uint32_t>(crp.challenge.size()));
  out.insert(out.end(), crp.challenge.begin(), crp.challenge.end());
  crypto::append_u32_be(out, static_cast<std::uint32_t>(crp.response.size()));
  out.insert(out.end(), crp.response.begin(), crp.response.end());
  return out;
}

ProvisionedCrp deserialize_crp(crypto::ByteView blob) {
  if (blob.size() < 8) {
    throw std::runtime_error("deserialize_crp: truncated");
  }
  const std::uint32_t chal_len = crypto::get_u32_be(blob.first(4));
  if (blob.size() < 4 + chal_len + 4 || chal_len > (1u << 20)) {
    throw std::runtime_error("deserialize_crp: bad challenge length");
  }
  ProvisionedCrp crp;
  crp.challenge.assign(blob.begin() + 4,
                       blob.begin() + 4 + static_cast<std::ptrdiff_t>(chal_len));
  const std::uint32_t resp_len =
      crypto::get_u32_be(blob.subspan(4 + chal_len, 4));
  if (blob.size() != 4 + chal_len + 4 + resp_len) {
    throw std::runtime_error("deserialize_crp: length mismatch");
  }
  crp.response.assign(blob.begin() + 4 + static_cast<std::ptrdiff_t>(chal_len) + 4,
                      blob.end());
  return crp;
}

ProvisioningResult provision(puf::Puf& puf, crypto::ChaChaDrbg& rng) {
  ProvisioningResult result;
  result.device_crp.challenge = rng.generate(puf.challenge_bytes());
  result.device_crp.response =
      puf::enroll_majority(puf, result.device_crp.challenge, 5);
  result.verifier_secret = result.device_crp.response;
  return result;
}

bool run_auth_session(AuthVerifier& verifier, AuthDevice& device,
                      net::DuplexChannel& channel, std::uint64_t session_id,
                      std::uint64_t nonce) {
  using net::Direction;
  // A small poll budget lets each hop ride out adversary-delayed frames
  // while still returning false (instead of spinning) on a dropped one.
  constexpr std::size_t kPollBudget = 8;
  channel.send(Direction::kAtoB, verifier.start(session_id, nonce));

  const auto request = channel.receive_with_budget(Direction::kAtoB,
                                                   kPollBudget);
  if (!request) return false;
  const auto response = device.handle_request(*request);
  if (!response) return false;
  channel.send(Direction::kBtoA, *response);

  const auto delivered = channel.receive_with_budget(Direction::kBtoA,
                                                     kPollBudget);
  if (!delivered) return false;
  const auto outcome = verifier.process_response(*delivered);
  if (outcome.status != AuthStatus::kOk || !outcome.confirm) return false;
  channel.send(Direction::kAtoB, *outcome.confirm);

  const auto confirm = channel.receive_with_budget(Direction::kAtoB,
                                                   kPollBudget);
  if (!confirm) return false;
  return device.handle_confirm(*confirm) == AuthStatus::kOk;
}

}  // namespace neuropuls::core
