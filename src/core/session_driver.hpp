// Graceful-degradation session driver: retries over a lossy channel.
//
// `run_auth_session` / `run_eke_handshake` assume every frame arrives;
// over a faulty link (faults::FaultyChannel) a dropped or corrupted frame
// would either hang the naive driver or abort the whole exchange. The
// SessionDriver wraps one protocol exchange in a bounded
// retry/timeout/backoff state machine:
//
//   attempt k (session id = base + k):
//     run the handshake, each receive bounded by `receive_poll_budget`
//     channel polls (DuplexChannel::receive_with_budget semantics, with
//     stale/wrong-type frames of other attempts discarded, not consumed
//     against the budget);
//   on failure: drain both directions, back off for a deterministic
//     jittered number of poll ticks, and retry with a fresh session id —
//     up to `max_attempts` attempts, then report kExhausted.
//
// Security invariants (asserted by tests/chaos):
//   * no false accept — a corrupted frame can only fail a MAC/length
//     check and trigger a retry, never complete a session with divergent
//     secrets;
//   * bounded work — every receive and every backoff consumes budget, so
//     the driver terminates for any fault schedule (no deadlock at 100%
//     drop);
//   * determinism — nonces and backoff jitter come from a ChaCha DRBG
//     seeded by `RetryPolicy::seed` (protocol layer: crypto DRBG, never
//     the simulation PRNGs), so the same seeds reproduce the same
//     transcript byte-for-byte.
#pragma once

#include <cstdint>
#include <optional>

#include "core/aka_eke.hpp"
#include "core/mutual_auth.hpp"
#include "crypto/chacha20.hpp"
#include "net/channel.hpp"

namespace neuropuls::core {

struct RetryPolicy {
  unsigned max_attempts = 4;
  /// Channel polls a single receive may burn before declaring the frame
  /// lost (also how long a delayed frame can be outwaited).
  std::size_t receive_poll_budget = 8;
  /// Exponential backoff between attempts, in poll ticks: attempt k waits
  /// min(base << (k-1), max) + jitter ticks, jitter in [0, base).
  std::size_t backoff_base_polls = 2;
  std::size_t backoff_max_polls = 32;
  /// Seeds the driver DRBG (nonces + backoff jitter).
  std::uint64_t seed = 1;
};

enum class SessionResult {
  kConverged,  // both parties completed and agree
  kExhausted,  // retry budget spent without convergence
};

struct SessionReport {
  SessionResult result = SessionResult::kExhausted;
  unsigned attempts = 0;           // attempts started (1-based)
  std::uint64_t poll_ticks = 0;    // polls burned waiting on receives
  std::uint64_t backoff_ticks = 0;  // polls burned backing off
  std::uint64_t discarded_frames = 0;  // stale/wrong-type frames skipped
  /// Last verifier-side status of a failed mutual-auth attempt (kOk when
  /// the session converged; meaningless for EKE).
  AuthStatus last_auth_status = AuthStatus::kOk;
};

/// Drives one protocol exchange at a time over `channel`. Both endpoints
/// run in-process (as everywhere in this stack); the driver owns the
/// retry loop, not the endpoints' secrets.
class SessionDriver {
 public:
  explicit SessionDriver(net::DuplexChannel& channel, RetryPolicy policy = {});

  /// HSC-IoT mutual authentication with retries. Session ids are
  /// `session_base + attempt` so late frames of a failed attempt can
  /// never satisfy a later one.
  SessionReport run_mutual_auth(AuthVerifier& verifier, AuthDevice& device,
                                std::uint64_t session_base);

  /// EKE AKA with retries. On kConverged both parties hold matching
  /// session keys (asserted via common::ct_equal in tests).
  SessionReport run_eke(EkeParty& initiator, EkeParty& responder,
                        std::uint64_t session_base);

  const RetryPolicy& policy() const noexcept { return policy_; }

 private:
  /// Receives the next frame of (type, session_id), discarding any other
  /// frame (stale attempt, corrupted type) and polling on empty up to the
  /// policy budget. Discards do not consume poll budget.
  std::optional<net::Message> expect(net::Direction direction,
                                     net::MessageType type,
                                     std::uint64_t session_id,
                                     SessionReport& report);
  void backoff(unsigned attempt, SessionReport& report);
  void drain(SessionReport& report);

  net::DuplexChannel& channel_;
  RetryPolicy policy_;
  crypto::ChaChaDrbg rng_;
};

}  // namespace neuropuls::core
