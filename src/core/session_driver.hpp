// Graceful-degradation session driver: retries over a lossy channel.
//
// `run_auth_session` / `run_eke_handshake` assume every frame arrives;
// over a faulty link (faults::FaultyChannel) a dropped or corrupted frame
// would either hang the naive driver or abort the whole exchange. The
// SessionDriver wraps one protocol exchange in a bounded
// retry/timeout/backoff state machine:
//
//   attempt k (session id = base + k):
//     run the handshake, each receive bounded by `receive_poll_budget`
//     channel polls (DuplexChannel::receive_with_budget semantics, with
//     stale/wrong-type frames of other attempts discarded, not consumed
//     against the budget);
//   on failure: drain both directions, back off for a deterministic
//     jittered number of poll ticks, and retry with a fresh session id —
//     up to `max_attempts` attempts, then report kExhausted.
//
// Security invariants (asserted by tests/chaos):
//   * no false accept — a corrupted frame can only fail a MAC/length
//     check and trigger a retry, never complete a session with divergent
//     secrets;
//   * bounded work — every receive and every backoff consumes budget, so
//     the driver terminates for any fault schedule (no deadlock at 100%
//     drop);
//   * determinism — nonces and backoff jitter come from a ChaCha DRBG
//     seeded by `RetryPolicy::seed` (protocol layer: crypto DRBG, never
//     the simulation PRNGs), so the same seeds reproduce the same
//     transcript byte-for-byte.
//
// The retry loop itself lives in the resumable SessionMachine classes
// below: step() advances a session until its next channel poll (the unit
// of simulated time) and then yields. SessionDriver::run_* simply steps
// one machine to completion, so a blocking serial run and a multiplexed
// core::SessionEngine run execute the identical operation sequence per
// session — that equivalence is what the engine's determinism tests pin.
#pragma once

#include <cstdint>
#include <optional>

#include "core/aka_eke.hpp"
#include "core/mutual_auth.hpp"
#include "crypto/chacha20.hpp"
#include "net/channel.hpp"

namespace neuropuls::core {

struct RetryPolicy {
  unsigned max_attempts = 4;
  /// Channel polls a single receive may burn before declaring the frame
  /// lost (also how long a delayed frame can be outwaited).
  std::size_t receive_poll_budget = 8;
  /// Exponential backoff between attempts, in poll ticks: attempt k waits
  /// min(base << (k-1), max) + jitter ticks, jitter in [0, base).
  std::size_t backoff_base_polls = 2;
  std::size_t backoff_max_polls = 32;
  /// Seeds the driver DRBG (nonces + backoff jitter).
  std::uint64_t seed = 1;
  /// Stale/duplicate frames one step may discard before yielding back to
  /// the scheduler — bounds per-step work under a frame flood so one
  /// hostile session cannot monopolise a worker. The budget only defers
  /// the remaining discards to the next step, so transcripts are
  /// unchanged; 0 = unbounded (the historical behavior).
  std::size_t max_discards_per_step = 32;
  /// Frames with a larger payload are discarded (and counted as
  /// malformed) before the protocol's on_frame parse code ever runs.
  /// Generous default: every legitimate frame in this stack is < 4 KiB.
  /// 0 = unlimited.
  std::size_t max_frame_bytes = 1 << 16;
};

enum class SessionResult {
  kConverged,  // both parties completed and agree
  kExhausted,  // retry budget spent without convergence
  kShed,       // rejected by admission control before any protocol work
  kEvicted,    // killed half-open by admission control's eviction policy
};

/// DRBG seed bytes of a session-driver stream ("np-session-driver" ||
/// seed big-endian) — shared by SessionDriver and core::SessionEngine so
/// an engine session with seed s reproduces a serial driver constructed
/// with RetryPolicy::seed == s byte-for-byte.
crypto::Bytes session_driver_seed_bytes(std::uint64_t seed);

struct SessionReport {
  SessionResult result = SessionResult::kExhausted;
  unsigned attempts = 0;           // attempts started (1-based)
  std::uint64_t poll_ticks = 0;    // polls burned waiting on receives
  std::uint64_t backoff_ticks = 0;  // polls burned backing off
  std::uint64_t discarded_frames = 0;  // stale/wrong-type frames skipped
  /// Frames that matched the expected (direction, type, sid) but were
  /// oversized or failed protocol processing — the sender either garbled
  /// a frame or is attacking; an admission controller charges these
  /// against the client's rate bucket.
  std::uint64_t malformed_frames = 0;
  /// Last verifier-side status of a failed mutual-auth attempt (kOk when
  /// the session converged; meaningless for EKE).
  AuthStatus last_auth_status = AuthStatus::kOk;
};

/// One retried protocol exchange as a resumable state machine. step()
/// advances the session until it performs exactly one channel poll (or
/// terminates), so a scheduler can hold many sessions in flight without
/// any session blocking a thread. The retry/backoff/expect semantics and
/// the DRBG draw order (backoff jitter at backoff entry, nonce per
/// attempt) are exactly those of the former blocking driver loops.
///
/// The machine borrows everything it touches — channel, DRBG, protocol
/// endpoints — and owns only control state, so the caller decides sharing
/// (the serial driver reuses one DRBG across runs; the engine gives every
/// session its own).
class SessionMachine {
 public:
  virtual ~SessionMachine() = default;
  SessionMachine(const SessionMachine&) = delete;
  SessionMachine& operator=(const SessionMachine&) = delete;

  /// Advances until the next channel poll or a terminal state. Returns
  /// true while the session is still running.
  bool step();

  bool done() const noexcept { return mode_ == Mode::kDone; }
  const SessionReport& report() const noexcept { return report_; }

  /// Scheduling hint for reactors: how many channel polls this machine
  /// will necessarily burn before it can make protocol progress, absent
  /// any externally injected frame. 0 means "may progress now" (a frame
  /// is readable, or an attempt is about to start). Stepping earlier
  /// than the hint is always *correct* — every poll is an explicit step,
  /// so the transcript cannot depend on when a scheduler chooses to run
  /// them — the hint only tells a reactor how long parking is profitable.
  std::size_t wait_hint() const noexcept;

  /// The channel this machine polls — exposed so a scheduler can attach
  /// the wakeup hook that re-queues a parked session on frame arrival.
  net::DuplexChannel& channel() noexcept { return channel_; }

 protected:
  SessionMachine(net::DuplexChannel& channel, const RetryPolicy& policy,
                 crypto::ChaChaDrbg& rng, std::uint64_t session_base);

  /// What a protocol did with a matching frame.
  enum class FrameOutcome {
    kAdvance,      // sent the next frame and updated the expectation
    kConverged,    // exchange complete
    kFailAttempt,  // processing failed — retry with the next attempt
  };

  /// Sends the attempt's opening frame(s) and installs the first
  /// expectation via expect_next(). `sid_` is already set.
  virtual void begin_attempt() = 0;
  /// Handles a frame matching the current expectation.
  virtual FrameOutcome on_frame(const net::Message& frame) = 0;

  /// Installs the next expected (direction, type); resets the per-receive
  /// poll budget, mirroring the per-expect() budget of the serial driver.
  void expect_next(net::Direction direction, net::MessageType type);

  net::DuplexChannel& channel_;
  RetryPolicy policy_;
  crypto::ChaChaDrbg& rng_;
  std::uint64_t sid_ = 0;
  SessionReport report_;

 private:
  enum class Mode { kStartAttempt, kBackoff, kExpect, kDone };

  void start_attempt();
  void fail_attempt();
  std::size_t backoff_ticks(unsigned attempt);
  void drain();

  std::uint64_t session_base_;
  Mode mode_ = Mode::kStartAttempt;
  unsigned attempt_ = 1;
  std::size_t backoff_remaining_ = 0;
  std::size_t expect_polls_ = 0;
  net::Direction expect_direction_ = net::Direction::kAtoB;
  net::MessageType expect_type_{};
};

/// HSC-IoT mutual authentication as a SessionMachine. Session ids are
/// `session_base + attempt` so late frames of a failed attempt can never
/// satisfy a later one.
class AuthSessionMachine final : public SessionMachine {
 public:
  AuthSessionMachine(net::DuplexChannel& channel, const RetryPolicy& policy,
                     crypto::ChaChaDrbg& rng, AuthVerifier& verifier,
                     AuthDevice& device, std::uint64_t session_base);

 private:
  void begin_attempt() override;
  FrameOutcome on_frame(const net::Message& frame) override;

  AuthVerifier& verifier_;
  AuthDevice& device_;
  unsigned phase_ = 0;
};

/// EKE AKA as a SessionMachine. On kConverged both parties hold matching
/// session keys (asserted via common::ct_equal in tests).
class EkeSessionMachine final : public SessionMachine {
 public:
  EkeSessionMachine(net::DuplexChannel& channel, const RetryPolicy& policy,
                    crypto::ChaChaDrbg& rng, EkeParty& initiator,
                    EkeParty& responder, std::uint64_t session_base);

 private:
  void begin_attempt() override;
  FrameOutcome on_frame(const net::Message& frame) override;

  EkeParty& initiator_;
  EkeParty& responder_;
  unsigned phase_ = 0;
};

/// Drives one protocol exchange at a time over `channel`. Both endpoints
/// run in-process (as everywhere in this stack); the driver owns the
/// retry loop, not the endpoints' secrets. Implemented by stepping one
/// SessionMachine to completion.
class SessionDriver {
 public:
  explicit SessionDriver(net::DuplexChannel& channel, RetryPolicy policy = {});

  /// HSC-IoT mutual authentication with retries.
  SessionReport run_mutual_auth(AuthVerifier& verifier, AuthDevice& device,
                                std::uint64_t session_base);

  /// EKE AKA with retries.
  SessionReport run_eke(EkeParty& initiator, EkeParty& responder,
                        std::uint64_t session_base);

  const RetryPolicy& policy() const noexcept { return policy_; }

 private:
  net::DuplexChannel& channel_;
  RetryPolicy policy_;
  crypto::ChaChaDrbg rng_;
};

}  // namespace neuropuls::core
