#include "core/attestation.hpp"

#include <algorithm>
#include <stdexcept>

#include "crypto/chacha20.hpp"
#include "crypto/sha256.hpp"

namespace neuropuls::core {

namespace {

// Maps a PUF response to the next challenge: the continuous
// challenge-and-response chaining r_{i+1} = pPUF(r_i) of §III-B, with a
// hash bridging the (response size -> challenge size) mismatch.
puf::Challenge challenge_from_response(const puf::Response& response,
                                       std::size_t challenge_bytes) {
  crypto::ChaChaDrbg rng(
      crypto::concat({crypto::bytes_of("np-attest-chain"), response}));
  return rng.generate(challenge_bytes);
}

// Random walk visiting every chunk exactly once: Fisher–Yates driven by
// the DRBG seeded with (r_1, t) — "the random walk in memory:
// m_1,...,m_n = RNG(r_1 + t)".
std::vector<std::size_t> walk_order(const puf::Response& r1,
                                    std::uint64_t timestamp,
                                    std::size_t chunks) {
  crypto::Bytes seed = crypto::concat({crypto::bytes_of("np-attest-walk"), r1});
  crypto::append_u64_be(seed, timestamp);
  crypto::ChaChaDrbg rng(seed);
  std::vector<std::size_t> order(chunks);
  for (std::size_t i = 0; i < chunks; ++i) order[i] = i;
  for (std::size_t i = chunks; i > 1; --i) {
    std::swap(order[i - 1], order[rng.uniform(i)]);
  }
  return order;
}

}  // namespace

crypto::Bytes attestation_digest(const crypto::Bytes& memory,
                                 const puf::Puf& puf, std::uint64_t timestamp,
                                 const puf::Challenge& c1,
                                 std::size_t chunk_size) {
  if (memory.empty() || chunk_size == 0) {
    throw std::invalid_argument("attestation_digest: empty memory or chunk");
  }
  const std::size_t chunks = (memory.size() + chunk_size - 1) / chunk_size;

  puf::Response r = puf.evaluate_noiseless(c1);
  const auto order = walk_order(r, timestamp, chunks);

  crypto::Bytes h;  // empty initial link
  for (std::size_t step = 0; step < chunks; ++step) {
    const std::size_t begin = order[step] * chunk_size;
    const std::size_t end = std::min(memory.size(), begin + chunk_size);

    crypto::Sha256 hasher;
    hasher.update(crypto::ByteView(memory.data() + begin, end - begin));
    hasher.update(r);
    hasher.update(h);
    const auto digest = hasher.finalize();
    h.assign(digest.begin(), digest.end());

    // Chain the PUF: r_{i+1} = pPUF(r_i).
    r = puf.evaluate_noiseless(
        challenge_from_response(r, puf.challenge_bytes()));
  }
  return h;
}

double honest_attestation_time_ns(std::size_t memory_bytes,
                                  const AttestationConfig& config,
                                  const AttestationCostModel& cost) {
  const std::size_t chunks =
      (memory_bytes + config.chunk_size - 1) / config.chunk_size;
  const double per_chunk_bytes = static_cast<double>(config.chunk_size);
  // Per chunk: read + hash(chunk || r || h). The PUF response generation
  // overlaps the hash in hardware, so only the *excess* of the PUF time
  // over the hash time would add latency; with a >= 5 Gb/s pPUF it never
  // does (the §III-B argument), but we model the max() honestly.
  const double hash_ns = cost.hash_ns_fixed +
                         cost.hash_ns_per_byte * (per_chunk_bytes + 64.0);
  const double read_ns = cost.memory_read_ns_per_byte * per_chunk_bytes;
  const double step_ns = read_ns + std::max(hash_ns, cost.puf_response_ns);
  return static_cast<double>(chunks) * step_ns;
}

AttestDevice::AttestDevice(puf::Puf& puf, crypto::Bytes memory,
                           AttestationConfig config)
    : puf_(puf), memory_(std::move(memory)), config_(config) {
  if (memory_.empty()) {
    throw std::invalid_argument("AttestDevice: empty memory");
  }
}

void AttestDevice::corrupt_memory(std::size_t offset, std::uint8_t value) {
  memory_.at(offset) = value;
}

void AttestDevice::enable_memory_hiding(crypto::Bytes pristine_copy,
                                        double overhead_factor) {
  if (pristine_copy.size() != memory_.size()) {
    throw std::invalid_argument("enable_memory_hiding: size mismatch");
  }
  if (overhead_factor < 1.0) {
    throw std::invalid_argument("enable_memory_hiding: factor must be >= 1");
  }
  pristine_ = std::move(pristine_copy);
  hiding_overhead_ = overhead_factor;
}

std::optional<net::Message> AttestDevice::handle_request(
    const net::Message& request) {
  if (request.type != net::MessageType::kAttestRequest ||
      request.payload.size() < 8 + puf_.challenge_bytes()) {
    return std::nullopt;
  }
  const std::uint64_t timestamp =
      crypto::get_u64_be(crypto::ByteView(request.payload).first(8));
  const puf::Challenge c1(request.payload.begin() + 8, request.payload.end());

  // A memory-hiding attacker answers with the *pristine* image (so the
  // digest matches) but pays the redirection overhead in time.
  const crypto::Bytes& hashed_view = pristine_ ? *pristine_ : memory_;
  last_time_factor_ = pristine_ ? hiding_overhead_ : 1.0;

  const crypto::Bytes digest = attestation_digest(
      hashed_view, puf_, timestamp, c1, config_.chunk_size);
  return net::Message{net::MessageType::kAttestReport, request.session_id,
                      digest};
}

AttestVerifier::AttestVerifier(const puf::Puf& puf_model,
                               crypto::Bytes reference_memory,
                               AttestationConfig config,
                               AttestationCostModel cost)
    : puf_model_(puf_model),
      reference_memory_(std::move(reference_memory)),
      config_(config),
      cost_(cost) {
  if (reference_memory_.empty()) {
    throw std::invalid_argument("AttestVerifier: empty reference memory");
  }
}

net::Message AttestVerifier::start(std::uint64_t session_id,
                                   std::uint64_t timestamp,
                                   crypto::ChaChaDrbg& rng) {
  active_session_ = session_id;
  timestamp_ = timestamp;
  active_challenge_ = rng.generate(puf_model_.challenge_bytes());
  crypto::Bytes payload(8);
  crypto::put_u64_be(payload, timestamp);
  payload.insert(payload.end(), active_challenge_.begin(),
                 active_challenge_.end());
  return net::Message{net::MessageType::kAttestRequest, session_id,
                      std::move(payload)};
}

double AttestVerifier::honest_time_ns() const {
  return honest_attestation_time_ns(reference_memory_.size(), config_, cost_);
}

AttestVerifier::Outcome AttestVerifier::check(const net::Message& report,
                                              double elapsed_ns) {
  Outcome outcome;
  outcome.elapsed_ns = elapsed_ns;
  outcome.time_budget_ns = honest_time_ns() * config_.time_bound_factor;
  if (report.type != net::MessageType::kAttestReport ||
      report.session_id != active_session_ || active_challenge_.empty()) {
    return outcome;
  }
  const crypto::Bytes expected =
      attestation_digest(reference_memory_, puf_model_, timestamp_,
                         active_challenge_, config_.chunk_size);
  outcome.digest_ok = crypto::ct_equal(report.payload, expected);
  outcome.time_ok = elapsed_ns <= outcome.time_budget_ns;
  outcome.accepted = outcome.digest_ok && outcome.time_ok;
  // One-shot challenge: a replayed report cannot be re-checked.
  active_challenge_.clear();
  return outcome;
}

}  // namespace neuropuls::core
