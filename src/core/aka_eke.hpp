// EKE-based Authentication and Key Agreement (§IV).
//
// "One approach is to see the CRP as a low-entropy shared secret. With
// this, we can consider the use of the well-established and secure EKE
// protocol to achieve both mutual authentication and key exchange ...
// This approach protects against most possible attacks to the CRP while
// providing perfect forward security ... Note that this approach is
// computationally more expensive."
//
// Bellovin–Merritt EKE over an RFC 3526 MODP group: each side's ephemeral
// DH public value crosses the wire encrypted under a key derived from the
// shared PUF response w, so an eavesdropper cannot mount an offline
// dictionary attack on w, and the session key K = KDF(g^xy, transcript)
// is independent of w after the fact (forward secrecy: leaking w later
// does not expose past session keys). Key confirmation MACs authenticate
// both parties. `bench/bench_aka_eke` quantifies the "computationally
// more expensive" claim against the HSC-IoT session.
#pragma once

#include <cstdint>
#include <optional>

#include "common/secret.hpp"
#include "crypto/aes.hpp"
#include "crypto/bytes.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/dh.hpp"
#include "net/message.hpp"

namespace neuropuls::core {

struct EkeResult {
  bool succeeded = false;
  common::SecretBytes session_key;  // 32 bytes when succeeded
};

/// One side of the EKE handshake. The initiator is the Verifier, the
/// responder the Device; both are constructed from the same low-entropy
/// secret (the current CRP response).
class EkeParty {
 public:
  /// `secret` is the shared low-entropy password (the CRP response);
  /// `rng` supplies ephemeral randomness.
  EkeParty(crypto::Bytes secret, const crypto::DhGroup& group,
           crypto::ChaChaDrbg rng);

  /// Initiator step 1: produce the client hello for `session_id`.
  net::Message initiate(std::uint64_t session_id);

  /// Responder step: consume the client hello, produce the server hello
  /// (which carries the responder's key-confirmation MAC).
  std::optional<net::Message> respond(const net::Message& client_hello);

  /// Initiator step 2: consume the server hello, produce the client
  /// confirmation. Session key becomes available on success.
  std::optional<net::Message> confirm(const net::Message& server_hello);

  /// Responder step 2: verify the client confirmation.
  bool finalize(const net::Message& client_confirm);

  /// The agreed session key (empty until the handshake completes). The
  /// taint type makes accidental `==` or implicit copies compile errors;
  /// callers clone() it into the secure channel.
  const common::SecretBytes& session_key() const noexcept {
    return session_key_;
  }

 private:
  crypto::Bytes encrypt_public(const crypto::BigUint& value,
                               crypto::ByteView nonce) const;
  crypto::BigUint decrypt_public(crypto::ByteView nonce,
                                 crypto::ByteView ciphertext) const;
  void derive_session_key(const crypto::Bytes& shared);

  common::SecretBytes secret_;  // the low-entropy password (CRP response)
  /// AES keyed with HKDF(secret, "np-eke-pw"), expanded once at
  /// construction: the password key is fixed for the party's lifetime,
  /// so re-running HKDF plus the AES key schedule on every
  /// encrypt/decrypt was pure per-frame waste.
  crypto::Aes pw_cipher_;
  const crypto::DhGroup& group_;
  crypto::ChaChaDrbg rng_;
  crypto::DhKeyPair ephemeral_;
  crypto::Bytes transcript_;
  common::SecretBytes session_key_;
  std::uint64_t session_id_ = 0;
};

/// Runs a complete handshake in-process; returns both parties' results.
struct EkeHandshakeOutcome {
  EkeResult initiator;
  EkeResult responder;
  bool keys_match = false;
};
EkeHandshakeOutcome run_eke_handshake(const crypto::Bytes& initiator_secret,
                                      const crypto::Bytes& responder_secret,
                                      const crypto::DhGroup& group,
                                      std::uint64_t session_id,
                                      std::uint64_t seed);

}  // namespace neuropuls::core
