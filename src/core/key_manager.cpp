#include "core/key_manager.hpp"

#include <stdexcept>

#include "crypto/chacha20.hpp"
#include "crypto/hmac.hpp"

namespace neuropuls::core {

ecc::BitVec collect_response_bits(puf::Puf& puf, std::size_t bits,
                                  unsigned readings) {
  const auto read = [&puf, readings](const puf::Challenge& c) {
    return readings > 1 ? puf.evaluate_robust(c, readings) : puf.evaluate(c);
  };
  ecc::BitVec collected;
  collected.reserve(bits);
  if (puf.challenge_bytes() == 0) {
    // Weak PUF: repeated power-up reads of the same cells are *noisy
    // re-readings*, not fresh entropy — one read supplies all the bits it
    // has; asking for more is a configuration error.
    const puf::Response r = read({});
    if (r.size() * 8 < bits) {
      throw std::invalid_argument(
          "collect_response_bits: weak PUF response too short");
    }
    const auto unpacked = ecc::unpack_bits(r, bits);
    return unpacked;
  }
  // Strong PUF as weak PUF: a fixed, public enrollment challenge sequence.
  crypto::ChaChaDrbg challenge_seq(crypto::bytes_of("np-enroll-seq"));
  while (collected.size() < bits) {
    const puf::Challenge c = challenge_seq.generate(puf.challenge_bytes());
    const puf::Response r = read(c);
    const auto chunk = ecc::unpack_bits(r);
    for (std::uint8_t b : chunk) {
      if (collected.size() == bits) break;
      collected.push_back(b);
    }
  }
  return collected;
}

KeyManager::KeyManager(puf::Puf& puf, std::size_t key_bytes)
    : puf_(puf), extractor_(ecc::make_default_extractor(key_bytes)) {}

DeviceKeyRecord KeyManager::enroll(crypto::ChaChaDrbg& rng) {
  const common::MutexLock lock(mutex_);
  const ecc::BitVec w = collect_response_bits(puf_, extractor_.response_bits());
  auto result = extractor_.generate(w, rng);
  root_ = common::SecretBytes(std::move(result.key));
  return DeviceKeyRecord{std::move(result.helper)};
}

std::optional<DeviceKeys> KeyManager::derive(const DeviceKeyRecord& record) {
  const common::MutexLock lock(mutex_);
  const ecc::BitVec w_prime =
      collect_response_bits(puf_, extractor_.response_bits());
  auto root = extractor_.reproduce(w_prime, record.helper);
  if (!root) return std::nullopt;
  DeviceKeys keys = split(*root);
  crypto::secure_wipe(*root);  // the raw root must not outlive the split
  return keys;
}

std::optional<DeviceKeys> KeyManager::derive_robust(
    const DeviceKeyRecord& record, unsigned attempts, unsigned readings) {
  const common::MutexLock lock(mutex_);
  for (unsigned attempt = 0; attempt < attempts; ++attempt) {
    const ecc::BitVec w_prime =
        collect_response_bits(puf_, extractor_.response_bits(), readings);
    auto root = extractor_.reproduce(w_prime, record.helper);
    if (!root) continue;  // still past the code radius — re-measure
    DeviceKeys keys = split(*root);
    crypto::secure_wipe(*root);
    return keys;
  }
  return std::nullopt;
}

common::SecretBytes KeyManager::enrolled_root() const {
  const common::MutexLock lock(mutex_);
  return root_.clone();
}

DeviceKeys KeyManager::split(const crypto::Bytes& root) {
  DeviceKeys keys;
  keys.encryption_key = common::SecretBytes(crypto::hkdf(
      crypto::ByteView{}, root, crypto::bytes_of("np-key-enc"), 16));
  keys.mac_key = common::SecretBytes(crypto::hkdf(
      crypto::ByteView{}, root, crypto::bytes_of("np-key-mac"), 32));
  keys.binding_key = common::SecretBytes(crypto::hkdf(
      crypto::ByteView{}, root, crypto::bytes_of("np-key-bind"), 16));
  return keys;
}

}  // namespace neuropuls::core
