// Wire format shared by all NEUROPULS protocol messages.
//
// A frame is: type(1) || session_id(8, big-endian) || length(4) || payload.
// Deliberately minimal — the "lightweight" requirement of §I rules out
// anything heavier, and explicit framing keeps the adversarial channel
// (replay/tamper/drop) byte-accurate.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>

#include "crypto/bytes.hpp"

namespace neuropuls::net {

enum class MessageType : std::uint8_t {
  kAuthRequest = 1,
  kAuthResponse = 2,
  kAuthConfirm = 3,
  kAttestRequest = 4,
  kAttestReport = 5,
  kEkeClientHello = 6,
  kEkeServerHello = 7,
  kEkeClientConfirm = 8,
  kEkeServerConfirm = 9,
  kData = 10,
  kError = 15,
};

struct Message {
  MessageType type = MessageType::kError;
  std::uint64_t session_id = 0;
  crypto::Bytes payload;

  bool operator==(const Message&) const = default;
};

/// Serialises a message to wire bytes.
crypto::Bytes encode_message(const Message& message);

/// Parses wire bytes. Throws std::runtime_error on malformed frames
/// (truncation, length mismatch) — a receiver must treat those as attack
/// evidence, not silently ignore them.
Message decode_message(crypto::ByteView wire);

/// Human-readable type tag for transcripts.
std::string message_type_name(MessageType type);

}  // namespace neuropuls::net
