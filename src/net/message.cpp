#include "net/message.hpp"

#include <stdexcept>

namespace neuropuls::net {

crypto::Bytes encode_message(const Message& message) {
  crypto::Bytes wire;
  wire.reserve(13 + message.payload.size());
  wire.push_back(static_cast<std::uint8_t>(message.type));
  crypto::append_u64_be(wire, message.session_id);
  crypto::append_u32_be(wire,
                        static_cast<std::uint32_t>(message.payload.size()));
  wire.insert(wire.end(), message.payload.begin(), message.payload.end());
  return wire;
}

Message decode_message(crypto::ByteView wire) {
  if (wire.size() < 13) {
    throw std::runtime_error("decode_message: truncated header");
  }
  Message message;
  message.type = static_cast<MessageType>(wire[0]);
  message.session_id = crypto::get_u64_be(wire.subspan(1, 8));
  const std::uint32_t length = crypto::get_u32_be(wire.subspan(9, 4));
  if (wire.size() != 13 + static_cast<std::size_t>(length)) {
    throw std::runtime_error("decode_message: length mismatch");
  }
  message.payload.assign(wire.begin() + 13, wire.end());
  return message;
}

std::string message_type_name(MessageType type) {
  switch (type) {
    case MessageType::kAuthRequest: return "auth-request";
    case MessageType::kAuthResponse: return "auth-response";
    case MessageType::kAuthConfirm: return "auth-confirm";
    case MessageType::kAttestRequest: return "attest-request";
    case MessageType::kAttestReport: return "attest-report";
    case MessageType::kEkeClientHello: return "eke-client-hello";
    case MessageType::kEkeServerHello: return "eke-server-hello";
    case MessageType::kEkeClientConfirm: return "eke-client-confirm";
    case MessageType::kEkeServerConfirm: return "eke-server-confirm";
    case MessageType::kData: return "data";
    case MessageType::kError: return "error";
  }
  return "unknown";
}

}  // namespace neuropuls::net
