// In-process duplex channel with an adversarial interception layer.
//
// Protocol security in §III/§IV is a property of message ordering and
// content, independent of physical transport, so an in-process queue pair
// is a faithful substrate. The `Adversary` hook sees every frame in both
// directions and may pass, drop, modify, or replace it, and may inject
// recorded frames later — enough to express replay, tampering,
// man-in-the-middle, and desynchronisation attacks (exercised in
// `src/attacks/protocol_attacks.hpp`).
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "net/message.hpp"

namespace neuropuls::net {

enum class Direction { kAtoB, kBtoA };

/// What the adversary decided to do with an intercepted frame.
struct Verdict {
  enum class Action { kPass, kDrop, kReplace } action = Action::kPass;
  Message replacement;  // used when action == kReplace

  static Verdict pass() { return {Action::kPass, {}}; }
  static Verdict drop() { return {Action::kDrop, {}}; }
  static Verdict replace(Message m) { return {Action::kReplace, std::move(m)}; }
};

/// Adversary callback: full knowledge of direction and content.
using Adversary = std::function<Verdict(Direction, const Message&)>;

/// Poll callback: invoked by `poll()` / `receive_with_budget()` each time
/// a receiver waits on an empty queue. This is the channel's notion of
/// time passing — a delay-injecting adversary (faults::FaultyChannel)
/// uses it to tick held frames toward delivery.
using PollHook = std::function<void()>;

/// Wakeup callback: invoked whenever a frame actually lands in a queue
/// (a delivered send() or an inject()). A reactor parks a session whose
/// channel has nothing readable and uses this hook to re-queue it the
/// moment a frame arrives, instead of busy-polling the queue.
using WakeupHook = std::function<void(Direction)>;

struct TranscriptEntry {
  Direction direction;
  Message message;
  bool delivered;  // false when the adversary dropped it
};

/// Resource limits a network-facing endpoint imposes on the channel. The
/// defaults (all zero) mean "unbounded" — exactly the historical
/// behavior, so determinism suites that serialize transcripts are
/// unaffected unless a limit is configured.
struct ChannelLimits {
  /// Frames with a payload larger than this are dropped at send()/
  /// inject() time — before they ever occupy a queue and long before any
  /// parse code sees them. 0 = unlimited.
  std::size_t max_frame_bytes = 0;
  /// Per-direction inbox capacity: a sender whose receiver never polls
  /// cannot grow the queue without bound — a full inbox drops the frame
  /// (with a stat) instead of allocating. 0 = unlimited.
  std::size_t max_inbox_frames = 0;
  /// Transcript entries recorded before further traffic is only counted,
  /// not stored — a flood must not turn the debugging transcript into an
  /// allocation amplifier. 0 = unlimited.
  std::size_t max_transcript_frames = 0;
};

/// Shed/overflow counters, per direction. These are the channel's abuse
/// signal: a verifier charges them to the sending client's rate bucket.
struct ChannelShedStats {
  std::uint64_t dropped_oversized = 0;  // payload > max_frame_bytes
  std::uint64_t dropped_overflow = 0;   // inbox at max_inbox_frames
  std::uint64_t transcript_truncated = 0;
};

/// Duplex channel between endpoints A (verifier) and B (device).
///
/// Threading contract: the queues, transcript, adversary, and poll hook
/// are owned by the single session that owns the channel — the engine
/// steps one session on one worker at a time, so those members need no
/// lock. The wakeup hook is the exception: the reactor installs it at
/// admission, clears it at retirement (possibly from a different worker),
/// and send()/inject() fire it — so it is guarded by hook_mutex_.
/// hook_mutex_ is held across the hook invocation and therefore sits
/// above the reactor's sched_mutex in the canonical lock order.
class DuplexChannel {
 public:
  DuplexChannel() = default;
  explicit DuplexChannel(ChannelLimits limits) : limits_(limits) {}

  /// Installs (or replaces) the resource limits. Owned by the receiving
  /// endpoint; call before traffic flows (limits are not synchronized).
  void set_limits(ChannelLimits limits) { limits_ = limits; }
  const ChannelLimits& limits() const noexcept { return limits_; }

  /// Shed counters for frames travelling in `direction`.
  const ChannelShedStats& shed_stats(Direction direction) const noexcept {
    return direction == Direction::kAtoB ? shed_ab_ : shed_ba_;
  }

  /// Installs (or clears, with nullptr) the adversary hook.
  void set_adversary(Adversary adversary) {
    adversary_ = std::move(adversary);
  }

  /// Installs (or clears, with nullptr) the poll hook.
  void set_poll_hook(PollHook hook) { poll_hook_ = std::move(hook); }

  /// Installs (or clears, with nullptr) the wakeup hook. Safe to call
  /// from a different thread than the one sending on the channel.
  void set_wakeup_hook(WakeupHook hook) NP_EXCLUDES(hook_mutex_) {
    common::MutexLock lock(hook_mutex_);
    wakeup_hook_ = std::move(hook);
  }

  /// Advances channel time by one tick (runs the poll hook, if any).
  void poll() {
    if (poll_hook_) poll_hook_();
  }

  /// True when a frame is waiting for the far end of `direction` — the
  /// receiver-side readiness test a reactor checks before parking.
  bool readable(Direction direction) const noexcept {
    return !queue_for(direction).empty();
  }

  /// True when polling this channel can change its state (a poll hook is
  /// installed — e.g. a delay-injecting fault layer holding frames). A
  /// non-pollable channel with nothing readable cannot produce a frame on
  /// its own, so a receiver's remaining poll budget is pure waiting and a
  /// scheduler may park it for the full budget.
  bool pollable() const noexcept { return static_cast<bool>(poll_hook_); }

  /// Sends in the given direction; the adversary (if any) rules first.
  void send(Direction direction, Message message);

  /// Receives the next pending frame for the far end of `direction`
  /// (i.e., receive(kAtoB) pops what B should read).
  std::optional<Message> receive(Direction direction);

  /// Bounded receive: if the queue is empty, polls the channel (ticking
  /// any delay-injecting adversary) up to `max_polls` times before giving
  /// up. Lets protocol drivers distinguish "frame dropped" (budget
  /// exhausted ⇒ nullopt) from "not yet delivered" without spinning
  /// forever on a lossy link.
  std::optional<Message> receive_with_budget(Direction direction,
                                             std::size_t max_polls);

  /// Injects a frame directly into a queue, bypassing the adversary —
  /// used by the adversary itself to replay recorded frames.
  void inject(Direction direction, Message message);

  const std::vector<TranscriptEntry>& transcript() const noexcept {
    return transcript_;
  }

  std::size_t pending(Direction direction) const noexcept {
    return queue_for(direction).size();
  }

 private:
  std::deque<Message>& queue_for(Direction direction) noexcept {
    return direction == Direction::kAtoB ? a_to_b_ : b_to_a_;
  }
  const std::deque<Message>& queue_for(Direction direction) const noexcept {
    return direction == Direction::kAtoB ? a_to_b_ : b_to_a_;
  }

  ChannelShedStats& shed_for(Direction direction) noexcept {
    return direction == Direction::kAtoB ? shed_ab_ : shed_ba_;
  }

  /// Fires the wakeup hook for a frame that just landed.
  void notify_arrival(Direction direction) NP_EXCLUDES(hook_mutex_);

  /// Records a transcript entry unless the transcript cap is reached
  /// (then only counts it).
  void record(Direction direction, Message message, bool delivered);

  /// Applies the limits to a frame about to enqueue. Returns true when
  /// the frame may be admitted; false means it was shed (recorded
  /// undelivered, stat bumped).
  bool admit_frame(Direction direction, Message& message);

  std::deque<Message> a_to_b_;
  std::deque<Message> b_to_a_;
  Adversary adversary_;
  PollHook poll_hook_;
  mutable common::Mutex hook_mutex_;
  WakeupHook wakeup_hook_ NP_GUARDED_BY(hook_mutex_);
  std::vector<TranscriptEntry> transcript_;
  ChannelLimits limits_;
  ChannelShedStats shed_ab_;
  ChannelShedStats shed_ba_;
};

}  // namespace neuropuls::net
