#include "net/channel.hpp"

namespace neuropuls::net {

void DuplexChannel::send(Direction direction, Message message) {
  if (adversary_) {
    const Verdict verdict = adversary_(direction, message);
    switch (verdict.action) {
      case Verdict::Action::kDrop:
        transcript_.push_back({direction, std::move(message), false});
        return;
      case Verdict::Action::kReplace:
        transcript_.push_back({direction, message, false});
        message = verdict.replacement;
        break;
      case Verdict::Action::kPass:
        break;
    }
  }
  transcript_.push_back({direction, message, true});
  queue_for(direction).push_back(std::move(message));
  notify_arrival(direction);
}

void DuplexChannel::notify_arrival(Direction direction) {
  // Held across the invocation so a concurrent set_wakeup_hook(nullptr)
  // (session retirement on another worker) cannot destroy the callable
  // mid-call. The hook body acquires the reactor's scheduler lock, hence
  // hook_mutex_ > sched_mutex in the canonical order.
  common::MutexLock lock(hook_mutex_);
  if (wakeup_hook_) wakeup_hook_(direction);
}

std::optional<Message> DuplexChannel::receive(Direction direction) {
  auto& queue = queue_for(direction);
  if (queue.empty()) return std::nullopt;
  Message message = std::move(queue.front());
  queue.pop_front();
  return message;
}

std::optional<Message> DuplexChannel::receive_with_budget(
    Direction direction, std::size_t max_polls) {
  for (std::size_t polls = 0;; ++polls) {
    if (auto message = receive(direction)) return message;
    if (polls >= max_polls) return std::nullopt;
    poll();
  }
}

void DuplexChannel::inject(Direction direction, Message message) {
  transcript_.push_back({direction, message, true});
  queue_for(direction).push_back(std::move(message));
  notify_arrival(direction);
}

}  // namespace neuropuls::net
