#include "net/channel.hpp"

namespace neuropuls::net {

void DuplexChannel::record(Direction direction, Message message,
                           bool delivered) {
  if (limits_.max_transcript_frames != 0 &&
      transcript_.size() >= limits_.max_transcript_frames) {
    ++shed_for(direction).transcript_truncated;
    return;
  }
  transcript_.push_back({direction, std::move(message), delivered});
}

bool DuplexChannel::admit_frame(Direction direction, Message& message) {
  // Size first: an oversized frame is rejected before it occupies any
  // queue slot, so the receiver's parse code never sees it and the only
  // memory it ever held is the sender's own buffer.
  if (limits_.max_frame_bytes != 0 &&
      message.payload.size() > limits_.max_frame_bytes) {
    ++shed_for(direction).dropped_oversized;
    record(direction, std::move(message), false);
    return false;
  }
  if (limits_.max_inbox_frames != 0 &&
      queue_for(direction).size() >= limits_.max_inbox_frames) {
    ++shed_for(direction).dropped_overflow;
    record(direction, std::move(message), false);
    return false;
  }
  return true;
}

void DuplexChannel::send(Direction direction, Message message) {
  if (adversary_) {
    const Verdict verdict = adversary_(direction, message);
    switch (verdict.action) {
      case Verdict::Action::kDrop:
        record(direction, std::move(message), false);
        return;
      case Verdict::Action::kReplace:
        record(direction, message, false);
        message = verdict.replacement;
        break;
      case Verdict::Action::kPass:
        break;
    }
  }
  if (!admit_frame(direction, message)) return;
  record(direction, message, true);
  queue_for(direction).push_back(std::move(message));
  notify_arrival(direction);
}

void DuplexChannel::notify_arrival(Direction direction) {
  // Held across the invocation so a concurrent set_wakeup_hook(nullptr)
  // (session retirement on another worker) cannot destroy the callable
  // mid-call. The hook body acquires the reactor's scheduler lock, hence
  // hook_mutex_ > sched_mutex in the canonical order.
  common::MutexLock lock(hook_mutex_);
  if (wakeup_hook_) wakeup_hook_(direction);
}

std::optional<Message> DuplexChannel::receive(Direction direction) {
  auto& queue = queue_for(direction);
  if (queue.empty()) return std::nullopt;
  Message message = std::move(queue.front());
  queue.pop_front();
  return message;
}

std::optional<Message> DuplexChannel::receive_with_budget(
    Direction direction, std::size_t max_polls) {
  for (std::size_t polls = 0;; ++polls) {
    if (auto message = receive(direction)) return message;
    if (polls >= max_polls) return std::nullopt;
    poll();
  }
}

void DuplexChannel::inject(Direction direction, Message message) {
  // The limits rule injected frames too: replaying a recorded frame must
  // not bypass the inbox bound a flood is pressing against.
  if (!admit_frame(direction, message)) return;
  record(direction, message, true);
  queue_for(direction).push_back(std::move(message));
  notify_arrival(direction);
}

}  // namespace neuropuls::net
