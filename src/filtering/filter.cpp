#include "filtering/filter.hpp"

#include <cmath>
#include <stdexcept>

#include "metrics/population.hpp"

namespace neuropuls::filtering {

std::vector<FilterSweepPoint> sweep_lower_threshold(
    const AnalogPopulation& population,
    const std::vector<double>& thresholds) {
  if (population.crps.empty() || population.devices == 0) {
    throw std::invalid_argument("sweep_lower_threshold: empty population");
  }

  // Precompute per-CRP aliasing entropy across the full population.
  std::vector<double> crp_entropy(population.crps.size());
  for (std::size_t c = 0; c < population.crps.size(); ++c) {
    const auto& crp = population.crps[c];
    double ones = 0.0;
    for (std::uint8_t b : crp.bits) ones += b & 1;
    crp_entropy[c] =
        metrics::binary_entropy(ones / static_cast<double>(crp.bits.size()));
  }

  std::vector<FilterSweepPoint> sweep;
  sweep.reserve(thresholds.size());
  for (double threshold : thresholds) {
    FilterSweepPoint point;
    point.threshold = threshold;
    double reliability_sum = 0.0;
    double entropy_sum = 0.0;
    std::size_t retained = 0;
    std::size_t total = 0;
    for (std::size_t c = 0; c < population.crps.size(); ++c) {
      const auto& crp = population.crps[c];
      for (std::size_t d = 0; d < population.devices; ++d) {
        ++total;
        if (std::fabs(crp.margins[d]) < threshold) continue;
        ++retained;
        reliability_sum += 1.0 - crp.flip_rate[d];
        entropy_sum += crp_entropy[c];
      }
    }
    point.retained_fraction =
        static_cast<double>(retained) / static_cast<double>(total);
    if (retained > 0) {
      point.reliability = reliability_sum / static_cast<double>(retained);
      point.aliasing_entropy = entropy_sum / static_cast<double>(retained);
    } else {
      point.reliability = 1.0;
      point.aliasing_entropy = 0.0;
    }
    sweep.push_back(point);
  }
  return sweep;
}

FilterSweepPoint evaluate_window(const AnalogPopulation& population,
                                 double lower, double upper) {
  if (population.crps.empty() || population.devices == 0) {
    throw std::invalid_argument("evaluate_window: empty population");
  }
  if (lower > upper) {
    throw std::invalid_argument("evaluate_window: lower > upper");
  }

  FilterSweepPoint point;
  point.threshold = lower;
  double reliability_sum = 0.0;
  double entropy_sum = 0.0;
  std::size_t retained = 0;
  std::size_t total = 0;
  for (const auto& crp : population.crps) {
    double ones = 0.0;
    for (std::uint8_t b : crp.bits) ones += b & 1;
    const double entropy =
        metrics::binary_entropy(ones / static_cast<double>(crp.bits.size()));
    for (std::size_t d = 0; d < population.devices; ++d) {
      ++total;
      const double magnitude = std::fabs(crp.margins[d]);
      if (magnitude < lower || magnitude > upper) continue;
      ++retained;
      reliability_sum += 1.0 - crp.flip_rate[d];
      entropy_sum += entropy;
    }
  }
  point.retained_fraction =
      static_cast<double>(retained) / static_cast<double>(total);
  if (retained > 0) {
    point.reliability = reliability_sum / static_cast<double>(retained);
    point.aliasing_entropy = entropy_sum / static_cast<double>(retained);
  } else {
    point.reliability = 1.0;
    point.aliasing_entropy = 0.0;
  }
  return point;
}

std::vector<std::size_t> tradeoff_window(
    const std::vector<FilterSweepPoint>& sweep, double min_reliability,
    double min_entropy) {
  std::vector<std::size_t> window;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    if (sweep[i].reliability >= min_reliability &&
        sweep[i].aliasing_entropy >= min_entropy &&
        sweep[i].retained_fraction > 0.0) {
      window.push_back(i);
    }
  }
  return window;
}

std::vector<bool> online_mask(const std::vector<double>& device_margins,
                              double lower, double upper) {
  std::vector<bool> mask(device_margins.size());
  for (std::size_t i = 0; i < device_margins.size(); ++i) {
    const double magnitude = std::fabs(device_margins[i]);
    mask[i] = magnitude >= lower && magnitude <= upper;
  }
  return mask;
}

AnalogPopulation measure_ro_population(const puf::RoPufConfig& config,
                                       std::size_t devices,
                                       const std::vector<puf::RoPair>& pairs,
                                       unsigned repeats,
                                       std::uint64_t seed_base) {
  if (devices == 0 || pairs.empty() || repeats == 0) {
    throw std::invalid_argument("measure_ro_population: empty request");
  }
  AnalogPopulation population;
  population.devices = devices;
  population.crps.resize(pairs.size());
  for (auto& crp : population.crps) {
    crp.margins.resize(devices);
    crp.bits.resize(devices);
    crp.flip_rate.resize(devices);
  }

  for (std::size_t d = 0; d < devices; ++d) {
    puf::RoPuf device(config, seed_base + d);
    for (std::size_t p = 0; p < pairs.size(); ++p) {
      const auto challenge =
          puf::encode_ro_challenge(pairs[p].i, pairs[p].j);
      const std::uint8_t reference =
          (device.evaluate_noiseless(challenge)[0] >> 7) & 1;
      double margin_sum = 0.0;
      unsigned flips = 0;
      for (unsigned r = 0; r < repeats; ++r) {
        const std::int64_t delta =
            device.count_difference(pairs[p].i, pairs[p].j);
        margin_sum += static_cast<double>(delta);
        flips += ((delta > 0 ? 1 : 0) != reference);
      }
      population.crps[p].margins[d] = margin_sum / repeats;
      population.crps[p].bits[d] = reference;
      population.crps[p].flip_rate[d] =
          static_cast<double>(flips) / repeats;
    }
  }
  return population;
}

AnalogPopulation measure_photonic_population(
    const puf::PhotonicPufConfig& config, std::size_t devices,
    const puf::Challenge& challenge, unsigned repeats,
    std::uint64_t wafer_seed) {
  if (devices == 0 || repeats == 0) {
    throw std::invalid_argument("measure_photonic_population: empty request");
  }
  AnalogPopulation population;
  population.devices = devices;

  for (std::size_t d = 0; d < devices; ++d) {
    puf::PhotonicPuf device(config, wafer_seed, d);
    const auto reference = device.evaluate_analog(challenge, /*noisy=*/false);
    const std::size_t windows = reference.size();
    const std::size_t pairs = reference.front().size();
    if (population.crps.empty()) {
      population.crps.resize(windows * pairs);
      for (auto& crp : population.crps) {
        crp.margins.resize(devices);
        crp.bits.resize(devices);
        crp.flip_rate.resize(devices);
      }
    }

    // Accumulate noisy readings.
    std::vector<double> margin_sum(windows * pairs, 0.0);
    std::vector<unsigned> flips(windows * pairs, 0);
    for (unsigned r = 0; r < repeats; ++r) {
      const auto noisy = device.evaluate_analog(challenge, /*noisy=*/true);
      for (std::size_t w = 0; w < windows; ++w) {
        for (std::size_t p = 0; p < pairs; ++p) {
          const std::size_t c = w * pairs + p;
          margin_sum[c] += noisy[w][p];
          flips[c] += (noisy[w][p] > 0.0) != (reference[w][p] > 0.0);
        }
      }
    }
    for (std::size_t w = 0; w < windows; ++w) {
      for (std::size_t p = 0; p < pairs; ++p) {
        const std::size_t c = w * pairs + p;
        population.crps[c].margins[d] = margin_sum[c] / repeats;
        population.crps[c].bits[d] = reference[w][p] > 0.0 ? 1 : 0;
        population.crps[c].flip_rate[d] =
            static_cast<double>(flips[c]) / repeats;
      }
    }
  }
  return population;
}

std::vector<puf::RoPair> all_ro_pairs(std::size_t oscillators,
                                      std::size_t max_pairs) {
  std::vector<puf::RoPair> pairs;
  for (std::size_t i = 0; i < oscillators; ++i) {
    for (std::size_t j = i + 1; j < oscillators; ++j) {
      pairs.push_back({i, j});
      if (max_pairs != 0 && pairs.size() >= max_pairs) return pairs;
    }
  }
  return pairs;
}

}  // namespace neuropuls::filtering
