// On-line CRP filtering to limit unreliability AND bit-aliasing (§II-B,
// ref. [13], Fig. 3).
//
// The physics: each response bit is the sign of an analog margin (an RO
// pair's counter difference, or a photodiode pair's photocurrent
// difference). Margins near zero flip under noise (unreliable); margins
// far from zero are usually dominated by *design-systematic* offsets that
// are the same on every device (aliased — "extreme values of frequency
// difference could be present in multiple devices because of the lower
// effect of process variability"). Filtering keeps only CRPs whose margin
// lies in a window: above a reliability floor, below an aliasing ceiling.
//
// The module is PUF-agnostic: it works on an `AnalogPopulation` — the
// margins, reference bits, and flip rates of a device population — with
// builders provided for the RO PUF (counter threshold, as in [13]) and the
// photonic PUF (photocurrent-amplitude threshold, the NEUROPULS
// adaptation the paper announces).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "puf/photonic_puf.hpp"
#include "puf/ro_puf.hpp"

namespace neuropuls::filtering {

/// Measured analog statistics of one CRP (bit position) across a device
/// population. margins[d] is device d's mean margin; bits[d] its reference
/// bit; flip_rate[d] its measured probability of disagreeing with the
/// reference under repeated noisy readout.
struct CrpStatistics {
  std::vector<double> margins;
  std::vector<std::uint8_t> bits;
  std::vector<double> flip_rate;
};

/// Statistics for every candidate CRP over the same device population.
struct AnalogPopulation {
  std::vector<CrpStatistics> crps;
  std::size_t devices = 0;
};

/// One point of the Fig. 3 sweep.
struct FilterSweepPoint {
  double threshold = 0.0;          // lower |margin| cut
  double reliability = 1.0;        // mean (1 - flip rate) over retained CRPs
  double aliasing_entropy = 0.0;   // mean per-CRP Shannon entropy, retained
  double retained_fraction = 0.0;  // share of (device, CRP) slots kept
};

/// Sweeps the lower threshold over `thresholds` (the Fig. 3 x-axis).
/// Retention is per-device (on-line): device d keeps CRP c iff
/// |margin[d][c]| >= threshold. Throws on an empty population.
std::vector<FilterSweepPoint> sweep_lower_threshold(
    const AnalogPopulation& population, const std::vector<double>& thresholds);

/// Evaluates one full [lower, upper] window — the complete [13] filter:
/// the lower bound removes unreliable CRPs, the *upper* bound removes the
/// extreme margins "that could be deemed biased (aliased)" because
/// process variability contributes little to them. Same statistics as a
/// sweep point. Throws on an empty population or lower > upper.
FilterSweepPoint evaluate_window(const AnalogPopulation& population,
                                 double lower, double upper);

/// Selects the trade-off window: the threshold range whose points satisfy
/// reliability >= min_reliability and aliasing_entropy >= min_entropy
/// (the shaded region of Fig. 3). Returns indices into the sweep.
std::vector<std::size_t> tradeoff_window(
    const std::vector<FilterSweepPoint>& sweep, double min_reliability,
    double min_entropy);

/// Per-device on-line mask: which CRPs a single device retains at a
/// [lower, upper] margin window. This is what a deployed device runs —
/// no population data needed.
std::vector<bool> online_mask(const std::vector<double>& device_margins,
                              double lower,
                              double upper = std::numeric_limits<double>::infinity());

// ---- Population builders ----------------------------------------------------

/// Measures an RO-PUF population on `pairs` challenges. Margins are mean
/// counter differences over `repeats` measurements (the [13] method).
AnalogPopulation measure_ro_population(
    const puf::RoPufConfig& config, std::size_t devices,
    const std::vector<puf::RoPair>& pairs, unsigned repeats,
    std::uint64_t seed_base);

/// Measures a photonic-PUF population on one challenge. Margins are the
/// photocurrent differences of `evaluate_analog` averaged over `repeats`
/// noisy evaluations — the photocurrent-amplitude threshold adaptation.
AnalogPopulation measure_photonic_population(
    const puf::PhotonicPufConfig& config, std::size_t devices,
    const puf::Challenge& challenge, unsigned repeats,
    std::uint64_t wafer_seed);

/// All-distinct-pair challenge list (i < j) for an RO PUF of n oscillators,
/// optionally capped.
std::vector<puf::RoPair> all_ro_pairs(std::size_t oscillators,
                                      std::size_t max_pairs = 0);

}  // namespace neuropuls::filtering
