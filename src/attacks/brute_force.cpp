#include "attacks/brute_force.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace neuropuls::attacks {

double expected_guesses(double min_entropy_bits) {
  if (min_entropy_bits < 0.0) {
    throw std::invalid_argument("expected_guesses: negative entropy");
  }
  const double capped = std::min(min_entropy_bits, 63.0);
  return std::exp2(capped - 1.0);
}

double online_guess_success(double min_entropy_bits, std::size_t attempts) {
  if (min_entropy_bits < 0.0) {
    throw std::invalid_argument("online_guess_success: negative entropy");
  }
  const double space = std::exp2(std::min(min_entropy_bits, 63.0));
  return std::min(1.0, static_cast<double>(attempts) / space);
}

double eke_rate_reduction(double offline_rate_per_s,
                          double online_rate_per_s) {
  if (offline_rate_per_s <= 0.0 || online_rate_per_s <= 0.0) {
    throw std::invalid_argument("eke_rate_reduction: rates must be positive");
  }
  return offline_rate_per_s / online_rate_per_s;
}

}  // namespace neuropuls::attacks
