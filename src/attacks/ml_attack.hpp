// Machine-learning modelling attacks on PUFs (§IV, ref. [28]).
//
// "By acquiring a sufficiently large number of CRPs (for strong PUFs),
// the adversary can build a model to predict the response to the next
// challenge ... particularly successful against common types of PUF,
// such as PUFs with ring oscillators (ROs) or arbiters."
//
// Attack engine: logistic regression trained by mini-batch SGD — the
// classic (and for plain arbiter PUFs, sufficient) modelling attack. Two
// feature maps:
//   * parity features phi_i = prod_{j>=i}(1-2c_j) — the arbiter PUF's own
//     internal linear representation; LR over these breaks it quickly;
//   * raw +/-1 challenge bits — what an attacker uses without structural
//     knowledge.
// The attack targets one response bit position of an arbitrary `Puf`, so
// the same code attacks arbiter, XOR-arbiter, RO, photonic, and
// challenge-encrypted PUFs; `bench/bench_ml_attack` sweeps the CRP budget
// and reports prediction accuracy per target (E6).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "puf/puf.hpp"

namespace neuropuls::attacks {

/// Maps a challenge to a real feature vector.
using FeatureMap =
    std::function<std::vector<double>(const puf::Challenge&)>;

/// Raw encoding: each challenge bit -> +/-1, plus a bias feature.
FeatureMap raw_feature_map();

/// Arbiter parity features for an n-stage chain (plus bias).
FeatureMap parity_feature_map(std::size_t stages);

struct LogisticConfig {
  std::size_t epochs = 60;
  double learning_rate = 0.05;
  double l2 = 1e-4;
  std::uint64_t shuffle_seed = 1;
};

/// Plain logistic-regression binary classifier.
class LogisticModel {
 public:
  /// Trains on labelled feature vectors (labels in {0,1}).
  /// Throws std::invalid_argument on empty or inconsistent input.
  void train(const std::vector<std::vector<double>>& features,
             const std::vector<std::uint8_t>& labels, LogisticConfig config);

  /// Predicted label for a feature vector.
  std::uint8_t predict(const std::vector<double>& features) const;

  /// Fraction of correct predictions on a labelled set.
  double accuracy(const std::vector<std::vector<double>>& features,
                  const std::vector<std::uint8_t>& labels) const;

  const std::vector<double>& weights() const noexcept { return weights_; }

 private:
  std::vector<double> weights_;
};

struct AttackResult {
  std::size_t training_crps = 0;
  double train_accuracy = 0.0;
  double test_accuracy = 0.0;  // the headline number; 0.5 = chance
};

struct AttackConfig {
  std::size_t training_crps = 2000;
  std::size_t test_crps = 500;
  /// Which response bit to model (0 for 1-bit PUFs).
  std::size_t target_bit = 0;
  LogisticConfig logistic{};
  std::uint64_t seed = 99;
};

/// Collects CRPs from the target (the attacker's eavesdropped set), trains
/// the model, and evaluates on held-out challenges.
AttackResult model_attack(puf::Puf& target, const FeatureMap& features,
                          const AttackConfig& config);

/// Mean test accuracy over `bits` distinct response-bit targets — the
/// fair summary for multi-bit-response PUFs like the photonic one.
double mean_attack_accuracy(puf::Puf& target, const FeatureMap& features,
                            AttackConfig config, std::size_t bits);

}  // namespace neuropuls::attacks
