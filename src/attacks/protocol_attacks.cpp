#include "attacks/protocol_attacks.hpp"

#include "crypto/sha256.hpp"

namespace neuropuls::attacks {

namespace {

struct World {
  std::unique_ptr<puf::PhotonicPuf> puf;
  std::unique_ptr<core::AuthDevice> device;
  std::unique_ptr<core::AuthVerifier> verifier;
  std::unique_ptr<net::DuplexChannel> channel;
};

World make_world(std::uint64_t seed) {
  World w;
  w.channel = std::make_unique<net::DuplexChannel>();
  w.puf = std::make_unique<puf::PhotonicPuf>(puf::small_photonic_config(),
                                             0xA77ACC + seed, 0);
  crypto::ChaChaDrbg rng(crypto::bytes_of("battery"));
  const auto provisioned = core::provision(*w.puf, rng);
  const crypto::Bytes memory = crypto::bytes_of("fw");
  w.device = std::make_unique<core::AuthDevice>(*w.puf,
                                                provisioned.device_crp, memory);
  w.verifier = std::make_unique<core::AuthVerifier>(
      provisioned.verifier_secret, crypto::Sha256::hash(memory),
      w.puf->challenge_bytes());
  return w;
}

bool honest_session(World& w, std::uint64_t session, std::uint64_t nonce) {
  return core::run_auth_session(*w.verifier, *w.device, *w.channel, session,
                                nonce);
}

}  // namespace

ProtocolAttackReport replay_attack(std::uint64_t seed) {
  ProtocolAttackReport report;
  report.attack = "replay";
  World w = make_world(seed);

  net::Message recorded{};
  w.channel->set_adversary([&](net::Direction d, const net::Message& m) {
    if (d == net::Direction::kBtoA &&
        m.type == net::MessageType::kAuthResponse) {
      recorded = m;
    }
    return net::Verdict::pass();
  });
  if (!honest_session(w, 1, 100)) {
    report.honest_parties_recovered = false;
    return report;
  }

  // New verifier round; attacker answers with the recording.
  (void)w.verifier->start(2, 200);
  const auto outcome = w.verifier->process_response(recorded);
  report.attacker_succeeded = outcome.status == core::AuthStatus::kOk;

  // Verify the honest pair still works afterwards.
  w.channel->set_adversary(nullptr);
  report.honest_parties_recovered = honest_session(w, 3, 300);
  return report;
}

ProtocolAttackReport mitm_session_graft(std::uint64_t seed) {
  ProtocolAttackReport report;
  report.attack = "mitm-session-graft";
  World w = make_world(seed);

  // The attacker relays the verifier's request to the device but rewrites
  // the session id, hoping to make the device answer a session the
  // attacker controls; it then re-frames the device's answer back.
  constexpr std::uint64_t kAttackerSession = 0xEE;
  w.channel->set_adversary([&](net::Direction d, const net::Message& m) {
    if (d == net::Direction::kAtoB &&
        m.type == net::MessageType::kAuthRequest) {
      net::Message reframed = m;
      reframed.session_id = kAttackerSession;
      return net::Verdict::replace(reframed);
    }
    if (d == net::Direction::kBtoA &&
        m.type == net::MessageType::kAuthResponse) {
      net::Message reframed = m;
      reframed.session_id = 1;  // graft back onto the verifier's session
      return net::Verdict::replace(reframed);
    }
    return net::Verdict::pass();
  });
  // The grafted response carries a MAC computed over the attacker's
  // session id; the verifier MACs over its own id -> must fail.
  report.attacker_succeeded = honest_session(w, 1, 100);

  w.channel->set_adversary(nullptr);
  report.honest_parties_recovered = honest_session(w, 9, 900);
  return report;
}

ProtocolAttackReport desync_attack(std::uint64_t seed,
                                   unsigned lossy_sessions) {
  ProtocolAttackReport report;
  report.attack = "desync";
  World w = make_world(seed);

  w.channel->set_adversary([](net::Direction d, const net::Message& m) {
    return (d == net::Direction::kAtoB &&
            m.type == net::MessageType::kAuthConfirm)
               ? net::Verdict::drop()
               : net::Verdict::pass();
  });
  for (unsigned i = 1; i <= lossy_sessions; ++i) {
    (void)honest_session(w, i, i);
  }
  w.channel->set_adversary(nullptr);
  report.honest_parties_recovered = honest_session(w, 100, 1000);
  // The attacker's goal was a permanent wedge.
  report.attacker_succeeded = !report.honest_parties_recovered;
  return report;
}

ProtocolAttackReport forgery_scan(std::uint64_t seed) {
  ProtocolAttackReport report;
  report.attack = "forgery-scan";
  World w = make_world(seed);

  // Capture one genuine response to mutate.
  const auto request = w.verifier->start(1, 100);
  const auto genuine = w.device->handle_request(request);
  if (!genuine) {
    report.honest_parties_recovered = false;
    return report;
  }

  for (std::size_t byte = 0; byte < genuine->payload.size(); ++byte) {
    net::Message forged = *genuine;
    forged.payload[byte] ^= 0x01;
    const auto outcome = w.verifier->process_response(forged);
    if (outcome.status == core::AuthStatus::kOk) {
      report.attacker_succeeded = true;
      break;
    }
  }

  // Deliver the genuine response so the pair finishes cleanly.
  if (!report.attacker_succeeded) {
    const auto outcome = w.verifier->process_response(*genuine);
    report.honest_parties_recovered =
        outcome.status == core::AuthStatus::kOk && outcome.confirm &&
        w.device->handle_confirm(*outcome.confirm) == core::AuthStatus::kOk;
  }
  return report;
}

std::vector<ProtocolAttackReport> run_protocol_battery(std::uint64_t seed) {
  return {replay_attack(seed), mitm_session_graft(seed), desync_attack(seed),
          forgery_scan(seed)};
}

}  // namespace neuropuls::attacks
