// Correlation power analysis (CPA) against the Table I AES boundary.
//
// §IV cites Rührmair et al. (CHES'14): power side channels break not only
// PUF cores but the crypto around them. The classic target is the AES
// first round: each trace sample leaks the Hamming weight of the S-box
// output S(p_j XOR k_j) through the power rail,
//   sample = alpha * HW(S(p_j ^ k_j)) + N(0, sigma),
// and the attacker correlates hypothesised leakage (per key-byte guess)
// against measured traces; the right guess wins as traces accumulate.
//
// The simulation exposes the two physical knobs the NEUROPULS design
// controls: the leakage coefficient alpha (an exposed CMOS S-box vs a
// shielded/balanced crypto engine) and the noise floor. The bench sweeps
// traces-to-recovery across alpha, quantifying how much the hardware
// boundary must attenuate leakage for field attacks to become
// impractical.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/bytes.hpp"

namespace neuropuls::attacks {

struct CpaLeakageModel {
  double alpha = 1.0;        // power units per Hamming-weight bit
  double noise_sigma = 2.0;  // trace noise
};

/// One acquisition: plaintext block + one leakage sample per byte lane.
struct CpaTrace {
  crypto::Bytes plaintext;          // 16 bytes
  std::vector<double> samples;      // 16 samples (one per key byte lane)
};

/// Simulates `count` traces of the device encrypting random plaintexts
/// under `key` (16 bytes) with the given leakage model.
std::vector<CpaTrace> acquire_traces(crypto::ByteView key, std::size_t count,
                                     const CpaLeakageModel& model,
                                     std::uint64_t seed);

struct CpaResult {
  crypto::Bytes recovered_key;     // best guess per byte
  std::size_t correct_bytes = 0;   // vs ground truth
  double mean_best_correlation = 0.0;
};

/// Runs CPA over the traces; `true_key` is used only for scoring.
/// Throws std::invalid_argument on empty traces or malformed sizes.
CpaResult cpa_attack(const std::vector<CpaTrace>& traces,
                     crypto::ByteView true_key);

/// Convenience sweep: smallest trace count (from `budgets`) at which the
/// full key is recovered; returns 0 when none suffices.
std::size_t traces_to_full_recovery(crypto::ByteView key,
                                    const CpaLeakageModel& model,
                                    const std::vector<std::size_t>& budgets,
                                    std::uint64_t seed);

}  // namespace neuropuls::attacks
