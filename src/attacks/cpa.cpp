#include "attacks/cpa.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

#include "crypto/aes.hpp"
#include "crypto/prng.hpp"

namespace neuropuls::attacks {

namespace {

double hamming_weight(std::uint8_t v) {
  return static_cast<double>(std::popcount(static_cast<unsigned>(v)));
}

}  // namespace

std::vector<CpaTrace> acquire_traces(crypto::ByteView key, std::size_t count,
                                     const CpaLeakageModel& model,
                                     std::uint64_t seed) {
  if (key.size() != 16) {
    throw std::invalid_argument("acquire_traces: key must be 16 bytes");
  }
  rng::Xoshiro256 pt_rng(rng::derive_seed(seed, 1));
  rng::Gaussian noise(rng::derive_seed(seed, 2));

  std::vector<CpaTrace> traces;
  traces.reserve(count);
  for (std::size_t t = 0; t < count; ++t) {
    CpaTrace trace;
    trace.plaintext.resize(16);
    trace.samples.resize(16);
    for (std::size_t j = 0; j < 16; ++j) {
      trace.plaintext[j] = static_cast<std::uint8_t>(pt_rng.next());
      const std::uint8_t sbox_out =
          crypto::aes_sbox(static_cast<std::uint8_t>(trace.plaintext[j] ^ key[j]));
      trace.samples[j] = model.alpha * hamming_weight(sbox_out) +
                         noise.next(0.0, model.noise_sigma);
    }
    traces.push_back(std::move(trace));
  }
  return traces;
}

CpaResult cpa_attack(const std::vector<CpaTrace>& traces,
                     crypto::ByteView true_key) {
  if (traces.empty()) {
    throw std::invalid_argument("cpa_attack: no traces");
  }
  if (true_key.size() != 16) {
    throw std::invalid_argument("cpa_attack: key must be 16 bytes");
  }
  for (const auto& trace : traces) {
    if (trace.plaintext.size() != 16 || trace.samples.size() != 16) {
      throw std::invalid_argument("cpa_attack: malformed trace");
    }
  }
  const double n = static_cast<double>(traces.size());

  CpaResult result;
  result.recovered_key.resize(16);
  double correlation_sum = 0.0;

  for (std::size_t lane = 0; lane < 16; ++lane) {
    // Measured-sample moments for this lane.
    double sum_y = 0.0, sum_y2 = 0.0;
    for (const auto& trace : traces) {
      sum_y += trace.samples[lane];
      sum_y2 += trace.samples[lane] * trace.samples[lane];
    }
    const double mean_y = sum_y / n;
    const double var_y = sum_y2 / n - mean_y * mean_y;

    double best_corr = -2.0;
    std::uint8_t best_guess = 0;
    for (int guess = 0; guess < 256; ++guess) {
      double sum_h = 0.0, sum_h2 = 0.0, sum_hy = 0.0;
      for (const auto& trace : traces) {
        const double h = hamming_weight(crypto::aes_sbox(
            static_cast<std::uint8_t>(trace.plaintext[lane] ^ guess)));
        sum_h += h;
        sum_h2 += h * h;
        sum_hy += h * trace.samples[lane];
      }
      const double mean_h = sum_h / n;
      const double var_h = sum_h2 / n - mean_h * mean_h;
      const double cov = sum_hy / n - mean_h * mean_y;
      const double denom = std::sqrt(var_h * var_y);
      const double corr = denom > 0.0 ? cov / denom : 0.0;
      if (corr > best_corr) {
        best_corr = corr;
        best_guess = static_cast<std::uint8_t>(guess);
      }
    }
    result.recovered_key[lane] = best_guess;
    result.correct_bytes += (best_guess == true_key[lane]);
    correlation_sum += best_corr;
  }
  result.mean_best_correlation = correlation_sum / 16.0;
  return result;
}

std::size_t traces_to_full_recovery(crypto::ByteView key,
                                    const CpaLeakageModel& model,
                                    const std::vector<std::size_t>& budgets,
                                    std::uint64_t seed) {
  for (std::size_t budget : budgets) {
    const auto traces = acquire_traces(key, budget, model, seed);
    if (cpa_attack(traces, key).correct_bytes == 16) return budget;
  }
  return 0;
}

}  // namespace neuropuls::attacks
