#include "attacks/ml_attack.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "crypto/chacha20.hpp"
#include "crypto/prng.hpp"
#include "puf/photonic_puf.hpp"

namespace neuropuls::attacks {

FeatureMap raw_feature_map() {
  return [](const puf::Challenge& challenge) {
    std::vector<double> features;
    features.reserve(challenge.size() * 8 + 1);
    for (std::uint8_t byte : challenge) {
      for (int b = 7; b >= 0; --b) {
        features.push_back(((byte >> b) & 1) ? 1.0 : -1.0);
      }
    }
    features.push_back(1.0);  // bias
    return features;
  };
}

FeatureMap parity_feature_map(std::size_t stages) {
  return [stages](const puf::Challenge& challenge) {
    if (challenge.size() * 8 < stages) {
      throw std::invalid_argument("parity_feature_map: challenge too short");
    }
    std::vector<double> phi(stages + 1);
    phi[stages] = 1.0;
    double acc = 1.0;
    for (std::size_t i = stages; i-- > 0;) {
      const int bit = (challenge[i / 8] >> (7 - i % 8)) & 1;
      acc *= bit ? -1.0 : 1.0;
      phi[i] = acc;
    }
    return phi;
  };
}

void LogisticModel::train(const std::vector<std::vector<double>>& features,
                          const std::vector<std::uint8_t>& labels,
                          LogisticConfig config) {
  if (features.empty() || features.size() != labels.size()) {
    throw std::invalid_argument("LogisticModel::train: bad training set");
  }
  const std::size_t dims = features.front().size();
  for (const auto& f : features) {
    if (f.size() != dims) {
      throw std::invalid_argument("LogisticModel::train: ragged features");
    }
  }
  weights_.assign(dims, 0.0);

  rng::Xoshiro256 shuffle_rng(config.shuffle_seed);
  std::vector<std::size_t> order(features.size());
  std::iota(order.begin(), order.end(), 0);

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    // Fisher-Yates shuffle per epoch.
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[shuffle_rng.uniform_int(i)]);
    }
    const double lr =
        config.learning_rate / (1.0 + 0.05 * static_cast<double>(epoch));
    for (std::size_t idx : order) {
      const auto& x = features[idx];
      double z = 0.0;
      for (std::size_t d = 0; d < dims; ++d) z += weights_[d] * x[d];
      const double p = 1.0 / (1.0 + std::exp(-z));
      const double error = static_cast<double>(labels[idx]) - p;
      for (std::size_t d = 0; d < dims; ++d) {
        weights_[d] += lr * (error * x[d] - config.l2 * weights_[d]);
      }
    }
  }
}

std::uint8_t LogisticModel::predict(const std::vector<double>& features) const {
  if (features.size() != weights_.size()) {
    throw std::invalid_argument("LogisticModel::predict: dimension mismatch");
  }
  double z = 0.0;
  for (std::size_t d = 0; d < weights_.size(); ++d) {
    z += weights_[d] * features[d];
  }
  return z > 0.0 ? 1 : 0;
}

double LogisticModel::accuracy(
    const std::vector<std::vector<double>>& features,
    const std::vector<std::uint8_t>& labels) const {
  if (features.empty() || features.size() != labels.size()) {
    throw std::invalid_argument("LogisticModel::accuracy: bad test set");
  }
  std::size_t correct = 0;
  for (std::size_t i = 0; i < features.size(); ++i) {
    correct += (predict(features[i]) == (labels[i] & 1));
  }
  return static_cast<double>(correct) / static_cast<double>(features.size());
}

namespace {

std::uint8_t response_bit(const puf::Response& response, std::size_t bit) {
  return (response[bit / 8] >> (7 - bit % 8)) & 1;
}

}  // namespace

AttackResult model_attack(puf::Puf& target, const FeatureMap& features,
                          const AttackConfig& config) {
  if (config.training_crps == 0 || config.test_crps == 0) {
    throw std::invalid_argument("model_attack: empty CRP budget");
  }
  crypto::Bytes seed_bytes = crypto::bytes_of("ml-attack");
  crypto::append_u64_be(seed_bytes, config.seed);
  crypto::ChaChaDrbg rng(seed_bytes);

  // CRP dataset generation is the attack's hot loop. Challenges are drawn
  // first (same DRBG order as the former interleaved loop); photonic
  // targets then answer them through the parallel batch engine, which
  // chunks the set into SIMD lane blocks of kDefaultLanes challenges per
  // pool task (SoA field planes, see photonic/field_block.hpp) and whose
  // index-based noise seeding makes the responses bit-identical to the
  // serial evaluate() sequence.
  auto* photonic = dynamic_cast<puf::PhotonicPuf*>(&target);
  auto collect = [&](std::size_t count,
                     std::vector<std::vector<double>>& xs,
                     std::vector<std::uint8_t>& ys) {
    std::vector<puf::Challenge> challenges;
    challenges.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      challenges.push_back(rng.generate(target.challenge_bytes()));
    }
    std::vector<puf::Response> responses;
    if (photonic != nullptr) {
      responses = photonic->evaluate_batch(challenges);
    } else {
      responses.reserve(count);
      // The attacker observes real (noisy) responses.
      for (const auto& c : challenges) responses.push_back(target.evaluate(c));
    }
    xs.reserve(count);
    ys.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      xs.push_back(features(challenges[i]));
      ys.push_back(response_bit(responses[i], config.target_bit));
    }
  };

  std::vector<std::vector<double>> train_x, test_x;
  std::vector<std::uint8_t> train_y, test_y;
  collect(config.training_crps, train_x, train_y);
  collect(config.test_crps, test_x, test_y);

  LogisticModel model;
  model.train(train_x, train_y, config.logistic);

  AttackResult result;
  result.training_crps = config.training_crps;
  result.train_accuracy = model.accuracy(train_x, train_y);
  result.test_accuracy = model.accuracy(test_x, test_y);
  return result;
}

double mean_attack_accuracy(puf::Puf& target, const FeatureMap& features,
                            AttackConfig config, std::size_t bits) {
  if (bits == 0) {
    throw std::invalid_argument("mean_attack_accuracy: zero bits");
  }
  double sum = 0.0;
  for (std::size_t b = 0; b < bits; ++b) {
    config.target_bit = b;
    config.seed += 1;
    sum += model_attack(target, features, config).test_accuracy;
  }
  return sum / static_cast<double>(bits);
}

}  // namespace neuropuls::attacks
