// Scripted protocol attacks against the Fig. 4 mutual-authentication
// scheme — the §IV threat classes that act on messages rather than on
// the PUF itself. Each harness sets up a fresh device/verifier pair,
// mounts the attack through the adversarial channel, and reports whether
// the protocol held. The benches and the attack_lab example consume
// these; the unit tests pin the expected verdicts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/mutual_auth.hpp"
#include "puf/photonic_puf.hpp"

namespace neuropuls::attacks {

struct ProtocolAttackReport {
  std::string attack;
  bool attacker_succeeded = false;   // attacker reached its goal
  bool honest_parties_recovered = true;  // system usable afterwards
};

/// Replay: record a full honest session, then replay the device's
/// response to a fresh verifier challenge. Goal: authenticate without
/// the device.
ProtocolAttackReport replay_attack(std::uint64_t seed);

/// Full man-in-the-middle relay: the attacker intercepts every message
/// and re-frames it under a different session id, attempting to graft a
/// session of its own onto the device's answers.
ProtocolAttackReport mitm_session_graft(std::uint64_t seed);

/// Desynchronisation: drop confirm messages for `lossy_sessions`
/// consecutive sessions, then measure whether an honest session still
/// succeeds. Goal: permanently wedge the pair.
ProtocolAttackReport desync_attack(std::uint64_t seed,
                                   unsigned lossy_sessions = 3);

/// Bit-flip forgery: tamper with every byte position of the device's
/// response in turn; success if any forgery authenticates.
ProtocolAttackReport forgery_scan(std::uint64_t seed);

/// Runs the whole battery.
std::vector<ProtocolAttackReport> run_protocol_battery(std::uint64_t seed);

}  // namespace neuropuls::attacks
