// Side-channel attack simulation (§IV).
//
// The paper's argument: electronic PUFs leak — "RF signals can be
// detected, for example, from the Si substrate ... by performing a power
// analysis it was possible to extract key information about PUF
// behaviour" (ref. [24], Rührmair CHES'14) — while photonic PUFs confine
// information to waveguides ("signals leak out only a few hundred
// nanometers"), leaving only the strongly attenuated PIC->ASIC interface.
//
// Model: during one PUF readout the attacker records a power trace with
// one time sample per response bit,
//   trace[j] = leakage * bit_j + N(0, noise_sigma),
// and averages over repeated readouts of the same challenge. The leakage
// coefficient is the physical knob: order 1 for an electronic latch
// array, orders of magnitude smaller for the photonic path. The attack
// recovers bits by thresholding the averaged trace; recovery accuracy vs
// trace count is the E7 curve. The remanence-decay comparison (§IV,
// ref. [27]) is captured by `remanence_window_s`.
#pragma once

#include <cstdint>

#include "puf/puf.hpp"

namespace neuropuls::attacks {

struct LeakageModel {
  /// Power contribution of one response bit (arbitrary units).
  double leakage_per_bit = 1.0;
  /// Trace noise sigma (same units).
  double noise_sigma = 4.0;
};

/// Typical electronic (SRAM/latch array) leakage: strong substrate/RF
/// coupling.
LeakageModel electronic_leakage();

/// Photonic-path leakage: evanescent field only; the residual PIC->ASIC
/// interface emission is ~40 dB down on the electronic case.
LeakageModel photonic_leakage();

struct SideChannelResult {
  std::size_t traces = 0;
  double bit_recovery_accuracy = 0.0;  // 0.5 = chance, 1.0 = broken
};

/// Runs the trace-averaging attack against one (challenge, response) of
/// the target. The "true" bits are the noiseless response; each simulated
/// readout leaks through `model`.
SideChannelResult power_analysis_attack(puf::Puf& target,
                                        const puf::Challenge& challenge,
                                        std::size_t traces,
                                        const LeakageModel& model,
                                        std::uint64_t seed);

/// Exploitable data-remanence window after readout:
///  * SRAM PUFs share memory with other functions and their cells hold
///    state until overwritten — seconds-scale windows (ref. [27]);
///  * the photonic response exists only while light circulates — the ring
///    memory depth, i.e. nanoseconds ("below 100 ns", §IV).
/// `response_lifetime_s` is the device's physical response lifetime; the
/// window is that lifetime (photonic) or the given hold time (SRAM).
double remanence_window_s(bool is_photonic, double response_lifetime_s,
                          double sram_hold_time_s = 1.0);

}  // namespace neuropuls::attacks
