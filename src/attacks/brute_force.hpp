// Brute-force / guessing analysis for CRPs and session secrets (§IV:
// "AKA can protect the PUF responses in such a way that an attacker
// cannot guess or brute-force the protocol").
//
// Small analytic helpers the benches use to contextualise measured
// results: expected guessing effort given the effective entropy of a
// response, and the success probability of an online guessing attacker
// limited to `attempts` tries (the regime EKE forces the adversary into,
// versus offline dictionary attacks against a raw MAC'd CRP exchange).
#pragma once

#include <cstddef>

namespace neuropuls::attacks {

/// Expected number of guesses to hit a secret of `min_entropy_bits` bits
/// of min-entropy (2^{H-1} on average; saturates at 2^62 to stay finite).
double expected_guesses(double min_entropy_bits);

/// Probability that an online attacker limited to `attempts` guesses
/// succeeds against a secret of `min_entropy_bits` min-entropy.
double online_guess_success(double min_entropy_bits, std::size_t attempts);

/// Offline-dictionary speedup factor: how many candidate secrets per
/// second an offline attacker tests vs an online one rate-limited to
/// `online_rate_per_s`. The EKE story: offline attacks are *eliminated*
/// (every guess requires a fresh protocol run), so the effective attacker
/// rate collapses from `offline_rate_per_s` to `online_rate_per_s`.
double eke_rate_reduction(double offline_rate_per_s, double online_rate_per_s);

}  // namespace neuropuls::attacks
