#include "attacks/side_channel.hpp"

#include <stdexcept>
#include <vector>

#include "crypto/prng.hpp"

namespace neuropuls::attacks {

LeakageModel electronic_leakage() {
  return LeakageModel{1.0, 4.0};
}

LeakageModel photonic_leakage() {
  // 40 dB power attenuation on the leakage term, same ambient noise.
  return LeakageModel{0.01, 4.0};
}

SideChannelResult power_analysis_attack(puf::Puf& target,
                                        const puf::Challenge& challenge,
                                        std::size_t traces,
                                        const LeakageModel& model,
                                        std::uint64_t seed) {
  if (traces == 0) {
    throw std::invalid_argument("power_analysis_attack: zero traces");
  }
  const puf::Response truth = target.evaluate_noiseless(challenge);
  const std::size_t bits = truth.size() * 8;

  rng::Gaussian noise(seed);
  std::vector<double> averaged(bits, 0.0);
  for (std::size_t t = 0; t < traces; ++t) {
    // Each readout re-measures the (noisy) device.
    const puf::Response reading = target.evaluate(challenge);
    for (std::size_t j = 0; j < bits; ++j) {
      const int bit = (reading[j / 8] >> (7 - j % 8)) & 1;
      averaged[j] += model.leakage_per_bit * bit +
                     noise.next(0.0, model.noise_sigma);
    }
  }

  // Threshold at half the leakage swing.
  std::size_t correct = 0;
  const double threshold =
      0.5 * model.leakage_per_bit * static_cast<double>(traces);
  for (std::size_t j = 0; j < bits; ++j) {
    const int guessed = averaged[j] > threshold ? 1 : 0;
    const int truth_bit = (truth[j / 8] >> (7 - j % 8)) & 1;
    correct += (guessed == truth_bit);
  }

  SideChannelResult result;
  result.traces = traces;
  result.bit_recovery_accuracy =
      static_cast<double>(correct) / static_cast<double>(bits);
  return result;
}

double remanence_window_s(bool is_photonic, double response_lifetime_s,
                          double sram_hold_time_s) {
  return is_photonic ? response_lifetime_s : sram_hold_time_s;
}

}  // namespace neuropuls::attacks
