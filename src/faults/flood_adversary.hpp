// Hostile-client session machines for flood/abuse chaos scenarios.
//
// ROADMAP item 4 wants the verifier attacked, not just used. The abuse
// model here matches the stack's session architecture: each attacker is
// a core::SessionMachine submitted to the SessionEngine alongside honest
// sessions, competing for the same admission slots, memory budget, and
// worker time. Four attack shapes cover the flood taxonomy:
//
//   kMalformed  — answers the auth request with random garbage framed as
//                 a plausible kAuthResponse. Exercises the verifier's
//                 length/MAC guards; every rejected frame increments
//                 SessionReport::malformed_frames, which the engine
//                 charges back to the attacker's rate bucket.
//   kReplay     — answers with a captured stale response from a donor
//                 session (session id rewritten). The MAC is keyed on a
//                 different secret, so the verifier must reject it and,
//                 per the mutual_auth replay latch, never re-rotate or
//                 spend fresh PUF/CRP material on it.
//   kOversized  — answers with a payload far above every frame-size
//                 limit. Depending on configuration it is shed by
//                 ChannelLimits (never enqueued) or by the machine's
//                 max_frame_bytes guard (discarded before parsing).
//   kHalfOpen   — opens the session and then goes silent: no frame is
//                 ever sent, every attempt burns its full poll budget.
//                 The cheapest attack per byte, and exactly what the
//                 admission controller's half-open eviction exists for.
//
// None of these can converge against a correct verifier; the machine
// counts any accept in false_accepts() so chaos tests can assert the
// zero-false-accept invariant directly.
#pragma once

#include <cstdint>

#include "core/mutual_auth.hpp"
#include "core/session_driver.hpp"
#include "crypto/chacha20.hpp"
#include "net/channel.hpp"
#include "net/message.hpp"

namespace neuropuls::faults {

enum class FloodMode {
  kMalformed,
  kReplay,
  kOversized,
  kHalfOpen,
};

/// An attacker client as a resumable session machine (see file comment).
/// Borrows the verifier endpoint under attack; `replay_seed` is the
/// captured frame a kReplay attacker re-sends (ignored otherwise).
class FloodAuthMachine final : public core::SessionMachine {
 public:
  FloodAuthMachine(net::DuplexChannel& channel,
                   const core::RetryPolicy& policy, crypto::ChaChaDrbg& rng,
                   core::AuthVerifier& verifier, FloodMode mode,
                   net::Message replay_seed = {});

  /// Sessions the verifier wrongly accepted. The invariant every flood
  /// test pins: this is zero, always.
  std::uint64_t false_accepts() const noexcept { return false_accepts_; }
  FloodMode mode() const noexcept { return mode_; }

 private:
  void begin_attempt() override;
  FrameOutcome on_frame(const net::Message& frame) override;

  net::Message forged_response();

  core::AuthVerifier& verifier_;
  FloodMode mode_;
  net::Message replay_seed_;
  unsigned phase_ = 0;
  std::uint64_t false_accepts_ = 0;
};

/// Captures the device's genuine kAuthResponse of one full honest session
/// so a kReplay attacker has real stale material to storm with. Runs the
/// session over `channel` (which must be fresh); returns the recorded
/// response frame. Leaves verifier/device rotated one session forward —
/// i.e., the captured frame is stale by construction.
net::Message capture_replay_material(core::AuthVerifier& verifier,
                                     core::AuthDevice& device,
                                     net::DuplexChannel& channel,
                                     std::uint64_t session_id,
                                     std::uint64_t nonce);

}  // namespace neuropuls::faults
