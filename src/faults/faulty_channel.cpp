#include "faults/faulty_channel.hpp"

#include <utility>

namespace neuropuls::faults {

LinkFaultRates symmetric_drop(double drop_rate) {
  LinkFaultRates rates;
  rates.drop = drop_rate;
  return rates;
}

ChannelFaultConfig symmetric_faults(LinkFaultRates rates) {
  return ChannelFaultConfig{rates, rates};
}

FaultyChannel::FaultyChannel(net::DuplexChannel& channel,
                             ChannelFaultConfig config, std::uint64_t seed)
    : channel_(channel),
      config_(config),
      rng_ab_(rng::derive_seed(seed, static_cast<std::uint64_t>(0xA2B))),
      rng_ba_(rng::derive_seed(seed, static_cast<std::uint64_t>(0xB2A))) {
  channel_.set_adversary([this](net::Direction d, const net::Message& m) {
    return intercept(d, m);
  });
  channel_.set_poll_hook([this] { on_poll(); });
}

FaultyChannel::~FaultyChannel() {
  channel_.set_adversary(nullptr);
  channel_.set_poll_hook(nullptr);
}

net::Verdict FaultyChannel::intercept(net::Direction direction,
                                      const net::Message& message) {
  // A frame held for reordering is released once a *later* frame in the
  // same direction has been sent: arm it to deliver on the next tick.
  for (HeldFrame& frame : held_) {
    if (frame.waiting_for_send && frame.direction == direction) {
      frame.waiting_for_send = false;
      frame.ticks_remaining = 1;
    }
  }

  const LinkFaultRates& rates =
      direction == net::Direction::kAtoB ? config_.a_to_b : config_.b_to_a;
  rng::Xoshiro256& rng = rng_for(direction);
  ChannelFaultStats& stats = stats_for(direction);
  ++stats.intercepted;

  // Fixed draw count per frame regardless of which fault fires, so the
  // stream position — and every later decision — depends only on the
  // frame sequence, not on earlier outcomes.
  const double u_drop = rng.uniform();
  const double u_corrupt = rng.uniform();
  const double u_delay = rng.uniform();
  const double u_reorder = rng.uniform();
  const double u_duplicate = rng.uniform();

  if (u_drop < rates.drop) {
    ++stats.dropped;
    return net::Verdict::drop();
  }

  if (u_corrupt < rates.corrupt) {
    ++stats.corrupted;
    net::Message mutated = message;
    if (!mutated.payload.empty()) {
      const std::uint64_t bit =
          rng.uniform_int(mutated.payload.size() * 8);
      mutated.payload[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    } else {
      mutated.type = static_cast<net::MessageType>(
          static_cast<std::uint8_t>(mutated.type) ^ 1u);
    }
    return net::Verdict::replace(std::move(mutated));
  }

  if (u_delay < rates.delay) {
    ++stats.delayed;
    const unsigned ticks =
        1u + static_cast<unsigned>(rng.uniform_int(
                 rates.max_delay_polls == 0 ? 1 : rates.max_delay_polls));
    held_.push_back({direction, message, ticks, false});
    return net::Verdict::drop();
  }

  if (u_reorder < rates.reorder) {
    ++stats.reordered;
    held_.push_back({direction, message, 0, true});
    return net::Verdict::drop();
  }

  if (u_duplicate < rates.duplicate) {
    ++stats.duplicated;
    channel_.inject(direction, message);  // copy lands ahead of the original
  }
  return net::Verdict::pass();
}

void FaultyChannel::on_poll() {
  // Collect expired frames before injecting: inject() must not run while
  // we iterate held_ (a reorder hold could otherwise be re-armed
  // mid-scan by the injected send... inject bypasses the adversary, but
  // keep mutation and delivery strictly separated anyway).
  std::vector<HeldFrame> due;
  for (std::size_t i = 0; i < held_.size();) {
    HeldFrame& frame = held_[i];
    if (!frame.waiting_for_send && --frame.ticks_remaining == 0) {
      due.push_back(std::move(frame));
      held_.erase(held_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  for (HeldFrame& frame : due) {
    channel_.inject(frame.direction, std::move(frame.message));
  }
}

void FaultyChannel::flush() {
  std::vector<HeldFrame> due;
  due.swap(held_);
  for (HeldFrame& frame : due) {
    channel_.inject(frame.direction, std::move(frame.message));
  }
}

}  // namespace neuropuls::faults
