// Lossy/adversarial transport faults over net::DuplexChannel.
//
// The protocol stack (§III/§IV) is exercised over an in-process channel
// that never loses a frame; a real verifier link drops, duplicates,
// reorders, corrupts, and delays them. FaultyChannel injects exactly
// those failures as a reusable `net::Adversary` plus a poll hook:
//
//   * drop      — frame vanishes (recorded undelivered in the transcript);
//   * corrupt   — one seeded bit of the payload flips (empty payloads get
//                 their type flipped), so MAC checks must catch it;
//   * duplicate — a second copy is injected ahead of the original;
//   * delay     — the frame is held for a seeded number of poll ticks
//                 (see DuplexChannel::receive_with_budget) and then
//                 injected — "late", not "lost";
//   * reorder   — the frame is held until the *next* frame in the same
//                 direction is sent, then released on the following poll
//                 tick, so it arrives behind a later frame.
//
// Determinism contract: all decisions come from one Xoshiro256 stream per
// direction, seeded from (seed, direction). Given the same seed and the
// same sequence of sends/polls, the fault schedule — and therefore the
// whole channel transcript — is bit-identical across runs. The chaos
// suite asserts this byte-for-byte.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/prng.hpp"
#include "net/channel.hpp"

namespace neuropuls::faults {

/// Per-direction fault rates, all independent probabilities in [0, 1].
struct LinkFaultRates {
  double drop = 0.0;
  double corrupt = 0.0;
  double duplicate = 0.0;
  double delay = 0.0;
  double reorder = 0.0;
  unsigned max_delay_polls = 4;  // delay holds for 1..max_delay_polls ticks
};

/// Convenience: the same rates in both directions.
LinkFaultRates symmetric_drop(double drop_rate);

struct ChannelFaultConfig {
  LinkFaultRates a_to_b;
  LinkFaultRates b_to_a;
};

/// Both directions share `rates`.
ChannelFaultConfig symmetric_faults(LinkFaultRates rates);

struct ChannelFaultStats {
  std::uint64_t intercepted = 0;
  std::uint64_t dropped = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t delayed = 0;
  std::uint64_t reordered = 0;
};

/// Installs a seeded fault-injecting adversary (and the matching poll
/// hook) on a DuplexChannel. The FaultyChannel must outlive any use of
/// the channel; its destructor detaches both hooks.
///
/// Threading contract: like the channel's queues, all FaultyChannel
/// state (held frames, fault PRNG streams, stats) belongs to the single
/// session that owns the channel — the adversary and poll hooks only run
/// inside that session's send()/poll() calls, which the engine already
/// serializes (one worker steps a session at a time), so it holds no
/// lock of its own. Delayed/reordered frames re-enter the channel via
/// inject(), whose wakeup notification IS cross-thread-safe — it goes
/// through DuplexChannel's hook_mutex_-guarded wakeup hook.
class FaultyChannel {
 public:
  FaultyChannel(net::DuplexChannel& channel, ChannelFaultConfig config,
                std::uint64_t seed);
  ~FaultyChannel();

  FaultyChannel(const FaultyChannel&) = delete;
  FaultyChannel& operator=(const FaultyChannel&) = delete;

  net::DuplexChannel& channel() noexcept { return channel_; }
  const ChannelFaultStats& stats(net::Direction direction) const noexcept {
    return direction == net::Direction::kAtoB ? stats_ab_ : stats_ba_;
  }

  /// Frames currently held by the delay/reorder machinery.
  std::size_t held() const noexcept { return held_.size(); }

  /// Delivers every held frame immediately (e.g. at the end of a chaos
  /// scenario, so "delayed" never silently becomes "lost").
  void flush();

 private:
  struct HeldFrame {
    net::Direction direction;
    net::Message message;
    unsigned ticks_remaining = 0;
    bool waiting_for_send = false;  // reorder: release after the next send
  };

  net::Verdict intercept(net::Direction direction, const net::Message& message);
  void on_poll();
  rng::Xoshiro256& rng_for(net::Direction direction) noexcept {
    return direction == net::Direction::kAtoB ? rng_ab_ : rng_ba_;
  }
  ChannelFaultStats& stats_for(net::Direction direction) noexcept {
    return direction == net::Direction::kAtoB ? stats_ab_ : stats_ba_;
  }

  net::DuplexChannel& channel_;
  ChannelFaultConfig config_;
  rng::Xoshiro256 rng_ab_;
  rng::Xoshiro256 rng_ba_;
  ChannelFaultStats stats_ab_;
  ChannelFaultStats stats_ba_;
  std::vector<HeldFrame> held_;
};

}  // namespace neuropuls::faults
