// Deterministic device-fault model for the optoelectronic stack.
//
// The paper's security services assume a healthy PIC + ASIC, but SerIOS
// (PAPERS.md) argues resilience of optoelectronic primitives under device
// degradation is the gating deployment concern: photodiodes die or lose
// responsivity, ADC bits get stuck, laser power droops with age and bias
// drift, thermal transients flip marginal PUF bits, and phase shifters
// drift as they age. This module makes every one of those failures a
// first-class, *seeded* input: the model is a pure function of
// (config, seed, evaluation index, port), so the same seed reproduces the
// same fault schedule bit-for-bit — the determinism contract the chaos
// suite (tests/chaos) and DESIGN.md rely on.
//
// Layering: this header depends only on the PRNG primitives, so the
// photonic and PUF layers can consume it without cycles. The hooks live
// in `photonic::Adc` (stuck bits), `puf::PhotonicPuf::analog_core`
// (photodiode/laser/thermal/phase faults, noisy path only — the
// verifier-side noiseless model stays ideal by construction).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "crypto/prng.hpp"

namespace neuropuls::faults {

/// Photodiode degradation on one output port. `responsivity_scale`
/// multiplies the detected photocurrent: 0.0 models a dead diode, values
/// in (0, 1) a degraded one.
struct PhotodiodeFault {
  std::size_t port = 0;
  double responsivity_scale = 0.0;
};

/// Stuck ADC bits: `or_mask` bits read as stuck-at-1, bits cleared in
/// `and_mask` read as stuck-at-0. Applied inside the code range after
/// quantisation.
struct AdcStuckBits {
  std::uint32_t or_mask = 0;
  std::uint32_t and_mask = 0xFFFFFFFFu;

  bool quiet() const noexcept {
    return or_mask == 0 && and_mask == 0xFFFFFFFFu;
  }
};

/// Laser power droop: emitted power decays linearly with the evaluation
/// counter until it reaches `floor_scale` of nominal (aging / bias-drift
/// model; monotone, so a drooped device never recovers on its own).
struct LaserDroopFault {
  double droop_per_eval = 0.0;  // fractional power lost per evaluation
  double floor_scale = 0.5;     // never droops below this fraction
};

/// Thermal transient spikes: with `spike_probability` per evaluation the
/// die temperature jumps by `magnitude_kelvin` for exactly that
/// evaluation. The spike schedule is keyed on (seed, evaluation index) —
/// deterministic, order-independent, thread-safe.
struct ThermalTransientFault {
  double spike_probability = 0.0;
  double magnitude_kelvin = 0.0;
};

/// Phase-shifter aging: each port accumulates a slow phase drift,
/// `drift_rad_per_eval` per evaluation up to `max_drift_rad`, with a
/// seeded per-port direction/magnitude factor (real shifters age
/// independently).
struct PhaseAgingFault {
  double drift_rad_per_eval = 0.0;
  double max_drift_rad = 0.5;
};

struct DeviceFaultConfig {
  std::vector<PhotodiodeFault> photodiodes;
  AdcStuckBits adc;
  LaserDroopFault laser_droop;
  ThermalTransientFault thermal;
  PhaseAgingFault phase_aging;
};

/// Population-level drift spread for fleet simulations (src/fleet):
/// every device draws its own aging/thermal parameters around the
/// population mean with a seeded relative spread, so a million-device
/// fleet ages heterogeneously but reproducibly. Rates are per simulated
/// *day* — the fleet layer feeds the day counter to DeviceFaultModel as
/// the evaluation index.
struct FleetDriftSpread {
  /// Mean fractional laser power lost per day (LaserDroopFault rate).
  double laser_droop_per_day = 0.0;
  double laser_droop_floor = 0.5;
  /// Thermal transient schedule: per-day spike probability + magnitude.
  double thermal_spike_probability = 0.0;
  double thermal_magnitude_kelvin = 0.0;
  /// Phase-shifter aging rate per day.
  double phase_drift_rad_per_day = 0.0;
  double phase_max_drift_rad = 0.5;
  /// Each device's rates are the mean scaled by an independent seeded
  /// uniform draw in [1 - relative_spread, 1 + relative_spread].
  double relative_spread = 0.0;
};

/// Derives device `device_index`'s fault configuration from the
/// population spread — a pure function of (spread, fleet_seed,
/// device_index), so any worker can rebuild any device's drift model
/// without coordination.
DeviceFaultConfig device_drift_config(const FleetDriftSpread& spread,
                                      std::uint64_t fleet_seed,
                                      std::uint64_t device_index);

/// Immutable, seeded fault oracle. All queries are pure functions of
/// (config, seed, arguments): no internal state advances, so concurrent
/// evaluations see the same schedule and batch evaluation keyed on the
/// evaluation counter stays bit-identical to the serial sequence.
class DeviceFaultModel {
 public:
  DeviceFaultModel(DeviceFaultConfig config, std::uint64_t seed);

  /// Multiplier on the photocurrent detected at `port` (1.0 = healthy).
  double photodiode_scale(std::size_t port) const noexcept;

  /// Applies the stuck-bit masks to an ADC output code.
  std::uint32_t apply_adc(std::uint32_t code) const noexcept;

  /// Multiplier on the laser output power for evaluation `eval_index`.
  double laser_scale(std::uint64_t eval_index) const noexcept;

  /// Additive die-temperature offset (K) for evaluation `eval_index`.
  double temperature_offset(std::uint64_t eval_index) const noexcept;

  /// Aging phase offset (radians) of the input path feeding `port` at
  /// evaluation `eval_index`.
  double phase_drift(std::uint64_t eval_index, std::size_t port) const noexcept;

  /// True when the configuration injects nothing — a quiet model attached
  /// to a device is bit-identical to no model at all (asserted in
  /// tests/faults).
  bool quiet() const noexcept;

  const DeviceFaultConfig& config() const noexcept { return config_; }
  std::uint64_t seed() const noexcept { return seed_; }

 private:
  DeviceFaultConfig config_;
  std::uint64_t seed_;
};

}  // namespace neuropuls::faults
