#include "faults/device_faults.hpp"

#include <algorithm>
#include <cmath>

namespace neuropuls::faults {

namespace {

// Domain-separation streams so the thermal-spike and phase-aging
// schedules never correlate even under the same root seed.
constexpr std::uint64_t kThermalStream = 0x7468726d;  // "thrm"
constexpr std::uint64_t kAgingStream = 0x6167696e;    // "agin"
constexpr std::uint64_t kFleetStream = 0x666c6565;    // "flee"

}  // namespace

DeviceFaultConfig device_drift_config(const FleetDriftSpread& spread,
                                      std::uint64_t fleet_seed,
                                      std::uint64_t device_index) {
  rng::Xoshiro256 rng(rng::derive_seed(
      rng::derive_seed(fleet_seed, kFleetStream), device_index));
  const double s = std::clamp(spread.relative_spread, 0.0, 1.0);
  // One independent draw per parameter, in a fixed order so adding a
  // parameter later does not reshuffle existing devices' draws.
  const double droop_factor = rng.uniform(1.0 - s, 1.0 + s);
  const double thermal_factor = rng.uniform(1.0 - s, 1.0 + s);
  const double phase_factor = rng.uniform(1.0 - s, 1.0 + s);
  DeviceFaultConfig config;
  config.laser_droop.droop_per_eval =
      spread.laser_droop_per_day * droop_factor;
  config.laser_droop.floor_scale = spread.laser_droop_floor;
  config.thermal.spike_probability =
      std::clamp(spread.thermal_spike_probability * thermal_factor, 0.0, 1.0);
  config.thermal.magnitude_kelvin = spread.thermal_magnitude_kelvin;
  config.phase_aging.drift_rad_per_eval =
      spread.phase_drift_rad_per_day * phase_factor;
  config.phase_aging.max_drift_rad = spread.phase_max_drift_rad;
  return config;
}

DeviceFaultModel::DeviceFaultModel(DeviceFaultConfig config, std::uint64_t seed)
    : config_(std::move(config)), seed_(seed) {}

double DeviceFaultModel::photodiode_scale(std::size_t port) const noexcept {
  double scale = 1.0;
  for (const auto& fault : config_.photodiodes) {
    if (fault.port == port) scale *= fault.responsivity_scale;
  }
  return scale;
}

std::uint32_t DeviceFaultModel::apply_adc(std::uint32_t code) const noexcept {
  return (code | config_.adc.or_mask) & config_.adc.and_mask;
}

double DeviceFaultModel::laser_scale(std::uint64_t eval_index) const noexcept {
  const LaserDroopFault& droop = config_.laser_droop;
  if (droop.droop_per_eval <= 0.0) return 1.0;
  const double drooped =
      1.0 - droop.droop_per_eval * static_cast<double>(eval_index);
  return std::max(droop.floor_scale, drooped);
}

double DeviceFaultModel::temperature_offset(
    std::uint64_t eval_index) const noexcept {
  const ThermalTransientFault& thermal = config_.thermal;
  if (thermal.spike_probability <= 0.0 || thermal.magnitude_kelvin == 0.0) {
    return 0.0;
  }
  // One decorrelated stream per evaluation index: the spike schedule is a
  // pure function of (seed, index), so concurrent / batched evaluations
  // agree with the serial sequence.
  rng::Xoshiro256 rng(
      rng::derive_seed(rng::derive_seed(seed_, kThermalStream), eval_index));
  return rng.bernoulli(thermal.spike_probability) ? thermal.magnitude_kelvin
                                                  : 0.0;
}

double DeviceFaultModel::phase_drift(std::uint64_t eval_index,
                                     std::size_t port) const noexcept {
  const PhaseAgingFault& aging = config_.phase_aging;
  if (aging.drift_rad_per_eval <= 0.0) return 0.0;
  const double drift =
      std::min(aging.drift_rad_per_eval * static_cast<double>(eval_index),
               aging.max_drift_rad);
  // Per-port direction/magnitude factor in [-1, 1]: shifters age
  // independently, and a uniform common-mode phase would cancel in the
  // square-law detector anyway.
  rng::Xoshiro256 rng(
      rng::derive_seed(rng::derive_seed(seed_, kAgingStream), port));
  return drift * rng.uniform(-1.0, 1.0);
}

bool DeviceFaultModel::quiet() const noexcept {
  const bool pd_quiet =
      std::all_of(config_.photodiodes.begin(), config_.photodiodes.end(),
                  [](const PhotodiodeFault& f) {
                    return f.responsivity_scale == 1.0;
                  });
  return pd_quiet && config_.adc.quiet() &&
         config_.laser_droop.droop_per_eval <= 0.0 &&
         (config_.thermal.spike_probability <= 0.0 ||
          config_.thermal.magnitude_kelvin == 0.0) &&
         config_.phase_aging.drift_rad_per_eval <= 0.0;
}

}  // namespace neuropuls::faults
