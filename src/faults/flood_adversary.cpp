#include "faults/flood_adversary.hpp"

#include <stdexcept>
#include <utility>

namespace neuropuls::faults {

FloodAuthMachine::FloodAuthMachine(net::DuplexChannel& channel,
                                   const core::RetryPolicy& policy,
                                   crypto::ChaChaDrbg& rng,
                                   core::AuthVerifier& verifier,
                                   FloodMode mode, net::Message replay_seed)
    : SessionMachine(channel, policy, rng, /*session_base=*/0),
      verifier_(verifier),
      mode_(mode),
      replay_seed_(std::move(replay_seed)) {}

void FloodAuthMachine::begin_attempt() {
  phase_ = 0;
  if (mode_ == FloodMode::kHalfOpen) {
    // Open and go silent: the expectation below can never be satisfied,
    // so every attempt burns its full poll budget while the session
    // squats on its admission slot.
    expect_next(net::Direction::kAtoB, net::MessageType::kAuthConfirm);
    return;
  }
  const std::uint64_t nonce = rng_.next_u64();
  channel_.send(net::Direction::kAtoB, verifier_.start(sid_, nonce));
  expect_next(net::Direction::kAtoB, net::MessageType::kAuthRequest);
}

net::Message FloodAuthMachine::forged_response() {
  switch (mode_) {
    case FloodMode::kMalformed: {
      // Random garbage at a plausible-but-wrong length: fails the
      // verifier's exact-length check before any MAC work.
      crypto::Bytes junk = rng_.generate(24);
      return net::Message{net::MessageType::kAuthResponse, sid_,
                          std::move(junk)};
    }
    case FloodMode::kOversized: {
      // Far above both the channel's and the machine's frame caps. The
      // byte pattern is irrelevant — no parser may ever see it.
      const std::size_t huge =
          (policy_.max_frame_bytes != 0 ? policy_.max_frame_bytes
                                        : (std::size_t{1} << 16)) +
          1024;
      return net::Message{net::MessageType::kAuthResponse, sid_,
                          crypto::Bytes(huge, 0xA5)};
    }
    case FloodMode::kReplay: {
      net::Message stale = replay_seed_;
      stale.session_id = sid_;  // smuggle past the session-id check
      return stale;
    }
    case FloodMode::kHalfOpen:
      break;
  }
  throw std::logic_error("FloodAuthMachine: no response in this mode");
}

core::SessionMachine::FrameOutcome FloodAuthMachine::on_frame(
    const net::Message& frame) {
  switch (phase_) {
    case 0: {
      (void)frame;  // the request only tells us the verifier is listening
      channel_.send(net::Direction::kBtoA, forged_response());
      phase_ = 1;
      expect_next(net::Direction::kBtoA, net::MessageType::kAuthResponse);
      return FrameOutcome::kAdvance;
    }
    default: {
      const auto outcome = verifier_.process_response(frame);
      report_.last_auth_status = outcome.status;
      if (outcome.status == core::AuthStatus::kOk) {
        // A correct verifier never reaches this: the chaos suite pins
        // false_accepts() == 0 under every flood mix.
        ++false_accepts_;
        return FrameOutcome::kConverged;
      }
      return FrameOutcome::kFailAttempt;
    }
  }
}

net::Message capture_replay_material(core::AuthVerifier& verifier,
                                     core::AuthDevice& device,
                                     net::DuplexChannel& channel,
                                     std::uint64_t session_id,
                                     std::uint64_t nonce) {
  net::Message captured;
  channel.set_adversary([&](net::Direction direction,
                            const net::Message& message) {
    if (direction == net::Direction::kBtoA &&
        message.type == net::MessageType::kAuthResponse) {
      captured = message;
    }
    return net::Verdict::pass();
  });
  const bool converged =
      core::run_auth_session(verifier, device, channel, session_id, nonce);
  channel.set_adversary(nullptr);
  if (!converged || captured.payload.empty()) {
    throw std::runtime_error(
        "capture_replay_material: donor session did not converge");
  }
  return captured;
}

}  // namespace neuropuls::faults
