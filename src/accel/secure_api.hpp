// Table I — the hardware-boundary API:
//
//   | load_network    | ciphered_network | (none)          |
//   | execute_network | ciphered_input   | ciphered_output |
//
// "The configuration is decrypted in hardware and loaded in the
// accelerator ... data are never exposed in plaintext to the software
// ... primitives that never leave plaintext in the memory after
// execution." The class below is that hardware boundary: the only public
// entry points take and return ciphertext, the device key lives inside,
// and intermediate plaintext buffers are wiped before returning. The
// tests assert both the functional property (round-trip correctness) and
// the security property (tampered or wrongly-keyed blobs are rejected
// before any plaintext is produced).
#pragma once

#include <memory>

#include "accel/accelerator.hpp"
#include "common/secret.hpp"
#include "crypto/bytes.hpp"

namespace neuropuls::accel {

class SecureAccelerator {
 public:
  /// `device_key` is the PUF-derived encryption key (from
  /// core::KeyManager); the taint type means callers hand over ownership
  /// and the key is never exposed again once installed.
  SecureAccelerator(std::unique_ptr<MvmEngine> engine,
                    common::SecretBytes device_key);

  /// Table I `load_network(ciphered_network)`. Throws std::runtime_error
  /// on authentication failure (tamper/wrong key) or malformed plaintext.
  void load_network(crypto::ByteView ciphered_network);

  /// Table I `execute_network(ciphered_input) -> ciphered_output`.
  /// `nonce_counter` freshness is handled internally (monotonic).
  crypto::Bytes execute_network(crypto::ByteView ciphered_input);

  bool network_loaded() const noexcept { return accelerator_.loaded(); }
  const EngineStats& stats() const { return accelerator_.stats(); }

  /// Client-side helpers (run on the party that owns the same key):
  /// produce the ciphertext blobs the two entry points accept.
  static crypto::Bytes encrypt_network(const MlpNetwork& network,
                                       crypto::ByteView key,
                                       std::uint64_t nonce);
  static crypto::Bytes encrypt_input(const std::vector<double>& input,
                                     crypto::ByteView key,
                                     std::uint64_t nonce);
  static std::vector<double> decrypt_output(crypto::ByteView ciphered_output,
                                            crypto::ByteView key);

 private:
  crypto::Bytes seal(crypto::ByteView plaintext);

  Accelerator accelerator_;
  common::SecretBytes device_key_;
  std::uint64_t nonce_counter_ = 0x80000000ULL;  // device-side nonce space
};

}  // namespace neuropuls::accel
