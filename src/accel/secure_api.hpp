// Table I — the hardware-boundary API:
//
//   | load_network    | ciphered_network | (none)          |
//   | execute_network | ciphered_input   | ciphered_output |
//
// "The configuration is decrypted in hardware and loaded in the
// accelerator ... data are never exposed in plaintext to the software
// ... primitives that never leave plaintext in the memory after
// execution." The class below is that hardware boundary: the only public
// entry points take and return ciphertext, the device key lives inside,
// and intermediate plaintext buffers are wiped before returning. The
// tests assert both the functional property (round-trip correctness) and
// the security property (tampered or wrongly-keyed blobs are rejected
// before any plaintext is produced).
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>

#include "accel/accelerator.hpp"
#include "common/mutex.hpp"
#include "common/secret.hpp"
#include "common/thread_annotations.hpp"
#include "crypto/bytes.hpp"

namespace neuropuls::accel {

/// Service-health state of the secure boundary. Crypto failures (tampered
/// blobs, wrong keys — possibly a degrading PUF-derived key upstream)
/// degrade service instead of crashing the accelerator:
///   kHealthy  — normal operation;
///   kDegraded — consecutive crypto failures at/past the degrade
///               threshold; service continues, operators should re-derive
///               keys / re-enroll;
///   kLockedOut — failures reached the lockout threshold; all ciphered
///               entry points refuse (LockedOutError) until reset_health().
enum class HealthState { kHealthy, kDegraded, kLockedOut };

struct HealthPolicy {
  std::uint32_t degrade_after = 2;
  std::uint32_t lockout_after = 5;
};

/// Thrown by the ciphered entry points while locked out — distinguishable
/// from a plain crypto failure so callers can route to recovery instead
/// of retrying.
class LockedOutError : public std::runtime_error {
 public:
  LockedOutError()
      : std::runtime_error("SecureAccelerator: locked out after repeated "
                           "authentication failures") {}
};

/// Thread-safe: the ciphered entry points serialize on mutex_ (the
/// engine and nonce counter are single-stream hardware state); the
/// health machine lives under its own reader/writer lock so monitors can
/// poll health()/consecutive_failures() without queueing behind a long
/// inference. Lock order: mutex_ > health_mutex_.
class SecureAccelerator {
 public:
  /// `device_key` is the PUF-derived encryption key (from
  /// core::KeyManager); the taint type means callers hand over ownership
  /// and the key is never exposed again once installed.
  SecureAccelerator(std::unique_ptr<MvmEngine> engine,
                    common::SecretBytes device_key,
                    HealthPolicy health_policy = {});

  /// Table I `load_network(ciphered_network)`. Throws std::runtime_error
  /// on authentication failure (tamper/wrong key) or malformed plaintext,
  /// LockedOutError while locked out.
  void load_network(crypto::ByteView ciphered_network) NP_EXCLUDES(mutex_);

  /// Table I `execute_network(ciphered_input) -> ciphered_output`.
  /// `nonce_counter` freshness is handled internally (monotonic).
  /// Throws LockedOutError while locked out.
  crypto::Bytes execute_network(crypto::ByteView ciphered_input)
      NP_EXCLUDES(mutex_);

  bool network_loaded() const NP_EXCLUDES(mutex_) {
    const common::MutexLock lock(mutex_);
    return accelerator_.loaded();
  }
  /// Snapshot of the engine's MAC/energy counters. By value: a reference
  /// into the engine would be read outside mutex_.
  EngineStats stats() const NP_EXCLUDES(mutex_) {
    const common::MutexLock lock(mutex_);
    return accelerator_.stats();
  }

  /// Health model: consecutive crypto (authentication) failures walk
  /// Healthy -> Degraded -> LockedOut; a success in Healthy/Degraded
  /// resets to Healthy. LockedOut is sticky — only an explicit operator
  /// reset_health() (re-provisioning) restores service.
  HealthState health() const NP_EXCLUDES(health_mutex_) {
    const common::ReadLock lock(health_mutex_);
    return health_;
  }
  std::uint32_t consecutive_failures() const NP_EXCLUDES(health_mutex_) {
    const common::ReadLock lock(health_mutex_);
    return consecutive_failures_;
  }
  void reset_health() NP_EXCLUDES(health_mutex_) {
    const common::WriteLock lock(health_mutex_);
    health_ = HealthState::kHealthy;
    consecutive_failures_ = 0;
  }

  /// Client-side helpers (run on the party that owns the same key):
  /// produce the ciphertext blobs the two entry points accept.
  static crypto::Bytes encrypt_network(const MlpNetwork& network,
                                       crypto::ByteView key,
                                       std::uint64_t nonce);
  static crypto::Bytes encrypt_input(const std::vector<double>& input,
                                     crypto::ByteView key,
                                     std::uint64_t nonce);
  static std::vector<double> decrypt_output(crypto::ByteView ciphered_output,
                                            crypto::ByteView key);

 private:
  crypto::Bytes seal(crypto::ByteView plaintext) NP_REQUIRES(mutex_);
  void require_service() const NP_EXCLUDES(health_mutex_);
  void note_success() NP_EXCLUDES(health_mutex_);
  void note_failure() NP_EXCLUDES(health_mutex_);

  /// Serializes the ciphered entry points and guards the engine + nonce.
  mutable common::Mutex mutex_;
  Accelerator accelerator_ NP_GUARDED_BY(mutex_);
  common::SecretBytes device_key_;  // immutable after construction
  std::uint64_t nonce_counter_ NP_GUARDED_BY(mutex_) =
      0x80000000ULL;  // device-side nonce space
  HealthPolicy health_policy_;  // immutable after construction
  mutable common::SharedMutex health_mutex_;
  HealthState health_ NP_GUARDED_BY(health_mutex_) = HealthState::kHealthy;
  std::uint32_t consecutive_failures_ NP_GUARDED_BY(health_mutex_) = 0;
};

}  // namespace neuropuls::accel
