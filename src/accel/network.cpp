#include "accel/network.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "crypto/prng.hpp"

namespace neuropuls::accel {

namespace {

constexpr std::uint32_t kFormatVersion = 1;

void append_f64(crypto::Bytes& out, double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, 8);
  // Little-endian on the wire.
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
  }
}

class Reader {
 public:
  explicit Reader(crypto::ByteView data) : data_(data) {}

  std::uint32_t u32() {
    require(4);
    const std::uint32_t v = crypto::get_u32_be(data_.subspan(pos_, 4));
    pos_ += 4;
    return v;
  }

  std::uint8_t u8() {
    require(1);
    return data_[pos_++];
  }

  double f64() {
    require(8);
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)]) << (8 * i);
    }
    pos_ += 8;
    double value;
    std::memcpy(&value, &bits, 8);
    return value;
  }

  bool exhausted() const noexcept { return pos_ == data_.size(); }

 private:
  void require(std::size_t n) const {
    if (pos_ + n > data_.size()) {
      throw std::runtime_error("network blob truncated");
    }
  }
  crypto::ByteView data_;
  std::size_t pos_ = 0;
};

}  // namespace

std::size_t MlpNetwork::parameter_count() const {
  std::size_t n = 0;
  for (const auto& layer : layers) {
    n += layer.weights.size() + layer.biases.size();
  }
  return n;
}

void MlpNetwork::validate() const {
  if (layers.empty()) {
    throw std::invalid_argument("MlpNetwork: no layers");
  }
  std::size_t previous_out = layers.front().inputs;
  for (const auto& layer : layers) {
    if (layer.inputs == 0 || layer.outputs == 0) {
      throw std::invalid_argument("MlpNetwork: zero-sized layer");
    }
    if (layer.inputs != previous_out) {
      throw std::invalid_argument("MlpNetwork: layer shapes do not chain");
    }
    if (layer.weights.size() != layer.inputs * layer.outputs ||
        layer.biases.size() != layer.outputs) {
      throw std::invalid_argument("MlpNetwork: buffer size mismatch");
    }
    previous_out = layer.outputs;
  }
}

double apply_activation(Activation activation, double x) {
  switch (activation) {
    case Activation::kLinear: return x;
    case Activation::kRelu: return x > 0.0 ? x : 0.0;
    case Activation::kSigmoid: return 1.0 / (1.0 + std::exp(-x));
    case Activation::kTanh: return std::tanh(x);
  }
  return x;
}

crypto::Bytes serialize_network(const MlpNetwork& network) {
  network.validate();
  crypto::Bytes out;
  crypto::append_u32_be(out, kFormatVersion);
  crypto::append_u32_be(out, static_cast<std::uint32_t>(network.layers.size()));
  for (const auto& layer : network.layers) {
    crypto::append_u32_be(out, static_cast<std::uint32_t>(layer.inputs));
    crypto::append_u32_be(out, static_cast<std::uint32_t>(layer.outputs));
    out.push_back(static_cast<std::uint8_t>(layer.activation));
    for (double w : layer.weights) append_f64(out, w);
    for (double b : layer.biases) append_f64(out, b);
  }
  return out;
}

MlpNetwork deserialize_network(crypto::ByteView blob) {
  Reader reader(blob);
  if (reader.u32() != kFormatVersion) {
    throw std::runtime_error("network blob: unsupported version");
  }
  const std::uint32_t layer_count = reader.u32();
  if (layer_count == 0 || layer_count > 1024) {
    throw std::runtime_error("network blob: implausible layer count");
  }
  MlpNetwork network;
  network.layers.resize(layer_count);
  for (auto& layer : network.layers) {
    layer.inputs = reader.u32();
    layer.outputs = reader.u32();
    if (layer.inputs == 0 || layer.outputs == 0 ||
        layer.inputs > 1u << 20 || layer.outputs > 1u << 20) {
      throw std::runtime_error("network blob: implausible layer shape");
    }
    layer.activation = static_cast<Activation>(reader.u8());
    if (static_cast<std::uint8_t>(layer.activation) > 3) {
      throw std::runtime_error("network blob: unknown activation");
    }
    layer.weights.resize(layer.inputs * layer.outputs);
    for (auto& w : layer.weights) w = reader.f64();
    layer.biases.resize(layer.outputs);
    for (auto& b : layer.biases) b = reader.f64();
  }
  if (!reader.exhausted()) {
    throw std::runtime_error("network blob: trailing bytes");
  }
  network.validate();
  return network;
}

crypto::Bytes serialize_vector(const std::vector<double>& values) {
  crypto::Bytes out;
  crypto::append_u32_be(out, static_cast<std::uint32_t>(values.size()));
  for (double v : values) append_f64(out, v);
  return out;
}

std::vector<double> deserialize_vector(crypto::ByteView blob) {
  Reader reader(blob);
  const std::uint32_t count = reader.u32();
  if (count > 1u << 24) {
    throw std::runtime_error("vector blob: implausible size");
  }
  std::vector<double> values(count);
  for (auto& v : values) v = reader.f64();
  if (!reader.exhausted()) {
    throw std::runtime_error("vector blob: trailing bytes");
  }
  return values;
}

MlpNetwork make_random_network(const std::vector<std::size_t>& layer_sizes,
                               std::uint64_t seed,
                               Activation hidden_activation) {
  if (layer_sizes.size() < 2) {
    throw std::invalid_argument("make_random_network: need >= 2 sizes");
  }
  rng::Gaussian g(seed);
  MlpNetwork network;
  for (std::size_t l = 0; l + 1 < layer_sizes.size(); ++l) {
    Layer layer;
    layer.inputs = layer_sizes[l];
    layer.outputs = layer_sizes[l + 1];
    layer.activation = (l + 2 == layer_sizes.size()) ? Activation::kLinear
                                                     : hidden_activation;
    const double scale = std::sqrt(2.0 / static_cast<double>(layer.inputs));
    layer.weights.resize(layer.inputs * layer.outputs);
    for (auto& w : layer.weights) w = g.next(0.0, scale);
    layer.biases.assign(layer.outputs, 0.0);
    network.layers.push_back(std::move(layer));
  }
  return network;
}

}  // namespace neuropuls::accel
