// The neuromorphic accelerator: matrix–vector multiply engines and the
// inference core.
//
// Two interchangeable MVM engines:
//   * DigitalMvm   — exact floating-point reference;
//   * PhotonicMvm  — the photonic weight bank: weights quantized to the
//     DAC resolution, outputs carrying analog noise proportional to the
//     optical signal chain, exactly the accuracy/energy trade the
//     NEUROPULS accelerator makes. Energy per MAC is orders of magnitude
//     below the digital engine — the project's raison d'être ("low-power
//     systems", §I) — and the E10/E3 benches report both.
#pragma once

#include <cstdint>
#include <memory>

#include "accel/network.hpp"
#include "crypto/prng.hpp"

namespace neuropuls::accel {

/// Execution statistics accumulated by an engine.
struct EngineStats {
  std::uint64_t mac_operations = 0;
  double energy_pj = 0.0;  // accumulated energy estimate
};

class MvmEngine {
 public:
  virtual ~MvmEngine() = default;

  /// y = W x + b for one layer.
  virtual std::vector<double> multiply(const Layer& layer,
                                       const std::vector<double>& x) = 0;

  virtual const EngineStats& stats() const = 0;
  virtual std::string name() const = 0;
};

/// Exact digital reference engine.
class DigitalMvm final : public MvmEngine {
 public:
  /// `energy_per_mac_pj` defaults to a 45 nm-class MAC (~4.6 pJ incl.
  /// SRAM access).
  explicit DigitalMvm(double energy_per_mac_pj = 4.6);

  std::vector<double> multiply(const Layer& layer,
                               const std::vector<double>& x) override;
  const EngineStats& stats() const override { return stats_; }
  std::string name() const override { return "digital-mvm"; }

 private:
  double energy_per_mac_pj_;
  EngineStats stats_;
};

struct PhotonicMvmConfig {
  unsigned weight_bits = 6;        // DAC resolution for ring tuning
  double relative_noise = 0.01;    // analog noise vs output magnitude
  double additive_noise = 1e-3;    // detector floor
  double energy_per_mac_pj = 0.05; // photonic MAC energy estimate
  double weight_clip = 4.0;        // representable weight range [-clip, clip]
};

/// Photonic weight-bank engine: quantization + analog noise.
class PhotonicMvm final : public MvmEngine {
 public:
  PhotonicMvm(PhotonicMvmConfig config, std::uint64_t seed);

  std::vector<double> multiply(const Layer& layer,
                               const std::vector<double>& x) override;
  const EngineStats& stats() const override { return stats_; }
  std::string name() const override { return "photonic-mvm"; }

  /// The value actually programmed for a weight (quantized + clipped).
  double effective_weight(double w) const noexcept;

 private:
  PhotonicMvmConfig config_;
  EngineStats stats_;
  rng::Gaussian noise_;
};

/// Inference core: owns an engine and a loaded network.
class Accelerator {
 public:
  explicit Accelerator(std::unique_ptr<MvmEngine> engine);

  /// Loads (and validates) a network configuration.
  void load(MlpNetwork network);

  bool loaded() const noexcept { return loaded_; }

  /// Runs a forward pass. Throws std::logic_error when nothing is loaded,
  /// std::invalid_argument on input size mismatch.
  std::vector<double> infer(const std::vector<double>& input);

  const EngineStats& stats() const { return engine_->stats(); }
  const MvmEngine& engine() const { return *engine_; }

 private:
  std::unique_ptr<MvmEngine> engine_;
  MlpNetwork network_;
  bool loaded_ = false;
};

}  // namespace neuropuls::accel
