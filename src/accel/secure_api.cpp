#include "accel/secure_api.hpp"

#include <algorithm>
#include <stdexcept>

#include "crypto/aes.hpp"

namespace neuropuls::accel {

namespace {

crypto::Bytes nonce16(std::uint64_t counter) {
  crypto::Bytes nonce(16, 0);
  crypto::put_u64_be(std::span<std::uint8_t>(nonce.data() + 8, 8), counter);
  return nonce;
}

}  // namespace

SecureAccelerator::SecureAccelerator(std::unique_ptr<MvmEngine> engine,
                                     common::SecretBytes device_key,
                                     HealthPolicy health_policy)
    : accelerator_(std::move(engine)),
      device_key_(std::move(device_key)),
      health_policy_(health_policy) {
  if (device_key_.empty()) {
    throw std::invalid_argument("SecureAccelerator: empty device key");
  }
  if (health_policy_.degrade_after == 0 ||
      health_policy_.lockout_after < health_policy_.degrade_after) {
    throw std::invalid_argument("SecureAccelerator: bad health policy");
  }
}

void SecureAccelerator::require_service() const {
  const common::ReadLock lock(health_mutex_);
  if (health_ == HealthState::kLockedOut) throw LockedOutError();
}

void SecureAccelerator::note_success() {
  // LockedOut is sticky (only reset_health() clears it), so a success can
  // only be observed in Healthy/Degraded — both recover fully.
  const common::WriteLock lock(health_mutex_);
  consecutive_failures_ = 0;
  health_ = HealthState::kHealthy;
}

void SecureAccelerator::note_failure() {
  const common::WriteLock lock(health_mutex_);
  ++consecutive_failures_;
  if (consecutive_failures_ >= health_policy_.lockout_after) {
    health_ = HealthState::kLockedOut;
  } else if (consecutive_failures_ >= health_policy_.degrade_after) {
    health_ = HealthState::kDegraded;
  }
}

crypto::Bytes SecureAccelerator::encrypt_network(const MlpNetwork& network,
                                                 crypto::ByteView key,
                                                 std::uint64_t nonce) {
  // Plaintext hygiene throughout this file: every transient plaintext
  // buffer carries the lint's secret annotation and is cleared with
  // crypto::secure_wipe before it goes out of scope ("never leave
  // plaintext in the memory after execution").
  crypto::Bytes plaintext = serialize_network(network);  // ctlint:secret
  crypto::Bytes sealed =
      crypto::aes_ctr_then_mac_seal(key, nonce16(nonce), plaintext);
  crypto::secure_wipe(plaintext);
  return sealed;
}

crypto::Bytes SecureAccelerator::encrypt_input(
    const std::vector<double>& input, crypto::ByteView key,
    std::uint64_t nonce) {
  crypto::Bytes plaintext = serialize_vector(input);  // ctlint:secret
  crypto::Bytes sealed =
      crypto::aes_ctr_then_mac_seal(key, nonce16(nonce), plaintext);
  crypto::secure_wipe(plaintext);
  return sealed;
}

std::vector<double> SecureAccelerator::decrypt_output(
    crypto::ByteView ciphered_output, crypto::ByteView key) {
  // ctlint:secret(plaintext)
  crypto::Bytes plaintext = crypto::aes_ctr_then_mac_open(key, ciphered_output);
  std::vector<double> output;
  try {
    output = deserialize_vector(plaintext);
  } catch (...) {
    crypto::secure_wipe(plaintext);
    throw;
  }
  crypto::secure_wipe(plaintext);
  return output;
}

void SecureAccelerator::load_network(crypto::ByteView ciphered_network) {
  const common::MutexLock entry(mutex_);  // mutex_ > health_mutex_
  require_service();
  crypto::Bytes plaintext;  // ctlint:secret
  try {
    // Decrypt-and-verify happens "in hardware" — inside this boundary.
    plaintext =
        crypto::aes_ctr_then_mac_open(device_key_.reveal(), ciphered_network);
  } catch (const std::runtime_error&) {
    // Authentication failure: tampered blob or wrong/degraded key. Count
    // it toward degradation, then surface the original error.
    note_failure();
    throw;
  }
  // The weights plaintext must be wiped on *every* exit path: a malformed
  // blob that passed the MAC (e.g. a version-skewed peer with the right
  // key) still counts toward degradation and must not leave decrypted
  // secrets behind in freed memory.
  MlpNetwork network;
  try {
    network = deserialize_network(plaintext);
  } catch (...) {
    crypto::secure_wipe(plaintext);
    note_failure();
    throw;
  }
  crypto::secure_wipe(plaintext);
  accelerator_.load(std::move(network));
  note_success();
}

crypto::Bytes SecureAccelerator::seal(crypto::ByteView plaintext) {
  return crypto::aes_ctr_then_mac_seal(device_key_.reveal(),
                                       nonce16(++nonce_counter_), plaintext);
}

crypto::Bytes SecureAccelerator::execute_network(
    crypto::ByteView ciphered_input) {
  const common::MutexLock entry(mutex_);  // mutex_ > health_mutex_
  require_service();
  if (!accelerator_.loaded()) {
    // Caller bug, not a device/crypto failure — never counts toward
    // degradation.
    throw std::logic_error("SecureAccelerator: no network loaded");
  }
  crypto::Bytes plaintext;  // ctlint:secret
  try {
    plaintext =
        crypto::aes_ctr_then_mac_open(device_key_.reveal(), ciphered_input);
  } catch (const std::runtime_error&) {
    note_failure();
    throw;
  }
  std::vector<double> input;  // ctlint:secret
  try {
    input = deserialize_vector(plaintext);
  } catch (...) {
    crypto::secure_wipe(plaintext);
    note_failure();
    throw;
  }
  crypto::secure_wipe(plaintext);
  note_success();

  std::vector<double> output;  // ctlint:secret
  try {
    output = accelerator_.infer(input);
  } catch (...) {
    crypto::secure_wipe(input);
    throw;
  }
  crypto::secure_wipe(input);

  crypto::Bytes serialized = serialize_vector(output);  // ctlint:secret
  crypto::secure_wipe(output);
  crypto::Bytes sealed = seal(serialized);
  crypto::secure_wipe(serialized);
  return sealed;
}

}  // namespace neuropuls::accel
