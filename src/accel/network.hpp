// Neural-network configuration objects and their wire format.
//
// The NEUROPULS accelerator runs feed-forward networks; Table I moves the
// *configuration* (weights) and the *data* (inputs/outputs) across the
// hardware boundary in encrypted form, so both need a canonical byte
// serialization. The format is versioned and length-prefixed; decode
// rejects malformed blobs (a tampered ciphertext that survives the MAC
// would still never reach the parser, but defense in depth is free).
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/bytes.hpp"

namespace neuropuls::accel {

enum class Activation : std::uint8_t {
  kLinear = 0,
  kRelu = 1,
  kSigmoid = 2,
  kTanh = 3,
};

struct Layer {
  std::size_t inputs = 0;
  std::size_t outputs = 0;
  std::vector<double> weights;  // row-major [outputs x inputs]
  std::vector<double> biases;   // [outputs]
  Activation activation = Activation::kRelu;
};

struct MlpNetwork {
  std::vector<Layer> layers;

  std::size_t input_size() const {
    return layers.empty() ? 0 : layers.front().inputs;
  }
  std::size_t output_size() const {
    return layers.empty() ? 0 : layers.back().outputs;
  }
  /// Total parameter count (weights + biases).
  std::size_t parameter_count() const;

  /// Structural validation: layer shapes chain, sizes match buffers.
  /// Throws std::invalid_argument on violation.
  void validate() const;
};

/// Applies an activation function element-wise.
double apply_activation(Activation activation, double x);

/// Serialises a network (version-tagged). Throws on invalid networks.
crypto::Bytes serialize_network(const MlpNetwork& network);

/// Parses a serialized network. Throws std::runtime_error on malformed
/// input.
MlpNetwork deserialize_network(crypto::ByteView blob);

/// Vector <-> bytes (u32 count + f64 little-endian each).
crypto::Bytes serialize_vector(const std::vector<double>& values);
std::vector<double> deserialize_vector(crypto::ByteView blob);

/// Deterministic random network for tests/benches.
MlpNetwork make_random_network(const std::vector<std::size_t>& layer_sizes,
                               std::uint64_t seed,
                               Activation hidden_activation = Activation::kRelu);

}  // namespace neuropuls::accel
