#include "accel/accelerator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace neuropuls::accel {

DigitalMvm::DigitalMvm(double energy_per_mac_pj)
    : energy_per_mac_pj_(energy_per_mac_pj) {}

std::vector<double> DigitalMvm::multiply(const Layer& layer,
                                         const std::vector<double>& x) {
  std::vector<double> y(layer.outputs);
  for (std::size_t o = 0; o < layer.outputs; ++o) {
    double acc = layer.biases[o];
    const double* row = layer.weights.data() + o * layer.inputs;
    for (std::size_t i = 0; i < layer.inputs; ++i) acc += row[i] * x[i];
    y[o] = acc;
  }
  stats_.mac_operations += layer.inputs * layer.outputs;
  stats_.energy_pj += energy_per_mac_pj_ *
                      static_cast<double>(layer.inputs * layer.outputs);
  return y;
}

PhotonicMvm::PhotonicMvm(PhotonicMvmConfig config, std::uint64_t seed)
    : config_(config), noise_(seed) {
  if (config_.weight_bits == 0 || config_.weight_bits > 16 ||
      config_.weight_clip <= 0.0) {
    throw std::invalid_argument("PhotonicMvm: bad config");
  }
}

double PhotonicMvm::effective_weight(double w) const noexcept {
  const double clipped =
      std::clamp(w, -config_.weight_clip, config_.weight_clip);
  const double levels = static_cast<double>((1u << config_.weight_bits) - 1);
  // Map [-clip, clip] -> [0, levels], round, map back.
  const double normalized = (clipped + config_.weight_clip) /
                            (2.0 * config_.weight_clip);
  const double code = std::round(normalized * levels);
  return code / levels * 2.0 * config_.weight_clip - config_.weight_clip;
}

std::vector<double> PhotonicMvm::multiply(const Layer& layer,
                                          const std::vector<double>& x) {
  std::vector<double> y(layer.outputs);
  for (std::size_t o = 0; o < layer.outputs; ++o) {
    double acc = layer.biases[o];
    double magnitude = std::fabs(layer.biases[o]);
    const double* row = layer.weights.data() + o * layer.inputs;
    for (std::size_t i = 0; i < layer.inputs; ++i) {
      const double w = effective_weight(row[i]);
      acc += w * x[i];
      magnitude += std::fabs(w * x[i]);
    }
    // Analog noise: relative to the optical signal swing plus a detector
    // floor (both Gaussian).
    y[o] = acc + noise_.next(0.0, config_.relative_noise * magnitude +
                                      config_.additive_noise);
  }
  stats_.mac_operations += layer.inputs * layer.outputs;
  stats_.energy_pj += config_.energy_per_mac_pj *
                      static_cast<double>(layer.inputs * layer.outputs);
  return y;
}

Accelerator::Accelerator(std::unique_ptr<MvmEngine> engine)
    : engine_(std::move(engine)) {
  if (!engine_) {
    throw std::invalid_argument("Accelerator: null engine");
  }
}

void Accelerator::load(MlpNetwork network) {
  network.validate();
  network_ = std::move(network);
  loaded_ = true;
}

std::vector<double> Accelerator::infer(const std::vector<double>& input) {
  if (!loaded_) {
    throw std::logic_error("Accelerator: no network loaded");
  }
  if (input.size() != network_.input_size()) {
    throw std::invalid_argument("Accelerator: input size mismatch");
  }
  std::vector<double> activations = input;
  for (const auto& layer : network_.layers) {
    std::vector<double> next = engine_->multiply(layer, activations);
    for (auto& v : next) v = apply_activation(layer.activation, v);
    activations = std::move(next);
  }
  return activations;
}

}  // namespace neuropuls::accel
