#include "sim/cpu.hpp"

#include <stdexcept>

namespace neuropuls::sim {

CpuModel::CpuModel(EventScheduler& scheduler, StatsRegistry& stats,
                   CpuCosts costs)
    : scheduler_(scheduler), stats_(stats), costs_(costs) {
  if (costs_.frequency_hz <= 0.0) {
    throw std::invalid_argument("CpuModel: frequency must be positive");
  }
}

void CpuModel::spend_cycles(double cycles, const char* what) {
  const auto whole = static_cast<std::uint64_t>(cycles + 0.5);
  cycles_ += whole;
  const double ns = static_cast<double>(whole) / costs_.frequency_hz * 1e9;
  scheduler_.advance(ps_from_ns(ns));
  stats_.count(std::string("cpu.cycles.") + what, whole);
  stats_.add("cpu.time_ns", ns);
}

void CpuModel::execute_ops(std::uint64_t alu_ops) {
  spend_cycles(costs_.cycles_per_alu_op * static_cast<double>(alu_ops), "alu");
}

void CpuModel::hash_sha256(std::size_t bytes) {
  spend_cycles(costs_.cycles_per_sha256_byte * static_cast<double>(bytes),
               "sha256");
}

void CpuModel::hmac_sha256(std::size_t bytes) {
  spend_cycles(costs_.cycles_per_hmac_fixed +
                   costs_.cycles_per_sha256_byte * static_cast<double>(bytes),
               "hmac");
}

void CpuModel::aes(std::size_t bytes) {
  spend_cycles(costs_.cycles_per_aes_byte * static_cast<double>(bytes), "aes");
}

void CpuModel::chacha(std::size_t bytes) {
  spend_cycles(costs_.cycles_per_chacha_byte * static_cast<double>(bytes),
               "chacha");
}

void CpuModel::drbg(std::size_t bytes) {
  spend_cycles(costs_.cycles_per_drbg_byte * static_cast<double>(bytes),
               "drbg");
}

void CpuModel::modexp_2048() {
  spend_cycles(costs_.cycles_modexp_2048, "modexp");
}

void CpuModel::busy_ns(double ns) {
  spend_cycles(ns * 1e-9 * costs_.frequency_hz, "busy");
}

MemoryModel::MemoryModel(EventScheduler& scheduler, StatsRegistry& stats,
                         MemoryCosts costs)
    : scheduler_(scheduler), stats_(stats), costs_(costs) {
  if (costs_.bandwidth_gb_per_s <= 0.0) {
    throw std::invalid_argument("MemoryModel: bandwidth must be positive");
  }
}

void MemoryModel::transfer(std::size_t bytes) {
  const double ns = costs_.latency_ns + static_cast<double>(bytes) /
                                            (costs_.bandwidth_gb_per_s);
  scheduler_.advance(ps_from_ns(ns));
  energy_nj_ +=
      costs_.energy_pj_per_byte * static_cast<double>(bytes) * 1e-3;
  stats_.count("mem.transfers");
  stats_.add("mem.bytes", static_cast<double>(bytes));
  stats_.add("mem.time_ns", ns);
}

}  // namespace neuropuls::sim
