#include "sim/peripherals.hpp"

namespace neuropuls::sim {

PufPeripheral::PufPeripheral(EventScheduler& scheduler, StatsRegistry& stats,
                             puf::Puf& puf, double response_latency_ns,
                             MmioCosts costs)
    : scheduler_(scheduler),
      stats_(stats),
      puf_(puf),
      response_latency_ns_(response_latency_ns),
      costs_(costs) {}

puf::Response PufPeripheral::evaluate(const puf::Challenge& challenge,
                                      CpuModel& cpu) {
  // Write challenge registers: one 32-bit MMIO write per 4 bytes.
  const std::size_t challenge_regs = (challenge.size() + 3) / 4;
  cpu.busy_ns(costs_.register_access_ns *
              static_cast<double>(challenge_regs + 1));  // +1 trigger

  // Device runs concurrently; the core polls the status register. Model:
  // the device finishes after response_latency_ns; the CPU polls at
  // 2x the register access period and sees it on the first poll after.
  const double poll_period = 2.0 * costs_.register_access_ns;
  const double polls = std::max(1.0, response_latency_ns_ / poll_period);
  bool device_done = false;
  scheduler_.schedule_after(ps_from_ns(response_latency_ns_),
                            [&device_done] { device_done = true; });
  cpu.busy_ns(polls * poll_period);
  // The scheduler has advanced past the completion event inside busy_ns.
  (void)device_done;

  const puf::Response response = puf_.evaluate(challenge);

  // Read response registers.
  const std::size_t response_regs = (response.size() + 3) / 4;
  cpu.busy_ns(costs_.register_access_ns * static_cast<double>(response_regs));

  stats_.count("puf.evaluations");
  stats_.add("puf.device_time_ns", response_latency_ns_);
  log_.push_back(puf::Crp{challenge, response});
  return response;
}

AcceleratorPeripheral::AcceleratorPeripheral(
    EventScheduler& scheduler, StatsRegistry& stats,
    accel::SecureAccelerator& accelerator, double mac_time_ps,
    MmioCosts costs)
    : scheduler_(scheduler),
      stats_(stats),
      accelerator_(accelerator),
      mac_time_ps_(mac_time_ps),
      costs_(costs) {}

void AcceleratorPeripheral::charge_crypto_engine(std::size_t bytes) {
  // Hardware AES-CTR + CMAC at 1 byte/ns (8 Gb/s crypto engine).
  scheduler_.advance(ps_from_ns(static_cast<double>(bytes)));
  stats_.add("accel.crypto_bytes", static_cast<double>(bytes));
}

void AcceleratorPeripheral::load_network(const crypto::Bytes& ciphered_network,
                                         CpuModel& cpu, MemoryModel& memory) {
  cpu.busy_ns(costs_.dma_setup_ns);
  memory.transfer(ciphered_network.size());
  charge_crypto_engine(ciphered_network.size());
  accelerator_.load_network(ciphered_network);
  stats_.count("accel.loads");
}

crypto::Bytes AcceleratorPeripheral::execute(const crypto::Bytes& ciphered_input,
                                             CpuModel& cpu,
                                             MemoryModel& memory) {
  cpu.busy_ns(costs_.dma_setup_ns);
  memory.transfer(ciphered_input.size());
  charge_crypto_engine(ciphered_input.size());

  const crypto::Bytes output = accelerator_.execute_network(ciphered_input);

  // Photonic compute time: MACs since the previous call.
  const std::uint64_t macs_now = accelerator_.stats().mac_operations;
  const double compute_ps =
      mac_time_ps_ * static_cast<double>(macs_now - macs_before_);
  macs_before_ = macs_now;
  scheduler_.advance(static_cast<Picoseconds>(compute_ps + 0.5));
  stats_.add("accel.compute_ns", compute_ps / 1e3);

  charge_crypto_engine(output.size());
  memory.transfer(output.size());
  stats_.count("accel.executions");
  return output;
}

}  // namespace neuropuls::sim
