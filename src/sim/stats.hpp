// Simulation statistics registry — the "gem5-provided log facility" role
// of §V: every component logs named counters and accumulators here, and
// the benches print them as experiment tables.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace neuropuls::sim {

class StatsRegistry {
 public:
  /// Adds `delta` to a monotonic counter.
  void count(const std::string& name, std::uint64_t delta = 1);

  /// Accumulates a real-valued quantity (time, energy, bytes...).
  void add(const std::string& name, double value);

  /// Records one sample of a distribution (tracks n/min/max/mean).
  void sample(const std::string& name, double value);

  std::uint64_t counter(const std::string& name) const;
  double total(const std::string& name) const;

  struct Distribution {
    std::uint64_t n = 0;
    double min = 0.0;
    double max = 0.0;
    double sum = 0.0;
    double mean() const { return n == 0 ? 0.0 : sum / static_cast<double>(n); }
  };
  const Distribution& distribution(const std::string& name) const;

  /// Pretty-prints every stat, sorted by name.
  void print(std::ostream& os) const;

  /// Writes every stat as CSV rows `kind,name,value[,n,min,max]` — the
  /// machine-readable export of the §V "log facility" (what a gem5 run
  /// would drop as stats.txt for offline analysis).
  void write_csv(std::ostream& os) const;

  void clear();

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> totals_;
  std::map<std::string, Distribution> distributions_;
};

}  // namespace neuropuls::sim
