// Event-driven simulation kernel (the gem5-style backbone §V calls for).
//
// Time is kept in integer picoseconds so event ordering is exact; ties
// break by insertion order (deterministic replay). Components either
// advance the clock synchronously (`advance`) for transaction-level
// modelling, or schedule callbacks (`schedule_after`) when hardware
// genuinely runs concurrently with the CPU (e.g. the PUF peripheral
// integrating photocurrents while the core polls a status register).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <vector>

namespace neuropuls::sim {

using Picoseconds = std::uint64_t;

inline constexpr Picoseconds kPsPerNs = 1000;

/// ns -> ps conversion for the double-valued analog models.
inline Picoseconds ps_from_ns(double ns) {
  if (ns < 0.0) throw std::invalid_argument("negative duration");
  return static_cast<Picoseconds>(ns * 1e3 + 0.5);
}
inline double ns_from_ps(Picoseconds ps) {
  return static_cast<double>(ps) / 1e3;
}

class EventScheduler {
 public:
  using Callback = std::function<void()>;

  Picoseconds now() const noexcept { return now_; }
  double now_ns() const noexcept { return ns_from_ps(now_); }

  /// Moves the clock forward synchronously, firing any events that fall
  /// inside the window in timestamp order.
  void advance(Picoseconds delta);

  /// Schedules a callback `delay` after the current time.
  void schedule_after(Picoseconds delay, Callback callback);

  /// Schedules at an absolute timestamp (must not be in the past).
  void schedule_at(Picoseconds when, Callback callback);

  /// Runs until the event queue is empty (or `max_events` fired).
  /// Returns the number of events executed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  bool idle() const noexcept { return queue_.empty(); }
  std::size_t pending() const noexcept { return queue_.size(); }

 private:
  struct Event {
    Picoseconds when;
    std::uint64_t sequence;
    Callback callback;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.sequence > b.sequence;
    }
  };

  void fire_due();

  Picoseconds now_ = 0;
  std::uint64_t next_sequence_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace neuropuls::sim
