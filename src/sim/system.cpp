#include "sim/system.hpp"

#include <stdexcept>

#include "core/aka_eke.hpp"
#include "crypto/sha256.hpp"

namespace neuropuls::sim {

namespace {

crypto::Bytes make_device_memory(std::size_t bytes) {
  crypto::ChaChaDrbg rng(crypto::bytes_of("np-sim-firmware"));
  return rng.generate(bytes);
}

}  // namespace

const PhaseReport* ScenarioReport::phase(const std::string& name) const {
  for (const auto& p : phases) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

SecureSystem::SecureSystem(SystemConfig config)
    : config_(config),
      cpu_(scheduler_, stats_, config.cpu),
      memory_(scheduler_, stats_, config.memory),
      photonic_puf_(config.puf, config.wafer_seed, config.device_index),
      verifier_model_(config.puf, config.wafer_seed, config.device_index),
      sram_puf_(puf::SramPufConfig{}, rng::derive_seed(config.wafer_seed,
                                                       config.device_index)),
      puf_peripheral_(scheduler_, stats_, photonic_puf_,
                      photonic_puf_.interrogation_time_s() * 1e9,
                      config.mmio),
      key_manager_(sram_puf_),
      device_memory_(make_device_memory(config.device_memory_bytes)),
      rng_(crypto::bytes_of("np-sim-rng")) {
  if (config_.device_memory_bytes == 0) {
    throw std::invalid_argument("SecureSystem: zero device memory");
  }
}

PhaseReport SecureSystem::finish_phase(const std::string& name, double t0,
                                       double e0, double m0) {
  PhaseReport report;
  report.name = name;
  report.time_ns = scheduler_.now_ns() - t0;
  report.cpu_energy_nj = cpu_.energy_nj() - e0;
  report.memory_energy_nj = memory_.energy_nj() - m0;
  stats_.add("phase." + name + ".time_ns", report.time_ns);
  return report;
}

PhaseReport SecureSystem::boot_keys() {
  const double t0 = scheduler_.now_ns();
  const double e0 = cpu_.energy_nj();
  const double m0 = memory_.energy_nj();

  // Enrollment is a manufacturing-time step; at boot we reproduce. For
  // the simulation we enroll on first boot and derive afterwards.
  const auto record = key_manager_.enroll(rng_);

  // SRAM PUF power-up read: one pass over the array.
  cpu_.busy_ns(2000.0);
  memory_.transfer(2048 / 8);

  // Fuzzy-extractor decode: majority vote (cheap) + BCH syndrome/BM/Chien
  // — dominated by a few thousand GF ops.
  cpu_.execute_ops(60'000);
  // Key derivation: three HKDF expansions.
  cpu_.hmac_sha256(3 * 64);

  auto keys = key_manager_.derive(record);
  if (!keys) {
    throw std::runtime_error("SecureSystem: key derivation failed at boot");
  }
  device_key_ = std::move(keys->encryption_key);

  secure_accel_ = std::make_unique<accel::SecureAccelerator>(
      std::make_unique<accel::PhotonicMvm>(accel::PhotonicMvmConfig{},
                                           rng::derive_seed(config_.wafer_seed,
                                                            77)),
      device_key_.clone());
  accel_peripheral_ = std::make_unique<AcceleratorPeripheral>(
      scheduler_, stats_, *secure_accel_, config_.accel_mac_time_ps,
      config_.mmio);

  return finish_phase("boot_keys", t0, e0, m0);
}

PhaseReport SecureSystem::authenticate() {
  const double t0 = scheduler_.now_ns();
  const double e0 = cpu_.energy_nj();
  const double m0 = memory_.energy_nj();

  // Provision (manufacturing-time, not charged to the session).
  const auto provisioned = core::provision(photonic_puf_, rng_);
  core::AuthDevice device(photonic_puf_, provisioned.device_crp,
                          device_memory_);
  core::AuthVerifier verifier(provisioned.verifier_secret,
                              crypto::Sha256::hash(device_memory_),
                              photonic_puf_.challenge_bytes());

  // Session with explicit device-side cost accounting.
  net::DuplexChannel channel;
  channel.send(net::Direction::kAtoB, verifier.start(1, 0x42));

  const auto request = channel.receive(net::Direction::kAtoB);
  // Device: DRBG for c_{i+1}, one PUF interrogation, memory hash, HMAC.
  cpu_.drbg(photonic_puf_.challenge_bytes());
  puf_peripheral_.evaluate(puf::Challenge(photonic_puf_.challenge_bytes(), 0),
                           cpu_);
  cpu_.hash_sha256(device_memory_.size());
  memory_.transfer(device_memory_.size());
  cpu_.hmac_sha256(photonic_puf_.response_bytes() + 48);

  const auto response = device.handle_request(*request);
  if (!response) throw std::runtime_error("authenticate: device failed");
  channel.send(net::Direction::kBtoA, *response);

  const auto delivered = channel.receive(net::Direction::kBtoA);
  const auto outcome = verifier.process_response(*delivered);
  if (outcome.status != core::AuthStatus::kOk || !outcome.confirm) {
    throw std::runtime_error("authenticate: verifier rejected");
  }
  channel.send(net::Direction::kAtoB, *outcome.confirm);

  const auto confirm = channel.receive(net::Direction::kAtoB);
  cpu_.hmac_sha256(photonic_puf_.challenge_bytes());
  if (device.handle_confirm(*confirm) != core::AuthStatus::kOk) {
    throw std::runtime_error("authenticate: confirm rejected");
  }
  stats_.count("auth.sessions");
  return finish_phase("authenticate", t0, e0, m0);
}

PhaseReport SecureSystem::attest() {
  const double t0 = scheduler_.now_ns();
  const double e0 = cpu_.energy_nj();
  const double m0 = memory_.energy_nj();

  core::AttestationConfig att_config;
  att_config.chunk_size = config_.attestation_chunk;
  core::AttestDevice device(photonic_puf_, device_memory_, att_config);
  core::AttestVerifier verifier(verifier_model_, device_memory_, att_config,
                                core::AttestationCostModel{});

  const auto request = verifier.start(1, 555, rng_);
  // Device cost: hash every chunk (+96 bytes of chained state each) and
  // stream memory once; PUF interrogations overlap the hashing.
  const std::size_t chunks =
      (device_memory_.size() + att_config.chunk_size - 1) /
      att_config.chunk_size;
  memory_.transfer(device_memory_.size());
  cpu_.hash_sha256(device_memory_.size() + chunks * 96);
  cpu_.execute_ops(chunks * 50);

  const auto report = device.handle_request(request);
  if (!report) throw std::runtime_error("attest: device failed");
  const auto outcome =
      verifier.check(*report, verifier.honest_time_ns() *
                                  device.last_time_factor());
  if (!outcome.accepted) throw std::runtime_error("attest: rejected");
  stats_.count("attest.sessions");
  return finish_phase("attest", t0, e0, m0);
}

PhaseReport SecureSystem::establish_session_key() {
  const double t0 = scheduler_.now_ns();
  const double e0 = cpu_.energy_nj();
  const double m0 = memory_.energy_nj();

  // Device-side cost: ephemeral keygen (one modexp) + shared secret (one
  // modexp) + password encryption and two confirmation MACs.
  cpu_.modexp_2048();
  cpu_.modexp_2048();
  cpu_.aes(2 * 256);       // EKE-encrypt/decrypt the public values
  cpu_.hmac_sha256(2 * (16 + 256));
  cpu_.drbg(32 + 16);

  // Functional handshake (CRP response as the password).
  crypto::Bytes secret =  // ctlint:secret CRP response used as EKE password
      photonic_puf_.evaluate_noiseless(puf::Challenge(
          photonic_puf_.challenge_bytes(), 0x42));
  auto outcome = core::run_eke_handshake(
      secret, secret, crypto::DhGroup::modp2048(), 1, config_.wafer_seed);
  crypto::secure_wipe(secret);
  if (!outcome.keys_match) {
    throw std::runtime_error("establish_session_key: handshake failed");
  }
  session_key_ = std::move(outcome.responder.session_key);
  stats_.count("eke.handshakes");
  return finish_phase("session_key", t0, e0, m0);
}

PhaseReport SecureSystem::load_network(const accel::MlpNetwork& network) {
  if (!secure_accel_) {
    throw std::logic_error("SecureSystem: call boot_keys() first");
  }
  const double t0 = scheduler_.now_ns();
  const double e0 = cpu_.energy_nj();
  const double m0 = memory_.energy_nj();
  const auto ciphered = accel::SecureAccelerator::encrypt_network(
      network, device_key_.reveal(), 1);
  accel_peripheral_->load_network(ciphered, cpu_, memory_);
  return finish_phase("load_network", t0, e0, m0);
}

PhaseReport SecureSystem::infer(const std::vector<double>& input,
                                std::size_t repetitions) {
  if (!secure_accel_) {
    throw std::logic_error("SecureSystem: call boot_keys() first");
  }
  const double t0 = scheduler_.now_ns();
  const double e0 = cpu_.energy_nj();
  const double m0 = memory_.energy_nj();
  for (std::size_t i = 0; i < repetitions; ++i) {
    const auto ciphered_input = accel::SecureAccelerator::encrypt_input(
        input, device_key_.reveal(), 1000 + i);
    const auto ciphered_output =
        accel_peripheral_->execute(ciphered_input, cpu_, memory_);
    (void)ciphered_output;
  }
  return finish_phase("infer", t0, e0, m0);
}

ScenarioReport SecureSystem::run_secure_pipeline(
    const accel::MlpNetwork& network, const std::vector<double>& input,
    std::size_t inferences, bool with_eke) {
  ScenarioReport report;
  const double t0 = scheduler_.now_ns();
  report.phases.push_back(boot_keys());
  report.phases.push_back(authenticate());
  if (with_eke) report.phases.push_back(establish_session_key());
  report.phases.push_back(attest());
  report.phases.push_back(load_network(network));
  report.phases.push_back(infer(input, inferences));
  report.total_time_ns = scheduler_.now_ns() - t0;
  for (const auto& phase : report.phases) {
    report.total_energy_nj += phase.cpu_energy_nj + phase.memory_energy_nj;
  }
  return report;
}

ScenarioReport SecureSystem::run_insecure_pipeline(
    const accel::MlpNetwork& network, const std::vector<double>& input,
    std::size_t inferences) {
  ScenarioReport report;
  const double t0 = scheduler_.now_ns();
  const double e0 = cpu_.energy_nj();
  const double m0 = memory_.energy_nj();

  // Plain accelerator: no keys, no auth, no crypto on the data path.
  accel::Accelerator plain(std::make_unique<accel::PhotonicMvm>(
      accel::PhotonicMvmConfig{}, rng::derive_seed(config_.wafer_seed, 78)));
  const auto blob = accel::serialize_network(network);
  cpu_.busy_ns(config_.mmio.dma_setup_ns);
  memory_.transfer(blob.size());
  plain.load(network);

  const std::uint64_t macs_before = plain.stats().mac_operations;
  for (std::size_t i = 0; i < inferences; ++i) {
    cpu_.busy_ns(config_.mmio.dma_setup_ns);
    memory_.transfer(input.size() * 8);
    (void)plain.infer(input);
    memory_.transfer(network.output_size() * 8);
  }
  const double compute_ps =
      config_.accel_mac_time_ps *
      static_cast<double>(plain.stats().mac_operations - macs_before);
  scheduler_.advance(static_cast<Picoseconds>(compute_ps + 0.5));

  PhaseReport phase;
  phase.name = "insecure_pipeline";
  phase.time_ns = scheduler_.now_ns() - t0;
  phase.cpu_energy_nj = cpu_.energy_nj() - e0;
  phase.memory_energy_nj = memory_.energy_nj() - m0;
  report.phases.push_back(phase);
  report.total_time_ns = phase.time_ns;
  report.total_energy_nj = phase.cpu_energy_nj + phase.memory_energy_nj;
  return report;
}

}  // namespace neuropuls::sim
