// Transaction-level CPU and memory models for the §V platform simulator.
//
// The CPU executes abstract operation batches with a per-class cost table
// (cycles) and an energy-per-cycle figure; the memory model charges
// latency + bandwidth per transfer. Defaults approximate a small in-order
// RISC-V core at 500 MHz with software crypto — the class of edge device
// the paper targets — and everything is configurable for sweeps.
#pragma once

#include <cstdint>
#include <string>

#include "sim/scheduler.hpp"
#include "sim/stats.hpp"

namespace neuropuls::sim {

struct CpuCosts {
  double frequency_hz = 500e6;
  double energy_pj_per_cycle = 12.0;
  // Cycle costs per unit of work.
  double cycles_per_alu_op = 1.0;
  double cycles_per_sha256_byte = 14.0;   // software SHA-256
  double cycles_per_aes_byte = 28.0;      // table-free software AES
  double cycles_per_chacha_byte = 5.0;
  double cycles_per_hmac_fixed = 4000.0;  // two extra hash blocks + setup
  double cycles_modexp_2048 = 180e6;      // the EKE heavyweight
  double cycles_per_drbg_byte = 6.0;
};

class CpuModel {
 public:
  CpuModel(EventScheduler& scheduler, StatsRegistry& stats,
           CpuCosts costs = {});

  // Each method advances simulated time and charges energy.
  void execute_ops(std::uint64_t alu_ops);
  void hash_sha256(std::size_t bytes);
  void hmac_sha256(std::size_t bytes);
  void aes(std::size_t bytes);
  void chacha(std::size_t bytes);
  void drbg(std::size_t bytes);
  void modexp_2048();

  /// Raw busy time (e.g. polling loops, fixed firmware sequences).
  void busy_ns(double ns);

  std::uint64_t cycles() const noexcept { return cycles_; }
  double energy_nj() const noexcept {
    return static_cast<double>(cycles_) * costs_.energy_pj_per_cycle * 1e-3;
  }
  const CpuCosts& costs() const noexcept { return costs_; }

 private:
  void spend_cycles(double cycles, const char* what);

  EventScheduler& scheduler_;
  StatsRegistry& stats_;
  CpuCosts costs_;
  std::uint64_t cycles_ = 0;
};

struct MemoryCosts {
  double latency_ns = 60.0;        // DRAM row access
  double bandwidth_gb_per_s = 3.2; // LPDDR-class
  double energy_pj_per_byte = 20.0;
};

class MemoryModel {
 public:
  MemoryModel(EventScheduler& scheduler, StatsRegistry& stats,
              MemoryCosts costs = {});

  /// Charges one transfer of `bytes` (read or write symmetric).
  void transfer(std::size_t bytes);

  double energy_nj() const noexcept { return energy_nj_; }

 private:
  EventScheduler& scheduler_;
  StatsRegistry& stats_;
  MemoryCosts costs_;
  double energy_nj_ = 0.0;
};

}  // namespace neuropuls::sim
