#include "sim/scheduler.hpp"

namespace neuropuls::sim {

void EventScheduler::fire_due() {
  while (!queue_.empty() && queue_.top().when <= now_) {
    // Copy out before pop: the callback may schedule new events.
    Event event = queue_.top();
    queue_.pop();
    event.callback();
  }
}

void EventScheduler::advance(Picoseconds delta) {
  const Picoseconds target = now_ + delta;
  // Fire events inside the window at their own timestamps.
  while (!queue_.empty() && queue_.top().when <= target) {
    Event event = queue_.top();
    queue_.pop();
    if (event.when > now_) now_ = event.when;
    event.callback();
  }
  now_ = target;
}

void EventScheduler::schedule_after(Picoseconds delay, Callback callback) {
  schedule_at(now_ + delay, std::move(callback));
}

void EventScheduler::schedule_at(Picoseconds when, Callback callback) {
  if (when < now_) {
    throw std::invalid_argument("EventScheduler: scheduling in the past");
  }
  queue_.push(Event{when, next_sequence_++, std::move(callback)});
}

std::size_t EventScheduler::run(std::size_t max_events) {
  std::size_t fired = 0;
  while (!queue_.empty() && fired < max_events) {
    Event event = queue_.top();
    queue_.pop();
    now_ = event.when;
    event.callback();
    ++fired;
  }
  return fired;
}

}  // namespace neuropuls::sim
