#include "sim/mmio.hpp"

#include <algorithm>
#include <stdexcept>

namespace neuropuls::sim {

void MmioBus::map(std::uint32_t base, MmioDevice* device) {
  if (device == nullptr) {
    throw std::invalid_argument("MmioBus::map: null device");
  }
  if (base % 4 != 0) {
    throw std::invalid_argument("MmioBus::map: base must be 4-byte aligned");
  }
  const std::uint32_t end = base + device->size();
  for (const auto& [other_base, mapping] : mappings_) {
    const std::uint32_t other_end = other_base + mapping.device->size();
    if (base < other_end && other_base < end) {
      throw std::invalid_argument("MmioBus::map: address range overlap");
    }
  }
  mappings_[base] = Mapping{base, device};
}

MmioBus::Mapping& MmioBus::resolve(std::uint32_t address) {
  if (address % 4 != 0) {
    throw std::invalid_argument("MmioBus: misaligned access");
  }
  // Find the last mapping whose base <= address.
  auto it = mappings_.upper_bound(address);
  if (it == mappings_.begin()) {
    throw std::out_of_range("MmioBus: unmapped address");
  }
  --it;
  Mapping& mapping = it->second;
  if (address >= mapping.base + mapping.device->size()) {
    throw std::out_of_range("MmioBus: unmapped address");
  }
  return mapping;
}

std::uint32_t MmioBus::read32(std::uint32_t address) {
  Mapping& mapping = resolve(address);
  cpu_.busy_ns(access_ns_);
  return mapping.device->read32(address - mapping.base);
}

void MmioBus::write32(std::uint32_t address, std::uint32_t value) {
  Mapping& mapping = resolve(address);
  cpu_.busy_ns(access_ns_);
  mapping.device->write32(address - mapping.base, value);
}

PufMmioDevice::PufMmioDevice(EventScheduler& scheduler, puf::Puf& puf,
                             double response_latency_ns)
    : scheduler_(scheduler),
      puf_(puf),
      response_latency_ns_(response_latency_ns) {
  reset();
}

void PufMmioDevice::reset() {
  challenge_.assign(puf_.challenge_bytes(), 0);
  challenge_written_.assign((puf_.challenge_bytes() + 3) / 4, false);
  response_.clear();
  status_ = 0;
}

void PufMmioDevice::start() {
  const bool complete =
      std::all_of(challenge_written_.begin(), challenge_written_.end(),
                  [](bool b) { return b; });
  if (!complete) {
    status_ = kStatusError;
    return;
  }
  status_ = kStatusBusy;
  // The interrogation completes after the device latency; until then the
  // response window reads as zero and STATUS shows BUSY.
  scheduler_.schedule_after(ps_from_ns(response_latency_ns_), [this] {
    response_ = puf_.evaluate(challenge_);
    status_ = kStatusDone;
  });
}

std::uint32_t PufMmioDevice::read32(std::uint32_t offset) {
  if (offset == kStatus) return status_;
  if (offset == kChalLen) {
    return static_cast<std::uint32_t>(puf_.challenge_bytes());
  }
  if (offset == kRespLen) {
    return static_cast<std::uint32_t>(puf_.response_bytes());
  }
  if (offset >= kRespWindow && offset < kRespWindow + 0x100) {
    if (!(status_ & kStatusDone)) return 0;
    const std::size_t index = offset - kRespWindow;
    std::uint32_t value = 0;
    for (std::size_t b = 0; b < 4; ++b) {
      const std::size_t byte = index + b;
      if (byte < response_.size()) {
        value |= static_cast<std::uint32_t>(response_[byte]) << (24 - 8 * b);
      }
    }
    return value;
  }
  return 0;  // write-only / reserved registers read as zero
}

void PufMmioDevice::write32(std::uint32_t offset, std::uint32_t value) {
  if (offset == kCtrl) {
    if (value & kCtrlReset) reset();
    if (value & kCtrlStart) start();
    return;
  }
  if (offset >= kChalWindow && offset < kChalWindow + 0x100) {
    const std::size_t index = offset - kChalWindow;
    if (index >= challenge_.size() && !challenge_.empty()) return;
    for (std::size_t b = 0; b < 4; ++b) {
      const std::size_t byte = index + b;
      if (byte < challenge_.size()) {
        challenge_[byte] = static_cast<std::uint8_t>(value >> (24 - 8 * b));
      }
    }
    if (!challenge_written_.empty()) {
      challenge_written_[index / 4] = true;
    }
    return;
  }
  // Writes to reserved/read-only space are ignored (hardware-typical).
}

std::optional<puf::Response> mmio_puf_evaluate(MmioBus& bus,
                                               std::uint32_t base,
                                               const puf::Challenge& challenge,
                                               CpuModel& cpu,
                                               EventScheduler& scheduler) {
  bus.write32(base + PufMmioDevice::kCtrl, PufMmioDevice::kCtrlReset);
  // Write the challenge window, 4 bytes per register.
  for (std::size_t i = 0; i < challenge.size(); i += 4) {
    std::uint32_t word = 0;
    for (std::size_t b = 0; b < 4 && i + b < challenge.size(); ++b) {
      word |= static_cast<std::uint32_t>(challenge[i + b]) << (24 - 8 * b);
    }
    bus.write32(base + PufMmioDevice::kChalWindow +
                    static_cast<std::uint32_t>(i),
                word);
  }
  bus.write32(base + PufMmioDevice::kCtrl, PufMmioDevice::kCtrlStart);

  // Poll STATUS until DONE or ERROR; each poll costs an MMIO access and
  // the scheduler advances (the completion event fires mid-poll-loop).
  for (int polls = 0; polls < 1'000'000; ++polls) {
    const std::uint32_t status = bus.read32(base + PufMmioDevice::kStatus);
    if (status & PufMmioDevice::kStatusError) return std::nullopt;
    if (status & PufMmioDevice::kStatusDone) break;
    cpu.busy_ns(10.0);
    scheduler.advance(0);  // fire any due events
  }

  const std::uint32_t resp_len = bus.read32(base + PufMmioDevice::kRespLen);
  puf::Response response(resp_len, 0);
  for (std::uint32_t i = 0; i < resp_len; i += 4) {
    const std::uint32_t word =
        bus.read32(base + PufMmioDevice::kRespWindow + i);
    for (std::uint32_t b = 0; b < 4 && i + b < resp_len; ++b) {
      response[i + b] = static_cast<std::uint8_t>(word >> (24 - 8 * b));
    }
  }
  return response;
}

}  // namespace neuropuls::sim
