// Memory-mapped peripherals: the PUF and the accelerator, as seen by the
// RISC-V core (§V: "define a peripheral module connected to the RISC-V
// microprocessor, providing the essential infrastructure for the delivery
// of the programming API").
//
// Each peripheral exposes a register-level API (submit / poll / read) and
// charges realistic MMIO + device latencies through the scheduler. The
// PUF peripheral additionally logs every CRP it serves into the stats
// registry feed so quality metrics can be computed offline, mirroring the
// gem5 logging workflow §V sketches.
#pragma once

#include <optional>
#include <vector>

#include "accel/secure_api.hpp"
#include "puf/crp_db.hpp"
#include "sim/cpu.hpp"

namespace neuropuls::sim {

struct MmioCosts {
  double register_access_ns = 20.0;  // one uncached MMIO read/write
  double dma_setup_ns = 200.0;
};

/// The PUF as a memory-mapped device.
class PufPeripheral {
 public:
  /// `response_latency_ns` is the device-side interrogation time (for the
  /// photonic PUF: PhotonicPuf::interrogation_time_s * 1e9).
  PufPeripheral(EventScheduler& scheduler, StatsRegistry& stats,
                puf::Puf& puf, double response_latency_ns,
                MmioCosts costs = {});

  /// Firmware-level operation: write the challenge registers, trigger,
  /// poll until ready, read the response registers. Advances time
  /// accordingly and returns the response.
  puf::Response evaluate(const puf::Challenge& challenge, CpuModel& cpu);

  /// CRPs served so far (the gem5-style log).
  const std::vector<puf::Crp>& log() const noexcept { return log_; }

  double response_latency_ns() const noexcept { return response_latency_ns_; }

 private:
  EventScheduler& scheduler_;
  StatsRegistry& stats_;
  puf::Puf& puf_;
  double response_latency_ns_;
  MmioCosts costs_;
  std::vector<puf::Crp> log_;
};

/// The secure accelerator (Table I API) as a DMA peripheral.
class AcceleratorPeripheral {
 public:
  /// `mac_time_ps` is the photonic core's time per MAC in picoseconds
  /// (sub-ps values allowed via double).
  AcceleratorPeripheral(EventScheduler& scheduler, StatsRegistry& stats,
                        accel::SecureAccelerator& accelerator,
                        double mac_time_ps = 0.02, MmioCosts costs = {});

  /// DMA the ciphered network in and run hardware load (decrypt+verify
  /// happen at wire speed in the crypto engine).
  void load_network(const crypto::Bytes& ciphered_network, CpuModel& cpu,
                    MemoryModel& memory);

  /// DMA in, execute, DMA the ciphered output back.
  crypto::Bytes execute(const crypto::Bytes& ciphered_input, CpuModel& cpu,
                        MemoryModel& memory);

 private:
  void charge_crypto_engine(std::size_t bytes);

  EventScheduler& scheduler_;
  StatsRegistry& stats_;
  accel::SecureAccelerator& accelerator_;
  double mac_time_ps_;
  MmioCosts costs_;
  std::uint64_t macs_before_ = 0;
};

}  // namespace neuropuls::sim
