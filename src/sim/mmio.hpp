// Register-level MMIO bus and the PUF device's register map — the
// "peripheral module connected to the RISC-V microprocessor, providing
// the essential infrastructure for the delivery of the programming API"
// of §V, one abstraction level below `PufPeripheral`'s firmware helper.
//
// PUF device register map (32-bit registers, byte offsets):
//   0x000  CTRL     W   bit0 START (begin interrogation), bit1 RESET
//   0x004  STATUS   R   bit0 BUSY, bit1 DONE, bit2 ERROR
//   0x008  CHAL_LEN R   challenge length in bytes
//   0x00C  RESP_LEN R   response length in bytes
//   0x100+ CHAL[i]  W   challenge window (4 bytes per register, BE)
//   0x200+ RESP[i]  R   response window (valid while DONE)
//
// Writing START with a partially written challenge raises ERROR. Reading
// RESP while BUSY returns zero. The device's interrogation latency is
// modelled through the event scheduler, so a polling driver observes a
// realistic BUSY period.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "puf/puf.hpp"
#include "sim/cpu.hpp"

namespace neuropuls::sim {

/// A device mapped on the MMIO bus.
class MmioDevice {
 public:
  virtual ~MmioDevice() = default;
  virtual std::uint32_t read32(std::uint32_t offset) = 0;
  virtual void write32(std::uint32_t offset, std::uint32_t value) = 0;
  virtual std::uint32_t size() const = 0;
};

/// Address-dispatching bus; charges CPU time per access.
class MmioBus {
 public:
  MmioBus(CpuModel& cpu, double access_ns = 20.0)
      : cpu_(cpu), access_ns_(access_ns) {}

  /// Maps `device` at [base, base + device->size()). Throws
  /// std::invalid_argument on overlap or misalignment.
  void map(std::uint32_t base, MmioDevice* device);

  /// Aligned 32-bit access; throws std::out_of_range for unmapped
  /// addresses, std::invalid_argument for misaligned ones.
  std::uint32_t read32(std::uint32_t address);
  void write32(std::uint32_t address, std::uint32_t value);

 private:
  struct Mapping {
    std::uint32_t base;
    MmioDevice* device;
  };
  Mapping& resolve(std::uint32_t address);

  CpuModel& cpu_;
  double access_ns_;
  std::map<std::uint32_t, Mapping> mappings_;  // keyed by base
};

/// The PUF behind the register map above.
class PufMmioDevice final : public MmioDevice {
 public:
  static constexpr std::uint32_t kCtrl = 0x000;
  static constexpr std::uint32_t kStatus = 0x004;
  static constexpr std::uint32_t kChalLen = 0x008;
  static constexpr std::uint32_t kRespLen = 0x00C;
  static constexpr std::uint32_t kChalWindow = 0x100;
  static constexpr std::uint32_t kRespWindow = 0x200;

  static constexpr std::uint32_t kCtrlStart = 1u << 0;
  static constexpr std::uint32_t kCtrlReset = 1u << 1;
  static constexpr std::uint32_t kStatusBusy = 1u << 0;
  static constexpr std::uint32_t kStatusDone = 1u << 1;
  static constexpr std::uint32_t kStatusError = 1u << 2;

  PufMmioDevice(EventScheduler& scheduler, puf::Puf& puf,
                double response_latency_ns);

  std::uint32_t read32(std::uint32_t offset) override;
  void write32(std::uint32_t offset, std::uint32_t value) override;
  std::uint32_t size() const override { return 0x300; }

 private:
  void start();
  void reset();

  EventScheduler& scheduler_;
  puf::Puf& puf_;
  double response_latency_ns_;
  std::vector<std::uint8_t> challenge_;
  std::vector<bool> challenge_written_;
  puf::Response response_;
  std::uint32_t status_ = 0;
};

/// Firmware-style driver: writes the challenge, starts, polls, reads the
/// response. Returns std::nullopt if the device reports ERROR.
std::optional<puf::Response> mmio_puf_evaluate(MmioBus& bus,
                                               std::uint32_t base,
                                               const puf::Challenge& challenge,
                                               CpuModel& cpu,
                                               EventScheduler& scheduler);

}  // namespace neuropuls::sim
