// Full-system scenario runner (§V, experiment E10).
//
// Wires the simulated platform together — CPU, DRAM, photonic-PUF
// peripheral, SRAM PUF, key manager, secure accelerator — and executes
// the security-service pipeline end to end with cycle/energy accounting:
//
//   boot_keys     weak PUF read -> fuzzy extractor -> device keys
//   authenticate  one Fig. 4 mutual-authentication session
//   attest        one §III-B attestation pass over device memory
//   load_network  Table I load_network (DMA + hardware crypto)
//   infer         Table I execute_network x repetitions
//
// `run_secure_pipeline` strings them together; `run_insecure_pipeline`
// is the baseline (plain load + inference, no security services), so the
// bench can report the overhead of each layer — the system-level impact
// §V says the simulator must predict.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "accel/secure_api.hpp"
#include "common/secret.hpp"
#include "core/attestation.hpp"
#include "core/key_manager.hpp"
#include "core/mutual_auth.hpp"
#include "puf/photonic_puf.hpp"
#include "puf/sram_puf.hpp"
#include "sim/peripherals.hpp"

namespace neuropuls::sim {

struct SystemConfig {
  puf::PhotonicPufConfig puf = puf::small_photonic_config();
  std::uint64_t wafer_seed = 2024;
  std::uint64_t device_index = 0;
  std::size_t device_memory_bytes = 64 * 1024;
  std::size_t attestation_chunk = 1024;
  CpuCosts cpu{};
  MemoryCosts memory{};
  MmioCosts mmio{};
  double accel_mac_time_ps = 0.02;
};

struct PhaseReport {
  std::string name;
  double time_ns = 0.0;
  double cpu_energy_nj = 0.0;
  double memory_energy_nj = 0.0;
};

struct ScenarioReport {
  std::vector<PhaseReport> phases;
  double total_time_ns = 0.0;
  double total_energy_nj = 0.0;

  const PhaseReport* phase(const std::string& name) const;
};

class SecureSystem {
 public:
  explicit SecureSystem(SystemConfig config);

  // Individual phases (usable a la carte).
  PhaseReport boot_keys();
  PhaseReport authenticate();
  PhaseReport attest();
  /// EKE AKA session-key establishment (§IV) — the expensive option:
  /// two 2048-bit modexps on the device plus the handshake MACs.
  PhaseReport establish_session_key();
  PhaseReport load_network(const accel::MlpNetwork& network);
  PhaseReport infer(const std::vector<double>& input, std::size_t repetitions);

  /// Full secure pipeline: boot -> auth -> attest -> load -> infer xN;
  /// with `with_eke` also establishes a forward-secret session key.
  ScenarioReport run_secure_pipeline(const accel::MlpNetwork& network,
                                     const std::vector<double>& input,
                                     std::size_t inferences,
                                     bool with_eke = false);

  /// Baseline without any security service (plain network load + infer).
  ScenarioReport run_insecure_pipeline(const accel::MlpNetwork& network,
                                       const std::vector<double>& input,
                                       std::size_t inferences);

  const StatsRegistry& stats() const noexcept { return stats_; }
  double now_ns() const noexcept { return scheduler_.now_ns(); }

 private:
  PhaseReport finish_phase(const std::string& name, double t0, double e0,
                           double m0);

  SystemConfig config_;
  EventScheduler scheduler_;
  StatsRegistry stats_;
  CpuModel cpu_;
  MemoryModel memory_;

  // Device hardware.
  puf::PhotonicPuf photonic_puf_;
  puf::PhotonicPuf verifier_model_;  // the verifier's clone
  puf::SramPuf sram_puf_;
  PufPeripheral puf_peripheral_;
  core::KeyManager key_manager_;
  std::unique_ptr<accel::SecureAccelerator> secure_accel_;
  std::unique_ptr<AcceleratorPeripheral> accel_peripheral_;
  common::SecretBytes device_key_;
  common::SecretBytes session_key_;
  crypto::Bytes device_memory_;
  crypto::ChaChaDrbg rng_;
};

}  // namespace neuropuls::sim
