#include "sim/stats.hpp"

#include <algorithm>
#include <iomanip>

namespace neuropuls::sim {

void StatsRegistry::count(const std::string& name, std::uint64_t delta) {
  counters_[name] += delta;
}

void StatsRegistry::add(const std::string& name, double value) {
  totals_[name] += value;
}

void StatsRegistry::sample(const std::string& name, double value) {
  auto& d = distributions_[name];
  if (d.n == 0) {
    d.min = value;
    d.max = value;
  } else {
    d.min = std::min(d.min, value);
    d.max = std::max(d.max, value);
  }
  d.sum += value;
  ++d.n;
}

std::uint64_t StatsRegistry::counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double StatsRegistry::total(const std::string& name) const {
  const auto it = totals_.find(name);
  return it == totals_.end() ? 0.0 : it->second;
}

const StatsRegistry::Distribution& StatsRegistry::distribution(
    const std::string& name) const {
  static const Distribution kEmpty{};
  const auto it = distributions_.find(name);
  return it == distributions_.end() ? kEmpty : it->second;
}

void StatsRegistry::print(std::ostream& os) const {
  os << std::left;
  for (const auto& [name, value] : counters_) {
    os << "  " << std::setw(40) << name << value << '\n';
  }
  os << std::fixed << std::setprecision(3);
  for (const auto& [name, value] : totals_) {
    os << "  " << std::setw(40) << name << value << '\n';
  }
  for (const auto& [name, d] : distributions_) {
    os << "  " << std::setw(40) << name << "n=" << d.n
       << " mean=" << d.mean() << " min=" << d.min << " max=" << d.max
       << '\n';
  }
}

void StatsRegistry::write_csv(std::ostream& os) const {
  os << "kind,name,value,n,min,max\n";
  for (const auto& [name, value] : counters_) {
    os << "counter," << name << ',' << value << ",,,\n";
  }
  os << std::setprecision(12);
  for (const auto& [name, value] : totals_) {
    os << "total," << name << ',' << value << ",,,\n";
  }
  for (const auto& [name, d] : distributions_) {
    os << "distribution," << name << ',' << d.mean() << ',' << d.n << ','
       << d.min << ',' << d.max << '\n';
  }
}

void StatsRegistry::clear() {
  counters_.clear();
  totals_.clear();
  distributions_.clear();
}

}  // namespace neuropuls::sim
