// Code-offset secure sketch and fuzzy extractor (Dodis et al.).
//
// This is the bridge between a noisy weak-PUF response and a stable
// cryptographic key — the "post-processed responses" Fig. 1/Fig. 2 hand to
// the software layer, and the source of the secret keys that Table I's
// hardware encryption never exposes to software.
//
//   Gen(w):  pick a random codeword c;   helper  P = w XOR c;
//            key = SHA256(c || salt)     (strong extractor step)
//   Rep(w'): c' = Decode(w' XOR P);      key = SHA256(c' || salt)
//
// The helper data P leaks at most n - k bits about w, so the extracted key
// retains full entropy as long as the response has enough min-entropy —
// which the metrics layer (`src/metrics`) measures and the filtering layer
// (`src/filtering`) enforces.
#pragma once

#include <optional>

#include "crypto/bytes.hpp"
#include "crypto/chacha20.hpp"
#include "ecc/repetition.hpp"

namespace neuropuls::ecc {

/// Public helper data produced at enrollment. Safe to store or transmit.
struct HelperData {
  BitVec sketch;        // w XOR c, codeword_bits long
  crypto::Bytes salt;   // extractor salt (16 bytes)
};

struct ExtractionResult {
  crypto::Bytes key;    // derived key
  HelperData helper;
};

/// Persists helper data (it is public: NVM, a server, a QR code — all
/// fine). Format: u32 sketch-bit-count || packed sketch || u32 salt-len
/// || salt, all big-endian.
crypto::Bytes serialize_helper(const HelperData& helper);

/// Parses persisted helper data. Throws std::runtime_error on malformed
/// input (truncation, trailing bytes, implausible sizes).
HelperData deserialize_helper(crypto::ByteView blob);

class FuzzyExtractor {
 public:
  /// `code` fixes the response length (code.codeword_bits()) and the
  /// correctable noise; `key_bytes` is the output key size.
  FuzzyExtractor(ConcatenatedCode code, std::size_t key_bytes = 16);

  std::size_t response_bits() const noexcept { return code_.codeword_bits(); }
  std::size_t key_bytes() const noexcept { return key_bytes_; }

  /// Enrollment: derives a key and helper data from the reference
  /// response `w`. Randomness for the codeword comes from `rng`.
  /// Throws std::invalid_argument on a wrong-size response.
  ExtractionResult generate(const BitVec& w, crypto::ChaChaDrbg& rng) const;

  /// Reconstruction: recovers the enrolled key from a noisy re-reading
  /// `w_prime`, or std::nullopt when the noise exceeds the code's radius
  /// — or when the helper data is corrupted (wrong sketch length, or
  /// bit-flips that push the decode off the enrolled codeword: the result
  /// is then a *different* key or a clean rejection, never the enrolled
  /// key and never UB; regression-tested in tests/ecc). A wrong-size
  /// `w_prime` is a caller bug and still throws std::invalid_argument.
  std::optional<crypto::Bytes> reproduce(const BitVec& w_prime,
                                         const HelperData& helper) const;

  const ConcatenatedCode& code() const noexcept { return code_; }

 private:
  crypto::Bytes derive_key(const BitVec& codeword,
                           crypto::ByteView salt) const;

  ConcatenatedCode code_;
  std::size_t key_bytes_;
};

/// Builds the default PUF key-generation pipeline for a response of at
/// least `min_response_bits`: BCH(127, k, t=10) outer, repetition-5 inner
/// — corrects ~11% raw BER at typical weak-PUF noise shapes.
FuzzyExtractor make_default_extractor(std::size_t key_bytes = 16);

}  // namespace neuropuls::ecc
