#include "ecc/bch.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace neuropuls::ecc {

namespace {

// Multiplies two GF(2) polynomials (LSB-first bit vectors).
BitVec poly_mul_gf2(const BitVec& a, const BitVec& b) {
  BitVec out(a.size() + b.size() - 1, 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!a[i]) continue;
    for (std::size_t j = 0; j < b.size(); ++j) {
      out[i + j] ^= b[j];
    }
  }
  return out;
}

void trim(BitVec& p) {
  while (p.size() > 1 && p.back() == 0) p.pop_back();
}

}  // namespace

BchCode::BchCode(unsigned m, unsigned t) : field_(m), t_(t) {
  n_ = field_.n();
  if (t == 0 || 2 * t >= n_) {
    throw std::invalid_argument("BchCode: t out of range");
  }

  // Generator = lcm of the minimal polynomials of alpha^1 .. alpha^{2t}.
  // Walk the cyclotomic cosets of exponents 1..2t; each coset contributes
  // its minimal polynomial prod (x - alpha^j) once.
  std::vector<bool> covered(n_, false);
  BitVec gen = {1};  // polynomial "1"
  for (std::uint32_t b = 1; b <= 2 * t; ++b) {
    if (covered[b]) continue;
    // Collect the coset {b, 2b, 4b, ...} mod n.
    std::vector<std::uint32_t> coset;
    std::uint32_t e = b;
    do {
      covered[e] = true;
      coset.push_back(e);
      e = static_cast<std::uint32_t>((2ull * e) % n_);
    } while (e != b);

    // Minimal polynomial: product over the coset of (x + alpha^j),
    // computed over GF(2^m); the result has GF(2) coefficients.
    std::vector<std::uint32_t> min_poly = {1};
    for (std::uint32_t j : coset) {
      const std::uint32_t root = field_.alpha_pow(j);
      std::vector<std::uint32_t> next(min_poly.size() + 1, 0);
      for (std::size_t d = 0; d < min_poly.size(); ++d) {
        next[d + 1] ^= min_poly[d];                 // x * term
        next[d] ^= field_.mul(min_poly[d], root);   // root * term
      }
      min_poly = std::move(next);
    }
    BitVec min_poly_bits(min_poly.size());
    for (std::size_t d = 0; d < min_poly.size(); ++d) {
      // Coefficients must collapse to {0,1}; anything else is a logic bug.
      min_poly_bits[d] = static_cast<std::uint8_t>(min_poly[d] & 1);
    }
    gen = poly_mul_gf2(gen, min_poly_bits);
    trim(gen);
  }
  generator_ = gen;

  const std::size_t deg_g = generator_.size() - 1;
  if (deg_g >= n_) {
    throw std::invalid_argument("BchCode: no message bits at this (m, t)");
  }
  k_ = n_ - deg_g;
}

BitVec BchCode::encode(const BitVec& message) const {
  if (message.size() != k_) {
    throw std::invalid_argument("BchCode::encode: message must be k bits");
  }
  const std::size_t deg_g = n_ - k_;

  // Systematic: codeword = x^{deg_g} * m(x) + (x^{deg_g} * m(x) mod g(x)).
  BitVec work(n_, 0);
  for (std::size_t i = 0; i < k_; ++i) work[deg_g + i] = message[i] & 1;

  // Long division remainder.
  BitVec rem = work;
  for (std::size_t i = n_; i-- > deg_g;) {
    if (!rem[i]) continue;
    const std::size_t shift = i - deg_g;
    for (std::size_t j = 0; j < generator_.size(); ++j) {
      rem[shift + j] ^= generator_[j];
    }
  }

  BitVec codeword = work;
  for (std::size_t i = 0; i < deg_g; ++i) codeword[i] = rem[i];
  return codeword;
}

BitVec BchCode::extract_message(const BitVec& codeword) const {
  if (codeword.size() != n_) {
    throw std::invalid_argument("BchCode::extract_message: wrong length");
  }
  const std::size_t deg_g = n_ - k_;
  return BitVec(codeword.begin() + static_cast<std::ptrdiff_t>(deg_g),
                codeword.end());
}

std::optional<BitVec> BchCode::decode(const BitVec& received) const {
  if (received.size() != n_) {
    throw std::invalid_argument("BchCode::decode: wrong length");
  }

  // Syndromes S_i = r(alpha^i), i = 1..2t.
  std::vector<std::uint32_t> syndrome(2 * t_ + 1, 0);
  bool any_nonzero = false;
  for (unsigned i = 1; i <= 2 * t_; ++i) {
    std::uint32_t s = 0;
    for (std::size_t j = 0; j < n_; ++j) {
      if (received[j]) {
        s ^= field_.alpha_pow(static_cast<std::uint32_t>(i * j));
      }
    }
    syndrome[i] = s;
    any_nonzero |= (s != 0);
  }
  if (!any_nonzero) return received;

  // Berlekamp–Massey: find the error-locator polynomial Lambda(x).
  std::vector<std::uint32_t> lambda = {1};
  std::vector<std::uint32_t> prev_lambda = {1};
  std::uint32_t prev_discrepancy = 1;
  unsigned l = 0;          // current LFSR length
  unsigned shift = 1;      // x-power gap since the last length change

  for (unsigned r = 1; r <= 2 * t_; ++r) {
    // Discrepancy d = S_r + sum lambda_i * S_{r-i}.
    std::uint32_t d = syndrome[r];
    for (unsigned i = 1; i < lambda.size() && i <= l; ++i) {
      d ^= field_.mul(lambda[i], syndrome[r - i]);
    }
    if (d == 0) {
      ++shift;
      continue;
    }
    // lambda' = lambda - (d / prev_d) * x^shift * prev_lambda
    const std::uint32_t scale = field_.div(d, prev_discrepancy);
    std::vector<std::uint32_t> candidate = lambda;
    if (candidate.size() < prev_lambda.size() + shift) {
      candidate.resize(prev_lambda.size() + shift, 0);
    }
    for (std::size_t i = 0; i < prev_lambda.size(); ++i) {
      candidate[i + shift] ^= field_.mul(scale, prev_lambda[i]);
    }
    if (2 * l <= r - 1) {
      prev_lambda = lambda;
      prev_discrepancy = d;
      l = r - l;
      shift = 1;
    } else {
      ++shift;
    }
    lambda = std::move(candidate);
  }

  // Degree check: more than t errors is uncorrectable.
  while (lambda.size() > 1 && lambda.back() == 0) lambda.pop_back();
  const std::size_t deg_lambda = lambda.size() - 1;
  if (deg_lambda > t_) return std::nullopt;

  // Chien search: position j is in error iff Lambda(alpha^{-j}) == 0.
  BitVec corrected = received;
  std::size_t roots = 0;
  for (std::size_t j = 0; j < n_; ++j) {
    std::uint32_t value = 0;
    for (std::size_t i = 0; i < lambda.size(); ++i) {
      if (lambda[i] == 0) continue;
      const std::uint64_t exponent =
          (static_cast<std::uint64_t>(field_.log(lambda[i])) +
           static_cast<std::uint64_t>(i) * ((n_ - j) % n_)) %
          n_;
      value ^= field_.alpha_pow(static_cast<std::uint32_t>(exponent));
    }
    if (value == 0) {
      corrected[j] ^= 1;
      ++roots;
    }
  }
  if (roots != deg_lambda) return std::nullopt;

  // Re-check the syndromes of the corrected word; a decoder that lands on
  // a non-codeword (possible beyond radius t) must report failure.
  for (unsigned i = 1; i <= 2 * t_; ++i) {
    std::uint32_t s = 0;
    for (std::size_t j = 0; j < n_; ++j) {
      if (corrected[j]) {
        s ^= field_.alpha_pow(static_cast<std::uint32_t>(i * j));
      }
    }
    if (s != 0) return std::nullopt;
  }
  return corrected;
}

}  // namespace neuropuls::ecc
