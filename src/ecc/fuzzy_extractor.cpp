#include "ecc/fuzzy_extractor.hpp"

#include <stdexcept>

#include "crypto/sha256.hpp"

namespace neuropuls::ecc {

FuzzyExtractor::FuzzyExtractor(ConcatenatedCode code, std::size_t key_bytes)
    : code_(std::move(code)), key_bytes_(key_bytes) {
  if (key_bytes_ == 0 || key_bytes_ > crypto::Sha256::kDigestSize) {
    throw std::invalid_argument(
        "FuzzyExtractor: key size must be in [1, 32] bytes");
  }
}

crypto::Bytes FuzzyExtractor::derive_key(const BitVec& codeword,
                                         crypto::ByteView salt) const {
  crypto::Sha256 h;
  h.update(crypto::bytes_of("np-fe-v1"));
  h.update(salt);
  h.update(pack_bits(codeword));
  const auto digest = h.finalize();
  return crypto::Bytes(digest.begin(),
                       digest.begin() + static_cast<std::ptrdiff_t>(key_bytes_));
}

ExtractionResult FuzzyExtractor::generate(const BitVec& w,
                                          crypto::ChaChaDrbg& rng) const {
  if (w.size() != code_.codeword_bits()) {
    throw std::invalid_argument("FuzzyExtractor::generate: wrong length");
  }

  // Random message -> random codeword.
  const crypto::Bytes msg_bytes = rng.generate((code_.message_bits() + 7) / 8);
  const BitVec message = unpack_bits(msg_bytes, code_.message_bits());
  const BitVec codeword = code_.encode(message);

  ExtractionResult out;
  out.helper.sketch = xor_bits(w, codeword);
  out.helper.salt = rng.generate(16);
  // Key from the *response* (not the codeword): given the public sketch
  // the two are equivalent to an attacker, but deriving from w keeps the
  // key device-bound even if the enrollment RNG stream were reused.
  out.key = derive_key(w, out.helper.salt);
  return out;
}

std::optional<crypto::Bytes> FuzzyExtractor::reproduce(
    const BitVec& w_prime, const HelperData& helper) const {
  if (w_prime.size() != code_.codeword_bits()) {
    // Wrong measurement length is a caller bug — loud failure.
    throw std::invalid_argument("FuzzyExtractor::reproduce: wrong length");
  }
  if (helper.sketch.size() != code_.codeword_bits()) {
    // Wrong *helper* length is corrupted/truncated public storage, an
    // operational fault the degradation layer must survive: reject
    // cleanly, exactly like an uncorrectable reading.
    return std::nullopt;
  }
  const BitVec noisy_codeword = xor_bits(w_prime, helper.sketch);
  const auto codeword = code_.decode_codeword(noisy_codeword);
  if (!codeword) return std::nullopt;
  // Reconstruct the enrolled response: w = codeword XOR sketch.
  const BitVec w_recovered = xor_bits(*codeword, helper.sketch);
  return derive_key(w_recovered, helper.salt);
}

crypto::Bytes serialize_helper(const HelperData& helper) {
  crypto::Bytes out;
  crypto::append_u32_be(out, static_cast<std::uint32_t>(helper.sketch.size()));
  const crypto::Bytes packed = pack_bits(helper.sketch);
  out.insert(out.end(), packed.begin(), packed.end());
  crypto::append_u32_be(out, static_cast<std::uint32_t>(helper.salt.size()));
  out.insert(out.end(), helper.salt.begin(), helper.salt.end());
  return out;
}

HelperData deserialize_helper(crypto::ByteView blob) {
  if (blob.size() < 8) {
    throw std::runtime_error("deserialize_helper: truncated");
  }
  const std::uint32_t sketch_bits = crypto::get_u32_be(blob.first(4));
  if (sketch_bits == 0 || sketch_bits > (1u << 24)) {
    throw std::runtime_error("deserialize_helper: implausible sketch size");
  }
  const std::size_t sketch_bytes = (sketch_bits + 7) / 8;
  if (blob.size() < 4 + sketch_bytes + 4) {
    throw std::runtime_error("deserialize_helper: truncated sketch");
  }
  HelperData helper;
  helper.sketch = unpack_bits(blob.subspan(4, sketch_bytes), sketch_bits);
  const std::uint32_t salt_len =
      crypto::get_u32_be(blob.subspan(4 + sketch_bytes, 4));
  if (blob.size() != 4 + sketch_bytes + 4 + salt_len) {
    throw std::runtime_error("deserialize_helper: length mismatch");
  }
  helper.salt.assign(blob.begin() + 4 + static_cast<std::ptrdiff_t>(sketch_bytes) + 4,
                     blob.end());
  return helper;
}

FuzzyExtractor make_default_extractor(std::size_t key_bytes) {
  // BCH(127, k>=64, t=10) outer; repetition-5 inner: 635-bit responses.
  return FuzzyExtractor(
      ConcatenatedCode(BchCode(7, 10), RepetitionCode(5)), key_bytes);
}

}  // namespace neuropuls::ecc
