#include "ecc/repetition.hpp"

#include <stdexcept>

namespace neuropuls::ecc {

RepetitionCode::RepetitionCode(unsigned r) : r_(r) {
  if (r == 0 || r % 2 == 0) {
    throw std::invalid_argument("RepetitionCode: r must be odd and >= 1");
  }
}

BitVec RepetitionCode::encode(const BitVec& message) const {
  BitVec out;
  out.reserve(message.size() * r_);
  for (std::uint8_t bit : message) {
    out.insert(out.end(), r_, static_cast<std::uint8_t>(bit & 1));
  }
  return out;
}

BitVec RepetitionCode::decode(const BitVec& received) const {
  if (received.size() % r_ != 0) {
    throw std::invalid_argument(
        "RepetitionCode::decode: length not a multiple of r");
  }
  BitVec out(received.size() / r_);
  for (std::size_t i = 0; i < out.size(); ++i) {
    unsigned ones = 0;
    for (unsigned j = 0; j < r_; ++j) ones += received[i * r_ + j] & 1;
    out[i] = ones > r_ / 2 ? 1 : 0;
  }
  return out;
}

ConcatenatedCode::ConcatenatedCode(BchCode outer, RepetitionCode inner)
    : outer_(std::move(outer)), inner_(inner) {}

BitVec ConcatenatedCode::encode(const BitVec& message) const {
  return inner_.encode(outer_.encode(message));
}

std::optional<BitVec> ConcatenatedCode::decode_codeword(
    const BitVec& received) const {
  if (received.size() != codeword_bits()) {
    throw std::invalid_argument("ConcatenatedCode: wrong received length");
  }
  const BitVec voted = inner_.decode(received);
  const auto corrected = outer_.decode(voted);
  if (!corrected) return std::nullopt;
  return inner_.encode(*corrected);
}

std::optional<BitVec> ConcatenatedCode::decode(const BitVec& received) const {
  if (received.size() != codeword_bits()) {
    throw std::invalid_argument("ConcatenatedCode: wrong received length");
  }
  const BitVec voted = inner_.decode(received);
  const auto corrected = outer_.decode(voted);
  if (!corrected) return std::nullopt;
  return outer_.extract_message(*corrected);
}

}  // namespace neuropuls::ecc
