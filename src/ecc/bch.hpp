// Binary BCH codes: systematic encoder and Berlekamp–Massey decoder.
//
// Section II-B of the paper: weak-PUF responses "are then corrected by
// various means, for example, using error correction codes (ECCs) to
// account for potential deviations". BCH + repetition concatenation is the
// standard construction for PUF key generation (it is what the code-offset
// fuzzy extractor in `fuzzy_extractor.hpp` wraps), and its correction
// radius determines the key-failure-rate cliff measured by
// `bench/bench_fuzzy_extractor`.
//
// Codewords are LSB-first bit vectors: index i holds the coefficient of
// x^i. Encoding is systematic with the message in the high-order
// coefficients.
#pragma once

#include <cstdint>
#include <optional>

#include "ecc/bitvec.hpp"
#include "ecc/gf2m.hpp"

namespace neuropuls::ecc {

class BchCode {
 public:
  /// Builds the primitive BCH code of length n = 2^m - 1 correcting up to
  /// `t` errors. The dimension k = n - deg(g) follows from the generator
  /// polynomial. Throws std::invalid_argument when the parameters leave no
  /// message bits.
  BchCode(unsigned m, unsigned t);

  std::size_t n() const noexcept { return n_; }
  std::size_t k() const noexcept { return k_; }
  unsigned t() const noexcept { return t_; }

  /// Encodes `message` (k bits) into an n-bit systematic codeword.
  /// Throws std::invalid_argument on a wrong-size message.
  BitVec encode(const BitVec& message) const;

  /// Extracts the k message bits from a (corrected) codeword.
  BitVec extract_message(const BitVec& codeword) const;

  /// Decodes a possibly corrupted n-bit word. Returns the corrected
  /// codeword, or std::nullopt when more than t errors are detected
  /// (decoder failure — never silently wrong within radius t).
  std::optional<BitVec> decode(const BitVec& received) const;

  /// The generator polynomial g(x), LSB-first. deg(g) = n - k.
  const BitVec& generator() const noexcept { return generator_; }

 private:
  Gf2m field_;
  std::size_t n_;
  std::size_t k_;
  unsigned t_;
  BitVec generator_;
};

}  // namespace neuropuls::ecc
