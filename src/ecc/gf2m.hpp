// Binary extension fields GF(2^m) with log/antilog tables.
//
// The BCH decoder (Berlekamp–Massey + Chien search) works over GF(2^m);
// this class builds the exponentiation tables for a standard primitive
// polynomial at construction time and exposes the handful of field
// operations the decoder needs.
#pragma once

#include <cstdint>
#include <vector>

namespace neuropuls::ecc {

class Gf2m {
 public:
  /// Constructs GF(2^m) for m in [2, 16] using a fixed primitive
  /// polynomial per degree. Throws std::invalid_argument otherwise.
  explicit Gf2m(unsigned m);

  unsigned m() const noexcept { return m_; }
  /// Field size minus one: the order of the multiplicative group.
  std::uint32_t n() const noexcept { return n_; }

  /// alpha^i for any non-negative exponent (reduced mod n).
  std::uint32_t alpha_pow(std::uint32_t exponent) const noexcept {
    return exp_[exponent % n_];
  }

  /// Discrete log base alpha; x must be nonzero.
  std::uint32_t log(std::uint32_t x) const noexcept { return log_[x]; }

  std::uint32_t mul(std::uint32_t a, std::uint32_t b) const noexcept {
    if (a == 0 || b == 0) return 0;
    return exp_[(log_[a] + log_[b]) % n_];
  }

  /// Multiplicative inverse; x must be nonzero.
  std::uint32_t inv(std::uint32_t x) const noexcept {
    return exp_[(n_ - log_[x]) % n_];
  }

  std::uint32_t div(std::uint32_t a, std::uint32_t b) const noexcept {
    if (a == 0) return 0;
    return exp_[(log_[a] + n_ - log_[b]) % n_];
  }

  /// a^e with a possibly zero base.
  std::uint32_t pow(std::uint32_t a, std::uint32_t e) const noexcept {
    if (a == 0) return e == 0 ? 1 : 0;
    return exp_[(static_cast<std::uint64_t>(log_[a]) * e) % n_];
  }

 private:
  unsigned m_;
  std::uint32_t n_;
  std::vector<std::uint32_t> exp_;  // size 2n for cheap wraparound
  std::vector<std::uint32_t> log_;  // size 2^m
};

}  // namespace neuropuls::ecc
