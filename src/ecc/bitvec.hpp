// Unpacked bit vectors for the coding layer.
//
// Error-correction code logic is clearest one bit per element; the
// protocol layers deal in packed bytes. This header provides the bit-level
// type and lossless conversions between the two representations.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "crypto/bytes.hpp"

namespace neuropuls::ecc {

/// One bit per element; values are 0 or 1.
using BitVec = std::vector<std::uint8_t>;

/// Unpacks bytes MSB-first into `bit_count` bits.
/// Throws std::invalid_argument when the buffer holds fewer bits.
inline BitVec unpack_bits(crypto::ByteView bytes, std::size_t bit_count) {
  if (bit_count > bytes.size() * 8) {
    throw std::invalid_argument("unpack_bits: buffer too small");
  }
  BitVec bits(bit_count);
  for (std::size_t i = 0; i < bit_count; ++i) {
    bits[i] = (bytes[i / 8] >> (7 - i % 8)) & 1;
  }
  return bits;
}

/// Unpacks every bit of the buffer.
inline BitVec unpack_bits(crypto::ByteView bytes) {
  return unpack_bits(bytes, bytes.size() * 8);
}

/// Packs bits MSB-first; the final byte is zero-padded.
inline crypto::Bytes pack_bits(const BitVec& bits) {
  crypto::Bytes out((bits.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] & 1) out[i / 8] |= static_cast<std::uint8_t>(1u << (7 - i % 8));
  }
  return out;
}

/// Hamming distance between equal-length bit vectors.
inline std::size_t hamming(const BitVec& a, const BitVec& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("hamming: length mismatch");
  }
  std::size_t d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) d += (a[i] ^ b[i]) & 1;
  return d;
}

/// XOR of equal-length bit vectors.
inline BitVec xor_bits(const BitVec& a, const BitVec& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("xor_bits: length mismatch");
  }
  BitVec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = (a[i] ^ b[i]) & 1;
  return out;
}

}  // namespace neuropuls::ecc
