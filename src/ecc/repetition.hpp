// Repetition code and BCH⊗repetition concatenation.
//
// The classic PUF key-generation pipeline first beats down the raw bit
// error rate with a short repetition code (majority vote), then removes
// the residual errors with a BCH outer code. The concatenated class below
// is what the fuzzy extractor instantiates by default.
#pragma once

#include <optional>

#include "ecc/bch.hpp"
#include "ecc/bitvec.hpp"

namespace neuropuls::ecc {

/// Odd-length repetition code: each data bit is sent `r` times and decoded
/// by majority vote.
class RepetitionCode {
 public:
  /// Throws std::invalid_argument unless r is odd and >= 1.
  explicit RepetitionCode(unsigned r);

  unsigned r() const noexcept { return r_; }

  /// n = r * message length.
  BitVec encode(const BitVec& message) const;

  /// Majority-vote decode; length must be a multiple of r.
  BitVec decode(const BitVec& received) const;

 private:
  unsigned r_;
};

/// Concatenation of a BCH outer code with a repetition inner code.
/// encode: message --BCH--> n_bch bits --repeat r--> n_bch * r bits.
class ConcatenatedCode {
 public:
  ConcatenatedCode(BchCode outer, RepetitionCode inner);

  std::size_t message_bits() const noexcept { return outer_.k(); }
  std::size_t codeword_bits() const noexcept {
    return outer_.n() * inner_.r();
  }

  BitVec encode(const BitVec& message) const;

  /// Full-pipeline decode to the *codeword* (not the message): majority
  /// vote, BCH correct, re-expand. Returning the codeword keeps the
  /// code-offset sketch construction simple. std::nullopt on BCH failure.
  std::optional<BitVec> decode_codeword(const BitVec& received) const;

  /// Decode all the way to the k-bit message.
  std::optional<BitVec> decode(const BitVec& received) const;

  const BchCode& outer() const noexcept { return outer_; }
  const RepetitionCode& inner() const noexcept { return inner_; }

 private:
  BchCode outer_;
  RepetitionCode inner_;
};

}  // namespace neuropuls::ecc
