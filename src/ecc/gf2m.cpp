#include "ecc/gf2m.hpp"

#include <stdexcept>

namespace neuropuls::ecc {

namespace {

// Primitive polynomials over GF(2), one per degree (bit i = coefficient of
// x^i). Standard choices from Lin & Costello, Appendix A.
constexpr std::uint32_t kPrimitivePoly[] = {
    0,       // degree 0 (unused)
    0,       // degree 1 (unused)
    0x7,     // x^2 + x + 1
    0xB,     // x^3 + x + 1
    0x13,    // x^4 + x + 1
    0x25,    // x^5 + x^2 + 1
    0x43,    // x^6 + x + 1
    0x89,    // x^7 + x^3 + 1
    0x11D,   // x^8 + x^4 + x^3 + x^2 + 1
    0x211,   // x^9 + x^4 + 1
    0x409,   // x^10 + x^3 + 1
    0x805,   // x^11 + x^2 + 1
    0x1053,  // x^12 + x^6 + x^4 + x + 1
    0x201B,  // x^13 + x^4 + x^3 + x + 1
    0x4443,  // x^14 + x^10 + x^6 + x + 1
    0x8003,  // x^15 + x + 1
    0x1100B  // x^16 + x^12 + x^3 + x + 1
};

}  // namespace

Gf2m::Gf2m(unsigned m) : m_(m) {
  if (m < 2 || m > 16) {
    throw std::invalid_argument("Gf2m: m must be in [2, 16]");
  }
  n_ = (1u << m) - 1;
  exp_.assign(2 * n_, 0);
  log_.assign(1u << m, 0);

  const std::uint32_t poly = kPrimitivePoly[m];
  std::uint32_t x = 1;
  for (std::uint32_t i = 0; i < n_; ++i) {
    exp_[i] = x;
    exp_[i + n_] = x;
    log_[x] = i;
    x <<= 1;
    if (x & (1u << m)) x ^= poly;
  }
}

}  // namespace neuropuls::ecc
