// Annotated lock wrappers — the only mutexes the concurrent stack uses.
//
// Every lock-holding component (puf::CrpDatabase shards, the
// common::parallel scheduler primitives, core::SessionEngine,
// net::DuplexChannel's wakeup hook, core::KeyManager,
// accel::SecureAccelerator's health machine, the PhotonicPuf table
// cache) holds a common::Mutex / common::SharedMutex and scopes critical
// sections with MutexLock / ReadLock / WriteLock, so Clang's capability
// analysis (src/common/thread_annotations.hpp) can prove every
// NP_GUARDED_BY field is only touched under its lock. The wrappers add
// nothing at runtime over the std primitives they hold; on non-Clang
// compilers they ARE the std primitives, one forwarding call deep.
//
// Canonical lock order (enforced statically by tools/ctlint's lock-order
// pass over these wrappers, and documented in DESIGN.md):
//
//   ThreadPool::submit_mutex_  >  ThreadPool::mutex_  >  Loop::m
//   SessionEngine::notify_mutex_  >  Reactor::sched_mutex
//   Reactor::admit_mutex  >  DuplexChannel::hook_mutex_
//       >  Reactor::sched_mutex  >  ParkingLot::mutex_
//   SecureAccelerator::mutex_   >  SecureAccelerator::health_mutex_
//   CrpDatabase Shard locks are leaves: nothing is ever acquired under
//   one, and they must never be taken while an engine lock is held.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.hpp"

namespace neuropuls::common {

class CondVar;
class MutexLock;

/// Annotated exclusive mutex (std::mutex underneath). Prefer MutexLock
/// over calling lock()/unlock() directly — scoped acquisition is what the
/// analysis reasons about best, and what the ctlint lock passes parse.
class NP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() NP_ACQUIRE() { mu_.lock(); }
  void unlock() NP_RELEASE() { mu_.unlock(); }
  bool try_lock() NP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
};

/// Scoped exclusive lock over a Mutex. Relockable: unlock()/lock() let a
/// long-running section (e.g. a pool worker executing a loop body) drop
/// the lock and reacquire it with the transitions still visible to the
/// analysis.
class NP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) NP_ACQUIRE(mu) : mu_(mu) { mu_.mu_.lock(); }

  /// Try-first acquisition: `contended` reports whether the fast path
  /// failed and the constructor had to block. CrpDatabase's shard locks
  /// use this to count contention without a second locking API.
  MutexLock(Mutex& mu, bool& contended) NP_ACQUIRE(mu) : mu_(mu) {
    contended = !mu_.mu_.try_lock();
    if (contended) mu_.mu_.lock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  ~MutexLock() NP_RELEASE() {
    if (held_) mu_.mu_.unlock();
  }

  /// Early release (the destructor then does nothing).
  void unlock() NP_RELEASE() {
    mu_.mu_.unlock();
    held_ = false;
  }

  /// Reacquire after unlock().
  void lock() NP_ACQUIRE() {
    mu_.mu_.lock();
    held_ = true;
  }

 private:
  friend class CondVar;
  Mutex& mu_;
  bool held_ = true;
};

/// Condition variable paired with common::Mutex. wait() names the Mutex
/// (not the scoped lock) so the analysis can check the caller actually
/// holds it; the capability is held again when wait() returns, exactly
/// like std::condition_variable::wait. Write wait loops inline —
///     while (!ready_) cv_.wait(mutex_);
/// — rather than with a predicate lambda: the loop body sits in the
/// scope where the analysis knows the capability is held.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) NP_REQUIRES(mu) {
    std::unique_lock<std::mutex> adopted(mu.mu_, std::adopt_lock);
    cv_.wait(adopted);
    adopted.release();  // the caller's scope still owns the capability
  }

  /// Timed wait: returns false on timeout, true when notified (or on a
  /// spurious wake — callers re-check their predicate either way). The
  /// WAL group-commit writer uses this for its flush interval: sleep
  /// until more records arrive or the coalescing window closes.
  bool wait_for(Mutex& mu, std::chrono::microseconds timeout)
      NP_REQUIRES(mu) {
    std::unique_lock<std::mutex> adopted(mu.mu_, std::adopt_lock);
    const auto status = cv_.wait_for(adopted, timeout);
    adopted.release();  // the caller's scope still owns the capability
    return status == std::cv_status::no_timeout;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

class ReadLock;
class WriteLock;

/// Annotated reader/writer mutex (std::shared_mutex underneath): many
/// concurrent shared holders or one exclusive holder. Reads of a field
/// guarded by a SharedMutex need at least a ReadLock; writes need a
/// WriteLock — the analysis distinguishes the two.
class NP_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() NP_ACQUIRE() { mu_.lock(); }
  void unlock() NP_RELEASE() { mu_.unlock(); }
  void lock_shared() NP_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() NP_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  friend class ReadLock;
  friend class WriteLock;
  std::shared_mutex mu_;
};

/// Scoped shared (reader) lock over a SharedMutex.
class NP_SCOPED_CAPABILITY ReadLock {
 public:
  explicit ReadLock(SharedMutex& mu) NP_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.mu_.lock_shared();
  }
  ReadLock(const ReadLock&) = delete;
  ReadLock& operator=(const ReadLock&) = delete;
  ~ReadLock() NP_RELEASE() { mu_.mu_.unlock_shared(); }

 private:
  SharedMutex& mu_;
};

/// Scoped exclusive (writer) lock over a SharedMutex.
class NP_SCOPED_CAPABILITY WriteLock {
 public:
  explicit WriteLock(SharedMutex& mu) NP_ACQUIRE(mu) : mu_(mu) {
    mu_.mu_.lock();
  }
  WriteLock(const WriteLock&) = delete;
  WriteLock& operator=(const WriteLock&) = delete;
  ~WriteLock() NP_RELEASE() { mu_.mu_.unlock(); }

 private:
  SharedMutex& mu_;
};

}  // namespace neuropuls::common
