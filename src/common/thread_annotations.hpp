// Clang capability-analysis macros for the concurrent half of the stack.
//
// PRs 5–6 made the verifier deeply concurrent (lock-striped CRP shards, a
// work-stealing reactor, park/unpark token banks); until now the only
// defenses against lock-discipline mistakes were runtime (the TSan check
// flavors) and review. These macros put the locking contracts into the
// type system: every field names the capability that guards it
// (NP_GUARDED_BY), every function names the capabilities it needs
// (NP_REQUIRES) or manipulates (NP_ACQUIRE / NP_RELEASE), and a Clang
// build with -Wthread-safety turns any unguarded access or contract
// violation into a compile error (scripts/check.sh lint, and the
// negative-compile suite under tests/negative_compile).
//
// On non-Clang compilers (this repo's default GCC toolchain included) the
// macros expand to nothing — the annotations are contracts, not code, and
// the annotated wrappers in common/mutex.hpp behave exactly like the
// std primitives they wrap.
//
// Naming follows the Clang thread-safety documentation (and Abseil's
// thread_annotations.h) so the vocabulary is the ecosystem-standard one;
// the NP_ prefix keeps the macros out of the global namespace.
#pragma once

#if defined(__clang__)
#define NP_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define NP_THREAD_ANNOTATION(x)  // no-op: analysis is Clang-only
#endif

/// Marks a class as a capability (a lockable resource). The string names
/// the capability kind in diagnostics ("mutex", "shared_mutex").
#define NP_CAPABILITY(x) NP_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases
/// a capability (common::MutexLock and friends).
#define NP_SCOPED_CAPABILITY NP_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be read/written while holding capability `x`
/// (shared suffices for reads when `x` is a shared capability).
#define NP_GUARDED_BY(x) NP_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field whose *pointee* is guarded by capability `x`.
#define NP_PT_GUARDED_BY(x) NP_THREAD_ANNOTATION(pt_guarded_by(x))

/// Static lock-order declaration: this capability must be acquired
/// before/after the listed ones (enforced under -Wthread-safety-beta).
#define NP_ACQUIRED_BEFORE(...) NP_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define NP_ACQUIRED_AFTER(...) NP_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Caller must hold the listed capabilities exclusively / shared.
#define NP_REQUIRES(...) NP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define NP_REQUIRES_SHARED(...) \
  NP_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (held on return).
#define NP_ACQUIRE(...) NP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define NP_ACQUIRE_SHARED(...) \
  NP_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases the listed capabilities (held on entry).
#define NP_RELEASE(...) NP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define NP_RELEASE_SHARED(...) \
  NP_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define NP_RELEASE_GENERIC(...) \
  NP_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

/// Function tries to acquire; first argument is the success return value.
#define NP_TRY_ACQUIRE(...) \
  NP_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define NP_TRY_ACQUIRE_SHARED(...) \
  NP_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the listed capabilities (deadlock guard for
/// non-reentrant locks).
#define NP_EXCLUDES(...) NP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (trust anchor for code
/// the analysis cannot follow).
#define NP_ASSERT_CAPABILITY(x) NP_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the named capability.
#define NP_RETURN_CAPABILITY(x) NP_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch — turns the analysis off for one function. Policy: the
/// stack ships with ZERO uses outside this header's own wrappers; new
/// uses need the same review a ctlint baseline entry would.
#define NP_NO_THREAD_SAFETY_ANALYSIS \
  NP_THREAD_ANNOTATION(no_thread_safety_analysis)
