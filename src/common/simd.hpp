// Portable SIMD layer for the photonic time-domain hot path.
//
// The lane-parallel engine packs W independent challenges' port fields as
// split-complex planes (separate re/im arrays, see
// photonic/field_block.hpp) and applies every scrambler op across all
// lanes at once. The kernels below are written as plain, dependency-free
// loops over `__restrict__` pointers so the compiler's auto-vectorizer
// turns them into SSE2/AVX2/NEON code on any target — no intrinsics are
// required for correctness, and the scalar fallback IS the same code.
//
// Bit-identity contract: each kernel performs, per lane, exactly the
// floating-point operation tree of the scalar `std::complex<double>` path
// it replaces (libstdc++ expands complex arithmetic to the same naive
// mul/add formulas for finite values). Terms of the form `0.0 * x` that
// the scalar complex formulas carry are dropped only where IEEE-754
// guarantees the same value up to the sign of an exact zero — and a zero's
// sign can never flip a response bit, because every readout goes through
// |E|^2 and a strict `> 0` threshold.
//
// FMA caveat: the identity argument counts *rounding steps*, so mul+add
// pairs must not be fused — fusion rounds the scalar complex-operator
// trees and these kernels differently (the dropped zero terms change what
// is fusable). The default x86-64 baseline has no FMA; the
// NEUROPULS_NATIVE build masks the FMA ISA off the photonic/puf targets
// (-mno-fma -mno-avx512f -ffp-contract=off) for exactly this reason —
// the ISA mask is needed because GCC turns std::complex multiplies into
// fused vfmaddsub even under -ffp-contract=off.
//
// Lane k of a block therefore produces
// the same response bytes as the serial scalar evaluation of item k; ctest
// asserts this (tests/photonic/test_field_block.cpp, test_parallel.cpp).
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

namespace neuropuls::simd {

#if defined(__GNUC__) || defined(__clang__)
#define NEUROPULS_RESTRICT __restrict__
#else
#define NEUROPULS_RESTRICT
#endif

/// Alignment of lane planes: one cache line, enough for AVX-512 loads.
inline constexpr std::size_t kLaneAlignment = 64;

/// Default lane-block width W: 8 doubles = one cache line per plane, two
/// AVX2 registers, four SSE2 registers. Chosen over the raw vector width
/// so the vectorized loops have unrolling headroom and tail blocks stay
/// rare for typical batch sizes.
inline constexpr std::size_t kDefaultLanes = 8;

/// Minimal aligned allocator so lane planes can live in std::vector while
/// starting on a kLaneAlignment boundary.
template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    void* p = ::operator new(n * sizeof(T), std::align_val_t{kLaneAlignment});
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kLaneAlignment});
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
};

/// std::vector whose buffer starts on a kLaneAlignment boundary — the
/// storage type of every lane plane.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

/// In-place multiply of each lane's complex value by the constant
/// (cr, ci): the per-port waveguide transfer rotation. Scalar equivalent:
/// `state[p] *= transfer` with re' = re*cr - im*ci, im' = re*ci + im*cr.
inline void complex_scale(double* NEUROPULS_RESTRICT re,
                          double* NEUROPULS_RESTRICT im, double cr, double ci,
                          std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const double r = re[i] * cr - im[i] * ci;
    const double m = re[i] * ci + im[i] * cr;
    re[i] = r;
    im[i] = m;
  }
}

/// dst = src * (cr, ci) for every lane: the input fan-out tap applied to
/// the per-lane modulated carrier. Scalar equivalent:
/// `state[p] = modulated * taps[p]`.
inline void complex_fanout(const double* NEUROPULS_RESTRICT src_re,
                           const double* NEUROPULS_RESTRICT src_im, double cr,
                           double ci, double* NEUROPULS_RESTRICT dst_re,
                           double* NEUROPULS_RESTRICT dst_im,
                           std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    dst_re[i] = src_re[i] * cr - src_im[i] * ci;
    dst_im[i] = src_re[i] * ci + src_im[i] * cr;
  }
}

/// In-place 2x2 directional-coupler mix of port planes a and b across all
/// lanes, with through amplitude t and cross amplitude k (the cross path
/// carries the -i of evanescent coupling). Scalar equivalent:
///   s0 = t*a + (-ik)*b,  s1 = (-ik)*a + t*b.
inline void coupler_mix(double* NEUROPULS_RESTRICT are,
                        double* NEUROPULS_RESTRICT aim,
                        double* NEUROPULS_RESTRICT bre,
                        double* NEUROPULS_RESTRICT bim, double t, double k,
                        std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const double s0r = t * are[i] + k * bim[i];
    const double s0i = t * aim[i] - k * bre[i];
    const double s1r = k * aim[i] + t * bre[i];
    const double s1i = t * bim[i] - k * are[i];
    are[i] = s0r;
    aim[i] = s0i;
    bre[i] = s1r;
    bim[i] = s1i;
  }
}

/// One all-pass ring time step across lanes, in place on the port planes.
/// `dre`/`dim` is the delay-line row holding the recirculating field
/// deposited `delay` steps ago (already scaled by the feedback factor on
/// insertion); it is overwritten with this step's circulating field.
/// Scalar equivalent (RingTimeDomain::step):
///   out  = t*in + (-ik)*ret
///   circ = (-ik)*in + t*ret
///   d[head] = (fr, fi) * circ
inline void ring_step(double* NEUROPULS_RESTRICT re,
                      double* NEUROPULS_RESTRICT im,
                      double* NEUROPULS_RESTRICT dre,
                      double* NEUROPULS_RESTRICT dim, double t, double k,
                      double fr, double fi, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const double rr = dre[i];
    const double ri = dim[i];
    const double in_r = re[i];
    const double in_i = im[i];
    const double out_r = t * in_r + k * ri;
    const double out_i = t * in_i - k * rr;
    const double circ_r = k * in_i + t * rr;
    const double circ_i = t * ri - k * in_r;
    dre[i] = fr * circ_r - fi * circ_i;
    dim[i] = fr * circ_i + fi * circ_r;
    re[i] = out_r;
    im[i] = out_i;
  }
}

/// acc[i] += responsivity * |E_i|^2 + dark for every lane: the square-law
/// photodiode integrate step. Scalar equivalent:
/// `window_current += pd.mean_current(state)`.
inline void square_law_accumulate(const double* NEUROPULS_RESTRICT re,
                                  const double* NEUROPULS_RESTRICT im,
                                  double responsivity, double dark,
                                  double* NEUROPULS_RESTRICT acc,
                                  std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    acc[i] += responsivity * (re[i] * re[i] + im[i] * im[i]) + dark;
  }
}

}  // namespace neuropuls::simd
