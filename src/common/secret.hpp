// Taint type for secret byte buffers.
//
// Every long-lived secret in the stack — fuzzy-extractor root keys, EKE
// session keys, channel direction keys, rotating CRP responses, the
// accelerator device key — is held in a `SecretBytes` instead of a plain
// `crypto::Bytes`. The wrapper turns the repo's secret-hygiene rules from
// convention into compile errors:
//
//   * `operator==`/`!=` are deleted: comparing secrets with short-circuit
//     equality is a timing oracle. The only sanctioned comparison is the
//     constant-time `ct_equal` overloads below.
//   * Copies are explicit (`clone()`): a secret cannot silently multiply
//     across the heap via pass-by-value.
//   * The destructor (and move-assignment over a live secret) wipes the
//     buffer through `crypto::secure_wipe`'s compiler barrier, so freed
//     heap slots never keep key residue.
//   * Reading the bytes requires a visible `reveal()` call — the audit
//     point `tools/ctlint` keys on.
//
// The static lint (`tools/ctlint`) closes the remaining gap: it flags
// `==`/`memcmp`/`std::equal` on buffers carrying the lint's secret
// annotation that have NOT been migrated to this type yet.
#pragma once

#include <cstdint>
#include <utility>

#include "crypto/bytes.hpp"

namespace neuropuls::common {

class SecretBytes {
 public:
  SecretBytes() noexcept = default;

  /// Takes ownership of existing key material. Explicit so a plain buffer
  /// never becomes secret-typed by accident; the moved-from vector is left
  /// empty, so no second copy of the secret survives at the call site.
  explicit SecretBytes(crypto::Bytes data) noexcept : data_(std::move(data)) {}

  /// Explicit copy from a view (e.g. adopting a sub-span of a message).
  static SecretBytes copy_of(crypto::ByteView data) {
    return SecretBytes(crypto::Bytes(data.begin(), data.end()));
  }

  SecretBytes(SecretBytes&& other) noexcept : data_(std::move(other.data_)) {
    other.data_.clear();
  }

  SecretBytes& operator=(SecretBytes&& other) noexcept {
    if (this != &other) {
      wipe();
      data_ = std::move(other.data_);
      other.data_.clear();
    }
    return *this;
  }

  // Implicit copies are forbidden; duplicating a secret must be visible.
  SecretBytes(const SecretBytes&) = delete;
  SecretBytes& operator=(const SecretBytes&) = delete;

  /// The explicit duplicate, for handing one secret to two owners.
  SecretBytes clone() const { return copy_of(data_); }

  ~SecretBytes() { wipe(); }

  // Equality on secrets is a timing oracle; use `ct_equal` below.
  bool operator==(const SecretBytes&) const = delete;
  bool operator!=(const SecretBytes&) const = delete;

  /// The single sanctioned read path. The name is the point: every use of
  /// the raw bytes is grep-able and auditable.
  crypto::ByteView reveal() const noexcept {
    return crypto::ByteView(data_);
  }

  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  /// Early wipe (e.g. rejecting a handshake): zeroises through the
  /// compiler barrier and empties the buffer.
  void wipe() noexcept { crypto::secure_wipe(data_); }

 private:
  crypto::Bytes data_;
};

/// Constant-time comparisons — the only way secrets compare.
inline bool ct_equal(const SecretBytes& a, const SecretBytes& b) noexcept {
  return crypto::ct_equal(a.reveal(), b.reveal());
}
inline bool ct_equal(const SecretBytes& a, crypto::ByteView b) noexcept {
  return crypto::ct_equal(a.reveal(), b);
}
inline bool ct_equal(crypto::ByteView a, const SecretBytes& b) noexcept {
  return crypto::ct_equal(a, b.reveal());
}

}  // namespace neuropuls::common
