// Chunked bump allocator for per-session bookkeeping.
//
// The session reactor (core::SessionEngine) keeps every in-flight
// session's control record alive for exactly one engine run; a
// general-purpose heap is the wrong tool for that lifetime shape — it
// charges a malloc per admission and a free per retirement, and its
// metadata scatters the records across the address space. The Arena
// carves objects out of large chunks with a bump pointer: admission is a
// pointer increment (amortised — a fresh chunk is malloc'd only every
// `chunk_bytes`), the steady-state step path never touches the arena at
// all, and everything is destroyed together when the run ends. Objects
// with non-trivial destructors are tracked on an intrusive finalizer
// list (nodes live in the arena too) and destroyed in reverse creation
// order by reset()/the destructor.
//
// Not thread-safe: callers serialise create() (the engine admits under
// its admission lock). This is deliberate — an internal mutex would tax
// the common case to protect the rare one.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace neuropuls::common {

class Arena {
 public:
  explicit Arena(std::size_t chunk_bytes = 64 * 1024)
      : chunk_bytes_(chunk_bytes < 256 ? 256 : chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  ~Arena() { reset(); }

  /// Raw aligned storage; lives until reset(). `align` must be a power
  /// of two. Oversized requests get a dedicated chunk.
  void* allocate(std::size_t size, std::size_t align) {
    if (size == 0) size = 1;
    if (!chunks_.empty()) {
      Chunk& chunk = chunks_.back();
      const std::size_t aligned = (chunk.used + (align - 1)) & ~(align - 1);
      if (aligned + size <= chunk.capacity) {
        chunk.used = aligned + size;
        return chunk.data.get() + aligned;
      }
    }
    const std::size_t capacity = size > chunk_bytes_ ? size : chunk_bytes_;
    // max_align_t-aligned via new[]; bump offsets preserve any smaller
    // power-of-two alignment.
    chunks_.push_back(Chunk{std::make_unique<std::byte[]>(capacity), size,
                            capacity});
    return chunks_.back().data.get();
  }

  /// Constructs a T in the arena. Destroyed (reverse creation order) by
  /// reset()/~Arena — never individually.
  template <typename T, typename... Args>
  T* create(Args&&... args) {
    T* object = new (allocate(sizeof(T), alignof(T)))
        T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      auto* node = static_cast<Finalizer*>(
          allocate(sizeof(Finalizer), alignof(Finalizer)));
      node->destroy = [](void* p) { static_cast<T*>(p)->~T(); };
      node->object = object;
      node->next = finalizers_;
      finalizers_ = node;
    }
    return object;
  }

  /// Destroys every created object and releases every chunk.
  void reset() {
    for (Finalizer* node = finalizers_; node != nullptr; node = node->next) {
      node->destroy(node->object);
    }
    finalizers_ = nullptr;
    chunks_.clear();
  }

  /// Bytes currently reserved across chunks (diagnostics).
  std::size_t bytes_reserved() const noexcept {
    std::size_t total = 0;
    for (const Chunk& chunk : chunks_) total += chunk.capacity;
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t used = 0;
    std::size_t capacity = 0;
  };
  struct Finalizer {
    void (*destroy)(void*);
    void* object;
    Finalizer* next;
  };

  std::vector<Chunk> chunks_;
  Finalizer* finalizers_ = nullptr;
  std::size_t chunk_bytes_;
};

}  // namespace neuropuls::common
