#include "common/io.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <utility>

namespace neuropuls::common::io {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::system_error(errno, std::generic_category(), what);
}

int open_retry(const char* path, int flags, mode_t mode) {
  int fd;
  do {
    fd = ::open(path, flags, mode);
  } while (fd < 0 && errno == EINTR);
  return fd;
}

}  // namespace

File::~File() noexcept { close(); }

File::File(File&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

File& File::operator=(File&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

File File::open_read(const std::string& path) {
  const int fd = open_retry(path.c_str(), O_RDONLY | O_CLOEXEC, 0);
  if (fd < 0) throw_errno("open_read " + path);
  return File(fd);
}

File File::open_append(const std::string& path) {
  const int fd =
      open_retry(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) throw_errno("open_append " + path);
  return File(fd);
}

File File::create_truncate(const std::string& path) {
  const int fd =
      open_retry(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) throw_errno("create_truncate " + path);
  return File(fd);
}

void File::write_all(crypto::ByteView data) {
  const std::uint8_t* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    const ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("write");
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

void File::sync() {
  int rc;
  do {
    rc = ::fsync(fd_);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) throw_errno("fsync");
}

std::uint64_t File::size() const {
  struct stat st{};
  if (::fstat(fd_, &st) < 0) throw_errno("fstat");
  return static_cast<std::uint64_t>(st.st_size);
}

void File::read_exact(std::uint64_t offset,
                      std::span<std::uint8_t> out) const {
  std::uint8_t* p = out.data();
  std::size_t left = out.size();
  while (left > 0) {
    const ssize_t n =
        ::pread(fd_, p, left, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("pread");
    }
    if (n == 0) {
      errno = EIO;
      throw_errno("pread short read");
    }
    p += n;
    left -= static_cast<std::size_t>(n);
    offset += static_cast<std::uint64_t>(n);
  }
}

void File::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

crypto::Bytes read_file(const std::string& path) {
  const File file = File::open_read(path);
  crypto::Bytes data(file.size());
  if (!data.empty()) file.read_exact(0, data);
  return data;
}

void atomic_write_file(const std::string& path, crypto::ByteView data) {
  const std::string tmp = path + ".tmp";
  {
    File file = File::create_truncate(tmp);
    file.write_all(data);
    file.sync();
  }
  if (::rename(tmp.c_str(), path.c_str()) < 0) throw_errno("rename " + path);
  const auto slash = path.find_last_of('/');
  sync_directory(slash == std::string::npos ? "." : path.substr(0, slash));
}

void create_directories(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) {
    throw std::system_error(ec, "create_directories " + path);
  }
}

void sync_directory(const std::string& path) {
  const int fd = open_retry(path.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC, 0);
  if (fd < 0) throw_errno("open dir " + path);
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc < 0 && errno == EINTR);
  const int saved = errno;
  ::close(fd);
  if (rc < 0) {
    errno = saved;
    throw_errno("fsync dir " + path);
  }
}

void remove_file(const std::string& path) {
  if (::unlink(path.c_str()) < 0 && errno != ENOENT) {
    throw_errno("unlink " + path);
  }
}

std::vector<std::string> list_files(const std::string& dir) {
  std::vector<std::string> names;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file()) {
      names.push_back(entry.path().filename().string());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

TempDir::TempDir(const std::string& tag) {
  const char* base = std::getenv("TMPDIR");
  std::string tmpl = (base != nullptr && *base != '\0' ? std::string(base)
                                                       : std::string("/tmp"));
  tmpl += "/" + tag + ".XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) throw_errno("mkdtemp " + tmpl);
  path_.assign(buf.data());
}

TempDir::~TempDir() noexcept {
  std::error_code ec;
  std::filesystem::remove_all(path_, ec);  // best effort
}

}  // namespace neuropuls::common::io
