// Dependency-free data-parallel execution for the simulation stack.
//
// Every population-scale experiment the paper implies — intra/inter
// Hamming statistics over device fleets (§II-A), ML-attack CRP dataset
// generation (§IV), thermal sweeps (§II-B) — reduces to thousands of
// *independent* time-domain PUF evaluations. This module provides the
// one primitive they all need: a fixed-size thread pool with a blocking
// `parallel_for(n, fn)` that runs `fn(0) … fn(n-1)` across workers.
//
// Design rules (all load-bearing for determinism and simplicity):
//   * No work stealing, no futures, no task graph: one loop at a time,
//     indices handed out in contiguous chunks from an atomic cursor.
//     Callers that need determinism key all output on the index — the
//     schedule can then never influence results.
//   * The calling thread participates in the loop, so a pool is never
//     idle-blocked on its own submitter and a 1-thread pool degenerates
//     to a plain serial loop.
//   * Nested parallel_for (from inside a worker) runs serially on the
//     calling worker — population-level parallelism already saturates
//     the machine, and serial nesting keeps the pool deadlock-free.
//   * The first exception thrown by any iteration cancels the remaining
//     indices and is rethrown on the submitting thread.
//
// Thread count resolution: explicit constructor argument, else the
// NEUROPULS_THREADS environment variable, else hardware_concurrency.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace neuropuls::common {

class ThreadPool {
 public:
  /// `threads == 0` resolves via NEUROPULS_THREADS / hardware_concurrency.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution width including the calling thread.
  std::size_t thread_count() const noexcept { return workers_.size() + 1; }

  /// Runs fn(0) … fn(n-1) across the pool and the calling thread; blocks
  /// until every index has finished. Rethrows the first exception any
  /// iteration raised (remaining indices are skipped). Safe to call from
  /// inside a running parallel_for — the nested loop executes serially.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& fn);

  /// Process-wide shared pool (NEUROPULS_THREADS wide), built on first use.
  static ThreadPool& global();

  /// NEUROPULS_THREADS env var when set to a positive integer, else
  /// std::thread::hardware_concurrency(), floored at 1.
  static std::size_t default_thread_count();

 private:
  struct Loop;

  void worker_main();
  static void run_loop(Loop& loop);

  std::vector<std::thread> workers_;
  std::mutex submit_mutex_;  // serialises concurrent external submitters
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::shared_ptr<Loop> current_;  // loop being executed, if any
  bool stopping_ = false;
};

/// parallel_for on the process-global pool.
inline void parallel_for(std::size_t n,
                         const std::function<void(std::size_t)>& fn) {
  ThreadPool::global().parallel_for(n, fn);
}

}  // namespace neuropuls::common
