// Dependency-free data-parallel execution for the simulation stack.
//
// Every population-scale experiment the paper implies — intra/inter
// Hamming statistics over device fleets (§II-A), ML-attack CRP dataset
// generation (§IV), thermal sweeps (§II-B) — reduces to thousands of
// *independent* time-domain PUF evaluations. This module provides the
// one primitive they all need: a fixed-size thread pool with a blocking
// `parallel_for(n, fn)` that runs `fn(0) … fn(n-1)` across workers.
//
// Design rules (all load-bearing for determinism and simplicity):
//   * No work stealing, no futures, no task graph: one loop at a time,
//     indices handed out in contiguous chunks from an atomic cursor.
//     Callers that need determinism key all output on the index — the
//     schedule can then never influence results.
//   * The calling thread participates in the loop, so a pool is never
//     idle-blocked on its own submitter and a 1-thread pool degenerates
//     to a plain serial loop.
//   * Nested parallel_for (from inside a worker) runs serially on the
//     calling worker — population-level parallelism already saturates
//     the machine, and serial nesting keeps the pool deadlock-free.
//   * The first exception thrown by any iteration cancels the remaining
//     indices and is rethrown on the submitting thread.
//
// Thread count resolution: explicit constructor argument, else the
// NEUROPULS_THREADS environment variable, else hardware_concurrency.
//
// Reactor primitives: alongside the barrier-style pool, this module
// provides the two building blocks of a work-stealing scheduler —
// `StealDeque` (per-worker run queue, LIFO for the owner, FIFO for
// thieves) and `ParkingLot` (token-counted park/unpark). They carry the
// readiness-driven `core::SessionEngine` reactor, which replaced the
// wave multiplexer: the pool contributes the threads (via parallel_for
// over worker ids), these structures contribute the scheduling.
//
// Concurrency contracts: every mutex here is an annotated common::Mutex
// and every guarded field carries NP_GUARDED_BY, so a Clang build with
// -Wthread-safety proves the locking discipline at compile time (the
// macros are no-ops elsewhere). Lock order within this module:
// submit_mutex_ > mutex_ > Loop::m; StealDeque and ParkingLot locks are
// leaves.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace neuropuls::common {

class ThreadPool {
 public:
  /// `threads == 0` resolves via NEUROPULS_THREADS / hardware_concurrency.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution width including the calling thread.
  std::size_t thread_count() const noexcept { return workers_.size() + 1; }

  /// Runs fn(0) … fn(n-1) across the pool and the calling thread; blocks
  /// until every index has finished. Rethrows the first exception any
  /// iteration raised (remaining indices are skipped). Safe to call from
  /// inside a running parallel_for — the nested loop executes serially.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& fn);

  /// Process-wide shared pool (NEUROPULS_THREADS wide), built on first use.
  static ThreadPool& global();

  /// NEUROPULS_THREADS env var when set to a positive integer, else
  /// std::thread::hardware_concurrency(), floored at 1.
  static std::size_t default_thread_count();

 private:
  struct Loop;

  void worker_main();
  static void run_loop(Loop& loop);

  std::vector<std::thread> workers_;
  Mutex submit_mutex_;  // serialises concurrent external submitters
  Mutex mutex_;
  CondVar work_cv_;
  /// Loop being executed, if any.
  std::shared_ptr<Loop> current_ NP_GUARDED_BY(mutex_);
  bool stopping_ NP_GUARDED_BY(mutex_) = false;
};

/// parallel_for on the process-global pool.
inline void parallel_for(std::size_t n,
                         const std::function<void(std::size_t)>& fn) {
  ThreadPool::global().parallel_for(n, fn);
}

/// Fixed-capacity work-stealing run queue. The owning worker pushes and
/// pops at the bottom (LIFO — the session it just stepped is cache-warm
/// and likely to be stepped again), thieves take from the top (FIFO —
/// the oldest, coldest work is what migrates). One mutex per deque: with
/// per-worker queues the lock is essentially uncontended (a thief only
/// arrives when its own queue is empty), and a mutex keeps the structure
/// trivially TSan-clean. Capacity is fixed at construction so
/// push/pop/steal never allocate — part of the zero-allocation
/// steady-state contract of the session reactor.
class StealDeque {
 public:
  /// Capacity is rounded up to at least 1.
  explicit StealDeque(std::size_t capacity);

  StealDeque(const StealDeque&) = delete;
  StealDeque& operator=(const StealDeque&) = delete;

  /// Bottom push (owner only by convention, but safe from any thread).
  /// Returns false when the deque is full — the caller sized it wrong.
  bool push(void* item);

  /// Bottom pop, LIFO. nullptr when empty.
  void* pop() noexcept;

  /// Top steal, FIFO. nullptr when empty.
  void* steal() noexcept;

  std::size_t size() const noexcept;
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  mutable Mutex mutex_;
  /// Fixed at construction; ring_.size() == capacity_ always. The
  /// elements (and the ring indices) move only under mutex_.
  const std::size_t capacity_;
  std::vector<void*> ring_ NP_GUARDED_BY(mutex_);
  std::size_t top_ NP_GUARDED_BY(mutex_) = 0;     // index of the oldest item
  std::size_t bottom_ NP_GUARDED_BY(mutex_) = 0;  // one past the newest item
};

/// Token-counted park/unpark for scheduler workers. The classic lost
/// wake-up — worker A finds every queue empty, worker B publishes work
/// and unparks, A only then goes to sleep — is made benign by banking
/// unparks as tokens: A's park() consumes the banked token and returns
/// without sleeping. Tokens are capped at `max_tokens` (normally the
/// worker count) so a burst of publishes cannot bank more wake-ups than
/// there are workers to wake. close() releases every sleeper and turns
/// all later park() calls into no-ops (shutdown).
class ParkingLot {
 public:
  explicit ParkingLot(std::size_t max_tokens = 0);  // 0 = uncapped

  ParkingLot(const ParkingLot&) = delete;
  ParkingLot& operator=(const ParkingLot&) = delete;

  /// Blocks until a token arrives (consuming it) or the lot is closed.
  /// Returns true when the call actually slept — the "parks" statistic.
  bool park();

  /// Banks one token and wakes one sleeper, if any.
  void unpark_one();

  /// Wakes every sleeper and leaves one token per waking worker.
  void unpark_all();

  /// Permanently releases everyone; later park() calls return instantly.
  void close();

  bool closed() const;

 private:
  mutable Mutex mutex_;
  CondVar cv_;
  std::size_t tokens_ NP_GUARDED_BY(mutex_) = 0;
  std::size_t sleepers_ NP_GUARDED_BY(mutex_) = 0;
  const std::size_t max_tokens_;  // fixed at construction
  bool closed_ NP_GUARDED_BY(mutex_) = false;
};

}  // namespace neuropuls::common
