#include "common/parallel.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

namespace neuropuls::common {

namespace {

// True while the current thread is executing parallel_for iterations —
// either as a pool worker or as a submitter participating in its own
// loop. Nested parallel_for calls check this and run serially.
thread_local bool tl_in_parallel_region = false;

struct RegionGuard {
  bool previous;
  RegionGuard() : previous(tl_in_parallel_region) {
    tl_in_parallel_region = true;
  }
  ~RegionGuard() { tl_in_parallel_region = previous; }
};

}  // namespace

struct ThreadPool::Loop {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t end = 0;
  std::size_t chunk = 1;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> cancelled{false};
  // Completion / error state.
  Mutex m;
  CondVar done_cv;
  std::size_t in_flight NP_GUARDED_BY(m) = 0;
  std::exception_ptr error NP_GUARDED_BY(m);

  bool has_work() const noexcept {
    return next.load(std::memory_order_relaxed) < end &&
           !cancelled.load(std::memory_order_relaxed);
  }
};

std::size_t ThreadPool::default_thread_count() {
  if (const char* env = std::getenv("NEUROPULS_THREADS")) {
    char* tail = nullptr;
    const unsigned long parsed = std::strtoul(env, &tail, 10);
    // strtoul wraps negative input to huge values; cap at a sane width so
    // garbage like "-3" falls through to the hardware default instead of
    // aborting inside thread spawn.
    if (tail != env && *tail == '\0' && parsed > 0 && parsed <= 4096) {
      return static_cast<std::size_t>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;  // thread-safe magic-static initialisation
  return pool;
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t width = threads == 0 ? default_thread_count() : threads;
  // The submitting thread is execution width 1; spawn the rest.
  workers_.reserve(width > 0 ? width - 1 : 0);
  for (std::size_t i = 0; i + 1 < width; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::run_loop(Loop& loop) {
  for (;;) {
    if (loop.cancelled.load(std::memory_order_acquire)) return;
    const std::size_t begin =
        loop.next.fetch_add(loop.chunk, std::memory_order_relaxed);
    if (begin >= loop.end) return;
    const std::size_t stop = std::min(begin + loop.chunk, loop.end);
    for (std::size_t i = begin; i < stop; ++i) {
      if (loop.cancelled.load(std::memory_order_relaxed)) return;
      try {
        (*loop.fn)(i);
      } catch (...) {
        {
          MutexLock lock(loop.m);
          if (!loop.error) loop.error = std::current_exception();
        }
        loop.cancelled.store(true, std::memory_order_release);
        return;
      }
    }
  }
}

void ThreadPool::worker_main() {
  RegionGuard in_region;  // everything a worker runs is inside a loop
  MutexLock lock(mutex_);
  for (;;) {
    while (!(stopping_ || (current_ && current_->has_work()))) {
      work_cv_.wait(mutex_);
    }
    if (stopping_) return;
    const std::shared_ptr<Loop> loop = current_;
    {
      MutexLock guard(loop->m);
      ++loop->in_flight;
    }
    lock.unlock();
    run_loop(*loop);
    {
      MutexLock guard(loop->m);
      --loop->in_flight;
    }
    loop->done_cv.notify_all();
    lock.lock();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (tl_in_parallel_region || workers_.empty() || n == 1) {
    // Serial fallback: nested call, 1-thread pool, or trivially small
    // loop. Exceptions propagate naturally; iterations still count as a
    // parallel region so deeper nesting stays serial too.
    RegionGuard in_region;
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  auto loop = std::make_shared<Loop>();
  loop->fn = &fn;
  loop->end = n;
  // ~4 chunks per thread balances scheduling overhead against tail skew
  // from unequal per-item cost.
  loop->chunk = std::max<std::size_t>(1, n / (thread_count() * 4));

  // One loop at a time: a second external submitter waits its turn.
  MutexLock submit_lock(submit_mutex_);
  {
    MutexLock lock(mutex_);
    current_ = loop;
  }
  work_cv_.notify_all();

  {
    RegionGuard in_region;
    run_loop(*loop);  // the submitter works too — never idle-blocked
  }

  std::exception_ptr error;
  {
    MutexLock done_lock(loop->m);
    while (!(loop->in_flight == 0 &&
             (loop->next.load(std::memory_order_relaxed) >= loop->end ||
              loop->cancelled.load(std::memory_order_relaxed)))) {
      loop->done_cv.wait(loop->m);
    }
    error = loop->error;
  }
  {
    MutexLock lock(mutex_);
    current_.reset();
  }
  if (error) std::rethrow_exception(error);
}

StealDeque::StealDeque(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity), ring_(capacity_, nullptr) {}

bool StealDeque::push(void* item) {
  MutexLock lock(mutex_);
  if (bottom_ - top_ == capacity_) return false;
  ring_[bottom_ % capacity_] = item;
  ++bottom_;
  return true;
}

void* StealDeque::pop() noexcept {
  MutexLock lock(mutex_);
  if (bottom_ == top_) return nullptr;
  --bottom_;
  return ring_[bottom_ % capacity_];
}

void* StealDeque::steal() noexcept {
  MutexLock lock(mutex_);
  if (bottom_ == top_) return nullptr;
  void* item = ring_[top_ % capacity_];
  ++top_;
  return item;
}

std::size_t StealDeque::size() const noexcept {
  MutexLock lock(mutex_);
  return bottom_ - top_;
}

ParkingLot::ParkingLot(std::size_t max_tokens) : max_tokens_(max_tokens) {}

bool ParkingLot::park() {
  MutexLock lock(mutex_);
  if (closed_) return false;
  if (tokens_ > 0) {
    --tokens_;
    return false;
  }
  ++sleepers_;
  while (!(tokens_ > 0 || closed_)) cv_.wait(mutex_);
  --sleepers_;
  if (tokens_ > 0) --tokens_;
  return true;
}

void ParkingLot::unpark_one() {
  {
    MutexLock lock(mutex_);
    if (closed_) return;
    if (max_tokens_ == 0 || tokens_ < max_tokens_) ++tokens_;
  }
  cv_.notify_one();
}

void ParkingLot::unpark_all() {
  {
    MutexLock lock(mutex_);
    if (closed_) return;
    tokens_ += sleepers_;
  }
  cv_.notify_all();
}

void ParkingLot::close() {
  {
    MutexLock lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool ParkingLot::closed() const {
  MutexLock lock(mutex_);
  return closed_;
}

}  // namespace neuropuls::common
