// Thin POSIX file I/O for the durability layer.
//
// The durable CRP store (src/puf) needs exactly four things from the
// filesystem: append a buffer to a log, force it to stable storage,
// read a whole file back, and atomically replace one file with another
// (snapshot/manifest commit). This header wraps those in RAII so the
// store's logic never touches a raw fd, and keeps every call loop-safe
// against EINTR and short writes. Nothing here takes a lock and nothing
// here is called with a lock held — the ctlint `blocking-under-lock`
// pass bans `write`/`fsync`-family calls inside critical sections, and
// this module is where the sanctioned call sites live.
//
// Error model: every failure throws std::system_error carrying errno.
// Callers that must "fail cleanly" (WAL recovery) translate at their
// boundary; nothing in this header swallows an error.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/bytes.hpp"

namespace neuropuls::common::io {

/// Move-only RAII file descriptor. All I/O helpers retry on EINTR and
/// loop until the full buffer is transferred.
class File {
 public:
  File() = default;
  ~File() noexcept;

  File(File&& other) noexcept;
  File& operator=(File&& other) noexcept;
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  /// Opens an existing file for reading. Throws if it does not exist.
  static File open_read(const std::string& path);

  /// Opens (creating if needed) a file for appending. O_APPEND: every
  /// write lands at the current end of file.
  static File open_append(const std::string& path);

  /// Creates/truncates a file for writing (snapshot/manifest staging).
  static File create_truncate(const std::string& path);

  bool valid() const noexcept { return fd_ >= 0; }

  /// Writes the entire buffer (looping over short writes).
  void write_all(crypto::ByteView data);

  /// fsync(2): blocks until everything written so far is on stable
  /// storage. The group-commit batching exists to amortise this call.
  void sync();

  /// Current size in bytes (fstat).
  std::uint64_t size() const;

  /// Reads exactly `out.size()` bytes starting at `offset` (pread loop).
  /// Throws on short reads — the caller sized the buffer from size().
  void read_exact(std::uint64_t offset, std::span<std::uint8_t> out) const;

  void close() noexcept;

 private:
  explicit File(int fd) noexcept : fd_(fd) {}
  int fd_ = -1;
};

/// True when `path` names an existing regular file.
bool file_exists(const std::string& path);

/// Whole-file read convenience (open_read + size + read_exact).
crypto::Bytes read_file(const std::string& path);

/// Writes `data` to `path + ".tmp"`, fsyncs it, renames it over `path`,
/// and fsyncs the containing directory — the standard atomic-publish
/// sequence for snapshot and manifest commits: a crash at any point
/// leaves either the old file or the new one, never a torn mix.
void atomic_write_file(const std::string& path, crypto::ByteView data);

/// mkdir -p. Throws on failure (EEXIST on a directory is success).
void create_directories(const std::string& path);

/// fsync on a directory fd — makes renames/creations in it durable.
void sync_directory(const std::string& path);

/// Unlinks a file; missing files are ignored (idempotent cleanup).
void remove_file(const std::string& path);

/// Names of regular files directly inside `dir` (no recursion, sorted).
std::vector<std::string> list_files(const std::string& dir);

/// RAII temporary directory (mkdtemp under TMPDIR or /tmp), recursively
/// removed on destruction. Tests and benches stage store directories in
/// one of these so crash/recovery sweeps never touch the source tree.
class TempDir {
 public:
  /// `tag` lands in the directory name for debuggability.
  explicit TempDir(const std::string& tag = "np-io");
  ~TempDir() noexcept;

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

}  // namespace neuropuls::common::io
