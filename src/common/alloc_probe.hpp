// Allocation-counting probe for zero-allocation invariants.
//
// The session reactor promises that its steady-state step path — polling
// a waiting machine, pushing/popping run queues, parking on the wheel —
// performs no heap allocation. A promise like that rots unless a test
// counts; this header provides the counter. A test binary opts in by
// invoking NEUROPULS_DEFINE_ALLOC_PROBE() at namespace scope in exactly
// one translation unit: that replaces the binary's global operator
// new/delete with malloc/free wrappers that bump a thread-local counter.
// Production targets never include the macro, so shipping code pays
// nothing.
//
// Usage:
//   NEUROPULS_DEFINE_ALLOC_PROBE()
//   ...
//   const auto before = common::alloc_probe::allocations();
//   <steady-state work>
//   EXPECT_EQ(common::alloc_probe::allocations(), before);
//
// The counter is thread-local, so a test that drives a single-worker
// reactor from the calling thread observes exactly its own allocations,
// unpolluted by unrelated threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace neuropuls::common::alloc_probe {

namespace detail {
inline thread_local std::uint64_t tl_allocations = 0;
}  // namespace detail

/// operator new calls observed on this thread since process start.
inline std::uint64_t allocations() noexcept {
  return detail::tl_allocations;
}

inline void* counted_alloc(std::size_t size) {
  ++detail::tl_allocations;
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

inline void* counted_alloc(std::size_t size, std::align_val_t align) {
  ++detail::tl_allocations;
  if (size == 0) size = 1;
  void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                               (size + static_cast<std::size_t>(align) - 1) &
                                   ~(static_cast<std::size_t>(align) - 1));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace neuropuls::common::alloc_probe

// Defines the replacement global allocation functions. Must appear at
// global namespace scope in exactly one TU of the test binary.
#define NEUROPULS_DEFINE_ALLOC_PROBE()                                        \
  void* operator new(std::size_t size) {                                      \
    return neuropuls::common::alloc_probe::counted_alloc(size);               \
  }                                                                           \
  void* operator new[](std::size_t size) {                                    \
    return neuropuls::common::alloc_probe::counted_alloc(size);               \
  }                                                                           \
  void* operator new(std::size_t size, std::align_val_t align) {              \
    return neuropuls::common::alloc_probe::counted_alloc(size, align);        \
  }                                                                           \
  void* operator new[](std::size_t size, std::align_val_t align) {            \
    return neuropuls::common::alloc_probe::counted_alloc(size, align);        \
  }                                                                           \
  void operator delete(void* p) noexcept { std::free(p); }                    \
  void operator delete[](void* p) noexcept { std::free(p); }                  \
  void operator delete(void* p, std::size_t) noexcept { std::free(p); }       \
  void operator delete[](void* p, std::size_t) noexcept { std::free(p); }     \
  void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }  \
  void operator delete[](void* p, std::align_val_t) noexcept {                \
    std::free(p);                                                             \
  }                                                                           \
  void operator delete(void* p, std::size_t, std::align_val_t) noexcept {     \
    std::free(p);                                                             \
  }                                                                           \
  void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {   \
    std::free(p);                                                             \
  }
