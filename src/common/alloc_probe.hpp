// Allocation-counting probe for zero-allocation and bounded-memory
// invariants.
//
// The session reactor promises that its steady-state step path — polling
// a waiting machine, pushing/popping run queues, parking on the wheel —
// performs no heap allocation, and the fleet simulator promises that a
// million-device campaign stays under a configured byte budget. Promises
// like these rot unless a test counts; this header provides the
// counters. A test or bench binary opts in by invoking
// NEUROPULS_DEFINE_ALLOC_PROBE() at namespace scope in exactly one
// translation unit: that replaces the binary's global operator
// new/delete with malloc/free wrappers that bump a thread-local call
// counter and process-wide live/peak byte counters. Production targets
// never include the macro, so shipping code pays nothing.
//
// Usage (call counting):
//   NEUROPULS_DEFINE_ALLOC_PROBE()
//   ...
//   const auto before = common::alloc_probe::allocations();
//   <steady-state work>
//   EXPECT_EQ(common::alloc_probe::allocations(), before);
//
// Usage (byte high-water):
//   common::alloc_probe::reset_peak();
//   <campaign>
//   EXPECT_LE(common::alloc_probe::peak_bytes(), budget);
//
// The call counter is thread-local, so a test that drives a
// single-worker reactor from the calling thread observes exactly its own
// allocations, unpolluted by unrelated threads. The byte counters are
// process-wide atomics (a memory budget is a property of the process):
// live_bytes() tracks currently-held heap bytes, peak_bytes() the
// high-water mark since start (or the last reset_peak()). Byte sizes
// come from glibc's malloc_usable_size — real heap footprint, including
// allocator rounding; on non-glibc platforms the byte counters read 0
// and only the call counter is live.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

#if defined(__GLIBC__) || defined(__linux__)
#include <malloc.h>
#define NEUROPULS_ALLOC_PROBE_HAS_USABLE_SIZE 1
#endif

namespace neuropuls::common::alloc_probe {

namespace detail {
inline thread_local std::uint64_t tl_allocations = 0;
inline std::atomic<std::uint64_t> g_live_bytes{0};
inline std::atomic<std::uint64_t> g_peak_bytes{0};

inline void account_alloc(void* p) noexcept {
#ifdef NEUROPULS_ALLOC_PROBE_HAS_USABLE_SIZE
  const auto bytes = static_cast<std::uint64_t>(malloc_usable_size(p));
  const std::uint64_t live =
      g_live_bytes.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  std::uint64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
  while (live > peak && !g_peak_bytes.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
#else
  (void)p;
#endif
}

inline void account_free(void* p) noexcept {
#ifdef NEUROPULS_ALLOC_PROBE_HAS_USABLE_SIZE
  if (p != nullptr) {
    g_live_bytes.fetch_sub(
        static_cast<std::uint64_t>(malloc_usable_size(p)),
        std::memory_order_relaxed);
  }
#else
  (void)p;
#endif
}
}  // namespace detail

/// operator new calls observed on this thread since process start.
inline std::uint64_t allocations() noexcept {
  return detail::tl_allocations;
}

/// Heap bytes currently held across the whole process (0 without
/// malloc_usable_size support).
inline std::uint64_t live_bytes() noexcept {
  return detail::g_live_bytes.load(std::memory_order_relaxed);
}

/// High-water mark of live_bytes() since process start or the last
/// reset_peak().
inline std::uint64_t peak_bytes() noexcept {
  return detail::g_peak_bytes.load(std::memory_order_relaxed);
}

/// Restarts the high-water mark from the current live level, so a bench
/// can measure one campaign's footprint in isolation.
inline void reset_peak() noexcept {
  detail::g_peak_bytes.store(detail::g_live_bytes.load(
                                 std::memory_order_relaxed),
                             std::memory_order_relaxed);
}

inline void* counted_alloc(std::size_t size) {
  ++detail::tl_allocations;
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  detail::account_alloc(p);
  return p;
}

inline void* counted_alloc(std::size_t size, std::align_val_t align) {
  ++detail::tl_allocations;
  if (size == 0) size = 1;
  void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                               (size + static_cast<std::size_t>(align) - 1) &
                                   ~(static_cast<std::size_t>(align) - 1));
  if (p == nullptr) throw std::bad_alloc();
  detail::account_alloc(p);
  return p;
}

inline void counted_free(void* p) noexcept {
  detail::account_free(p);
  std::free(p);
}

}  // namespace neuropuls::common::alloc_probe

// Defines the replacement global allocation functions. Must appear at
// global namespace scope in exactly one TU of the test binary.
#define NEUROPULS_DEFINE_ALLOC_PROBE()                                        \
  void* operator new(std::size_t size) {                                      \
    return neuropuls::common::alloc_probe::counted_alloc(size);               \
  }                                                                           \
  void* operator new[](std::size_t size) {                                    \
    return neuropuls::common::alloc_probe::counted_alloc(size);               \
  }                                                                           \
  void* operator new(std::size_t size, std::align_val_t align) {              \
    return neuropuls::common::alloc_probe::counted_alloc(size, align);        \
  }                                                                           \
  void* operator new[](std::size_t size, std::align_val_t align) {            \
    return neuropuls::common::alloc_probe::counted_alloc(size, align);        \
  }                                                                           \
  void operator delete(void* p) noexcept {                                    \
    neuropuls::common::alloc_probe::counted_free(p);                          \
  }                                                                           \
  void operator delete[](void* p) noexcept {                                  \
    neuropuls::common::alloc_probe::counted_free(p);                          \
  }                                                                           \
  void operator delete(void* p, std::size_t) noexcept {                       \
    neuropuls::common::alloc_probe::counted_free(p);                          \
  }                                                                           \
  void operator delete[](void* p, std::size_t) noexcept {                     \
    neuropuls::common::alloc_probe::counted_free(p);                          \
  }                                                                           \
  void operator delete(void* p, std::align_val_t) noexcept {                  \
    neuropuls::common::alloc_probe::counted_free(p);                          \
  }                                                                           \
  void operator delete[](void* p, std::align_val_t) noexcept {                \
    neuropuls::common::alloc_probe::counted_free(p);                          \
  }                                                                           \
  void operator delete(void* p, std::size_t, std::align_val_t) noexcept {     \
    neuropuls::common::alloc_probe::counted_free(p);                          \
  }                                                                           \
  void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {   \
    neuropuls::common::alloc_probe::counted_free(p);                          \
  }
