// PUF-based identification error rates (§V: "error rates, including
// false positive and false negative rates, should be analyzed to gauge
// the PUF's reliability").
//
// Device identification by distance: a claimant's response is accepted
// iff its fractional Hamming distance to the enrolled reference is below
// a threshold tau. Then
//   FRR(tau) = P(intra-distance > tau)   — genuine device rejected,
//   FAR(tau) = P(inter-distance <= tau)  — impostor device accepted.
// The ROC sweep and the equal-error-rate (EER) operating point are the
// standard summary; a healthy PUF has intra/inter distributions separated
// enough that EER ~ 0 with a wide threshold margin.
#pragma once

#include <vector>

#include "crypto/bytes.hpp"

namespace neuropuls::common {
class ThreadPool;
}  // namespace neuropuls::common

namespace neuropuls::metrics {

struct RocPoint {
  double threshold = 0.0;  // fractional-HD acceptance threshold
  double far = 0.0;        // false acceptance rate
  double frr = 0.0;        // false rejection rate
};

/// Sweeps thresholds over [0, 0.5] in `steps` increments given samples of
/// genuine (intra) and impostor (inter) distances.
/// Throws std::invalid_argument when either sample set is empty.
std::vector<RocPoint> roc_curve(const std::vector<double>& intra_distances,
                                const std::vector<double>& inter_distances,
                                std::size_t steps = 50);

/// Equal error rate: the point where FAR ~= FRR (linear interpolation on
/// the sweep); also reports the threshold achieving it.
struct EerResult {
  double eer = 0.0;
  double threshold = 0.0;
};
EerResult equal_error_rate(const std::vector<double>& intra_distances,
                           const std::vector<double>& inter_distances);

/// Widest threshold window [lo, hi] with FAR == 0 and FRR == 0 on the
/// given samples (empty optional when none exists).
struct ZeroErrorWindow {
  bool exists = false;
  double low = 0.0;
  double high = 0.0;
};
ZeroErrorWindow zero_error_window(const std::vector<double>& intra_distances,
                                  const std::vector<double>& inter_distances);

/// Convenience: gathers intra samples (re-readings vs reference) and
/// inter samples (cross-device) from response sets. The O(N^2)
/// cross-device sweep fans out over `pool` (global pool when nullptr)
/// into precomputed slots, so the sample vectors are bit-identical to
/// the serial sweep at any thread count.
struct DistanceSamples {
  std::vector<double> intra;
  std::vector<double> inter;
};
DistanceSamples gather_distance_samples(
    const std::vector<crypto::Bytes>& references,
    const std::vector<std::vector<crypto::Bytes>>& rereads,
    common::ThreadPool* pool = nullptr);

}  // namespace neuropuls::metrics
