// Population-level PUF quality metrics (§II-A, §V).
//
// The quantities every PUF paper reports and gem5-style benchmarking
// (§V) asks the simulator to log:
//   * uniformity   — fraction of 1s in one response (ideal 0.5);
//   * uniqueness   — mean pairwise inter-device fractional HD (ideal 0.5);
//   * reliability  — 1 - mean intra-device fractional HD (ideal 1.0);
//   * bit aliasing — per-bit-position Shannon entropy across devices
//                    (Fig. 3's y-axis: 1.0 = no aliasing, 0.0 = the bit is
//                    identical on every device);
//   * min-entropy  — most-common-value estimator per bit position.
#pragma once

#include <vector>

#include "crypto/bytes.hpp"

namespace neuropuls::common {
class ThreadPool;
}  // namespace neuropuls::common

namespace neuropuls::metrics {

/// Fraction of set bits in a response.
double uniformity(crypto::ByteView response);

/// Mean pairwise fractional Hamming distance across devices' responses to
/// the same challenge. Throws std::invalid_argument with < 2 devices or
/// mismatched lengths.
///
/// The O(N^2) pair sweep fans out across `pool` (global pool when
/// nullptr) as balanced chunks of the linear pair-index space; chunk
/// boundaries and the reduction order depend only on the device count,
/// so the result is bit-identical at any thread count.
double uniqueness(const std::vector<crypto::Bytes>& device_responses,
                  common::ThreadPool* pool = nullptr);

/// 1 - mean fractional HD between repeated readings and the reference.
double reliability(const crypto::Bytes& reference,
                   const std::vector<crypto::Bytes>& readings);

/// Per-bit-position probability of a 1 across devices.
std::vector<double> bit_aliasing_probabilities(
    const std::vector<crypto::Bytes>& device_responses);

/// Binary Shannon entropy h(p) = -p log2 p - (1-p) log2 (1-p); h(0)=h(1)=0.
double binary_entropy(double p);

/// Per-bit-position aliasing entropy (Fig. 3's y-axis); mean over
/// positions is the scalar summary.
std::vector<double> bit_aliasing_entropy(
    const std::vector<crypto::Bytes>& device_responses);

/// Mean of bit_aliasing_entropy.
double mean_aliasing_entropy(
    const std::vector<crypto::Bytes>& device_responses);

/// Min-entropy per bit via the most-common-value estimator, averaged over
/// positions: -log2(max(p, 1-p)). Returns bits of min-entropy per
/// response bit (<= 1.0).
double min_entropy_per_bit(const std::vector<crypto::Bytes>& device_responses);

/// Lag-k autocorrelation of the bit sequence in [-1, 1]; near 0 for
/// random-looking strings.
double bit_autocorrelation(crypto::ByteView response, std::size_t lag);

/// One-line quality report used by benches and EXPERIMENTS.md tables.
struct PopulationReport {
  double uniformity_mean = 0.0;
  double uniqueness = 0.0;
  double reliability_mean = 0.0;
  double aliasing_entropy_mean = 0.0;
  double min_entropy = 0.0;
};

/// Builds the full report. `repeat_readings[d]` are re-readings of device
/// d's response for the reliability term (may be empty -> reliability 1).
PopulationReport population_report(
    const std::vector<crypto::Bytes>& device_responses,
    const std::vector<std::vector<crypto::Bytes>>& repeat_readings);

}  // namespace neuropuls::metrics
