#include "metrics/timing_leak.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "crypto/chacha20.hpp"

namespace neuropuls::metrics {

namespace {

using Clock = std::chrono::steady_clock;

double now_ns() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

struct ClassStats {
  std::size_t n = 0;
  double mean = 0.0;
  double m2 = 0.0;  // Welford sum of squared deviations

  void add(double x) noexcept {
    ++n;
    const double d = x - mean;
    mean += d / static_cast<double>(n);
    m2 += d * (x - mean);
  }
  double variance() const noexcept {
    return n > 1 ? m2 / static_cast<double>(n - 1) : 0.0;
  }
};

}  // namespace

bool variable_time_equal(crypto::ByteView a, crypto::ByteView b) noexcept {
  // Deliberately NOT constant time — the harness's positive control. Its
  // operands are never ctlint-annotated secrets, so the lint stays quiet.
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;  // the timing leak under test
  }
  return true;
}

TimingLeakReport measure_timing_leak(const TimingTarget& target,
                                     crypto::ByteView fixed_input,
                                     const TimingLeakConfig& config) {
  if (!target) {
    throw std::invalid_argument("measure_timing_leak: empty target");
  }
  if (fixed_input.empty()) {
    throw std::invalid_argument("measure_timing_leak: empty fixed input");
  }
  if (config.samples_per_class < 16) {
    throw std::invalid_argument("measure_timing_leak: too few samples");
  }
  if (config.crop_quantile <= 0.0 || config.crop_quantile > 1.0) {
    throw std::invalid_argument("measure_timing_leak: bad crop quantile");
  }

  const std::size_t len = fixed_input.size();
  const std::size_t total = 2 * config.samples_per_class;

  // Pre-generate the class schedule and ALL inputs into one arena walked
  // sequentially during measurement, so the two classes see identical
  // memory-access and branch patterns outside the target itself; the only
  // difference a leak-free target can show is input *content*.
  crypto::Bytes seed = crypto::bytes_of("np-timing-leak");
  crypto::append_u64_be(seed, config.seed);
  crypto::ChaChaDrbg rng(seed);

  std::vector<std::uint8_t> cls(total);
  for (std::size_t i = 0; i < total; ++i) cls[i] = i < total / 2 ? 0 : 1;
  // Fisher–Yates with DRBG draws.
  for (std::size_t i = total - 1; i > 0; --i) {
    const crypto::Bytes draw = rng.generate(8);
    const std::uint64_t j = crypto::get_u64_be(draw) % (i + 1);
    std::swap(cls[i], cls[j]);
  }

  crypto::Bytes arena(total * len);
  for (std::size_t i = 0; i < total; ++i) {
    if (cls[i] == 0) {
      std::copy(fixed_input.begin(), fixed_input.end(),
                arena.begin() + static_cast<std::ptrdiff_t>(i * len));
    } else {
      const crypto::Bytes draw = rng.generate(len);
      std::copy(draw.begin(), draw.end(),
                arena.begin() + static_cast<std::ptrdiff_t>(i * len));
    }
  }

  for (std::size_t i = 0; i < config.warmup; ++i) {
    target(crypto::ByteView(arena).subspan((i % total) * len, len));
  }

  std::vector<double> timings(total);
  for (std::size_t i = 0; i < total; ++i) {
    const crypto::ByteView input =
        crypto::ByteView(arena).subspan(i * len, len);
    const double t0 = now_ns();
    target(input);
    timings[i] = now_ns() - t0;
  }

  // Shared crop cutoff from the pooled distribution: outliers (interrupts,
  // migrations) hit both classes alike, and keeping them only inflates the
  // variance the t-test divides by.
  std::vector<double> pooled = timings;
  std::sort(pooled.begin(), pooled.end());
  const std::size_t cut_index = std::min(
      total - 1, static_cast<std::size_t>(config.crop_quantile *
                                          static_cast<double>(total)));
  const double cutoff = pooled[cut_index];

  ClassStats fixed_stats, rand_stats;
  for (std::size_t i = 0; i < total; ++i) {
    if (timings[i] > cutoff) continue;
    (cls[i] == 0 ? fixed_stats : rand_stats).add(timings[i]);
  }

  TimingLeakReport report;
  report.threshold = config.threshold;
  report.mean_fixed_ns = fixed_stats.mean;
  report.mean_random_ns = rand_stats.mean;
  report.used_fixed = fixed_stats.n;
  report.used_random = rand_stats.n;
  const double denom =
      fixed_stats.variance() /
          static_cast<double>(fixed_stats.n ? fixed_stats.n : 1) +
      rand_stats.variance() /
          static_cast<double>(rand_stats.n ? rand_stats.n : 1);
  report.t_statistic =
      denom > 0.0 ? (fixed_stats.mean - rand_stats.mean) / std::sqrt(denom)
                  : 0.0;
  report.leaking = std::abs(report.t_statistic) > config.threshold;
  return report;
}

}  // namespace neuropuls::metrics
