#include "metrics/special_functions.hpp"

#include <cmath>
#include <stdexcept>

namespace neuropuls::metrics {

namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-15;
constexpr double kTiny = 1e-300;

// Series representation of P(a, x): converges quickly for x < a + 1.
double gamma_p_series(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double term = sum;
  for (int i = 0; i < kMaxIterations; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * kEpsilon) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Continued-fraction representation of Q(a, x) (Lentz's algorithm):
// converges quickly for x >= a + 1.
double gamma_q_continued_fraction(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEpsilon) break;
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

}  // namespace

double igam(double a, double x) {
  if (a <= 0.0 || x < 0.0) {
    throw std::domain_error("igam: requires a > 0 and x >= 0");
  }
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_continued_fraction(a, x);
}

double igamc(double a, double x) {
  if (a <= 0.0 || x < 0.0) {
    throw std::domain_error("igamc: requires a > 0 and x >= 0");
  }
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_continued_fraction(a, x);
}

}  // namespace neuropuls::metrics
