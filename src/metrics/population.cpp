#include "metrics/population.hpp"

#include "common/parallel.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace neuropuls::metrics {

namespace {

void run_parallel(common::ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  if (pool != nullptr) {
    pool->parallel_for(n, fn);
  } else {
    common::parallel_for(n, fn);
  }
}

}  // namespace

double uniformity(crypto::ByteView response) {
  if (response.empty()) {
    throw std::invalid_argument("uniformity: empty response");
  }
  return static_cast<double>(crypto::popcount(response)) /
         (8.0 * static_cast<double>(response.size()));
}

namespace {

// Pairs (a, b), a < b, are ordered lexicographically and indexed by a
// linear pair index t in [0, n(n-1)/2). Anchor a owns the index range
// [S(a), S(a+1)) where S(a) = a(n-1) - a(a-1)/2 counts the pairs of all
// smaller anchors.
std::size_t pairs_before_anchor(std::size_t a, std::size_t n) {
  return a * (n - 1) - a * (a - 1) / 2;
}

// Inverts t -> anchor a (largest a with S(a) <= t): quadratic estimate
// via sqrt, then an exact fix-up walk for the rounding slop.
std::size_t anchor_of_pair_index(std::size_t t, std::size_t n) {
  const double nn = static_cast<double>(n);
  const double disc = (2.0 * nn - 1.0) * (2.0 * nn - 1.0) -
                      8.0 * static_cast<double>(t);
  double est = (2.0 * nn - 1.0 - std::sqrt(std::max(disc, 0.0))) / 2.0;
  auto a = static_cast<std::size_t>(std::max(est, 0.0));
  if (a >= n - 1) a = n - 2;
  while (a > 0 && pairs_before_anchor(a, n) > t) --a;
  while (a + 1 < n - 1 && pairs_before_anchor(a + 1, n) <= t) ++a;
  return a;
}

}  // namespace

double uniqueness(const std::vector<crypto::Bytes>& device_responses,
                  common::ThreadPool* pool) {
  const std::size_t devices = device_responses.size();
  if (devices < 2) {
    throw std::invalid_argument("uniqueness: need at least two devices");
  }
  const std::size_t pairs = devices * (devices - 1) / 2;
  // Per-anchor tasks are triangular (anchor 0 owns n-1 pairs, the last
  // anchor owns 1), so the first worker becomes the straggler. Instead
  // the linear pair-index space is cut into equal chunks. The chunk
  // count and boundaries depend only on the device count — never on the
  // thread count — and the chunk partial sums are reduced in fixed
  // chunk order, so the result is bit-identical at any thread count.
  const std::size_t chunks = std::min<std::size_t>(pairs, 128);
  std::vector<double> chunk_totals(chunks, 0.0);
  run_parallel(pool, chunks, [&](std::size_t c) {
    const std::size_t lo = pairs * c / chunks;
    const std::size_t hi = pairs * (c + 1) / chunks;
    if (lo >= hi) return;
    // One triangular inversion per chunk; then walk (a, b) forward.
    std::size_t a = anchor_of_pair_index(lo, devices);
    std::size_t b = a + 1 + (lo - pairs_before_anchor(a, devices));
    double total = 0.0;
    for (std::size_t t = lo; t < hi; ++t) {
      total += crypto::fractional_hamming_distance(device_responses[a],
                                                   device_responses[b]);
      if (++b == devices) {
        ++a;
        b = a + 1;
      }
    }
    chunk_totals[c] = total;
  });
  double total = 0.0;
  for (double chunk : chunk_totals) total += chunk;
  return total / static_cast<double>(pairs);
}

double reliability(const crypto::Bytes& reference,
                   const std::vector<crypto::Bytes>& readings) {
  if (readings.empty()) return 1.0;
  double total = 0.0;
  for (const auto& r : readings) {
    total += crypto::fractional_hamming_distance(reference, r);
  }
  return 1.0 - total / static_cast<double>(readings.size());
}

std::vector<double> bit_aliasing_probabilities(
    const std::vector<crypto::Bytes>& device_responses) {
  if (device_responses.empty()) {
    throw std::invalid_argument("bit_aliasing: no devices");
  }
  const std::size_t bits = device_responses.front().size() * 8;
  std::vector<double> p(bits, 0.0);
  for (const auto& response : device_responses) {
    if (response.size() * 8 != bits) {
      throw std::invalid_argument("bit_aliasing: length mismatch");
    }
    for (std::size_t b = 0; b < bits; ++b) {
      p[b] += (response[b / 8] >> (7 - b % 8)) & 1;
    }
  }
  for (auto& v : p) v /= static_cast<double>(device_responses.size());
  return p;
}

double binary_entropy(double p) {
  if (p <= 0.0 || p >= 1.0) return 0.0;
  return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

std::vector<double> bit_aliasing_entropy(
    const std::vector<crypto::Bytes>& device_responses) {
  auto probs = bit_aliasing_probabilities(device_responses);
  for (auto& v : probs) v = binary_entropy(v);
  return probs;
}

double mean_aliasing_entropy(
    const std::vector<crypto::Bytes>& device_responses) {
  const auto h = bit_aliasing_entropy(device_responses);
  double sum = 0.0;
  for (double v : h) sum += v;
  return sum / static_cast<double>(h.size());
}

double min_entropy_per_bit(
    const std::vector<crypto::Bytes>& device_responses) {
  const auto probs = bit_aliasing_probabilities(device_responses);
  double sum = 0.0;
  for (double p : probs) {
    const double p_max = std::max(p, 1.0 - p);
    sum += -std::log2(p_max);
  }
  return sum / static_cast<double>(probs.size());
}

double bit_autocorrelation(crypto::ByteView response, std::size_t lag) {
  const std::size_t bits = response.size() * 8;
  if (lag == 0 || lag >= bits) {
    throw std::invalid_argument("bit_autocorrelation: bad lag");
  }
  auto bit_at = [&](std::size_t i) {
    return (response[i / 8] >> (7 - i % 8)) & 1;
  };
  // Map bits to +/-1 and correlate.
  double sum = 0.0;
  for (std::size_t i = 0; i + lag < bits; ++i) {
    sum += (bit_at(i) ? 1.0 : -1.0) * (bit_at(i + lag) ? 1.0 : -1.0);
  }
  return sum / static_cast<double>(bits - lag);
}

PopulationReport population_report(
    const std::vector<crypto::Bytes>& device_responses,
    const std::vector<std::vector<crypto::Bytes>>& repeat_readings) {
  PopulationReport report;
  report.uniqueness = uniqueness(device_responses);
  report.aliasing_entropy_mean = mean_aliasing_entropy(device_responses);
  report.min_entropy = min_entropy_per_bit(device_responses);

  double uni = 0.0;
  for (const auto& r : device_responses) uni += uniformity(r);
  report.uniformity_mean = uni / static_cast<double>(device_responses.size());

  if (!repeat_readings.empty()) {
    if (repeat_readings.size() != device_responses.size()) {
      throw std::invalid_argument(
          "population_report: readings/devices mismatch");
    }
    double rel = 0.0;
    for (std::size_t d = 0; d < device_responses.size(); ++d) {
      rel += reliability(device_responses[d], repeat_readings[d]);
    }
    report.reliability_mean = rel / static_cast<double>(device_responses.size());
  } else {
    report.reliability_mean = 1.0;
  }
  return report;
}

}  // namespace neuropuls::metrics
