#include "metrics/nist.hpp"

#include <array>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "metrics/special_functions.hpp"

namespace neuropuls::metrics {

namespace {

double std_normal_cdf(double x) {
  return 0.5 * std::erfc(-x / std::numbers::sqrt2);
}

void require_bits(const Bits& bits, std::size_t minimum, const char* test) {
  if (bits.size() < minimum) {
    throw std::invalid_argument(std::string(test) +
                                ": sequence too short for this test");
  }
}

NistResult make_result(const char* name, double p) {
  return NistResult{name, p, p >= kNistAlpha};
}

// psi-squared statistic over overlapping (cyclic) m-bit patterns, used by
// both the serial and approximate-entropy tests.
double psi_squared(const Bits& bits, unsigned m) {
  if (m == 0) return 0.0;
  const std::size_t n = bits.size();
  std::vector<std::uint32_t> counts(1u << m, 0);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t pattern = 0;
    for (unsigned j = 0; j < m; ++j) {
      pattern = (pattern << 1) | (bits[(i + j) % n] & 1);
    }
    counts[pattern]++;
  }
  double sum = 0.0;
  for (std::uint32_t c : counts) {
    sum += static_cast<double>(c) * static_cast<double>(c);
  }
  return (sum * static_cast<double>(1u << m)) / static_cast<double>(n) -
         static_cast<double>(n);
}

}  // namespace

Bits bits_from_bytes(crypto::ByteView bytes) {
  Bits bits;
  bits.reserve(bytes.size() * 8);
  for (std::uint8_t byte : bytes) {
    for (int b = 7; b >= 0; --b) {
      bits.push_back((byte >> b) & 1);
    }
  }
  return bits;
}

NistResult nist_frequency(const Bits& bits) {
  require_bits(bits, 100, "frequency");
  double sum = 0.0;
  for (std::uint8_t b : bits) sum += b ? 1.0 : -1.0;
  const double s_obs =
      std::fabs(sum) / std::sqrt(static_cast<double>(bits.size()));
  return make_result("frequency", std::erfc(s_obs / std::numbers::sqrt2));
}

NistResult nist_block_frequency(const Bits& bits, std::size_t block_size) {
  require_bits(bits, 100, "block-frequency");
  if (block_size == 0) {
    throw std::invalid_argument("block-frequency: zero block size");
  }
  const std::size_t blocks = bits.size() / block_size;
  if (blocks == 0) {
    throw std::invalid_argument("block-frequency: block larger than data");
  }
  double chi2 = 0.0;
  for (std::size_t b = 0; b < blocks; ++b) {
    double ones = 0.0;
    for (std::size_t i = 0; i < block_size; ++i) {
      ones += bits[b * block_size + i];
    }
    const double pi = ones / static_cast<double>(block_size);
    chi2 += (pi - 0.5) * (pi - 0.5);
  }
  chi2 *= 4.0 * static_cast<double>(block_size);
  return make_result("block-frequency",
                     igamc(static_cast<double>(blocks) / 2.0, chi2 / 2.0));
}

NistResult nist_runs(const Bits& bits) {
  require_bits(bits, 100, "runs");
  const std::size_t n = bits.size();
  double ones = 0.0;
  for (std::uint8_t b : bits) ones += b;
  const double pi = ones / static_cast<double>(n);
  // Prerequisite monobit check: if it fails, the runs test is undefined
  // and reported as a fail (p = 0), per the SP 800-22 procedure.
  if (std::fabs(pi - 0.5) >= 2.0 / std::sqrt(static_cast<double>(n))) {
    return make_result("runs", 0.0);
  }
  std::size_t v = 1;
  for (std::size_t i = 1; i < n; ++i) v += (bits[i] != bits[i - 1]);
  const double expected = 2.0 * static_cast<double>(n) * pi * (1.0 - pi);
  const double p =
      std::erfc(std::fabs(static_cast<double>(v) - expected) /
                (2.0 * std::sqrt(2.0 * static_cast<double>(n)) * pi *
                 (1.0 - pi)));
  return make_result("runs", p);
}

NistResult nist_longest_run(const Bits& bits) {
  require_bits(bits, 128, "longest-run");
  // M = 8 variant: categories v <= 1, 2, 3, >= 4.
  constexpr std::size_t kBlock = 8;
  constexpr std::array<double, 4> kPi = {0.2148, 0.3672, 0.2305, 0.1875};
  const std::size_t blocks = bits.size() / kBlock;
  std::array<double, 4> v{};
  for (std::size_t b = 0; b < blocks; ++b) {
    std::size_t longest = 0, current = 0;
    for (std::size_t i = 0; i < kBlock; ++i) {
      current = bits[b * kBlock + i] ? current + 1 : 0;
      longest = std::max(longest, current);
    }
    if (longest <= 1) v[0] += 1.0;
    else if (longest == 2) v[1] += 1.0;
    else if (longest == 3) v[2] += 1.0;
    else v[3] += 1.0;
  }
  double chi2 = 0.0;
  const double N = static_cast<double>(blocks);
  for (std::size_t k = 0; k < 4; ++k) {
    const double expected = N * kPi[k];
    chi2 += (v[k] - expected) * (v[k] - expected) / expected;
  }
  return make_result("longest-run", igamc(3.0 / 2.0, chi2 / 2.0));
}

NistResult nist_cusum(const Bits& bits) {
  require_bits(bits, 100, "cusum");
  const std::size_t n = bits.size();
  double s = 0.0, z = 0.0;
  for (std::uint8_t b : bits) {
    s += b ? 1.0 : -1.0;
    z = std::max(z, std::fabs(s));
  }
  if (z == 0.0) return make_result("cusum", 0.0);
  const double sqrt_n = std::sqrt(static_cast<double>(n));
  const double nd = static_cast<double>(n);

  double sum1 = 0.0;
  for (long k = static_cast<long>(std::floor((-nd / z + 1.0) / 4.0));
       k <= static_cast<long>(std::floor((nd / z - 1.0) / 4.0)); ++k) {
    sum1 += std_normal_cdf((4.0 * k + 1.0) * z / sqrt_n) -
            std_normal_cdf((4.0 * k - 1.0) * z / sqrt_n);
  }
  double sum2 = 0.0;
  for (long k = static_cast<long>(std::floor((-nd / z - 3.0) / 4.0));
       k <= static_cast<long>(std::floor((nd / z - 1.0) / 4.0)); ++k) {
    sum2 += std_normal_cdf((4.0 * k + 3.0) * z / sqrt_n) -
            std_normal_cdf((4.0 * k + 1.0) * z / sqrt_n);
  }
  return make_result("cusum", 1.0 - sum1 + sum2);
}

NistResult nist_serial(const Bits& bits, unsigned m) {
  require_bits(bits, 100, "serial");
  if (m < 2 || m > 16) {
    throw std::invalid_argument("serial: m must be in [2, 16]");
  }
  const double psi_m = psi_squared(bits, m);
  const double psi_m1 = psi_squared(bits, m - 1);
  const double delta = psi_m - psi_m1;
  const double p =
      igamc(std::pow(2.0, static_cast<double>(m) - 2.0), delta / 2.0);
  return make_result("serial", p);
}

NistResult nist_approximate_entropy(const Bits& bits, unsigned m) {
  require_bits(bits, 100, "approximate-entropy");
  if (m < 1 || m > 16) {
    throw std::invalid_argument("approximate-entropy: m must be in [1, 16]");
  }
  const std::size_t n = bits.size();
  auto phi = [&](unsigned mm) {
    std::vector<std::uint32_t> counts(1u << mm, 0);
    for (std::size_t i = 0; i < n; ++i) {
      std::uint32_t pattern = 0;
      for (unsigned j = 0; j < mm; ++j) {
        pattern = (pattern << 1) | (bits[(i + j) % n] & 1);
      }
      counts[pattern]++;
    }
    double sum = 0.0;
    for (std::uint32_t c : counts) {
      if (c == 0) continue;
      const double ci = static_cast<double>(c) / static_cast<double>(n);
      sum += ci * std::log(ci);
    }
    return sum;
  };
  const double ap_en = phi(m) - phi(m + 1);
  const double chi2 =
      2.0 * static_cast<double>(n) * (std::log(2.0) - ap_en);
  const double p =
      igamc(std::pow(2.0, static_cast<double>(m) - 1.0), chi2 / 2.0);
  return make_result("approximate-entropy", p);
}

std::vector<NistResult> nist_suite(const Bits& bits) {
  return {
      nist_frequency(bits),          nist_block_frequency(bits),
      nist_runs(bits),               nist_longest_run(bits),
      nist_cusum(bits),              nist_serial(bits),
      nist_approximate_entropy(bits),
  };
}

double nist_pass_fraction(const Bits& bits) {
  const auto results = nist_suite(bits);
  double passed = 0.0;
  for (const auto& r : results) passed += r.passed ? 1.0 : 0.0;
  return passed / static_cast<double>(results.size());
}

}  // namespace neuropuls::metrics
