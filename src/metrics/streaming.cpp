#include "metrics/streaming.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <tuple>

namespace neuropuls::metrics {

GkQuantileSketch::GkQuantileSketch(double eps) : eps_(eps) {
  if (!(eps > 0.0) || eps >= 1.0) {
    throw std::invalid_argument("GkQuantileSketch: eps must be in (0, 1)");
  }
  // Batch inserts in blocks of ~1/(2 eps): one sort + sweep amortises
  // the per-element binary search and keeps compress() off the per-add
  // hot path.
  buffer_limit_ = std::max<std::size_t>(
      16, static_cast<std::size_t>(std::ceil(1.0 / (2.0 * eps_))));
}

void GkQuantileSketch::add(double value) {
  buffer_.push_back(value);
  if (buffer_.size() >= buffer_limit_) {
    flush();
    compress();
  }
}

void GkQuantileSketch::insert_sorted(double value) {
  // GK insert: place (value, 1, floor(2 eps n)) before the first tuple
  // with a larger value; delta = 0 at either end of the summary.
  const auto it = std::upper_bound(
      tuples_.begin(), tuples_.end(), value,
      [](double v, const Tuple& t) { return v < t.value; });
  std::uint64_t delta = 0;
  if (it != tuples_.begin() && it != tuples_.end()) {
    delta = static_cast<std::uint64_t>(
        std::floor(2.0 * eps_ * static_cast<double>(count_)));
  }
  tuples_.insert(it, Tuple{value, 1, delta});
  ++count_;
}

void GkQuantileSketch::flush() const {
  if (buffer_.empty()) return;
  std::sort(buffer_.begin(), buffer_.end());
  for (double v : buffer_) {
    const_cast<GkQuantileSketch*>(this)->insert_sorted(v);
  }
  buffer_.clear();
}

void GkQuantileSketch::compress() {
  flush();
  if (tuples_.size() < 2) return;
  const auto threshold = static_cast<std::uint64_t>(
      std::floor(2.0 * eps_ * static_cast<double>(count_)));
  // Right-to-left sweep merging tuple i into its successor when the
  // combined band g_i + g_{i+1} + delta_{i+1} still fits under 2 eps n.
  std::vector<Tuple> kept;
  kept.reserve(tuples_.size());
  Tuple carry = tuples_.back();
  for (std::size_t i = tuples_.size() - 1; i-- > 0;) {
    const Tuple& t = tuples_[i];
    if (i != 0 && t.g + carry.g + carry.delta <= threshold) {
      carry.g += t.g;  // absorb t into its right neighbour
    } else {
      kept.push_back(carry);
      carry = t;
    }
  }
  kept.push_back(carry);
  std::reverse(kept.begin(), kept.end());
  tuples_ = std::move(kept);
}

void GkQuantileSketch::merge(const GkQuantileSketch& other) {
  flush();
  other.flush();
  std::vector<Tuple> merged;
  merged.reserve(tuples_.size() + other.tuples_.size());
  std::merge(tuples_.begin(), tuples_.end(), other.tuples_.begin(),
             other.tuples_.end(), std::back_inserter(merged),
             [](const Tuple& a, const Tuple& b) {
               return std::tie(a.value, a.g, a.delta) <
                      std::tie(b.value, b.g, b.delta);
             });
  tuples_ = std::move(merged);
  count_ += other.count_;
}

double GkQuantileSketch::quantile(double q) const {
  flush();
  if (tuples_.empty()) {
    throw std::invalid_argument("GkQuantileSketch: empty sketch");
  }
  if (q <= 0.0) return tuples_.front().value;
  if (q >= 1.0) return tuples_.back().value;
  const double rank = q * static_cast<double>(count_);
  const double margin = eps_ * static_cast<double>(count_);
  // Return the last tuple whose worst-case max rank stays within
  // rank + margin; rmax(i) = rmin(i) + delta(i).
  std::uint64_t rmin = 0;
  double best = tuples_.front().value;
  for (const Tuple& t : tuples_) {
    rmin += t.g;
    const double rmax = static_cast<double>(rmin + t.delta);
    if (rmax > rank + margin) break;
    best = t.value;
  }
  return best;
}

std::size_t GkQuantileSketch::tuples() const {
  flush();
  return tuples_.size();
}

}  // namespace neuropuls::metrics
