// NIST SP 800-22 statistical test suite (subset).
//
// §II-A reports the demonstrated photonic PUF achieved a "good score for
// various NIST tests"; §V asks the simulator to "assess entropy,
// uniqueness, and response uniformity". This implements the seven SP
// 800-22 tests that are meaningful at PUF-response lengths (10^3–10^5
// bits): frequency, block frequency, runs, longest-run-of-ones,
// cumulative sums, serial, and approximate entropy. Each returns a
// p-value; the conventional pass threshold is alpha = 0.01.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/bytes.hpp"

namespace neuropuls::metrics {

/// One bit per element (0/1), matching ecc::BitVec's layout.
using Bits = std::vector<std::uint8_t>;

/// Unpacks a byte buffer MSB-first for the tests below.
Bits bits_from_bytes(crypto::ByteView bytes);

struct NistResult {
  std::string test;
  double p_value;
  bool passed;  // p_value >= alpha
};

inline constexpr double kNistAlpha = 0.01;

/// 2.1 Frequency (monobit). Requires >= 100 bits.
NistResult nist_frequency(const Bits& bits);

/// 2.2 Block frequency with block size M. Requires >= 100 bits.
NistResult nist_block_frequency(const Bits& bits, std::size_t block_size = 32);

/// 2.3 Runs. Requires >= 100 bits.
NistResult nist_runs(const Bits& bits);

/// 2.4 Longest run of ones (M = 8 variant). Requires >= 128 bits.
NistResult nist_longest_run(const Bits& bits);

/// 2.13 Cumulative sums (forward mode). Requires >= 100 bits.
NistResult nist_cusum(const Bits& bits);

/// 2.11 Serial test with pattern length m (returns the first p-value).
NistResult nist_serial(const Bits& bits, unsigned m = 3);

/// 2.12 Approximate entropy with pattern length m.
NistResult nist_approximate_entropy(const Bits& bits, unsigned m = 3);

/// Runs the whole subset and returns per-test results.
std::vector<NistResult> nist_suite(const Bits& bits);

/// Fraction of suite tests passed (1.0 = all).
double nist_pass_fraction(const Bits& bits);

}  // namespace neuropuls::metrics
