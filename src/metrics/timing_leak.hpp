// Dudect-style timing-leak detector (Reparaz, Balasch, Verbauwhede:
// "dude, is my code constant time?").
//
// The static layer (`tools/ctlint`) and the taint type
// (`common/secret.hpp`) enforce the *form* of constant-time code; this
// harness checks the *behaviour*: run a target operation over two input
// classes — a fixed buffer vs fresh random bytes — in randomised
// interleaved order, and apply Welch's t-test to the two timing
// populations. A data-independent implementation keeps |t| small no
// matter how many samples accumulate; a secret-dependent branch or
// early-exit comparison drives |t| off to infinity with sample count.
//
// Used by `tests/metrics/test_timing_leak.cpp` and
// `bench/bench_timing_leak.cpp` against `crypto::ct_equal`, AES-CTR+CMAC
// tag verification, and HMAC-SHA256 verification — plus the deliberately
// variable-time `variable_time_equal` control below, which the harness
// must flag (a leak detector that never fires is just a rubber stamp).
#pragma once

#include <cstdint>
#include <functional>

#include "crypto/bytes.hpp"

namespace neuropuls::metrics {

struct TimingLeakConfig {
  /// Timed invocations per class (the test interleaves 2x this total).
  std::size_t samples_per_class = 20000;
  /// Untimed warm-up invocations discarded before measurement.
  std::size_t warmup = 256;
  /// |t| above this reports a leak. 4.5 is the dudect convention
  /// (p < ~3.4e-6 under H0, so false alarms are negligible even over
  /// many CI runs).
  double threshold = 4.5;
  /// Slowest pooled fraction cropped before the test (both classes, one
  /// shared cutoff) — removes scheduler/interrupt outliers, which are
  /// class-independent and only mask real effects.
  double crop_quantile = 0.95;
  /// Seed for the class schedule and the random-class inputs.
  std::uint64_t seed = 1;
};

struct TimingLeakReport {
  double t_statistic = 0.0;   // Welch t, fixed minus random class
  double mean_fixed_ns = 0.0;
  double mean_random_ns = 0.0;
  std::size_t used_fixed = 0;   // samples surviving the crop
  std::size_t used_random = 0;
  double threshold = 0.0;
  bool leaking = false;  // |t| > threshold
};

/// The operation under test. Called once per sample with either the fixed
/// buffer or a fresh random buffer of the same length; any secret state it
/// compares against should be captured in the closure.
using TimingTarget = std::function<void(crypto::ByteView input)>;

/// Measures `target` over the two input classes. `fixed_input` defines the
/// fixed class (typically the one value that matches the captured secret,
/// so class separation maps onto match/mismatch paths) and its length sets
/// the random-class buffer length.
TimingLeakReport measure_timing_leak(const TimingTarget& target,
                                     crypto::ByteView fixed_input,
                                     const TimingLeakConfig& config = {});

/// Deliberately variable-time comparator: early-exits on the first
/// mismatching byte. Exists ONLY as the positive control for this harness
/// and must never be called on secrets — which ctlint enforces for
/// annotated buffers.
bool variable_time_equal(crypto::ByteView a, crypto::ByteView b) noexcept;

}  // namespace neuropuls::metrics
