#include "metrics/identification.hpp"

#include "common/parallel.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace neuropuls::metrics {

namespace {

double fraction_above(const std::vector<double>& samples, double threshold) {
  double n = 0.0;
  for (double s : samples) n += (s > threshold);
  return n / static_cast<double>(samples.size());
}

double fraction_at_or_below(const std::vector<double>& samples,
                            double threshold) {
  double n = 0.0;
  for (double s : samples) n += (s <= threshold);
  return n / static_cast<double>(samples.size());
}

void require_samples(const std::vector<double>& intra,
                     const std::vector<double>& inter) {
  if (intra.empty() || inter.empty()) {
    throw std::invalid_argument("identification: empty sample set");
  }
}

}  // namespace

std::vector<RocPoint> roc_curve(const std::vector<double>& intra_distances,
                                const std::vector<double>& inter_distances,
                                std::size_t steps) {
  require_samples(intra_distances, inter_distances);
  if (steps < 2) {
    throw std::invalid_argument("roc_curve: need at least two steps");
  }
  std::vector<RocPoint> curve;
  curve.reserve(steps + 1);
  for (std::size_t i = 0; i <= steps; ++i) {
    RocPoint point;
    point.threshold = 0.5 * static_cast<double>(i) / static_cast<double>(steps);
    point.frr = fraction_above(intra_distances, point.threshold);
    point.far = fraction_at_or_below(inter_distances, point.threshold);
    curve.push_back(point);
  }
  return curve;
}

EerResult equal_error_rate(const std::vector<double>& intra_distances,
                           const std::vector<double>& inter_distances) {
  const auto curve = roc_curve(intra_distances, inter_distances, 200);
  // FRR decreases with threshold, FAR increases; find the crossing.
  EerResult best;
  double best_gap = 1e9;
  for (const auto& point : curve) {
    const double gap = std::fabs(point.far - point.frr);
    if (gap < best_gap) {
      best_gap = gap;
      best.eer = 0.5 * (point.far + point.frr);
      best.threshold = point.threshold;
    }
  }
  return best;
}

ZeroErrorWindow zero_error_window(const std::vector<double>& intra_distances,
                                  const std::vector<double>& inter_distances) {
  require_samples(intra_distances, inter_distances);
  const double max_intra =
      *std::max_element(intra_distances.begin(), intra_distances.end());
  const double min_inter =
      *std::min_element(inter_distances.begin(), inter_distances.end());
  ZeroErrorWindow window;
  if (max_intra < min_inter) {
    window.exists = true;
    window.low = max_intra;
    window.high = min_inter;
  }
  return window;
}

DistanceSamples gather_distance_samples(
    const std::vector<crypto::Bytes>& references,
    const std::vector<std::vector<crypto::Bytes>>& rereads,
    common::ThreadPool* pool) {
  const std::size_t devices = references.size();
  if (devices != rereads.size() || references.empty()) {
    throw std::invalid_argument(
        "gather_distance_samples: references/rereads mismatch");
  }
  // Prefix offsets per device keep every sample in the same slot the
  // former serial double loop produced it in, so the fan-out below is
  // bit-identical at any thread count.
  std::vector<std::size_t> intra_offset(devices + 1, 0);
  std::vector<std::size_t> inter_offset(devices + 1, 0);
  for (std::size_t d = 0; d < devices; ++d) {
    intra_offset[d + 1] = intra_offset[d] + rereads[d].size();
    inter_offset[d + 1] = inter_offset[d] + (devices - d - 1);
  }
  DistanceSamples samples;
  samples.intra.resize(intra_offset[devices]);
  samples.inter.resize(inter_offset[devices]);
  auto fill_device = [&](std::size_t d) {
    std::size_t slot = intra_offset[d];
    for (const auto& reading : rereads[d]) {
      samples.intra[slot++] =
          crypto::fractional_hamming_distance(references[d], reading);
    }
    slot = inter_offset[d];
    for (std::size_t other = d + 1; other < devices; ++other) {
      samples.inter[slot++] = crypto::fractional_hamming_distance(
          references[d], references[other]);
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(devices, fill_device);
  } else {
    common::parallel_for(devices, fill_device);
  }
  return samples;
}

}  // namespace neuropuls::metrics
