// Special functions needed by the NIST SP 800-22 statistical tests:
// the regularized incomplete gamma functions P(a,x) and Q(a,x).
// Implementation follows the classic series/continued-fraction split
// (Numerical Recipes / Cephes style), accurate to ~1e-12 over the ranges
// the tests exercise.
#pragma once

namespace neuropuls::metrics {

/// Regularized lower incomplete gamma P(a, x) = gamma(a,x)/Gamma(a).
/// Requires a > 0, x >= 0; throws std::domain_error otherwise.
double igam(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double igamc(double a, double x);

}  // namespace neuropuls::metrics
