// Streaming population estimators for fleet-scale runs (ROADMAP item 3).
//
// The O(N^2) pairwise sweeps in population.hpp are exact but sized for
// bench populations of a few hundred devices. A million-device campaign
// needs bounded-memory equivalents:
//
//   * ReservoirSampler — Vitter's Algorithm R over an unbounded stream,
//     seeded and fully deterministic for a fixed (seed, insertion order).
//     The fleet layer samples device *responses* into a reservoir and
//     runs the exact pairwise metrics on the sample.
//   * GkQuantileSketch — Greenwald–Khanna epsilon-approximate quantile
//     summary. Mergeable: worker-local sketches combine into one fleet
//     sketch. After k-way merge of same-eps sketches the rank error is
//     bounded by 2*eps (merge keeps every tuple; only add()/compress()
//     discard information).
//   * MeanAccumulator — exact streaming mean/count, mergeable.
//   * hash_sample — order-independent Bernoulli selection: a device is
//     in the sample iff a keyed mix of (seed, id) falls under the rate
//     threshold. Unlike a reservoir, the selected *set* is independent
//     of iteration order, so parallel workers agree without
//     coordination.
#pragma once

#include <cstdint>
#include <vector>

namespace neuropuls::metrics {

/// SplitMix64 step — the stream generator behind the seeded samplers.
/// Public because tests reproduce sampler decisions from it.
inline std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit finalizer (same avalanche core as splitmix64).
inline std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Order-independent Bernoulli(rate) selection of `id` under `seed`.
/// Every worker that evaluates the same (seed, id, rate) gets the same
/// answer, so a parallel sweep selects a schedule-independent set.
inline bool hash_sample(std::uint64_t seed, std::uint64_t id,
                        double rate) noexcept {
  if (rate >= 1.0) return true;
  if (rate <= 0.0) return false;
  const std::uint64_t h = mix64(seed ^ (id * 0x9e3779b97f4a7c15ULL));
  // Top 53 bits -> uniform double in [0, 1).
  const double u =
      static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < rate;
}

/// Vitter's Algorithm R: a uniform sample of `capacity` items from a
/// stream of unknown length. Deterministic for a fixed seed and
/// insertion order; O(capacity) memory regardless of stream length.
template <typename T>
class ReservoirSampler {
 public:
  ReservoirSampler(std::size_t capacity, std::uint64_t seed)
      : capacity_(capacity), state_(seed) {
    sample_.reserve(capacity_);
  }

  void add(T value) {
    ++count_;
    if (sample_.size() < capacity_) {
      sample_.push_back(std::move(value));
      return;
    }
    // Replace slot j with probability capacity/count: draw j uniform in
    // [0, count) and keep the newcomer iff j lands inside the reservoir.
    const std::uint64_t j = bounded(count_);
    if (j < capacity_) {
      sample_[static_cast<std::size_t>(j)] = std::move(value);
    }
  }

  const std::vector<T>& sample() const noexcept { return sample_; }
  std::uint64_t count() const noexcept { return count_; }
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  // Debiased uniform draw in [0, bound) via rejection (Lemire's method
  // without the multiply shortcut: reject the ragged top interval).
  std::uint64_t bounded(std::uint64_t bound) {
    const std::uint64_t limit = ~std::uint64_t{0} - ~std::uint64_t{0} % bound;
    std::uint64_t draw = splitmix64_next(state_);
    while (draw >= limit) draw = splitmix64_next(state_);
    return draw % bound;
  }

  std::size_t capacity_;
  std::uint64_t state_;
  std::uint64_t count_ = 0;
  std::vector<T> sample_;
};

/// Greenwald–Khanna epsilon-approximate quantile summary.
///
/// quantile(q) returns a value whose rank is within eps*count of
/// q*count for a sketch built by add() alone. merge() concatenates the
/// tuple lists without compressing, so merging is associative (the
/// merged tuple multiset is order-independent) and k-way merges of
/// same-eps sketches stay within 2*eps rank error; call compress()
/// afterwards to restore O((1/eps) log(eps n)) memory.
class GkQuantileSketch {
 public:
  explicit GkQuantileSketch(double eps);

  void add(double value);

  /// q in [0, 1]. Flushes the insert buffer. Throws on an empty sketch.
  double quantile(double q) const;

  /// Folds `other`'s tuples into this sketch (both buffers flushed).
  /// Associative and commutative; does not compress.
  void merge(const GkQuantileSketch& other);

  /// Re-establishes the space bound after merges. Rank error grows by
  /// at most eps per call on a merged sketch (documented bound after
  /// one merge round + one compress: 2*eps).
  void compress();

  std::uint64_t count() const noexcept { return count_ + buffer_.size(); }
  double eps() const noexcept { return eps_; }

  /// Number of stored tuples (after flushing) — memory footprint probe.
  std::size_t tuples() const;

 private:
  struct Tuple {
    double value;
    std::uint64_t g;      // rmin(i) - rmin(i-1)
    std::uint64_t delta;  // rmax(i) - rmin(i)
  };

  void flush() const;
  void insert_sorted(double value);

  double eps_;
  std::size_t buffer_limit_;
  // add() buffers then bulk-inserts; quantile() is logically const, so
  // the buffered state is mutable.
  mutable std::vector<double> buffer_;
  mutable std::vector<Tuple> tuples_;
  mutable std::uint64_t count_ = 0;
};

/// Exact streaming mean, mergeable across workers.
class MeanAccumulator {
 public:
  void add(double value) noexcept {
    sum_ += value;
    ++count_;
  }
  void merge(const MeanAccumulator& other) noexcept {
    sum_ += other.sum_;
    count_ += other.count_;
  }
  double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  std::uint64_t count() const noexcept { return count_; }

 private:
  double sum_ = 0.0;
  std::uint64_t count_ = 0;
};

}  // namespace neuropuls::metrics
