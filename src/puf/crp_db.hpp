// Challenge–response-pair database — the verifier-side storage of the
// classical Suh/Devadas authentication scheme (§III-A's baseline).
//
// The paper's argument for HSC-IoT is scalability: "existing strategies
// require the Verifier to store a large database of CRPs for each device
// ... this protocol only needs one CRP to be known by the Verifier at any
// point." This class implements the heavyweight baseline so that
// `bench/bench_auth` can measure the storage/lookup gap quantitatively,
// including one-time-use semantics (each CRP is consumed at
// authentication to prevent replay).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "crypto/chacha20.hpp"
#include "crypto/siphash.hpp"
#include "puf/puf.hpp"

namespace neuropuls::puf {

struct Crp {
  Challenge challenge;
  Response response;
};

namespace detail {

/// Transparent SipHash-2-4 hasher over raw challenge bytes: the CRP index
/// hashes the challenge buffer directly instead of materialising a hex
/// string per insert/lookup (half the key storage, zero encode work). The
/// key is a fixed public constant — the index is verifier-local simulation
/// state, not an adversarial-input hash table.
struct ChallengeHash {
  using is_transparent = void;
  std::size_t operator()(crypto::ByteView bytes) const noexcept {
    static constexpr std::array<std::uint8_t, 16> kKey = {
        'n', 'p', '-', 'c', 'r', 'p', '-', 'i',
        'n', 'd', 'e', 'x', '-', 'k', 'e', 'y'};
    return static_cast<std::size_t>(crypto::siphash24(kKey, bytes));
  }
};

/// Transparent byte-wise equality matching ChallengeHash (Challenge and
/// ByteView arguments both land on the ByteView overload).
struct ChallengeEqual {
  using is_transparent = void;
  bool operator()(crypto::ByteView a, crypto::ByteView b) const noexcept {
    return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }
};

}  // namespace detail

/// Per-CRP health counters maintained by the verifier: authentication
/// outcomes against this CRP. A run of consecutive failures marks the
/// CRP quarantined — it stops being served by take()/lookup() (the
/// response may be rotting on a degraded device, or the pair may be under
/// active attack) until evicted or the database is re-enrolled.
struct CrpHealth {
  std::uint32_t successes = 0;
  std::uint32_t failures = 0;
  std::uint32_t consecutive_failures = 0;
  bool quarantined = false;
};

class CrpDatabase {
 public:
  /// Enrolls `count` CRPs by driving the PUF with challenges from `rng`.
  /// Each response is majority-voted over `readings` evaluations.
  void enroll(Puf& puf, std::size_t count, crypto::ChaChaDrbg& rng,
              unsigned readings = 5);

  /// Inserts one externally produced CRP.
  void insert(Crp crp);

  /// Pops an unused, non-quarantined CRP for an authentication round
  /// (one-time use). Returns std::nullopt when no healthy CRP remains —
  /// the classic operational limit of CRP-database schemes, reached
  /// earlier on a degrading device.
  std::optional<Crp> take();

  /// Looks up the enrolled response for a challenge without consuming it.
  /// Quarantined CRPs are not served.
  std::optional<Response> lookup(const Challenge& challenge) const;

  /// Consecutive failures at which a CRP is quarantined (default 3).
  void set_quarantine_threshold(std::uint32_t threshold) noexcept {
    quarantine_threshold_ = threshold == 0 ? 1 : threshold;
  }

  /// Records an authentication outcome against a stored CRP. Unknown
  /// challenges are ignored (the CRP may have been consumed/evicted).
  /// A success resets the consecutive-failure run; a failure extends it
  /// and quarantines the CRP at the threshold.
  void record_success(const Challenge& challenge);
  void record_failure(const Challenge& challenge);

  /// Health counters for a stored challenge.
  std::optional<CrpHealth> health(const Challenge& challenge) const;

  /// Number of currently quarantined CRPs.
  std::size_t quarantined() const noexcept;

  /// Removes every quarantined CRP; returns how many were evicted.
  std::size_t evict_quarantined();

  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }

  /// Verifier storage footprint in bytes (challenges + responses).
  std::size_t storage_bytes() const noexcept;

 private:
  struct Entry {
    Crp crp;
    CrpHealth health;
  };

  void remove_at(std::size_t pos);
  void compact(std::size_t pos);

  std::vector<Entry> entries_;
  // challenge bytes -> entries_ position, keyed on the raw buffer with a
  // SipHash transparent hasher (heterogeneous lookup: ByteView probes
  // need no Challenge copy).
  std::unordered_map<Challenge, std::size_t, detail::ChallengeHash,
                     detail::ChallengeEqual>
      index_;
  std::uint32_t quarantine_threshold_ = 3;
};

}  // namespace neuropuls::puf
