// Challenge–response-pair database — the verifier-side storage of the
// classical Suh/Devadas authentication scheme (§III-A's baseline).
//
// The paper's argument for HSC-IoT is scalability: "existing strategies
// require the Verifier to store a large database of CRPs for each device
// ... this protocol only needs one CRP to be known by the Verifier at any
// point." This class implements the heavyweight baseline so that
// `bench/bench_auth` can measure the storage/lookup gap quantitatively,
// including one-time-use semantics (each CRP is consumed at
// authentication to prevent replay).
//
// Concurrency: a fleet-scale verifier serves many authentication sessions
// at once (core::SessionEngine), so the store is lock-striped into N
// shards keyed by the SipHash of the raw challenge bytes — the same hash
// the per-shard index already computes. Every public operation is
// thread-safe; operations on different shards never contend, and
// contention that does happen is counted (`lock_stats`) so
// `bench/bench_server` can plot ops/sec against shard count. The default
// single-shard configuration behaves exactly like the previous serial
// class, iteration order included.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/siphash.hpp"
#include "puf/puf.hpp"

namespace neuropuls::puf {

struct Crp {
  Challenge challenge;
  Response response;
};

namespace detail {

/// Transparent SipHash-2-4 hasher over raw challenge bytes: the CRP index
/// hashes the challenge buffer directly instead of materialising a hex
/// string per insert/lookup (half the key storage, zero encode work). The
/// key is a fixed public constant — the index is verifier-local simulation
/// state, not an adversarial-input hash table.
struct ChallengeHash {
  using is_transparent = void;
  std::size_t operator()(crypto::ByteView bytes) const noexcept {
    static constexpr std::array<std::uint8_t, 16> kKey = {
        'n', 'p', '-', 'c', 'r', 'p', '-', 'i',
        'n', 'd', 'e', 'x', '-', 'k', 'e', 'y'};
    return static_cast<std::size_t>(crypto::siphash24(kKey, bytes));
  }
};

/// Transparent byte-wise equality matching ChallengeHash (Challenge and
/// ByteView arguments both land on the ByteView overload).
struct ChallengeEqual {
  using is_transparent = void;
  bool operator()(crypto::ByteView a, crypto::ByteView b) const noexcept {
    return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }
};

}  // namespace detail

/// Per-CRP health counters maintained by the verifier: authentication
/// outcomes against this CRP. A run of consecutive failures marks the
/// CRP quarantined — it stops being served by take()/lookup() (the
/// response may be rotting on a degraded device, or the pair may be under
/// active attack) until evicted or the database is re-enrolled.
struct CrpHealth {
  std::uint32_t successes = 0;
  std::uint32_t failures = 0;
  std::uint32_t consecutive_failures = 0;
  bool quarantined = false;
};

/// Aggregate store statistics across shards — locking and take-path
/// scheduling in one struct, so bench/bench_server can print the store's
/// contention picture next to the session engine's steal/park counters.
/// `contended` counts acquisitions that found the shard mutex already
/// held — the signal that the shard count is too low for the offered
/// concurrency.
struct CrpStoreStats {
  std::uint64_t acquisitions = 0;
  std::uint64_t contended = 0;
  /// take() calls that returned a CRP.
  std::uint64_t takes = 0;
  /// Successful takes served by a shard other than the taker's
  /// round-robin start shard — the store-side analogue of a scheduler
  /// steal. Stays near zero while the cursor keeps shards draining
  /// evenly; grows once imbalance forces cross-shard probing.
  std::uint64_t take_steals = 0;
  /// Successful takes served per shard (fairness/starvation diagnostic:
  /// under concurrent takers no shard should sit at zero while others
  /// drain).
  std::vector<std::uint64_t> shard_takes;
};

class CrpDatabase {
 public:
  /// `shards` fixes the stripe count for the lifetime of the store
  /// (clamped to >= 1). One shard = the serial-compatible configuration.
  explicit CrpDatabase(std::size_t shards = 1);

  CrpDatabase(const CrpDatabase&) = delete;
  CrpDatabase& operator=(const CrpDatabase&) = delete;

  /// Enrolls `count` CRPs by driving the PUF with challenges from `rng`.
  /// Each response is majority-voted over `readings` evaluations. The PUF
  /// itself is not thread-safe, so enrollment stays a serial operation
  /// (inserts synchronise with concurrent readers as usual).
  void enroll(Puf& puf, std::size_t count, crypto::ChaChaDrbg& rng,
              unsigned readings = 5);

  /// Inserts one externally produced CRP.
  void insert(Crp crp);

  /// Pops an unused, non-quarantined CRP for an authentication round
  /// (one-time use). Returns std::nullopt when no healthy CRP remains —
  /// the classic operational limit of CRP-database schemes, reached
  /// earlier on a degrading device.
  std::optional<Crp> take();

  /// Looks up the enrolled response for a challenge without consuming it.
  /// Quarantined CRPs are not served.
  std::optional<Response> lookup(const Challenge& challenge) const;

  /// Consecutive failures at which a CRP is quarantined (default 3).
  /// Configure before concurrent use; the threshold itself is not
  /// lock-protected.
  void set_quarantine_threshold(std::uint32_t threshold) noexcept {
    quarantine_threshold_ = threshold == 0 ? 1 : threshold;
  }

  /// Records an authentication outcome against a stored CRP. Unknown
  /// challenges are ignored (the CRP may have been consumed/evicted).
  /// A success resets the consecutive-failure run; a failure extends it
  /// and quarantines the CRP at the threshold.
  void record_success(const Challenge& challenge);
  void record_failure(const Challenge& challenge);

  /// Health counters for a stored challenge.
  std::optional<CrpHealth> health(const Challenge& challenge) const;

  /// Number of currently quarantined CRPs.
  std::size_t quarantined() const noexcept;

  /// Removes every quarantined CRP; returns how many were evicted.
  std::size_t evict_quarantined();

  std::size_t size() const noexcept {
    return size_.load(std::memory_order_relaxed);
  }
  bool empty() const noexcept { return size() == 0; }

  std::size_t shard_count() const noexcept { return shards_.size(); }

  /// Entries currently stored in shard `shard` (for balance diagnostics).
  std::size_t shard_size(std::size_t shard) const;

  /// Aggregate lock acquisition/contention and take-path counters across
  /// all shards (shard_takes is indexed by shard).
  CrpStoreStats lock_stats() const;

  /// Verifier storage footprint in bytes (challenges + responses).
  std::size_t storage_bytes() const noexcept;

 private:
  struct Entry {
    Crp crp;
    CrpHealth health;
  };

  /// One lock stripe: its own entries vector + challenge index, guarded
  /// by one mutex. The swap-with-back compaction scheme of the serial
  /// class operates per shard unchanged. Shard locks are LEAVES in the
  /// canonical lock order: nothing is ever acquired while one is held.
  struct Shard {
    mutable common::Mutex mutex;
    std::vector<Entry> entries NP_GUARDED_BY(mutex);
    // challenge bytes -> entries position, keyed on the raw buffer with a
    // SipHash transparent hasher (heterogeneous lookup: ByteView probes
    // need no Challenge copy).
    std::unordered_map<Challenge, std::size_t, detail::ChallengeHash,
                       detail::ChallengeEqual>
        index NP_GUARDED_BY(mutex);
    mutable std::atomic<std::uint64_t> acquisitions{0};
    mutable std::atomic<std::uint64_t> contended{0};
    mutable std::atomic<std::uint64_t> takes{0};
  };

  /// Scoped shard lock that counts the acquisition and whether it
  /// contended (try-first via MutexLock's contention-reporting
  /// constructor). A scoped class — rather than a function returning a
  /// lock — because Clang's capability analysis tracks constructor
  /// acquisition but cannot follow a capability through a return value.
  class NP_SCOPED_CAPABILITY ShardLock {
   public:
    explicit ShardLock(const Shard& shard) NP_ACQUIRE(shard.mutex)
        : lock_(shard.mutex, contended_) {
      shard.acquisitions.fetch_add(1, std::memory_order_relaxed);
      if (contended_) {
        shard.contended.fetch_add(1, std::memory_order_relaxed);
      }
    }
    ShardLock(const ShardLock&) = delete;
    ShardLock& operator=(const ShardLock&) = delete;
    ~ShardLock() NP_RELEASE() {}

   private:
    bool contended_ = false;  // written by lock_'s constructor
    common::MutexLock lock_;
  };

  Shard& shard_for(crypto::ByteView challenge) noexcept;
  const Shard& shard_for(crypto::ByteView challenge) const noexcept;

  static void remove_at(Shard& shard, std::size_t pos)
      NP_REQUIRES(shard.mutex);
  static void compact(Shard& shard, std::size_t pos) NP_REQUIRES(shard.mutex);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::size_t> size_{0};
  /// Round-robin starting shard for take(): spreads concurrent takers
  /// across stripes instead of draining shard 0 first.
  std::atomic<std::size_t> take_cursor_{0};
  /// Successful takes that had to probe past their start shard.
  std::atomic<std::uint64_t> take_steals_{0};
  std::uint32_t quarantine_threshold_ = 3;
};

}  // namespace neuropuls::puf
