// Challenge–response-pair database — the verifier-side storage of the
// classical Suh/Devadas authentication scheme (§III-A's baseline).
//
// The paper's argument for HSC-IoT is scalability: "existing strategies
// require the Verifier to store a large database of CRPs for each device
// ... this protocol only needs one CRP to be known by the Verifier at any
// point." This class implements the heavyweight baseline so that
// `bench/bench_auth` can measure the storage/lookup gap quantitatively,
// including one-time-use semantics (each CRP is consumed at
// authentication to prevent replay).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "crypto/chacha20.hpp"
#include "crypto/siphash.hpp"
#include "puf/puf.hpp"

namespace neuropuls::puf {

struct Crp {
  Challenge challenge;
  Response response;
};

namespace detail {

/// Transparent SipHash-2-4 hasher over raw challenge bytes: the CRP index
/// hashes the challenge buffer directly instead of materialising a hex
/// string per insert/lookup (half the key storage, zero encode work). The
/// key is a fixed public constant — the index is verifier-local simulation
/// state, not an adversarial-input hash table.
struct ChallengeHash {
  using is_transparent = void;
  std::size_t operator()(crypto::ByteView bytes) const noexcept {
    static constexpr std::array<std::uint8_t, 16> kKey = {
        'n', 'p', '-', 'c', 'r', 'p', '-', 'i',
        'n', 'd', 'e', 'x', '-', 'k', 'e', 'y'};
    return static_cast<std::size_t>(crypto::siphash24(kKey, bytes));
  }
};

/// Transparent byte-wise equality matching ChallengeHash (Challenge and
/// ByteView arguments both land on the ByteView overload).
struct ChallengeEqual {
  using is_transparent = void;
  bool operator()(crypto::ByteView a, crypto::ByteView b) const noexcept {
    return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }
};

}  // namespace detail

class CrpDatabase {
 public:
  /// Enrolls `count` CRPs by driving the PUF with challenges from `rng`.
  /// Each response is majority-voted over `readings` evaluations.
  void enroll(Puf& puf, std::size_t count, crypto::ChaChaDrbg& rng,
              unsigned readings = 5);

  /// Inserts one externally produced CRP.
  void insert(Crp crp);

  /// Pops an unused CRP for an authentication round (one-time use).
  /// Returns std::nullopt when the database is exhausted — the classic
  /// operational limit of CRP-database schemes.
  std::optional<Crp> take();

  /// Looks up the enrolled response for a challenge without consuming it.
  std::optional<Response> lookup(const Challenge& challenge) const;

  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }

  /// Verifier storage footprint in bytes (challenges + responses).
  std::size_t storage_bytes() const noexcept;

 private:
  std::vector<Crp> entries_;
  // challenge bytes -> entries_ position, keyed on the raw buffer with a
  // SipHash transparent hasher (heterogeneous lookup: ByteView probes
  // need no Challenge copy).
  std::unordered_map<Challenge, std::size_t, detail::ChallengeHash,
                     detail::ChallengeEqual>
      index_;
};

}  // namespace neuropuls::puf
