// Challenge–response-pair database — the verifier-side storage of the
// classical Suh/Devadas authentication scheme (§III-A's baseline).
//
// The paper's argument for HSC-IoT is scalability: "existing strategies
// require the Verifier to store a large database of CRPs for each device
// ... this protocol only needs one CRP to be known by the Verifier at any
// point." This class implements the heavyweight baseline so that
// `bench/bench_auth` can measure the storage/lookup gap quantitatively,
// including one-time-use semantics (each CRP is consumed at
// authentication to prevent replay).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "crypto/chacha20.hpp"
#include "puf/puf.hpp"

namespace neuropuls::puf {

struct Crp {
  Challenge challenge;
  Response response;
};

class CrpDatabase {
 public:
  /// Enrolls `count` CRPs by driving the PUF with challenges from `rng`.
  /// Each response is majority-voted over `readings` evaluations.
  void enroll(Puf& puf, std::size_t count, crypto::ChaChaDrbg& rng,
              unsigned readings = 5);

  /// Inserts one externally produced CRP.
  void insert(Crp crp);

  /// Pops an unused CRP for an authentication round (one-time use).
  /// Returns std::nullopt when the database is exhausted — the classic
  /// operational limit of CRP-database schemes.
  std::optional<Crp> take();

  /// Looks up the enrolled response for a challenge without consuming it.
  std::optional<Response> lookup(const Challenge& challenge) const;

  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }

  /// Verifier storage footprint in bytes (challenges + responses).
  std::size_t storage_bytes() const noexcept;

 private:
  std::vector<Crp> entries_;
  std::unordered_map<std::string, std::size_t> index_;  // hex(challenge) -> i
};

}  // namespace neuropuls::puf
