// Challenge–response-pair database — the verifier-side storage of the
// classical Suh/Devadas authentication scheme (§III-A's baseline).
//
// The paper's argument for HSC-IoT is scalability: "existing strategies
// require the Verifier to store a large database of CRPs for each device
// ... this protocol only needs one CRP to be known by the Verifier at any
// point." This class implements the heavyweight baseline so that
// `bench/bench_auth` can measure the storage/lookup gap quantitatively,
// including one-time-use semantics (each CRP is consumed at
// authentication to prevent replay).
//
// Concurrency: a fleet-scale verifier serves many authentication sessions
// at once (core::SessionEngine), so the store is lock-striped into N
// shards keyed by the SipHash of the raw challenge bytes — the same hash
// the per-shard index already computes. Every public operation is
// thread-safe; operations on different shards never contend, and
// contention that does happen is counted (`lock_stats`) so
// `bench/bench_server` can plot ops/sec against shard count. The default
// single-shard configuration behaves exactly like the previous serial
// class, iteration order included.
//
// Durability (opt-in via CrpDurabilityOptions): every mutation appends
// one record to a per-shard write-ahead log before the call returns.
// Records are encoded under the shard lock (so per-shard WAL order is
// exactly mutation order) into an in-memory pending buffer; a single
// background writer drains those buffers, coalescing many records into
// one write+fsync — the group commit that keeps the log at memory speed.
// All file I/O happens on the writer thread, strictly outside every
// shard lock; shard locks stay leaves in the canonical lock order, and
// the ctlint `blocking-under-lock` pass enforces that no write/fsync
// call sneaks into a critical section. take() waits for its record to
// reach stable storage before handing out the CRP (durable_take), which
// is what makes the paper's one-time-use guarantee survive a crash: a
// consumed CRP is never re-issued and never resurrected. Cold start
// replays snapshot + WAL per shard in parallel over common::parallel.
// With no directory configured, nothing here runs — the in-memory store
// behaves bit-identically to the pre-durability class.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/siphash.hpp"
#include "puf/puf.hpp"

namespace neuropuls::puf {

struct Crp {
  Challenge challenge;
  Response response;
};

namespace detail {

/// Transparent SipHash-2-4 hasher over raw challenge bytes: the CRP index
/// hashes the challenge buffer directly instead of materialising a hex
/// string per insert/lookup (half the key storage, zero encode work). The
/// key is a fixed public constant — the index is verifier-local simulation
/// state, not an adversarial-input hash table.
struct ChallengeHash {
  using is_transparent = void;
  std::size_t operator()(crypto::ByteView bytes) const noexcept {
    static constexpr std::array<std::uint8_t, 16> kKey = {
        'n', 'p', '-', 'c', 'r', 'p', '-', 'i',
        'n', 'd', 'e', 'x', '-', 'k', 'e', 'y'};
    return static_cast<std::size_t>(crypto::siphash24(kKey, bytes));
  }
};

/// Transparent byte-wise equality matching ChallengeHash (Challenge and
/// ByteView arguments both land on the ByteView overload).
struct ChallengeEqual {
  using is_transparent = void;
  bool operator()(crypto::ByteView a, crypto::ByteView b) const noexcept {
    return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }
};

}  // namespace detail

/// Per-CRP health counters maintained by the verifier: authentication
/// outcomes against this CRP. A run of consecutive failures marks the
/// CRP quarantined — it stops being served by take()/lookup() (the
/// response may be rotting on a degraded device, or the pair may be under
/// active attack) until evicted or the database is re-enrolled.
struct CrpHealth {
  std::uint32_t successes = 0;
  std::uint32_t failures = 0;
  std::uint32_t consecutive_failures = 0;
  bool quarantined = false;
};

namespace wal {
struct Manifest;
struct RecordView;
}  // namespace wal

/// Opt-in durability configuration for CrpDatabase. An empty directory
/// keeps the store purely in memory (the pre-durability behaviour, zero
/// overhead on every path).
struct CrpDurabilityOptions {
  /// Store directory (created if missing). Holds per-shard WAL and
  /// snapshot files plus a checksummed MANIFEST; empty = in-memory only.
  std::string directory;

  enum class Mode {
    /// Appends coalesce in per-shard pending buffers; the background
    /// writer turns many records into one write+fsync (group commit).
    kGroupCommit,
    /// Every mutation waits for its own flush+fsync round trip — the
    /// naive baseline bench_crp_store_recovery compares against.
    kFsyncPerOp,
  };
  Mode mode = Mode::kGroupCommit;

  /// Pending bytes at which the writer flushes immediately instead of
  /// waiting out the coalescing window.
  std::size_t batch_bytes = 256 * 1024;

  /// How long the writer lets a non-full batch gather company before
  /// flushing anyway (bounds the durability lag of async appends).
  std::chrono::microseconds flush_interval{200};

  /// When set (default), take() returns only after its record is on
  /// stable storage, so a consumed CRP can never be re-issued after a
  /// crash — the no-replay invariant the one-time-use scheme rests on.
  /// Inserts and health updates stay asynchronous either way (bounded
  /// by flush_interval; sync() is the explicit barrier).
  bool durable_take = true;

  /// Per-shard WAL bytes at which the writer triggers an automatic
  /// compacting snapshot (0 = snapshot only on explicit snapshot()).
  std::size_t snapshot_wal_bytes = 0;
};

/// What recovery found on disk at construction (zeros for fresh or
/// in-memory stores) — the crash tests and the cold-start bench read
/// this to assert which path ran.
struct CrpRecoveryStats {
  /// Generation the store is live on after open.
  std::uint64_t generation = 0;
  /// Shard count recorded in the manifest (layout the files were
  /// written under).
  std::uint32_t source_shard_count = 0;
  /// True when the configured shard count differed from the manifest's:
  /// entries were re-hashed serially into the new layout and compacted
  /// into a fresh snapshot generation.
  bool resharded = false;
  /// True when replay ran per-shard over the common::parallel pool.
  bool parallel_replay = false;
  std::uint64_t snapshot_entries = 0;
  std::uint64_t wal_records = 0;
  /// Take records replayed — added to the manifest's cursor to restore
  /// the round-robin position deterministically.
  std::uint64_t replayed_takes = 0;
  /// Torn bytes dropped from WAL tails (crash evidence; 0 after a clean
  /// shutdown).
  std::uint64_t torn_bytes = 0;
};

/// Aggregate store statistics across shards — locking and take-path
/// scheduling in one struct, so bench/bench_server can print the store's
/// contention picture next to the session engine's steal/park counters.
/// `contended` counts acquisitions that found the shard mutex already
/// held — the signal that the shard count is too low for the offered
/// concurrency.
struct CrpStoreStats {
  std::uint64_t acquisitions = 0;
  std::uint64_t contended = 0;
  /// take() calls that returned a CRP.
  std::uint64_t takes = 0;
  /// Successful takes served by a shard other than the taker's
  /// round-robin start shard — the store-side analogue of a scheduler
  /// steal. Stays near zero while the cursor keeps shards draining
  /// evenly; grows once imbalance forces cross-shard probing.
  std::uint64_t take_steals = 0;
  /// Successful takes served per shard (fairness/starvation diagnostic:
  /// under concurrent takers no shard should sit at zero while others
  /// drain).
  std::vector<std::uint64_t> shard_takes;
};

class CrpDatabase {
 public:
  /// `shards` fixes the stripe count for the lifetime of the store
  /// (clamped to >= 1). One shard = the serial-compatible configuration.
  explicit CrpDatabase(std::size_t shards = 1);

  /// Durable store: recovers existing state from `durability.directory`
  /// (snapshot + parallel per-shard WAL replay) and starts the
  /// group-commit writer. Throws wal::CrpStoreError when the on-disk
  /// state is damaged beyond the torn-tail case — the store fails
  /// cleanly rather than half-opening. With an empty directory this is
  /// exactly the in-memory constructor.
  CrpDatabase(std::size_t shards, CrpDurabilityOptions durability);

  /// Clean shutdown: drains and fsyncs every pending WAL record, so a
  /// destructed store recovers with torn_bytes == 0.
  ~CrpDatabase();

  CrpDatabase(const CrpDatabase&) = delete;
  CrpDatabase& operator=(const CrpDatabase&) = delete;

  /// Enrolls `count` CRPs by driving the PUF with challenges from `rng`.
  /// Each response is majority-voted over `readings` evaluations. The PUF
  /// itself is not thread-safe, so enrollment stays a serial operation
  /// (inserts synchronise with concurrent readers as usual).
  void enroll(Puf& puf, std::size_t count, crypto::ChaChaDrbg& rng,
              unsigned readings = 5);

  /// Inserts one externally produced CRP.
  void insert(Crp crp);

  /// Inserts a batch of externally produced CRPs with one lock
  /// acquisition and one WAL hand-off per touched shard — the fleet
  /// enrollment path, where per-CRP insert() would pay the lock and
  /// writer-wakeup cost a million times over.
  void insert_batch(std::vector<Crp> crps);

  /// Pops an unused, non-quarantined CRP for an authentication round
  /// (one-time use). Returns std::nullopt when no healthy CRP remains —
  /// the classic operational limit of CRP-database schemes, reached
  /// earlier on a degrading device.
  std::optional<Crp> take();

  /// Consumes the CRP for a specific challenge (one-time use), with the
  /// same durable-take guarantee as take(). Returns std::nullopt when
  /// the challenge is unknown or quarantined. This is the rotation
  /// primitive: a campaign retires a device's old CRP by key after its
  /// replacement is durably inserted, so a crash between the two steps
  /// leaves the device with at least one live CRP, never zero.
  std::optional<Crp> take(const Challenge& challenge);

  /// Looks up the enrolled response for a challenge without consuming it.
  /// Quarantined CRPs are not served.
  std::optional<Response> lookup(const Challenge& challenge) const;

  /// Consecutive failures at which a CRP is quarantined (default 3).
  /// Configure before concurrent use; the threshold itself is not
  /// lock-protected.
  void set_quarantine_threshold(std::uint32_t threshold) noexcept {
    quarantine_threshold_ = threshold == 0 ? 1 : threshold;
  }

  /// Records an authentication outcome against a stored CRP. Unknown
  /// challenges are ignored (the CRP may have been consumed/evicted).
  /// A success resets the consecutive-failure run; a failure extends it
  /// and quarantines the CRP at the threshold.
  void record_success(const Challenge& challenge);
  void record_failure(const Challenge& challenge);

  /// Health counters for a stored challenge.
  std::optional<CrpHealth> health(const Challenge& challenge) const;

  /// Number of currently quarantined CRPs.
  std::size_t quarantined() const noexcept;

  /// Removes every quarantined CRP; returns how many were evicted.
  std::size_t evict_quarantined();

  std::size_t size() const noexcept {
    return size_.load(std::memory_order_relaxed);
  }
  bool empty() const noexcept { return size() == 0; }

  std::size_t shard_count() const noexcept { return shards_.size(); }

  /// Entries currently stored in shard `shard` (for balance diagnostics).
  std::size_t shard_size(std::size_t shard) const;

  /// Aggregate lock acquisition/contention and take-path counters across
  /// all shards (shard_takes is indexed by shard).
  CrpStoreStats lock_stats() const;

  /// Verifier storage footprint in bytes (challenges + responses).
  std::size_t storage_bytes() const noexcept;

  /// Durability barrier: blocks until every record appended before the
  /// call is on stable storage. No-op for in-memory stores.
  void sync();

  /// Compacts the live state into a new snapshot generation and trims
  /// the WAL (runs on the writer thread; this call blocks until the
  /// manifest for the new generation is committed). No-op in memory.
  void snapshot();

  /// True when the store persists to disk.
  bool durable() const noexcept { return wal_ != nullptr; }

  /// What recovery found at construction (zeros for fresh/in-memory).
  CrpRecoveryStats recovery_stats() const noexcept;

 private:
  struct Entry {
    Crp crp;
    CrpHealth health;
  };

  /// One lock stripe: its own entries vector + challenge index, guarded
  /// by one mutex. The swap-with-back compaction scheme of the serial
  /// class operates per shard unchanged. Shard locks are LEAVES in the
  /// canonical lock order: nothing is ever acquired while one is held.
  struct Shard {
    mutable common::Mutex mutex;
    std::vector<Entry> entries NP_GUARDED_BY(mutex);
    // challenge bytes -> entries position, keyed on the raw buffer with a
    // SipHash transparent hasher (heterogeneous lookup: ByteView probes
    // need no Challenge copy).
    std::unordered_map<Challenge, std::size_t, detail::ChallengeHash,
                       detail::ChallengeEqual>
        index NP_GUARDED_BY(mutex);
    mutable std::atomic<std::uint64_t> acquisitions{0};
    mutable std::atomic<std::uint64_t> contended{0};
    mutable std::atomic<std::uint64_t> takes{0};
    /// WAL records encoded but not yet handed to the writer. Encoding
    /// under the shard mutex — in the same critical section as the
    /// mutation — is what pins per-shard WAL order to apply order; the
    /// writer swaps the buffer out under the same lock and does all
    /// file I/O with no lock held. Unused (empty) in memory-only mode.
    crypto::Bytes wal_pending NP_GUARDED_BY(mutex);
    /// Per-shard record sequence number; starts at 1, monotonic across
    /// snapshot generations. Recovery replays records above the
    /// snapshot's sequence and resumes from the highest seen.
    std::uint64_t wal_seq NP_GUARDED_BY(mutex) = 0;
  };

  /// Scoped shard lock that counts the acquisition and whether it
  /// contended (try-first via MutexLock's contention-reporting
  /// constructor). A scoped class — rather than a function returning a
  /// lock — because Clang's capability analysis tracks constructor
  /// acquisition but cannot follow a capability through a return value.
  class NP_SCOPED_CAPABILITY ShardLock {
   public:
    explicit ShardLock(const Shard& shard) NP_ACQUIRE(shard.mutex)
        : lock_(shard.mutex, contended_) {
      shard.acquisitions.fetch_add(1, std::memory_order_relaxed);
      if (contended_) {
        shard.contended.fetch_add(1, std::memory_order_relaxed);
      }
    }
    ShardLock(const ShardLock&) = delete;
    ShardLock& operator=(const ShardLock&) = delete;
    ~ShardLock() NP_RELEASE() {}

   private:
    bool contended_ = false;  // written by lock_'s constructor
    common::MutexLock lock_;
  };

  Shard& shard_for(crypto::ByteView challenge) noexcept;
  const Shard& shard_for(crypto::ByteView challenge) const noexcept;
  std::size_t shard_index_for(crypto::ByteView challenge) const noexcept;

  static void remove_at(Shard& shard, std::size_t pos)
      NP_REQUIRES(shard.mutex);
  static void compact(Shard& shard, std::size_t pos) NP_REQUIRES(shard.mutex);

  // --- durability machinery (crp_db.cpp; all no-ops when wal_ is null) ---

  /// Per-replay-task tallies, merged into CrpRecoveryStats.
  struct ReplayCounts;
  /// Writer-thread state + group-commit handshake; lives behind a
  /// pointer so the in-memory store pays nothing and the header stays
  /// free of file/thread types.
  struct WalState;

  /// Called after a mutation appended `bytes` of records under the shard
  /// lock (now released): accounts the pending bytes, wakes the writer
  /// on a batch boundary, and — for durable takes / fsync-per-op mode —
  /// blocks until `seq` is on stable storage.
  void wal_after_append(std::size_t shard, std::uint64_t seq,
                        std::size_t bytes, bool wait_durable);
  void wal_writer_main();
  void wal_flush_pending(std::vector<crypto::Bytes>& scratch);
  void wal_rotate_and_snapshot();
  void wal_write_snapshot_files(std::uint64_t generation);
  void wal_cleanup_stale();
  void wal_recover(const wal::Manifest& manifest, bool& roll_forward);
  ReplayCounts wal_replay_shard(std::size_t source,
                                std::uint32_t source_count,
                                std::uint64_t generation, bool direct,
                                bool& orphan);
  void apply_recovered_insert(Shard& shard, crypto::ByteView challenge,
                              crypto::ByteView response,
                              const CrpHealth& health)
      NP_REQUIRES(shard.mutex);
  void apply_recovered_record(Shard& shard, const wal::RecordView& record)
      NP_REQUIRES(shard.mutex);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<WalState> wal_;
  std::atomic<std::size_t> size_{0};
  /// Round-robin starting shard for take(): spreads concurrent takers
  /// across stripes instead of draining shard 0 first.
  std::atomic<std::size_t> take_cursor_{0};
  /// Successful takes that had to probe past their start shard.
  std::atomic<std::uint64_t> take_steals_{0};
  std::uint32_t quarantine_threshold_ = 3;
};

}  // namespace neuropuls::puf
