#include "puf/trng.hpp"

#include <stdexcept>

#include "crypto/sha256.hpp"
#include "ecc/bitvec.hpp"

namespace neuropuls::puf {

PhotonicTrng::PhotonicTrng(PhotonicPuf& puf, Challenge challenge)
    : puf_(puf), challenge_(std::move(challenge)) {
  if (challenge_.size() != puf_.challenge_bytes()) {
    throw std::invalid_argument("PhotonicTrng: wrong challenge size");
  }
}

void PhotonicTrng::fill_raw(std::vector<std::uint8_t>& out,
                            std::size_t target) {
  while (out.size() < target) {
    const auto a = puf_.evaluate_analog(challenge_, /*noisy=*/true);
    const auto b = puf_.evaluate_analog(challenge_, /*noisy=*/true);
    for (std::size_t w = 0; w < a.size(); ++w) {
      for (std::size_t p = 0; p < a[w].size(); ++p) {
        if (a[w][p] == b[w][p]) continue;  // tie: discard
        out.push_back(a[w][p] > b[w][p] ? 1 : 0);
      }
    }
  }
}

crypto::Bytes PhotonicTrng::raw_bits(std::size_t bits) {
  std::vector<std::uint8_t> raw;
  raw.reserve(bits + bits_per_interrogation());
  fill_raw(raw, bits);
  raw.resize(bits);
  return ecc::pack_bits(raw);
}

crypto::Bytes PhotonicTrng::debiased_bits(std::size_t bits) {
  std::vector<std::uint8_t> out;
  out.reserve(bits);
  std::vector<std::uint8_t> raw;
  while (out.size() < bits) {
    raw.clear();
    fill_raw(raw, 4 * (bits - out.size()) + 2);
    // Von Neumann: consume disjoint pairs; 01 -> 0, 10 -> 1.
    for (std::size_t i = 0; i + 1 < raw.size() && out.size() < bits; i += 2) {
      if (raw[i] == raw[i + 1]) continue;
      out.push_back(raw[i]);
    }
  }
  return ecc::pack_bits(out);
}

crypto::Bytes PhotonicTrng::conditioned_bytes(std::size_t bytes) {
  crypto::Bytes out;
  out.reserve(bytes + 32);
  std::vector<std::uint8_t> raw;
  std::uint64_t block_index = 0;
  while (out.size() < bytes) {
    raw.clear();
    fill_raw(raw, 512);  // 2x compression into 256 output bits
    crypto::Sha256 h;
    const crypto::Bytes packed = ecc::pack_bits(raw);
    crypto::Bytes counter(8);
    crypto::put_u64_be(counter, block_index++);
    h.update(crypto::bytes_of("np-trng-cond"));
    h.update(counter);
    h.update(packed);
    const auto digest = h.finalize();
    out.insert(out.end(), digest.begin(), digest.end());
  }
  out.resize(bytes);
  return out;
}

double PhotonicTrng::measured_bias(std::size_t sample_bits) {
  std::vector<std::uint8_t> raw;
  fill_raw(raw, sample_bits);
  raw.resize(sample_bits);
  double ones = 0.0;
  for (std::uint8_t b : raw) ones += b;
  return ones / static_cast<double>(sample_bits);
}

}  // namespace neuropuls::puf
