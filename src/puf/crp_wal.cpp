#include "puf/crp_wal.hpp"

#include <cstdio>

#include "crypto/sha256.hpp"
#include "crypto/siphash.hpp"

namespace neuropuls::puf::wal {

namespace {

// Framing key for the per-record SipHash. Like the CRP index hash key this
// is a fixed public constant: the checksum defends against torn and bit-
// rotted storage, not an adversary with write access to the WAL.
constexpr std::array<std::uint8_t, 16> kWalKey = {
    'n', 'p', '-', 'c', 'r', 'p', '-', 'w',
    'a', 'l', '-', 'c', 'k', 's', 'u', 'm'};

constexpr std::uint8_t kSnapshotMagic[kSnapshotMagicBytes] = {
    'N', 'P', 'S', 'N', 'A', 'P', '0', '1'};
constexpr std::uint8_t kManifestMagic[8] = {'N', 'P', 'C', 'R',
                                            'P', 'M', 'A', 'N'};
constexpr std::uint32_t kManifestVersion = 1;

void append_health_fields(crypto::Bytes& out, const CrpHealth& health) {
  crypto::append_u32_be(out, health.successes);
  crypto::append_u32_be(out, health.failures);
  crypto::append_u32_be(out, health.consecutive_failures);
  out.push_back(health.quarantined ? 1 : 0);
}

/// Seals a record whose payload occupies out[payload_start..end): writes
/// the length, length check, and payload checksum into the 16 header
/// bytes reserved just before payload_start.
void seal_record(crypto::Bytes& out, std::size_t header_start) {
  const std::size_t payload_start = header_start + kRecordHeaderBytes;
  const auto len = static_cast<std::uint32_t>(out.size() - payload_start);
  const crypto::ByteView payload{out.data() + payload_start, len};
  crypto::put_u32_be({out.data() + header_start, 4}, len);
  crypto::put_u32_be({out.data() + header_start + 4, 4}, len ^ kLenCheck);
  crypto::put_u64_be({out.data() + header_start + 8, 8},
                     crypto::siphash24(kWalKey, payload));
}

std::size_t begin_record(crypto::Bytes& out, RecordType type,
                         std::uint64_t seq, crypto::ByteView challenge) {
  const std::size_t header_start = out.size();
  out.resize(out.size() + kRecordHeaderBytes);  // sealed by seal_record
  out.push_back(static_cast<std::uint8_t>(type));
  crypto::append_u64_be(out, seq);
  crypto::append_u32_be(out, static_cast<std::uint32_t>(challenge.size()));
  out.insert(out.end(), challenge.begin(), challenge.end());
  return header_start;
}

/// Cursor over a payload or snapshot body; all read_* throw CrpStoreError
/// past the end so malformed structure surfaces as corruption, never UB.
struct Reader {
  crypto::ByteView data;
  std::size_t pos = 0;
  const char* what;

  [[noreturn]] void fail() const {
    throw CrpStoreError(std::string(what) + ": truncated structure");
  }
  crypto::ByteView read_bytes(std::size_t n) {
    if (data.size() - pos < n) fail();
    const crypto::ByteView view = data.subspan(pos, n);
    pos += n;
    return view;
  }
  std::uint8_t read_u8() { return read_bytes(1)[0]; }
  std::uint32_t read_u32() { return crypto::get_u32_be(read_bytes(4)); }
  std::uint64_t read_u64() { return crypto::get_u64_be(read_bytes(8)); }
  CrpHealth read_health() {
    CrpHealth health;
    health.successes = read_u32();
    health.failures = read_u32();
    health.consecutive_failures = read_u32();
    health.quarantined = read_u8() != 0;
    return health;
  }
  bool done() const noexcept { return pos == data.size(); }
};

RecordView parse_payload(crypto::ByteView payload) {
  Reader reader{payload, 0, "wal record"};
  RecordView record;
  const std::uint8_t type = reader.read_u8();
  if (type < static_cast<std::uint8_t>(RecordType::kInsert) ||
      type > static_cast<std::uint8_t>(RecordType::kEvict)) {
    throw CrpStoreError("wal record: unknown type " + std::to_string(type));
  }
  record.type = static_cast<RecordType>(type);
  record.seq = reader.read_u64();
  record.challenge = reader.read_bytes(reader.read_u32());
  switch (record.type) {
    case RecordType::kInsert:
      record.response = reader.read_bytes(reader.read_u32());
      break;
    case RecordType::kHealth:
      record.health = reader.read_health();
      break;
    case RecordType::kTake:
    case RecordType::kEvict:
      break;
  }
  if (!reader.done()) {
    throw CrpStoreError("wal record: trailing bytes in payload");
  }
  return record;
}

}  // namespace

void append_insert_record(crypto::Bytes& out, std::uint64_t seq,
                          crypto::ByteView challenge,
                          crypto::ByteView response) {
  const std::size_t start = begin_record(out, RecordType::kInsert, seq,
                                         challenge);
  crypto::append_u32_be(out, static_cast<std::uint32_t>(response.size()));
  out.insert(out.end(), response.begin(), response.end());
  seal_record(out, start);
}

void append_take_record(crypto::Bytes& out, std::uint64_t seq,
                        crypto::ByteView challenge) {
  seal_record(out, begin_record(out, RecordType::kTake, seq, challenge));
}

void append_health_record(crypto::Bytes& out, std::uint64_t seq,
                          crypto::ByteView challenge, const CrpHealth& health) {
  const std::size_t start = begin_record(out, RecordType::kHealth, seq,
                                         challenge);
  append_health_fields(out, health);
  seal_record(out, start);
}

void append_evict_record(crypto::Bytes& out, std::uint64_t seq,
                         crypto::ByteView challenge) {
  seal_record(out, begin_record(out, RecordType::kEvict, seq, challenge));
}

WalDecodeResult decode_wal(crypto::ByteView image) {
  WalDecodeResult result;
  std::size_t pos = 0;
  while (pos < image.size()) {
    const std::size_t remaining = image.size() - pos;
    if (remaining < kRecordHeaderBytes) break;  // torn header at the tail
    const std::uint32_t len = crypto::get_u32_be(image.subspan(pos, 4));
    const std::uint32_t check = crypto::get_u32_be(image.subspan(pos + 4, 4));
    if ((len ^ kLenCheck) != check) {
      // The self-checking length survived in full but does not verify:
      // this is damage, not a torn append.
      throw CrpStoreError("wal: corrupt record length at offset " +
                          std::to_string(pos));
    }
    if (len > kMaxRecordBytes) {
      throw CrpStoreError("wal: implausible record length at offset " +
                          std::to_string(pos));
    }
    if (remaining < kRecordHeaderBytes + len) break;  // torn payload
    const crypto::ByteView payload =
        image.subspan(pos + kRecordHeaderBytes, len);
    const std::uint64_t sum =
        crypto::get_u64_be(image.subspan(pos + 8, 8));
    if (crypto::siphash24(kWalKey, payload) != sum) {
      throw CrpStoreError("wal: record checksum mismatch at offset " +
                          std::to_string(pos));
    }
    RecordView record = parse_payload(payload);
    if (!result.records.empty() && record.seq <= result.records.back().seq) {
      throw CrpStoreError("wal: non-monotonic sequence at offset " +
                          std::to_string(pos));
    }
    result.records.push_back(record);
    pos += kRecordHeaderBytes + len;
  }
  result.valid_bytes = pos;
  result.torn_bytes = image.size() - pos;
  return result;
}

SnapshotBuilder::SnapshotBuilder(std::uint32_t shard_index,
                                 std::uint32_t shard_count,
                                 std::uint64_t wal_seq)
    : shard_index_(shard_index),
      shard_count_(shard_count),
      wal_seq_(wal_seq) {}

void SnapshotBuilder::add(crypto::ByteView challenge,
                          crypto::ByteView response, const CrpHealth& health) {
  crypto::append_u32_be(buffer_, static_cast<std::uint32_t>(challenge.size()));
  buffer_.insert(buffer_.end(), challenge.begin(), challenge.end());
  crypto::append_u32_be(buffer_, static_cast<std::uint32_t>(response.size()));
  buffer_.insert(buffer_.end(), response.begin(), response.end());
  append_health_fields(buffer_, health);
  ++entries_;
}

crypto::Bytes SnapshotBuilder::finish() {
  crypto::Bytes header;
  header.reserve(kSnapshotMagicBytes + 4 + 4 + 8 + 8);
  for (const std::uint8_t byte : kSnapshotMagic) header.push_back(byte);
  crypto::append_u32_be(header, shard_index_);
  crypto::append_u32_be(header, shard_count_);
  crypto::append_u64_be(header, wal_seq_);
  crypto::append_u64_be(header, entries_);
  const auto digest = crypto::Sha256::digest_parts({header, buffer_});
  crypto::Bytes out;
  out.reserve(header.size() + buffer_.size() + digest.size());
  out.insert(out.end(), header.begin(), header.end());
  out.insert(out.end(), buffer_.begin(), buffer_.end());
  out.insert(out.end(), digest.begin(), digest.end());
  return out;
}

SnapshotView decode_snapshot(crypto::ByteView image) {
  constexpr std::size_t kHeaderBytes = kSnapshotMagicBytes + 4 + 4 + 8 + 8;
  if (image.size() < kHeaderBytes + crypto::Sha256::kDigestSize) {
    throw CrpStoreError("snapshot: truncated file");
  }
  const crypto::ByteView body =
      image.first(image.size() - crypto::Sha256::kDigestSize);
  const crypto::ByteView trailer =
      image.last(crypto::Sha256::kDigestSize);
  const auto digest = crypto::Sha256::digest(body);
  if (!crypto::ct_equal(digest, trailer)) {
    throw CrpStoreError("snapshot: SHA-256 trailer mismatch");
  }
  Reader reader{body, 0, "snapshot"};
  const crypto::ByteView magic = reader.read_bytes(kSnapshotMagicBytes);
  if (!std::equal(magic.begin(), magic.end(), std::begin(kSnapshotMagic))) {
    throw CrpStoreError("snapshot: bad magic");
  }
  SnapshotView view;
  view.shard_index = reader.read_u32();
  view.shard_count = reader.read_u32();
  view.wal_seq = reader.read_u64();
  const std::uint64_t count = reader.read_u64();
  view.entries.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    SnapshotEntryView entry;
    entry.challenge = reader.read_bytes(reader.read_u32());
    entry.response = reader.read_bytes(reader.read_u32());
    entry.health = reader.read_health();
    view.entries.push_back(entry);
  }
  if (!reader.done()) {
    throw CrpStoreError("snapshot: trailing bytes after entries");
  }
  return view;
}

crypto::Bytes encode_manifest(const Manifest& manifest) {
  crypto::Bytes out;
  out.reserve(8 + 4 + 8 + 4 + 8 + 8);
  for (const std::uint8_t byte : kManifestMagic) out.push_back(byte);
  crypto::append_u32_be(out, kManifestVersion);
  crypto::append_u64_be(out, manifest.generation);
  crypto::append_u32_be(out, manifest.shard_count);
  crypto::append_u64_be(out, manifest.take_cursor);
  crypto::append_u64_be(out, crypto::siphash24(kWalKey, out));
  return out;
}

Manifest decode_manifest(crypto::ByteView image) {
  constexpr std::size_t kManifestBytes = 8 + 4 + 8 + 4 + 8 + 8;
  if (image.size() != kManifestBytes) {
    throw CrpStoreError("manifest: wrong size");
  }
  const crypto::ByteView body = image.first(kManifestBytes - 8);
  if (crypto::siphash24(kWalKey, body) != crypto::get_u64_be(image.last(8))) {
    throw CrpStoreError("manifest: checksum mismatch");
  }
  Reader reader{body, 0, "manifest"};
  const crypto::ByteView magic = reader.read_bytes(8);
  if (!std::equal(magic.begin(), magic.end(), std::begin(kManifestMagic))) {
    throw CrpStoreError("manifest: bad magic");
  }
  if (reader.read_u32() != kManifestVersion) {
    throw CrpStoreError("manifest: unsupported version");
  }
  Manifest manifest;
  manifest.generation = reader.read_u64();
  manifest.shard_count = reader.read_u32();
  manifest.take_cursor = reader.read_u64();
  return manifest;
}

std::string manifest_path(const std::string& dir) { return dir + "/MANIFEST"; }

std::string wal_path(const std::string& dir, std::size_t shard,
                     std::uint64_t generation) {
  char name[64];
  std::snprintf(name, sizeof(name), "/shard-%04zu-%06llu.wal", shard,
                static_cast<unsigned long long>(generation));
  return dir + name;
}

std::string snapshot_path(const std::string& dir, std::size_t shard,
                          std::uint64_t generation) {
  char name[64];
  std::snprintf(name, sizeof(name), "/shard-%04zu-%06llu.snap", shard,
                static_cast<unsigned long long>(generation));
  return dir + name;
}

}  // namespace neuropuls::puf::wal
