// Ring-oscillator PUF — the delay-based electronic baseline, and the
// subject of the Fig. 3 experiment.
//
// Frequency model per oscillator i on device d:
//   f_{d,i} = f_nominal + layout_i + process_{d,i} + noise(measurement)
// `layout_i` is a *design-systematic* offset identical on every device —
// this is precisely what creates bit aliasing: an RO pair whose layout
// offsets differ strongly produces the same bit on every device, so its
// response carries no device entropy. `process_{d,i}` is the per-device
// mismatch the PUF lives on. The counter threshold of [13] (Gutierrez et
// al., IOLTS'23) filters pairs by measured count difference: small
// |Delta| = unreliable, large |Delta| = likely layout-dominated = aliased.
// `bench/bench_fig3_filtering` sweeps that threshold to regenerate Fig. 3.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/prng.hpp"
#include "puf/puf.hpp"

namespace neuropuls::puf {

struct RoPufConfig {
  std::size_t oscillators = 256;
  double nominal_frequency_hz = 200e6;
  double layout_sigma_hz = 1.5e5;   // design-systematic spread
  double process_sigma_hz = 2.0e5;  // device-specific spread
  double noise_sigma_hz = 3.0e4;    // per-measurement jitter
  double count_window_s = 100e-6;   // counter gating window
  double temperature = 300.0;
  double reference_temperature = 300.0;
  /// Frequency drop per kelvin (ROs slow when hot); affects all ROs almost
  /// equally, so pairs cancel most of it — "almost" is what hurts.
  double thermal_slope_hz_per_k = -4.0e4;
  double thermal_mismatch_fraction = 0.03;  // per-RO slope mismatch
  std::uint64_t design_seed = 0x524f2d504646ULL;  // "RO-PFF"
};

class RoPuf final : public Puf {
 public:
  RoPuf(RoPufConfig config, std::uint64_t device_seed);

  /// Challenge: 4 bytes = two 16-bit RO indices (big-endian). Response:
  /// 1 byte, LSB = (count_i > count_j).
  std::size_t challenge_bytes() const override { return 4; }
  std::size_t response_bytes() const override { return 1; }

  Response evaluate(const Challenge& challenge) override;
  Response evaluate_noiseless(const Challenge& challenge) const override;
  std::string name() const override { return "ro-puf"; }

  /// Counter value of oscillator `index` over the gating window (noisy).
  std::int64_t measure_count(std::size_t index);

  /// Noise-free expected count of oscillator `index`.
  std::int64_t expected_count(std::size_t index) const;

  /// Measured count difference for a pair — the analog quantity the
  /// Fig. 3 threshold filter operates on.
  std::int64_t count_difference(std::size_t i, std::size_t j) {
    return measure_count(i) - measure_count(j);
  }

  std::size_t oscillator_count() const noexcept {
    return config_.oscillators;
  }
  void set_temperature(double kelvin) noexcept {
    config_.temperature = kelvin;
  }

  /// Ages the device by `hours` (§V: "effects of aging"): transistor
  /// degradation slows every RO with per-oscillator mismatch, so pair
  /// frequency differences drift and marginal bits flip. Cumulative.
  void age(double hours);

  double age_hours() const noexcept { return age_hours_; }

 private:
  double frequency(std::size_t index) const;  // noise-free, at temperature

  RoPufConfig config_;
  std::vector<double> layout_offsets_;   // design-wide
  std::vector<double> process_offsets_;  // this device
  std::vector<double> thermal_slopes_;   // per-RO dF/dT
  std::vector<double> aging_offsets_;    // accumulated degradation
  rng::Gaussian noise_;
  rng::Gaussian aging_;
  double age_hours_ = 0.0;
};

/// Decodes a pair challenge.
struct RoPair {
  std::size_t i;
  std::size_t j;
};
RoPair decode_ro_challenge(const Challenge& challenge);
Challenge encode_ro_challenge(std::size_t i, std::size_t j);

}  // namespace neuropuls::puf
