#include "puf/composite.hpp"

#include <stdexcept>

#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"

namespace neuropuls::puf {

EncryptedChallengePuf::EncryptedChallengePuf(std::unique_ptr<Puf> inner,
                                             const Response& weak_key)
    : inner_(std::move(inner)) {
  if (!inner_) {
    throw std::invalid_argument("EncryptedChallengePuf: null inner PUF");
  }
  key_ = crypto::hkdf(crypto::ByteView{}, weak_key,
                      crypto::bytes_of("np-challenge-enc"), 16);
}

Challenge EncryptedChallengePuf::transform(const Challenge& challenge) const {
  if (challenge.size() != inner_->challenge_bytes()) {
    throw std::invalid_argument("EncryptedChallengePuf: wrong challenge size");
  }
  // Deterministic whitening: AES-CTR keystream derived from the challenge
  // itself (the challenge digest is the nonce), XORed onto the challenge.
  // Same challenge -> same transformed challenge, but the mapping is a
  // keyed PRF the attacker cannot model around.
  const crypto::Bytes digest = crypto::Sha256::hash(challenge);
  const crypto::Bytes nonce(digest.begin(), digest.begin() + 16);
  return crypto::aes_ctr(key_, nonce, challenge);
}

CompositePuf::CompositePuf(std::unique_ptr<Puf> pic,
                           std::unique_ptr<SramPuf> asic)
    : pic_(std::move(pic)), asic_(std::move(asic)) {
  if (!pic_ || !asic_) {
    throw std::invalid_argument("CompositePuf: null chip");
  }
  // The ASIC's binding key comes from its stable (noise-free reference)
  // SRAM pattern — in hardware this would be the fuzzy-extracted key.
  asic_key_ = crypto::hkdf(crypto::ByteView{},
                           asic_->evaluate_noiseless({}),
                           crypto::bytes_of("np-chip-binding"), 16);
}

crypto::Bytes CompositePuf::asic_mask(const Challenge& challenge) const {
  // Keystream the length of the response, bound to the challenge.
  const crypto::Bytes digest = crypto::Sha256::hash(challenge);
  const crypto::Bytes nonce(digest.begin(), digest.begin() + 16);
  return crypto::aes_ctr(asic_key_, nonce,
                         crypto::Bytes(pic_->response_bytes(), 0));
}

Response CompositePuf::evaluate(const Challenge& challenge) {
  return crypto::xor_bytes(pic_->evaluate(challenge), asic_mask(challenge));
}

Response CompositePuf::evaluate_noiseless(const Challenge& challenge) const {
  return crypto::xor_bytes(pic_->evaluate_noiseless(challenge),
                           asic_mask(challenge));
}

}  // namespace neuropuls::puf
