#include "puf/ro_puf.hpp"

#include <cmath>
#include <stdexcept>

namespace neuropuls::puf {

Challenge encode_ro_challenge(std::size_t i, std::size_t j) {
  Challenge c(4);
  c[0] = static_cast<std::uint8_t>(i >> 8);
  c[1] = static_cast<std::uint8_t>(i);
  c[2] = static_cast<std::uint8_t>(j >> 8);
  c[3] = static_cast<std::uint8_t>(j);
  return c;
}

RoPair decode_ro_challenge(const Challenge& challenge) {
  if (challenge.size() != 4) {
    throw std::invalid_argument("RoPuf: challenge must be 4 bytes");
  }
  return RoPair{
      static_cast<std::size_t>(challenge[0]) << 8 | challenge[1],
      static_cast<std::size_t>(challenge[2]) << 8 | challenge[3]};
}

RoPuf::RoPuf(RoPufConfig config, std::uint64_t device_seed)
    : config_(config),
      noise_(rng::derive_seed(device_seed, 0x4E)),
      aging_(rng::derive_seed(device_seed, 0x4F)) {
  if (config_.oscillators < 2) {
    throw std::invalid_argument("RoPuf: need at least two oscillators");
  }
  if (config_.count_window_s <= 0.0) {
    throw std::invalid_argument("RoPuf: count window must be positive");
  }
  rng::Gaussian layout(rng::derive_seed(config_.design_seed, 0x10));
  rng::Gaussian process(rng::derive_seed(device_seed, 0x20));
  rng::Gaussian thermal(rng::derive_seed(device_seed, 0x30));
  layout_offsets_.reserve(config_.oscillators);
  process_offsets_.reserve(config_.oscillators);
  thermal_slopes_.reserve(config_.oscillators);
  aging_offsets_.assign(config_.oscillators, 0.0);
  for (std::size_t i = 0; i < config_.oscillators; ++i) {
    layout_offsets_.push_back(layout.next(0.0, config_.layout_sigma_hz));
    process_offsets_.push_back(process.next(0.0, config_.process_sigma_hz));
    thermal_slopes_.push_back(
        config_.thermal_slope_hz_per_k *
        (1.0 + thermal.next(0.0, config_.thermal_mismatch_fraction)));
  }
}

double RoPuf::frequency(std::size_t index) const {
  if (index >= config_.oscillators) {
    throw std::invalid_argument("RoPuf: oscillator index out of range");
  }
  const double dt = config_.temperature - config_.reference_temperature;
  return config_.nominal_frequency_hz + layout_offsets_[index] +
         process_offsets_[index] + aging_offsets_[index] +
         thermal_slopes_[index] * dt;
}

std::int64_t RoPuf::expected_count(std::size_t index) const {
  return static_cast<std::int64_t>(
      std::llround(frequency(index) * config_.count_window_s));
}

std::int64_t RoPuf::measure_count(std::size_t index) {
  const double noisy_freq =
      frequency(index) + noise_.next(0.0, config_.noise_sigma_hz);
  return static_cast<std::int64_t>(
      std::llround(noisy_freq * config_.count_window_s));
}

void RoPuf::age(double hours) {
  if (hours < 0.0) {
    throw std::invalid_argument("RoPuf::age: negative hours");
  }
  // Mean degradation grows ~sqrt(time) (NBTI/HCI empirical law); the
  // per-RO mismatch around the mean is what flips marginal pairs.
  const double before = std::sqrt(age_hours_);
  age_hours_ += hours;
  const double step = std::sqrt(age_hours_) - before;
  const double mean_slowdown = 1.0e4 * step;  // Hz per sqrt-hour
  for (auto& offset : aging_offsets_) {
    offset -= mean_slowdown * (1.0 + aging_.next(0.0, 0.3));
  }
}

Response RoPuf::evaluate(const Challenge& challenge) {
  const RoPair pair = decode_ro_challenge(challenge);
  const std::int64_t delta = measure_count(pair.i) - measure_count(pair.j);
  // MSB-first convention: the single response bit lives at bit 7.
  return Response{static_cast<std::uint8_t>(delta > 0 ? 0x80 : 0x00)};
}

Response RoPuf::evaluate_noiseless(const Challenge& challenge) const {
  const RoPair pair = decode_ro_challenge(challenge);
  const std::int64_t delta = expected_count(pair.i) - expected_count(pair.j);
  return Response{static_cast<std::uint8_t>(delta > 0 ? 0x80 : 0x00)};
}

}  // namespace neuropuls::puf
