// SRAM power-up PUF — the ASIC-side weak PUF of Fig. 1.
//
// Each 6T cell has a fixed mismatch skew (device fingerprint, Gaussian
// across cells and devices); at power-up the cell resolves toward the sign
// of skew + thermal noise. Cells with |skew| >> noise always resolve the
// same way; near-metastable cells flip between power-ups — this is the
// standard physical model behind SRAM PUF reliability numbers, and it also
// reproduces the *temperature* sensitivity (noise grows as sqrt(T)).
//
// The paper binds the PIC to its driving ASIC through this primitive
// ("an ASIC (based on SRAM) to guarantee unique binding between the
// chips") — see `composite.hpp`.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/prng.hpp"
#include "puf/puf.hpp"

namespace neuropuls::puf {

struct SramPufConfig {
  std::size_t cells = 2048;       // response bits
  double skew_sigma = 1.0;        // process mismatch spread (a.u.)
  double noise_sigma = 0.08;      // power-up noise at reference temperature
  double temperature = 300.0;     // kelvin
  double reference_temperature = 300.0;
};

class SramPuf final : public Puf {
 public:
  /// `device_seed` fixes the per-cell skews; each evaluate() re-samples
  /// power-up noise.
  SramPuf(SramPufConfig config, std::uint64_t device_seed);

  std::size_t challenge_bytes() const override { return 0; }
  std::size_t response_bytes() const override { return config_.cells / 8; }

  Response evaluate(const Challenge& challenge) override;
  Response evaluate_noiseless(const Challenge& challenge) const override;
  std::string name() const override { return "sram-puf"; }

  /// Weak-PUF convenience: power-up read with the implicit challenge.
  Response read() { return evaluate({}); }

  /// Changes the operating temperature (affects noise amplitude).
  void set_temperature(double kelvin) noexcept;

  /// Ages the device by `hours` of operation (§V: "effects of aging").
  /// NBTI-style drift: each cell's skew takes a random walk whose
  /// magnitude grows ~sqrt(hours), so marginal cells flip preference and
  /// the distance to the time-zero enrollment grows. Cumulative.
  void age(double hours);

  /// Total accumulated stress time.
  double age_hours() const noexcept { return age_hours_; }

  /// The analog skew of one cell (used by tests and filtering research).
  double cell_skew(std::size_t index) const { return skews_.at(index); }

 private:
  double noise_sigma_at_temperature() const noexcept;

  SramPufConfig config_;
  std::vector<double> skews_;
  rng::Gaussian noise_;
  rng::Gaussian aging_;
  double age_hours_ = 0.0;
};

}  // namespace neuropuls::puf
