#include "puf/puf.hpp"

#include <stdexcept>
#include <vector>

namespace neuropuls::puf {

Response enroll_majority(Puf& puf, const Challenge& challenge,
                         unsigned readings) {
  if (readings == 0 || readings % 2 == 0) {
    throw std::invalid_argument("enroll_majority: readings must be odd");
  }
  const std::size_t bytes = puf.response_bytes();
  std::vector<unsigned> ones(bytes * 8, 0);
  for (unsigned r = 0; r < readings; ++r) {
    const Response resp = puf.evaluate(challenge);
    for (std::size_t bit = 0; bit < ones.size(); ++bit) {
      ones[bit] += (resp[bit / 8] >> (7 - bit % 8)) & 1;
    }
  }
  Response out(bytes, 0);
  for (std::size_t bit = 0; bit < ones.size(); ++bit) {
    if (ones[bit] > readings / 2) {
      out[bit / 8] |= static_cast<std::uint8_t>(1u << (7 - bit % 8));
    }
  }
  return out;
}

Response Puf::evaluate_robust(const Challenge& challenge, unsigned readings) {
  // Same majority machinery as enrollment; `| 1` forces an odd vote so a
  // tie can never occur.
  return enroll_majority(*this, challenge, readings == 0 ? 1 : (readings | 1));
}

double intra_distance(Puf& puf, const Challenge& challenge,
                      const Response& reference, unsigned readings) {
  if (readings == 0) {
    throw std::invalid_argument("intra_distance: need at least one reading");
  }
  double total = 0.0;
  for (unsigned r = 0; r < readings; ++r) {
    total += crypto::fractional_hamming_distance(puf.evaluate(challenge),
                                                 reference);
  }
  return total / readings;
}

}  // namespace neuropuls::puf
