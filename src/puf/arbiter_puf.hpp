// Arbiter PUF (and XOR-arbiter variant) — the strong-PUF electronic
// baseline that machine-learning attacks famously break (§IV, ref. [28]).
//
// Standard additive delay model: an n-stage chain where challenge bit c_i
// selects straight/crossed paths; the final delay difference is a linear
// function of per-stage delay mismatches over the *parity feature vector*
//   phi_i = prod_{j>=i} (1 - 2 c_j),
// and the response is its sign. Because the model is linear in phi,
// logistic regression learns it from a few thousand CRPs — the attack
// implemented in `src/attacks/ml_attack.hpp` and the foil against which
// the photonic PUF's resistance is measured (experiment E6).
//
// The XOR variant evaluates k independent chains and XORs their sign bits,
// the classical (and still ultimately breakable) hardening.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/prng.hpp"
#include "puf/puf.hpp"

namespace neuropuls::puf {

struct ArbiterPufConfig {
  std::size_t stages = 64;
  double delay_sigma = 1.0;    // per-stage mismatch spread (a.u.)
  double noise_sigma = 0.02;   // per-evaluation arbiter noise
  std::size_t xor_chains = 1;  // 1 = plain arbiter
};

class ArbiterPuf final : public Puf {
 public:
  ArbiterPuf(ArbiterPufConfig config, std::uint64_t device_seed);

  /// Challenge: stages/8 bytes; response: 1 byte (LSB).
  std::size_t challenge_bytes() const override {
    return (config_.stages + 7) / 8;
  }
  std::size_t response_bytes() const override { return 1; }

  Response evaluate(const Challenge& challenge) override;
  Response evaluate_noiseless(const Challenge& challenge) const override;
  std::string name() const override {
    return config_.xor_chains > 1 ? "xor-arbiter-puf" : "arbiter-puf";
  }

  /// The analog delay difference of chain `chain` for a challenge —
  /// exposed for the side-channel experiments (§IV: power/timing
  /// side channels on electronic PUFs).
  double delay_difference(std::size_t chain,
                          const Challenge& challenge) const;

  std::size_t stages() const noexcept { return config_.stages; }
  std::size_t xor_chains() const noexcept { return config_.xor_chains; }

 private:
  std::vector<double> parity_features(const Challenge& challenge) const;

  ArbiterPufConfig config_;
  // weights_[chain][stage] plus a bias term at index `stages`.
  std::vector<std::vector<double>> weights_;
  rng::Gaussian noise_;
};

}  // namespace neuropuls::puf
