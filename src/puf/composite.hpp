// PUF composition: challenge encryption and PIC+ASIC chip binding.
//
// Two §IV hardening constructions:
//
// 1. `EncryptedChallengePuf` — "architectural solutions that rely on the
//    combination of a strong and a weak PUF to encrypt the challenges
//    before entering the photonic PUF as we previously proposed for
//    purely electronic PUFs" (ref. [30], Vatajelu et al.). The weak PUF
//    yields a device-secret AES key; every external challenge is
//    encrypted with it before reaching the strong PUF, so the mapping a
//    modelling attacker observes is composed with a PRP they cannot
//    invert — linear/parity feature models stop working even on an
//    arbiter PUF.
//
// 2. `CompositePuf` — "PUF intrinsically bound at both the PIC and the
//    ASIC levels ... it is possible to generate a composite response from
//    the 2 chips, which can be used to assess the genuine character of
//    the accelerator as a whole." The ASIC post-processes the PIC
//    response with a keyed transform derived from its own SRAM PUF;
//    swapping either chip (tampering) changes the composite response.
#pragma once

#include <memory>

#include "crypto/aes.hpp"
#include "puf/puf.hpp"
#include "puf/sram_puf.hpp"

namespace neuropuls::puf {

/// Wraps a strong PUF so that challenges are AES-CTR-whitened with a key
/// derived from a weak PUF before evaluation.
class EncryptedChallengePuf final : public Puf {
 public:
  /// `key_source` is read once at construction (the weak PUF's enrolled
  /// key material, 16 bytes after hashing).
  EncryptedChallengePuf(std::unique_ptr<Puf> inner, const Response& weak_key);

  std::size_t challenge_bytes() const override {
    return inner_->challenge_bytes();
  }
  std::size_t response_bytes() const override {
    return inner_->response_bytes();
  }

  Response evaluate(const Challenge& challenge) override {
    return inner_->evaluate(transform(challenge));
  }
  Response evaluate_noiseless(const Challenge& challenge) const override {
    return inner_->evaluate_noiseless(transform(challenge));
  }
  std::string name() const override {
    return "enc-challenge(" + inner_->name() + ")";
  }

  /// The whitening transform itself (exposed for tests).
  Challenge transform(const Challenge& challenge) const;

 private:
  std::unique_ptr<Puf> inner_;
  crypto::Bytes key_;
};

/// PIC response post-processed by the bound ASIC: the composite response
/// is response XOR keystream(sram_key, challenge). The genuine pair
/// (PIC i, ASIC i) produces enrolled responses; any swapped chip fails.
class CompositePuf final : public Puf {
 public:
  CompositePuf(std::unique_ptr<Puf> pic, std::unique_ptr<SramPuf> asic);

  std::size_t challenge_bytes() const override {
    return pic_->challenge_bytes();
  }
  std::size_t response_bytes() const override {
    return pic_->response_bytes();
  }

  Response evaluate(const Challenge& challenge) override;
  Response evaluate_noiseless(const Challenge& challenge) const override;
  std::string name() const override {
    return "composite(" + pic_->name() + "+sram)";
  }

 private:
  crypto::Bytes asic_mask(const Challenge& challenge) const;

  std::unique_ptr<Puf> pic_;
  std::unique_ptr<SramPuf> asic_;
  crypto::Bytes asic_key_;  // derived once from the ASIC's stable bits
};

}  // namespace neuropuls::puf
