#include "puf/photonic_puf.hpp"

#include "common/parallel.hpp"
#include "common/simd.hpp"
#include "crypto/chacha20.hpp"
#include "faults/device_faults.hpp"
#include "photonic/field_block.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace neuropuls::puf {

using photonic::Complex;
using photonic::OperatingPoint;

namespace {

// Upper bound on cached operating points. Thermal sweeps step the
// temperature, so a handful of entries keeps every sweep point hot
// without letting a long scan grow the cache unboundedly.
constexpr std::size_t kMaxOperatingTables = 8;

void run_parallel(common::ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  if (pool != nullptr) {
    pool->parallel_for(n, fn);
  } else {
    common::parallel_for(n, fn);
  }
}

}  // namespace

PhotonicPuf::PhotonicPuf(PhotonicPufConfig config, std::uint64_t wafer_seed,
                         std::uint64_t device_index)
    : config_(config),
      circuit_(config.design,
               photonic::FabricationModel(wafer_seed, device_index,
                                          config.variation)),
      device_seed_(rng::derive_seed(wafer_seed, device_index)) {
  if (config_.challenge_bits == 0 || config_.challenge_bits % 8 != 0) {
    throw std::invalid_argument(
        "PhotonicPuf: challenge_bits must be a positive multiple of 8");
  }
  if (config_.design.ports % 2 != 0 || config_.design.ports < 2) {
    throw std::invalid_argument("PhotonicPuf: ports must be even");
  }
  if ((config_.challenge_bits * (config_.design.ports / 2)) % 8 != 0) {
    throw std::invalid_argument("PhotonicPuf: response bits not byte-aligned");
  }
  if (config_.samples_per_bit == 0 || config_.sample_rate_hz <= 0.0) {
    throw std::invalid_argument("PhotonicPuf: bad sampling parameters");
  }
  calibrate();
}

std::shared_ptr<const PhotonicPuf::OperatingTables>
PhotonicPuf::operating_tables(const OperatingPoint& op) const {
  {
    const common::MutexLock lock(tables_mutex_);
    for (auto it = tables_cache_.begin(); it != tables_cache_.end(); ++it) {
      if ((*it)->wavelength == op.wavelength &&
          (*it)->temperature == op.temperature) {
        auto hit = *it;
        // Move-to-front so sweeps evict the stalest point first.
        tables_cache_.erase(it);
        tables_cache_.insert(tables_cache_.begin(), hit);
        return hit;
      }
    }
  }
  // Build outside the lock: concurrent first touches of the same point may
  // build twice, but never block each other behind the (expensive)
  // per-layer transfer evaluation.
  auto built = std::make_shared<OperatingTables>();
  built->wavelength = op.wavelength;
  built->temperature = op.temperature;
  built->scrambler = photonic::make_scrambler_tables(
      circuit_, op, 1.0 / config_.sample_rate_hz);
  const common::MutexLock lock(tables_mutex_);
  tables_cache_.insert(tables_cache_.begin(), built);
  if (tables_cache_.size() > kMaxOperatingTables) {
    tables_cache_.resize(kMaxOperatingTables);
  }
  return built;
}

void PhotonicPuf::calibrate() {
  if (config_.calibration_challenges == 0) return;
  // Public calibration sequence (identical for every device; the
  // thresholds themselves are device-specific measurements and live with
  // the helper data). Medians are taken at the *enrollment* operating
  // point; later thermal drift moves the margins — the E11 effect.
  crypto::ChaChaDrbg calib_rng(crypto::bytes_of("np-phot-calib"));
  const std::size_t count = config_.calibration_challenges;
  std::vector<Challenge> challenges;
  challenges.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    challenges.push_back(calib_rng.generate(challenge_bytes()));
  }

  // Transpose as we go: each evaluation's (window, pair) matrix scatters
  // straight into one flat slot-major buffer, so the per-slot medians run
  // on contiguous spans and no per-challenge nested sample structures are
  // ever retained. (Exact medians need every sample, so the flat buffer
  // is the irreducible footprint; the former layout added one heap
  // vector per challenge per window on top of it.)
  const std::size_t windows = config_.challenge_bits;
  const std::size_t pairs = config_.design.ports / 2;
  std::vector<double> slot_samples(windows * pairs * count);
  const std::size_t lanes = simd::kDefaultLanes;
  const std::size_t blocks = (count + lanes - 1) / lanes;
  common::parallel_for(blocks, [&](std::size_t blk) {
    const std::size_t begin = blk * lanes;
    const std::size_t n = std::min(lanes, count - begin);
    const auto analog = analog_core_block(challenges.data() + begin, n,
                                          /*noisy=*/false, nullptr,
                                          config_.temperature);
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t w = 0; w < windows; ++w) {
        for (std::size_t p = 0; p < pairs; ++p) {
          slot_samples[(w * pairs + p) * count + begin + j] = analog[j][w][p];
        }
      }
    }
  });

  thresholds_.assign(windows, std::vector<double>(pairs, 0.0));
  for (std::size_t w = 0; w < windows; ++w) {
    for (std::size_t p = 0; p < pairs; ++p) {
      const auto begin =
          slot_samples.begin() +
          static_cast<std::ptrdiff_t>((w * pairs + p) * count);
      const auto end = begin + static_cast<std::ptrdiff_t>(count);
      std::nth_element(begin, begin + static_cast<std::ptrdiff_t>(count / 2),
                       end);
      thresholds_[w][p] = begin[count / 2];
    }
  }
}

void PhotonicPuf::subtract_thresholds(
    std::vector<std::vector<double>>& analog) const {
  if (thresholds_.empty()) return;
  for (std::size_t w = 0; w < analog.size(); ++w) {
    for (std::size_t p = 0; p < analog[w].size(); ++p) {
      analog[w][p] -= thresholds_[w][p];
    }
  }
}

std::vector<std::vector<double>> PhotonicPuf::analog_core(
    const Challenge& challenge, bool noisy, std::uint64_t noise_seed,
    double temperature, std::uint64_t eval_index) const {
  if (challenge.size() != challenge_bytes()) {
    throw std::invalid_argument("PhotonicPuf: wrong challenge size");
  }

  // Device faults perturb only the physical measurement path, never the
  // verifier-side model: the noiseless branch always sees a healthy chip.
  const faults::DeviceFaultModel* fm =
      (noisy && fault_model_) ? fault_model_.get() : nullptr;
  if (fm != nullptr) {
    temperature += fm->temperature_offset(eval_index);
  }

  const OperatingPoint op{config_.laser.wavelength, temperature};
  const std::size_t ports = config_.design.ports;
  const std::size_t pairs = ports / 2;
  const std::size_t spb = config_.samples_per_bit;

  // Source chain. The noiseless path replaces the laser with an ideal
  // constant carrier but keeps the (deterministic) MZM dynamics.
  photonic::LaserParameters laser_params = config_.laser;
  laser_params.power_mw *= config_.laser_power_scale;
  if (fm != nullptr) {
    laser_params.power_mw *= fm->laser_scale(eval_index);
  }
  photonic::Laser laser(laser_params, config_.sample_rate_hz,
                        rng::derive_seed(noise_seed, 0x11));
  photonic::MachZehnderModulator mzm(config_.modulator);
  const double ideal_amp = laser.mean_amplitude();

  // Static transfer constants come from the per-operating-point cache and
  // are shared across every concurrent evaluation; only the ring delay
  // lines (the scrambler's mutable state) are built per call.
  const auto tables = operating_tables(op);
  photonic::TimeDomainScrambler scrambler(tables->scrambler);
  const photonic::PortVector* taps_ptr =
      &tables->scrambler->input_coefficients();
  // Phase-shifter aging rotates each input tap; pointer swap so the
  // healthy path never copies the vector. Degraded photodiodes scale the
  // detected photocurrent per port (the Photodiode ctor rejects
  // responsivity <= 0, so a dead diode lives here as a post-detect 0.0).
  photonic::PortVector aged_taps;
  std::vector<double> pd_scale;
  if (fm != nullptr) {
    aged_taps = *taps_ptr;
    for (std::size_t p = 0; p < ports; ++p) {
      aged_taps[p] *= std::polar(1.0, fm->phase_drift(eval_index, p));
    }
    taps_ptr = &aged_taps;
    pd_scale.resize(ports);
    for (std::size_t p = 0; p < ports; ++p) {
      pd_scale[p] = fm->photodiode_scale(p);
    }
  }
  const photonic::PortVector& taps = *taps_ptr;

  // Per-port detectors. The noiseless path needs no per-port noise
  // streams — mean_current is parameter-only — so one detector serves
  // every port.
  std::vector<photonic::Photodiode> pds;
  if (noisy) {
    pds.reserve(ports);
    for (std::size_t p = 0; p < ports; ++p) {
      pds.emplace_back(config_.photodiode,
                       rng::derive_seed(noise_seed, 0x20 + p));
    }
  }
  const photonic::Photodiode mean_pd(config_.photodiode, 0);

  std::vector<std::vector<double>> analog(
      config_.challenge_bits, std::vector<double>(pairs, 0.0));

  photonic::PortVector state(ports, Complex{0.0, 0.0});
  std::vector<double> window_current(ports, 0.0);

  for (std::size_t bit_index = 0; bit_index < config_.challenge_bits;
       ++bit_index) {
    const bool bit =
        (challenge[bit_index / 8] >> (7 - bit_index % 8)) & 1;
    std::fill(window_current.begin(), window_current.end(), 0.0);

    for (std::size_t s = 0; s < spb; ++s) {
      const Complex carrier =
          noisy ? laser.sample() : Complex{ideal_amp, 0.0};
      const Complex modulated = mzm.modulate(carrier, bit);
      // Fig. 2: the modulated beam is first split across all paths; the
      // scrambler then transforms the state buffer in place — no per-
      // sample allocation.
      for (std::size_t p = 0; p < ports; ++p) state[p] = modulated * taps[p];
      scrambler.step_inplace(state);
      for (std::size_t p = 0; p < ports; ++p) {
        double current =
            noisy ? pds[p].detect(state[p]) : mean_pd.mean_current(state[p]);
        if (fm != nullptr) current *= pd_scale[p];
        window_current[p] += current;
      }
    }

    for (std::size_t pair = 0; pair < pairs; ++pair) {
      analog[bit_index][pair] =
          (window_current[2 * pair] - window_current[2 * pair + 1]) /
          static_cast<double>(spb);
    }
  }
  return analog;
}

std::vector<std::vector<std::vector<double>>> PhotonicPuf::analog_core_block(
    const Challenge* challenges, std::size_t lane_count, bool noisy,
    const std::uint64_t* noise_seeds, double temperature) const {
  if (lane_count == 0) {
    throw std::invalid_argument("PhotonicPuf: empty lane block");
  }
  for (std::size_t lane = 0; lane < lane_count; ++lane) {
    if (challenges[lane].size() != challenge_bytes()) {
      throw std::invalid_argument("PhotonicPuf: wrong challenge size");
    }
  }

  const OperatingPoint op{config_.laser.wavelength, temperature};
  const std::size_t ports = config_.design.ports;
  const std::size_t pairs = ports / 2;
  const std::size_t spb = config_.samples_per_bit;
  const std::size_t w = lane_count;

  // Per-lane source chains. The MZM is deterministic but stateful (one-
  // pole drive filter), so every lane carries its own; the noisy path
  // additionally gives each lane its own Laser and per-port Photodiodes,
  // seeded exactly as the serial path seeds them from that lane's noise
  // seed — so each lane consumes the same RNG streams in the same order.
  photonic::LaserParameters laser_params = config_.laser;
  laser_params.power_mw *= config_.laser_power_scale;
  const double ideal_amp = std::sqrt(laser_params.power_mw * 1e-3);
  std::vector<photonic::MachZehnderModulator> mzms;
  mzms.reserve(w);
  std::vector<photonic::Laser> lasers;
  std::vector<photonic::Photodiode> pds;  // [lane * ports + port]
  if (noisy) {
    lasers.reserve(w);
    pds.reserve(w * ports);
  }
  for (std::size_t lane = 0; lane < w; ++lane) {
    mzms.emplace_back(config_.modulator);
    if (noisy) {
      lasers.emplace_back(laser_params, config_.sample_rate_hz,
                          rng::derive_seed(noise_seeds[lane], 0x11));
      for (std::size_t p = 0; p < ports; ++p) {
        pds.emplace_back(config_.photodiode,
                         rng::derive_seed(noise_seeds[lane], 0x20 + p));
      }
    }
  }
  const photonic::Photodiode mean_pd(config_.photodiode, 0);

  const auto tables = operating_tables(op);
  photonic::TimeDomainScrambler scrambler(tables->scrambler, w);
  const photonic::PortVector& taps = tables->scrambler->input_coefficients();

  std::vector<std::vector<std::vector<double>>> analog(
      w, std::vector<std::vector<double>>(config_.challenge_bits,
                                          std::vector<double>(pairs, 0.0)));

  photonic::FieldBlock block(ports, w);
  // SoA lane planes for the per-sample modulated carriers and the
  // per-port integrate-and-dump accumulators ([port][lane]).
  simd::AlignedVector<double> mod_re(w, 0.0);
  simd::AlignedVector<double> mod_im(w, 0.0);
  simd::AlignedVector<double> window_current(ports * w, 0.0);
  std::vector<std::uint8_t> bits(w, 0);

  for (std::size_t bit_index = 0; bit_index < config_.challenge_bits;
       ++bit_index) {
    for (std::size_t lane = 0; lane < w; ++lane) {
      bits[lane] =
          (challenges[lane][bit_index / 8] >> (7 - bit_index % 8)) & 1;
    }
    std::fill(window_current.begin(), window_current.end(), 0.0);

    for (std::size_t s = 0; s < spb; ++s) {
      for (std::size_t lane = 0; lane < w; ++lane) {
        const Complex carrier =
            noisy ? lasers[lane].sample() : Complex{ideal_amp, 0.0};
        const Complex modulated =
            mzms[lane].modulate(carrier, bits[lane] != 0);
        mod_re[lane] = modulated.real();
        mod_im[lane] = modulated.imag();
      }
      for (std::size_t p = 0; p < ports; ++p) {
        simd::complex_fanout(mod_re.data(), mod_im.data(), taps[p].real(),
                             taps[p].imag(), block.re(p), block.im(p), w);
      }
      scrambler.step_block(block);
      if (noisy) {
        for (std::size_t p = 0; p < ports; ++p) {
          double* acc = window_current.data() + p * w;
          for (std::size_t lane = 0; lane < w; ++lane) {
            acc[lane] += pds[lane * ports + p].detect(block.at(p, lane));
          }
        }
      } else {
        for (std::size_t p = 0; p < ports; ++p) {
          mean_pd.accumulate_mean_block(block.re(p), block.im(p),
                                        window_current.data() + p * w, w);
        }
      }
    }

    for (std::size_t lane = 0; lane < w; ++lane) {
      for (std::size_t pair = 0; pair < pairs; ++pair) {
        analog[lane][bit_index][pair] =
            (window_current[2 * pair * w + lane] -
             window_current[(2 * pair + 1) * w + lane]) /
            static_cast<double>(spb);
      }
    }
  }
  return analog;
}

Response PhotonicPuf::threshold_bits(
    const std::vector<std::vector<double>>& analog) const {
  Response out(response_bytes(), 0);
  std::size_t bit = 0;
  for (const auto& row : analog) {
    for (double delta : row) {
      if (delta > 0.0) {
        out[bit / 8] |= static_cast<std::uint8_t>(1u << (7 - bit % 8));
      }
      ++bit;
    }
  }
  return out;
}

Response PhotonicPuf::evaluate(const Challenge& challenge) {
  const std::uint64_t counter =
      eval_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::uint64_t seed = rng::derive_seed(device_seed_, counter);
  auto margins = analog_core(challenge, /*noisy=*/true, seed,
                             config_.temperature, counter);
  subtract_thresholds(margins);
  return threshold_bits(margins);
}

std::vector<Response> PhotonicPuf::evaluate_batch(
    const std::vector<Challenge>& challenges, common::ThreadPool* pool) {
  // Reserve one counter value per item up front; item i always gets
  // base + i + 1 regardless of which thread runs it or when, making the
  // batch bit-identical to the equivalent serial evaluate() sequence.
  const std::uint64_t base = eval_counter_.fetch_add(
      challenges.size(), std::memory_order_relaxed);
  if (fault_model_) {
    // Fault-model path: the SoA block engine shares one operating point
    // (temperature) across all lanes, which a per-evaluation thermal
    // transient would violate. Route each item through the scalar core —
    // still parallel across the pool, still seeded by item index, so the
    // batch stays bit-identical to the serial evaluate() sequence.
    std::vector<Response> responses_scalar(challenges.size());
    run_parallel(pool, challenges.size(), [&](std::size_t i) {
      const std::uint64_t counter = base + static_cast<std::uint64_t>(i) + 1;
      auto margins = analog_core(challenges[i], /*noisy=*/true,
                                 rng::derive_seed(device_seed_, counter),
                                 config_.temperature, counter);
      subtract_thresholds(margins);
      responses_scalar[i] = threshold_bits(margins);
    });
    return responses_scalar;
  }
  // Each pool task evaluates one lane block of kDefaultLanes challenges
  // through the SoA engine; lane j of block b is item b*W + j, so seeds
  // still bind to item index, never to scheduling order.
  const std::size_t lanes = simd::kDefaultLanes;
  const std::size_t blocks = (challenges.size() + lanes - 1) / lanes;
  std::vector<Response> responses(challenges.size());
  run_parallel(pool, blocks, [&](std::size_t blk) {
    const std::size_t begin = blk * lanes;
    const std::size_t count = std::min(lanes, challenges.size() - begin);
    std::vector<std::uint64_t> seeds(count);
    for (std::size_t j = 0; j < count; ++j) {
      seeds[j] = rng::derive_seed(
          device_seed_, base + static_cast<std::uint64_t>(begin + j) + 1);
    }
    auto analog = analog_core_block(challenges.data() + begin, count,
                                    /*noisy=*/true, seeds.data(),
                                    config_.temperature);
    for (std::size_t j = 0; j < count; ++j) {
      subtract_thresholds(analog[j]);
      responses[begin + j] = threshold_bits(analog[j]);
    }
  });
  return responses;
}

std::vector<Response> PhotonicPuf::evaluate_noiseless_batch(
    const std::vector<Challenge>& challenges, common::ThreadPool* pool) const {
  const std::size_t lanes = simd::kDefaultLanes;
  const std::size_t blocks = (challenges.size() + lanes - 1) / lanes;
  std::vector<Response> responses(challenges.size());
  run_parallel(pool, blocks, [&](std::size_t blk) {
    const std::size_t begin = blk * lanes;
    const std::size_t count = std::min(lanes, challenges.size() - begin);
    auto analog = analog_core_block(challenges.data() + begin, count,
                                    /*noisy=*/false, nullptr,
                                    config_.temperature);
    for (std::size_t j = 0; j < count; ++j) {
      subtract_thresholds(analog[j]);
      responses[begin + j] = threshold_bits(analog[j]);
    }
  });
  return responses;
}

Response PhotonicPuf::evaluate_noiseless(const Challenge& challenge) const {
  auto margins = analog_core(challenge, /*noisy=*/false, 0,
                             config_.temperature, 0);
  subtract_thresholds(margins);
  return threshold_bits(margins);
}

Response PhotonicPuf::evaluate_noiseless_at(const Challenge& challenge,
                                            double temperature_kelvin) const {
  auto margins =
      analog_core(challenge, /*noisy=*/false, 0, temperature_kelvin, 0);
  subtract_thresholds(margins);
  return threshold_bits(margins);
}

std::vector<std::vector<double>> PhotonicPuf::evaluate_analog(
    const Challenge& challenge, bool noisy) {
  const std::uint64_t counter =
      noisy ? eval_counter_.fetch_add(1, std::memory_order_relaxed) + 1 : 0;
  const std::uint64_t seed =
      noisy ? rng::derive_seed(device_seed_, counter) : 0;
  auto margins =
      analog_core(challenge, noisy, seed, config_.temperature, counter);
  subtract_thresholds(margins);
  return margins;
}

double PhotonicPuf::response_throughput_bps() const noexcept {
  const double bits = static_cast<double>(response_bits());
  return bits / interrogation_time_s();
}

double PhotonicPuf::interrogation_time_s() const noexcept {
  const double challenge_duration =
      static_cast<double>(config_.challenge_bits * config_.samples_per_bit) /
      config_.sample_rate_hz;
  return challenge_duration + circuit_.memory_depth_seconds();
}

PhotonicPufConfig small_photonic_config() {
  PhotonicPufConfig cfg;
  cfg.design.ports = 4;
  cfg.design.layers = 3;
  cfg.challenge_bits = 16;
  cfg.calibration_challenges = 31;
  return cfg;
}

}  // namespace neuropuls::puf
