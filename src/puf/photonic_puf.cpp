#include "puf/photonic_puf.hpp"

#include "crypto/chacha20.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace neuropuls::puf {

using photonic::Complex;
using photonic::OperatingPoint;

PhotonicPuf::PhotonicPuf(PhotonicPufConfig config, std::uint64_t wafer_seed,
                         std::uint64_t device_index)
    : config_(config),
      circuit_(config.design,
               photonic::FabricationModel(wafer_seed, device_index,
                                          config.variation)),
      device_seed_(rng::derive_seed(wafer_seed, device_index)) {
  if (config_.challenge_bits == 0 || config_.challenge_bits % 8 != 0) {
    throw std::invalid_argument(
        "PhotonicPuf: challenge_bits must be a positive multiple of 8");
  }
  if (config_.design.ports % 2 != 0 || config_.design.ports < 2) {
    throw std::invalid_argument("PhotonicPuf: ports must be even");
  }
  if ((config_.challenge_bits * (config_.design.ports / 2)) % 8 != 0) {
    throw std::invalid_argument("PhotonicPuf: response bits not byte-aligned");
  }
  if (config_.samples_per_bit == 0 || config_.sample_rate_hz <= 0.0) {
    throw std::invalid_argument("PhotonicPuf: bad sampling parameters");
  }
  calibrate();
}

void PhotonicPuf::calibrate() {
  if (config_.calibration_challenges == 0) return;
  // Public calibration sequence (identical for every device; the
  // thresholds themselves are device-specific measurements and live with
  // the helper data). Medians are taken at the *enrollment* operating
  // point; later thermal drift moves the margins — the E11 effect.
  crypto::ChaChaDrbg calib_rng(crypto::bytes_of("np-phot-calib"));
  std::vector<std::vector<std::vector<double>>> samples;
  samples.reserve(config_.calibration_challenges);
  for (std::size_t i = 0; i < config_.calibration_challenges; ++i) {
    samples.push_back(analog_core(calib_rng.generate(challenge_bytes()),
                                  false, 0, config_.temperature));
  }
  const std::size_t windows = samples.front().size();
  const std::size_t pairs = samples.front().front().size();
  thresholds_.assign(windows, std::vector<double>(pairs, 0.0));
  std::vector<double> slot(samples.size());
  for (std::size_t w = 0; w < windows; ++w) {
    for (std::size_t p = 0; p < pairs; ++p) {
      for (std::size_t i = 0; i < samples.size(); ++i) {
        slot[i] = samples[i][w][p];
      }
      std::nth_element(slot.begin(), slot.begin() + static_cast<std::ptrdiff_t>(slot.size() / 2),
                       slot.end());
      thresholds_[w][p] = slot[slot.size() / 2];
    }
  }
}

void PhotonicPuf::subtract_thresholds(
    std::vector<std::vector<double>>& analog) const {
  if (thresholds_.empty()) return;
  for (std::size_t w = 0; w < analog.size(); ++w) {
    for (std::size_t p = 0; p < analog[w].size(); ++p) {
      analog[w][p] -= thresholds_[w][p];
    }
  }
}

std::vector<std::vector<double>> PhotonicPuf::analog_core(
    const Challenge& challenge, bool noisy, std::uint64_t noise_seed,
    double temperature) const {
  if (challenge.size() != challenge_bytes()) {
    throw std::invalid_argument("PhotonicPuf: wrong challenge size");
  }

  const OperatingPoint op{config_.laser.wavelength, temperature};
  const double sample_period = 1.0 / config_.sample_rate_hz;
  const std::size_t ports = config_.design.ports;
  const std::size_t pairs = ports / 2;
  const std::size_t spb = config_.samples_per_bit;

  // Source chain. The noiseless path replaces the laser with an ideal
  // constant carrier but keeps the (deterministic) MZM dynamics.
  photonic::LaserParameters laser_params = config_.laser;
  laser_params.power_mw *= config_.laser_power_scale;
  photonic::Laser laser(laser_params, config_.sample_rate_hz,
                        rng::derive_seed(noise_seed, 0x11));
  photonic::MachZehnderModulator mzm(config_.modulator);
  const double ideal_amp = laser.mean_amplitude();

  photonic::TimeDomainScrambler scrambler(circuit_, op, sample_period);
  const photonic::PortVector taps = circuit_.input_coefficients(op);

  // Per-port detectors.
  std::vector<photonic::Photodiode> pds;
  pds.reserve(ports);
  for (std::size_t p = 0; p < ports; ++p) {
    pds.emplace_back(config_.photodiode, rng::derive_seed(noise_seed, 0x20 + p));
  }

  std::vector<std::vector<double>> analog(
      config_.challenge_bits, std::vector<double>(pairs, 0.0));

  photonic::PortVector in(ports, Complex{0.0, 0.0});
  std::vector<double> window_current(ports, 0.0);

  for (std::size_t bit_index = 0; bit_index < config_.challenge_bits;
       ++bit_index) {
    const bool bit =
        (challenge[bit_index / 8] >> (7 - bit_index % 8)) & 1;
    std::fill(window_current.begin(), window_current.end(), 0.0);

    for (std::size_t s = 0; s < spb; ++s) {
      const Complex carrier =
          noisy ? laser.sample() : Complex{ideal_amp, 0.0};
      const Complex modulated = mzm.modulate(carrier, bit);
      // Fig. 2: the modulated beam is first split across all paths.
      for (std::size_t p = 0; p < ports; ++p) in[p] = modulated * taps[p];
      const auto out = scrambler.step(in);
      for (std::size_t p = 0; p < ports; ++p) {
        window_current[p] +=
            noisy ? pds[p].detect(out[p]) : pds[p].mean_current(out[p]);
      }
    }

    for (std::size_t pair = 0; pair < pairs; ++pair) {
      analog[bit_index][pair] =
          (window_current[2 * pair] - window_current[2 * pair + 1]) /
          static_cast<double>(spb);
    }
  }
  return analog;
}

Response PhotonicPuf::threshold_bits(
    const std::vector<std::vector<double>>& analog) const {
  Response out(response_bytes(), 0);
  std::size_t bit = 0;
  for (const auto& row : analog) {
    for (double delta : row) {
      if (delta > 0.0) {
        out[bit / 8] |= static_cast<std::uint8_t>(1u << (7 - bit % 8));
      }
      ++bit;
    }
  }
  return out;
}

Response PhotonicPuf::evaluate(const Challenge& challenge) {
  const std::uint64_t seed = rng::derive_seed(device_seed_, ++eval_counter_);
  auto margins = analog_core(challenge, /*noisy=*/true, seed,
                             config_.temperature);
  subtract_thresholds(margins);
  return threshold_bits(margins);
}

Response PhotonicPuf::evaluate_noiseless(const Challenge& challenge) const {
  auto margins = analog_core(challenge, /*noisy=*/false, 0,
                             config_.temperature);
  subtract_thresholds(margins);
  return threshold_bits(margins);
}

Response PhotonicPuf::evaluate_noiseless_at(const Challenge& challenge,
                                            double temperature_kelvin) const {
  auto margins =
      analog_core(challenge, /*noisy=*/false, 0, temperature_kelvin);
  subtract_thresholds(margins);
  return threshold_bits(margins);
}

std::vector<std::vector<double>> PhotonicPuf::evaluate_analog(
    const Challenge& challenge, bool noisy) {
  const std::uint64_t seed =
      noisy ? rng::derive_seed(device_seed_, ++eval_counter_) : 0;
  auto margins = analog_core(challenge, noisy, seed, config_.temperature);
  subtract_thresholds(margins);
  return margins;
}

double PhotonicPuf::response_throughput_bps() const noexcept {
  const double bits = static_cast<double>(response_bits());
  return bits / interrogation_time_s();
}

double PhotonicPuf::interrogation_time_s() const noexcept {
  const double challenge_duration =
      static_cast<double>(config_.challenge_bits * config_.samples_per_bit) /
      config_.sample_rate_hz;
  return challenge_duration + circuit_.memory_depth_seconds();
}

PhotonicPufConfig small_photonic_config() {
  PhotonicPufConfig cfg;
  cfg.design.ports = 4;
  cfg.design.layers = 3;
  cfg.challenge_bits = 16;
  cfg.calibration_challenges = 31;
  return cfg;
}

}  // namespace neuropuls::puf
