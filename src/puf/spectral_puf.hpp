// Spectral microring-array PUF — the weak-PUF architecture of ref. [12]
// (Jimenez et al., "Photonic physical unclonable function based on
// symmetric microring resonator arrays").
//
// A bus waveguide cascades through an array of add-drop microrings whose
// resonance positions are fabrication-unique. Interrogation sweeps a
// DWDM wavelength grid and records the through-port photocurrent per
// channel; each response bit is that channel's transmission relative to
// the spectral median (self-referenced, so laser power cancels). There is
// no challenge input — this is the *weak* PUF of Fig. 1's left branch,
// feeding key generation through the fuzzy extractor, complementing the
// time-domain strong PUF in `photonic_puf.hpp` ("various types of
// photonic architectures for weak and strong PUFs", §II-A).
#pragma once

#include <cstdint>
#include <vector>

#include "photonic/detector.hpp"
#include "photonic/ring.hpp"
#include "puf/puf.hpp"

namespace neuropuls::puf {

struct SpectralPufConfig {
  std::size_t rings = 24;
  std::size_t wavelength_channels = 1024;  // response bits
  double start_wavelength = 1.545e-6;      // metres
  double channel_spacing = 10e-12;         // 10 pm grid
  double ring_radius_min = 9e-6;
  double ring_radius_max = 11e-6;
  double coupling_min = 0.03;
  double coupling_max = 0.12;
  double loss_db_per_cm = 3.0;
  double laser_power_mw = 1.0;
  photonic::PhotodiodeParameters photodiode;
  double temperature = photonic::kReferenceTemperature;
  photonic::VariationSigmas variation{};
  std::uint64_t design_seed = 0x53504543ULL;  // "SPEC"
};

class SpectralMicroringPuf final : public Puf {
 public:
  SpectralMicroringPuf(SpectralPufConfig config, std::uint64_t wafer_seed,
                       std::uint64_t device_index);

  /// Weak PUF: the challenge is empty.
  std::size_t challenge_bytes() const override { return 0; }
  std::size_t response_bytes() const override {
    return config_.wavelength_channels / 8;
  }

  Response evaluate(const Challenge& challenge) override;
  Response evaluate_noiseless(const Challenge& challenge) const override;
  std::string name() const override { return "spectral-microring-puf"; }

  /// Through-port transmission spectrum at the operating temperature
  /// (noise-free |T|^2 per channel) — for tests and spectroscopy plots.
  std::vector<double> transmission_spectrum() const;

  void set_temperature(double kelvin) noexcept {
    config_.temperature = kelvin;
  }

 private:
  std::vector<double> photocurrents(bool noisy, std::uint64_t seed) const;
  Response threshold(const std::vector<double>& currents) const;

  SpectralPufConfig config_;
  std::vector<photonic::MicroringAddDrop> rings_;
  std::uint64_t device_seed_;
  std::uint64_t eval_counter_ = 0;
};

}  // namespace neuropuls::puf
