// The photonic PUF of Fig. 2, end to end.
//
// Pipeline per evaluation (matching the figure left to right):
//   challenge bits -> ASIC drive -> MZM modulates the CW telecom laser
//   -> passive scrambler mesh (couplers + designed-random waveguides +
//      microrings with fabrication-unique resonances, time-domain so ring
//      memory mixes past bits into present ones)
//   -> photodiode array (square law: amplitude AND phase collapse into
//      intensity because the paths are coherent)
//   -> TIA -> ADC -> differential thresholding into response bits.
//
// Response format: for each challenge bit window w and each port pair
// (2p, 2p+1), one bit = [current difference I_{2p} - I_{2p+1}] above that
// slot's *calibrated threshold*. Differential readout self-references the
// laser power (the same reason RO PUFs compare oscillator pairs); the
// per-slot threshold is the median current difference over a public set
// of calibration challenges, measured once at enrollment — the §II-B
// "threshold dependent on the amplitude of the photocurrent read at the
// PD". Calibration removes the static interferometric offset of each
// port pair, so every response bit is decided by the *challenge-dependent*
// interference (the pairwise-parity structure that resists linear
// modelling attacks, cf. Bosworth et al. [29]); the margins
// (difference - threshold) are exposed for the §II-B amplitude filtering.
//
// The default modulation is coherent phase encoding (0/pi per challenge
// bit at one sample per bit, 25 GS/s): each output window then mixes the
// current symbol with ring-delayed copies of previous ones, and the
// square-law detector turns those into challenge-bit parities weighted by
// fabrication-unique phases.
//
// The same object serves as:
//   * strong PUF — arbitrary challenges (2^challenge_bits space);
//   * weak PUF — a fixed enrollment challenge for key generation;
//   * verifier-side model — `evaluate_noiseless()` is the "model of the
//     pPUF available to the Verifier" that §III-B's attestation assumes.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "photonic/circuit.hpp"
#include "photonic/detector.hpp"
#include "photonic/source.hpp"
#include "puf/puf.hpp"

namespace neuropuls::common {
class ThreadPool;
}  // namespace neuropuls::common

namespace neuropuls::faults {
class DeviceFaultModel;
}  // namespace neuropuls::faults

namespace neuropuls::puf {

struct PhotonicPufConfig {
  photonic::ScramblerDesign design;  // ports/layers/design seed
  std::size_t challenge_bits = 64;
  std::size_t samples_per_bit = 1;
  double sample_rate_hz = 25e9;  // ref. [12]: 25 Gbit/s demonstrator
  photonic::LaserParameters laser;
  photonic::ModulatorParameters modulator{
      /*extinction_ratio_db=*/0.01,  // near-constant amplitude (null-biased
                                     // push-pull: chirp-free phase keying)
      /*insertion_loss_db=*/4.0,
      /*bandwidth_fraction=*/1.0,
      /*phase_modulation=*/true};  // coherent 0/pi challenge encoding
  /// Median-calibration challenge count (0 disables calibration and
  /// reverts to raw zero-threshold differential readout).
  std::size_t calibration_challenges = 63;
  photonic::PhotodiodeParameters photodiode;
  photonic::TiaParameters tia;
  photonic::AdcParameters adc{10, 2.0, 0.0};
  double temperature = photonic::kReferenceTemperature;
  /// Laser-power alteration factor (1.0 = nominal). §IV studies attacks
  /// that "alter laser power levels to produce responses that provide
  /// insights into the inner working mechanisms".
  double laser_power_scale = 1.0;
  photonic::VariationSigmas variation{};
};

class PhotonicPuf final : public Puf {
 public:
  /// `wafer_seed` + `device_index` fix this device's fabrication draw.
  PhotonicPuf(PhotonicPufConfig config, std::uint64_t wafer_seed,
              std::uint64_t device_index);

  std::size_t challenge_bytes() const override {
    return (config_.challenge_bits + 7) / 8;
  }
  std::size_t response_bytes() const override {
    return response_bits() / 8;
  }
  std::size_t response_bits() const {
    return config_.challenge_bits * (config_.design.ports / 2);
  }

  Response evaluate(const Challenge& challenge) override;
  Response evaluate_noiseless(const Challenge& challenge) const override;
  std::string name() const override { return "photonic-puf"; }

  /// Noisy batch evaluation across the pool (global pool when `pool` is
  /// nullptr). Deterministic: work item i consumes noise-seed counter
  /// base + i + 1 where `base` is the counter value on entry, assigned by
  /// *index* rather than completion order — so the result is bit-identical
  /// to calling evaluate() on each challenge in sequence, at any thread
  /// count. The counter block is reserved atomically, so concurrent
  /// batches/evaluations never reuse a seed.
  std::vector<Response> evaluate_batch(const std::vector<Challenge>& challenges,
                                       common::ThreadPool* pool = nullptr);

  /// Model-path (deterministic) batch evaluation across the pool.
  std::vector<Response> evaluate_noiseless_batch(
      const std::vector<Challenge>& challenges,
      common::ThreadPool* pool = nullptr) const;

  /// Temperature-compensated model evaluation (§II-B: "introducing a
  /// photonic sensor for temperature measurement and considering this
  /// additional parameter when evaluating the genuinity of the
  /// responses"): the verifier evaluates its model at the device's
  /// sensor-reported temperature instead of the enrollment temperature,
  /// cancelling the common-mode thermo-optic drift.
  Response evaluate_noiseless_at(const Challenge& challenge,
                                 double temperature_kelvin) const;

  /// Analog readout margins: (current difference - calibrated threshold)
  /// in amperes, one row per challenge-bit window, one column per port
  /// pair. The response bit is margin > 0; |margin| is the §II-B
  /// filtering quantity. `noisy=false` gives the ideal model's values.
  std::vector<std::vector<double>> evaluate_analog(const Challenge& challenge,
                                                   bool noisy);

  /// Bits per evaluation / second of interrogation: the "inherent speed"
  /// §III-B relies on ("at least 5 Gb/s").
  double response_throughput_bps() const noexcept;

  /// Interrogation time of one evaluation (challenge duration + memory
  /// flush) — §IV: "the response is present ... below 100 ns".
  double interrogation_time_s() const noexcept;

  void set_temperature(double kelvin) noexcept {
    config_.temperature = kelvin;
  }
  void set_laser_power_scale(double scale) noexcept {
    config_.laser_power_scale = scale;
  }

  /// Attaches (or clears, with nullptr) a deterministic device-fault
  /// model (faults::DeviceFaultModel). Faults perturb only the *noisy*
  /// measurement path — the verifier-side noiseless model stays ideal —
  /// and are keyed on the evaluation counter, so batch evaluation remains
  /// bit-identical to the serial sequence. A quiet model (all fault
  /// families inactive) is bit-identical to no model at all.
  void set_fault_model(std::shared_ptr<const faults::DeviceFaultModel> model) {
    fault_model_ = std::move(model);
  }
  const std::shared_ptr<const faults::DeviceFaultModel>& fault_model()
      const noexcept {
    return fault_model_;
  }

  const PhotonicPufConfig& config() const noexcept { return config_; }

 private:
  // Static per-operating-point constants of the analog chain: scrambler
  // transfer tables + input fan-out taps. Immutable once built, so one
  // instance is shared by every (possibly concurrent) evaluation at that
  // (wavelength, temperature); rebuilding them per call used to dominate
  // the single-evaluation cost.
  struct OperatingTables {
    double wavelength = 0.0;
    double temperature = 0.0;
    std::shared_ptr<const photonic::ScramblerTables> scrambler;
  };

  std::shared_ptr<const OperatingTables> operating_tables(
      const photonic::OperatingPoint& op) const;

  // `eval_index` is the evaluation-counter value of this measurement —
  // the key the attached fault model uses for laser droop, thermal
  // transients, and phase aging. Noiseless (model) evaluations pass 0 and
  // never see faults.
  std::vector<std::vector<double>> analog_core(const Challenge& challenge,
                                               bool noisy,
                                               std::uint64_t noise_seed,
                                               double temperature,
                                               std::uint64_t eval_index) const;
  // Lane-parallel counterpart of analog_core: evaluates `lane_count`
  // independent challenges through one SoA FieldBlock, vectorizing the
  // field transport (fan-out, couplers, waveguides, rings) and the
  // noiseless square-law integration across lanes. Per-lane sources stay
  // scalar: each lane gets its own MZM, and — when noisy — its own Laser
  // and per-port Photodiodes seeded from noise_seeds[lane], preserving the
  // exact RNG draw order of the serial path. Returns one (window x pair)
  // analog matrix per lane; lane j is bit-identical to
  // analog_core(challenges[j], ...). noise_seeds may be null when !noisy.
  std::vector<std::vector<std::vector<double>>> analog_core_block(
      const Challenge* challenges, std::size_t lane_count, bool noisy,
      const std::uint64_t* noise_seeds, double temperature) const;
  void subtract_thresholds(std::vector<std::vector<double>>& analog) const;
  Response threshold_bits(
      const std::vector<std::vector<double>>& margins) const;
  void calibrate();

  PhotonicPufConfig config_;
  photonic::ScramblerCircuit circuit_;
  std::uint64_t device_seed_;
  // Noise-seed counter. Atomically reserved (one value per evaluate()
  // call, a contiguous block per evaluate_batch()) so concurrent
  // evaluations can never reuse a noise seed.
  std::atomic<std::uint64_t> eval_counter_{0};
  // Most-recently-used operating-point tables (thermal sweeps move the
  // temperature, so this is a tiny keyed cache, not a single slot).
  mutable common::Mutex tables_mutex_;
  mutable std::vector<std::shared_ptr<const OperatingTables>> tables_cache_
      NP_GUARDED_BY(tables_mutex_);
  // Per-(window, pair) median current differences from enrollment
  // calibration; empty when calibration is disabled.
  std::vector<std::vector<double>> thresholds_;
  // Optional device-fault oracle (faults::DeviceFaultModel); null =
  // healthy device. Shared-const so concurrent evaluations read it
  // without synchronisation.
  std::shared_ptr<const faults::DeviceFaultModel> fault_model_;
};

/// A PhotonicPufConfig sized for fast unit tests (4 ports, short
/// challenges) — shared by tests and examples.
PhotonicPufConfig small_photonic_config();

}  // namespace neuropuls::puf
