#include "puf/population.hpp"

#include "common/parallel.hpp"

#include <stdexcept>

namespace neuropuls::puf {

namespace {

void run_parallel(common::ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  if (pool != nullptr) {
    pool->parallel_for(n, fn);
  } else {
    common::parallel_for(n, fn);
  }
}

}  // namespace

PufPopulation::PufPopulation(const PhotonicPufConfig& config,
                             std::uint64_t wafer_seed,
                             std::size_t device_count,
                             common::ThreadPool* pool,
                             std::uint64_t first_device_index)
    : pool_(pool), devices_(device_count) {
  if (device_count == 0) {
    throw std::invalid_argument("PufPopulation: need at least one device");
  }
  run_parallel(pool_, device_count, [&](std::size_t d) {
    devices_[d] = std::make_unique<PhotonicPuf>(
        config, wafer_seed, first_device_index + static_cast<std::uint64_t>(d));
  });
}

std::vector<Response> PufPopulation::evaluate_noiseless_all(
    const Challenge& challenge) const {
  std::vector<Response> responses(devices_.size());
  run_parallel(pool_, devices_.size(), [&](std::size_t d) {
    responses[d] = devices_[d]->evaluate_noiseless(challenge);
  });
  return responses;
}

std::vector<Response> PufPopulation::evaluate_all(const Challenge& challenge) {
  std::vector<Response> responses(devices_.size());
  run_parallel(pool_, devices_.size(), [&](std::size_t d) {
    responses[d] = devices_[d]->evaluate(challenge);
  });
  return responses;
}

std::vector<std::vector<Response>> PufPopulation::evaluate_repeats(
    const Challenge& challenge, std::size_t repeats) {
  std::vector<std::vector<Response>> readings(devices_.size());
  run_parallel(pool_, devices_.size(), [&](std::size_t d) {
    // evaluate_batch assigns this device's counter values by item index,
    // so the readings match a serial re-read loop bit for bit. The inner
    // batch call is already inside a parallel region, so its lane blocks
    // (kDefaultLanes challenges per SoA block) run serially on this
    // worker — the SIMD lane parallelism still applies within each block.
    readings[d] = devices_[d]->evaluate_batch(
        std::vector<Challenge>(repeats, challenge), pool_);
  });
  return readings;
}

}  // namespace neuropuls::puf
