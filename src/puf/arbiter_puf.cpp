#include "puf/arbiter_puf.hpp"

#include <stdexcept>

namespace neuropuls::puf {

ArbiterPuf::ArbiterPuf(ArbiterPufConfig config, std::uint64_t device_seed)
    : config_(config), noise_(rng::derive_seed(device_seed, 0x77)) {
  if (config_.stages == 0 || config_.stages % 8 != 0) {
    throw std::invalid_argument(
        "ArbiterPuf: stages must be a positive multiple of 8");
  }
  if (config_.xor_chains == 0) {
    throw std::invalid_argument("ArbiterPuf: xor_chains must be >= 1");
  }
  weights_.resize(config_.xor_chains);
  for (std::size_t chain = 0; chain < config_.xor_chains; ++chain) {
    rng::Gaussian g(rng::derive_seed(device_seed, 0x100 + chain));
    weights_[chain].reserve(config_.stages + 1);
    for (std::size_t s = 0; s <= config_.stages; ++s) {
      weights_[chain].push_back(g.next(0.0, config_.delay_sigma));
    }
  }
}

std::vector<double> ArbiterPuf::parity_features(
    const Challenge& challenge) const {
  if (challenge.size() != challenge_bytes()) {
    throw std::invalid_argument("ArbiterPuf: wrong challenge size");
  }
  // phi_i = prod_{j >= i} (1 - 2 c_j); computed right to left.
  std::vector<double> phi(config_.stages + 1);
  phi[config_.stages] = 1.0;  // bias feature
  double acc = 1.0;
  for (std::size_t i = config_.stages; i-- > 0;) {
    const int bit = (challenge[i / 8] >> (7 - i % 8)) & 1;
    acc *= (bit ? -1.0 : 1.0);
    phi[i] = acc;
  }
  return phi;
}

double ArbiterPuf::delay_difference(std::size_t chain,
                                    const Challenge& challenge) const {
  if (chain >= config_.xor_chains) {
    throw std::invalid_argument("ArbiterPuf: chain index out of range");
  }
  const auto phi = parity_features(challenge);
  double delta = 0.0;
  for (std::size_t i = 0; i <= config_.stages; ++i) {
    delta += weights_[chain][i] * phi[i];
  }
  return delta;
}

Response ArbiterPuf::evaluate(const Challenge& challenge) {
  unsigned bit = 0;
  for (std::size_t chain = 0; chain < config_.xor_chains; ++chain) {
    const double delta = delay_difference(chain, challenge) +
                         noise_.next(0.0, config_.noise_sigma);
    bit ^= (delta > 0.0) ? 1u : 0u;
  }
  // MSB-first convention: the single response bit lives at bit 7.
  return Response{static_cast<std::uint8_t>(bit << 7)};
}

Response ArbiterPuf::evaluate_noiseless(const Challenge& challenge) const {
  unsigned bit = 0;
  for (std::size_t chain = 0; chain < config_.xor_chains; ++chain) {
    bit ^= (delay_difference(chain, challenge) > 0.0) ? 1u : 0u;
  }
  return Response{static_cast<std::uint8_t>(bit << 7)};
}

}  // namespace neuropuls::puf
