#include "puf/spectral_puf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace neuropuls::puf {

using photonic::OperatingPoint;

SpectralMicroringPuf::SpectralMicroringPuf(SpectralPufConfig config,
                                           std::uint64_t wafer_seed,
                                           std::uint64_t device_index)
    : config_(config),
      device_seed_(rng::derive_seed(wafer_seed, device_index ^ 0x5AA5)) {
  if (config_.rings == 0 || config_.wavelength_channels == 0 ||
      config_.wavelength_channels % 8 != 0) {
    throw std::invalid_argument(
        "SpectralMicroringPuf: rings > 0, channels a positive multiple of 8");
  }
  if (config_.channel_spacing <= 0.0) {
    throw std::invalid_argument("SpectralMicroringPuf: bad channel spacing");
  }

  // Nominal design (shared across devices) + this device's deviations.
  rng::Xoshiro256 design_rng(config_.design_seed);
  const photonic::FabricationModel fabrication(wafer_seed, device_index,
                                               config_.variation);
  rings_.reserve(config_.rings);
  for (std::size_t i = 0; i < config_.rings; ++i) {
    photonic::RingParameters rp;
    rp.radius =
        design_rng.uniform(config_.ring_radius_min, config_.ring_radius_max);
    rp.power_coupling_in =
        design_rng.uniform(config_.coupling_min, config_.coupling_max);
    rp.power_coupling_drop = rp.power_coupling_in;
    rp.loss_db_per_cm = config_.loss_db_per_cm;
    photonic::MicroringAddDrop ring(rp);
    ring.apply(fabrication.sample(0x9000 + i));
    rings_.push_back(ring);
  }
}

std::vector<double> SpectralMicroringPuf::transmission_spectrum() const {
  std::vector<double> spectrum(config_.wavelength_channels);
  for (std::size_t k = 0; k < config_.wavelength_channels; ++k) {
    const OperatingPoint op{
        config_.start_wavelength + static_cast<double>(k) * config_.channel_spacing,
        config_.temperature};
    photonic::Complex t{1.0, 0.0};
    for (const auto& ring : rings_) t *= ring.through(op);
    spectrum[k] = std::norm(t);
  }
  return spectrum;
}

std::vector<double> SpectralMicroringPuf::photocurrents(
    bool noisy, std::uint64_t seed) const {
  const auto spectrum = transmission_spectrum();
  const double input_power_w = config_.laser_power_mw * 1e-3;

  photonic::Photodiode pd(config_.photodiode, rng::derive_seed(seed, 0x31));
  std::vector<double> currents(spectrum.size());
  for (std::size_t k = 0; k < spectrum.size(); ++k) {
    const photonic::Complex field{std::sqrt(input_power_w * spectrum[k]), 0.0};
    currents[k] = noisy ? pd.detect(field) : pd.mean_current(field);
  }
  return currents;
}

Response SpectralMicroringPuf::threshold(
    const std::vector<double>& currents) const {
  // Self-referenced: compare each channel to the spectral median.
  std::vector<double> sorted = currents;
  std::nth_element(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(sorted.size() / 2),
                   sorted.end());
  const double median = sorted[sorted.size() / 2];

  Response out(response_bytes(), 0);
  for (std::size_t k = 0; k < currents.size(); ++k) {
    if (currents[k] > median) {
      out[k / 8] |= static_cast<std::uint8_t>(1u << (7 - k % 8));
    }
  }
  return out;
}

Response SpectralMicroringPuf::evaluate(const Challenge& challenge) {
  if (!challenge.empty()) {
    throw std::invalid_argument(
        "SpectralMicroringPuf: weak PUF takes an empty challenge");
  }
  const std::uint64_t seed = rng::derive_seed(device_seed_, ++eval_counter_);
  return threshold(photocurrents(/*noisy=*/true, seed));
}

Response SpectralMicroringPuf::evaluate_noiseless(
    const Challenge& challenge) const {
  if (!challenge.empty()) {
    throw std::invalid_argument(
        "SpectralMicroringPuf: weak PUF takes an empty challenge");
  }
  return threshold(photocurrents(/*noisy=*/false, 0));
}

}  // namespace neuropuls::puf
