// Record/snapshot/manifest codec for the durable CRP store.
//
// `puf::CrpDatabase` persists every mutation as one append-only record in
// a per-shard write-ahead log, and periodically compacts a shard into a
// snapshot file. This header is the pure format layer: byte-exact
// encoders and decoders, no file descriptors, no locks — crp_db.cpp owns
// the I/O scheduling (group commit, rotation) and common/io.hpp owns the
// syscalls. Keeping the codec separate lets the crash-point tests
// decode, truncate, and corrupt WAL images byte-by-byte without a store.
//
// WAL record framing (all integers big-endian):
//
//   u32  payload_len
//   u32  payload_len ^ kLenCheck     (self-checking length: a torn tail
//                                     and a flipped length byte must be
//                                     distinguishable — see below)
//   u64  SipHash-2-4(payload)
//   payload:
//     u8   type          (kInsert / kTake / kHealth / kEvict)
//     u64  seq           (per-shard, monotonically increasing from 1)
//     u32  challenge_len, challenge bytes
//     kInsert: u32 response_len, response bytes
//     kHealth: u32 successes, u32 failures, u32 consecutive, u8 quarantined
//
// Torn tail vs corruption: a crash during an append leaves a *prefix* of
// the record (the file is append-only, single-writer), so a record whose
// verified length extends past end-of-file is a torn tail — recovery
// drops it and succeeds. A record whose bytes are all present but whose
// length check or checksum fails was damaged *after* it was durable;
// silently truncating there could resurrect consumed CRPs recorded later
// in the log, so recovery fails cleanly (CrpStoreError) instead.
//
// Health records carry the *resulting* counters, not the event, so
// replay is exact even when the quarantine threshold changes between
// runs.
//
// Snapshot format: magic, shard index, shard count at write, the WAL
// sequence number the state covers, the entries in storage order
// (preserving take() scan order across a restart), and a SHA-256
// trailer over everything before it. Manifest: generation + shard count
// + take cursor, SipHash-checksummed, committed by atomic rename.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "crypto/bytes.hpp"
#include "puf/crp_db.hpp"

namespace neuropuls::puf::wal {

/// Thrown by decoders on corruption and by CrpDatabase when recovery or
/// the WAL writer fails. "Fails cleanly": the store never half-opens.
class CrpStoreError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class RecordType : std::uint8_t {
  kInsert = 1,   // challenge + response enter the store
  kTake = 2,     // challenge consumed (one-time use)
  kHealth = 3,   // resulting health counters incl. quarantine flag
  kEvict = 4,    // quarantined challenge removed
};

inline constexpr std::size_t kRecordHeaderBytes = 16;
inline constexpr std::uint32_t kLenCheck = 0xA5C35A3C;
inline constexpr std::size_t kMaxRecordBytes = 1u << 20;

/// One decoded record. The byte views alias the caller's WAL image —
/// replay copies them into the store, so the image only needs to outlive
/// the replay loop (recovery keeps it in an arena).
struct RecordView {
  RecordType type = RecordType::kInsert;
  std::uint64_t seq = 0;
  crypto::ByteView challenge;
  crypto::ByteView response;  // kInsert only
  CrpHealth health;           // kHealth only
};

/// Appends one framed record to `out` (the group-commit pending buffer).
void append_insert_record(crypto::Bytes& out, std::uint64_t seq,
                          crypto::ByteView challenge,
                          crypto::ByteView response);
void append_take_record(crypto::Bytes& out, std::uint64_t seq,
                        crypto::ByteView challenge);
void append_health_record(crypto::Bytes& out, std::uint64_t seq,
                          crypto::ByteView challenge, const CrpHealth& health);
void append_evict_record(crypto::Bytes& out, std::uint64_t seq,
                         crypto::ByteView challenge);

struct WalDecodeResult {
  std::vector<RecordView> records;
  /// Bytes consumed by fully valid records.
  std::size_t valid_bytes = 0;
  /// Torn-tail bytes dropped at end-of-file (crash evidence; 0 on a
  /// cleanly closed log).
  std::size_t torn_bytes = 0;
};

/// Decodes a whole WAL image. Drops a torn tail; throws CrpStoreError on
/// mid-image corruption (see the framing notes above).
WalDecodeResult decode_wal(crypto::ByteView image);

// ---------------------------------------------------------------------------
// Snapshots.

inline constexpr std::size_t kSnapshotMagicBytes = 8;

/// Streaming snapshot encoder: header up front, one add() per entry in
/// storage order, SHA-256 trailer sealed by finish().
class SnapshotBuilder {
 public:
  SnapshotBuilder(std::uint32_t shard_index, std::uint32_t shard_count,
                  std::uint64_t wal_seq);

  void add(crypto::ByteView challenge, crypto::ByteView response,
           const CrpHealth& health);

  /// Seals the entry count and checksum; the builder is then exhausted.
  crypto::Bytes finish();

 private:
  std::uint32_t shard_index_;
  std::uint32_t shard_count_;
  std::uint64_t wal_seq_;
  crypto::Bytes buffer_;  // entry stream only; header built by finish()
  std::uint64_t entries_ = 0;
};

struct SnapshotEntryView {
  crypto::ByteView challenge;
  crypto::ByteView response;
  CrpHealth health;
};

struct SnapshotView {
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 0;
  std::uint64_t wal_seq = 0;
  std::vector<SnapshotEntryView> entries;  // views into the caller's image
};

/// Decodes and verifies a snapshot image. Throws CrpStoreError on any
/// mismatch (magic, structure, SHA-256 trailer).
SnapshotView decode_snapshot(crypto::ByteView image);

// ---------------------------------------------------------------------------
// Manifest.

struct Manifest {
  std::uint64_t generation = 0;
  std::uint32_t shard_count = 0;
  /// take() round-robin cursor at the last snapshot; recovery restores
  /// the cursor deterministically as this value plus one per replayed
  /// take record.
  std::uint64_t take_cursor = 0;
};

crypto::Bytes encode_manifest(const Manifest& manifest);
Manifest decode_manifest(crypto::ByteView image);  // throws CrpStoreError

// ---------------------------------------------------------------------------
// On-disk layout.

std::string manifest_path(const std::string& dir);
std::string wal_path(const std::string& dir, std::size_t shard,
                     std::uint64_t generation);
std::string snapshot_path(const std::string& dir, std::size_t shard,
                          std::uint64_t generation);

}  // namespace neuropuls::puf::wal
