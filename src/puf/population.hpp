// Concurrent fabrication + evaluation of photonic-PUF device fleets.
//
// Every population experiment in the paper's evaluation — intra/inter
// Hamming statistics (§II-A), identification error rates (§V), thermal
// screening — starts the same way: fabricate N devices from one wafer
// seed, evaluate them all on shared challenges, and hand the response
// matrix to the metrics layer. Fabricating a device is itself costly
// (median calibration runs `calibration_challenges` full time-domain
// evaluations), so both construction and evaluation fan out across the
// thread pool.
//
// Determinism contract: device d is always fabricated from
// (wafer_seed, first_device_index + d) and every evaluation derives its
// noise seed from that device's own counter block by item index, so the
// full response matrix is bit-identical at any thread count — including
// to the plain serial loops the benches used before batching existed.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "puf/photonic_puf.hpp"

namespace neuropuls::puf {

class PufPopulation {
 public:
  /// Fabricates (and median-calibrates) `device_count` devices
  /// concurrently on `pool` (global pool when nullptr). Device d uses
  /// device index `first_device_index + d`.
  PufPopulation(const PhotonicPufConfig& config, std::uint64_t wafer_seed,
                std::size_t device_count, common::ThreadPool* pool = nullptr,
                std::uint64_t first_device_index = 0);

  std::size_t size() const noexcept { return devices_.size(); }
  PhotonicPuf& device(std::size_t i) { return *devices_[i]; }
  const PhotonicPuf& device(std::size_t i) const { return *devices_[i]; }

  /// One noise-free (model) response per device, evaluated concurrently.
  std::vector<Response> evaluate_noiseless_all(const Challenge& challenge) const;

  /// One noisy response per device, evaluated concurrently. Each device
  /// consumes exactly one value of its own noise counter — identical to
  /// calling device(d).evaluate(challenge) in a serial loop.
  std::vector<Response> evaluate_all(const Challenge& challenge);

  /// `repeats` noisy re-readings per device (the reliability /
  /// identification re-read matrix), devices in parallel; each device's
  /// readings use its next `repeats` counter values in order.
  std::vector<std::vector<Response>> evaluate_repeats(
      const Challenge& challenge, std::size_t repeats);

 private:
  common::ThreadPool* pool_;  // nullptr = global pool
  std::vector<std::unique_ptr<PhotonicPuf>> devices_;
};

}  // namespace neuropuls::puf
