// PUF abstractions shared by every implementation in the stack.
//
// The paper distinguishes *weak* PUFs (few challenges, used for key
// generation and chip binding — the ASIC SRAM PUF of Fig. 1) from *strong*
// PUFs (exponential challenge space, used for authentication and
// attestation — the photonic PUF of Fig. 2). Both are "evaluate a
// challenge, get a noisy response" objects; the split is captured by the
// challenge-space size they report, not by different interfaces.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "crypto/bytes.hpp"

namespace neuropuls::puf {

using Challenge = crypto::Bytes;
using Response = crypto::Bytes;

class Puf {
 public:
  virtual ~Puf() = default;

  /// Challenge size in bytes. Weak PUFs with a single implicit challenge
  /// report 0 and accept an empty challenge.
  virtual std::size_t challenge_bytes() const = 0;

  /// Response size in bytes.
  virtual std::size_t response_bytes() const = 0;

  /// Evaluates the PUF on a challenge. Every call re-samples measurement
  /// noise — two calls with the same challenge may differ in a few bits,
  /// exactly like silicon. Throws std::invalid_argument on a wrong-size
  /// challenge.
  virtual Response evaluate(const Challenge& challenge) = 0;

  /// The noise-free response: what an *ideal model* of this device (the
  /// verifier-side model §III-B assumes) would predict. Deterministic.
  virtual Response evaluate_noiseless(const Challenge& challenge) const = 0;

  /// Human-readable type tag for logs and experiment tables.
  virtual std::string name() const = 0;

  /// Robust measurement: k-of-n majority vote over `readings` noisy
  /// evaluations (forced odd). The graceful-degradation re-measurement
  /// path — used when a single read fails reconciliation (fuzzy-extractor
  /// reject, MAC mismatch) on a degraded device: majority voting averages
  /// out transient fault-induced bit flips at `readings`x the cost.
  Response evaluate_robust(const Challenge& challenge, unsigned readings = 5);
};

/// Enrollment helper: majority-vote over `readings` noisy evaluations, the
/// standard way to obtain the reference response stored at manufacturing.
Response enroll_majority(Puf& puf, const Challenge& challenge,
                         unsigned readings = 9);

/// Average fractional Hamming distance between repeated evaluations and a
/// reference — the intra-device distance (reliability) of §II-A.
double intra_distance(Puf& puf, const Challenge& challenge,
                      const Response& reference, unsigned readings = 10);

}  // namespace neuropuls::puf
