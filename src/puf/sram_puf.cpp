#include "puf/sram_puf.hpp"

#include <cmath>
#include <stdexcept>

namespace neuropuls::puf {

SramPuf::SramPuf(SramPufConfig config, std::uint64_t device_seed)
    : config_(config),
      noise_(rng::derive_seed(device_seed, 0xA5)),
      aging_(rng::derive_seed(device_seed, 0xA6)) {
  if (config_.cells == 0 || config_.cells % 8 != 0) {
    throw std::invalid_argument("SramPuf: cells must be a positive multiple of 8");
  }
  if (config_.skew_sigma <= 0.0 || config_.noise_sigma < 0.0) {
    throw std::invalid_argument("SramPuf: bad sigma");
  }
  rng::Gaussian process(rng::derive_seed(device_seed, 0x01));
  skews_.reserve(config_.cells);
  for (std::size_t i = 0; i < config_.cells; ++i) {
    skews_.push_back(process.next(0.0, config_.skew_sigma));
  }
}

void SramPuf::set_temperature(double kelvin) noexcept {
  config_.temperature = kelvin;
}

void SramPuf::age(double hours) {
  if (hours < 0.0) {
    throw std::invalid_argument("SramPuf::age: negative hours");
  }
  // Random-walk drift along the sqrt-time stress measure s(t) = sqrt(t):
  // per-increment variance is proportional to delta-s, so variances add
  // and any partition of the stress interval composes identically.
  const double before = std::sqrt(age_hours_);
  age_hours_ += hours;
  const double delta_s = std::sqrt(age_hours_) - before;
  const double sigma = 0.01 * config_.skew_sigma * std::sqrt(delta_s);
  for (auto& skew : skews_) {
    skew += aging_.next(0.0, sigma);
  }
}

double SramPuf::noise_sigma_at_temperature() const noexcept {
  // Thermal noise power scales linearly with T: amplitude with sqrt(T).
  return config_.noise_sigma *
         std::sqrt(config_.temperature / config_.reference_temperature);
}

Response SramPuf::evaluate(const Challenge& challenge) {
  if (!challenge.empty()) {
    throw std::invalid_argument("SramPuf: weak PUF takes an empty challenge");
  }
  Response out(response_bytes(), 0);
  const double sigma = noise_sigma_at_temperature();
  for (std::size_t i = 0; i < config_.cells; ++i) {
    const double value = skews_[i] + noise_.next(0.0, sigma);
    if (value > 0.0) {
      out[i / 8] |= static_cast<std::uint8_t>(1u << (7 - i % 8));
    }
  }
  return out;
}

Response SramPuf::evaluate_noiseless(const Challenge& challenge) const {
  if (!challenge.empty()) {
    throw std::invalid_argument("SramPuf: weak PUF takes an empty challenge");
  }
  Response out(response_bytes(), 0);
  for (std::size_t i = 0; i < config_.cells; ++i) {
    if (skews_[i] > 0.0) {
      out[i / 8] |= static_cast<std::uint8_t>(1u << (7 - i % 8));
    }
  }
  return out;
}

}  // namespace neuropuls::puf
