// Photonic true random number generator.
//
// Fig. 1's weak-PUF branch feeds "cryptographic key generation", which
// needs fresh randomness (nonces, DH exponents, enrollment codewords) in
// addition to the device-unique PUF key. The same photonic front end
// provides it: the shot/thermal noise of the photodiode chain is a
// physical entropy source.
//
// Readout: evaluate the *same* challenge twice and compare the two noisy
// margin measurements slot by slot —
//   bit = [margin_a(w,p) > margin_b(w,p)].
// Both measurements share the deterministic interference term, so the
// comparison cancels it exactly; what remains is the sign of the
// difference of two i.i.d. noise samples, a fair coin by symmetry. Ties
// (quantised equality) are discarded. Von Neumann debiasing is layered on
// top to scrub residual correlation, and a SHA-256 conditioner (SP
// 800-90B style) provides full-entropy output for the key path.
#pragma once

#include <cstdint>

#include "puf/photonic_puf.hpp"

namespace neuropuls::puf {

class PhotonicTrng {
 public:
  /// Entropy is drawn through `puf`'s noisy analog readout; `challenge`
  /// fixes the interrogation pattern (any value works — the deterministic
  /// part cancels).
  PhotonicTrng(PhotonicPuf& puf, Challenge challenge);

  /// Raw comparison bits, exactly `bits` of them (packed MSB-first).
  crypto::Bytes raw_bits(std::size_t bits);

  /// Von-Neumann-debiased bits (consumes ~4x the raw entropy).
  crypto::Bytes debiased_bits(std::size_t bits);

  /// Conditioned full-entropy output: SHA-256 over blocks of raw bits
  /// with a 2x compression ratio (256 bits out per 512 raw bits in).
  crypto::Bytes conditioned_bytes(std::size_t bytes);

  /// Raw-bit ones-rate over `sample_bits` (diagnostic; ~0.5).
  double measured_bias(std::size_t sample_bits = 4096);

  /// Raw bits produced per PUF interrogation pair.
  std::size_t bits_per_interrogation() const noexcept {
    return puf_.response_bits();
  }

  /// Raw-bit throughput estimate given the PUF interrogation time.
  double raw_throughput_bps() const noexcept {
    return static_cast<double>(bits_per_interrogation()) /
           (2.0 * puf_.interrogation_time_s());
  }

 private:
  /// Appends fresh raw bits (0/1 per element) to `out` until it holds at
  /// least `target` entries.
  void fill_raw(std::vector<std::uint8_t>& out, std::size_t target);

  PhotonicPuf& puf_;
  Challenge challenge_;
};

}  // namespace neuropuls::puf
