#include "puf/crp_db.hpp"

#include "crypto/chacha20.hpp"

namespace neuropuls::puf {

void CrpDatabase::enroll(Puf& puf, std::size_t count, crypto::ChaChaDrbg& rng,
                         unsigned readings) {
  for (std::size_t i = 0; i < count; ++i) {
    Crp crp;
    crp.challenge = rng.generate(puf.challenge_bytes());
    crp.response = enroll_majority(puf, crp.challenge, readings | 1);
    insert(std::move(crp));
  }
}

void CrpDatabase::insert(Crp crp) {
  index_[crp.challenge] = entries_.size();
  entries_.push_back(Entry{std::move(crp), CrpHealth{}});
}

void CrpDatabase::remove_at(std::size_t pos) {
  index_.erase(entries_[pos].crp.challenge);
  compact(pos);
}

// Swap-with-back removal of a slot whose index entry is already erased.
void CrpDatabase::compact(std::size_t pos) {
  if (pos != entries_.size() - 1) {
    entries_[pos] = std::move(entries_.back());
    index_[entries_[pos].crp.challenge] = pos;
  }
  entries_.pop_back();
}

std::optional<Crp> CrpDatabase::take() {
  // Scan from the back (cheap removal) past any quarantined entries: a
  // CRP in quarantine must never be served for authentication.
  for (std::size_t i = entries_.size(); i-- > 0;) {
    if (entries_[i].health.quarantined) continue;
    // Erase the index entry before moving the CRP out: the challenge is
    // the map key, so erasing after the move would probe with a
    // moved-from (empty) buffer and strand a stale index entry.
    index_.erase(entries_[i].crp.challenge);
    Crp crp = std::move(entries_[i].crp);
    compact(i);
    return crp;
  }
  return std::nullopt;
}

std::optional<Response> CrpDatabase::lookup(const Challenge& challenge) const {
  const auto it = index_.find(crypto::ByteView{challenge});
  if (it == index_.end()) return std::nullopt;
  const Entry& entry = entries_[it->second];
  if (entry.health.quarantined) return std::nullopt;
  return entry.crp.response;
}

void CrpDatabase::record_success(const Challenge& challenge) {
  const auto it = index_.find(crypto::ByteView{challenge});
  if (it == index_.end()) return;
  CrpHealth& health = entries_[it->second].health;
  ++health.successes;
  health.consecutive_failures = 0;
}

void CrpDatabase::record_failure(const Challenge& challenge) {
  const auto it = index_.find(crypto::ByteView{challenge});
  if (it == index_.end()) return;
  CrpHealth& health = entries_[it->second].health;
  ++health.failures;
  ++health.consecutive_failures;
  if (health.consecutive_failures >= quarantine_threshold_) {
    health.quarantined = true;
  }
}

std::optional<CrpHealth> CrpDatabase::health(const Challenge& challenge) const {
  const auto it = index_.find(crypto::ByteView{challenge});
  if (it == index_.end()) return std::nullopt;
  return entries_[it->second].health;
}

std::size_t CrpDatabase::quarantined() const noexcept {
  std::size_t count = 0;
  for (const Entry& entry : entries_) {
    if (entry.health.quarantined) ++count;
  }
  return count;
}

std::size_t CrpDatabase::evict_quarantined() {
  std::size_t evicted = 0;
  for (std::size_t i = entries_.size(); i-- > 0;) {
    if (entries_[i].health.quarantined) {
      remove_at(i);
      ++evicted;
    }
  }
  return evicted;
}

std::size_t CrpDatabase::storage_bytes() const noexcept {
  std::size_t total = 0;
  for (const Entry& entry : entries_) {
    total += entry.crp.challenge.size() + entry.crp.response.size();
  }
  return total;
}

}  // namespace neuropuls::puf
