#include "puf/crp_db.hpp"

#include "crypto/chacha20.hpp"

namespace neuropuls::puf {

void CrpDatabase::enroll(Puf& puf, std::size_t count, crypto::ChaChaDrbg& rng,
                         unsigned readings) {
  for (std::size_t i = 0; i < count; ++i) {
    Crp crp;
    crp.challenge = rng.generate(puf.challenge_bytes());
    crp.response = enroll_majority(puf, crp.challenge, readings | 1);
    insert(std::move(crp));
  }
}

void CrpDatabase::insert(Crp crp) {
  index_[crp.challenge] = entries_.size();
  entries_.push_back(std::move(crp));
}

std::optional<Crp> CrpDatabase::take() {
  if (entries_.empty()) return std::nullopt;
  Crp crp = std::move(entries_.back());
  entries_.pop_back();
  index_.erase(crp.challenge);
  return crp;
}

std::optional<Response> CrpDatabase::lookup(const Challenge& challenge) const {
  const auto it = index_.find(crypto::ByteView{challenge});
  if (it == index_.end()) return std::nullopt;
  return entries_[it->second].response;
}

std::size_t CrpDatabase::storage_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& crp : entries_) {
    total += crp.challenge.size() + crp.response.size();
  }
  return total;
}

}  // namespace neuropuls::puf
