#include "puf/crp_db.hpp"

#include "crypto/chacha20.hpp"

namespace neuropuls::puf {

CrpDatabase::CrpDatabase(std::size_t shards) {
  const std::size_t count = shards == 0 ? 1 : shards;
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

CrpDatabase::Shard& CrpDatabase::shard_for(
    crypto::ByteView challenge) noexcept {
  return *shards_[detail::ChallengeHash{}(challenge) % shards_.size()];
}

const CrpDatabase::Shard& CrpDatabase::shard_for(
    crypto::ByteView challenge) const noexcept {
  return *shards_[detail::ChallengeHash{}(challenge) % shards_.size()];
}

void CrpDatabase::enroll(Puf& puf, std::size_t count, crypto::ChaChaDrbg& rng,
                         unsigned readings) {
  for (std::size_t i = 0; i < count; ++i) {
    Crp crp;
    crp.challenge = rng.generate(puf.challenge_bytes());
    crp.response = enroll_majority(puf, crp.challenge, readings | 1);
    insert(std::move(crp));
  }
}

void CrpDatabase::insert(Crp crp) {
  Shard& shard = shard_for(crp.challenge);
  const ShardLock lock(shard);
  shard.index[crp.challenge] = shard.entries.size();
  shard.entries.push_back(Entry{std::move(crp), CrpHealth{}});
  size_.fetch_add(1, std::memory_order_relaxed);
}

void CrpDatabase::remove_at(Shard& shard, std::size_t pos) {
  shard.index.erase(shard.entries[pos].crp.challenge);
  compact(shard, pos);
}

// Swap-with-back removal of a slot whose index entry is already erased.
void CrpDatabase::compact(Shard& shard, std::size_t pos) {
  if (pos != shard.entries.size() - 1) {
    shard.entries[pos] = std::move(shard.entries.back());
    shard.index[shard.entries[pos].crp.challenge] = pos;
  }
  shard.entries.pop_back();
}

std::optional<Crp> CrpDatabase::take() {
  // Round-robin over shards so concurrent takers spread across stripes;
  // with one shard this degenerates to the serial scan order. Within a
  // shard, scan from the back (cheap removal) past any quarantined
  // entries: a CRP in quarantine must never be served for authentication.
  const std::size_t start =
      take_cursor_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
  for (std::size_t probe = 0; probe < shards_.size(); ++probe) {
    Shard& shard = *shards_[(start + probe) % shards_.size()];
    const ShardLock lock(shard);
    for (std::size_t i = shard.entries.size(); i-- > 0;) {
      if (shard.entries[i].health.quarantined) continue;
      // Erase the index entry before moving the CRP out: the challenge is
      // the map key, so erasing after the move would probe with a
      // moved-from (empty) buffer and strand a stale index entry.
      shard.index.erase(shard.entries[i].crp.challenge);
      Crp crp = std::move(shard.entries[i].crp);
      compact(shard, i);
      size_.fetch_sub(1, std::memory_order_relaxed);
      shard.takes.fetch_add(1, std::memory_order_relaxed);
      if (probe != 0) take_steals_.fetch_add(1, std::memory_order_relaxed);
      return crp;
    }
  }
  return std::nullopt;
}

std::optional<Response> CrpDatabase::lookup(const Challenge& challenge) const {
  const Shard& shard = shard_for(crypto::ByteView{challenge});
  const ShardLock lock(shard);
  const auto it = shard.index.find(crypto::ByteView{challenge});
  if (it == shard.index.end()) return std::nullopt;
  const Entry& entry = shard.entries[it->second];
  if (entry.health.quarantined) return std::nullopt;
  return entry.crp.response;
}

void CrpDatabase::record_success(const Challenge& challenge) {
  Shard& shard = shard_for(crypto::ByteView{challenge});
  const ShardLock lock(shard);
  const auto it = shard.index.find(crypto::ByteView{challenge});
  if (it == shard.index.end()) return;
  CrpHealth& health = shard.entries[it->second].health;
  ++health.successes;
  health.consecutive_failures = 0;
}

void CrpDatabase::record_failure(const Challenge& challenge) {
  Shard& shard = shard_for(crypto::ByteView{challenge});
  const ShardLock lock(shard);
  const auto it = shard.index.find(crypto::ByteView{challenge});
  if (it == shard.index.end()) return;
  CrpHealth& health = shard.entries[it->second].health;
  ++health.failures;
  ++health.consecutive_failures;
  if (health.consecutive_failures >= quarantine_threshold_) {
    health.quarantined = true;
  }
}

std::optional<CrpHealth> CrpDatabase::health(const Challenge& challenge) const {
  const Shard& shard = shard_for(crypto::ByteView{challenge});
  const ShardLock lock(shard);
  const auto it = shard.index.find(crypto::ByteView{challenge});
  if (it == shard.index.end()) return std::nullopt;
  return shard.entries[it->second].health;
}

std::size_t CrpDatabase::quarantined() const noexcept {
  std::size_t count = 0;
  for (const auto& shard : shards_) {
    const ShardLock lock(*shard);
    for (const Entry& entry : shard->entries) {
      if (entry.health.quarantined) ++count;
    }
  }
  return count;
}

std::size_t CrpDatabase::evict_quarantined() {
  std::size_t evicted = 0;
  for (const auto& shard : shards_) {
    const ShardLock lock(*shard);
    for (std::size_t i = shard->entries.size(); i-- > 0;) {
      if (shard->entries[i].health.quarantined) {
        remove_at(*shard, i);
        ++evicted;
      }
    }
  }
  size_.fetch_sub(evicted, std::memory_order_relaxed);
  return evicted;
}

std::size_t CrpDatabase::shard_size(std::size_t shard) const {
  const Shard& stripe = *shards_[shard % shards_.size()];
  const ShardLock lock(stripe);
  return stripe.entries.size();
}

CrpStoreStats CrpDatabase::lock_stats() const {
  CrpStoreStats stats;
  stats.shard_takes.reserve(shards_.size());
  for (const auto& shard : shards_) {
    stats.acquisitions += shard->acquisitions.load(std::memory_order_relaxed);
    stats.contended += shard->contended.load(std::memory_order_relaxed);
    const std::uint64_t takes = shard->takes.load(std::memory_order_relaxed);
    stats.takes += takes;
    stats.shard_takes.push_back(takes);
  }
  stats.take_steals = take_steals_.load(std::memory_order_relaxed);
  return stats;
}

std::size_t CrpDatabase::storage_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    const ShardLock lock(*shard);
    for (const Entry& entry : shard->entries) {
      total += entry.crp.challenge.size() + entry.crp.response.size();
    }
  }
  return total;
}

}  // namespace neuropuls::puf
