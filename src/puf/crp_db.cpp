#include "puf/crp_db.hpp"

#include <initializer_list>
#include <thread>

#include "common/arena.hpp"
#include "common/io.hpp"
#include "common/parallel.hpp"
#include "crypto/chacha20.hpp"
#include "puf/crp_wal.hpp"

namespace neuropuls::puf {

namespace io = common::io;

struct CrpDatabase::ReplayCounts {
  std::uint64_t snapshot_entries = 0;
  std::uint64_t wal_records = 0;
  std::uint64_t takes = 0;
  std::uint64_t torn_bytes = 0;
};

/// Group-commit writer state. The handshake mutex is held only for
/// flag/sequence bookkeeping — never across file I/O or a shard lock —
/// and shard locks stay leaves: the writer releases the shard lock
/// (after swapping the pending buffer out) before it touches a file.
struct CrpDatabase::WalState {
  CrpDurabilityOptions options;
  std::string dir;
  CrpRecoveryStats recovery;

  // Writer-thread-owned after the writer starts (the constructor fills
  // them in before, which the thread launch orders).
  std::uint64_t generation = 0;
  std::vector<io::File> files;
  std::vector<std::uint64_t> file_bytes;

  common::Mutex mutex;
  /// Wakes the writer: pending work, a sync/snapshot request, or stop.
  common::CondVar writer_cv;
  /// Wakes sync()/durable-take/snapshot() waiters after a writer round.
  common::CondVar done_cv;
  /// Highest record sequence per shard known to be on stable storage.
  std::vector<std::uint64_t> durable_seq NP_GUARDED_BY(mutex);
  bool sync_requested NP_GUARDED_BY(mutex) = false;
  bool snapshot_requested NP_GUARDED_BY(mutex) = false;
  std::uint64_t snapshots_done NP_GUARDED_BY(mutex) = 0;
  bool stop NP_GUARDED_BY(mutex) = false;
  /// Writer-side failure (I/O error) propagated to durable waiters.
  std::string error NP_GUARDED_BY(mutex);
  /// Un-flushed record bytes across all shards — a wakeup/batching hint
  /// (the buffers themselves are under the shard locks).
  std::atomic<std::size_t> pending_bytes{0};
  std::thread writer;
};

namespace {

/// Reads a whole file into `arena` and returns a view of it. Recovery
/// stages every WAL/snapshot image this way: the decoded records are
/// zero-copy views into the arena, which outlives the replay loop and
/// frees everything at once.
crypto::ByteView read_into_arena(common::Arena& arena,
                                 const std::string& path) {
  const io::File file = io::File::open_read(path);
  const std::size_t size = static_cast<std::size_t>(file.size());
  auto* data = static_cast<std::uint8_t*>(arena.allocate(size, 1));
  file.read_exact(0, {data, size});
  return {data, size};
}

}  // namespace

CrpDatabase::CrpDatabase(std::size_t shards) {
  const std::size_t count = shards == 0 ? 1 : shards;
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

CrpDatabase::CrpDatabase(std::size_t shards, CrpDurabilityOptions durability)
    : CrpDatabase(shards) {
  if (durability.directory.empty()) return;  // in-memory store, unchanged
  wal_ = std::make_unique<WalState>();
  WalState& w = *wal_;
  w.options = std::move(durability);
  w.dir = w.options.directory;
  io::create_directories(w.dir);

  const std::string manifest = wal::manifest_path(w.dir);
  bool roll_forward = false;
  if (!io::file_exists(manifest)) {
    // A manifest-less directory with store files in it is a damaged
    // store, not a fresh one — refuse rather than guess a layout.
    if (!io::list_files(w.dir).empty()) {
      throw wal::CrpStoreError("crp store: no manifest in non-empty " +
                               w.dir);
    }
    io::atomic_write_file(
        manifest,
        wal::encode_manifest(wal::Manifest{
            0, static_cast<std::uint32_t>(shards_.size()), 0}));
  } else {
    const wal::Manifest m = wal::decode_manifest(io::read_file(manifest));
    w.generation = m.generation;
    wal_recover(m, roll_forward);
  }
  if (roll_forward) {
    // Re-shard or interrupted snapshot: compact everything we just
    // replayed into a fresh generation before going live, so the
    // on-disk layout always matches the manifest exactly. Skip *two*
    // generations — an interrupted snapshot leaves orphan gen+1 logs
    // whose records belong to the old layout, and adopting one as a
    // live log would leak those records past the sequence filter.
    const std::uint64_t fresh = w.generation + 2;
    wal_write_snapshot_files(fresh);
    io::atomic_write_file(
        manifest,
        wal::encode_manifest(wal::Manifest{
            fresh, static_cast<std::uint32_t>(shards_.size()),
            take_cursor_.load(std::memory_order_relaxed)}));
    w.generation = fresh;
  }
  w.recovery.generation = w.generation;
  wal_cleanup_stale();

  w.files.reserve(shards_.size());
  w.file_bytes.assign(shards_.size(), 0);
  std::vector<std::uint64_t> replayed_seq(shards_.size(), 0);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    w.files.push_back(
        io::File::open_append(wal::wal_path(w.dir, i, w.generation)));
    w.file_bytes[i] = w.files[i].size();
    const ShardLock lock(*shards_[i]);
    replayed_seq[i] = shards_[i]->wal_seq;
  }
  {
    // Everything replayed is on stable storage already; starting the
    // durable watermark below wal_seq would deadlock the first sync().
    common::MutexLock lock(w.mutex);
    w.durable_seq = std::move(replayed_seq);
  }
  w.writer = std::thread([this] { wal_writer_main(); });
}

CrpDatabase::~CrpDatabase() {
  if (!wal_) return;
  {
    common::MutexLock lock(wal_->mutex);
    wal_->stop = true;
    wal_->writer_cv.notify_one();
  }
  if (wal_->writer.joinable()) wal_->writer.join();
}

CrpDatabase::Shard& CrpDatabase::shard_for(
    crypto::ByteView challenge) noexcept {
  return *shards_[detail::ChallengeHash{}(challenge) % shards_.size()];
}

const CrpDatabase::Shard& CrpDatabase::shard_for(
    crypto::ByteView challenge) const noexcept {
  return *shards_[detail::ChallengeHash{}(challenge) % shards_.size()];
}

std::size_t CrpDatabase::shard_index_for(
    crypto::ByteView challenge) const noexcept {
  return detail::ChallengeHash{}(challenge) % shards_.size();
}

void CrpDatabase::enroll(Puf& puf, std::size_t count, crypto::ChaChaDrbg& rng,
                         unsigned readings) {
  for (std::size_t i = 0; i < count; ++i) {
    Crp crp;
    crp.challenge = rng.generate(puf.challenge_bytes());
    crp.response = enroll_majority(puf, crp.challenge, readings | 1);
    insert(std::move(crp));
  }
}

void CrpDatabase::insert(Crp crp) {
  const std::size_t index = shard_index_for(crp.challenge);
  Shard& shard = *shards_[index];
  std::uint64_t seq = 0;
  std::size_t logged = 0;
  {
    const ShardLock lock(shard);
    if (wal_) {
      seq = ++shard.wal_seq;
      const std::size_t before = shard.wal_pending.size();
      wal::append_insert_record(shard.wal_pending, seq, crp.challenge,
                                crp.response);
      logged = shard.wal_pending.size() - before;
    }
    shard.index[crp.challenge] = shard.entries.size();
    shard.entries.push_back(Entry{std::move(crp), CrpHealth{}});
    size_.fetch_add(1, std::memory_order_relaxed);
  }
  if (logged != 0) {
    wal_after_append(index, seq, logged,
                     wal_->options.mode ==
                         CrpDurabilityOptions::Mode::kFsyncPerOp);
  }
}

void CrpDatabase::insert_batch(std::vector<Crp> crps) {
  if (crps.empty()) return;
  // Group CRPs by shard via counting sort (no per-shard vectors): one
  // pass computes shard occupancy, a prefix sum turns it into scatter
  // offsets, and the grouped order array drives one locked pass per
  // touched shard.
  std::vector<std::size_t> shard_of(crps.size());
  std::vector<std::size_t> counts(shards_.size(), 0);
  for (std::size_t i = 0; i < crps.size(); ++i) {
    shard_of[i] = shard_index_for(crps[i].challenge);
    ++counts[shard_of[i]];
  }
  std::vector<std::size_t> offsets(shards_.size() + 1, 0);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    offsets[s + 1] = offsets[s] + counts[s];
  }
  std::vector<std::size_t> grouped(crps.size());
  {
    std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
    for (std::size_t i = 0; i < crps.size(); ++i) {
      grouped[cursor[shard_of[i]]++] = i;
    }
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (counts[s] == 0) continue;
    Shard& shard = *shards_[s];
    std::uint64_t seq = 0;
    std::size_t logged = 0;
    {
      const ShardLock lock(shard);
      const std::size_t before = shard.wal_pending.size();
      shard.entries.reserve(shard.entries.size() + counts[s]);
      for (std::size_t g = offsets[s]; g < offsets[s + 1]; ++g) {
        Crp& crp = crps[grouped[g]];
        if (wal_) {
          seq = ++shard.wal_seq;
          wal::append_insert_record(shard.wal_pending, seq, crp.challenge,
                                    crp.response);
        }
        shard.index[crp.challenge] = shard.entries.size();
        shard.entries.push_back(Entry{std::move(crp), CrpHealth{}});
      }
      logged = shard.wal_pending.size() - before;
      size_.fetch_add(counts[s], std::memory_order_relaxed);
    }
    if (logged != 0) {
      // One accounting/wakeup hand-off covers the whole shard group; the
      // highest sequence stands in for every record below it.
      wal_after_append(s, seq, logged,
                       wal_->options.mode ==
                           CrpDurabilityOptions::Mode::kFsyncPerOp);
    }
  }
}

void CrpDatabase::remove_at(Shard& shard, std::size_t pos) {
  shard.index.erase(shard.entries[pos].crp.challenge);
  compact(shard, pos);
}

// Swap-with-back removal of a slot whose index entry is already erased.
void CrpDatabase::compact(Shard& shard, std::size_t pos) {
  if (pos != shard.entries.size() - 1) {
    shard.entries[pos] = std::move(shard.entries.back());
    shard.index[shard.entries[pos].crp.challenge] = pos;
  }
  shard.entries.pop_back();
}

std::optional<Crp> CrpDatabase::take() {
  // Round-robin over shards so concurrent takers spread across stripes;
  // with one shard this degenerates to the serial scan order. Within a
  // shard, scan from the back (cheap removal) past any quarantined
  // entries: a CRP in quarantine must never be served for authentication.
  const std::size_t start =
      take_cursor_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
  for (std::size_t probe = 0; probe < shards_.size(); ++probe) {
    const std::size_t index = (start + probe) % shards_.size();
    Shard& shard = *shards_[index];
    std::optional<Crp> crp;
    std::uint64_t seq = 0;
    std::size_t logged = 0;
    {
      const ShardLock lock(shard);
      for (std::size_t i = shard.entries.size(); i-- > 0;) {
        if (shard.entries[i].health.quarantined) continue;
        // Erase the index entry before moving the CRP out: the challenge
        // is the map key, so erasing after the move would probe with a
        // moved-from (empty) buffer and strand a stale index entry.
        shard.index.erase(shard.entries[i].crp.challenge);
        crp = std::move(shard.entries[i].crp);
        compact(shard, i);
        size_.fetch_sub(1, std::memory_order_relaxed);
        shard.takes.fetch_add(1, std::memory_order_relaxed);
        if (probe != 0) {
          take_steals_.fetch_add(1, std::memory_order_relaxed);
        }
        if (wal_) {
          seq = ++shard.wal_seq;
          const std::size_t before = shard.wal_pending.size();
          wal::append_take_record(shard.wal_pending, seq, crp->challenge);
          logged = shard.wal_pending.size() - before;
        }
        break;
      }
    }
    if (crp.has_value()) {
      if (logged != 0) {
        // The one-time-use invariant: do not hand the CRP out until its
        // take record is on stable storage (unless explicitly waived).
        wal_after_append(index, seq, logged,
                         wal_->options.durable_take ||
                             wal_->options.mode ==
                                 CrpDurabilityOptions::Mode::kFsyncPerOp);
      }
      return crp;
    }
  }
  return std::nullopt;
}

std::optional<Crp> CrpDatabase::take(const Challenge& challenge) {
  const std::size_t index = shard_index_for(crypto::ByteView{challenge});
  Shard& shard = *shards_[index];
  std::optional<Crp> crp;
  std::uint64_t seq = 0;
  std::size_t logged = 0;
  {
    const ShardLock lock(shard);
    const auto it = shard.index.find(crypto::ByteView{challenge});
    if (it == shard.index.end()) return std::nullopt;
    const std::size_t pos = it->second;
    if (shard.entries[pos].health.quarantined) return std::nullopt;
    // Same ordering discipline as the scanning take(): drop the index
    // entry while the key buffer is still intact, then move the CRP out.
    shard.index.erase(it);
    crp = std::move(shard.entries[pos].crp);
    compact(shard, pos);
    size_.fetch_sub(1, std::memory_order_relaxed);
    shard.takes.fetch_add(1, std::memory_order_relaxed);
    if (wal_) {
      seq = ++shard.wal_seq;
      const std::size_t before = shard.wal_pending.size();
      wal::append_take_record(shard.wal_pending, seq, crp->challenge);
      logged = shard.wal_pending.size() - before;
    }
  }
  if (logged != 0) {
    wal_after_append(index, seq, logged,
                     wal_->options.durable_take ||
                         wal_->options.mode ==
                             CrpDurabilityOptions::Mode::kFsyncPerOp);
  }
  return crp;
}

std::optional<Response> CrpDatabase::lookup(const Challenge& challenge) const {
  const Shard& shard = shard_for(crypto::ByteView{challenge});
  const ShardLock lock(shard);
  const auto it = shard.index.find(crypto::ByteView{challenge});
  if (it == shard.index.end()) return std::nullopt;
  const Entry& entry = shard.entries[it->second];
  if (entry.health.quarantined) return std::nullopt;
  return entry.crp.response;
}

void CrpDatabase::record_success(const Challenge& challenge) {
  const std::size_t index = shard_index_for(crypto::ByteView{challenge});
  Shard& shard = *shards_[index];
  std::uint64_t seq = 0;
  std::size_t logged = 0;
  {
    const ShardLock lock(shard);
    const auto it = shard.index.find(crypto::ByteView{challenge});
    if (it == shard.index.end()) return;
    CrpHealth& health = shard.entries[it->second].health;
    ++health.successes;
    health.consecutive_failures = 0;
    if (wal_) {
      seq = ++shard.wal_seq;
      const std::size_t before = shard.wal_pending.size();
      wal::append_health_record(shard.wal_pending, seq, challenge, health);
      logged = shard.wal_pending.size() - before;
    }
  }
  if (logged != 0) {
    wal_after_append(index, seq, logged,
                     wal_->options.mode ==
                         CrpDurabilityOptions::Mode::kFsyncPerOp);
  }
}

void CrpDatabase::record_failure(const Challenge& challenge) {
  const std::size_t index = shard_index_for(crypto::ByteView{challenge});
  Shard& shard = *shards_[index];
  std::uint64_t seq = 0;
  std::size_t logged = 0;
  {
    const ShardLock lock(shard);
    const auto it = shard.index.find(crypto::ByteView{challenge});
    if (it == shard.index.end()) return;
    CrpHealth& health = shard.entries[it->second].health;
    ++health.failures;
    ++health.consecutive_failures;
    if (health.consecutive_failures >= quarantine_threshold_) {
      health.quarantined = true;
    }
    if (wal_) {
      // The record carries the *resulting* counters, so replay is exact
      // whatever quarantine threshold a later run configures.
      seq = ++shard.wal_seq;
      const std::size_t before = shard.wal_pending.size();
      wal::append_health_record(shard.wal_pending, seq, challenge, health);
      logged = shard.wal_pending.size() - before;
    }
  }
  if (logged != 0) {
    wal_after_append(index, seq, logged,
                     wal_->options.mode ==
                         CrpDurabilityOptions::Mode::kFsyncPerOp);
  }
}

std::optional<CrpHealth> CrpDatabase::health(const Challenge& challenge) const {
  const Shard& shard = shard_for(crypto::ByteView{challenge});
  const ShardLock lock(shard);
  const auto it = shard.index.find(crypto::ByteView{challenge});
  if (it == shard.index.end()) return std::nullopt;
  return shard.entries[it->second].health;
}

std::size_t CrpDatabase::quarantined() const noexcept {
  std::size_t count = 0;
  for (const auto& shard : shards_) {
    const ShardLock lock(*shard);
    for (const Entry& entry : shard->entries) {
      if (entry.health.quarantined) ++count;
    }
  }
  return count;
}

std::size_t CrpDatabase::evict_quarantined() {
  std::size_t evicted = 0;
  for (std::size_t index = 0; index < shards_.size(); ++index) {
    Shard& shard = *shards_[index];
    std::uint64_t seq = 0;
    std::size_t logged = 0;
    {
      const ShardLock lock(shard);
      const std::size_t before = shard.wal_pending.size();
      for (std::size_t i = shard.entries.size(); i-- > 0;) {
        if (shard.entries[i].health.quarantined) {
          if (wal_) {
            seq = ++shard.wal_seq;
            wal::append_evict_record(shard.wal_pending, seq,
                                     shard.entries[i].crp.challenge);
          }
          remove_at(shard, i);
          ++evicted;
        }
      }
      logged = shard.wal_pending.size() - before;
    }
    if (logged != 0) {
      wal_after_append(index, seq, logged,
                       wal_->options.mode ==
                           CrpDurabilityOptions::Mode::kFsyncPerOp);
    }
  }
  size_.fetch_sub(evicted, std::memory_order_relaxed);
  return evicted;
}

std::size_t CrpDatabase::shard_size(std::size_t shard) const {
  const Shard& stripe = *shards_[shard % shards_.size()];
  const ShardLock lock(stripe);
  return stripe.entries.size();
}

CrpStoreStats CrpDatabase::lock_stats() const {
  CrpStoreStats stats;
  stats.shard_takes.reserve(shards_.size());
  for (const auto& shard : shards_) {
    stats.acquisitions += shard->acquisitions.load(std::memory_order_relaxed);
    stats.contended += shard->contended.load(std::memory_order_relaxed);
    const std::uint64_t takes = shard->takes.load(std::memory_order_relaxed);
    stats.takes += takes;
    stats.shard_takes.push_back(takes);
  }
  stats.take_steals = take_steals_.load(std::memory_order_relaxed);
  return stats;
}

std::size_t CrpDatabase::storage_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    const ShardLock lock(*shard);
    for (const Entry& entry : shard->entries) {
      total += entry.crp.challenge.size() + entry.crp.response.size();
    }
  }
  return total;
}

// ---------------------------------------------------------------------------
// Durability: append-side handshake.

void CrpDatabase::wal_after_append(std::size_t shard, std::uint64_t seq,
                                   std::size_t bytes, bool wait_durable) {
  WalState& w = *wal_;
  const std::size_t before =
      w.pending_bytes.fetch_add(bytes, std::memory_order_relaxed);
  if (wait_durable) {
    common::MutexLock lock(w.mutex);
    while (w.durable_seq[shard] < seq && !w.stop) {
      // Re-arm each round: the writer consumes the flag per flush and
      // more of our bytes may still be pending.
      w.sync_requested = true;
      w.writer_cv.notify_one();
      w.done_cv.wait(w.mutex);
    }
    if (!w.error.empty()) throw wal::CrpStoreError(w.error);
    return;
  }
  const bool first_pending = before == 0;
  const bool batch_full = before < w.options.batch_bytes &&
                          before + bytes >= w.options.batch_bytes;
  if (first_pending || batch_full) {
    // Taking the handshake mutex for the notify closes the window where
    // the writer has checked its predicate but not yet gone to sleep.
    common::MutexLock lock(w.mutex);
    w.writer_cv.notify_one();
  }
}

void CrpDatabase::sync() {
  if (!wal_) return;
  WalState& w = *wal_;
  std::vector<std::uint64_t> target(shards_.size(), 0);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const ShardLock lock(*shards_[i]);
    target[i] = shards_[i]->wal_seq;
  }
  common::MutexLock lock(w.mutex);
  for (;;) {
    bool reached = true;
    for (std::size_t i = 0; i < target.size(); ++i) {
      if (w.durable_seq[i] < target[i]) {
        reached = false;
        break;
      }
    }
    if (reached || w.stop) break;
    w.sync_requested = true;
    w.writer_cv.notify_one();
    w.done_cv.wait(w.mutex);
  }
  if (!w.error.empty()) throw wal::CrpStoreError(w.error);
}

void CrpDatabase::snapshot() {
  if (!wal_) return;
  WalState& w = *wal_;
  common::MutexLock lock(w.mutex);
  const std::uint64_t before = w.snapshots_done;
  w.snapshot_requested = true;
  w.writer_cv.notify_one();
  while (w.snapshots_done == before && !w.stop) {
    w.done_cv.wait(w.mutex);
  }
  if (!w.error.empty()) throw wal::CrpStoreError(w.error);
}

CrpRecoveryStats CrpDatabase::recovery_stats() const noexcept {
  return wal_ ? wal_->recovery : CrpRecoveryStats{};
}

// ---------------------------------------------------------------------------
// Durability: the group-commit writer.

void CrpDatabase::wal_writer_main() {
  WalState& w = *wal_;
  std::vector<crypto::Bytes> scratch(shards_.size());
  for (;;) {
    bool stopping = false;
    bool want_snapshot = false;
    {
      common::MutexLock lock(w.mutex);
      while (!w.stop && !w.sync_requested && !w.snapshot_requested &&
             w.pending_bytes.load(std::memory_order_relaxed) == 0) {
        w.writer_cv.wait(w.mutex);
      }
      if (!w.stop && !w.sync_requested && !w.snapshot_requested &&
          w.pending_bytes.load(std::memory_order_relaxed) <
              w.options.batch_bytes) {
        // Coalescing window: give concurrent appenders a chance to fill
        // the batch before paying for the fsync. This wait — not the
        // fsync — is the whole of group commit's latency cost.
        w.writer_cv.wait_for(w.mutex, w.options.flush_interval);
      }
      stopping = w.stop;
      want_snapshot = w.snapshot_requested;
      w.snapshot_requested = false;
      w.sync_requested = false;
    }
    bool did_snapshot = false;
    try {
      wal_flush_pending(scratch);
      if (!want_snapshot && w.options.snapshot_wal_bytes != 0) {
        for (const std::uint64_t bytes : w.file_bytes) {
          if (bytes >= w.options.snapshot_wal_bytes) {
            want_snapshot = true;
            break;
          }
        }
      }
      if (want_snapshot) {
        wal_rotate_and_snapshot();
        did_snapshot = true;
      }
    } catch (const std::exception& e) {
      common::MutexLock lock(w.mutex);
      w.error = e.what();
      w.stop = true;
      w.done_cv.notify_all();
      return;
    }
    {
      common::MutexLock lock(w.mutex);
      if (did_snapshot) ++w.snapshots_done;
      w.done_cv.notify_all();
      if (stopping &&
          w.pending_bytes.load(std::memory_order_relaxed) == 0) {
        return;  // drained: clean shutdown leaves no torn tail
      }
    }
  }
}

void CrpDatabase::wal_flush_pending(std::vector<crypto::Bytes>& scratch) {
  WalState& w = *wal_;
  std::vector<std::uint64_t> high(shards_.size(), 0);
  std::size_t drained = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    crypto::Bytes& batch = scratch[i];
    batch.clear();
    {
      // Swap the pending buffer out under the shard lock (the buffers
      // trade capacities, so steady state never reallocates here), then
      // do every file operation with no lock held.
      const ShardLock lock(shard);
      if (!shard.wal_pending.empty()) {
        batch.swap(shard.wal_pending);
        high[i] = shard.wal_seq;
      }
    }
    if (batch.empty()) continue;
    drained += batch.size();
    w.files[i].write_all(batch);
    w.file_bytes[i] += batch.size();
  }
  if (drained == 0) return;
  w.pending_bytes.fetch_sub(drained, std::memory_order_relaxed);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (!scratch[i].empty()) w.files[i].sync();
  }
  common::MutexLock lock(w.mutex);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (high[i] > w.durable_seq[i]) w.durable_seq[i] = high[i];
  }
}

void CrpDatabase::wal_rotate_and_snapshot() {
  WalState& w = *wal_;
  const std::uint64_t next = w.generation + 1;
  // (1) Rotate: fresh logs for the next generation. Appenders only ever
  // touch the in-memory pending buffers, so swapping the files here is
  // writer-local; records still pending flush into the new logs with
  // sequences the snapshot below already covers (replay skips them).
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    w.files[i] = io::File::open_append(wal::wal_path(w.dir, i, next));
    w.file_bytes[i] = 0;
  }
  io::sync_directory(w.dir);
  // (2) Capture each shard *after* the rotation point and publish the
  // snapshot files atomically.
  wal_write_snapshot_files(next);
  // (3) Commit: the manifest rename is the atomic switch — a crash
  // before it recovers from the old generation (plus the orphan new-gen
  // logs), a crash after it recovers from the new one.
  io::atomic_write_file(
      wal::manifest_path(w.dir),
      wal::encode_manifest(wal::Manifest{
          next, static_cast<std::uint32_t>(shards_.size()),
          take_cursor_.load(std::memory_order_relaxed)}));
  w.generation = next;
  // (4) Everything from older generations is now redundant.
  wal_cleanup_stale();
}

void CrpDatabase::wal_write_snapshot_files(std::uint64_t generation) {
  WalState& w = *wal_;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    crypto::Bytes image;
    {
      // Entries are serialised in storage order so a recovered shard
      // reproduces the exact take() scan order. Encoding under the lock
      // is memory-only work; the file write below happens outside it.
      const ShardLock lock(shard);
      wal::SnapshotBuilder builder(
          static_cast<std::uint32_t>(i),
          static_cast<std::uint32_t>(shards_.size()), shard.wal_seq);
      for (const Entry& entry : shard.entries) {
        builder.add(entry.crp.challenge, entry.crp.response, entry.health);
      }
      image = builder.finish();
    }
    io::atomic_write_file(wal::snapshot_path(w.dir, i, generation), image);
  }
}

void CrpDatabase::wal_cleanup_stale() {
  WalState& w = *wal_;
  std::vector<std::string> keep;
  keep.push_back(wal::manifest_path(w.dir));
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    keep.push_back(wal::wal_path(w.dir, i, w.generation));
    keep.push_back(wal::snapshot_path(w.dir, i, w.generation));
  }
  for (const std::string& name : io::list_files(w.dir)) {
    const std::string path = w.dir + "/" + name;
    if (std::find(keep.begin(), keep.end(), path) == keep.end()) {
      io::remove_file(path);
    }
  }
}

// ---------------------------------------------------------------------------
// Durability: cold-start recovery.

void CrpDatabase::apply_recovered_insert(Shard& shard,
                                         crypto::ByteView challenge,
                                         crypto::ByteView response,
                                         const CrpHealth& health) {
  if (shard.index.find(challenge) != shard.index.end()) {
    throw wal::CrpStoreError("recovery: duplicate challenge in store");
  }
  Crp crp;
  crp.challenge.assign(challenge.begin(), challenge.end());
  crp.response.assign(response.begin(), response.end());
  shard.index[crp.challenge] = shard.entries.size();
  shard.entries.push_back(Entry{std::move(crp), health});
  size_.fetch_add(1, std::memory_order_relaxed);
}

void CrpDatabase::apply_recovered_record(Shard& shard,
                                         const wal::RecordView& record) {
  switch (record.type) {
    case wal::RecordType::kInsert:
      apply_recovered_insert(shard, record.challenge, record.response,
                             CrpHealth{});
      break;
    case wal::RecordType::kTake:
    case wal::RecordType::kEvict: {
      const auto it = shard.index.find(record.challenge);
      if (it == shard.index.end()) {
        throw wal::CrpStoreError(
            "recovery: take/evict record for unknown challenge");
      }
      // remove_at reproduces the live path's swap-with-back compaction,
      // so the recovered entry order matches a never-restarted store.
      remove_at(shard, it->second);
      size_.fetch_sub(1, std::memory_order_relaxed);
      break;
    }
    case wal::RecordType::kHealth: {
      const auto it = shard.index.find(record.challenge);
      if (it == shard.index.end()) {
        throw wal::CrpStoreError(
            "recovery: health record for unknown challenge");
      }
      shard.entries[it->second].health = record.health;
      break;
    }
  }
}

CrpDatabase::ReplayCounts CrpDatabase::wal_replay_shard(
    std::size_t source, std::uint32_t source_count, std::uint64_t generation,
    bool direct, bool& orphan) {
  WalState& w = *wal_;
  ReplayCounts counts;
  common::Arena arena;

  // Stage + decode everything first (no locks held during file reads),
  // then apply. The decoded views alias the arena images.
  std::uint64_t base_seq = 0;
  std::vector<wal::SnapshotEntryView> entries;
  const std::string snap = wal::snapshot_path(w.dir, source, generation);
  if (io::file_exists(snap)) {
    const wal::SnapshotView view =
        wal::decode_snapshot(read_into_arena(arena, snap));
    if (view.shard_index != source || view.shard_count != source_count) {
      throw wal::CrpStoreError("snapshot: header does not match manifest");
    }
    base_seq = view.wal_seq;
    entries = view.entries;
  }

  std::vector<wal::RecordView> records;
  std::uint64_t last_seq = base_seq;
  for (const std::uint64_t gen : {generation, generation + 1}) {
    const std::string path = wal::wal_path(w.dir, source, gen);
    if (!io::file_exists(path)) continue;
    if (gen != generation) orphan = true;  // interrupted snapshot
    wal::WalDecodeResult decoded = wal::decode_wal(read_into_arena(arena, path));
    counts.torn_bytes += decoded.torn_bytes;
    for (const wal::RecordView& record : decoded.records) {
      if (record.seq <= base_seq) continue;  // snapshot already covers it
      if (record.seq <= last_seq) {
        throw wal::CrpStoreError("wal: sequence overlap across generations");
      }
      last_seq = record.seq;
      records.push_back(record);
    }
  }
  counts.snapshot_entries = entries.size();
  counts.wal_records = records.size();

  if (direct) {
    // Same layout: this task owns shard `source` outright; one lock
    // acquisition replays the whole shard.
    Shard& shard = *shards_[source];
    const ShardLock lock(shard);
    for (const wal::SnapshotEntryView& entry : entries) {
      apply_recovered_insert(shard, entry.challenge, entry.response,
                             entry.health);
    }
    for (const wal::RecordView& record : records) {
      apply_recovered_record(shard, record);
      if (record.type == wal::RecordType::kTake) ++counts.takes;
    }
    shard.wal_seq = last_seq;
    return counts;
  }

  // Re-sharding: route every entry/record through the live hash, one
  // shard lock per application (serial caller, so order is still
  // deterministic).
  for (const wal::SnapshotEntryView& entry : entries) {
    Shard& target = shard_for(entry.challenge);
    const ShardLock lock(target);
    apply_recovered_insert(target, entry.challenge, entry.response,
                           entry.health);
  }
  for (const wal::RecordView& record : records) {
    Shard& target = shard_for(record.challenge);
    const ShardLock lock(target);
    apply_recovered_record(target, record);
    if (record.type == wal::RecordType::kTake) ++counts.takes;
  }
  return counts;
}

void CrpDatabase::wal_recover(const wal::Manifest& manifest,
                              bool& roll_forward) {
  WalState& w = *wal_;
  if (manifest.shard_count == 0) {
    throw wal::CrpStoreError("manifest: zero shard count");
  }
  const bool same_layout = manifest.shard_count == shards_.size();
  w.recovery.source_shard_count = manifest.shard_count;
  w.recovery.resharded = !same_layout;

  std::atomic<std::uint64_t> snapshot_entries{0};
  std::atomic<std::uint64_t> wal_records{0};
  std::atomic<std::uint64_t> takes{0};
  std::atomic<std::uint64_t> torn{0};
  std::atomic<bool> orphan{false};

  if (same_layout) {
    // Fan the per-shard replays across the pool: shard files are
    // independent and each task only ever locks its own shard.
    w.recovery.parallel_replay = true;
    common::parallel_for(shards_.size(), [&](std::size_t i) {
      bool task_orphan = false;
      const ReplayCounts counts = wal_replay_shard(
          i, manifest.shard_count, manifest.generation, true, task_orphan);
      snapshot_entries.fetch_add(counts.snapshot_entries,
                                 std::memory_order_relaxed);
      wal_records.fetch_add(counts.wal_records, std::memory_order_relaxed);
      takes.fetch_add(counts.takes, std::memory_order_relaxed);
      torn.fetch_add(counts.torn_bytes, std::memory_order_relaxed);
      if (task_orphan) orphan.store(true, std::memory_order_relaxed);
    });
  } else {
    // Different shard count: replay serially (deterministic application
    // order) through the hash router, then roll forward to a compacted
    // snapshot in the new layout.
    roll_forward = true;
    for (std::size_t j = 0; j < manifest.shard_count; ++j) {
      bool task_orphan = false;
      const ReplayCounts counts = wal_replay_shard(
          j, manifest.shard_count, manifest.generation, false, task_orphan);
      snapshot_entries.fetch_add(counts.snapshot_entries,
                                 std::memory_order_relaxed);
      wal_records.fetch_add(counts.wal_records, std::memory_order_relaxed);
      takes.fetch_add(counts.takes, std::memory_order_relaxed);
      torn.fetch_add(counts.torn_bytes, std::memory_order_relaxed);
      if (task_orphan) orphan.store(true, std::memory_order_relaxed);
    }
  }
  if (orphan.load(std::memory_order_relaxed)) roll_forward = true;
  // A torn tail means the live WAL file ends in a partial record. The
  // append fd would write the next record after that garbage, wedging
  // the *next* recovery on a mid-file corruption — so compact to a
  // fresh generation instead of appending to a damaged log.
  if (torn.load(std::memory_order_relaxed) != 0) roll_forward = true;

  w.recovery.snapshot_entries =
      snapshot_entries.load(std::memory_order_relaxed);
  w.recovery.wal_records = wal_records.load(std::memory_order_relaxed);
  w.recovery.replayed_takes = takes.load(std::memory_order_relaxed);
  w.recovery.torn_bytes = torn.load(std::memory_order_relaxed);
  // Deterministic cursor restore: the manifest's cursor plus one
  // advance per replayed take. Unsuccessful take() calls between the
  // snapshot and the crash also advanced the live cursor but left no
  // record; their advances are deliberately not reproduced.
  take_cursor_.store(manifest.take_cursor +
                         takes.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
}

}  // namespace neuropuls::puf
