#include "fleet/synthetic_puf.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "metrics/streaming.hpp"

namespace neuropuls::fleet {

namespace {

constexpr std::uint64_t kResponseTag = 0x72657370'6f6e7365ULL;  // "response"
constexpr std::uint64_t kNoiseTag = 0x6e6f6973'65746167ULL;     // "noisetag"
constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;

using metrics::mix64;
using metrics::splitmix64_next;

}  // namespace

SyntheticPuf::SyntheticPuf(SyntheticPufParams params,
                           std::uint64_t device_seed,
                           faults::DeviceFaultConfig drift,
                           std::uint64_t drift_seed)
    : params_(params),
      device_seed_(device_seed),
      model_(std::move(drift), drift_seed) {
  if (params_.challenge_bytes == 0 || params_.challenge_bytes > 8) {
    throw std::invalid_argument("SyntheticPuf: challenge_bytes must be 1..8");
  }
  if (params_.response_bytes == 0) {
    throw std::invalid_argument("SyntheticPuf: response_bytes must be > 0");
  }
}

double SyntheticPuf::error_rate() const noexcept {
  double p = params_.base_error_rate;
  if (!model_.quiet()) {
    p += params_.aging_error_gain * (1.0 - model_.laser_scale(day_));
    p += params_.thermal_error_gain *
         std::abs(model_.temperature_offset(day_));
    p += params_.phase_error_gain * std::abs(model_.phase_drift(day_, 0));
  }
  return std::clamp(p, 0.0, 0.5);
}

void SyntheticPuf::evaluate_noiseless_into(std::uint64_t challenge,
                                           std::uint8_t* out) const noexcept {
  // Keyed-PRF response surface: a splitmix chain seeded by the device
  // key and the (avalanched) challenge. Distinct devices and distinct
  // challenges decorrelate fully — uniformity/uniqueness ~0.5 by
  // construction, which the streaming metrics verify on samples.
  std::uint64_t state =
      device_seed_ ^ kResponseTag ^ mix64(challenge * kGolden);
  std::size_t produced = 0;
  while (produced < params_.response_bytes) {
    const std::uint64_t word = splitmix64_next(state);
    const std::size_t take =
        std::min<std::size_t>(8, params_.response_bytes - produced);
    std::memcpy(out + produced, &word, take);
    produced += take;
  }
}

void SyntheticPuf::evaluate_into(std::uint64_t challenge,
                                 std::uint64_t reading,
                                 std::uint8_t* out) const noexcept {
  evaluate_noiseless_into(challenge, out);
  const double p = error_rate();
  // Quantise the flip probability to 8 bits: p8/256 per bit. The mask
  // is built word-wise by binary expansion — processing p8's bits from
  // LSB to MSB, OR-ing a fresh uniform word for a 1 bit and AND-ing for
  // a 0 bit leaves every mask bit set with probability exactly p8/256,
  // at 8 PRNG draws per 64 bits instead of one Bernoulli per bit.
  const auto p8 = static_cast<std::uint32_t>(std::lround(p * 256.0));
  if (p8 == 0) return;
  std::uint64_t state = device_seed_ ^ kNoiseTag ^
                        mix64(challenge * kGolden + reading) ^
                        (day_ * 0xda3e39cb94b95bdbULL);
  std::size_t produced = 0;
  while (produced < params_.response_bytes) {
    std::uint64_t mask = 0;
    for (std::uint32_t bit = 0; bit < 8; ++bit) {
      const std::uint64_t draw = splitmix64_next(state);
      mask = ((p8 >> bit) & 1u) != 0 ? (mask | draw) : (mask & draw);
    }
    const std::size_t take =
        std::min<std::size_t>(8, params_.response_bytes - produced);
    std::uint64_t word = 0;
    std::memcpy(&word, out + produced, take);
    word ^= mask;
    std::memcpy(out + produced, &word, take);
    produced += take;
  }
}

void SyntheticPuf::evaluate_noiseless_batch_into(
    const std::uint64_t* challenges, std::size_t n,
    std::uint8_t* out) const noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    evaluate_noiseless_into(challenges[i], out + i * params_.response_bytes);
  }
}

std::uint64_t SyntheticPuf::challenge_word(const puf::Challenge& challenge) {
  std::uint64_t word = 0;
  std::memcpy(&word, challenge.data(),
              std::min<std::size_t>(challenge.size(), 8));
  return word;
}

puf::Challenge SyntheticPuf::challenge_bytes_of(std::uint64_t word) const {
  puf::Challenge challenge(params_.challenge_bytes, 0);
  std::memcpy(challenge.data(), &word,
              std::min<std::size_t>(params_.challenge_bytes, 8));
  return challenge;
}

puf::Response SyntheticPuf::evaluate(const puf::Challenge& challenge) {
  if (challenge.size() != params_.challenge_bytes) {
    throw std::invalid_argument("SyntheticPuf: wrong challenge size");
  }
  puf::Response response(params_.response_bytes, 0);
  evaluate_into(challenge_word(challenge), ++reading_counter_,
                response.data());
  return response;
}

puf::Response SyntheticPuf::evaluate_noiseless(
    const puf::Challenge& challenge) const {
  if (challenge.size() != params_.challenge_bytes) {
    throw std::invalid_argument("SyntheticPuf: wrong challenge size");
  }
  puf::Response response(params_.response_bytes, 0);
  evaluate_noiseless_into(challenge_word(challenge), response.data());
  return response;
}

}  // namespace neuropuls::fleet
