// Fleet-scale campaign simulator (ROADMAP item 3).
//
// The paper's verifier is fleet-facing: one infrastructure endpoint
// serving a million PUF edge devices through their whole lifecycle —
// enrollment at manufacturing, routine re-authentication, key rotation,
// quarantine and re-enrollment of degrading devices, revocation of
// decommissioned ones. This module drives that lifecycle end-to-end
// against the real production stack: synthetic hardware-speed PUFs
// (synthetic_puf.hpp), the sharded durable CrpDatabase, and the
// work-stealing SessionEngine running genuine mutual-auth handshakes.
//
// Memory model — the hard constraint at this scale. The simulator never
// materialises the fleet: per-device persistent state is one 12-byte
// cursor record (generation window + health flags), and everything else
// is derived on demand as a pure function of (fleet_seed, device_id):
// challenges, device PUF seeds, drift configurations. Enrollment
// streams through bounded staging chunks into CrpDatabase::insert_batch
// so peak memory is O(chunk), not O(fleet); campaigns run in bounded
// waves of live session fixtures through one reused SessionEngine (its
// arena resets between waves). Population statistics use the streaming
// estimators of metrics/streaming.hpp: order-independent hash-sampling
// for inter-device uniqueness and mergeable GK sketches for session
// latency, so a 1M-device run holds kilobytes of metric state. An
// optional byte budget is asserted against the process high-water mark
// every chunk — the simulator fails loudly the moment the bounded-
// memory promise breaks, rather than quietly paging.
//
// Key rotation — crash safety. A rotation retires a device's oldest
// CRP and provisions a fresh one. The sweep orders each wave as: batch
// durable insert of all new CRPs -> sync() barrier -> keyed take() of
// each old CRP. A verifier crash at any byte therefore leaves every
// device with at least one live CRP (the WAL records inserts before
// takes reach stable storage), and the durable-take guarantee means a
// consumed CRP is never re-issued. recover_state()/resume_rotation()
// rebuild the cursor window from the recovered store and finish any
// half-done rotations — the chaos suite crash-sweeps this path byte by
// byte (tests/chaos/test_fleet_crash.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "faults/device_faults.hpp"
#include "faults/faulty_channel.hpp"
#include "fleet/synthetic_puf.hpp"
#include "metrics/streaming.hpp"
#include "puf/crp_db.hpp"

namespace neuropuls::common {
class ThreadPool;
}  // namespace neuropuls::common

namespace neuropuls::fleet {

struct FleetConfig {
  std::size_t devices = 1000;
  /// CRPs harvested per device at enrollment (the initial CRP plus
  /// spares, generations [0, generations)).
  std::size_t generations = 2;
  /// Devices per enrollment staging chunk — the O(chunk) memory knob.
  std::size_t enroll_chunk = 8192;
  /// Sessions in flight per campaign wave (bounds live fixtures).
  std::size_t wave_size = 512;
  std::uint64_t seed = 0xF1EE75EEDULL;
  SyntheticPufParams puf;
  /// Population drift: per-device aging parameters spread around these
  /// means (device_drift_config).
  faults::FleetDriftSpread drift;
  /// Fraction of devices whose channel runs through a seeded
  /// FaultyChannel during campaigns (hash-selected, deterministic).
  double faulty_device_rate = 0.0;
  faults::LinkFaultRates fault_rates;
  /// Devices sampled (order-independently) for the enrollment
  /// uniqueness estimate; 0 disables sampling.
  std::size_t uniqueness_sample_target = 256;
  /// GK sketch accuracy for session-latency quantiles.
  double latency_sketch_eps = 0.01;
  /// Process byte budget asserted per chunk/wave against the alloc
  /// probe (when active) and VmHWM; 0 = unchecked. Violations throw.
  std::size_t memory_budget_bytes = 0;
  /// Worker pool; nullptr = the process-global pool.
  common::ThreadPool* pool = nullptr;
};

/// Process memory snapshot from /proc/self/status (zeros when absent).
struct MemoryProbe {
  std::size_t vm_rss_bytes = 0;
  std::size_t vm_hwm_bytes = 0;
  static MemoryProbe read();
};

struct EnrollReport {
  std::size_t devices = 0;
  std::size_t crps = 0;
  double seconds = 0.0;
  /// Mean pairwise fractional HD over the hash-sampled responses (~0.5
  /// for a healthy population); 0 when fewer than 2 devices sampled.
  double uniqueness_estimate = 0.0;
  std::size_t sampled_devices = 0;
  std::size_t peak_rss_bytes = 0;
};

struct CampaignReport {
  std::size_t sessions = 0;
  std::size_t converged = 0;
  std::size_t failed = 0;
  /// Sessions skipped because the device had no live CRP to serve.
  std::size_t skipped = 0;
  /// Rotation sweeps: devices that advanced a generation.
  std::size_t rotated = 0;
  double seconds = 0.0;
  double mean_attempts = 0.0;
  /// Per-session poll-tick latency, merged from per-wave sketches.
  metrics::GkQuantileSketch poll_ticks{0.01};
};

struct ResumeReport {
  /// Devices whose rotation had fully committed before the crash.
  std::size_t already_rotated = 0;
  /// Devices found mid-rotation (new CRP durable, old not yet taken):
  /// the take was completed.
  std::size_t finished_takes = 0;
  /// Devices whose new CRP never reached the store: rotation redone.
  std::size_t redone = 0;
  /// Devices with no live CRP at all — must be 0; the crash-safety
  /// invariant the chaos suite asserts.
  std::size_t keyless = 0;
};

class FleetSimulator {
 public:
  /// `db` is borrowed and must outlive the simulator. Open it with
  /// durability configured to exercise the WAL-bound enrollment path.
  FleetSimulator(FleetConfig config, puf::CrpDatabase& db);

  /// Streams the whole fleet's CRPs into the store through bounded
  /// parallel staging chunks; one durability barrier at the end.
  EnrollReport enroll();

  /// The pre-fleet idiom as a baseline: one virtual evaluate() + one
  /// insert() per CRP and a durability sync() per device, serially.
  /// bench_fleet reports the ratio (acceptance: batch path >= 5x).
  EnrollReport enroll_naive_serial();

  /// `sessions` mutual-auth handshakes round-robin across the fleet in
  /// bounded waves. Outcomes feed CRP health (failures quarantine).
  CampaignReport run_auth_campaign(std::size_t sessions);

  /// Rotates every authenticable device one generation: authenticate
  /// with the oldest CRP, then durable-insert the next-generation CRP,
  /// sync, and keyed-take the old one (crash-safe ordering).
  CampaignReport run_rotation_sweep();

  /// Rebuilds every device's generation window from the (recovered)
  /// store. `generation_limit` bounds the scan — pass the highest
  /// generation any campaign may have reached.
  void recover_state(std::uint32_t generation_limit);

  /// Completes half-done rotations after a crash + recover_state().
  ResumeReport resume_rotation();

  /// Consumes every live CRP of `count` devices starting at `first` and
  /// marks them revoked (never again served by campaigns). Returns the
  /// number of CRPs consumed.
  std::size_t run_revocation_sweep(std::size_t first, std::size_t count);

  /// Evicts quarantined CRPs and harvests one fresh-generation
  /// replacement per affected device (fresh challenge — the old pair
  /// may be compromised). Returns the number of devices re-enrolled.
  std::size_t reenroll_quarantined();

  /// Advances simulated time; device error rates drift accordingly.
  void advance_days(std::uint64_t days) noexcept { day_ += days; }
  std::uint64_t day() const noexcept { return day_; }

  // --- derived/pure per-device queries (any thread) ---
  std::uint64_t challenge_word(std::size_t device,
                               std::uint32_t generation) const noexcept;
  puf::Challenge challenge_of(std::size_t device,
                              std::uint32_t generation) const;
  /// Rebuilds device `device`'s PUF (response surface + drift model) —
  /// bit-identical on every call.
  SyntheticPuf make_device(std::size_t device) const;

  std::size_t device_count() const noexcept { return states_.size(); }
  std::uint32_t oldest_generation(std::size_t device) const {
    return states_[device].oldest;
  }
  std::uint32_t next_generation(std::size_t device) const {
    return states_[device].next;
  }
  bool revoked(std::size_t device) const {
    return (states_[device].flags & kRevoked) != 0;
  }
  /// Devices with no live CRP in [oldest, next) — 0 in a healthy fleet.
  std::size_t count_keyless() const;

  const FleetConfig& config() const noexcept { return config_; }

 private:
  static constexpr std::uint8_t kRevoked = 0x1;

  struct DeviceState {
    std::uint32_t oldest = 0;  // lowest live generation
    std::uint32_t next = 0;    // next unharvested generation
    std::uint8_t flags = 0;
  };

  struct WaveOutcome {
    std::size_t converged = 0;
    std::size_t failed = 0;
    std::size_t skipped = 0;
    double attempts_sum = 0.0;
  };

  std::uint64_t device_seed(std::size_t device) const noexcept;
  bool device_faulty(std::size_t device) const noexcept;
  /// Advances `oldest` past consumed/quarantined generations.
  void refresh_cursor(std::size_t device);
  void check_memory_budget(const char* where) const;
  common::ThreadPool& pool() const;

  /// Runs one wave of auth sessions for `wave` device ids; appends
  /// converged device ids to `rotate_out` when non-null (rotation
  /// sweeps). Latency lands in the per-wave sketch `wave_ticks`.
  WaveOutcome run_wave(const std::vector<std::size_t>& wave,
                       std::uint64_t campaign_nonce,
                       metrics::GkQuantileSketch& wave_ticks,
                       std::vector<std::size_t>* rotate_out);

  FleetConfig config_;
  puf::CrpDatabase& db_;
  std::vector<DeviceState> states_;
  crypto::Bytes device_memory_;
  crypto::Bytes memory_hash_;
  std::uint64_t day_ = 0;
  std::uint64_t campaign_counter_ = 0;
};

}  // namespace neuropuls::fleet
