#include "fleet/fleet.hpp"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/alloc_probe.hpp"
#include "common/parallel.hpp"
#include "core/mutual_auth.hpp"
#include "core/session_engine.hpp"
#include "crypto/sha256.hpp"
#include "metrics/population.hpp"
#include "net/channel.hpp"

namespace neuropuls::fleet {

namespace {

constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kDeviceTag = 0x64657669'63657461ULL;     // "deviceta"
constexpr std::uint64_t kChallengeTag = 0x6368616c'6c656e67ULL;  // "challeng"
constexpr std::uint64_t kFaultTag = 0x6661756c'74746167ULL;      // "faulttag"
constexpr std::uint64_t kSampleTag = 0x73616d70'6c657461ULL;     // "sampleta"
constexpr std::uint64_t kSessionTag = 0x73657373'696f6e74ULL;    // "sessiont"

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

MemoryProbe MemoryProbe::read() {
  MemoryProbe probe;
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return probe;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    unsigned long long kb = 0;
    if (std::sscanf(line, "VmRSS: %llu kB", &kb) == 1) {
      probe.vm_rss_bytes = static_cast<std::size_t>(kb) * 1024;
    } else if (std::sscanf(line, "VmHWM: %llu kB", &kb) == 1) {
      probe.vm_hwm_bytes = static_cast<std::size_t>(kb) * 1024;
    }
  }
  std::fclose(f);
  return probe;
}

FleetSimulator::FleetSimulator(FleetConfig config, puf::CrpDatabase& db)
    : config_(std::move(config)), db_(db) {
  if (config_.devices == 0) {
    throw std::invalid_argument("FleetSimulator: need at least one device");
  }
  if (config_.generations == 0) config_.generations = 1;
  if (config_.enroll_chunk == 0) config_.enroll_chunk = 1;
  if (config_.wave_size == 0) config_.wave_size = 1;
  states_.assign(config_.devices, DeviceState{});
  // One shared memory snapshot: the fleet models homogeneous firmware;
  // per-device images would cost O(fleet) bytes for no protocol signal.
  device_memory_ = crypto::bytes_of("neuropuls-fleet-firmware-image-v1");
  memory_hash_ = crypto::Sha256::hash(device_memory_);
}

common::ThreadPool& FleetSimulator::pool() const {
  return config_.pool != nullptr ? *config_.pool
                                 : common::ThreadPool::global();
}

std::uint64_t FleetSimulator::device_seed(std::size_t device) const noexcept {
  return metrics::mix64(config_.seed ^ kDeviceTag ^
                        (static_cast<std::uint64_t>(device) * kGolden));
}

std::uint64_t FleetSimulator::challenge_word(
    std::size_t device, std::uint32_t generation) const noexcept {
  // Two mixing rounds keyed on (fleet, device) then generation: 2M draws
  // from a 64-bit space make a cross-device collision vanishingly rare,
  // and the derivation is stateless — any worker (or a post-crash
  // simulator) recomputes any device's challenge schedule from the seed.
  const std::uint64_t device_key = metrics::mix64(
      config_.seed ^ kChallengeTag ^
      (static_cast<std::uint64_t>(device) * kGolden));
  return metrics::mix64(device_key +
                        static_cast<std::uint64_t>(generation) *
                            0xda3e39cb94b95bdbULL);
}

puf::Challenge FleetSimulator::challenge_of(std::size_t device,
                                            std::uint32_t generation) const {
  puf::Challenge challenge(config_.puf.challenge_bytes, 0);
  const std::uint64_t word = challenge_word(device, generation);
  std::memcpy(challenge.data(), &word,
              std::min<std::size_t>(config_.puf.challenge_bytes, 8));
  return challenge;
}

SyntheticPuf FleetSimulator::make_device(std::size_t device) const {
  const std::uint64_t seed = device_seed(device);
  SyntheticPuf puf(config_.puf, seed,
                   faults::device_drift_config(config_.drift, config_.seed,
                                               device),
                   seed ^ kFaultTag);
  puf.set_day(day_);
  return puf;
}

bool FleetSimulator::device_faulty(std::size_t device) const noexcept {
  return metrics::hash_sample(config_.seed ^ kFaultTag, device,
                              config_.faulty_device_rate);
}

void FleetSimulator::refresh_cursor(std::size_t device) {
  DeviceState& s = states_[device];
  while (s.oldest < s.next &&
         !db_.health(challenge_of(device, s.oldest)).has_value()) {
    ++s.oldest;
  }
}

std::size_t FleetSimulator::count_keyless() const {
  std::size_t keyless = 0;
  for (std::size_t d = 0; d < states_.size(); ++d) {
    if ((states_[d].flags & kRevoked) != 0) continue;
    if (states_[d].oldest >= states_[d].next) ++keyless;
  }
  return keyless;
}

void FleetSimulator::check_memory_budget(const char* where) const {
  if (config_.memory_budget_bytes == 0) return;
  const std::uint64_t probe_peak = common::alloc_probe::peak_bytes();
  const MemoryProbe vm = MemoryProbe::read();
  const std::uint64_t peak =
      std::max<std::uint64_t>(probe_peak, vm.vm_hwm_bytes);
  if (peak > config_.memory_budget_bytes) {
    throw std::runtime_error(
        std::string("FleetSimulator: memory budget exceeded in ") + where +
        ": peak " + std::to_string(peak) + " > budget " +
        std::to_string(config_.memory_budget_bytes));
  }
}

EnrollReport FleetSimulator::enroll() {
  const auto start = std::chrono::steady_clock::now();
  const std::size_t gens = config_.generations;
  const double sample_rate =
      config_.uniqueness_sample_target == 0
          ? 0.0
          : static_cast<double>(config_.uniqueness_sample_target) /
                static_cast<double>(config_.devices);
  std::vector<crypto::Bytes> samples;
  samples.reserve(config_.uniqueness_sample_target * 2);

  EnrollReport report;
  for (std::size_t chunk_start = 0; chunk_start < config_.devices;
       chunk_start += config_.enroll_chunk) {
    const std::size_t chunk =
        std::min(config_.enroll_chunk, config_.devices - chunk_start);
    // Per-chunk staging: slots are preallocated and written by index, so
    // workers never contend and the chunk's layout is schedule-free.
    std::vector<puf::Crp> staging(chunk * gens);
    pool().parallel_for(chunk, [&](std::size_t i) {
      const std::size_t device = chunk_start + i;
      const SyntheticPuf puf = make_device(device);
      for (std::size_t g = 0; g < gens; ++g) {
        puf::Crp& crp = staging[i * gens + g];
        const std::uint64_t word =
            challenge_word(device, static_cast<std::uint32_t>(g));
        crp.challenge = puf.challenge_bytes_of(word);
        crp.response.resize(config_.puf.response_bytes);
        puf.evaluate_noiseless_into(word, crp.response.data());
      }
    });
    // Order-independent sampling before the staging buffer moves into
    // the store: the sampled *set* is a pure function of (seed, id), so
    // any chunking/thread count selects the same devices; gathering in
    // device order keeps the sample vector deterministic too.
    if (sample_rate > 0.0) {
      for (std::size_t i = 0; i < chunk; ++i) {
        if (metrics::hash_sample(config_.seed ^ kSampleTag, chunk_start + i,
                                 sample_rate)) {
          samples.push_back(staging[i * gens].response);
        }
      }
    }
    db_.insert_batch(std::move(staging));
    for (std::size_t i = 0; i < chunk; ++i) {
      states_[chunk_start + i] =
          DeviceState{0, static_cast<std::uint32_t>(gens), 0};
    }
    check_memory_budget("enroll");
  }
  db_.sync();

  report.devices = config_.devices;
  report.crps = config_.devices * gens;
  report.sampled_devices = samples.size();
  if (samples.size() >= 2) {
    report.uniqueness_estimate = metrics::uniqueness(samples, &pool());
  }
  report.seconds = seconds_since(start);
  report.peak_rss_bytes = MemoryProbe::read().vm_hwm_bytes;
  return report;
}

EnrollReport FleetSimulator::enroll_naive_serial() {
  const auto start = std::chrono::steady_clock::now();
  const std::size_t gens = config_.generations;
  for (std::size_t device = 0; device < config_.devices; ++device) {
    SyntheticPuf puf = make_device(device);
    for (std::size_t g = 0; g < gens; ++g) {
      const puf::Challenge challenge =
          challenge_of(device, static_cast<std::uint32_t>(g));
      puf::Crp crp;
      crp.challenge = challenge;
      crp.response = puf.evaluate_noiseless(challenge);
      db_.insert(std::move(crp));
    }
    // The pre-fleet durability idiom: every device's enrollment is
    // individually committed before moving on.
    db_.sync();
    states_[device] = DeviceState{0, static_cast<std::uint32_t>(gens), 0};
  }
  EnrollReport report;
  report.devices = config_.devices;
  report.crps = config_.devices * gens;
  report.seconds = seconds_since(start);
  report.peak_rss_bytes = MemoryProbe::read().vm_hwm_bytes;
  return report;
}

FleetSimulator::WaveOutcome FleetSimulator::run_wave(
    const std::vector<std::size_t>& wave, std::uint64_t campaign_nonce,
    metrics::GkQuantileSketch& wave_ticks,
    std::vector<std::size_t>* rotate_out) {
  struct SessionFixture {
    SyntheticPuf puf;
    net::DuplexChannel channel;
    std::unique_ptr<faults::FaultyChannel> faulty;
    std::unique_ptr<core::AuthDevice> device;
    std::unique_ptr<core::AuthVerifier> verifier;
    std::size_t device_id = 0;
    std::uint32_t generation = 0;
    puf::Challenge challenge;

    explicit SessionFixture(SyntheticPuf p) : puf(std::move(p)) {}
  };

  WaveOutcome outcome;
  std::vector<std::unique_ptr<SessionFixture>> fixtures;
  fixtures.reserve(wave.size());

  core::SessionEngineConfig engine_config;
  engine_config.max_in_flight = std::min<std::size_t>(wave.size(), 128);
  core::SessionEngine engine(pool(), engine_config);
  const core::RetryPolicy policy;

  for (std::size_t k = 0; k < wave.size(); ++k) {
    const std::size_t device = wave[k];
    if ((states_[device].flags & kRevoked) != 0) {
      ++outcome.skipped;
      continue;
    }
    refresh_cursor(device);
    // Serve the first non-quarantined live generation: a device whose
    // oldest CRP is quarantined can still authenticate on a spare.
    DeviceState& s = states_[device];
    std::uint32_t gen = s.oldest;
    std::optional<puf::Response> secret;
    puf::Challenge challenge;
    for (; gen < s.next; ++gen) {
      challenge = challenge_of(device, gen);
      secret = db_.lookup(challenge);
      if (secret.has_value()) break;
    }
    if (!secret.has_value()) {
      ++outcome.skipped;
      continue;
    }
    auto fixture = std::make_unique<SessionFixture>(make_device(device));
    fixture->device_id = device;
    fixture->generation = gen;
    fixture->challenge = std::move(challenge);
    if (device_faulty(device)) {
      fixture->faulty = std::make_unique<faults::FaultyChannel>(
          fixture->channel, faults::symmetric_faults(config_.fault_rates),
          device_seed(device) ^ campaign_nonce);
    }
    fixture->device = std::make_unique<core::AuthDevice>(
        fixture->puf,
        core::ProvisionedCrp{fixture->challenge, *secret},
        device_memory_);
    fixture->verifier = std::make_unique<core::AuthVerifier>(
        *secret, memory_hash_, config_.puf.challenge_bytes);

    SessionFixture& f = *fixture;
    const std::uint64_t session_base =
        kSessionTag ^ (campaign_nonce << 20) ^ (k + 1);
    engine.submit(metrics::mix64(device_seed(device) ^ campaign_nonce),
                  [&f, &policy, session_base](crypto::ChaChaDrbg& rng) {
                    return std::make_unique<core::AuthSessionMachine>(
                        f.channel, policy, rng, *f.verifier, *f.device,
                        session_base);
                  });
    fixtures.push_back(std::move(fixture));
  }

  const std::vector<core::SessionReport> reports = engine.run();
  for (std::size_t k = 0; k < reports.size(); ++k) {
    const core::SessionReport& report = reports[k];
    SessionFixture& f = *fixtures[k];
    wave_ticks.add(static_cast<double>(report.poll_ticks));
    outcome.attempts_sum += report.attempts;
    if (report.result == core::SessionResult::kConverged) {
      ++outcome.converged;
      db_.record_success(f.challenge);
      if (rotate_out != nullptr) rotate_out->push_back(f.device_id);
    } else {
      ++outcome.failed;
      db_.record_failure(f.challenge);
    }
  }
  return outcome;
}

CampaignReport FleetSimulator::run_auth_campaign(std::size_t sessions) {
  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t nonce = ++campaign_counter_;
  CampaignReport report;
  report.poll_ticks = metrics::GkQuantileSketch(config_.latency_sketch_eps);
  std::vector<std::size_t> wave;
  wave.reserve(config_.wave_size);
  double attempts_sum = 0.0;
  for (std::size_t issued = 0; issued < sessions;) {
    wave.clear();
    while (wave.size() < config_.wave_size && issued < sessions) {
      wave.push_back(issued % config_.devices);
      ++issued;
    }
    // Worker-local-style sketch per wave, merged into the campaign
    // sketch: the mergeable-summary path a sharded verifier tier uses.
    metrics::GkQuantileSketch wave_ticks(config_.latency_sketch_eps);
    const WaveOutcome outcome = run_wave(wave, nonce, wave_ticks, nullptr);
    report.poll_ticks.merge(wave_ticks);
    report.converged += outcome.converged;
    report.failed += outcome.failed;
    report.skipped += outcome.skipped;
    attempts_sum += outcome.attempts_sum;
    check_memory_budget("auth campaign");
  }
  report.poll_ticks.compress();
  report.sessions = sessions;
  const std::size_t completed = report.converged + report.failed;
  report.mean_attempts =
      completed == 0 ? 0.0 : attempts_sum / static_cast<double>(completed);
  report.seconds = seconds_since(start);
  return report;
}

CampaignReport FleetSimulator::run_rotation_sweep() {
  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t nonce = ++campaign_counter_;
  CampaignReport report;
  report.poll_ticks = metrics::GkQuantileSketch(config_.latency_sketch_eps);
  std::vector<std::size_t> wave;
  wave.reserve(config_.wave_size);
  std::vector<std::size_t> rotate;
  rotate.reserve(config_.wave_size);
  std::vector<puf::Crp> staging;
  double attempts_sum = 0.0;

  for (std::size_t first = 0; first < config_.devices;
       first += config_.wave_size) {
    const std::size_t count =
        std::min(config_.wave_size, config_.devices - first);
    wave.clear();
    for (std::size_t i = 0; i < count; ++i) wave.push_back(first + i);
    rotate.clear();
    metrics::GkQuantileSketch wave_ticks(config_.latency_sketch_eps);
    const WaveOutcome outcome = run_wave(wave, nonce, wave_ticks, &rotate);
    report.poll_ticks.merge(wave_ticks);
    report.converged += outcome.converged;
    report.failed += outcome.failed;
    report.skipped += outcome.skipped;
    attempts_sum += outcome.attempts_sum;

    // Crash-safe rotation order for the whole wave: durably insert every
    // replacement CRP, barrier, then consume the old ones. A crash
    // anywhere in this sequence leaves each device with >= 1 live CRP.
    staging.clear();
    staging.reserve(rotate.size());
    for (const std::size_t device : rotate) {
      const std::uint32_t new_gen = states_[device].next;
      const SyntheticPuf puf = make_device(device);
      const std::uint64_t word = challenge_word(device, new_gen);
      puf::Crp crp;
      crp.challenge = puf.challenge_bytes_of(word);
      crp.response.resize(config_.puf.response_bytes);
      puf.evaluate_noiseless_into(word, crp.response.data());
      staging.push_back(std::move(crp));
    }
    db_.insert_batch(std::move(staging));
    db_.sync();
    for (const std::size_t device : rotate) {
      DeviceState& s = states_[device];
      if (db_.take(challenge_of(device, s.oldest)).has_value()) {
        ++s.oldest;
      }
      ++s.next;
      refresh_cursor(device);
      ++report.rotated;
    }
    check_memory_budget("rotation sweep");
  }
  report.poll_ticks.compress();
  report.sessions = config_.devices;
  const std::size_t completed = report.converged + report.failed;
  report.mean_attempts =
      completed == 0 ? 0.0 : attempts_sum / static_cast<double>(completed);
  report.seconds = seconds_since(start);
  return report;
}

void FleetSimulator::recover_state(std::uint32_t generation_limit) {
  // Presence via health(): quarantined CRPs still exist (and must block
  // the "keyless" verdict) even though lookup() refuses to serve them.
  for (std::size_t device = 0; device < states_.size(); ++device) {
    std::uint32_t oldest = generation_limit;
    std::uint32_t next = 0;
    for (std::uint32_t g = 0; g < generation_limit; ++g) {
      if (db_.health(challenge_of(device, g)).has_value()) {
        if (oldest == generation_limit) oldest = g;
        next = g + 1;
      }
    }
    if (next == 0) {
      states_[device] = DeviceState{0, 0, states_[device].flags};
    } else {
      states_[device] = DeviceState{oldest, next, states_[device].flags};
    }
  }
}

ResumeReport FleetSimulator::resume_rotation() {
  // Completes the most recent rotation sweep after a crash +
  // recover_state(): each device is in exactly one of three legal
  // states, distinguishable from its recovered generation window.
  ResumeReport report;
  const auto enrolled = static_cast<std::uint32_t>(config_.generations);
  std::vector<puf::Crp> staging;
  std::vector<std::size_t> redo;
  for (std::size_t device = 0; device < states_.size(); ++device) {
    DeviceState& s = states_[device];
    if ((s.flags & kRevoked) != 0) continue;
    if (s.oldest >= s.next) {
      ++report.keyless;
      continue;
    }
    if (s.oldest >= 1) {
      // Old CRP consumed and replacement durable: the rotation's take
      // committed before the crash.
      ++report.already_rotated;
    } else if (s.next > enrolled) {
      // Replacement durable but the old CRP still live: finish the take.
      if (db_.take(challenge_of(device, s.oldest)).has_value()) {
        ++s.oldest;
      }
      refresh_cursor(device);
      ++report.finished_takes;
    } else {
      // The replacement insert never reached stable storage: redo the
      // whole rotation for this device (insert first, take after the
      // barrier below).
      const std::uint32_t new_gen = s.next;
      const SyntheticPuf puf = make_device(device);
      const std::uint64_t word = challenge_word(device, new_gen);
      puf::Crp crp;
      crp.challenge = puf.challenge_bytes_of(word);
      crp.response.resize(config_.puf.response_bytes);
      puf.evaluate_noiseless_into(word, crp.response.data());
      staging.push_back(std::move(crp));
      redo.push_back(device);
      ++report.redone;
    }
  }
  if (!redo.empty()) {
    db_.insert_batch(std::move(staging));
    db_.sync();
    for (const std::size_t device : redo) {
      DeviceState& s = states_[device];
      if (db_.take(challenge_of(device, s.oldest)).has_value()) {
        ++s.oldest;
      }
      ++s.next;
      refresh_cursor(device);
    }
  }
  return report;
}

std::size_t FleetSimulator::run_revocation_sweep(std::size_t first,
                                                 std::size_t count) {
  std::size_t consumed = 0;
  const std::size_t last = std::min(first + count, config_.devices);
  for (std::size_t device = first; device < last; ++device) {
    DeviceState& s = states_[device];
    for (std::uint32_t g = s.oldest; g < s.next; ++g) {
      // Keyed takes refuse quarantined CRPs; those are swept separately
      // by evict_quarantined() — revocation only consumes live pairs.
      if (db_.take(challenge_of(device, g)).has_value()) ++consumed;
    }
    s.oldest = s.next;
    s.flags |= kRevoked;
  }
  return consumed;
}

std::size_t FleetSimulator::reenroll_quarantined() {
  // Identify affected devices before evicting: after eviction the
  // quarantined entries (and their health records) are gone.
  std::vector<std::size_t> affected;
  for (std::size_t device = 0; device < states_.size(); ++device) {
    const DeviceState& s = states_[device];
    if ((s.flags & kRevoked) != 0) continue;
    for (std::uint32_t g = s.oldest; g < s.next; ++g) {
      const auto health = db_.health(challenge_of(device, g));
      if (health.has_value() && health->quarantined) {
        affected.push_back(device);
        break;
      }
    }
  }
  if (affected.empty()) return 0;
  db_.evict_quarantined();
  // Fresh-generation replacement per device: the quarantined pair may be
  // compromised, so its challenge is never reused.
  std::vector<puf::Crp> staging;
  staging.reserve(affected.size());
  for (const std::size_t device : affected) {
    const std::uint32_t new_gen = states_[device].next;
    const SyntheticPuf puf = make_device(device);
    const std::uint64_t word = challenge_word(device, new_gen);
    puf::Crp crp;
    crp.challenge = puf.challenge_bytes_of(word);
    crp.response.resize(config_.puf.response_bytes);
    puf.evaluate_noiseless_into(word, crp.response.data());
    staging.push_back(std::move(crp));
  }
  db_.insert_batch(std::move(staging));
  db_.sync();
  for (const std::size_t device : affected) {
    ++states_[device].next;
    refresh_cursor(device);
  }
  return affected.size();
}

}  // namespace neuropuls::fleet
