// Hardware-speed synthetic strong PUF for fleet-scale simulation.
//
// The physically-modelled PhotonicPuf fabricates each device through a
// full calibration run (~60 time-domain evaluations), which caps device
// construction at a few thousand per second — fine for protocol tests,
// hopeless for a million-device enrollment storm. The fleet layer
// therefore models the *statistical contract* of a strong PUF instead
// of its physics: a keyed-PRF response surface per device (unique,
// uniform, unclonable-in-simulation) plus an i.i.d. per-bit noise
// channel whose flip probability evolves with simulated age through the
// same faults::DeviceFaultModel the photonic stack uses. Every quantity
// is a pure function of (seed, challenge, reading index, day), so batch
// evaluation is embarrassingly parallel and bit-identical at any thread
// count, and two constructions of the same device agree bit-for-bit —
// the property enrollment-vs-authentication consistency rests on.
//
// The class still implements puf::Puf, so AuthDevice, the session
// machines, and the CRP database drive it exactly like the photonic
// device; small-population tests cross-check the fleet pipeline against
// real PhotonicPuf devices to keep the shortcut honest.
#pragma once

#include <cstdint>

#include "faults/device_faults.hpp"
#include "puf/puf.hpp"

namespace neuropuls::fleet {

struct SyntheticPufParams {
  std::size_t challenge_bytes = 8;
  std::size_t response_bytes = 16;
  /// Per-bit flip probability of a fresh (day-0, fault-free) device.
  double base_error_rate = 0.005;
  /// Added error per unit of lost laser power (1 - laser_scale(day)).
  double aging_error_gain = 0.0;
  /// Added error per Kelvin of |temperature_offset(day)|.
  double thermal_error_gain = 0.0;
  /// Added error per radian of |phase_drift(day, 0)|.
  double phase_error_gain = 0.0;
};

class SyntheticPuf final : public puf::Puf {
 public:
  /// `drift` + `drift_seed` build the device's fault model (defaults =
  /// a quiet model: the error rate stays at base_error_rate forever).
  SyntheticPuf(SyntheticPufParams params, std::uint64_t device_seed,
               faults::DeviceFaultConfig drift = {},
               std::uint64_t drift_seed = 0);

  std::size_t challenge_bytes() const override {
    return params_.challenge_bytes;
  }
  std::size_t response_bytes() const override {
    return params_.response_bytes;
  }
  puf::Response evaluate(const puf::Challenge& challenge) override;
  puf::Response evaluate_noiseless(
      const puf::Challenge& challenge) const override;
  std::string name() const override { return "synthetic-puf"; }

  /// Simulated age in days; the fault model's evaluation index. Aging
  /// raises error_rate() through the drift config, never the response
  /// surface — enrollment references stay valid, they just get noisier
  /// to reproduce, exactly like a drooping laser.
  void set_day(std::uint64_t day) noexcept { day_ = day; }
  std::uint64_t day() const noexcept { return day_; }

  /// Current per-bit flip probability (clamped to [0, 0.5]).
  double error_rate() const noexcept;

  /// Allocation-free reference response for a challenge word: writes
  /// response_bytes() bytes. The enrollment hot path.
  void evaluate_noiseless_into(std::uint64_t challenge,
                               std::uint8_t* out) const noexcept;

  /// Allocation-free noisy evaluation; `reading` indexes the noise draw
  /// (two equal readings flip the same bits — callers pass a fresh
  /// index per measurement, exactly what evaluate() does internally).
  void evaluate_into(std::uint64_t challenge, std::uint64_t reading,
                     std::uint8_t* out) const noexcept;

  /// Batch reference harvest: `out` receives n * response_bytes() bytes,
  /// one response per challenge word, no allocation.
  void evaluate_noiseless_batch_into(const std::uint64_t* challenges,
                                     std::size_t n,
                                     std::uint8_t* out) const noexcept;

  /// Challenge word <-> wire bytes (little-endian, challenge_bytes wide;
  /// words must fit or the low bytes win).
  static std::uint64_t challenge_word(const puf::Challenge& challenge);
  puf::Challenge challenge_bytes_of(std::uint64_t word) const;

  std::uint64_t device_seed() const noexcept { return device_seed_; }
  const faults::DeviceFaultModel& fault_model() const noexcept {
    return model_;
  }

 private:
  SyntheticPufParams params_;
  std::uint64_t device_seed_;
  faults::DeviceFaultModel model_;
  std::uint64_t day_ = 0;
  std::uint64_t reading_counter_ = 0;
};

}  // namespace neuropuls::fleet
