#include "photonic/components.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace neuropuls::photonic {

Waveguide::Waveguide(double length, double loss_db_per_cm,
                     double effective_index, double group_index)
    : length_(length),
      loss_db_per_cm_(loss_db_per_cm),
      effective_index_(effective_index),
      group_index_(group_index) {
  if (length < 0.0) {
    throw std::invalid_argument("Waveguide: negative length");
  }
}

void Waveguide::apply(const ComponentDeviation& deviation) noexcept {
  effective_index_ += deviation.d_effective_index;
  group_index_ += deviation.d_group_index;
  loss_db_per_cm_ = std::max(0.0, loss_db_per_cm_ + deviation.d_loss_db);
}

Complex Waveguide::transfer(const OperatingPoint& op) const noexcept {
  const double n_eff =
      effective_index_ +
      kSiliconThermoOptic * (op.temperature - kReferenceTemperature);
  const double beta = 2.0 * std::numbers::pi * n_eff / op.wavelength;
  const double loss_db_total = loss_db_per_cm_ * (length_ * 100.0);
  return std::polar(db_to_field_factor(loss_db_total), -beta * length_);
}

double Waveguide::group_delay() const noexcept {
  return group_index_ * length_ / kSpeedOfLight;
}

DirectionalCoupler::DirectionalCoupler(double power_coupling_ratio)
    : kappa2_(power_coupling_ratio) {
  if (kappa2_ <= 0.0 || kappa2_ >= 1.0) {
    throw std::invalid_argument(
        "DirectionalCoupler: coupling ratio must be in (0, 1)");
  }
}

void DirectionalCoupler::apply(const ComponentDeviation& deviation) noexcept {
  kappa2_ = std::clamp(kappa2_ + deviation.d_coupling_ratio, 1e-4, 1.0 - 1e-4);
}

std::array<Complex, 2> DirectionalCoupler::couple(Complex in0,
                                                  Complex in1) const noexcept {
  const double through = std::sqrt(1.0 - kappa2_);
  const Complex cross(0.0, -std::sqrt(kappa2_));
  return {through * in0 + cross * in1, cross * in0 + through * in1};
}

YSplitter::YSplitter(double excess_loss_db) : excess_loss_db_(excess_loss_db) {
  if (excess_loss_db < 0.0) {
    throw std::invalid_argument("YSplitter: negative excess loss");
  }
}

void YSplitter::apply(const ComponentDeviation& deviation) noexcept {
  excess_loss_db_ = std::max(0.0, excess_loss_db_ + deviation.d_loss_db);
}

std::array<Complex, 2> YSplitter::split(Complex in) const noexcept {
  const double amp = db_to_field_factor(excess_loss_db_) / std::sqrt(2.0);
  return {amp * in, amp * in};
}

MachZehnder::MachZehnder(double arm_length_a, double arm_length_b,
                         double coupling_in, double coupling_out,
                         double loss_db_per_cm)
    : input_coupler_(coupling_in),
      output_coupler_(coupling_out),
      arm_a_(arm_length_a, loss_db_per_cm),
      arm_b_(arm_length_b, loss_db_per_cm) {}

void MachZehnder::apply(const ComponentDeviation& deviation) noexcept {
  input_coupler_.apply(deviation);
  // Anti-correlated arm perturbation: the differential index error is what
  // shifts the interference fringe.
  ComponentDeviation arm_dev = deviation;
  arm_a_.apply(arm_dev);
  arm_dev.d_effective_index = -arm_dev.d_effective_index;
  arm_b_.apply(arm_dev);
  ComponentDeviation out_dev = deviation;
  out_dev.d_coupling_ratio = -out_dev.d_coupling_ratio / 2.0;
  output_coupler_.apply(out_dev);
}

std::array<Complex, 2> MachZehnder::transfer(const OperatingPoint& op,
                                             Complex in0,
                                             Complex in1) const noexcept {
  const auto mid = input_coupler_.couple(in0, in1);
  const Complex a = mid[0] * arm_a_.transfer(op);
  const Complex b = mid[1] * arm_b_.transfer(op);
  return output_coupler_.couple(a, b);
}

}  // namespace neuropuls::photonic
