// Fabrication-variation model.
//
// A PUF exists *because* nominally identical chips differ: nanometre-scale
// linewidth and thickness deviations shift every waveguide's effective
// index, every coupler's splitting ratio, and every ring's resonance.
// This model turns a (wafer seed, device index, component index) triple
// into deterministic Gaussian deviations, so:
//   - the same simulated device always re-manufactures identically,
//   - distinct devices get independent variations (inter-device HD ~ 50%),
//   - experiments can sweep process corners by scaling sigma.
//
// Magnitudes follow published SOI numbers: effective-index sigma of a few
// 1e-4 (equivalent to ~1 nm linewidth control), coupling-ratio sigma of a
// few percent, loss sigma fractions of a dB.
#pragma once

#include <cstdint>

#include "crypto/prng.hpp"

namespace neuropuls::photonic {

/// Process-corner description: standard deviations of each perturbed
/// physical parameter.
struct VariationSigmas {
  double effective_index = 4e-4;   // absolute dn
  double group_index = 2e-3;       // absolute dn_g
  double coupling_ratio = 0.02;    // absolute d(kappa^2), clamped to (0,1)
  double loss_db = 0.1;            // dB deviation of per-element loss
  double ring_radius_fraction = 5e-4;  // relative radius error
};

/// Deviations applied to one concrete component instance.
struct ComponentDeviation {
  double d_effective_index = 0.0;
  double d_group_index = 0.0;
  double d_coupling_ratio = 0.0;
  double d_loss_db = 0.0;
  double d_radius_fraction = 0.0;
};

/// Deterministic per-device variation sampler.
class FabricationModel {
 public:
  FabricationModel(std::uint64_t wafer_seed, std::uint64_t device_index,
                   VariationSigmas sigmas = {})
      : wafer_seed_(wafer_seed), device_index_(device_index), sigmas_(sigmas) {}

  /// Deviations for component `component_index` of this device. Stable
  /// across calls (re-derives the same stream each time).
  ComponentDeviation sample(std::uint64_t component_index) const {
    const std::uint64_t device_root =
        rng::derive_seed(wafer_seed_, device_index_);
    rng::Gaussian g(rng::derive_seed(device_root, component_index));
    ComponentDeviation d;
    d.d_effective_index = g.next(0.0, sigmas_.effective_index);
    d.d_group_index = g.next(0.0, sigmas_.group_index);
    d.d_coupling_ratio = g.next(0.0, sigmas_.coupling_ratio);
    d.d_loss_db = g.next(0.0, sigmas_.loss_db);
    d.d_radius_fraction = g.next(0.0, sigmas_.ring_radius_fraction);
    return d;
  }

  std::uint64_t device_index() const noexcept { return device_index_; }
  const VariationSigmas& sigmas() const noexcept { return sigmas_; }

 private:
  std::uint64_t wafer_seed_;
  std::uint64_t device_index_;
  VariationSigmas sigmas_;
};

}  // namespace neuropuls::photonic
