// Structure-of-arrays field state for lane-parallel evaluation.
//
// A FieldBlock holds the port states of W *independent* challenges
// ("lanes") as separate re/im planes: plane layout is [port][lane], each
// plane kLaneAlignment-aligned and contiguous, so every scrambler op
// (coupler mix, waveguide rotation, ring update) streams through all W
// lanes of a port with unit stride — the layout the auto-vectorized
// kernels in common/simd.hpp want. The AoS PortVector
// (std::vector<std::complex<double>>) remains the single-evaluation
// representation; FieldBlock is the batch-engine counterpart.
//
// Lanes are fully independent: no op ever mixes lane i with lane j, only
// port planes within a lane. That is what makes noiseless lane results
// bit-identical to the serial scalar path (see common/simd.hpp).
#pragma once

#include <cstddef>
#include <stdexcept>

#include "common/simd.hpp"
#include "photonic/field.hpp"

namespace neuropuls::photonic {

class FieldBlock {
 public:
  /// A ports x lanes block, zero-initialised (all ports dark).
  FieldBlock(std::size_t ports, std::size_t lanes)
      : ports_(ports),
        lanes_(lanes),
        re_(ports * lanes, 0.0),
        im_(ports * lanes, 0.0) {
    if (ports == 0 || lanes == 0) {
      throw std::invalid_argument("FieldBlock: ports and lanes must be > 0");
    }
  }

  std::size_t ports() const noexcept { return ports_; }
  std::size_t lanes() const noexcept { return lanes_; }

  /// The re/im planes of one port: `lanes()` contiguous doubles.
  double* re(std::size_t port) noexcept { return re_.data() + port * lanes_; }
  double* im(std::size_t port) noexcept { return im_.data() + port * lanes_; }
  const double* re(std::size_t port) const noexcept {
    return re_.data() + port * lanes_;
  }
  const double* im(std::size_t port) const noexcept {
    return im_.data() + port * lanes_;
  }

  /// Scalar element access (tests and lane scatter/gather glue).
  Complex at(std::size_t port, std::size_t lane) const noexcept {
    return {re_[port * lanes_ + lane], im_[port * lanes_ + lane]};
  }
  void set(std::size_t port, std::size_t lane, Complex value) noexcept {
    re_[port * lanes_ + lane] = value.real();
    im_[port * lanes_ + lane] = value.imag();
  }

  /// Darkens every port of every lane.
  void clear() noexcept {
    for (auto& v : re_) v = 0.0;
    for (auto& v : im_) v = 0.0;
  }

 private:
  std::size_t ports_;
  std::size_t lanes_;
  simd::AlignedVector<double> re_;
  simd::AlignedVector<double> im_;
};

}  // namespace neuropuls::photonic
