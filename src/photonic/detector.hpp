// Receiver chain: photodiode → transimpedance amplifier → ADC.
//
// Fig. 2's output stage: "nonlinear devices such as photodiodes (PDs)
// that are sensitive not only to the amplitude but also to the phase of
// the light field due to the coherence of the approach. The ASIC then
// processes the responses through transimpedance amplifiers (TIAs) and
// analog-to-digital converters (ADCs)."
//
// The photodiode is the square-law element that converts the interfered
// complex field into photocurrent — because the field reaching it is a
// coherent superposition of many paths, the detected intensity encodes
// the phase structure of the circuit even though |·|^2 discards absolute
// phase. Shot, thermal, and dark-current noise set the reliability floor
// that the §II-B filtering techniques fight.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "crypto/prng.hpp"
#include "photonic/field.hpp"

namespace neuropuls::photonic {

struct PhotodiodeParameters {
  double responsivity = 1.0;       // A/W
  double dark_current = 10e-9;     // A
  double bandwidth_hz = 30e9;      // noise bandwidth
  double temperature = 300.0;      // K, for thermal noise
  double load_resistance = 50.0;   // ohms
};

/// Square-law detector with shot + thermal noise.
class Photodiode {
 public:
  Photodiode(PhotodiodeParameters params, std::uint64_t seed);

  /// Photocurrent (A) for one field sample, noise included.
  double detect(Complex field) noexcept;

  /// Noise-free photocurrent for a field sample.
  double mean_current(Complex field) const noexcept;

  /// Lane-parallel integrate step: acc[i] += mean_current({re[i], im[i]})
  /// for `n` lanes of one port's split-complex plane. Per lane this is the
  /// exact scalar mean_current() operation tree (simd::square_law_accumulate),
  /// so block accumulation stays bit-identical to the serial path.
  void accumulate_mean_block(const double* re, const double* im, double* acc,
                             std::size_t n) const noexcept;

  const PhotodiodeParameters& params() const noexcept { return params_; }

 private:
  PhotodiodeParameters params_;
  double thermal_sigma_;  // A, fixed by R, T, B
  rng::Gaussian noise_;
};

struct TiaParameters {
  double gain_ohms = 5e3;            // transimpedance
  double input_noise_a_rt_hz = 20e-12;  // input-referred current noise
  double bandwidth_fraction = 0.8;   // one-pole BW relative to sample rate
};

/// Transimpedance amplifier: current in, filtered voltage out.
class TransimpedanceAmplifier {
 public:
  TransimpedanceAmplifier(TiaParameters params, double sample_rate_hz,
                          std::uint64_t seed);

  /// Converts one photocurrent sample to an output voltage.
  double amplify(double current_a) noexcept;

  void reset() noexcept { state_ = 0.0; }

  const TiaParameters& params() const noexcept { return params_; }

 private:
  TiaParameters params_;
  double alpha_;
  double noise_sigma_a_;
  double state_ = 0.0;
  rng::Gaussian noise_;
};

struct AdcParameters {
  unsigned bits = 8;
  double full_scale_volts = 1.0;
  double offset_volts = 0.0;
};

/// Uniform quantizer with saturation.
class Adc {
 public:
  explicit Adc(AdcParameters params);

  /// Quantizes a voltage to a code in [0, 2^bits - 1].
  std::uint32_t quantize(double volts) const noexcept;

  /// Quantizes `n` voltages lane-parallel; codes[i] == quantize(volts[i]).
  void quantize_block(const double* volts, std::uint32_t* codes,
                      std::size_t n) const noexcept;

  /// Fault injection (faults::AdcStuckBits): bits set in `or_mask` read as
  /// stuck-at-1, bits cleared in `and_mask` as stuck-at-0. The defaults
  /// (0, all-ones) are the identity, so an unconfigured Adc stays
  /// bit-identical to the pre-fault-model behaviour.
  void set_stuck_bits(std::uint32_t or_mask, std::uint32_t and_mask) noexcept {
    or_mask_ = or_mask;
    and_mask_ = and_mask;
  }

  std::uint32_t max_code() const noexcept { return max_code_; }

  const AdcParameters& params() const noexcept { return params_; }

 private:
  AdcParameters params_;
  std::uint32_t max_code_;
  std::uint32_t or_mask_ = 0;
  std::uint32_t and_mask_ = 0xFFFFFFFFu;
};

/// Full readout chain for one output port: PD → TIA → ADC, plus an
/// integrate-and-dump accumulator over a configurable window. Exposes both
/// the digital code and the analog photocurrent (the latter feeds the
/// §II-B photocurrent-amplitude filtering).
class ReadoutChain {
 public:
  ReadoutChain(PhotodiodeParameters pd, TiaParameters tia, AdcParameters adc,
               double sample_rate_hz, std::uint64_t seed);

  struct Window {
    double mean_current_a = 0.0;  // average photocurrent over the window
    double mean_volts = 0.0;      // average TIA output
    std::uint32_t code = 0;       // ADC code of the averaged voltage
  };

  /// Integrates `fields` (one port's samples) into a single readout.
  Window integrate(const std::vector<Complex>& fields) noexcept;

  /// Per-sample path (used by time-resolved experiments).
  double sample_volts(Complex field) noexcept;

  /// Forwards stuck-bit fault masks to the chain's ADC.
  void set_adc_stuck_bits(std::uint32_t or_mask,
                          std::uint32_t and_mask) noexcept {
    adc_.set_stuck_bits(or_mask, and_mask);
  }

  void reset() noexcept { tia_.reset(); }

  const Adc& adc() const noexcept { return adc_; }

 private:
  Photodiode pd_;
  TransimpedanceAmplifier tia_;
  Adc adc_;
};

}  // namespace neuropuls::photonic
