#include "photonic/detector.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "common/simd.hpp"
#include "photonic/constants.hpp"

namespace neuropuls::photonic {

Photodiode::Photodiode(PhotodiodeParameters params, std::uint64_t seed)
    : params_(params), noise_(seed) {
  if (params_.responsivity <= 0.0 || params_.bandwidth_hz <= 0.0 ||
      params_.load_resistance <= 0.0) {
    throw std::invalid_argument("Photodiode: non-positive parameter");
  }
  // Johnson noise: sigma^2 = 4 k T B / R.
  thermal_sigma_ = std::sqrt(4.0 * kBoltzmann * params_.temperature *
                             params_.bandwidth_hz / params_.load_resistance);
}

double Photodiode::mean_current(Complex field) const noexcept {
  return params_.responsivity * field_power(field) + params_.dark_current;
}

void Photodiode::accumulate_mean_block(const double* re, const double* im,
                                       double* acc,
                                       std::size_t n) const noexcept {
  simd::square_law_accumulate(re, im, params_.responsivity,
                              params_.dark_current, acc, n);
}

double Photodiode::detect(Complex field) noexcept {
  const double mean = mean_current(field);
  // Shot noise: sigma^2 = 2 q I B (Gaussian approximation, valid at the
  // photon fluxes of a milliwatt-class link).
  const double shot_sigma =
      std::sqrt(2.0 * kElectronCharge * mean * params_.bandwidth_hz);
  const double noisy = mean + noise_.next(0.0, shot_sigma) +
                       noise_.next(0.0, thermal_sigma_);
  return std::max(0.0, noisy);
}

TransimpedanceAmplifier::TransimpedanceAmplifier(TiaParameters params,
                                                 double sample_rate_hz,
                                                 std::uint64_t seed)
    : params_(params), noise_(seed) {
  if (sample_rate_hz <= 0.0 || params_.gain_ohms <= 0.0 ||
      params_.bandwidth_fraction <= 0.0 || params_.bandwidth_fraction > 1.0) {
    throw std::invalid_argument("TransimpedanceAmplifier: bad parameters");
  }
  alpha_ = 1.0 - std::exp(-2.0 * std::numbers::pi * params_.bandwidth_fraction);
  noise_sigma_a_ =
      params_.input_noise_a_rt_hz * std::sqrt(sample_rate_hz / 2.0);
}

double TransimpedanceAmplifier::amplify(double current_a) noexcept {
  const double noisy = current_a + noise_.next(0.0, noise_sigma_a_);
  state_ += alpha_ * (noisy - state_);
  return state_ * params_.gain_ohms;
}

Adc::Adc(AdcParameters params) : params_(params) {
  if (params_.bits == 0 || params_.bits > 16 ||
      params_.full_scale_volts <= 0.0) {
    throw std::invalid_argument("Adc: bits in [1,16], positive full scale");
  }
  max_code_ = (1u << params_.bits) - 1;
}

std::uint32_t Adc::quantize(double volts) const noexcept {
  const double normalized =
      (volts - params_.offset_volts) / params_.full_scale_volts;
  const double clamped = std::clamp(normalized, 0.0, 1.0);
  const auto code = static_cast<std::uint32_t>(
      std::lround(clamped * static_cast<double>(max_code_)));
  // Stuck-bit fault masks (identity by default), kept inside the code
  // range: a stuck-at-1 bit above the converter width is meaningless.
  return ((code | or_mask_) & and_mask_) & max_code_;
}

void Adc::quantize_block(const double* volts, std::uint32_t* codes,
                         std::size_t n) const noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    codes[i] = quantize(volts[i]);
  }
}

ReadoutChain::ReadoutChain(PhotodiodeParameters pd, TiaParameters tia,
                           AdcParameters adc, double sample_rate_hz,
                           std::uint64_t seed)
    : pd_(pd, rng::derive_seed(seed, 1)),
      tia_(tia, sample_rate_hz, rng::derive_seed(seed, 2)),
      adc_(adc) {}

double ReadoutChain::sample_volts(Complex field) noexcept {
  return tia_.amplify(pd_.detect(field));
}

ReadoutChain::Window ReadoutChain::integrate(
    const std::vector<Complex>& fields) noexcept {
  Window w;
  if (fields.empty()) return w;
  double current_sum = 0.0;
  double volt_sum = 0.0;
  for (const Complex& f : fields) {
    const double i = pd_.detect(f);
    current_sum += i;
    volt_sum += tia_.amplify(i);
  }
  w.mean_current_a = current_sum / static_cast<double>(fields.size());
  w.mean_volts = volt_sum / static_cast<double>(fields.size());
  w.code = adc_.quantize(w.mean_volts);
  return w;
}

}  // namespace neuropuls::photonic
