// Optical field representation.
//
// The coherent simulation tracks one complex amplitude per port per sample:
// |E|^2 is optical power in watts, arg(E) the optical phase. The paper's
// central physical claim (§II-A) is that photonic PUFs manipulate
// information in amplitude *and* phase — so the entire pipeline below is
// complex-valued and only the photodiode (square-law) collapses phase into
// intensity.
#pragma once

#include <complex>
#include <vector>

namespace neuropuls::photonic {

using Complex = std::complex<double>;

/// One complex amplitude per physical port of a circuit section.
using PortVector = std::vector<Complex>;

/// Optical power (W) carried by a field amplitude.
inline double field_power(Complex e) noexcept { return std::norm(e); }

/// Total power across ports.
inline double total_power(const PortVector& fields) noexcept {
  double p = 0.0;
  for (const auto& e : fields) p += std::norm(e);
  return p;
}

}  // namespace neuropuls::photonic
