// Physical constants and silicon-photonics material parameters used by the
// component models. Values are SI unless the name says otherwise.
#pragma once

namespace neuropuls::photonic {

inline constexpr double kSpeedOfLight = 2.99792458e8;      // m/s
inline constexpr double kElectronCharge = 1.602176634e-19; // C
inline constexpr double kBoltzmann = 1.380649e-23;         // J/K
inline constexpr double kPlanck = 6.62607015e-34;          // J*s

/// Thermo-optic coefficient of silicon at 1550 nm (dn/dT, 1/K).
/// This is what makes uncompensated ring resonances drift with
/// temperature — the reliability hazard §II-B mitigates with photonic
/// temperature sensors and thermal control.
inline constexpr double kSiliconThermoOptic = 1.86e-4;

/// Typical group index of a 500x220 nm SOI strip waveguide at 1550 nm.
inline constexpr double kSoiGroupIndex = 4.2;

/// Typical effective index of the same waveguide.
inline constexpr double kSoiEffectiveIndex = 2.4;

/// Default telecom wavelength (C-band), metres.
inline constexpr double kDefaultWavelength = 1.55e-6;

/// Reference (design) temperature, kelvin.
inline constexpr double kReferenceTemperature = 300.0;

/// Converts a loss figure in dB to a linear field (amplitude) factor.
double db_to_field_factor(double loss_db);

/// Converts a power ratio to dB.
double power_ratio_to_db(double ratio);

}  // namespace neuropuls::photonic
