// Optical source chain: CW telecom laser + Mach–Zehnder modulator.
//
// Fig. 2: "a telecom laser source that is modulated by means of an optical
// modulator (OM) driven by an ASIC". The laser model contributes relative
// intensity noise (RIN) and phase-noise random walk; the MZM imprints the
// challenge bit stream onto the field with finite extinction ratio and a
// one-pole electrical bandwidth (the 25 Gb/s figure of ref. [12] maps to
// the sample rate chosen by the caller).
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/prng.hpp"
#include "photonic/field.hpp"

namespace neuropuls::photonic {

struct LaserParameters {
  double power_mw = 10.0;        // CW output power, milliwatts
  double rin_db_per_hz = -150.0; // relative intensity noise density
  double linewidth_hz = 100e3;   // Lorentzian linewidth (phase noise)
  double wavelength = 1.55e-6;
};

/// CW laser emitting one sample per step at the given sample rate.
class Laser {
 public:
  Laser(LaserParameters params, double sample_rate_hz, std::uint64_t seed);

  /// Next field sample (includes RIN and phase-noise walk).
  Complex sample() noexcept;

  /// Noise-free carrier amplitude (sqrt of power in watts).
  double mean_amplitude() const noexcept { return mean_amplitude_; }

  const LaserParameters& params() const noexcept { return params_; }

 private:
  LaserParameters params_;
  double sample_rate_hz_;
  double mean_amplitude_;  // sqrt(power), hoisted out of sample()
  double rin_sigma_;    // per-sample relative amplitude deviation
  double phase_sigma_;  // per-sample phase-walk step
  double phase_ = 0.0;
  rng::Gaussian noise_;
};

struct ModulatorParameters {
  double extinction_ratio_db = 20.0;  // on/off power ratio
  double insertion_loss_db = 4.0;
  double bandwidth_fraction = 0.7;    // electrical BW / sample rate
  bool phase_modulation = false;      // also imprint 0/pi phase per bit
};

/// Mach–Zehnder amplitude modulator driven by a binary stream.
class MachZehnderModulator {
 public:
  explicit MachZehnderModulator(ModulatorParameters params = {});

  /// Modulates one optical sample with the target bit. The drive voltage
  /// passes through a one-pole low-pass, so fast bit sequences produce
  /// realistic inter-symbol transitions.
  Complex modulate(Complex carrier, bool bit) noexcept;

  void reset() noexcept { drive_ = 0.0; }

  const ModulatorParameters& params() const noexcept { return params_; }

 private:
  ModulatorParameters params_;
  double alpha_;        // low-pass coefficient
  double drive_ = 0.0;  // filtered drive level in [0, 1]
  double floor_amp_;    // field amplitude at "off" (finite extinction)
  double loss_amp_;     // insertion-loss field factor
};

/// Convenience: modulates a whole challenge bit string onto a fresh
/// carrier stream, `samples_per_bit` samples per bit.
std::vector<Complex> modulate_bits(Laser& laser, MachZehnderModulator& mzm,
                                   const std::vector<std::uint8_t>& bits,
                                   std::size_t samples_per_bit);

}  // namespace neuropuls::photonic
