#include "photonic/source.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "photonic/constants.hpp"

namespace neuropuls::photonic {

Laser::Laser(LaserParameters params, double sample_rate_hz, std::uint64_t seed)
    : params_(params), sample_rate_hz_(sample_rate_hz), noise_(seed) {
  if (sample_rate_hz <= 0.0 || params.power_mw <= 0.0) {
    throw std::invalid_argument("Laser: power and sample rate must be > 0");
  }
  mean_amplitude_ = std::sqrt(params_.power_mw * 1e-3);
  // RIN: relative power variance = 10^(RIN/10) * bandwidth; amplitude
  // deviation is half the relative power deviation.
  const double rel_power_var =
      std::pow(10.0, params_.rin_db_per_hz / 10.0) * sample_rate_hz;
  rin_sigma_ = 0.5 * std::sqrt(rel_power_var);
  // Wiener phase noise: variance per step = 2 pi * linewidth * dt.
  phase_sigma_ =
      std::sqrt(2.0 * std::numbers::pi * params_.linewidth_hz / sample_rate_hz);
}

Complex Laser::sample() noexcept {
  phase_ += noise_.next(0.0, phase_sigma_);
  // Keep the accumulated phase bounded; only its value mod 2pi matters.
  if (phase_ > 1e6) phase_ = std::fmod(phase_, 2.0 * std::numbers::pi);
  const double amplitude =
      mean_amplitude() * (1.0 + noise_.next(0.0, rin_sigma_));
  return std::polar(amplitude, phase_);
}

MachZehnderModulator::MachZehnderModulator(ModulatorParameters params)
    : params_(params) {
  if (params_.bandwidth_fraction <= 0.0 || params_.bandwidth_fraction > 1.0) {
    throw std::invalid_argument(
        "MachZehnderModulator: bandwidth fraction must be in (0, 1]");
  }
  // One-pole low-pass: alpha = 1 - exp(-2 pi f_3dB / f_s).
  alpha_ = 1.0 - std::exp(-2.0 * std::numbers::pi * params_.bandwidth_fraction);
  floor_amp_ = db_to_field_factor(params_.extinction_ratio_db);
  loss_amp_ = db_to_field_factor(params_.insertion_loss_db);
}

Complex MachZehnderModulator::modulate(Complex carrier, bool bit) noexcept {
  const double target = bit ? 1.0 : 0.0;
  drive_ += alpha_ * (target - drive_);
  // Field amplitude interpolates between the extinction floor and 1.
  const double amp = floor_amp_ + (1.0 - floor_amp_) * drive_;
  Complex out = carrier * loss_amp_ * amp;
  if (params_.phase_modulation) {
    // Chirp-free push-pull would be 0/pi; a filtered drive gives a
    // proportional phase swing.
    out *= std::polar(1.0, std::numbers::pi * drive_);
  }
  return out;
}

std::vector<Complex> modulate_bits(Laser& laser, MachZehnderModulator& mzm,
                                   const std::vector<std::uint8_t>& bits,
                                   std::size_t samples_per_bit) {
  std::vector<Complex> out;
  out.reserve(bits.size() * samples_per_bit);
  for (std::uint8_t bit : bits) {
    for (std::size_t s = 0; s < samples_per_bit; ++s) {
      out.push_back(mzm.modulate(laser.sample(), bit & 1));
    }
  }
  return out;
}

}  // namespace neuropuls::photonic
