// Thermal environment, photonic temperature sensing, and closed-loop
// temperature control.
//
// §II-B lists two hardware mitigations for PUF unreliability: "introducing
// a photonic sensor for temperature measurement and considering this
// additional parameter when evaluating the genuinity of the responses" and
// "hardware approaches based on the temperature controller". This module
// provides both, plus the ambient model that stresses them; the E11 bench
// sweeps ambient drift with the mitigation on and off.
#pragma once

#include <cstdint>

#include "crypto/prng.hpp"
#include "photonic/ring.hpp"

namespace neuropuls::photonic {

/// Ambient temperature process: slow drift (Ornstein–Uhlenbeck around the
/// ambient mean) plus fast white jitter.
class ThermalEnvironment {
 public:
  ThermalEnvironment(double mean_kelvin, double drift_sigma,
                     double jitter_sigma, std::uint64_t seed)
      : mean_(mean_kelvin),
        drift_sigma_(drift_sigma),
        jitter_sigma_(jitter_sigma),
        drift_(0.0),
        noise_(seed) {}

  /// Advances the process one step and returns the current temperature.
  double step() noexcept {
    // OU with relaxation 0.05 per step.
    drift_ += -0.05 * drift_ + noise_.next(0.0, drift_sigma_);
    return mean_ + drift_ + noise_.next(0.0, jitter_sigma_);
  }

  double mean() const noexcept { return mean_; }
  void set_mean(double kelvin) noexcept { mean_ = kelvin; }

 private:
  double mean_;
  double drift_sigma_;
  double jitter_sigma_;
  double drift_;
  rng::Gaussian noise_;
};

/// Photonic (ring-based) temperature sensor: converts the thermo-optic
/// resonance shift of a dedicated reference ring into a temperature
/// estimate with calibration-limited accuracy.
class PhotonicTemperatureSensor {
 public:
  /// `accuracy_kelvin` is the 1-sigma readout error.
  PhotonicTemperatureSensor(double accuracy_kelvin, std::uint64_t seed)
      : accuracy_(accuracy_kelvin), noise_(seed) {}

  /// Measures the true temperature with sensor noise.
  double read(double true_kelvin) noexcept {
    return true_kelvin + noise_.next(0.0, accuracy_);
  }

  double accuracy() const noexcept { return accuracy_; }

 private:
  double accuracy_;
  rng::Gaussian noise_;
};

/// Proportional thermal controller (heater + sensor loop): attenuates the
/// deviation between ambient and setpoint by its rejection ratio, limited
/// by sensor accuracy.
class TemperatureController {
 public:
  TemperatureController(double setpoint_kelvin, double rejection_ratio,
                        PhotonicTemperatureSensor sensor)
      : setpoint_(setpoint_kelvin),
        rejection_(rejection_ratio),
        sensor_(std::move(sensor)) {}

  /// Die temperature achieved when ambient is `ambient_kelvin`.
  double regulate(double ambient_kelvin) noexcept {
    const double measured = sensor_.read(ambient_kelvin);
    const double correction = (setpoint_ - measured) * rejection_;
    return ambient_kelvin + correction;
  }

  double setpoint() const noexcept { return setpoint_; }

 private:
  double setpoint_;
  double rejection_;  // in [0, 1): 0 = no control, 0.95 = 20x rejection
  PhotonicTemperatureSensor sensor_;
};

}  // namespace neuropuls::photonic
