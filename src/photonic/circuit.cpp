#include "photonic/circuit.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace neuropuls::photonic {

ScramblerCircuit::ScramblerCircuit(const ScramblerDesign& design,
                                   const FabricationModel& fabrication)
    : design_(design) {
  if (design_.ports < 2 || design_.ports % 2 != 0) {
    throw std::invalid_argument("ScramblerCircuit: ports must be even, >= 2");
  }
  if (design_.layers == 0) {
    throw std::invalid_argument("ScramblerCircuit: need at least one layer");
  }

  // The design RNG fixes the nominal layout (identical on every device).
  rng::Xoshiro256 design_rng(design_.design_seed);
  std::uint64_t component_index = 0;

  // Input fan-out tree: one designed-random path per port.
  input_taps_.reserve(design_.ports);
  for (std::size_t port = 0; port < design_.ports; ++port) {
    const double length = design_rng.uniform(design_.waveguide_min_length,
                                             design_.waveguide_max_length);
    Waveguide tap(length, design_.loss_db_per_cm);
    tap.apply(fabrication.sample(component_index++));
    input_taps_.push_back(tap);
  }

  couplers_.resize(design_.layers);
  waveguides_.resize(design_.layers);
  rings_.resize(design_.layers);

  for (std::size_t layer = 0; layer < design_.layers; ++layer) {
    // Brick-wall coupler stage: even layers pair (0,1)(2,3)...; odd layers
    // pair (1,2)(3,4)... leaving the edge ports straight.
    const std::size_t offset = layer % 2;
    const std::size_t pairs = (design_.ports - offset) / 2;
    couplers_[layer].reserve(pairs);
    for (std::size_t p = 0; p < pairs; ++p) {
      // Nominal ratio jittered by design so the mesh is not degenerate.
      const double nominal = design_.coupler_ratio +
                             design_rng.uniform(-0.15, 0.15);
      DirectionalCoupler coupler(nominal);
      coupler.apply(fabrication.sample(component_index++));
      couplers_[layer].push_back(coupler);
    }

    waveguides_[layer].reserve(design_.ports);
    for (std::size_t port = 0; port < design_.ports; ++port) {
      const double length = design_rng.uniform(design_.waveguide_min_length,
                                               design_.waveguide_max_length);
      Waveguide wg(length, design_.loss_db_per_cm);
      wg.apply(fabrication.sample(component_index++));
      waveguides_[layer].push_back(wg);
    }

    if (design_.with_rings) {
      rings_[layer].reserve(design_.ports);
      for (std::size_t port = 0; port < design_.ports; ++port) {
        RingParameters rp;
        rp.radius =
            design_rng.uniform(design_.ring_radius_min, design_.ring_radius_max);
        rp.power_coupling_in = design_rng.uniform(0.05, 0.3);
        rp.loss_db_per_cm = design_.loss_db_per_cm + 1.0;
        MicroringAllPass ring(rp);
        ring.apply(fabrication.sample(component_index++));
        rings_[layer].push_back(ring);
      }
    }
  }
}

PortVector ScramblerCircuit::evaluate(const OperatingPoint& op,
                                      const PortVector& in) const {
  if (in.size() != design_.ports) {
    throw std::invalid_argument("ScramblerCircuit::evaluate: port mismatch");
  }
  PortVector state = in;
  for (std::size_t layer = 0; layer < design_.layers; ++layer) {
    const std::size_t offset = layer % 2;
    for (std::size_t p = 0; p < couplers_[layer].size(); ++p) {
      const std::size_t a = offset + 2 * p;
      const std::size_t b = a + 1;
      if (b >= state.size()) break;
      const auto out = couplers_[layer][p].couple(state[a], state[b]);
      state[a] = out[0];
      state[b] = out[1];
    }
    for (std::size_t port = 0; port < design_.ports; ++port) {
      state[port] *= waveguides_[layer][port].transfer(op);
    }
    if (design_.with_rings) {
      for (std::size_t port = 0; port < design_.ports; ++port) {
        state[port] *= rings_[layer][port].through(op);
      }
    }
  }
  return state;
}

PortVector ScramblerCircuit::input_coefficients(
    const OperatingPoint& op) const {
  const double split = 1.0 / std::sqrt(static_cast<double>(design_.ports));
  PortVector coeffs(design_.ports);
  for (std::size_t port = 0; port < design_.ports; ++port) {
    coeffs[port] = split * input_taps_[port].transfer(op);
  }
  return coeffs;
}

double ScramblerCircuit::memory_depth_seconds() const noexcept {
  // Heuristic bound: per layer, slowest ring's round trip times the
  // effective number of round trips before the stored energy decays to
  // 1/e^3 (~ -13 dB), summed over layers, plus waveguide group delays.
  double total = 0.0;
  for (std::size_t layer = 0; layer < design_.layers; ++layer) {
    double worst = 0.0;
    if (design_.with_rings) {
      for (const auto& ring : rings_[layer]) {
        const double a = ring.round_trip_amplitude();
        const double t = std::sqrt(1.0 - ring.params().power_coupling_in);
        const double per_trip = a * t;
        // Trips until (a t)^n < e^-3.
        const double trips =
            per_trip >= 1.0 ? 1.0 : 3.0 / -std::log(per_trip);
        worst = std::max(worst, ring.round_trip_delay() * trips);
      }
    }
    double wg_delay = 0.0;
    for (const auto& wg : waveguides_[layer]) {
      wg_delay = std::max(wg_delay, wg.group_delay());
    }
    total += worst + wg_delay;
  }
  return total;
}

ScramblerTables::ScramblerTables(const ScramblerCircuit& circuit,
                                 const OperatingPoint& op,
                                 double sample_period_s)
    : ports_(circuit.design().ports),
      layers_(circuit.design().layers),
      with_rings_(circuit.design().with_rings) {
  coupler_tk_.resize(layers_);
  waveguide_transfer_.resize(layers_);
  ring_constants_.resize(layers_);
  for (std::size_t layer = 0; layer < layers_; ++layer) {
    for (const auto& coupler : circuit.couplers_[layer]) {
      const double k2 = coupler.power_coupling_ratio();
      coupler_tk_[layer].push_back({std::sqrt(1.0 - k2), std::sqrt(k2)});
    }
    for (const auto& wg : circuit.waveguides_[layer]) {
      waveguide_transfer_[layer].push_back(wg.transfer(op));
    }
    if (with_rings_) {
      ring_constants_[layer].reserve(ports_);
      for (const auto& ring : circuit.rings_[layer]) {
        ring_constants_[layer].push_back(
            RingTimeDomainConstants::of(ring, op, sample_period_s));
      }
    }
  }
  taps_ = circuit.input_coefficients(op);
}

TimeDomainScrambler::TimeDomainScrambler(const ScramblerCircuit& circuit,
                                         const OperatingPoint& op,
                                         double sample_period_s)
    : TimeDomainScrambler(
          std::make_shared<const ScramblerTables>(circuit, op,
                                                  sample_period_s)) {}

TimeDomainScrambler::TimeDomainScrambler(
    std::shared_ptr<const ScramblerTables> tables)
    : tables_(std::move(tables)) {
  if (!tables_) {
    throw std::invalid_argument("TimeDomainScrambler: null tables");
  }
  ring_states_.resize(tables_->layers_);
  if (tables_->with_rings_) {
    for (std::size_t layer = 0; layer < tables_->layers_; ++layer) {
      ring_states_[layer].reserve(tables_->ports_);
      for (const auto& constants : tables_->ring_constants_[layer]) {
        ring_states_[layer].emplace_back(constants);
      }
    }
  }
}

TimeDomainScrambler::TimeDomainScrambler(
    std::shared_ptr<const ScramblerTables> tables, std::size_t lanes)
    : tables_(std::move(tables)), lanes_(lanes) {
  if (!tables_) {
    throw std::invalid_argument("TimeDomainScrambler: null tables");
  }
  if (lanes_ == 0) {
    throw std::invalid_argument("TimeDomainScrambler: lanes must be > 0");
  }
  ring_blocks_.resize(tables_->layers_);
  if (tables_->with_rings_) {
    for (std::size_t layer = 0; layer < tables_->layers_; ++layer) {
      ring_blocks_[layer].reserve(tables_->ports_);
      for (const auto& constants : tables_->ring_constants_[layer]) {
        ring_blocks_[layer].emplace_back(constants, lanes_);
      }
    }
  }
}

void TimeDomainScrambler::step_inplace(PortVector& state) {
  const ScramblerTables& t = *tables_;
  if (state.size() != t.ports_) {
    throw std::invalid_argument("TimeDomainScrambler::step: port mismatch");
  }
  for (std::size_t layer = 0; layer < t.layers_; ++layer) {
    const std::size_t offset = layer % 2;
    const auto& couplers = t.coupler_tk_[layer];
    for (std::size_t p = 0; p < couplers.size(); ++p) {
      const std::size_t a = offset + 2 * p;
      const std::size_t b = a + 1;
      if (b >= state.size()) break;
      const double tc = couplers[p][0];
      const double k = couplers[p][1];
      const Complex minus_ik(0.0, -k);
      const Complex s0 = tc * state[a] + minus_ik * state[b];
      const Complex s1 = minus_ik * state[a] + tc * state[b];
      state[a] = s0;
      state[b] = s1;
    }
    const auto& transfers = t.waveguide_transfer_[layer];
    for (std::size_t port = 0; port < t.ports_; ++port) {
      state[port] *= transfers[port];
    }
    if (t.with_rings_) {
      auto& rings = ring_states_[layer];
      for (std::size_t port = 0; port < t.ports_; ++port) {
        state[port] = rings[port].step(state[port]);
      }
    }
  }
}

PortVector TimeDomainScrambler::step(const PortVector& in) {
  PortVector state = in;
  step_inplace(state);
  return state;
}

void TimeDomainScrambler::step_block(FieldBlock& block) {
  const ScramblerTables& t = *tables_;
  if (lanes_ == 0) {
    throw std::logic_error(
        "TimeDomainScrambler::step_block: scalar-mode instance");
  }
  if (block.ports() != t.ports_ || block.lanes() != lanes_) {
    throw std::invalid_argument(
        "TimeDomainScrambler::step_block: block dims mismatch");
  }
  const std::size_t w = lanes_;
  for (std::size_t layer = 0; layer < t.layers_; ++layer) {
    const std::size_t offset = layer % 2;
    const auto& couplers = t.coupler_tk_[layer];
    for (std::size_t p = 0; p < couplers.size(); ++p) {
      const std::size_t a = offset + 2 * p;
      const std::size_t b = a + 1;
      if (b >= t.ports_) break;
      simd::coupler_mix(block.re(a), block.im(a), block.re(b), block.im(b),
                        couplers[p][0], couplers[p][1], w);
    }
    const auto& transfers = t.waveguide_transfer_[layer];
    for (std::size_t port = 0; port < t.ports_; ++port) {
      simd::complex_scale(block.re(port), block.im(port),
                          transfers[port].real(), transfers[port].imag(), w);
    }
    if (t.with_rings_) {
      auto& rings = ring_blocks_[layer];
      for (std::size_t port = 0; port < t.ports_; ++port) {
        rings[port].step(block.re(port), block.im(port));
      }
    }
  }
}

std::vector<std::vector<Complex>> TimeDomainScrambler::scramble_series(
    const std::vector<Complex>& port0_in) {
  const std::size_t n_ports = ports();
  const std::size_t n_samples = port0_in.size();
  // Size every per-port stream up front and write by index: the sample
  // loop then performs zero allocations (one scratch state, reused).
  std::vector<std::vector<Complex>> outputs(n_ports);
  for (auto& v : outputs) v.assign(n_samples, Complex{0.0, 0.0});
  PortVector state(n_ports, Complex{0.0, 0.0});
  for (std::size_t n = 0; n < n_samples; ++n) {
    std::fill(state.begin(), state.end(), Complex{0.0, 0.0});
    state[0] = port0_in[n];
    step_inplace(state);
    for (std::size_t port = 0; port < n_ports; ++port) {
      outputs[port][n] = state[port];
    }
  }
  return outputs;
}

void TimeDomainScrambler::reset() noexcept {
  for (auto& layer : ring_states_) {
    for (auto& ring : layer) ring.reset();
  }
  for (auto& layer : ring_blocks_) {
    for (auto& ring : layer) ring.reset();
  }
}

std::shared_ptr<const ScramblerTables> make_scrambler_tables(
    const ScramblerCircuit& circuit, const OperatingPoint& op,
    double sample_period_s) {
  return std::make_shared<const ScramblerTables>(circuit, op,
                                                 sample_period_s);
}

}  // namespace neuropuls::photonic
