#include "photonic/ring.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace neuropuls::photonic {

namespace {

double circumference(const RingParameters& p) noexcept {
  return 2.0 * std::numbers::pi * p.radius;
}

double ring_phase(const RingParameters& p, const OperatingPoint& op) noexcept {
  const double n_eff =
      p.effective_index +
      kSiliconThermoOptic * (op.temperature - kReferenceTemperature);
  return 2.0 * std::numbers::pi * n_eff * circumference(p) / op.wavelength;
}

double ring_amplitude(const RingParameters& p) noexcept {
  const double loss_db = p.loss_db_per_cm * circumference(p) * 100.0;
  return db_to_field_factor(loss_db);
}

void apply_deviation(RingParameters& p,
                     const ComponentDeviation& d) noexcept {
  p.effective_index += d.d_effective_index;
  p.group_index += d.d_group_index;
  p.radius *= (1.0 + d.d_radius_fraction);
  p.power_coupling_in =
      std::clamp(p.power_coupling_in + d.d_coupling_ratio, 1e-4, 1.0 - 1e-4);
  p.power_coupling_drop = std::clamp(
      p.power_coupling_drop - d.d_coupling_ratio / 2.0, 1e-4, 1.0 - 1e-4);
  p.loss_db_per_cm = std::max(0.0, p.loss_db_per_cm + d.d_loss_db);
}

void validate(const RingParameters& p) {
  if (p.radius <= 0.0) {
    throw std::invalid_argument("Ring: radius must be positive");
  }
  if (p.power_coupling_in <= 0.0 || p.power_coupling_in >= 1.0 ||
      p.power_coupling_drop <= 0.0 || p.power_coupling_drop >= 1.0) {
    throw std::invalid_argument("Ring: coupling ratios must be in (0, 1)");
  }
}

}  // namespace

MicroringAllPass::MicroringAllPass(RingParameters params) : params_(params) {
  validate(params_);
}

void MicroringAllPass::apply(const ComponentDeviation& deviation) noexcept {
  apply_deviation(params_, deviation);
}

double MicroringAllPass::round_trip_phase(
    const OperatingPoint& op) const noexcept {
  return ring_phase(params_, op);
}

double MicroringAllPass::round_trip_amplitude() const noexcept {
  return ring_amplitude(params_);
}

double MicroringAllPass::round_trip_delay() const noexcept {
  return params_.group_index * circumference(params_) / kSpeedOfLight;
}

Complex MicroringAllPass::through(const OperatingPoint& op) const noexcept {
  const double t = std::sqrt(1.0 - params_.power_coupling_in);
  const double a = round_trip_amplitude();
  const Complex phase = std::polar(1.0, -round_trip_phase(op));
  const Complex ae = a * phase;
  return (t - ae) / (1.0 - t * ae);
}

MicroringAddDrop::MicroringAddDrop(RingParameters params) : params_(params) {
  validate(params_);
}

void MicroringAddDrop::apply(const ComponentDeviation& deviation) noexcept {
  apply_deviation(params_, deviation);
}

double MicroringAddDrop::round_trip_phase(
    const OperatingPoint& op) const noexcept {
  return ring_phase(params_, op);
}

Complex MicroringAddDrop::through(const OperatingPoint& op) const noexcept {
  const double t1 = std::sqrt(1.0 - params_.power_coupling_in);
  const double t2 = std::sqrt(1.0 - params_.power_coupling_drop);
  const double a = ring_amplitude(params_);
  const Complex phase = std::polar(1.0, -round_trip_phase(op));
  return (t1 - t2 * a * phase) / (1.0 - t1 * t2 * a * phase);
}

Complex MicroringAddDrop::drop(const OperatingPoint& op) const noexcept {
  const double k1 = std::sqrt(params_.power_coupling_in);
  const double k2 = std::sqrt(params_.power_coupling_drop);
  const double t1 = std::sqrt(1.0 - params_.power_coupling_in);
  const double t2 = std::sqrt(1.0 - params_.power_coupling_drop);
  const double a = ring_amplitude(params_);
  // Half round trip to the drop coupler; the -k1*k2 prefactor carries the
  // two -i coupling factors ((-i)^2 = -1).
  const Complex half = std::sqrt(a) * std::polar(1.0, -round_trip_phase(op) / 2.0);
  const Complex full = a * std::polar(1.0, -round_trip_phase(op));
  return -k1 * k2 * half / (1.0 - t1 * t2 * full);
}

RingTimeDomainConstants RingTimeDomainConstants::of(
    const MicroringAllPass& ring, const OperatingPoint& op,
    double sample_period) {
  if (sample_period <= 0.0) {
    throw std::invalid_argument("RingTimeDomain: sample period must be > 0");
  }
  RingTimeDomainConstants c;
  const double kappa2 = ring.params().power_coupling_in;
  c.t = std::sqrt(1.0 - kappa2);
  c.k = std::sqrt(kappa2);
  c.feedback =
      ring.round_trip_amplitude() * std::polar(1.0, -ring.round_trip_phase(op));
  c.delay_samples = static_cast<std::size_t>(
      std::max(1.0, std::floor(ring.round_trip_delay() / sample_period)));
  return c;
}

RingTimeDomain::RingTimeDomain(const MicroringAllPass& ring,
                               const OperatingPoint& op, double sample_period)
    : RingTimeDomain(RingTimeDomainConstants::of(ring, op, sample_period)) {}

RingTimeDomain::RingTimeDomain(const RingTimeDomainConstants& constants)
    : t_(constants.t), k_(constants.k), feedback_(constants.feedback) {
  delay_line_.assign(constants.delay_samples, Complex{0.0, 0.0});
}

Complex RingTimeDomain::step(Complex in) noexcept {
  // ret[n] comes out of the delay line (state deposited `delay` steps ago,
  // already scaled by the feedback factor on insertion).
  const Complex ret = delay_line_[head_];
  const Complex minus_ik(0.0, -k_);
  const Complex out = t_ * in + minus_ik * ret;
  const Complex circ = minus_ik * in + t_ * ret;
  delay_line_[head_] = feedback_ * circ;
  head_ = (head_ + 1) % delay_line_.size();
  return out;
}

void RingTimeDomain::reset() noexcept {
  std::fill(delay_line_.begin(), delay_line_.end(), Complex{0.0, 0.0});
  head_ = 0;
}

RingTimeDomainBlock::RingTimeDomainBlock(
    const RingTimeDomainConstants& constants, std::size_t lanes)
    : t_(constants.t),
      k_(constants.k),
      feedback_re_(constants.feedback.real()),
      feedback_im_(constants.feedback.imag()),
      lanes_(lanes),
      rows_(constants.delay_samples),
      delay_re_(constants.delay_samples * lanes, 0.0),
      delay_im_(constants.delay_samples * lanes, 0.0) {
  if (lanes == 0) {
    throw std::invalid_argument("RingTimeDomainBlock: lanes must be > 0");
  }
}

void RingTimeDomainBlock::step(double* re, double* im) noexcept {
  double* dre = delay_re_.data() + head_ * lanes_;
  double* dim = delay_im_.data() + head_ * lanes_;
  simd::ring_step(re, im, dre, dim, t_, k_, feedback_re_, feedback_im_,
                  lanes_);
  head_ = head_ + 1 == rows_ ? 0 : head_ + 1;
}

void RingTimeDomainBlock::reset() noexcept {
  std::fill(delay_re_.begin(), delay_re_.end(), 0.0);
  std::fill(delay_im_.begin(), delay_im_.end(), 0.0);
  head_ = 0;
}

}  // namespace neuropuls::photonic
