#include "photonic/constants.hpp"

#include <cmath>

namespace neuropuls::photonic {

double db_to_field_factor(double loss_db) {
  // Power factor 10^(-dB/10); field is its square root.
  return std::pow(10.0, -loss_db / 20.0);
}

double power_ratio_to_db(double ratio) {
  return 10.0 * std::log10(ratio);
}

}  // namespace neuropuls::photonic
