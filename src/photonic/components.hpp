// Passive photonic components: waveguides, directional couplers, phase
// shifters, Y-splitters, and Mach–Zehnder interferometers.
//
// Each component exposes its frequency-domain action on complex field
// amplitudes at a given wavelength and temperature. Together with the
// microring models in `ring.hpp` these are the building blocks of the
// "passive PUF architecture" block of Fig. 2 — the section that "separates
// the initial light beam in several different paths and scrambles them".
#pragma once

#include <array>

#include "photonic/constants.hpp"
#include "photonic/field.hpp"
#include "photonic/variation.hpp"

namespace neuropuls::photonic {

/// Operating point shared by all wavelength/temperature-dependent models.
struct OperatingPoint {
  double wavelength = kDefaultWavelength;      // metres
  double temperature = kReferenceTemperature;  // kelvin
};

/// A straight waveguide section: phase accumulation + propagation loss.
class Waveguide {
 public:
  /// `length` in metres, `loss_db_per_cm` in dB/cm.
  Waveguide(double length, double loss_db_per_cm = 2.0,
            double effective_index = kSoiEffectiveIndex,
            double group_index = kSoiGroupIndex);

  /// Applies the fabrication deviation of a concrete instance.
  void apply(const ComponentDeviation& deviation) noexcept;

  /// Complex field transfer factor at the operating point. The
  /// thermo-optic effect shifts the effective index by
  /// dn/dT * (T - T_ref).
  Complex transfer(const OperatingPoint& op) const noexcept;

  /// Group delay (s) — sets the ring round-trip time.
  double group_delay() const noexcept;

  double length() const noexcept { return length_; }
  double effective_index() const noexcept { return effective_index_; }

 private:
  double length_;
  double loss_db_per_cm_;
  double effective_index_;
  double group_index_;
};

/// Lossless 2x2 directional coupler with power coupling ratio kappa^2.
/// Transfer matrix: [through, cross; cross, through] with
/// through = sqrt(1 - kappa2), cross = -i * sqrt(kappa2).
class DirectionalCoupler {
 public:
  explicit DirectionalCoupler(double power_coupling_ratio = 0.5);

  void apply(const ComponentDeviation& deviation) noexcept;

  /// Applies the 2x2 matrix to a port pair.
  std::array<Complex, 2> couple(Complex in0, Complex in1) const noexcept;

  double power_coupling_ratio() const noexcept { return kappa2_; }

 private:
  double kappa2_;
};

/// Static phase shifter (a short waveguide trimmed by fabrication).
class PhaseShifter {
 public:
  explicit PhaseShifter(double phase_radians = 0.0) noexcept
      : phase_(phase_radians) {}

  Complex transfer() const noexcept {
    return std::polar(1.0, -phase_);
  }
  double phase() const noexcept { return phase_; }

 private:
  double phase_;
};

/// 1x2 Y-junction splitter with excess loss; splits power evenly.
class YSplitter {
 public:
  explicit YSplitter(double excess_loss_db = 0.3);

  void apply(const ComponentDeviation& deviation) noexcept;

  std::array<Complex, 2> split(Complex in) const noexcept;

 private:
  double excess_loss_db_;
};

/// Unbalanced Mach–Zehnder interferometer: two couplers around two arms of
/// different lengths. The wavelength-dependent interference makes it a
/// spectral scrambling element.
class MachZehnder {
 public:
  MachZehnder(double arm_length_a, double arm_length_b,
              double coupling_in = 0.5, double coupling_out = 0.5,
              double loss_db_per_cm = 2.0);

  /// Applies one deviation to each internal element (4 sub-deviations are
  /// derived from the single seed deterministically by the caller passing
  /// distinct component indices; here one deviation perturbs both arms in
  /// an anti-correlated way, which is the dominant physical effect).
  void apply(const ComponentDeviation& deviation) noexcept;

  std::array<Complex, 2> transfer(const OperatingPoint& op, Complex in0,
                                  Complex in1) const noexcept;

 private:
  DirectionalCoupler input_coupler_;
  DirectionalCoupler output_coupler_;
  Waveguide arm_a_;
  Waveguide arm_b_;
};

}  // namespace neuropuls::photonic
