// The passive scrambling circuit of Fig. 2.
//
// A multi-port interferometric mesh: alternating brick-wall layers of 2x2
// directional couplers (splitting the beam across paths), per-port
// waveguide sections of designed-pseudo-random length (relative phase),
// and per-port all-pass microrings (wavelength selectivity + memory).
// "The passive PUF architecture section separates the initial light beam
// in several different paths and scrambles them before the output. No
// active devices are present."
//
// The *design* is fixed by a design seed (identical for every device of a
// production run); the *device fingerprint* comes from the
// FabricationModel deviations layered on top — exactly the split between
// mask and process that makes a PUF unclonable-by-manufacturer.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "photonic/components.hpp"
#include "photonic/field_block.hpp"
#include "photonic/ring.hpp"

namespace neuropuls::photonic {

struct ScramblerDesign {
  std::size_t ports = 8;
  std::size_t layers = 6;
  std::uint64_t design_seed = 0x4e455552'4f50554cULL;  // "NEUROPUL"
  // Deliberately long (spiralled) sections: with sigma(n_eff) ~ 4e-4 a
  // millimetre of waveguide accumulates a phase deviation of order pi, so
  // the interference pattern decorrelates completely between devices —
  // the layout choice that pushes inter-device HD to 50%.
  double waveguide_min_length = 0.5e-3;  // metres
  double waveguide_max_length = 2.5e-3;  // metres
  double ring_radius_min = 8e-6;
  double ring_radius_max = 12e-6;
  double coupler_ratio = 0.5;
  double loss_db_per_cm = 2.0;
  bool with_rings = true;  // disable for a memoryless (pure-mesh) ablation
};

/// One device instance of the scrambler: nominal design + this device's
/// fabrication deviations baked in.
class ScramblerCircuit {
 public:
  ScramblerCircuit(const ScramblerDesign& design,
                   const FabricationModel& fabrication);

  std::size_t ports() const noexcept { return design_.ports; }
  std::size_t layers() const noexcept { return design_.layers; }

  /// Steady-state frequency-domain evaluation: input amplitudes to output
  /// amplitudes at the operating point.
  /// Throws std::invalid_argument when input size != ports().
  PortVector evaluate(const OperatingPoint& op, const PortVector& in) const;

  /// The input fan-out tree of Fig. 2 ("separates the initial light beam
  /// in several different paths"): per-port complex coefficients that
  /// distribute a single source field across all ports, each path with a
  /// designed-random length and this device's fabrication deviation.
  PortVector input_coefficients(const OperatingPoint& op) const;

  /// Sum over layers of ring round-trip delays on the longest path — a
  /// bound on how long energy lingers in the circuit (the "< 100 ns"
  /// response-lifetime argument of §IV).
  double memory_depth_seconds() const noexcept;

  const ScramblerDesign& design() const noexcept { return design_; }
  const std::vector<std::vector<MicroringAllPass>>& rings() const noexcept {
    return rings_;
  }

 private:
  friend class ScramblerTables;

  ScramblerDesign design_;
  // Input fan-out paths, one per port.
  std::vector<Waveguide> input_taps_;
  // [layer][pair] couplers; [layer][port] waveguides and rings.
  std::vector<std::vector<DirectionalCoupler>> couplers_;
  std::vector<std::vector<Waveguide>> waveguides_;
  std::vector<std::vector<MicroringAllPass>> rings_;
};

/// The immutable transfer constants of a ScramblerCircuit frozen at one
/// (wavelength, temperature) operating point and sample period: coupler
/// t/k amplitudes, per-layer waveguide transfer factors, per-ring
/// time-domain constants, and the input fan-out coefficients.
///
/// Building these tables is the expensive part of starting a time-domain
/// evaluation (one complex exponential per waveguide and ring); they hold
/// no state, so one instance is safely shared — concurrently — by every
/// evaluation at the same operating point. PhotonicPuf caches one per
/// operating point and the batch engine reuses it across all work items.
class ScramblerTables {
 public:
  ScramblerTables(const ScramblerCircuit& circuit, const OperatingPoint& op,
                  double sample_period_s);

  std::size_t ports() const noexcept { return ports_; }
  std::size_t layers() const noexcept { return layers_; }
  bool with_rings() const noexcept { return with_rings_; }

  /// The circuit's input fan-out coefficients at the frozen operating
  /// point (same values as ScramblerCircuit::input_coefficients).
  const PortVector& input_coefficients() const noexcept { return taps_; }

 private:
  friend class TimeDomainScrambler;

  std::size_t ports_;
  std::size_t layers_;
  bool with_rings_;
  std::vector<std::vector<std::array<double, 2>>> coupler_tk_;  // {t, k}
  std::vector<std::vector<Complex>> waveguide_transfer_;
  std::vector<std::vector<RingTimeDomainConstants>> ring_constants_;
  PortVector taps_;
};

/// Sample-clocked evaluation of a ScramblerCircuit: the modulated challenge
/// stream flows through the mesh while the rings integrate state, so each
/// output sample depends on past input symbols (reservoir-style mixing).
///
/// The instance owns only the mutable ring state; the static constants
/// live in a (possibly shared) ScramblerTables. Instances are cheap to
/// stamp out from cached tables, which is what makes batched evaluation
/// win even single-threaded.
///
/// Two execution modes share the tables:
///   * scalar (lanes == 0): step_inplace/step on one PortVector;
///   * lane-parallel (lanes > 0): step_block on a FieldBlock of `lanes`
///     independent challenges, every op vectorized across lanes. Noiseless
///     lane results are bit-identical to the scalar mode (common/simd.hpp
///     documents the argument; ctest asserts it).
class TimeDomainScrambler {
 public:
  /// Freezes the static transfer constants at `op` and builds per-ring
  /// delay lines for the given sample period.
  TimeDomainScrambler(const ScramblerCircuit& circuit, const OperatingPoint& op,
                      double sample_period_s);

  /// Builds only the scalar ring state around precomputed shared tables.
  explicit TimeDomainScrambler(std::shared_ptr<const ScramblerTables> tables);

  /// Lane-parallel mode: builds block ring state for `lanes` independent
  /// challenges around precomputed shared tables. Throws
  /// std::invalid_argument when lanes == 0.
  TimeDomainScrambler(std::shared_ptr<const ScramblerTables> tables,
                      std::size_t lanes);

  /// Processes one time step in place: `state` holds one sample per port
  /// on entry and the per-port outputs on return. No allocation.
  void step_inplace(PortVector& state);

  /// Processes one time step: `in` has one sample per port.
  PortVector step(const PortVector& in);

  /// Processes one time step of every lane in place: coupler 2x2 mixes,
  /// waveguide phase rotations, and ring updates each applied across all
  /// lanes per op. Requires block dims (ports x lanes) to match; only
  /// valid on a lane-parallel instance. No allocation.
  void step_block(FieldBlock& block);

  /// Streams a single-port input (port 0 driven, others dark) and returns
  /// per-port output sample streams. Output vectors are sized up front and
  /// written by index; one scratch state is reused across samples, so the
  /// loop allocates nothing.
  std::vector<std::vector<Complex>> scramble_series(
      const std::vector<Complex>& port0_in);

  void reset() noexcept;

  std::size_t ports() const noexcept { return tables_->ports(); }

  /// Lane width of a lane-parallel instance; 0 for scalar instances.
  std::size_t lanes() const noexcept { return lanes_; }

  const ScramblerTables& tables() const noexcept { return *tables_; }

 private:
  std::shared_ptr<const ScramblerTables> tables_;
  std::size_t lanes_ = 0;  // 0 = scalar mode
  std::vector<std::vector<RingTimeDomain>> ring_states_;
  std::vector<std::vector<RingTimeDomainBlock>> ring_blocks_;
};

/// Convenience factory for a shareable operating-point table set.
std::shared_ptr<const ScramblerTables> make_scrambler_tables(
    const ScramblerCircuit& circuit, const OperatingPoint& op,
    double sample_period_s);

}  // namespace neuropuls::photonic
