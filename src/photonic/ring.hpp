// Microring resonators — frequency-domain transfer and time-domain memory.
//
// The PUF architecture the consortium demonstrated (§II-A, ref. [12]) is a
// symmetric microring-resonator array: rings are the components whose
// resonance positions are exquisitely sensitive to fabrication (one
// nanometre of radius error detunes a resonance by tens of picometres),
// giving the device its fingerprint; and because a ring stores circulating
// energy for many round trips, it provides the "memory effects … mixing
// incoming signals in time with previous ones, similarly to what happens
// in reservoir computing" that the paper highlights.
//
// Two views of the same physics:
//   * `through()` / `drop()` — steady-state frequency response, used for
//     spectral PUF readout and the thermal-sensitivity experiments;
//   * `RingTimeDomain` — a sample-clocked recirculating delay model, used
//     when the modulated challenge stream (25 Gb/s in ref. [12]) must
//     interact with the ring's stored state.
#pragma once

#include <cstddef>
#include <vector>

#include "common/simd.hpp"
#include "photonic/components.hpp"

namespace neuropuls::photonic {

/// Geometry + coupling description of one ring.
struct RingParameters {
  double radius = 10e-6;             // metres
  double power_coupling_in = 0.1;    // kappa^2 at the input bus
  double power_coupling_drop = 0.1;  // kappa^2 at the drop bus (add-drop)
  double loss_db_per_cm = 3.0;       // bend + scattering loss
  double effective_index = kSoiEffectiveIndex;
  double group_index = kSoiGroupIndex;
};

/// All-pass (single-bus) microring.
class MicroringAllPass {
 public:
  explicit MicroringAllPass(RingParameters params = {});

  void apply(const ComponentDeviation& deviation) noexcept;

  /// Complex through-port transfer at the operating point:
  ///   H = (t - a e^{-i phi}) / (1 - t a e^{-i phi})
  Complex through(const OperatingPoint& op) const noexcept;

  /// Round-trip phase at the operating point (radians, mod nothing).
  double round_trip_phase(const OperatingPoint& op) const noexcept;

  /// Single round-trip field attenuation a in (0, 1].
  double round_trip_amplitude() const noexcept;

  /// Round-trip (group) delay in seconds.
  double round_trip_delay() const noexcept;

  const RingParameters& params() const noexcept { return params_; }

 private:
  RingParameters params_;
};

/// Add-drop (two-bus) microring with through and drop responses.
class MicroringAddDrop {
 public:
  explicit MicroringAddDrop(RingParameters params = {});

  void apply(const ComponentDeviation& deviation) noexcept;

  Complex through(const OperatingPoint& op) const noexcept;
  Complex drop(const OperatingPoint& op) const noexcept;

  const RingParameters& params() const noexcept { return params_; }

 private:
  double round_trip_phase(const OperatingPoint& op) const noexcept;
  RingParameters params_;
};

/// The static (state-free) constants of a RingTimeDomain at one operating
/// point: everything except the circulating field. Computing these costs
/// trig/exp evaluations, so batch engines precompute them once per
/// (wavelength, temperature) and stamp out per-evaluation ring states
/// cheaply (see ScramblerTables in circuit.hpp).
struct RingTimeDomainConstants {
  double t = 1.0;                 // through amplitude sqrt(1 - kappa^2)
  double k = 0.0;                 // cross amplitude sqrt(kappa^2)
  Complex feedback{1.0, 0.0};     // a * e^{-i phi}
  std::size_t delay_samples = 1;  // round-trip delay in samples, >= 1

  /// Freezes `ring` at `op` for a given sample period. Throws
  /// std::invalid_argument when sample_period <= 0.
  static RingTimeDomainConstants of(const MicroringAllPass& ring,
                                    const OperatingPoint& op,
                                    double sample_period);
};

/// Time-domain all-pass ring clocked at the modulation sample rate.
///
/// The ring circumference maps to `delay_samples` of the input stream
/// (>= 1). Update per sample n:
///   out[n]      = t * in[n] - i k * ret[n]
///   circ[n]     = -i k * in[n] + t * ret[n]
///   ret[n]      = a * e^{-i phi} * circ[n - delay]
/// so past symbols persist in the circulating field — the reservoir-style
/// inter-symbol mixing the PUF exploits.
class RingTimeDomain {
 public:
  /// `sample_period` is the modulation sample duration (s); the delay in
  /// samples is round_trip_delay / sample_period, floored, min 1.
  RingTimeDomain(const MicroringAllPass& ring, const OperatingPoint& op,
                 double sample_period);

  /// Builds the state around precomputed constants (no trig/exp work).
  explicit RingTimeDomain(const RingTimeDomainConstants& constants);

  /// Processes one input sample, returns the through-port sample.
  Complex step(Complex in) noexcept;

  /// Clears the circulating state.
  void reset() noexcept;

  std::size_t delay_samples() const noexcept { return delay_line_.size(); }

 private:
  double t_;          // through amplitude sqrt(1 - kappa^2)
  double k_;          // cross amplitude sqrt(kappa^2)
  Complex feedback_;  // a * e^{-i phi}
  std::vector<Complex> delay_line_;
  std::size_t head_ = 0;
};

/// Lane-parallel counterpart of RingTimeDomain: one ring's recirculating
/// state for W independent lanes, stored as split-complex delay-line rows
/// of W doubles so one step updates every lane with unit stride. Per lane
/// it performs exactly the scalar step's operation tree (see
/// simd::ring_step), which keeps noiseless block evaluation bit-identical
/// to the serial path.
class RingTimeDomainBlock {
 public:
  RingTimeDomainBlock(const RingTimeDomainConstants& constants,
                      std::size_t lanes);

  /// Steps every lane once, in place on the port planes (`re`/`im` are
  /// `lanes()` contiguous doubles).
  void step(double* re, double* im) noexcept;

  /// Clears the circulating state of every lane.
  void reset() noexcept;

  std::size_t lanes() const noexcept { return lanes_; }
  std::size_t delay_samples() const noexcept { return rows_; }

 private:
  double t_;
  double k_;
  double feedback_re_;
  double feedback_im_;
  std::size_t lanes_;
  std::size_t rows_;  // delay in samples
  std::size_t head_ = 0;
  simd::AlignedVector<double> delay_re_;  // [row][lane]
  simd::AlignedVector<double> delay_im_;
};

}  // namespace neuropuls::photonic
