#include "crypto/hmac.hpp"

#include <cstring>

namespace neuropuls::crypto {

HmacSha256::HmacSha256(ByteView key) {
  std::array<std::uint8_t, Sha256::kBlockSize> block_key{};
  if (key.size() > Sha256::kBlockSize) {
    const auto digest = Sha256::digest(key);
    std::memcpy(block_key.data(), digest.data(), digest.size());
  } else if (!key.empty()) {  // empty views may carry a null data()
    std::memcpy(block_key.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, Sha256::kBlockSize> ipad_key{};
  for (std::size_t i = 0; i < Sha256::kBlockSize; ++i) {
    ipad_key[i] = static_cast<std::uint8_t>(block_key[i] ^ 0x36);
    opad_key_[i] = static_cast<std::uint8_t>(block_key[i] ^ 0x5c);
  }
  inner_.update(ipad_key);
}

Bytes HmacSha256::finalize() {
  const auto inner_digest = inner_.finalize();
  Sha256 outer;
  outer.update(opad_key_);
  outer.update(inner_digest);
  const auto d = outer.finalize();
  return Bytes(d.begin(), d.end());
}

Bytes hmac_sha256(ByteView key, ByteView data) {
  HmacSha256 mac(key);
  mac.update(data);
  return mac.finalize();
}

Bytes hkdf_extract(ByteView salt, ByteView ikm) {
  // Per RFC 5869 an absent salt is a string of zero bytes of hash length.
  if (salt.empty()) {
    const Bytes zero(Sha256::kDigestSize, 0);
    return hmac_sha256(zero, ikm);
  }
  return hmac_sha256(salt, ikm);
}

Bytes hkdf_expand(ByteView prk, ByteView info, std::size_t length) {
  constexpr std::size_t kHashLen = Sha256::kDigestSize;
  if (length > 255 * kHashLen) {
    throw std::invalid_argument("hkdf_expand: length too large");
  }
  Bytes okm;
  okm.reserve(length);
  Bytes previous;
  std::uint8_t counter = 1;
  while (okm.size() < length) {
    HmacSha256 mac(prk);
    mac.update(previous);
    mac.update(info);
    mac.update(ByteView(&counter, 1));
    previous = mac.finalize();
    const std::size_t take =
        std::min(kHashLen, length - okm.size());
    okm.insert(okm.end(), previous.begin(), previous.begin() + static_cast<std::ptrdiff_t>(take));
    ++counter;
  }
  return okm;
}

Bytes hkdf(ByteView salt, ByteView ikm, ByteView info, std::size_t length) {
  return hkdf_expand(hkdf_extract(salt, ikm), info, length);
}

}  // namespace neuropuls::crypto
