// AES-128 CTR-DRBG (NIST SP 800-90A, no-derivation-function profile).
//
// The deterministic generator standardized for constrained devices with
// an AES engine — the natural DRBG for the NEUROPULS ASIC, complementing
// the software-friendly ChaCha DRBG. Seeded from 32 bytes of entropy
// (key || V); `generate` produces keystream blocks and re-keys itself
// after every call (backtracking resistance); `reseed` mixes fresh
// entropy. A reseed counter enforces the SP 800-90A reseed interval.
#pragma once

#include <array>
#include <cstdint>

#include "crypto/bytes.hpp"

namespace neuropuls::crypto {

class CtrDrbg {
 public:
  static constexpr std::size_t kSeedLen = 32;  // key(16) || V(16)
  /// SP 800-90A allows 2^48; a small bound keeps tests meaningful.
  static constexpr std::uint64_t kReseedInterval = 1ull << 32;

  /// `entropy` must be at least kSeedLen bytes; extra bytes are folded in.
  /// Throws std::invalid_argument when shorter.
  explicit CtrDrbg(ByteView entropy);

  /// Produces `n` pseudo-random bytes. Throws std::runtime_error if the
  /// reseed interval is exhausted (caller must reseed).
  Bytes generate(std::size_t n);

  /// Mixes fresh entropy into the state and resets the reseed counter.
  void reseed(ByteView entropy);

  std::uint64_t requests_since_reseed() const noexcept {
    return reseed_counter_;
  }

 private:
  void update(ByteView provided_data);
  void increment_v();

  std::array<std::uint8_t, 16> key_{};
  std::array<std::uint8_t, 16> v_{};
  std::uint64_t reseed_counter_ = 0;
};

}  // namespace neuropuls::crypto
