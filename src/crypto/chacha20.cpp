#include "crypto/chacha20.hpp"

#include <bit>
#include <cstring>
#include <limits>

#include "crypto/sha256.hpp"

namespace neuropuls::crypto {

namespace {

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) noexcept {
  a += b; d ^= a; d = std::rotl(d, 16);
  c += d; b ^= c; b = std::rotl(b, 12);
  a += b; d ^= a; d = std::rotl(d, 8);
  c += d; b ^= c; b = std::rotl(b, 7);
}

constexpr std::array<std::uint32_t, 4> kSigma = {0x61707865, 0x3320646e,
                                                 0x79622d32, 0x6b206574};

std::uint32_t load_le32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void store_le32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

// Interleaved quarter round over kChaCha20Lanes independent blocks: every
// operation is elementwise across the lane dimension, so the loop
// vectorizes to one SIMD op per scalar op. Integer add/xor/rotl are exact,
// hence lane k's output is the scalar block function's output verbatim.
inline void quarter_round_lanes(std::uint32_t* a, std::uint32_t* b,
                                std::uint32_t* c, std::uint32_t* d) noexcept {
  for (std::size_t l = 0; l < kChaCha20Lanes; ++l) {
    a[l] += b[l]; d[l] ^= a[l]; d[l] = std::rotl(d[l], 16);
    c[l] += d[l]; b[l] ^= c[l]; b[l] = std::rotl(b[l], 12);
    a[l] += b[l]; d[l] ^= a[l]; d[l] = std::rotl(d[l], 8);
    c[l] += d[l]; b[l] ^= c[l]; b[l] = std::rotl(b[l], 7);
  }
}

// kChaCha20Lanes keystream blocks at consecutive counters, interleaved
// word-by-word (x[word][lane]).
void chacha20_block_lanes(const std::array<std::uint32_t, 8>& key,
                          std::uint32_t counter,
                          const std::array<std::uint32_t, 3>& nonce,
                          std::uint8_t* out) noexcept {
  std::uint32_t init[16];
  for (int i = 0; i < 4; ++i) init[i] = kSigma[static_cast<std::size_t>(i)];
  for (int i = 0; i < 8; ++i) init[4 + i] = key[static_cast<std::size_t>(i)];
  init[12] = counter;
  for (int i = 0; i < 3; ++i) init[13 + i] = nonce[static_cast<std::size_t>(i)];

  std::uint32_t x[16][kChaCha20Lanes];
  for (int i = 0; i < 16; ++i) {
    for (std::size_t l = 0; l < kChaCha20Lanes; ++l) x[i][l] = init[i];
  }
  for (std::size_t l = 0; l < kChaCha20Lanes; ++l) {
    x[12][l] = counter + static_cast<std::uint32_t>(l);
  }

  for (int round = 0; round < 10; ++round) {
    quarter_round_lanes(x[0], x[4], x[8], x[12]);
    quarter_round_lanes(x[1], x[5], x[9], x[13]);
    quarter_round_lanes(x[2], x[6], x[10], x[14]);
    quarter_round_lanes(x[3], x[7], x[11], x[15]);
    quarter_round_lanes(x[0], x[5], x[10], x[15]);
    quarter_round_lanes(x[1], x[6], x[11], x[12]);
    quarter_round_lanes(x[2], x[7], x[8], x[13]);
    quarter_round_lanes(x[3], x[4], x[9], x[14]);
  }

  for (std::size_t l = 0; l < kChaCha20Lanes; ++l) {
    for (int i = 0; i < 16; ++i) {
      const std::uint32_t feedforward =
          i == 12 ? counter + static_cast<std::uint32_t>(l) : init[i];
      store_le32(out + 64 * l + 4 * i, x[i][l] + feedforward);
    }
  }
}

}  // namespace

void chacha20_block(const std::array<std::uint32_t, 8>& key,
                    std::uint32_t counter,
                    const std::array<std::uint32_t, 3>& nonce,
                    std::span<std::uint8_t, 64> out) noexcept {
  std::uint32_t state[16];
  for (int i = 0; i < 4; ++i) state[i] = kSigma[static_cast<std::size_t>(i)];
  for (int i = 0; i < 8; ++i) state[4 + i] = key[static_cast<std::size_t>(i)];
  state[12] = counter;
  for (int i = 0; i < 3; ++i) state[13 + i] = nonce[static_cast<std::size_t>(i)];

  std::uint32_t x[16];
  std::memcpy(x, state, sizeof(x));
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    store_le32(out.data() + 4 * i, x[i] + state[i]);
  }
}

void chacha20_blocks(const std::array<std::uint32_t, 8>& key,
                     std::uint32_t counter,
                     const std::array<std::uint32_t, 3>& nonce,
                     std::uint8_t* out, std::size_t nblocks) noexcept {
  std::size_t done = 0;
  while (done + kChaCha20Lanes <= nblocks) {
    chacha20_block_lanes(key, counter, nonce, out + 64 * done);
    counter += static_cast<std::uint32_t>(kChaCha20Lanes);
    done += kChaCha20Lanes;
  }
  for (; done < nblocks; ++done) {
    chacha20_block(key, counter++, nonce,
                   std::span<std::uint8_t, 64>(out + 64 * done, 64));
  }
}

void chacha20_xor_inplace(ByteView key32, ByteView nonce12,
                          std::uint32_t counter,
                          std::span<std::uint8_t> data) {
  if (key32.size() != 32) {
    throw std::invalid_argument("chacha20: key must be 32 bytes");
  }
  if (nonce12.size() != 12) {
    throw std::invalid_argument("chacha20: nonce must be 12 bytes");
  }
  std::array<std::uint32_t, 8> key{};
  for (int i = 0; i < 8; ++i) key[static_cast<std::size_t>(i)] = load_le32(key32.data() + 4 * i);
  std::array<std::uint32_t, 3> nonce{};
  for (int i = 0; i < 3; ++i) nonce[static_cast<std::size_t>(i)] = load_le32(nonce12.data() + 4 * i);

  // Keystream for up to kChaCha20Lanes blocks at a time; the tail block is
  // generated in full and used partially (CTR keystream is positional, so
  // over-generating changes no byte of the output).
  std::array<std::uint8_t, 64 * kChaCha20Lanes> keystream;
  for (std::size_t offset = 0; offset < data.size();
       offset += keystream.size()) {
    const std::size_t n =
        std::min<std::size_t>(keystream.size(), data.size() - offset);
    const std::size_t blocks = (n + 63) / 64;
    chacha20_blocks(key, counter, nonce, keystream.data(), blocks);
    counter += static_cast<std::uint32_t>(blocks);
    for (std::size_t i = 0; i < n; ++i) data[offset + i] ^= keystream[i];
  }
}

Bytes chacha20_xor(ByteView key32, ByteView nonce12, std::uint32_t counter,
                   ByteView data) {
  Bytes out(data.begin(), data.end());
  chacha20_xor_inplace(key32, nonce12, counter, out);
  return out;
}

ChaChaDrbg::ChaChaDrbg(ByteView seed) {
  const auto digest = Sha256::digest(seed);
  for (int i = 0; i < 8; ++i) {
    key_[static_cast<std::size_t>(i)] = load_le32(digest.data() + 4 * i);
  }
  nonce_ = {0x4e505544, 0x5242471a, 0x00000001};  // fixed domain tag
}

void ChaChaDrbg::refill() noexcept {
  chacha20_block(key_, counter_++, nonce_, block_);
  block_pos_ = 0;
}

void ChaChaDrbg::generate_into(std::span<std::uint8_t> out) {
  std::size_t written = 0;
  // Drain any partially consumed staging block first so the stream
  // position is exactly where the byte-at-a-time path would leave it.
  if (block_pos_ < 64 && written < out.size()) {
    const std::size_t n =
        std::min<std::size_t>(64 - block_pos_, out.size() - written);
    std::memcpy(out.data() + written, block_.data() + block_pos_, n);
    block_pos_ += n;
    written += n;
  }
  // Bulk middle: batched keystream straight into the caller's buffer,
  // skipping the staging copy entirely.
  const std::size_t whole = (out.size() - written) / 64;
  if (whole > 0) {
    chacha20_blocks(key_, counter_, nonce_, out.data() + written, whole);
    counter_ += static_cast<std::uint32_t>(whole);
    written += whole * 64;
  }
  if (written < out.size()) {
    refill();
    const std::size_t n = out.size() - written;
    std::memcpy(out.data() + written, block_.data(), n);
    block_pos_ = n;
  }
}

void ChaChaDrbg::keystream_xor(std::span<std::uint8_t> data) {
  std::size_t done = 0;
  if (block_pos_ < 64 && done < data.size()) {
    const std::size_t n =
        std::min<std::size_t>(64 - block_pos_, data.size() - done);
    for (std::size_t i = 0; i < n; ++i) data[done + i] ^= block_[block_pos_ + i];
    block_pos_ += n;
    done += n;
  }
  std::array<std::uint8_t, 64 * kChaCha20Lanes> keystream;
  while (data.size() - done >= 64) {
    const std::size_t whole =
        std::min<std::size_t>((data.size() - done) / 64, kChaCha20Lanes);
    chacha20_blocks(key_, counter_, nonce_, keystream.data(), whole);
    counter_ += static_cast<std::uint32_t>(whole);
    for (std::size_t i = 0; i < whole * 64; ++i) data[done + i] ^= keystream[i];
    done += whole * 64;
  }
  if (done < data.size()) {
    refill();
    const std::size_t n = data.size() - done;
    for (std::size_t i = 0; i < n; ++i) data[done + i] ^= block_[i];
    block_pos_ = n;
  }
}

Bytes ChaChaDrbg::generate(std::size_t n) {
  Bytes out(n);
  generate_into(out);
  return out;
}

std::uint64_t ChaChaDrbg::next_u64() {
  std::uint8_t buf[8];
  generate_into(buf);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
  return v;
}

std::uint64_t ChaChaDrbg::uniform(std::uint64_t bound) {
  if (bound == 0) {
    throw std::invalid_argument("ChaChaDrbg::uniform: bound must be > 0");
  }
  // Rejection sampling: accept only below the largest multiple of bound.
  const std::uint64_t limit =
      std::numeric_limits<std::uint64_t>::max() -
      (std::numeric_limits<std::uint64_t>::max() % bound);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit && limit != 0);
  return v % bound;
}

void ChaChaDrbg::reseed(ByteView extra) {
  Bytes material;
  material.reserve(32 + extra.size());
  for (int i = 0; i < 8; ++i) {
    std::uint8_t word[4];
    store_le32(word, key_[static_cast<std::size_t>(i)]);
    material.insert(material.end(), word, word + 4);
  }
  material.insert(material.end(), extra.begin(), extra.end());
  const auto digest = Sha256::digest(material);
  for (int i = 0; i < 8; ++i) {
    key_[static_cast<std::size_t>(i)] = load_le32(digest.data() + 4 * i);
  }
  counter_ = 0;
  block_pos_ = 64;
}

}  // namespace neuropuls::crypto
