#include "crypto/aes.hpp"

#include <cstring>

#include "crypto/hmac.hpp"

namespace neuropuls::crypto {

namespace {

// ---- GF(2^8) helpers -------------------------------------------------------

constexpr std::uint8_t xtime(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1B));
}

constexpr std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) p ^= a;
    a = xtime(a);
    b >>= 1;
  }
  return p;
}

// Multiplicative inverse in GF(2^8) by exponentiation (a^254).
constexpr std::uint8_t gf_inv(std::uint8_t a) {
  if (a == 0) return 0;
  std::uint8_t result = 1;
  // 254 = 0b11111110
  std::uint8_t base = a;
  int e = 254;
  while (e > 0) {
    if (e & 1) result = gf_mul(result, base);
    base = gf_mul(base, base);
    e >>= 1;
  }
  return result;
}

constexpr std::uint8_t sbox_entry(std::uint8_t x) {
  const std::uint8_t inv = gf_inv(x);
  // Affine transformation per FIPS 197.
  std::uint8_t y = inv;
  std::uint8_t out = inv;
  for (int i = 0; i < 4; ++i) {
    y = static_cast<std::uint8_t>((y << 1) | (y >> 7));
    out ^= y;
  }
  return static_cast<std::uint8_t>(out ^ 0x63);
}

constexpr std::array<std::uint8_t, 256> make_sbox() {
  std::array<std::uint8_t, 256> table{};
  for (int i = 0; i < 256; ++i) {
    table[static_cast<std::size_t>(i)] =
        sbox_entry(static_cast<std::uint8_t>(i));
  }
  return table;
}

constexpr std::array<std::uint8_t, 256> make_inv_sbox() {
  std::array<std::uint8_t, 256> inv{};
  constexpr auto sbox = make_sbox();
  for (int i = 0; i < 256; ++i) {
    inv[sbox[static_cast<std::size_t>(i)]] = static_cast<std::uint8_t>(i);
  }
  return inv;
}

constexpr auto kSbox = make_sbox();
constexpr auto kInvSbox = make_inv_sbox();

constexpr std::array<std::uint8_t, 11> kRcon = {0x00, 0x01, 0x02, 0x04, 0x08,
                                                0x10, 0x20, 0x40, 0x80, 0x1B,
                                                0x36};

void sub_bytes(std::uint8_t* s) noexcept {
  for (int i = 0; i < 16; ++i) s[i] = kSbox[s[i]];
}

void inv_sub_bytes(std::uint8_t* s) noexcept {
  for (int i = 0; i < 16; ++i) s[i] = kInvSbox[s[i]];
}

// State is column-major: s[4*c + r] is row r, column c.
void shift_rows(std::uint8_t* s) noexcept {
  std::uint8_t t[16];
  std::memcpy(t, s, 16);
  for (int r = 1; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      s[4 * c + r] = t[4 * ((c + r) % 4) + r];
    }
  }
}

void inv_shift_rows(std::uint8_t* s) noexcept {
  std::uint8_t t[16];
  std::memcpy(t, s, 16);
  for (int r = 1; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      s[4 * ((c + r) % 4) + r] = t[4 * c + r];
    }
  }
}

void mix_columns(std::uint8_t* s) noexcept {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = s + 4 * c;
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = static_cast<std::uint8_t>(gf_mul(a0, 2) ^ gf_mul(a1, 3) ^ a2 ^ a3);
    col[1] = static_cast<std::uint8_t>(a0 ^ gf_mul(a1, 2) ^ gf_mul(a2, 3) ^ a3);
    col[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ gf_mul(a2, 2) ^ gf_mul(a3, 3));
    col[3] = static_cast<std::uint8_t>(gf_mul(a0, 3) ^ a1 ^ a2 ^ gf_mul(a3, 2));
  }
}

void inv_mix_columns(std::uint8_t* s) noexcept {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = s + 4 * c;
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = static_cast<std::uint8_t>(gf_mul(a0, 14) ^ gf_mul(a1, 11) ^
                                       gf_mul(a2, 13) ^ gf_mul(a3, 9));
    col[1] = static_cast<std::uint8_t>(gf_mul(a0, 9) ^ gf_mul(a1, 14) ^
                                       gf_mul(a2, 11) ^ gf_mul(a3, 13));
    col[2] = static_cast<std::uint8_t>(gf_mul(a0, 13) ^ gf_mul(a1, 9) ^
                                       gf_mul(a2, 14) ^ gf_mul(a3, 11));
    col[3] = static_cast<std::uint8_t>(gf_mul(a0, 11) ^ gf_mul(a1, 13) ^
                                       gf_mul(a2, 9) ^ gf_mul(a3, 14));
  }
}

void add_round_key(std::uint8_t* s, const std::uint8_t* rk) noexcept {
  for (int i = 0; i < 16; ++i) s[i] ^= rk[i];
}

}  // namespace

Aes::Aes(ByteView key) {
  std::size_t nk;  // key length in 32-bit words
  switch (key.size()) {
    case 16: nk = 4; rounds_ = 10; break;
    case 24: nk = 6; rounds_ = 12; break;
    case 32: nk = 8; rounds_ = 14; break;
    default:
      throw std::invalid_argument("Aes: key must be 16, 24, or 32 bytes");
  }

  const std::size_t total_words = 4 * (rounds_ + 1);
  std::uint8_t* w = round_keys_.data();
  std::memcpy(w, key.data(), key.size());

  for (std::size_t i = nk; i < total_words; ++i) {
    std::uint8_t temp[4];
    std::memcpy(temp, w + 4 * (i - 1), 4);
    if (i % nk == 0) {
      // RotWord + SubWord + Rcon
      const std::uint8_t t0 = temp[0];
      temp[0] = static_cast<std::uint8_t>(kSbox[temp[1]] ^ kRcon[i / nk]);
      temp[1] = kSbox[temp[2]];
      temp[2] = kSbox[temp[3]];
      temp[3] = kSbox[t0];
    } else if (nk > 6 && i % nk == 4) {
      for (int j = 0; j < 4; ++j) temp[j] = kSbox[temp[j]];
    }
    for (int j = 0; j < 4; ++j) {
      w[4 * i + static_cast<std::size_t>(j)] =
          static_cast<std::uint8_t>(w[4 * (i - nk) + static_cast<std::size_t>(j)] ^ temp[j]);
    }
  }
}

void Aes::encrypt_block(
    std::span<std::uint8_t, kBlockSize> block) const noexcept {
  std::uint8_t* s = block.data();
  add_round_key(s, round_keys_.data());
  for (std::size_t round = 1; round < rounds_; ++round) {
    sub_bytes(s);
    shift_rows(s);
    mix_columns(s);
    add_round_key(s, round_keys_.data() + 16 * round);
  }
  sub_bytes(s);
  shift_rows(s);
  add_round_key(s, round_keys_.data() + 16 * rounds_);
}

void Aes::encrypt_blocks(std::uint8_t* blocks,
                         std::size_t nblocks) const noexcept {
  for (std::size_t b = 0; b < nblocks; ++b) {
    add_round_key(blocks + 16 * b, round_keys_.data());
  }
  for (std::size_t round = 1; round < rounds_; ++round) {
    const std::uint8_t* rk = round_keys_.data() + 16 * round;
    for (std::size_t b = 0; b < nblocks; ++b) {
      std::uint8_t* s = blocks + 16 * b;
      sub_bytes(s);
      shift_rows(s);
      mix_columns(s);
      add_round_key(s, rk);
    }
  }
  const std::uint8_t* rk_final = round_keys_.data() + 16 * rounds_;
  for (std::size_t b = 0; b < nblocks; ++b) {
    std::uint8_t* s = blocks + 16 * b;
    sub_bytes(s);
    shift_rows(s);
    add_round_key(s, rk_final);
  }
}

void Aes::decrypt_block(
    std::span<std::uint8_t, kBlockSize> block) const noexcept {
  std::uint8_t* s = block.data();
  add_round_key(s, round_keys_.data() + 16 * rounds_);
  for (std::size_t round = rounds_ - 1; round >= 1; --round) {
    inv_shift_rows(s);
    inv_sub_bytes(s);
    add_round_key(s, round_keys_.data() + 16 * round);
    inv_mix_columns(s);
  }
  inv_shift_rows(s);
  inv_sub_bytes(s);
  add_round_key(s, round_keys_.data());
}

std::uint8_t aes_sbox(std::uint8_t x) noexcept { return kSbox[x]; }

namespace {

// Number of CTR keystream blocks pipelined through encrypt_blocks per
// round trip; 8 blocks (128 bytes) covers typical record sizes in one or
// two batches without oversizing the stack buffer.
constexpr std::size_t kCtrPipeline = 8;

}  // namespace

Bytes aes_ctr(const Aes& cipher, ByteView nonce16, ByteView data) {
  if (nonce16.size() != Aes::kBlockSize) {
    throw std::invalid_argument("aes_ctr: nonce must be 16 bytes");
  }
  std::array<std::uint8_t, Aes::kBlockSize> counter{};
  std::memcpy(counter.data(), nonce16.data(), Aes::kBlockSize);

  Bytes out(data.begin(), data.end());
  std::array<std::uint8_t, Aes::kBlockSize * kCtrPipeline> keystream{};
  for (std::size_t offset = 0; offset < out.size();
       offset += keystream.size()) {
    const std::size_t n =
        std::min<std::size_t>(keystream.size(), out.size() - offset);
    const std::size_t blocks = (n + Aes::kBlockSize - 1) / Aes::kBlockSize;
    // Materialise the counter blocks, then pipeline them through the
    // cipher in one round-major pass. The tail block may be generated in
    // full and used partially — CTR keystream is positional.
    for (std::size_t b = 0; b < blocks; ++b) {
      std::memcpy(keystream.data() + Aes::kBlockSize * b, counter.data(),
                  Aes::kBlockSize);
      // Increment the low 32 bits big-endian.
      for (int i = 15; i >= 12; --i) {
        if (++counter[static_cast<std::size_t>(i)] != 0) break;
      }
    }
    cipher.encrypt_blocks(keystream.data(), blocks);
    for (std::size_t i = 0; i < n; ++i) out[offset + i] ^= keystream[i];
  }
  return out;
}

Bytes aes_ctr(ByteView key, ByteView nonce16, ByteView data) {
  return aes_ctr(Aes(key), nonce16, data);
}

namespace {

// Doubles a 128-bit value in GF(2^128) for CMAC subkey derivation.
void cmac_double(std::array<std::uint8_t, 16>& block) noexcept {
  const bool msb = (block[0] & 0x80) != 0;
  for (int i = 0; i < 15; ++i) {
    block[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(
        (block[static_cast<std::size_t>(i)] << 1) |
        (block[static_cast<std::size_t>(i) + 1] >> 7));
  }
  block[15] = static_cast<std::uint8_t>(block[15] << 1);
  if (msb) block[15] ^= 0x87;
}

}  // namespace

Bytes aes_cmac(ByteView key, ByteView data) {
  const Aes cipher(key);

  std::array<std::uint8_t, 16> l{};
  cipher.encrypt_block(l);
  std::array<std::uint8_t, 16> k1 = l;
  cmac_double(k1);
  std::array<std::uint8_t, 16> k2 = k1;
  cmac_double(k2);

  const std::size_t n_blocks =
      data.empty() ? 1 : (data.size() + 15) / 16;
  const bool last_complete = !data.empty() && data.size() % 16 == 0;

  std::array<std::uint8_t, 16> x{};
  for (std::size_t b = 0; b + 1 < n_blocks; ++b) {
    for (std::size_t i = 0; i < 16; ++i) x[i] ^= data[16 * b + i];
    cipher.encrypt_block(x);
  }

  std::array<std::uint8_t, 16> last{};
  const std::size_t tail_offset = 16 * (n_blocks - 1);
  if (last_complete) {
    for (std::size_t i = 0; i < 16; ++i) {
      last[i] = static_cast<std::uint8_t>(data[tail_offset + i] ^ k1[i]);
    }
  } else {
    const std::size_t tail_len = data.size() - tail_offset;
    for (std::size_t i = 0; i < tail_len; ++i) last[i] = data[tail_offset + i];
    last[tail_len] = 0x80;
    for (std::size_t i = 0; i < 16; ++i) last[i] ^= k2[i];
  }
  for (std::size_t i = 0; i < 16; ++i) x[i] ^= last[i];
  cipher.encrypt_block(x);

  return Bytes(x.begin(), x.end());
}

Bytes aes_ctr_then_mac_seal(ByteView key, ByteView nonce16,
                            ByteView plaintext) {
  // Independent sub-keys so the MAC key never touches the CTR keystream.
  const Bytes enc_key = hkdf(ByteView{}, key, bytes_of("np-enc"), 16);
  const Bytes mac_key = hkdf(ByteView{}, key, bytes_of("np-mac"), 16);

  Bytes frame(nonce16.begin(), nonce16.end());
  const Bytes ct = aes_ctr(enc_key, nonce16, plaintext);
  frame.insert(frame.end(), ct.begin(), ct.end());
  const Bytes tag = aes_cmac(mac_key, frame);
  frame.insert(frame.end(), tag.begin(), tag.end());
  return frame;
}

Bytes aes_ctr_then_mac_open(ByteView key, ByteView frame) {
  if (frame.size() < 32) {
    throw std::runtime_error("aes_ctr_then_mac_open: frame too short");
  }
  const Bytes enc_key = hkdf(ByteView{}, key, bytes_of("np-enc"), 16);
  const Bytes mac_key = hkdf(ByteView{}, key, bytes_of("np-mac"), 16);

  const ByteView body = frame.first(frame.size() - 16);
  const ByteView tag = frame.subspan(frame.size() - 16);
  const Bytes expected = aes_cmac(mac_key, body);
  if (!ct_equal(tag, expected)) {
    throw std::runtime_error("aes_ctr_then_mac_open: authentication failure");
  }
  const ByteView nonce = body.first(16);
  const ByteView ct = body.subspan(16);
  return aes_ctr(enc_key, nonce, ct);
}

}  // namespace neuropuls::crypto
