// Arbitrary-precision unsigned integers with Montgomery modular
// exponentiation.
//
// Section IV of the paper proposes an EKE-based Authentication and Key
// Agreement protocol on top of the PUF CRP ("see the CRP as a low-entropy
// shared secret … use the well-established and secure EKE protocol") and
// explicitly notes it is "computationally more expensive". The expensive
// part is modular exponentiation in a 2048-bit MODP group; this module
// provides exactly the arithmetic needed for that — no more — so the
// bench in `bench/bench_aka_eke` can quantify the cost gap against the
// lightweight HSC-IoT authentication.
//
// Limbs are 64-bit, little-endian (limb 0 is least significant). Values are
// kept normalised: no trailing zero limbs, and zero is an empty vector.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/bytes.hpp"

namespace neuropuls::crypto {

class BigUint {
 public:
  BigUint() = default;
  explicit BigUint(std::uint64_t value);

  /// Parses big-endian hex (whitespace tolerated, for readable constants).
  static BigUint from_hex(std::string_view hex);

  /// Parses a big-endian byte string (network/protocol order).
  static BigUint from_bytes_be(ByteView bytes);

  /// Big-endian bytes, left-padded with zeros to at least `min_len`.
  Bytes to_bytes_be(std::size_t min_len = 0) const;

  std::string to_hex() const;

  bool is_zero() const noexcept { return limbs_.empty(); }
  bool is_odd() const noexcept { return !limbs_.empty() && (limbs_[0] & 1); }

  /// Number of significant bits (0 for zero).
  std::size_t bit_length() const noexcept;

  /// Bit i, counting from the least-significant bit.
  bool bit(std::size_t i) const noexcept;

  // Comparison: negative / zero / positive like strcmp.
  static int compare(const BigUint& a, const BigUint& b) noexcept;
  bool operator==(const BigUint& other) const noexcept {
    return limbs_ == other.limbs_;
  }
  bool operator<(const BigUint& other) const noexcept {
    return compare(*this, other) < 0;
  }
  bool operator<=(const BigUint& other) const noexcept {
    return compare(*this, other) <= 0;
  }
  bool operator>(const BigUint& other) const noexcept {
    return compare(*this, other) > 0;
  }
  bool operator>=(const BigUint& other) const noexcept {
    return compare(*this, other) >= 0;
  }

  BigUint operator+(const BigUint& other) const;
  /// Throws std::underflow_error when other > *this.
  BigUint operator-(const BigUint& other) const;
  BigUint operator*(const BigUint& other) const;
  BigUint operator<<(std::size_t bits) const;
  BigUint operator>>(std::size_t bits) const;

  struct DivMod;
  /// Knuth algorithm D. Throws std::domain_error on division by zero.
  static DivMod divmod(const BigUint& numerator, const BigUint& denominator);

  BigUint operator%(const BigUint& modulus) const;
  BigUint operator/(const BigUint& denom) const;

  /// (this * other) mod modulus, via divmod (slow path; Montgomery below
  /// is the fast path for repeated work).
  BigUint mulmod(const BigUint& other, const BigUint& modulus) const;

  const std::vector<std::uint64_t>& limbs() const noexcept { return limbs_; }

 private:
  void normalize() noexcept;
  friend class MontgomeryCtx;
  std::vector<std::uint64_t> limbs_;
};

struct BigUint::DivMod {
  BigUint quotient;
  BigUint remainder;
};

inline BigUint BigUint::operator%(const BigUint& modulus) const {
  return divmod(*this, modulus).remainder;
}
inline BigUint BigUint::operator/(const BigUint& denom) const {
  return divmod(*this, denom).quotient;
}

/// Precomputed Montgomery context for a fixed odd modulus. Amortises the
/// setup across the thousands of multiplications inside one modexp.
class MontgomeryCtx {
 public:
  /// Throws std::invalid_argument unless modulus is odd and > 1.
  explicit MontgomeryCtx(BigUint modulus);

  /// base^exponent mod modulus (left-to-right square-and-multiply over
  /// Montgomery representatives).
  BigUint modexp(const BigUint& base, const BigUint& exponent) const;

  const BigUint& modulus() const noexcept { return modulus_; }

 private:
  // Montgomery product: returns a*b*R^-1 mod N, operands in Montgomery
  // form, all vectors sized n_ limbs.
  void mont_mul(const std::uint64_t* a, const std::uint64_t* b,
                std::uint64_t* out) const noexcept;

  BigUint to_mont(const BigUint& x) const;
  BigUint from_mont(const std::vector<std::uint64_t>& x) const;

  BigUint modulus_;
  std::vector<std::uint64_t> n_limbs_;  // modulus, padded to n_
  std::vector<std::uint64_t> r2_;       // R^2 mod N, n_ limbs
  std::uint64_t n0_inv_ = 0;            // -N^-1 mod 2^64
  std::size_t n_ = 0;                   // limb count
};

/// base^exponent mod modulus. Uses Montgomery for odd moduli and a
/// shift-and-reduce fallback for even ones.
BigUint modexp(const BigUint& base, const BigUint& exponent,
               const BigUint& modulus);

}  // namespace neuropuls::crypto
