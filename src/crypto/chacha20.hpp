// ChaCha20 stream cipher (RFC 8439) and a ChaCha-based deterministic
// random bit generator.
//
// The edge device modelled by NEUROPULS is resource constrained (§I), and
// ChaCha20 is the standard software-friendly cipher for that class of
// hardware: no tables, no GF(2^8) arithmetic, addition/rotation/XOR only.
// The benches in `bench/bench_crypto` compare it against AES-CTR to back
// the paper's "lightweight" requirement with numbers. The DRBG is used as
// the `RNG(·)` function of the Fig. 4 protocol (challenge derivation
// `c_{i+1} = RNG(r_i)`) and of the attestation random walk of §III-B —
// both sides must derive identical streams from a shared seed, which this
// deterministic construction guarantees.
#pragma once

#include <array>
#include <cstdint>

#include "crypto/bytes.hpp"

namespace neuropuls::crypto {

/// Raw ChaCha20 block function: fills `out` with the keystream block for
/// (key, counter, nonce).
void chacha20_block(const std::array<std::uint32_t, 8>& key,
                    std::uint32_t counter,
                    const std::array<std::uint32_t, 3>& nonce,
                    std::span<std::uint8_t, 64> out) noexcept;

/// Encrypts/decrypts `data` with ChaCha20 (RFC 8439: 32-byte key, 12-byte
/// nonce, 32-bit initial counter).
Bytes chacha20_xor(ByteView key32, ByteView nonce12, std::uint32_t counter,
                   ByteView data);

/// Deterministic random generator seeded from arbitrary bytes.
///
/// The seed is pre-whitened with SHA-256 so any entropy source — in
/// particular a raw PUF response — can seed it directly. Output is the
/// ChaCha20 keystream under that derived key, so two parties seeding with
/// the same bytes obtain the same stream (the property both Fig. 4's
/// challenge update and §III-B's memory walk rely on).
class ChaChaDrbg {
 public:
  explicit ChaChaDrbg(ByteView seed);

  /// Produces `n` pseudo-random bytes.
  Bytes generate(std::size_t n);

  /// Fills `out` with pseudo-random bytes.
  void generate_into(std::span<std::uint8_t> out);

  /// Uniform integer in [0, bound) by rejection sampling (no modulo bias).
  /// Throws std::invalid_argument when bound == 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Raw 64-bit output word.
  std::uint64_t next_u64();

  /// Mixes additional entropy into the state.
  void reseed(ByteView extra);

 private:
  void refill() noexcept;

  std::array<std::uint32_t, 8> key_{};
  std::array<std::uint32_t, 3> nonce_{};
  std::uint32_t counter_ = 0;
  std::array<std::uint8_t, 64> block_{};
  std::size_t block_pos_ = 64;  // exhausted; refill on first use
};

}  // namespace neuropuls::crypto
