// ChaCha20 stream cipher (RFC 8439) and a ChaCha-based deterministic
// random bit generator.
//
// The edge device modelled by NEUROPULS is resource constrained (§I), and
// ChaCha20 is the standard software-friendly cipher for that class of
// hardware: no tables, no GF(2^8) arithmetic, addition/rotation/XOR only.
// The benches in `bench/bench_crypto` compare it against AES-CTR to back
// the paper's "lightweight" requirement with numbers. The DRBG is used as
// the `RNG(·)` function of the Fig. 4 protocol (challenge derivation
// `c_{i+1} = RNG(r_i)`) and of the attestation random walk of §III-B —
// both sides must derive identical streams from a shared seed, which this
// deterministic construction guarantees.
#pragma once

#include <array>
#include <cstdint>

#include "crypto/bytes.hpp"

namespace neuropuls::crypto {

/// Raw ChaCha20 block function: fills `out` with the keystream block for
/// (key, counter, nonce).
void chacha20_block(const std::array<std::uint32_t, 8>& key,
                    std::uint32_t counter,
                    const std::array<std::uint32_t, 3>& nonce,
                    std::span<std::uint8_t, 64> out) noexcept;

/// Lane width of the batched keystream kernel: 4 blocks' round state is
/// interleaved word-by-word (x[i][lane]) so the 20 rounds run as plain
/// elementwise loops the auto-vectorizer maps onto SSE2/AVX2/NEON — the
/// same restrict-pointer pattern as src/common/simd.hpp, and integer-only,
/// so lane output is trivially bit-identical to the scalar block function.
inline constexpr std::size_t kChaCha20Lanes = 4;

/// Batched ChaCha20 keystream: fills `out` (64 * nblocks bytes) with the
/// keystream blocks for counters counter, counter+1, …, counter+nblocks-1.
/// Bit-identical to nblocks sequential chacha20_block calls (asserted in
/// tests/crypto/test_cipher.cpp); groups of kChaCha20Lanes blocks run the
/// interleaved-round kernel, the tail falls back to the scalar block.
void chacha20_blocks(const std::array<std::uint32_t, 8>& key,
                     std::uint32_t counter,
                     const std::array<std::uint32_t, 3>& nonce,
                     std::uint8_t* out, std::size_t nblocks) noexcept;

/// Encrypts/decrypts `data` with ChaCha20 (RFC 8439: 32-byte key, 12-byte
/// nonce, 32-bit initial counter).
Bytes chacha20_xor(ByteView key32, ByteView nonce12, std::uint32_t counter,
                   ByteView data);

/// In-place variant: XORs the keystream into `data` without an extra
/// buffer copy — the bulk path `SecureChannel::seal/open` runs records
/// through. Same keystream as chacha20_xor.
void chacha20_xor_inplace(ByteView key32, ByteView nonce12,
                          std::uint32_t counter, std::span<std::uint8_t> data);

/// Deterministic random generator seeded from arbitrary bytes.
///
/// The seed is pre-whitened with SHA-256 so any entropy source — in
/// particular a raw PUF response — can seed it directly. Output is the
/// ChaCha20 keystream under that derived key, so two parties seeding with
/// the same bytes obtain the same stream (the property both Fig. 4's
/// challenge update and §III-B's memory walk rely on).
class ChaChaDrbg {
 public:
  explicit ChaChaDrbg(ByteView seed);

  /// Produces `n` pseudo-random bytes.
  Bytes generate(std::size_t n);

  /// Fills `out` with pseudo-random bytes. Block-aligned spans bypass the
  /// internal 64-byte staging buffer and run the batched keystream kernel
  /// straight into `out`; the stream position advances exactly as the
  /// byte-at-a-time path would (mixed call patterns stay reproducible).
  void generate_into(std::span<std::uint8_t> out);

  /// XORs the next keystream bytes into `data` in place (bulk stream
  /// encryption without materialising the keystream). Consumes the same
  /// stream positions as generate_into over a span of equal length, so
  /// keystream_xor(x) == x ^ generate(x.size()) byte for byte.
  void keystream_xor(std::span<std::uint8_t> data);

  /// Uniform integer in [0, bound) by rejection sampling (no modulo bias).
  /// Throws std::invalid_argument when bound == 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Raw 64-bit output word.
  std::uint64_t next_u64();

  /// Mixes additional entropy into the state.
  void reseed(ByteView extra);

 private:
  void refill() noexcept;

  std::array<std::uint32_t, 8> key_{};
  std::array<std::uint32_t, 3> nonce_{};
  std::uint32_t counter_ = 0;
  std::array<std::uint8_t, 64> block_{};
  std::size_t block_pos_ = 64;  // exhausted; refill on first use
};

}  // namespace neuropuls::crypto
