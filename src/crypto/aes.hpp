// AES-128/192/256 (FIPS 197) with CTR mode and CMAC (NIST SP 800-38B).
//
// Table I of the paper specifies that the neural-network configuration,
// inputs, and outputs cross the hardware boundary only in encrypted form.
// The accelerator model (`src/accel`) uses AES-CTR for that bulk
// encryption and CMAC as an authentication option; the CTR-DRBG in
// `drbg.hpp` is also built on this block cipher.
//
// This is a portable table-free implementation: SubBytes uses a
// compile-time generated S-box, and MixColumns works on bytes, which keeps
// the code easy to audit at the cost of raw speed (the point here is
// correctness and modelling, not throughput records).
#pragma once

#include <array>
#include <cstdint>

#include "crypto/bytes.hpp"

namespace neuropuls::crypto {

/// An AES block cipher keyed at construction. Supports 128/192/256-bit keys.
class Aes {
 public:
  static constexpr std::size_t kBlockSize = 16;

  /// Throws std::invalid_argument unless key is 16, 24, or 32 bytes.
  explicit Aes(ByteView key);

  /// Encrypts one 16-byte block in place.
  void encrypt_block(std::span<std::uint8_t, kBlockSize> block) const noexcept;

  /// Encrypts `nblocks` contiguous 16-byte blocks in place, round-major:
  /// each round's SubBytes/ShiftRows/MixColumns/AddRoundKey pass runs
  /// across every block before the next round starts, so the independent
  /// block pipelines interleave (CTR keystream generation is exactly this
  /// shape). Bit-identical to nblocks encrypt_block calls.
  void encrypt_blocks(std::uint8_t* blocks, std::size_t nblocks) const noexcept;

  /// Decrypts one 16-byte block in place.
  void decrypt_block(std::span<std::uint8_t, kBlockSize> block) const noexcept;

  std::size_t rounds() const noexcept { return rounds_; }

 private:
  // Up to 15 round keys of 16 bytes each (AES-256).
  std::array<std::uint8_t, 16 * 15> round_keys_{};
  std::size_t rounds_ = 0;
};

/// AES-CTR stream transform. Encryption and decryption are the same
/// operation. `nonce` is the initial 16-byte counter block; the low 32 bits
/// are incremented big-endian per block (NIST SP 800-38A style).
Bytes aes_ctr(const Aes& cipher, ByteView nonce16, ByteView data);

/// Convenience overload constructing the cipher from a raw key.
Bytes aes_ctr(ByteView key, ByteView nonce16, ByteView data);

/// CMAC (OMAC1) over `data` with the given AES key. Returns a 16-byte tag.
Bytes aes_cmac(ByteView key, ByteView data);

/// The AES S-box lookup (exposed for the side-channel analyses, which
/// model first-round S-box leakage).
std::uint8_t aes_sbox(std::uint8_t x) noexcept;

/// Authenticated encryption used at the accelerator hardware boundary:
/// Encrypt-then-MAC with independent keys derived from `key` via HKDF.
/// Frame layout: nonce(16) || ciphertext || tag(16).
Bytes aes_ctr_then_mac_seal(ByteView key, ByteView nonce16, ByteView plaintext);

/// Opens a frame produced by aes_ctr_then_mac_seal. Throws
/// std::runtime_error on authentication failure or malformed frame.
Bytes aes_ctr_then_mac_open(ByteView key, ByteView frame);

}  // namespace neuropuls::crypto
