// Fast non-cryptographic PRNGs for the physical-modelling layers.
//
// Everything stochastic in the simulation stack — fabrication variation of
// microrings, SRAM cell skew, photodiode shot noise, thermal drift — draws
// from these generators with an explicit 64-bit seed, so every experiment
// in EXPERIMENTS.md regenerates bit-identically. They are deliberately
// separate from the cryptographic DRBG (`chacha20.hpp`): protocol code
// must never use these, and model code must never burn DRBG cycles.
//
// SplitMix64 seeds and derives independent sub-streams; xoshiro256** is the
// workhorse generator; Gaussian/Rayleigh/exponential variates are layered
// on top for the physical noise models.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>

namespace neuropuls::rng {

/// SplitMix64 step: advances the state and returns the next output.
/// Used to expand one user seed into many decorrelated stream seeds.
constexpr std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Derives the i-th sub-stream seed from a root seed. Distinct (seed, i)
/// pairs give decorrelated streams; used to give every device / component
/// in a simulated population its own generator.
constexpr std::uint64_t derive_seed(std::uint64_t root,
                                    std::uint64_t stream) noexcept {
  std::uint64_t s = root ^ (0x632be59bd9b4e019ULL * (stream + 1));
  std::uint64_t out = splitmix64_next(s);
  out ^= splitmix64_next(s);
  return out;
}

/// xoshiro256** 1.0 (Blackman & Vigna). Period 2^256 - 1.
class Xoshiro256 {
 public:
  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64_next(sm);
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1): 53 random mantissa bits.
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t uniform_int(std::uint64_t bound) noexcept {
    // Lemire's multiply-shift; fine for simulation purposes.
    const unsigned __int128 product =
        static_cast<unsigned __int128>(next()) * bound;
    return static_cast<std::uint64_t>(product >> 64);
  }

  /// Fair coin.
  bool coin() noexcept { return (next() & 1ULL) != 0; }

  /// Bernoulli with probability p of returning true.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  // Support for std::uniform_* style usage.
  using result_type = std::uint64_t;
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return ~static_cast<result_type>(0);
  }
  result_type operator()() noexcept { return next(); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// Standard-normal variates via Box–Muller with caching (deterministic,
/// unlike std::normal_distribution whose algorithm is
/// implementation-defined — determinism across toolchains matters for the
/// recorded experiment tables).
class Gaussian {
 public:
  explicit Gaussian(std::uint64_t seed) noexcept : rng_(seed) {}
  explicit Gaussian(Xoshiro256 rng) noexcept : rng_(rng) {}

  double next() noexcept {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = rng_.uniform();
    while (u1 <= 0.0) u1 = rng_.uniform();
    const double u2 = rng_.uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * std::numbers::pi * u2;
    cached_ = radius * std::sin(angle);
    has_cached_ = true;
    return radius * std::cos(angle);
  }

  /// N(mean, sigma^2) variate.
  double next(double mean, double sigma) noexcept {
    return mean + sigma * next();
  }

  /// Rayleigh(sigma) variate — used for scattering-amplitude models.
  double rayleigh(double sigma) noexcept {
    double u = rng_.uniform();
    while (u <= 0.0) u = rng_.uniform();
    return sigma * std::sqrt(-2.0 * std::log(u));
  }

  /// Exponential(rate) variate — used for photon arrival / failure models.
  double exponential(double rate) noexcept {
    double u = rng_.uniform();
    while (u <= 0.0) u = rng_.uniform();
    return -std::log(u) / rate;
  }

  /// Poisson(lambda) variate — used for shot-noise photon counting at low
  /// intensity. Knuth's method below 30, Gaussian approximation above.
  std::uint64_t poisson(double lambda) noexcept {
    if (lambda <= 0.0) return 0;
    if (lambda > 30.0) {
      const double v = next(lambda, std::sqrt(lambda));
      return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
    }
    const double threshold = std::exp(-lambda);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= rng_.uniform();
    } while (p > threshold);
    return k - 1;
  }

  Xoshiro256& engine() noexcept { return rng_; }

 private:
  Xoshiro256 rng_;
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace neuropuls::rng
