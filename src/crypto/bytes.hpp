// Byte-buffer helpers shared by every cryptographic primitive in the stack.
//
// All protocol-level code in NEUROPULS passes around `Bytes` (a plain
// std::vector<std::uint8_t>): message frames, PUF responses, keys, MAC tags.
// This header centralises the small amount of glue every module needs —
// hex encoding for logs and test vectors, constant-time comparison for tag
// checks, and XOR combination used by the Fig. 4 mutual-authentication
// protocol (`r_{i+1} ^ r_i`) and the code-offset fuzzy extractor.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace neuropuls::crypto {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// Zeroises `size` bytes at `data` through a compiler barrier, so the
/// store cannot be elided as dead even when the buffer is freed right
/// after (the behaviour a plain `memset` does NOT guarantee). This is the
/// one sanctioned wipe primitive — `ctlint` flags raw `memset` wipes.
void secure_wipe(void* data, std::size_t size) noexcept;

/// Wipes a whole vector of trivially-copyable elements, then empties it.
/// Covers the two buffer types secrets live in: `Bytes` key material and
/// `std::vector<double>` accelerator plaintext.
template <typename T>
  requires std::is_trivially_copyable_v<T>
void secure_wipe(std::vector<T>& buffer) noexcept {
  secure_wipe(buffer.data(), buffer.size() * sizeof(T));
  buffer.clear();
}

/// Encodes a byte buffer as lowercase hex (two chars per byte).
std::string to_hex(ByteView data);

/// Decodes a hex string (case-insensitive, even length) into bytes.
/// Throws std::invalid_argument on malformed input.
Bytes from_hex(std::string_view hex);

/// Constant-time equality check. Both operands are always scanned in full,
/// so the running time depends only on the lengths, never on the contents.
/// Unequal lengths compare unequal (length is considered public).
bool ct_equal(ByteView a, ByteView b) noexcept;

/// Element-wise XOR of two equal-length buffers.
/// Throws std::invalid_argument when lengths differ.
Bytes xor_bytes(ByteView a, ByteView b);

/// In-place XOR: dst ^= src. Throws when lengths differ.
void xor_into(std::span<std::uint8_t> dst, ByteView src);

/// Concatenates any number of buffers into a fresh one.
Bytes concat(std::initializer_list<ByteView> parts);

/// Interprets a string's bytes as a buffer (no copy of the terminator).
Bytes bytes_of(std::string_view text);

/// Serialises a 32/64-bit unsigned integer big-endian (network order).
void put_u32_be(std::span<std::uint8_t> out, std::uint32_t value) noexcept;
void put_u64_be(std::span<std::uint8_t> out, std::uint64_t value) noexcept;
std::uint32_t get_u32_be(ByteView in) noexcept;
std::uint64_t get_u64_be(ByteView in) noexcept;

/// Big-endian u64 appended to a buffer (protocol framing helper).
void append_u64_be(Bytes& out, std::uint64_t value);
void append_u32_be(Bytes& out, std::uint32_t value);

/// Fraction of positions at which two equal-length buffers differ,
/// counted bit-wise. This is the "fractional Hamming distance" the paper
/// quotes for intra/inter-device PUF statistics (Section II-A).
double fractional_hamming_distance(ByteView a, ByteView b);

/// Number of set bits across the buffer.
std::size_t popcount(ByteView data) noexcept;

}  // namespace neuropuls::crypto
