#include "crypto/ctr_drbg.hpp"

#include <cstring>
#include <stdexcept>

#include "crypto/aes.hpp"
#include "crypto/sha256.hpp"

namespace neuropuls::crypto {

CtrDrbg::CtrDrbg(ByteView entropy) {
  if (entropy.size() < kSeedLen) {
    throw std::invalid_argument("CtrDrbg: need >= 32 bytes of entropy");
  }
  // Fold arbitrary-length entropy to the seed length (a light stand-in
  // for the optional derivation function).
  const Bytes folded = Sha256::hash(entropy);
  update(folded);
}

void CtrDrbg::increment_v() {
  for (int i = 15; i >= 0; --i) {
    if (++v_[static_cast<std::size_t>(i)] != 0) break;
  }
}

void CtrDrbg::update(ByteView provided_data) {
  if (provided_data.size() != kSeedLen) {
    throw std::invalid_argument("CtrDrbg::update: data must be 32 bytes");
  }
  const Aes cipher(ByteView(key_.data(), key_.size()));
  std::array<std::uint8_t, kSeedLen> temp{};
  for (std::size_t block = 0; block < 2; ++block) {
    increment_v();
    std::array<std::uint8_t, 16> out = v_;
    cipher.encrypt_block(out);
    std::memcpy(temp.data() + 16 * block, out.data(), 16);
  }
  for (std::size_t i = 0; i < kSeedLen; ++i) temp[i] ^= provided_data[i];
  std::memcpy(key_.data(), temp.data(), 16);
  std::memcpy(v_.data(), temp.data() + 16, 16);
}

Bytes CtrDrbg::generate(std::size_t n) {
  if (reseed_counter_ >= kReseedInterval) {
    throw std::runtime_error("CtrDrbg: reseed required");
  }
  ++reseed_counter_;

  const Aes cipher(ByteView(key_.data(), key_.size()));
  Bytes out;
  out.reserve(n + 16);
  while (out.size() < n) {
    increment_v();
    std::array<std::uint8_t, 16> block = v_;
    cipher.encrypt_block(block);
    out.insert(out.end(), block.begin(), block.end());
  }
  out.resize(n);

  // Backtracking resistance: re-key with zero additional input.
  const Bytes zeros(kSeedLen, 0);
  update(zeros);
  return out;
}

void CtrDrbg::reseed(ByteView entropy) {
  Bytes material(key_.begin(), key_.end());
  material.insert(material.end(), v_.begin(), v_.end());
  material.insert(material.end(), entropy.begin(), entropy.end());
  update(Sha256::hash(material));
  reseed_counter_ = 0;
}

}  // namespace neuropuls::crypto
