#include "crypto/bytes.hpp"

#include <bit>
#include <cstring>

namespace neuropuls::crypto {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

void secure_wipe(void* data, std::size_t size) noexcept {
  if (data == nullptr || size == 0) return;
  // The asm barrier below makes the cleared bytes observable, so the
  // store cannot be removed by dead-store elimination.
  std::memset(data, 0, size);  // ctlint:allow(raw-memset-wipe) sanctioned primitive
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" : : "r"(data) : "memory");
#else
  // Fallback: a volatile pass the optimizer must preserve. This is a
  // dead-store-elimination barrier, not inter-thread synchronization.
  // ctlint:allow(atomic-misuse) wipe barrier, not synchronization
  volatile std::uint8_t* p = static_cast<volatile std::uint8_t*>(data);
  for (std::size_t i = 0; i < size; ++i) p[i] = 0;
#endif
}

std::string to_hex(ByteView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0F]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("from_hex: odd-length input");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_nibble(hex[i]);
    const int lo = hex_nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      throw std::invalid_argument("from_hex: non-hex character");
    }
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

bool ct_equal(ByteView a, ByteView b) noexcept {
  // Fold the length difference into the accumulator instead of returning
  // early so the scan length is a function of the inputs' sizes only.
  std::uint32_t acc = static_cast<std::uint32_t>(a.size() ^ b.size());
  const std::size_t n = a.size() < b.size() ? a.size() : b.size();
  for (std::size_t i = 0; i < n; ++i) {
    acc |= static_cast<std::uint32_t>(a[i] ^ b[i]);
  }
  return acc == 0;
}

Bytes xor_bytes(ByteView a, ByteView b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("xor_bytes: length mismatch");
  }
  Bytes out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] ^ b[i];
  return out;
}

void xor_into(std::span<std::uint8_t> dst, ByteView src) {
  if (dst.size() != src.size()) {
    throw std::invalid_argument("xor_into: length mismatch");
  }
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] ^= src[i];
}

Bytes concat(std::initializer_list<ByteView> parts) {
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  Bytes out;
  out.reserve(total);
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

Bytes bytes_of(std::string_view text) {
  return Bytes(text.begin(), text.end());
}

void put_u32_be(std::span<std::uint8_t> out, std::uint32_t value) noexcept {
  out[0] = static_cast<std::uint8_t>(value >> 24);
  out[1] = static_cast<std::uint8_t>(value >> 16);
  out[2] = static_cast<std::uint8_t>(value >> 8);
  out[3] = static_cast<std::uint8_t>(value);
}

void put_u64_be(std::span<std::uint8_t> out, std::uint64_t value) noexcept {
  for (int i = 0; i < 8; ++i) {
    out[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(value >> (56 - 8 * i));
  }
}

std::uint32_t get_u32_be(ByteView in) noexcept {
  return (static_cast<std::uint32_t>(in[0]) << 24) |
         (static_cast<std::uint32_t>(in[1]) << 16) |
         (static_cast<std::uint32_t>(in[2]) << 8) |
         static_cast<std::uint32_t>(in[3]);
}

std::uint64_t get_u64_be(ByteView in) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | in[static_cast<std::size_t>(i)];
  }
  return v;
}

void append_u64_be(Bytes& out, std::uint64_t value) {
  std::uint8_t buf[8];
  put_u64_be(buf, value);
  out.insert(out.end(), buf, buf + 8);
}

void append_u32_be(Bytes& out, std::uint32_t value) {
  std::uint8_t buf[4];
  put_u32_be(buf, value);
  out.insert(out.end(), buf, buf + 4);
}

double fractional_hamming_distance(ByteView a, ByteView b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("fractional_hamming_distance: length mismatch");
  }
  if (a.empty()) return 0.0;
  std::size_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    diff += static_cast<std::size_t>(
        std::popcount(static_cast<unsigned>(a[i] ^ b[i])));
  }
  return static_cast<double>(diff) / (8.0 * static_cast<double>(a.size()));
}

std::size_t popcount(ByteView data) noexcept {
  std::size_t n = 0;
  for (std::uint8_t b : data) {
    n += static_cast<std::size_t>(std::popcount(static_cast<unsigned>(b)));
  }
  return n;
}

}  // namespace neuropuls::crypto
