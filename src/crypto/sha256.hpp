// SHA-256 (FIPS 180-4).
//
// The attestation protocol of Section III-B chains
// `h_{i+1} = HASH(m_{i+1}, r_{i+1}, h_i)` over a random walk through device
// memory, and the mutual-authentication protocol (Fig. 4) derives MAC keys
// from PUF responses. Both are built on this implementation. It is a
// straightforward, dependency-free software SHA-256 with an incremental
// (init/update/final) interface so memory regions can be hashed without
// copying them into a contiguous buffer.
#pragma once

#include <array>
#include <cstdint>

#include "crypto/bytes.hpp"

namespace neuropuls::crypto {

/// Incremental SHA-256 context. Typical use:
///   Sha256 h;
///   h.update(chunk1); h.update(chunk2);
///   auto digest = h.finalize();
/// `finalize()` may be called exactly once; the context is then exhausted.
class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;

  Sha256() noexcept { reset(); }

  /// Restores the initial hash state so the context can be reused.
  void reset() noexcept;

  /// Absorbs `data` into the running hash.
  void update(ByteView data) noexcept;

  /// Pads, finishes, and returns the 32-byte digest.
  std::array<std::uint8_t, kDigestSize> finalize() noexcept;

  /// One-shot convenience.
  static std::array<std::uint8_t, kDigestSize> digest(ByteView data) noexcept;

  /// One-shot over scattered parts, equivalent to hashing their
  /// concatenation without splicing a buffer (the CRP snapshot trailer
  /// covers a header and an entry stream built separately).
  static std::array<std::uint8_t, kDigestSize> digest_parts(
      std::initializer_list<ByteView> parts) noexcept;

  /// One-shot convenience returning a heap buffer (protocol-friendly).
  static Bytes hash(ByteView data);

 private:
  void process_block(const std::uint8_t* block) noexcept;
  /// Streaming multi-block compression: runs `nblocks` consecutive
  /// 64-byte blocks through the compression function with the chaining
  /// state held in registers across blocks (one state load/store per call
  /// instead of per block). Bit-identical to nblocks process_block calls.
  void process_blocks(const std::uint8_t* data, std::size_t nblocks) noexcept;

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, kBlockSize> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

}  // namespace neuropuls::crypto
