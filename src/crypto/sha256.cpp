#include "crypto/sha256.hpp"

#include <bit>
#include <cstring>

namespace neuropuls::crypto {

namespace {

constexpr std::array<std::uint32_t, 64> kRoundConstants = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline std::uint32_t rotr(std::uint32_t x, int n) noexcept {
  return std::rotr(x, n);
}

inline std::uint32_t big_sigma0(std::uint32_t x) noexcept {
  return rotr(x, 2) ^ rotr(x, 13) ^ rotr(x, 22);
}
inline std::uint32_t big_sigma1(std::uint32_t x) noexcept {
  return rotr(x, 6) ^ rotr(x, 11) ^ rotr(x, 25);
}
inline std::uint32_t small_sigma0(std::uint32_t x) noexcept {
  return rotr(x, 7) ^ rotr(x, 18) ^ (x >> 3);
}
inline std::uint32_t small_sigma1(std::uint32_t x) noexcept {
  return rotr(x, 17) ^ rotr(x, 19) ^ (x >> 10);
}
inline std::uint32_t ch(std::uint32_t x, std::uint32_t y,
                        std::uint32_t z) noexcept {
  return (x & y) ^ (~x & z);
}
inline std::uint32_t maj(std::uint32_t x, std::uint32_t y,
                         std::uint32_t z) noexcept {
  return (x & y) ^ (x & z) ^ (y & z);
}

}  // namespace

void Sha256::reset() noexcept {
  state_ = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
            0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  buffer_len_ = 0;
  total_len_ = 0;
}

void Sha256::process_block(const std::uint8_t* block) noexcept {
  process_blocks(block, 1);
}

void Sha256::process_blocks(const std::uint8_t* data,
                            std::size_t nblocks) noexcept {
  // Chaining state lives in locals for the whole run; blocks feed forward
  // through s0..s7 without touching state_ until the end.
  std::uint32_t s0 = state_[0], s1 = state_[1], s2 = state_[2], s3 = state_[3];
  std::uint32_t s4 = state_[4], s5 = state_[5], s6 = state_[6], s7 = state_[7];

  for (std::size_t blk = 0; blk < nblocks; ++blk) {
    const std::uint8_t* block = data + blk * kBlockSize;
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
      w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
             (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
             (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
             static_cast<std::uint32_t>(block[4 * i + 3]);
    }
    for (int i = 16; i < 64; ++i) {
      w[i] = small_sigma1(w[i - 2]) + w[i - 7] + small_sigma0(w[i - 15]) +
             w[i - 16];
    }

    std::uint32_t a = s0, b = s1, c = s2, d = s3;
    std::uint32_t e = s4, f = s5, g = s6, h = s7;

    for (int i = 0; i < 64; ++i) {
      const std::uint32_t t1 =
          h + big_sigma1(e) + ch(e, f, g) + kRoundConstants[static_cast<std::size_t>(i)] + w[i];
      const std::uint32_t t2 = big_sigma0(a) + maj(a, b, c);
      h = g;
      g = f;
      f = e;
      e = d + t1;
      d = c;
      c = b;
      b = a;
      a = t1 + t2;
    }

    s0 += a;
    s1 += b;
    s2 += c;
    s3 += d;
    s4 += e;
    s5 += f;
    s6 += g;
    s7 += h;
  }

  state_ = {s0, s1, s2, s3, s4, s5, s6, s7};
}

void Sha256::update(ByteView data) noexcept {
  // An empty span may carry a null data() pointer, which memcpy must
  // never receive even with a zero length.
  if (data.empty()) return;
  total_len_ += data.size();
  std::size_t offset = 0;

  if (buffer_len_ > 0) {
    const std::size_t need = kBlockSize - buffer_len_;
    const std::size_t take = data.size() < need ? data.size() : need;
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset += take;
    if (buffer_len_ == kBlockSize) {
      process_block(buffer_.data());
      buffer_len_ = 0;
    }
  }

  const std::size_t whole = (data.size() - offset) / kBlockSize;
  if (whole > 0) {
    process_blocks(data.data() + offset, whole);
    offset += whole * kBlockSize;
  }

  if (offset < data.size()) {
    buffer_len_ = data.size() - offset;
    std::memcpy(buffer_.data(), data.data() + offset, buffer_len_);
  }
}

std::array<std::uint8_t, Sha256::kDigestSize> Sha256::finalize() noexcept {
  const std::uint64_t bit_len = total_len_ * 8;

  // Append 0x80 then zero-pad to 56 mod 64, then the 64-bit length.
  std::uint8_t pad[kBlockSize * 2] = {0x80};
  const std::size_t rem = static_cast<std::size_t>(total_len_ % kBlockSize);
  const std::size_t pad_len =
      (rem < 56) ? (56 - rem) : (kBlockSize + 56 - rem);
  std::uint8_t len_be[8];
  put_u64_be(len_be, bit_len);

  update(ByteView(pad, pad_len));
  // update() adjusted total_len_, but padding bytes must not count; the
  // length word was computed beforehand so this is only cosmetic.
  update(ByteView(len_be, 8));

  std::array<std::uint8_t, kDigestSize> out{};
  for (int i = 0; i < 8; ++i) {
    put_u32_be(std::span<std::uint8_t>(out.data() + 4 * i, 4),
               state_[static_cast<std::size_t>(i)]);
  }
  return out;
}

std::array<std::uint8_t, Sha256::kDigestSize> Sha256::digest(
    ByteView data) noexcept {
  Sha256 h;
  h.update(data);
  return h.finalize();
}

std::array<std::uint8_t, Sha256::kDigestSize> Sha256::digest_parts(
    std::initializer_list<ByteView> parts) noexcept {
  Sha256 h;
  for (const ByteView part : parts) h.update(part);
  return h.finalize();
}

Bytes Sha256::hash(ByteView data) {
  const auto d = digest(data);
  return Bytes(d.begin(), d.end());
}

}  // namespace neuropuls::crypto
