#include "crypto/dh.hpp"

#include <stdexcept>

namespace neuropuls::crypto {

namespace {

// RFC 3526 section 2 — 1536-bit MODP group, generator 2.
constexpr const char* kModp1536Hex =
    "FFFFFFFF FFFFFFFF C90FDAA2 2168C234 C4C6628B 80DC1CD1"
    "29024E08 8A67CC74 020BBEA6 3B139B22 514A0879 8E3404DD"
    "EF9519B3 CD3A431B 302B0A6D F25F1437 4FE1356D 6D51C245"
    "E485B576 625E7EC6 F44C42E9 A637ED6B 0BFF5CB6 F406B7ED"
    "EE386BFB 5A899FA5 AE9F2411 7C4B1FE6 49286651 ECE45B3D"
    "C2007CB8 A163BF05 98DA4836 1C55D39A 69163FA8 FD24CF5F"
    "83655D23 DCA3AD96 1C62F356 208552BB 9ED52907 7096966D"
    "670C354E 4ABC9804 F1746C08 CA237327 FFFFFFFF FFFFFFFF";

// RFC 3526 section 3 — 2048-bit MODP group, generator 2.
constexpr const char* kModp2048Hex =
    "FFFFFFFF FFFFFFFF C90FDAA2 2168C234 C4C6628B 80DC1CD1"
    "29024E08 8A67CC74 020BBEA6 3B139B22 514A0879 8E3404DD"
    "EF9519B3 CD3A431B 302B0A6D F25F1437 4FE1356D 6D51C245"
    "E485B576 625E7EC6 F44C42E9 A637ED6B 0BFF5CB6 F406B7ED"
    "EE386BFB 5A899FA5 AE9F2411 7C4B1FE6 49286651 ECE45B3D"
    "C2007CB8 A163BF05 98DA4836 1C55D39A 69163FA8 FD24CF5F"
    "83655D23 DCA3AD96 1C62F356 208552BB 9ED52907 7096966D"
    "670C354E 4ABC9804 F1746C08 CA18217C 32905E46 2E36CE3B"
    "E39E772C 180E8603 9B2783A2 EC07A28F B5C55DF0 6F4C52C9"
    "DE2BCBF6 95581718 3995497C EA956AE5 15D22618 98FA0510"
    "15728E5A 8AACAA68 FFFFFFFF FFFFFFFF";

DhGroup make_group(const char* hex) {
  DhGroup g;
  g.prime = BigUint::from_hex(hex);
  g.generator = BigUint(2);
  g.prime_bytes = (g.prime.bit_length() + 7) / 8;
  return g;
}

}  // namespace

const DhGroup& DhGroup::modp1536() {
  static const DhGroup group = make_group(kModp1536Hex);
  return group;
}

const DhGroup& DhGroup::modp2048() {
  static const DhGroup group = make_group(kModp2048Hex);
  return group;
}

DhKeyPair dh_generate(const DhGroup& group, ChaChaDrbg& rng) {
  // 256-bit short exponent (>= twice the 128-bit target security level).
  Bytes exponent_bytes = rng.generate(32);
  exponent_bytes[0] |= 0x80;  // force full length
  exponent_bytes[31] |= 0x01; // never zero
  DhKeyPair pair;
  pair.secret = BigUint::from_bytes_be(exponent_bytes);
  pair.public_value = modexp(group.generator, pair.secret, group.prime);
  return pair;
}

bool dh_public_is_valid(const DhGroup& group, const BigUint& peer_public) {
  // Reject 0, 1 and p-1 (order-1/order-2 elements) and out-of-range values.
  if (peer_public <= BigUint(1)) return false;
  const BigUint p_minus_1 = group.prime - BigUint(1);
  return peer_public < p_minus_1;
}

Bytes dh_shared_secret(const DhGroup& group, const BigUint& secret,
                       const BigUint& peer_public) {
  if (!dh_public_is_valid(group, peer_public)) {
    throw std::runtime_error("dh_shared_secret: invalid peer public value");
  }
  const BigUint shared = modexp(peer_public, secret, group.prime);
  return shared.to_bytes_be(group.prime_bytes);
}

}  // namespace neuropuls::crypto
