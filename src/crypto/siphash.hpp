// SipHash-2-4 (Aumasson & Bernstein) — a keyed 64-bit PRF.
//
// The system simulator (`src/sim`) tags bus transactions and memory pages
// with short keyed fingerprints where a 32-byte HMAC would distort the
// latency model; SipHash is the standard primitive for that niche. It is
// *not* used where the protocols require a full MAC (those use
// HMAC-SHA256 / CMAC).
#pragma once

#include <array>
#include <cstdint>

#include "crypto/bytes.hpp"

namespace neuropuls::crypto {

/// SipHash-2-4 with a 128-bit key. Returns the 64-bit tag.
std::uint64_t siphash24(const std::array<std::uint8_t, 16>& key,
                        ByteView data) noexcept;

}  // namespace neuropuls::crypto
