// HMAC-SHA256 (RFC 2104 / FIPS 198-1) and HKDF (RFC 5869).
//
// The Fig. 4 mutual-authentication protocol signs every message with
// `MAC(data, key)` where the key is the current PUF response r_i; HKDF is
// used by the key-management service to derive independent sub-keys
// (encryption, MAC, session) from a single fuzzy-extractor output.
#pragma once

#include "crypto/bytes.hpp"
#include "crypto/sha256.hpp"

namespace neuropuls::crypto {

/// Computes HMAC-SHA256(key, data). Any key length is accepted; keys longer
/// than the block size are hashed first per the RFC.
Bytes hmac_sha256(ByteView key, ByteView data);

/// Incremental HMAC for multi-part messages (mirrors Sha256's interface).
class HmacSha256 {
 public:
  explicit HmacSha256(ByteView key);

  void update(ByteView data) noexcept { inner_.update(data); }
  Bytes finalize();

 private:
  Sha256 inner_;
  std::array<std::uint8_t, Sha256::kBlockSize> opad_key_{};
};

/// HKDF-Extract: PRK = HMAC(salt, ikm).
Bytes hkdf_extract(ByteView salt, ByteView ikm);

/// HKDF-Expand: derives `length` bytes from PRK with context string `info`.
/// Throws std::invalid_argument when length > 255 * 32.
Bytes hkdf_expand(ByteView prk, ByteView info, std::size_t length);

/// Convenience: extract-then-expand.
Bytes hkdf(ByteView salt, ByteView ikm, ByteView info, std::size_t length);

}  // namespace neuropuls::crypto
