// Finite-field Diffie–Hellman over RFC 3526 MODP groups.
//
// This is the public-key half of the EKE Authentication and Key Agreement
// protocol of Section IV: the CRP acts as a low-entropy shared secret that
// encrypts the DH public values, and the DH exchange supplies the
// high-entropy session key with perfect forward secrecy. Group 14
// (2048-bit) is the default; the smaller 1536-bit group 5 is exposed for
// the cost-scaling sweep in `bench/bench_aka_eke`.
#pragma once

#include <cstdint>

#include "crypto/bignum.hpp"
#include "crypto/bytes.hpp"
#include "crypto/chacha20.hpp"

namespace neuropuls::crypto {

/// A fixed DH group (safe prime p, generator g).
struct DhGroup {
  BigUint prime;
  BigUint generator;
  std::size_t prime_bytes;  // serialised public-value length

  /// RFC 3526 group 5: 1536-bit MODP.
  static const DhGroup& modp1536();
  /// RFC 3526 group 14: 2048-bit MODP.
  static const DhGroup& modp2048();
};

/// One party's ephemeral DH key pair.
struct DhKeyPair {
  BigUint secret;  // x
  BigUint public_value;  // g^x mod p
};

/// Samples an ephemeral key pair; the secret has ~2x the bits of the
/// target security level (256-bit exponent for the 2048-bit group is the
/// conventional short-exponent optimisation).
DhKeyPair dh_generate(const DhGroup& group, ChaChaDrbg& rng);

/// Computes the shared secret (peer_public ^ secret mod p) and returns it
/// serialised big-endian at the group's fixed width.
/// Throws std::runtime_error on an out-of-range or degenerate public value
/// (0, 1, or p-1 — small-subgroup/identity elements).
Bytes dh_shared_secret(const DhGroup& group, const BigUint& secret,
                       const BigUint& peer_public);

/// Validates a peer public value without computing the secret.
bool dh_public_is_valid(const DhGroup& group, const BigUint& peer_public);

}  // namespace neuropuls::crypto
