#include "crypto/siphash.hpp"

#include <bit>

namespace neuropuls::crypto {

namespace {

inline std::uint64_t load_le64(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

inline void sip_round(std::uint64_t& v0, std::uint64_t& v1, std::uint64_t& v2,
                      std::uint64_t& v3) noexcept {
  v0 += v1;
  v1 = std::rotl(v1, 13);
  v1 ^= v0;
  v0 = std::rotl(v0, 32);
  v2 += v3;
  v3 = std::rotl(v3, 16);
  v3 ^= v2;
  v0 += v3;
  v3 = std::rotl(v3, 21);
  v3 ^= v0;
  v2 += v1;
  v1 = std::rotl(v1, 17);
  v1 ^= v2;
  v2 = std::rotl(v2, 32);
}

}  // namespace

std::uint64_t siphash24(const std::array<std::uint8_t, 16>& key,
                        ByteView data) noexcept {
  const std::uint64_t k0 = load_le64(key.data());
  const std::uint64_t k1 = load_le64(key.data() + 8);

  std::uint64_t v0 = 0x736f6d6570736575ULL ^ k0;
  std::uint64_t v1 = 0x646f72616e646f6dULL ^ k1;
  std::uint64_t v2 = 0x6c7967656e657261ULL ^ k0;
  std::uint64_t v3 = 0x7465646279746573ULL ^ k1;

  const std::size_t full_blocks = data.size() / 8;
  for (std::size_t i = 0; i < full_blocks; ++i) {
    const std::uint64_t m = load_le64(data.data() + 8 * i);
    v3 ^= m;
    sip_round(v0, v1, v2, v3);
    sip_round(v0, v1, v2, v3);
    v0 ^= m;
  }

  // Final block: remaining bytes plus the length in the top byte.
  std::uint64_t last = static_cast<std::uint64_t>(data.size() & 0xFF) << 56;
  const std::size_t tail = data.size() & 7;
  for (std::size_t i = 0; i < tail; ++i) {
    last |= static_cast<std::uint64_t>(data[8 * full_blocks + i]) << (8 * i);
  }
  v3 ^= last;
  sip_round(v0, v1, v2, v3);
  sip_round(v0, v1, v2, v3);
  v0 ^= last;

  v2 ^= 0xFF;
  sip_round(v0, v1, v2, v3);
  sip_round(v0, v1, v2, v3);
  sip_round(v0, v1, v2, v3);
  sip_round(v0, v1, v2, v3);

  return v0 ^ v1 ^ v2 ^ v3;
}

}  // namespace neuropuls::crypto
