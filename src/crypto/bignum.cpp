#include "crypto/bignum.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace neuropuls::crypto {

using u128 = unsigned __int128;

BigUint::BigUint(std::uint64_t value) {
  if (value != 0) limbs_.push_back(value);
}

void BigUint::normalize() noexcept {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUint BigUint::from_hex(std::string_view hex) {
  BigUint out;
  for (char c : hex) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    int nibble;
    if (c >= '0' && c <= '9') nibble = c - '0';
    else if (c >= 'a' && c <= 'f') nibble = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') nibble = c - 'A' + 10;
    else throw std::invalid_argument("BigUint::from_hex: non-hex character");
    out = (out << 4) + BigUint(static_cast<std::uint64_t>(nibble));
  }
  return out;
}

BigUint BigUint::from_bytes_be(ByteView bytes) {
  BigUint out;
  out.limbs_.assign((bytes.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    // Byte i (from the most significant end) lands at bit position
    // 8*(size-1-i) from the least significant end.
    const std::size_t bit = 8 * (bytes.size() - 1 - i);
    out.limbs_[bit / 64] |= static_cast<std::uint64_t>(bytes[i])
                            << (bit % 64);
  }
  out.normalize();
  return out;
}

Bytes BigUint::to_bytes_be(std::size_t min_len) const {
  const std::size_t bits = bit_length();
  const std::size_t natural = (bits + 7) / 8;
  const std::size_t len = std::max(natural, std::max<std::size_t>(min_len, 1));
  Bytes out(len, 0);
  for (std::size_t i = 0; i < natural; ++i) {
    const std::size_t bit = 8 * i;
    out[len - 1 - i] =
        static_cast<std::uint8_t>(limbs_[bit / 64] >> (bit % 64));
  }
  return out;
}

std::string BigUint::to_hex() const {
  if (limbs_.empty()) return "0";
  static const char* digits = "0123456789abcdef";
  std::string out;
  bool leading = true;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      const int nibble = static_cast<int>((limbs_[i] >> shift) & 0xF);
      if (leading && nibble == 0) continue;
      leading = false;
      out.push_back(digits[nibble]);
    }
  }
  return out;
}

std::size_t BigUint::bit_length() const noexcept {
  if (limbs_.empty()) return 0;
  const std::uint64_t top = limbs_.back();
  std::size_t bits = (limbs_.size() - 1) * 64;
  return bits + (64 - static_cast<std::size_t>(__builtin_clzll(top)));
}

bool BigUint::bit(std::size_t i) const noexcept {
  const std::size_t limb = i / 64;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 64)) & 1;
}

int BigUint::compare(const BigUint& a, const BigUint& b) noexcept {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigUint BigUint::operator+(const BigUint& other) const {
  BigUint out;
  const std::size_t n = std::max(limbs_.size(), other.limbs_.size());
  out.limbs_.assign(n + 1, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t a = i < limbs_.size() ? limbs_[i] : 0;
    const std::uint64_t b = i < other.limbs_.size() ? other.limbs_[i] : 0;
    const u128 sum = static_cast<u128>(a) + b + carry;
    out.limbs_[i] = static_cast<std::uint64_t>(sum);
    carry = static_cast<std::uint64_t>(sum >> 64);
  }
  out.limbs_[n] = carry;
  out.normalize();
  return out;
}

BigUint BigUint::operator-(const BigUint& other) const {
  if (*this < other) {
    throw std::underflow_error("BigUint subtraction underflow");
  }
  BigUint out;
  out.limbs_.assign(limbs_.size(), 0);
  std::uint64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t b = i < other.limbs_.size() ? other.limbs_[i] : 0;
    const u128 lhs = static_cast<u128>(limbs_[i]);
    const u128 rhs = static_cast<u128>(b) + borrow;
    if (lhs >= rhs) {
      out.limbs_[i] = static_cast<std::uint64_t>(lhs - rhs);
      borrow = 0;
    } else {
      out.limbs_[i] =
          static_cast<std::uint64_t>((static_cast<u128>(1) << 64) + lhs - rhs);
      borrow = 1;
    }
  }
  out.normalize();
  return out;
}

BigUint BigUint::operator*(const BigUint& other) const {
  if (limbs_.empty() || other.limbs_.empty()) return BigUint{};
  BigUint out;
  out.limbs_.assign(limbs_.size() + other.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < other.limbs_.size(); ++j) {
      const u128 cur = static_cast<u128>(limbs_[i]) * other.limbs_[j] +
                       out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    out.limbs_[i + other.limbs_.size()] += carry;
  }
  out.normalize();
  return out;
}

BigUint BigUint::operator<<(std::size_t bits) const {
  if (limbs_.empty() || bits == 0) {
    BigUint out = *this;
    return out;
  }
  const std::size_t limb_shift = bits / 64;
  const std::size_t bit_shift = bits % 64;
  BigUint out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    out.limbs_[i + limb_shift] |= limbs_[i] << bit_shift;
    if (bit_shift != 0) {
      out.limbs_[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
    }
  }
  out.normalize();
  return out;
}

BigUint BigUint::operator>>(std::size_t bits) const {
  const std::size_t limb_shift = bits / 64;
  if (limb_shift >= limbs_.size()) return BigUint{};
  const std::size_t bit_shift = bits % 64;
  BigUint out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    out.limbs_[i] = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      out.limbs_[i] |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
    }
  }
  out.normalize();
  return out;
}

BigUint::DivMod BigUint::divmod(const BigUint& numerator,
                                const BigUint& denominator) {
  if (denominator.is_zero()) {
    throw std::domain_error("BigUint division by zero");
  }
  if (numerator < denominator) {
    return {BigUint{}, numerator};
  }
  if (denominator.limbs_.size() == 1) {
    // Single-limb fast path.
    const std::uint64_t d = denominator.limbs_[0];
    BigUint quotient;
    quotient.limbs_.assign(numerator.limbs_.size(), 0);
    u128 rem = 0;
    for (std::size_t i = numerator.limbs_.size(); i-- > 0;) {
      const u128 cur = (rem << 64) | numerator.limbs_[i];
      quotient.limbs_[i] = static_cast<std::uint64_t>(cur / d);
      rem = cur % d;
    }
    quotient.normalize();
    return {quotient, BigUint(static_cast<std::uint64_t>(rem))};
  }

  // Knuth algorithm D. Normalise so the divisor's top limb has its MSB set.
  const std::size_t shift =
      static_cast<std::size_t>(__builtin_clzll(denominator.limbs_.back()));
  const BigUint u = numerator << shift;
  const BigUint v = denominator << shift;
  const std::size_t n = v.limbs_.size();
  const std::size_t m = u.limbs_.size() >= n ? u.limbs_.size() - n : 0;

  std::vector<std::uint64_t> un(u.limbs_);
  un.resize(u.limbs_.size() + 1, 0);
  const std::vector<std::uint64_t>& vn = v.limbs_;

  BigUint quotient;
  quotient.limbs_.assign(m + 1, 0);

  for (std::size_t j = m + 1; j-- > 0;) {
    // Estimate the quotient digit from the top two limbs.
    const u128 top = (static_cast<u128>(un[j + n]) << 64) | un[j + n - 1];
    u128 qhat = top / vn[n - 1];
    u128 rhat = top % vn[n - 1];
    while (qhat > ~static_cast<std::uint64_t>(0) ||
           (n >= 2 &&
            qhat * vn[n - 2] > ((rhat << 64) | un[j + n - 2]))) {
      --qhat;
      rhat += vn[n - 1];
      if (rhat > ~static_cast<std::uint64_t>(0)) break;
    }

    // Multiply-subtract qhat * v from u[j .. j+n].
    u128 borrow = 0;
    u128 carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const u128 product = qhat * vn[i] + carry;
      carry = product >> 64;
      const std::uint64_t p_lo = static_cast<std::uint64_t>(product);
      const u128 sub = static_cast<u128>(un[i + j]) - p_lo - borrow;
      un[i + j] = static_cast<std::uint64_t>(sub);
      borrow = (sub >> 64) ? 1 : 0;
    }
    const u128 sub = static_cast<u128>(un[j + n]) - carry - borrow;
    un[j + n] = static_cast<std::uint64_t>(sub);

    if (sub >> 64) {
      // qhat was one too large; add v back once.
      --qhat;
      u128 c = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const u128 s = static_cast<u128>(un[i + j]) + vn[i] + c;
        un[i + j] = static_cast<std::uint64_t>(s);
        c = s >> 64;
      }
      un[j + n] += static_cast<std::uint64_t>(c);
    }
    quotient.limbs_[j] = static_cast<std::uint64_t>(qhat);
  }
  quotient.normalize();

  BigUint remainder;
  remainder.limbs_.assign(un.begin(), un.begin() + static_cast<std::ptrdiff_t>(n));
  remainder.normalize();
  remainder = remainder >> shift;
  return {quotient, remainder};
}

BigUint BigUint::mulmod(const BigUint& other, const BigUint& modulus) const {
  return (*this * other) % modulus;
}

// ---- Montgomery ------------------------------------------------------------

namespace {

// -N^-1 mod 2^64 via Newton iteration on the low limb.
std::uint64_t neg_inverse64(std::uint64_t n) {
  std::uint64_t inv = 1;
  for (int i = 0; i < 6; ++i) {
    inv *= 2 - n * inv;
  }
  return ~inv + 1;  // negate mod 2^64
}

}  // namespace

MontgomeryCtx::MontgomeryCtx(BigUint modulus) : modulus_(std::move(modulus)) {
  if (!modulus_.is_odd() || modulus_ <= BigUint(1)) {
    throw std::invalid_argument("MontgomeryCtx: modulus must be odd and > 1");
  }
  n_ = modulus_.limbs().size();
  n_limbs_ = modulus_.limbs();
  n_limbs_.resize(n_, 0);
  n0_inv_ = neg_inverse64(n_limbs_[0]);

  // R^2 mod N with R = 2^(64*n): one general reduction at setup time.
  const BigUint r2 = (BigUint(1) << (2 * 64 * n_)) % modulus_;
  r2_ = r2.limbs();
  r2_.resize(n_, 0);
}

void MontgomeryCtx::mont_mul(const std::uint64_t* a, const std::uint64_t* b,
                             std::uint64_t* out) const noexcept {
  // CIOS (coarsely integrated operand scanning).
  std::vector<std::uint64_t> t(n_ + 2, 0);
  for (std::size_t i = 0; i < n_; ++i) {
    // t += a[i] * b
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < n_; ++j) {
      const u128 cur = static_cast<u128>(a[i]) * b[j] + t[j] + carry;
      t[j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    u128 s = static_cast<u128>(t[n_]) + carry;
    t[n_] = static_cast<std::uint64_t>(s);
    t[n_ + 1] = static_cast<std::uint64_t>(s >> 64);

    // m = t[0] * n0_inv mod 2^64; t += m * N; t >>= 64
    const std::uint64_t m = t[0] * n0_inv_;
    carry = 0;
    {
      const u128 cur = static_cast<u128>(m) * n_limbs_[0] + t[0];
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    for (std::size_t j = 1; j < n_; ++j) {
      const u128 cur = static_cast<u128>(m) * n_limbs_[j] + t[j] + carry;
      t[j - 1] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    s = static_cast<u128>(t[n_]) + carry;
    t[n_ - 1] = static_cast<std::uint64_t>(s);
    t[n_] = t[n_ + 1] + static_cast<std::uint64_t>(s >> 64);
    t[n_ + 1] = 0;
  }

  // Conditional final subtraction of N.
  bool ge = t[n_] != 0;
  if (!ge) {
    ge = true;
    for (std::size_t i = n_; i-- > 0;) {
      if (t[i] != n_limbs_[i]) {
        ge = t[i] > n_limbs_[i];
        break;
      }
    }
  }
  if (ge) {
    std::uint64_t borrow = 0;
    for (std::size_t i = 0; i < n_; ++i) {
      const u128 sub =
          static_cast<u128>(t[i]) - n_limbs_[i] - borrow;
      out[i] = static_cast<std::uint64_t>(sub);
      borrow = (sub >> 64) ? 1 : 0;
    }
  } else {
    std::copy(t.begin(), t.begin() + static_cast<std::ptrdiff_t>(n_), out);
  }
}

BigUint MontgomeryCtx::to_mont(const BigUint& x) const {
  std::vector<std::uint64_t> xv = (x % modulus_).limbs();
  xv.resize(n_, 0);
  std::vector<std::uint64_t> out(n_, 0);
  mont_mul(xv.data(), r2_.data(), out.data());
  BigUint result;
  result.limbs_ = out;
  result.normalize();
  return result;
}

BigUint MontgomeryCtx::from_mont(const std::vector<std::uint64_t>& x) const {
  std::vector<std::uint64_t> one(n_, 0);
  one[0] = 1;
  std::vector<std::uint64_t> out(n_, 0);
  mont_mul(x.data(), one.data(), out.data());
  BigUint result;
  result.limbs_ = out;
  result.normalize();
  return result;
}

BigUint MontgomeryCtx::modexp(const BigUint& base,
                              const BigUint& exponent) const {
  if (exponent.is_zero()) return BigUint(1) % modulus_;

  std::vector<std::uint64_t> acc = to_mont(BigUint(1)).limbs();
  acc.resize(n_, 0);
  std::vector<std::uint64_t> b = to_mont(base).limbs();
  b.resize(n_, 0);
  std::vector<std::uint64_t> tmp(n_, 0);

  const std::size_t bits = exponent.bit_length();
  for (std::size_t i = bits; i-- > 0;) {
    mont_mul(acc.data(), acc.data(), tmp.data());
    acc.swap(tmp);
    if (exponent.bit(i)) {
      mont_mul(acc.data(), b.data(), tmp.data());
      acc.swap(tmp);
    }
  }
  return from_mont(acc);
}

BigUint modexp(const BigUint& base, const BigUint& exponent,
               const BigUint& modulus) {
  if (modulus.is_zero()) {
    throw std::domain_error("modexp: zero modulus");
  }
  if (modulus == BigUint(1)) return BigUint{};
  if (modulus.is_odd()) {
    return MontgomeryCtx(modulus).modexp(base, exponent);
  }
  // Even-modulus fallback: plain square-and-multiply with division-based
  // reduction. Only exercised by tests; all protocol moduli are odd primes.
  BigUint result(1);
  BigUint b = base % modulus;
  const std::size_t bits = exponent.bit_length();
  for (std::size_t i = bits; i-- > 0;) {
    result = result.mulmod(result, modulus);
    if (exponent.bit(i)) result = result.mulmod(b, modulus);
  }
  return result;
}

}  // namespace neuropuls::crypto
