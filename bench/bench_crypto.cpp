// E12 / §I — Crypto-substrate microbenchmarks backing the "lightweight"
// requirement: hash/MAC/cipher/DRBG throughput and the modexp outlier.
#include "bench_util.hpp"
#include "crypto/aes.hpp"
#include "crypto/bignum.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/dh.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "crypto/siphash.hpp"

namespace {

using namespace neuropuls::crypto;

void print_overview() {
  neuropuls::bench::banner(
      "E12 / §I", "Crypto substrate (software, this host) — see timing "
                  "cases below for numbers");
  neuropuls::bench::note(
      "the protocols use: SHA-256/HMAC (auth, attestation), AES-CTR+CMAC "
      "(Table I boundary), ChaCha DRBG (challenge derivation, walks), "
      "2048-bit modexp (EKE only).");
}

const Bytes kData16k(16 * 1024, 0xA7);
const Bytes kKey32(32, 0x42);
const Bytes kKey16(16, 0x42);

void BM_Sha256(benchmark::State& state) {
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0x5C);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HmacSha256(benchmark::State& state) {
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0x5C);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmac_sha256(kKey32, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_AesCtr(benchmark::State& state) {
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0x5C);
  const Bytes nonce(16, 0x01);
  const Aes cipher(kKey16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aes_ctr(cipher, nonce, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_AesCtr)->Arg(1024)->Arg(16384);

void BM_AesCmac(benchmark::State& state) {
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0x5C);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aes_cmac(kKey16, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_AesCmac)->Arg(1024)->Arg(16384);

void BM_ChaCha20(benchmark::State& state) {
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0x5C);
  const Bytes nonce(12, 0x01);
  for (auto _ : state) {
    benchmark::DoNotOptimize(chacha20_xor(kKey32, nonce, 0, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ChaCha20)->Arg(1024)->Arg(16384);

void BM_ChaChaDrbg(benchmark::State& state) {
  ChaChaDrbg rng(bytes_of("bench"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.generate(1024));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_ChaChaDrbg);

void BM_SipHash(benchmark::State& state) {
  std::array<std::uint8_t, 16> key{};
  for (auto _ : state) {
    benchmark::DoNotOptimize(siphash24(key, kData16k));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kData16k.size()));
}
BENCHMARK(BM_SipHash);

void BM_Modexp(benchmark::State& state) {
  const auto& group = state.range(0) == 1536 ? DhGroup::modp1536()
                                             : DhGroup::modp2048();
  ChaChaDrbg rng(bytes_of("modexp-bench"));
  const auto pair = dh_generate(group, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        modexp(group.generator, pair.secret, group.prime));
  }
}
BENCHMARK(BM_Modexp)->Arg(1536)->Arg(2048)->Unit(benchmark::kMillisecond);

void BM_FullDhExchange(benchmark::State& state) {
  const auto& group = DhGroup::modp2048();
  ChaChaDrbg rng_a(bytes_of("a")), rng_b(bytes_of("b"));
  for (auto _ : state) {
    const auto alice = dh_generate(group, rng_a);
    const auto bob = dh_generate(group, rng_b);
    benchmark::DoNotOptimize(
        dh_shared_secret(group, alice.secret, bob.public_value));
  }
}
BENCHMARK(BM_FullDhExchange)->Unit(benchmark::kMillisecond);

}  // namespace

NEUROPULS_BENCH_MAIN(print_overview)
