// E10 / §V — System-level impact of the security services on accelerator
// operation (the gem5-lite pipeline).
#include "accel/network.hpp"
#include "bench_util.hpp"
#include "common/parallel.hpp"
#include "crypto/chacha20.hpp"
#include "puf/photonic_puf.hpp"
#include "sim/system.hpp"

namespace {

using namespace neuropuls;

void print_phase_breakdown() {
  bench::banner("E10 / §V", "Secure pipeline phase breakdown (simulated)");
  sim::SecureSystem system(sim::SystemConfig{});
  const auto network = accel::make_random_network({16, 32, 10}, 5);
  const std::vector<double> input(16, 0.3);
  const auto report = system.run_secure_pipeline(network, input, 100);

  std::printf("  %-16s %-16s %-18s %-18s\n", "phase", "time (us)",
              "cpu energy (nJ)", "mem energy (nJ)");
  for (const auto& phase : report.phases) {
    std::printf("  %-16s %-16.2f %-18.2f %-18.2f\n", phase.name.c_str(),
                phase.time_ns / 1e3, phase.cpu_energy_nj,
                phase.memory_energy_nj);
  }
  std::printf("  total: %.2f us, %.2f nJ\n", report.total_time_ns / 1e3,
              report.total_energy_nj);
}

void print_overhead_vs_inferences() {
  bench::banner("E10 / §V",
                "Security overhead amortisation vs inference count");
  const auto network = accel::make_random_network({16, 32, 10}, 5);
  const std::vector<double> input(16, 0.3);

  std::printf("  %-14s %-18s %-18s %-12s\n", "inferences", "secure (us)",
              "insecure (us)", "overhead");
  for (std::size_t n : {1ul, 10ul, 100ul, 1000ul, 10000ul}) {
    sim::SecureSystem secure(sim::SystemConfig{});
    const auto s = secure.run_secure_pipeline(network, input, n);
    sim::SecureSystem insecure(sim::SystemConfig{});
    const auto i = insecure.run_insecure_pipeline(network, input, n);
    char overhead[24];
    std::snprintf(overhead, sizeof overhead, "%.2fx",
                  s.total_time_ns / i.total_time_ns);
    std::printf("  %-14zu %-18.1f %-18.1f %-12s\n", n,
                s.total_time_ns / 1e3, i.total_time_ns / 1e3, overhead);
  }
  bench::note("one-time services (boot/auth/attest) dominate at small "
              "inference counts; the marginal per-inference overhead is the "
              "hardware crypto + DMA, a small constant factor.");
}

void print_memory_scaling() {
  bench::banner("E10 / §V", "Attestation phase vs device memory (simulated)");
  const auto network = accel::make_random_network({16, 32, 10}, 5);
  std::printf("  %-16s %-18s\n", "device memory", "attest time (us)");
  for (std::size_t kib : {16ul, 64ul, 256ul, 1024ul}) {
    sim::SystemConfig config;
    config.device_memory_bytes = kib * 1024;
    sim::SecureSystem system(config);
    system.boot_keys();
    const auto phase = system.attest();
    std::printf("  %-16s %-18.1f\n", (std::to_string(kib) + " KiB").c_str(),
                phase.time_ns / 1e3);
  }
}

void print_eke_option() {
  bench::banner("E10 / §V",
                "Optional EKE session-key phase (forward secrecy premium)");
  const auto network = accel::make_random_network({16, 32, 10}, 5);
  const std::vector<double> input(16, 0.3);
  sim::SecureSystem base(sim::SystemConfig{});
  const auto without = base.run_secure_pipeline(network, input, 100, false);
  sim::SecureSystem with_eke(sim::SystemConfig{});
  const auto with = with_eke.run_secure_pipeline(network, input, 100, true);
  std::printf("  %-26s %-18s\n", "pipeline", "total time (us)");
  std::printf("  %-26s %-18.1f\n", "HSC-IoT only", without.total_time_ns / 1e3);
  std::printf("  %-26s %-18.1f\n", "+ EKE session key",
              with.total_time_ns / 1e3);
  const auto* eke_phase = with.phase("session_key");
  if (eke_phase) {
    std::printf("  EKE phase alone: %.1f us (%.0f%% of the secure pipeline)\n",
                eke_phase->time_ns / 1e3,
                100.0 * eke_phase->time_ns / with.total_time_ns);
  }
  bench::note("forward secrecy costs two 2048-bit modexps on the device "
              "core — the paper's 'computationally more expensive' trade, "
              "quantified at system level.");
}

void print_tables() {
  print_phase_breakdown();
  print_overhead_vs_inferences();
  print_memory_scaling();
  print_eke_option();
}

void BM_SecurePipeline100(benchmark::State& state) {
  const auto network = accel::make_random_network({16, 32, 10}, 5);
  const std::vector<double> input(16, 0.3);
  for (auto _ : state) {
    sim::SecureSystem system(sim::SystemConfig{});
    benchmark::DoNotOptimize(
        system.run_secure_pipeline(network, input, 100));
  }
}
BENCHMARK(BM_SecurePipeline100)->Unit(benchmark::kMillisecond);

void BM_InsecurePipeline100(benchmark::State& state) {
  const auto network = accel::make_random_network({16, 32, 10}, 5);
  const std::vector<double> input(16, 0.3);
  for (auto _ : state) {
    sim::SecureSystem system(sim::SystemConfig{});
    benchmark::DoNotOptimize(
        system.run_insecure_pipeline(network, input, 100));
  }
}
BENCHMARK(BM_InsecurePipeline100)->Unit(benchmark::kMillisecond);

// System-level PUF hot path: the verifier re-deriving model responses for
// an attestation/auth sweep — single-thread challenges/sec through
// evaluate_noiseless_batch, the lane-engine guardrail number.
void BM_VerifierModelSweep(benchmark::State& state) {
  puf::PhotonicPufConfig cfg;  // full-size: 64-bit challenge, 8 ports
  puf::PhotonicPuf verifier_model(cfg, 1, 0);
  common::ThreadPool pool(1);
  crypto::ChaChaDrbg rng(crypto::bytes_of("verifier-sweep-bench"));
  std::vector<puf::Challenge> challenges;
  for (int i = 0; i < 64; ++i) challenges.push_back(rng.generate(8));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        verifier_model.evaluate_noiseless_batch(challenges, &pool));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(challenges.size()));
}
BENCHMARK(BM_VerifierModelSweep)->Unit(benchmark::kMillisecond);

}  // namespace

NEUROPULS_BENCH_MAIN(print_tables)
