// E14 — Verifier-engine throughput: sessions/sec under multiplexing.
//
// The paper's verifier is one infrastructure endpoint serving a fleet
// (§III/§IV), so the service-level number is authenticated sessions per
// second, not single-handshake latency. This bench drives the
// core::SessionEngine against populations of arbiter-PUF devices and
// reports:
//
//   * sessions/sec over the {threads} × {in-flight} grid, with the serial
//     SessionDriver loop as the 1×1 baseline and a speedup column — on a
//     multi-core host the hw × 1024 cell is the headline; on a single
//     hardware thread the engine's value is bounded-memory multiplexing
//     and the speedup column measures its scheduling overhead instead;
//   * CRP-store ops/sec vs shard count under a fixed 4-thread mixed
//     take/insert/lookup load, with the lock-contention fraction from
//     CrpDatabase::lock_stats().
//
// Timing cases (google-benchmark JSON for scripts/bench_regress.py):
//   * BM_ServerSessionsSerial — the SessionDriver loop, sessions/sec;
//   * BM_ServerSessionsEngine/{1,64,1024} — wave (deterministic-mode)
//     engine at that in-flight width on the default pool width;
//   * BM_ServerSessionsReactor/{1,64,1024} — the work-stealing reactor
//     on the same fleet shapes;
//   * BM_ServerSessionsSkewed{Wave,Reactor} — skewed-latency fleet (1%
//     of devices 100x slower); manual time is time-to-90%-converged,
//     the completion-latency metric where scheduling policy shows up
//     even when total work is fixed;
//   * BM_ServerSessionsHostile/{50,95} — mixed honest/hostile load at
//     that hostile percentage through the admission controller; items/sec
//     counts honest sessions only (goodput under abuse);
//   * BM_CrpStoreMixedOps/{1,4,8} — sharded store ops/sec, 4 threads.
#include <atomic>
#include <chrono>
#include <thread>

#include "bench_util.hpp"
#include "common/parallel.hpp"
#include "core/admission_control.hpp"
#include "core/session_engine.hpp"
#include "crypto/sha256.hpp"
#include "faults/flood_adversary.hpp"
#include "puf/arbiter_puf.hpp"
#include "puf/crp_db.hpp"

namespace {

using namespace neuropuls;

// ------------------------------------------------- session fixtures

// Skewed-latency decorator: a device whose PUF takes `kSlowdown` times
// longer per evaluation (a cold photonic cavity, a device on a congested
// bus — the paper's fleet is heterogeneous). Responses are those of the
// wrapped PUF, only the cost changes, so transcripts stay identical to
// the fast device's and only the schedule feels the skew.
class SlowPuf final : public puf::Puf {
 public:
  static constexpr unsigned kSlowdown = 100;
  explicit SlowPuf(puf::Puf& inner) : inner_(inner) {}
  std::size_t challenge_bytes() const override {
    return inner_.challenge_bytes();
  }
  std::size_t response_bytes() const override {
    return inner_.response_bytes();
  }
  puf::Response evaluate(const puf::Challenge& challenge) override {
    for (unsigned i = 0; i + 1 < kSlowdown; ++i) {
      benchmark::DoNotOptimize(inner_.evaluate_noiseless(challenge));
    }
    return inner_.evaluate(challenge);
  }
  puf::Response evaluate_noiseless(
      const puf::Challenge& challenge) const override {
    return inner_.evaluate_noiseless(challenge);
  }
  std::string name() const override { return inner_.name() + "+slow"; }

 private:
  puf::Puf& inner_;
};

struct AuthFixture {
  std::unique_ptr<puf::ArbiterPuf> puf;
  std::unique_ptr<SlowPuf> slow_puf;  // set only for skewed fleet members
  std::unique_ptr<core::AuthDevice> device;
  std::unique_ptr<core::AuthVerifier> verifier;
  net::DuplexChannel channel;
};

std::unique_ptr<AuthFixture> make_fixture(std::uint64_t device_seed,
                                          bool slow = false) {
  auto f = std::make_unique<AuthFixture>();
  f->puf = std::make_unique<puf::ArbiterPuf>(puf::ArbiterPufConfig{},
                                             device_seed);
  crypto::ChaChaDrbg rng(crypto::bytes_of("bench-server-provision"));
  const auto provisioned = core::provision(*f->puf, rng);
  const crypto::Bytes memory(1024, 0xA5);
  puf::Puf* device_puf = f->puf.get();
  if (slow) {
    f->slow_puf = std::make_unique<SlowPuf>(*f->puf);
    device_puf = f->slow_puf.get();
  }
  f->device = std::make_unique<core::AuthDevice>(*device_puf,
                                                 provisioned.device_crp,
                                                 memory);
  f->verifier = std::make_unique<core::AuthVerifier>(
      provisioned.verifier_secret, crypto::Sha256::hash(memory),
      f->puf->challenge_bytes());
  return f;
}

// `slow_every` > 0 makes every slow_every-th device a SlowPuf (100 ==
// the issue's "1% of sessions 100x slower" skew scenario).
std::vector<std::unique_ptr<AuthFixture>> make_fleet(std::size_t sessions,
                                                     std::size_t slow_every =
                                                         0) {
  std::vector<std::unique_ptr<AuthFixture>> fleet;
  fleet.reserve(sessions);
  for (std::size_t k = 0; k < sessions; ++k) {
    const bool slow = slow_every != 0 && (k + 1) % slow_every == 0;
    fleet.push_back(make_fixture(0x5EED + k, slow));
  }
  return fleet;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Serial baseline: one blocking SessionDriver run per device.
double run_serial_fleet(std::vector<std::unique_ptr<AuthFixture>>& fleet) {
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t k = 0; k < fleet.size(); ++k) {
    core::RetryPolicy policy;
    policy.seed = 42 + k;
    core::SessionDriver driver(fleet[k]->channel, policy);
    (void)driver.run_mutual_auth(*fleet[k]->verifier, *fleet[k]->device,
                                 10 * (k + 1));
  }
  return seconds_since(start);
}

struct EngineRunResult {
  double elapsed = 0.0;  // full run wall time, seconds
  double t90 = 0.0;      // time until 90% of sessions completed, seconds
  core::SessionEngineStats stats;
};

// Engine run: the same per-session seeds, `threads` pool width, up to
// `in_flight` sessions multiplexed, under the given scheduler mode.
// Alongside total wall time this records time-to-90%-completed via the
// engine's on_complete hook: on a fixed-work fleet the total is
// scheduler-invariant on one core, but completion latency is not — a
// run-to-completion reactor retires fast sessions while a slow one is
// still grinding, where a wave barrier holds every finished session's
// slot until the stragglers clear.
EngineRunResult run_engine_fleet(
    std::vector<std::unique_ptr<AuthFixture>>& fleet, std::size_t threads,
    std::size_t in_flight,
    core::EngineMode mode = core::EngineMode::kReactor) {
  common::ThreadPool pool(threads);
  core::SessionEngineConfig config;
  config.max_in_flight = in_flight;
  config.mode = mode;
  const std::size_t target = (fleet.size() * 9 + 9) / 10;
  std::atomic<std::size_t> completed{0};
  std::atomic<std::int64_t> t90_ns{0};
  std::chrono::steady_clock::time_point start;
  config.on_complete = [&](std::size_t) {
    if (completed.fetch_add(1, std::memory_order_relaxed) + 1 == target) {
      t90_ns.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count(),
                   std::memory_order_relaxed);
    }
  };
  core::SessionEngine engine(pool, config);
  const core::RetryPolicy policy;
  for (std::size_t k = 0; k < fleet.size(); ++k) {
    AuthFixture& f = *fleet[k];
    engine.submit(42 + k, [&f, &policy, k](crypto::ChaChaDrbg& rng) {
      return std::make_unique<core::AuthSessionMachine>(
          f.channel, policy, rng, *f.verifier, *f.device, 10 * (k + 1));
    });
  }
  start = std::chrono::steady_clock::now();
  (void)engine.run();
  EngineRunResult result;
  result.elapsed = seconds_since(start);
  result.t90 = static_cast<double>(t90_ns.load()) * 1e-9;
  result.stats = engine.stats();
  return result;
}

void print_sessions_table() {
  bench::banner("E14", "Verifier sessions/sec vs concurrency (mutual auth)");
  constexpr std::size_t kSessions = 1024;
  const std::size_t hw = common::ThreadPool::default_thread_count();

  auto serial_fleet = make_fleet(kSessions);
  const double serial_s = run_serial_fleet(serial_fleet);
  const double serial_rate = kSessions / serial_s;
  std::printf("  %-10s %-10s %-14s %-10s\n", "threads", "in-flight",
              "sessions/sec", "speedup");
  std::printf("  %-10s %-10s %-14.0f %-10s\n", "serial", "1", serial_rate,
              "1.00x");

  std::vector<std::size_t> thread_counts{1, 2, 4};
  if (hw != 1 && hw != 2 && hw != 4) thread_counts.push_back(hw);
  for (const std::size_t threads : thread_counts) {
    for (const std::size_t in_flight : {std::size_t{1}, std::size_t{64},
                                        std::size_t{1024}}) {
      auto fleet = make_fleet(kSessions);
      const auto run = run_engine_fleet(fleet, threads, in_flight);
      const double rate = kSessions / run.elapsed;
      std::printf("  %-10zu %-10zu %-14.0f %.2fx%s\n", threads, in_flight,
                  rate, rate / serial_rate,
                  threads == hw && in_flight == 1024 ? "   <- hw x 1024"
                                                     : "");
      if (run.stats.converged != kSessions) {
        std::printf("  WARNING: only %zu/%zu sessions converged\n",
                    run.stats.converged, kSessions);
      }
    }
  }
  bench::note("clean links: every session converges in one attempt; the "
              "speedup column is against the serial SessionDriver loop on "
              "this host (hardware threads: " + std::to_string(hw) + ").");
}

// Reactor at fleet scale: in-flight widths past the wave engine's
// comfort zone. The scheduling columns come from the engine's own
// counters — at width 64k the wheel and the steal path are the runtime,
// so their counts belong next to the rate.
void print_high_inflight_table() {
  bench::banner("E14", "Reactor sessions/sec at high in-flight widths");
  constexpr std::size_t kSessions = 16384;
  const std::size_t hw = common::ThreadPool::default_thread_count();
  std::printf("  %-10s %-14s %-10s %-10s %-12s %-10s\n", "in-flight",
              "sessions/sec", "steals", "parks", "wheel-ticks", "peak-q");
  for (const std::size_t in_flight :
       {std::size_t{1024}, std::size_t{16384}, std::size_t{65536}}) {
    auto fleet = make_fleet(kSessions);
    const auto run = run_engine_fleet(fleet, hw, in_flight);
    std::printf("  %-10zu %-14.0f %-10llu %-10llu %-12llu %-10llu\n",
                in_flight, kSessions / run.elapsed,
                static_cast<unsigned long long>(run.stats.steals),
                static_cast<unsigned long long>(run.stats.parks),
                static_cast<unsigned long long>(run.stats.wheel_ticks),
                static_cast<unsigned long long>(run.stats.peak_queue_depth));
    if (run.stats.completed != kSessions) {
      std::printf("  WARNING: only %zu/%zu sessions completed\n",
                  run.stats.completed, kSessions);
    }
  }
  bench::note("fleet of " + std::to_string(kSessions) + " devices; " +
              "in-flight above the fleet size admits everything at once "
              "and measures pure queue/wheel overhead.");
}

// Skewed-latency scenario: 1% of devices are 100x slower (SlowPuf). The
// honest single-core metric is time-to-90%-converged — total work is
// fixed, but a wave barrier convoys every fast session behind the
// stragglers in its wave, while the reactor retires fast sessions as
// they finish and steals around busy workers on multi-core hosts.
void print_skewed_table() {
  bench::banner("E14", "Skewed fleet (1% of devices 100x slower)");
  constexpr std::size_t kSessions = 512;
  constexpr std::size_t kSlowEvery = 100;
  const std::size_t hw = common::ThreadPool::default_thread_count();
  std::printf("  %-12s %-10s %-12s %-12s %-14s\n", "scheduler", "threads",
              "total (ms)", "t90 (ms)", "sessions/sec");
  for (const std::size_t threads : {std::size_t{1}, hw}) {
    for (const auto mode :
         {core::EngineMode::kDeterministic, core::EngineMode::kReactor}) {
      auto fleet = make_fleet(kSessions, kSlowEvery);
      const auto run = run_engine_fleet(fleet, threads, /*in_flight=*/64,
                                        mode);
      std::printf("  %-12s %-10zu %-12.2f %-12.2f %-14.0f\n",
                  mode == core::EngineMode::kReactor ? "reactor" : "wave",
                  threads, run.elapsed * 1e3, run.t90 * 1e3,
                  kSessions / run.elapsed);
    }
    if (threads == hw) break;  // hw == 1: one pass is the whole story
  }
  bench::note("t90 = time until 90% of sessions completed; on one "
              "hardware thread total time is scheduler-invariant (same "
              "work), so t90 is where run-to-completion scheduling shows; "
              "with threads > 1 the wave barrier also convoys total time.");
}

// --------------------------------------------------- hostile load

// Mixed honest/hostile run through the admission controller. Hostile
// sessions are faults::FloodAuthMachine attackers (3:1 malformed-flood
// to half-open squatters) spread over a handful of hot client
// identities, so token buckets, the half-open table, and the malformed
// charge-back all see action. Honest devices are one client each.
struct HostileRunResult {
  double elapsed = 0.0;
  std::size_t honest_converged = 0;
  std::size_t false_accepts = 0;  // hostile sessions that converged: 0 or bug
  core::SessionEngineStats stats;
  core::AdmissionStats admission;
};

HostileRunResult run_hostile_fleet(std::size_t honest, std::size_t hostile) {
  constexpr std::size_t kAttackerIdentities = 16;
  std::vector<std::unique_ptr<AuthFixture>> fleet;
  fleet.reserve(honest + hostile);
  for (std::size_t k = 0; k < honest + hostile; ++k) {
    fleet.push_back(make_fixture(0xF1EE7 + k));
  }

  core::AdmissionConfig admission_config;
  admission_config.bucket_capacity = 8;
  admission_config.half_open_slots = 64;
  admission_config.half_open_per_client = 4;
  core::AdmissionController controller(admission_config);
  common::ThreadPool pool(common::ThreadPool::default_thread_count());
  core::SessionEngineConfig config;
  config.max_in_flight = 64;
  config.admission = &controller;
  core::SessionEngine engine(pool, config);

  const core::RetryPolicy policy;
  for (std::size_t k = 0; k < fleet.size(); ++k) {
    AuthFixture& f = *fleet[k];
    core::SubmitOptions options;
    options.cost_bytes = 512;
    const bool is_hostile = k >= honest;
    options.client_id =
        is_hostile ? 0xBAD0000 + (k % kAttackerIdentities) : 0x600D0000 + k;
    if (is_hostile) {
      const auto mode = (k % 4 == 3) ? faults::FloodMode::kHalfOpen
                                     : faults::FloodMode::kMalformed;
      engine.submit(
          42 + k,
          [&f, &policy, mode](crypto::ChaChaDrbg& rng)
              -> std::unique_ptr<core::SessionMachine> {
            return std::make_unique<faults::FloodAuthMachine>(
                f.channel, policy, rng, *f.verifier, mode);
          },
          options);
    } else {
      engine.submit(
          42 + k,
          [&f, &policy, k](crypto::ChaChaDrbg& rng)
              -> std::unique_ptr<core::SessionMachine> {
            return std::make_unique<core::AuthSessionMachine>(
                f.channel, policy, rng, *f.verifier, *f.device, 10 * (k + 1));
          },
          options);
    }
  }
  const auto start = std::chrono::steady_clock::now();
  const auto reports = engine.run();
  HostileRunResult result;
  result.elapsed = seconds_since(start);
  for (std::size_t k = 0; k < reports.size(); ++k) {
    if (reports[k].result != core::SessionResult::kConverged) continue;
    if (k < honest) {
      ++result.honest_converged;
    } else {
      ++result.false_accepts;
    }
  }
  result.stats = engine.stats();
  result.admission = controller.stats();
  return result;
}

void print_hostile_table() {
  bench::banner("E16", "Hostile mixed load through admission control");
  constexpr std::size_t kHonest = 64;
  std::printf("  %-9s %-12s %-9s %-10s %-9s %-9s %-10s %-8s %-11s\n",
              "hostile%", "honest/sec", "admitted", "shed-rate", "shed-mem",
              "evicted", "malformed", "false+", "peak-bytes");
  double baseline_rate = 0.0;
  for (const std::size_t pct : {std::size_t{0}, std::size_t{50},
                                std::size_t{90}, std::size_t{95}}) {
    // kHonest honest sessions at every row; hostile count scales so the
    // hostile fraction of total traffic is pct.
    const std::size_t hostile = kHonest * pct / (100 - pct);
    const auto run = run_hostile_fleet(kHonest, hostile);
    const double rate = run.honest_converged / run.elapsed;
    if (pct == 0) baseline_rate = rate;
    std::printf("  %-9zu %-12.0f %-9llu %-10llu %-9llu %-9llu %-10llu "
                "%-8zu %-11llu\n",
                pct, rate,
                static_cast<unsigned long long>(run.stats.admitted),
                static_cast<unsigned long long>(run.stats.shed_rate_limited),
                static_cast<unsigned long long>(run.stats.shed_memory),
                static_cast<unsigned long long>(run.stats.evicted_half_open),
                static_cast<unsigned long long>(run.stats.malformed),
                run.false_accepts,
                static_cast<unsigned long long>(
                    run.admission.peak_charged_bytes));
    if (run.false_accepts != 0) {
      std::printf("  WARNING: %zu hostile sessions converged (false "
                  "accepts)\n", run.false_accepts);
    }
    if (run.honest_converged != kHonest) {
      std::printf("  WARNING: only %zu/%zu honest sessions converged\n",
                  run.honest_converged, kHonest);
    }
    if (pct == 95 && baseline_rate > 0.0 && rate < 0.5 * baseline_rate) {
      std::printf("  WARNING: honest goodput %.0f/s under 95%% flood is "
                  "below 50%% of the unloaded %.0f/s\n", rate, baseline_rate);
    }
  }
  bench::note("honest/sec counts only honest converged sessions over total "
              "wall time (goodput). false+ is hostile sessions the verifier "
              "accepted — any nonzero value is a security bug. peak-bytes "
              "is the controller's charged-memory high-water mark (budget " +
              std::to_string(8u << 20) + ").");
}

// --------------------------------------------------- CRP store load

puf::Crp make_crp(std::uint32_t i) {
  puf::Crp crp;
  crp.challenge = {static_cast<std::uint8_t>(i),
                   static_cast<std::uint8_t>(i >> 8),
                   static_cast<std::uint8_t>(i >> 16),
                   static_cast<std::uint8_t>(i >> 24),
                   0x42, 0x17, 0x88, 0x2F};
  crp.response = {static_cast<std::uint8_t>(i * 11 + 3)};
  return crp;
}

// Mixed verifier workload per thread: insert one fresh CRP, look up one
// enrolled challenge, take one for an auth round — 3 ops per iteration.
void hammer_store(puf::CrpDatabase& db, std::uint32_t thread_id,
                  std::uint32_t iterations) {
  for (std::uint32_t i = 0; i < iterations; ++i) {
    db.insert(make_crp(1u << 24 | thread_id << 20 | i));
    (void)db.lookup(make_crp(thread_id * iterations + i).challenge);
    (void)db.take();
  }
}

void print_crp_store_table() {
  bench::banner("E14", "CRP store ops/sec vs shard count (4-thread load)");
  constexpr std::uint32_t kPreload = 4096;
  constexpr std::uint32_t kIterations = 8192;
  constexpr unsigned kThreads = 4;
  std::printf("  %-10s %-14s %-14s %-11s %-10s %-10s\n", "shards", "ops/sec",
              "acquisitions", "contended", "takes", "steals");
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    puf::CrpDatabase db(shards);
    for (std::uint32_t i = 0; i < kPreload; ++i) db.insert(make_crp(i));
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
      threads.emplace_back(hammer_store, std::ref(db), t, kIterations);
    }
    for (auto& thread : threads) thread.join();
    const double elapsed = seconds_since(start);
    const auto stats = db.lock_stats();
    std::printf("  %-10zu %-14.0f %-14llu %-11.2f %-10llu %-10llu\n", shards,
                3.0 * kThreads * kIterations / elapsed,
                static_cast<unsigned long long>(stats.acquisitions),
                stats.acquisitions == 0
                    ? 0.0
                    : 100.0 * static_cast<double>(stats.contended) /
                          static_cast<double>(stats.acquisitions),
                static_cast<unsigned long long>(stats.takes),
                static_cast<unsigned long long>(stats.take_steals));
  }
  bench::note("contended = shard-mutex acquisitions that found the lock "
              "held (percent of acquisitions); striping drives it toward "
              "zero as shards exceed threads. takes/steals are the store's "
              "scheduling counters: steals are takes served past their "
              "round-robin start shard.");
}

void print_tables() {
  print_sessions_table();
  print_high_inflight_table();
  print_skewed_table();
  print_hostile_table();
  print_crp_store_table();
}

// ------------------------------------------------- timing cases

void BM_ServerSessionsSerial(benchmark::State& state) {
  constexpr std::size_t kSessions = 64;
  for (auto _ : state) {
    state.PauseTiming();
    auto fleet = make_fleet(kSessions);
    state.ResumeTiming();
    benchmark::DoNotOptimize(run_serial_fleet(fleet));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kSessions);
}
BENCHMARK(BM_ServerSessionsSerial)->Unit(benchmark::kMillisecond);

// Engine timing shared by the wave and reactor cases: same fleet shape,
// only the scheduler differs. BM_ServerSessionsEngine keeps its
// pre-reactor name (and wave semantics) so baselines stay comparable.
void run_engine_case(benchmark::State& state, core::EngineMode mode) {
  constexpr std::size_t kSessions = 64;
  const auto in_flight = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto fleet = make_fleet(kSessions);
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        run_engine_fleet(fleet, common::ThreadPool::default_thread_count(),
                         in_flight, mode)
            .elapsed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kSessions);
}

void BM_ServerSessionsEngine(benchmark::State& state) {
  run_engine_case(state, core::EngineMode::kDeterministic);
}
BENCHMARK(BM_ServerSessionsEngine)
    ->Arg(1)
    ->Arg(64)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_ServerSessionsReactor(benchmark::State& state) {
  run_engine_case(state, core::EngineMode::kReactor);
}
BENCHMARK(BM_ServerSessionsReactor)
    ->Arg(1)
    ->Arg(64)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

// Skewed-latency cases: manual time is time-to-90%-converged on the 1%
// slow / 100x slower fleet — the completion-latency number the reactor
// is built to improve. (Total time on one core is scheduler-invariant;
// see the printed table for both numbers.)
void run_skewed_case(benchmark::State& state, core::EngineMode mode) {
  constexpr std::size_t kSessions = 128;
  constexpr std::size_t kSlowEvery = 100;
  for (auto _ : state) {
    auto fleet = make_fleet(kSessions, kSlowEvery);
    const auto run =
        run_engine_fleet(fleet, common::ThreadPool::default_thread_count(),
                         /*in_flight=*/64, mode);
    state.SetIterationTime(run.t90);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kSessions);
}

void BM_ServerSessionsSkewedWave(benchmark::State& state) {
  run_skewed_case(state, core::EngineMode::kDeterministic);
}
BENCHMARK(BM_ServerSessionsSkewedWave)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

void BM_ServerSessionsSkewedReactor(benchmark::State& state) {
  run_skewed_case(state, core::EngineMode::kReactor);
}
BENCHMARK(BM_ServerSessionsSkewedReactor)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

// Hostile mixed-load cases: state.range(0) is the hostile percentage of
// total traffic; items/sec counts honest sessions only, so a regression
// here means admission control stopped protecting honest goodput.
void BM_ServerSessionsHostile(benchmark::State& state) {
  constexpr std::size_t kHonest = 32;
  const auto pct = static_cast<std::size_t>(state.range(0));
  const std::size_t hostile = kHonest * pct / (100 - pct);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_hostile_fleet(kHonest, hostile).elapsed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kHonest);
}
BENCHMARK(BM_ServerSessionsHostile)
    ->Arg(50)
    ->Arg(95)
    ->Unit(benchmark::kMillisecond);

void BM_CrpStoreMixedOps(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  constexpr std::uint32_t kIterations = 2048;
  constexpr unsigned kThreads = 4;
  for (auto _ : state) {
    state.PauseTiming();
    puf::CrpDatabase db(shards);
    for (std::uint32_t i = 0; i < 2048; ++i) db.insert(make_crp(i));
    state.ResumeTiming();
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
      threads.emplace_back(hammer_store, std::ref(db), t, kIterations);
    }
    for (auto& thread : threads) thread.join();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 3 *
                          kThreads * kIterations);
}
BENCHMARK(BM_CrpStoreMixedOps)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

NEUROPULS_BENCH_MAIN(print_tables)
