// E14 — Verifier-engine throughput: sessions/sec under multiplexing.
//
// The paper's verifier is one infrastructure endpoint serving a fleet
// (§III/§IV), so the service-level number is authenticated sessions per
// second, not single-handshake latency. This bench drives the
// core::SessionEngine against populations of arbiter-PUF devices and
// reports:
//
//   * sessions/sec over the {threads} × {in-flight} grid, with the serial
//     SessionDriver loop as the 1×1 baseline and a speedup column — on a
//     multi-core host the hw × 1024 cell is the headline; on a single
//     hardware thread the engine's value is bounded-memory multiplexing
//     and the speedup column measures its scheduling overhead instead;
//   * CRP-store ops/sec vs shard count under a fixed 4-thread mixed
//     take/insert/lookup load, with the lock-contention fraction from
//     CrpDatabase::lock_stats().
//
// Timing cases (google-benchmark JSON for scripts/bench_regress.py):
//   * BM_ServerSessionsSerial — the SessionDriver loop, sessions/sec;
//   * BM_ServerSessionsEngine/{1,64,1024} — engine at that in-flight
//     width on the default pool width, sessions/sec;
//   * BM_CrpStoreMixedOps/{1,4,8} — sharded store ops/sec, 4 threads.
#include <chrono>
#include <thread>

#include "bench_util.hpp"
#include "common/parallel.hpp"
#include "core/session_engine.hpp"
#include "crypto/sha256.hpp"
#include "puf/arbiter_puf.hpp"
#include "puf/crp_db.hpp"

namespace {

using namespace neuropuls;

// ------------------------------------------------- session fixtures

struct AuthFixture {
  std::unique_ptr<puf::ArbiterPuf> puf;
  std::unique_ptr<core::AuthDevice> device;
  std::unique_ptr<core::AuthVerifier> verifier;
  net::DuplexChannel channel;
};

std::unique_ptr<AuthFixture> make_fixture(std::uint64_t device_seed) {
  auto f = std::make_unique<AuthFixture>();
  f->puf = std::make_unique<puf::ArbiterPuf>(puf::ArbiterPufConfig{},
                                             device_seed);
  crypto::ChaChaDrbg rng(crypto::bytes_of("bench-server-provision"));
  const auto provisioned = core::provision(*f->puf, rng);
  const crypto::Bytes memory(1024, 0xA5);
  f->device = std::make_unique<core::AuthDevice>(*f->puf,
                                                 provisioned.device_crp,
                                                 memory);
  f->verifier = std::make_unique<core::AuthVerifier>(
      provisioned.verifier_secret, crypto::Sha256::hash(memory),
      f->puf->challenge_bytes());
  return f;
}

std::vector<std::unique_ptr<AuthFixture>> make_fleet(std::size_t sessions) {
  std::vector<std::unique_ptr<AuthFixture>> fleet;
  fleet.reserve(sessions);
  for (std::size_t k = 0; k < sessions; ++k) {
    fleet.push_back(make_fixture(0x5EED + k));
  }
  return fleet;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Serial baseline: one blocking SessionDriver run per device.
double run_serial_fleet(std::vector<std::unique_ptr<AuthFixture>>& fleet) {
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t k = 0; k < fleet.size(); ++k) {
    core::RetryPolicy policy;
    policy.seed = 42 + k;
    core::SessionDriver driver(fleet[k]->channel, policy);
    (void)driver.run_mutual_auth(*fleet[k]->verifier, *fleet[k]->device,
                                 10 * (k + 1));
  }
  return seconds_since(start);
}

// Engine run: the same per-session seeds, `threads` pool width, up to
// `in_flight` sessions multiplexed.
double run_engine_fleet(std::vector<std::unique_ptr<AuthFixture>>& fleet,
                        std::size_t threads, std::size_t in_flight,
                        std::size_t* converged = nullptr) {
  common::ThreadPool pool(threads);
  core::SessionEngineConfig config;
  config.max_in_flight = in_flight;
  core::SessionEngine engine(pool, config);
  const core::RetryPolicy policy;
  for (std::size_t k = 0; k < fleet.size(); ++k) {
    AuthFixture& f = *fleet[k];
    engine.submit(42 + k, [&f, &policy, k](crypto::ChaChaDrbg& rng) {
      return std::make_unique<core::AuthSessionMachine>(
          f.channel, policy, rng, *f.verifier, *f.device, 10 * (k + 1));
    });
  }
  const auto start = std::chrono::steady_clock::now();
  (void)engine.run();
  const double elapsed = seconds_since(start);
  if (converged != nullptr) *converged = engine.stats().converged;
  return elapsed;
}

void print_sessions_table() {
  bench::banner("E14", "Verifier sessions/sec vs concurrency (mutual auth)");
  constexpr std::size_t kSessions = 1024;
  const std::size_t hw = common::ThreadPool::default_thread_count();

  auto serial_fleet = make_fleet(kSessions);
  const double serial_s = run_serial_fleet(serial_fleet);
  const double serial_rate = kSessions / serial_s;
  std::printf("  %-10s %-10s %-14s %-10s\n", "threads", "in-flight",
              "sessions/sec", "speedup");
  std::printf("  %-10s %-10s %-14.0f %-10s\n", "serial", "1", serial_rate,
              "1.00x");

  std::vector<std::size_t> thread_counts{1, 2, 4};
  if (hw != 1 && hw != 2 && hw != 4) thread_counts.push_back(hw);
  for (const std::size_t threads : thread_counts) {
    for (const std::size_t in_flight : {std::size_t{1}, std::size_t{64},
                                        std::size_t{1024}}) {
      auto fleet = make_fleet(kSessions);
      std::size_t converged = 0;
      const double elapsed =
          run_engine_fleet(fleet, threads, in_flight, &converged);
      const double rate = kSessions / elapsed;
      std::printf("  %-10zu %-10zu %-14.0f %.2fx%s\n", threads, in_flight,
                  rate, rate / serial_rate,
                  threads == hw && in_flight == 1024 ? "   <- hw x 1024"
                                                     : "");
      if (converged != kSessions) {
        std::printf("  WARNING: only %zu/%zu sessions converged\n", converged,
                    kSessions);
      }
    }
  }
  bench::note("clean links: every session converges in one attempt; the "
              "speedup column is against the serial SessionDriver loop on "
              "this host (hardware threads: " + std::to_string(hw) + ").");
}

// --------------------------------------------------- CRP store load

puf::Crp make_crp(std::uint32_t i) {
  puf::Crp crp;
  crp.challenge = {static_cast<std::uint8_t>(i),
                   static_cast<std::uint8_t>(i >> 8),
                   static_cast<std::uint8_t>(i >> 16),
                   static_cast<std::uint8_t>(i >> 24),
                   0x42, 0x17, 0x88, 0x2F};
  crp.response = {static_cast<std::uint8_t>(i * 11 + 3)};
  return crp;
}

// Mixed verifier workload per thread: insert one fresh CRP, look up one
// enrolled challenge, take one for an auth round — 3 ops per iteration.
void hammer_store(puf::CrpDatabase& db, std::uint32_t thread_id,
                  std::uint32_t iterations) {
  for (std::uint32_t i = 0; i < iterations; ++i) {
    db.insert(make_crp(1u << 24 | thread_id << 20 | i));
    (void)db.lookup(make_crp(thread_id * iterations + i).challenge);
    (void)db.take();
  }
}

void print_crp_store_table() {
  bench::banner("E14", "CRP store ops/sec vs shard count (4-thread load)");
  constexpr std::uint32_t kPreload = 4096;
  constexpr std::uint32_t kIterations = 8192;
  constexpr unsigned kThreads = 4;
  std::printf("  %-10s %-14s %-14s %-12s\n", "shards", "ops/sec",
              "acquisitions", "contended");
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    puf::CrpDatabase db(shards);
    for (std::uint32_t i = 0; i < kPreload; ++i) db.insert(make_crp(i));
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
      threads.emplace_back(hammer_store, std::ref(db), t, kIterations);
    }
    for (auto& thread : threads) thread.join();
    const double elapsed = seconds_since(start);
    const auto stats = db.lock_stats();
    std::printf("  %-10zu %-14.0f %-14llu %.2f%%\n", shards,
                3.0 * kThreads * kIterations / elapsed,
                static_cast<unsigned long long>(stats.acquisitions),
                stats.acquisitions == 0
                    ? 0.0
                    : 100.0 * static_cast<double>(stats.contended) /
                          static_cast<double>(stats.acquisitions));
  }
  bench::note("contended = shard-mutex acquisitions that found the lock "
              "held; striping drives it toward zero as shards exceed "
              "threads.");
}

void print_tables() {
  print_sessions_table();
  print_crp_store_table();
}

// ------------------------------------------------- timing cases

void BM_ServerSessionsSerial(benchmark::State& state) {
  constexpr std::size_t kSessions = 64;
  for (auto _ : state) {
    state.PauseTiming();
    auto fleet = make_fleet(kSessions);
    state.ResumeTiming();
    benchmark::DoNotOptimize(run_serial_fleet(fleet));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kSessions);
}
BENCHMARK(BM_ServerSessionsSerial)->Unit(benchmark::kMillisecond);

void BM_ServerSessionsEngine(benchmark::State& state) {
  constexpr std::size_t kSessions = 64;
  const auto in_flight = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto fleet = make_fleet(kSessions);
    state.ResumeTiming();
    benchmark::DoNotOptimize(run_engine_fleet(
        fleet, common::ThreadPool::default_thread_count(), in_flight));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kSessions);
}
BENCHMARK(BM_ServerSessionsEngine)
    ->Arg(1)
    ->Arg(64)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_CrpStoreMixedOps(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  constexpr std::uint32_t kIterations = 2048;
  constexpr unsigned kThreads = 4;
  for (auto _ : state) {
    state.PauseTiming();
    puf::CrpDatabase db(shards);
    for (std::uint32_t i = 0; i < 2048; ++i) db.insert(make_crp(i));
    state.ResumeTiming();
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
      threads.emplace_back(hammer_store, std::ref(db), t, kIterations);
    }
    for (auto& thread : threads) thread.join();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 3 *
                          kThreads * kIterations);
}
BENCHMARK(BM_CrpStoreMixedOps)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

NEUROPULS_BENCH_MAIN(print_tables)
