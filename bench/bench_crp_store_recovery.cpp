// E15 — durable CRP store: group-commit throughput and cold-start
// recovery at memory speed.
//
// Two questions, both quantitative:
//
//   1. What does durability cost on the mutation path? The naive design
//      fsyncs once per operation; the group-commit WAL coalesces a
//      batch of records into one write+fsync. The table prints both as
//      ops/sec plus the ratio — the layer's reason to exist is that the
//      ratio is large (>= 10x on every medium we've measured).
//
//   2. How fast does a verifier come back after a restart? Cold start
//      replays snapshot + WAL per shard over common::parallel; the
//      table sweeps shard count for a pure-WAL start (every record
//      re-applied) and a snapshot start (compacted image, empty WAL),
//      in CRPs/sec.
//
// Timing cases (merged into BENCH_baseline.json for bench_regress.py):
//   * BM_CrpStoreGroupCommit          — durable insert stream, group commit
//   * BM_CrpStoreFsyncPerOp           — same stream, fsync per operation
//   * BM_CrpStoreRecoveryWal/{1..8}   — cold start from WAL only
//   * BM_CrpStoreRecoverySnapshot/{1..8} — cold start from snapshot
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "common/io.hpp"
#include "puf/crp_db.hpp"

namespace {

namespace io = neuropuls::common::io;
using neuropuls::puf::Crp;
using neuropuls::puf::CrpDatabase;
using neuropuls::puf::CrpDurabilityOptions;

Crp make_crp(std::uint32_t i) {
  Crp crp;
  crp.challenge = {static_cast<std::uint8_t>(i),
                   static_cast<std::uint8_t>(i >> 8),
                   static_cast<std::uint8_t>(i >> 16),
                   static_cast<std::uint8_t>(i >> 24),
                   0x5A, 0xC3, 0x0F, 0x99};
  crp.response = {static_cast<std::uint8_t>(i * 7 + 1),
                  static_cast<std::uint8_t>(i * 13 + 5)};
  return crp;
}

CrpDurabilityOptions durable_in(const std::string& dir,
                                CrpDurabilityOptions::Mode mode) {
  CrpDurabilityOptions options;
  options.directory = dir;
  options.mode = mode;
  return options;
}

/// Populates a fresh durable store with `count` CRPs and closes it
/// cleanly; when `snapshot` is set the WAL is compacted first, so the
/// next open is a pure snapshot start (wal_records == 0).
void build_store(const std::string& dir, std::size_t shards,
                 std::uint32_t count, bool snapshot) {
  CrpDatabase db(shards,
                 durable_in(dir, CrpDurabilityOptions::Mode::kGroupCommit));
  for (std::uint32_t i = 0; i < count; ++i) db.insert(make_crp(i));
  if (snapshot) db.snapshot();
}

double timed_ops_per_sec(CrpDurabilityOptions::Mode mode,
                         std::uint32_t ops) {
  const io::TempDir dir("np-bench-crp-store");
  CrpDatabase db(1, durable_in(dir.path(), mode));
  const auto start = std::chrono::steady_clock::now();
  for (std::uint32_t i = 0; i < ops; ++i) db.insert(make_crp(i));
  db.sync();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return static_cast<double>(ops) / elapsed.count();
}

double timed_recovery_crps_per_sec(std::size_t shards, std::uint32_t count,
                                   bool snapshot) {
  const io::TempDir dir("np-bench-crp-store");
  build_store(dir.path(), shards, count, snapshot);
  const auto start = std::chrono::steady_clock::now();
  const CrpDatabase db(
      shards, durable_in(dir.path(), CrpDurabilityOptions::Mode::kGroupCommit));
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  if (db.size() != count) std::abort();  // the bench must replay everything
  return static_cast<double>(count) / elapsed.count();
}

void print_tables() {
  neuropuls::bench::banner(
      "E15", "durable CRP store: group commit + parallel recovery");

  constexpr std::uint32_t kOps = 2048;
  const double group = timed_ops_per_sec(
      CrpDurabilityOptions::Mode::kGroupCommit, kOps);
  // fsync-per-op pays a full flush round trip per insert — keep the
  // sample small enough to stay polite on slow media.
  const double naive = timed_ops_per_sec(
      CrpDurabilityOptions::Mode::kFsyncPerOp, kOps / 8);
  std::printf("\n  durable insert throughput (1 shard, %u ops)\n", kOps);
  std::printf("  %-22s %14s\n", "mode", "ops/sec");
  std::printf("  %-22s %14.0f\n", "group-commit WAL", group);
  std::printf("  %-22s %14.0f\n", "fsync per op", naive);
  std::printf("  group-commit speedup: %.1fx %s\n", group / naive,
              group / naive >= 10.0 ? "(>= 10x target met)"
                                    : "(below 10x target!)");

  constexpr std::uint32_t kEntries = 16384;
  std::printf("\n  cold-start recovery (%u CRPs, CRPs/sec)\n", kEntries);
  std::printf("  %-8s %16s %16s\n", "shards", "WAL replay", "snapshot");
  for (const std::size_t shards : {1, 2, 4, 8}) {
    const double walrate =
        timed_recovery_crps_per_sec(shards, kEntries, false);
    const double snaprate =
        timed_recovery_crps_per_sec(shards, kEntries, true);
    std::printf("  %-8zu %16.0f %16.0f\n", shards, walrate, snaprate);
  }
  neuropuls::bench::note(
      "replay is per-shard over common::parallel; shard scaling needs cores");
}

void BM_CrpStoreGroupCommit(benchmark::State& state) {
  constexpr std::uint32_t kOps = 512;
  for (auto _ : state) {
    state.PauseTiming();
    const io::TempDir dir("np-bench-crp-store");
    state.ResumeTiming();
    CrpDatabase db(1, durable_in(dir.path(),
                                 CrpDurabilityOptions::Mode::kGroupCommit));
    for (std::uint32_t i = 0; i < kOps; ++i) db.insert(make_crp(i));
    db.sync();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kOps);
}
BENCHMARK(BM_CrpStoreGroupCommit)->Unit(benchmark::kMillisecond);

void BM_CrpStoreFsyncPerOp(benchmark::State& state) {
  constexpr std::uint32_t kOps = 64;
  for (auto _ : state) {
    state.PauseTiming();
    const io::TempDir dir("np-bench-crp-store");
    state.ResumeTiming();
    CrpDatabase db(1, durable_in(dir.path(),
                                 CrpDurabilityOptions::Mode::kFsyncPerOp));
    for (std::uint32_t i = 0; i < kOps; ++i) db.insert(make_crp(i));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kOps);
}
BENCHMARK(BM_CrpStoreFsyncPerOp)->Unit(benchmark::kMillisecond);

void run_recovery_case(benchmark::State& state, bool snapshot) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  constexpr std::uint32_t kEntries = 8192;
  const io::TempDir dir("np-bench-crp-store");
  build_store(dir.path(), shards, kEntries, snapshot);
  for (auto _ : state) {
    const CrpDatabase db(
        shards,
        durable_in(dir.path(), CrpDurabilityOptions::Mode::kGroupCommit));
    benchmark::DoNotOptimize(db.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kEntries);
}

void BM_CrpStoreRecoveryWal(benchmark::State& state) {
  run_recovery_case(state, false);
}
BENCHMARK(BM_CrpStoreRecoveryWal)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_CrpStoreRecoverySnapshot(benchmark::State& state) {
  run_recovery_case(state, true);
}
BENCHMARK(BM_CrpStoreRecoverySnapshot)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

NEUROPULS_BENCH_MAIN(print_tables)
