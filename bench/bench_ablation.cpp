// Ablation study — the photonic-PUF design decisions DESIGN.md calls out:
//   A. input fan-out tree        (always on in the shipped design; the
//                                 single-port variant is approximated by
//                                 what the aliasing metric shows)
//   B. calibrated thresholds     (calibration_challenges = 0 vs 63)
//   C. phase vs amplitude keying (modulator.phase_modulation)
//   D. microring memory          (design.with_rings)
//
// For each variant we report the four numbers that decide whether the
// device is a usable strong PUF: inter-device HD (uniqueness), challenge
// sensitivity, reliability intra-HD, and LR-attack accuracy.
#include <memory>

#include "attacks/ml_attack.hpp"
#include "bench_util.hpp"
#include "crypto/chacha20.hpp"
#include "puf/photonic_puf.hpp"

namespace {

using namespace neuropuls;

struct AblationRow {
  double uniqueness = 0.0;
  double sensitivity = 0.0;
  double intra = 0.0;
  double ml_accuracy = 0.0;
};

AblationRow measure(const puf::PhotonicPufConfig& cfg) {
  AblationRow row;
  crypto::ChaChaDrbg rng(crypto::bytes_of("ablate"));
  const std::size_t cb = cfg.challenge_bits / 8;

  // Uniqueness over 6 devices x 3 challenges.
  std::vector<std::unique_ptr<puf::PhotonicPuf>> devices;
  for (int d = 0; d < 6; ++d) {
    devices.push_back(std::make_unique<puf::PhotonicPuf>(cfg, 31337, d));
  }
  int pairs = 0;
  for (int t = 0; t < 3; ++t) {
    const puf::Challenge c = rng.generate(cb);
    for (int a = 0; a < 6; ++a) {
      for (int b = a + 1; b < 6; ++b) {
        row.uniqueness += crypto::fractional_hamming_distance(
            devices[a]->evaluate_noiseless(c),
            devices[b]->evaluate_noiseless(c));
        ++pairs;
      }
    }
  }
  row.uniqueness /= pairs;

  // Challenge sensitivity and reliability on device 0.
  auto& dev = *devices[0];
  int n = 0;
  for (int t = 0; t < 10; ++t) {
    const auto c1 = rng.generate(cb);
    const auto c2 = rng.generate(cb);
    row.sensitivity += crypto::fractional_hamming_distance(
        dev.evaluate_noiseless(c1), dev.evaluate_noiseless(c2));
    ++n;
  }
  row.sensitivity /= n;
  const puf::Challenge c = rng.generate(cb);
  const auto ref = dev.evaluate_noiseless(c);
  for (int t = 0; t < 10; ++t) {
    row.intra += crypto::fractional_hamming_distance(dev.evaluate(c), ref);
  }
  row.intra /= 10;

  attacks::AttackConfig ml;
  ml.training_crps = 1500;
  ml.test_crps = 250;
  row.ml_accuracy =
      attacks::mean_attack_accuracy(dev, attacks::raw_feature_map(), ml, 4);
  return row;
}

void print_tables() {
  bench::banner("Ablation", "Photonic-PUF design decisions (DESIGN.md)");
  auto base = puf::small_photonic_config();

  struct Variant {
    const char* name;
    puf::PhotonicPufConfig cfg;
  };
  std::vector<Variant> variants;
  variants.push_back({"shipped design", base});

  auto no_calib = base;
  no_calib.calibration_challenges = 0;
  variants.push_back({"no calibration", no_calib});

  auto amplitude = base;
  amplitude.modulator.phase_modulation = false;
  amplitude.modulator.extinction_ratio_db = 20.0;
  variants.push_back({"amplitude keying", amplitude});

  auto no_rings = base;
  no_rings.design.with_rings = false;
  variants.push_back({"no ring memory", no_rings});

  auto slow_bits = base;
  slow_bits.samples_per_bit = 8;
  variants.push_back({"8 samples/bit", slow_bits});

  std::printf("  %-20s %-12s %-13s %-12s %-12s\n", "variant", "uniqueness",
              "sensitivity", "intra-HD", "LR attack");
  for (const auto& v : variants) {
    const AblationRow row = measure(v.cfg);
    std::printf("  %-20s %-12.3f %-13.3f %-12.3f %-12.3f\n", v.name,
                row.uniqueness, row.sensitivity, row.intra, row.ml_accuracy);
  }
  bench::note("targets: uniqueness/sensitivity ~0.5, intra small, LR ~0.5. "
              "No calibration: bits are static offsets -> trivially "
              "learnable (LR=1.0). Amplitude keying: linear component "
              "leaks (LR~0.8). No ring memory: a *global* phase carries "
              "no information into |field|^2, so margins collapse to "
              "detector noise (intra ~0.5) — the paper's reservoir memory "
              "is what makes coherent phase keying readable at all.");
}

void BM_ShippedEvaluate(benchmark::State& state) {
  puf::PhotonicPuf device(puf::small_photonic_config(), 1, 0);
  const puf::Challenge c(2, 0x5A);
  for (auto _ : state) {
    benchmark::DoNotOptimize(device.evaluate_noiseless(c));
  }
}
BENCHMARK(BM_ShippedEvaluate)->Unit(benchmark::kMicrosecond);

void BM_RinglessEvaluate(benchmark::State& state) {
  auto cfg = puf::small_photonic_config();
  cfg.design.with_rings = false;
  puf::PhotonicPuf device(cfg, 1, 0);
  const puf::Challenge c(2, 0x5A);
  for (auto _ : state) {
    benchmark::DoNotOptimize(device.evaluate_noiseless(c));
  }
}
BENCHMARK(BM_RinglessEvaluate)->Unit(benchmark::kMicrosecond);

}  // namespace

NEUROPULS_BENCH_MAIN(print_tables)
