// E3 / Table I — load_network / execute_network: the encrypted
// hardware-boundary API, its overhead vs plaintext operation, and the
// engine comparison (digital vs photonic MVM).
#include <cmath>

#include "accel/secure_api.hpp"
#include "bench_util.hpp"

namespace {

using namespace neuropuls;
using accel::MlpNetwork;

const crypto::Bytes kKey = crypto::bytes_of("bench device key");

MlpNetwork network_of(std::size_t width, std::size_t depth) {
  std::vector<std::size_t> sizes(depth + 1, width);
  sizes.back() = 10;
  return accel::make_random_network(sizes, 7);
}

void print_tableI_roundtrip() {
  bench::banner("E3 / Table I", "Encrypted API round trip and blob sizes");
  std::printf("  %-22s %-14s %-16s %-16s\n", "network (layers)",
              "parameters", "plain blob (B)", "ciphered (B)");
  for (std::size_t width : {16ul, 64ul, 128ul}) {
    const MlpNetwork network = network_of(width, 3);
    const auto plain = accel::serialize_network(network);
    const auto ciphered =
        accel::SecureAccelerator::encrypt_network(network, kKey, 1);
    std::printf("  %zux%-19zu %-14zu %-16zu %-16zu\n", width, 3ul,
                network.parameter_count(), plain.size(), ciphered.size());
  }
  bench::note("ciphertext overhead = 16 B nonce + 16 B tag, independent of "
              "network size; plaintext never crosses the API.");
}

void print_engine_accuracy() {
  bench::banner("E3 / Table I", "Digital vs photonic MVM engine");
  const MlpNetwork network = network_of(64, 3);
  std::vector<double> input(64);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = std::sin(0.37 * static_cast<double>(i));
  }
  accel::Accelerator digital(std::make_unique<accel::DigitalMvm>());
  digital.load(network);
  const auto exact = digital.infer(input);

  std::printf("  %-14s %-18s %-18s %-16s\n", "weight bits",
              "rel. output error", "energy/MAC (pJ)", "energy ratio");
  for (unsigned bits : {4u, 6u, 8u, 10u}) {
    accel::PhotonicMvmConfig cfg;
    cfg.weight_bits = bits;
    accel::Accelerator photonic(
        std::make_unique<accel::PhotonicMvm>(cfg, 99));
    photonic.load(network);
    const auto analog = photonic.infer(input);
    double err = 0.0, scale = 1e-12;
    for (std::size_t i = 0; i < exact.size(); ++i) {
      err += std::fabs(exact[i] - analog[i]);
      scale += std::fabs(exact[i]);
    }
    const double digital_pj =
        4.6;  // DigitalMvm default energy per MAC
    std::printf("  %-14u %-18.4f %-18.3f %-16.1f\n", bits, err / scale,
                cfg.energy_per_mac_pj, digital_pj / cfg.energy_per_mac_pj);
  }
  bench::note("the photonic engine trades bounded analog error for ~100x "
              "lower energy per MAC — the accelerator's reason to exist.");
}

void print_tables() {
  print_tableI_roundtrip();
  print_engine_accuracy();
}

void BM_LoadNetworkSecure(benchmark::State& state) {
  const MlpNetwork network =
      network_of(static_cast<std::size_t>(state.range(0)), 3);
  const auto ciphered =
      accel::SecureAccelerator::encrypt_network(network, kKey, 1);
  accel::SecureAccelerator device(std::make_unique<accel::DigitalMvm>(),
                                  common::SecretBytes::copy_of(kKey));
  for (auto _ : state) {
    device.load_network(ciphered);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ciphered.size()));
}
BENCHMARK(BM_LoadNetworkSecure)->Arg(16)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

void BM_ExecuteNetworkSecure(benchmark::State& state) {
  const MlpNetwork network =
      network_of(static_cast<std::size_t>(state.range(0)), 3);
  accel::SecureAccelerator device(std::make_unique<accel::DigitalMvm>(),
                                  common::SecretBytes::copy_of(kKey));
  device.load_network(
      accel::SecureAccelerator::encrypt_network(network, kKey, 1));
  const std::vector<double> input(network.input_size(), 0.5);
  std::uint64_t nonce = 100;
  for (auto _ : state) {
    const auto ciphered =
        accel::SecureAccelerator::encrypt_input(input, kKey, ++nonce);
    benchmark::DoNotOptimize(device.execute_network(ciphered));
  }
}
BENCHMARK(BM_ExecuteNetworkSecure)->Arg(16)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMicrosecond);

void BM_ExecuteNetworkPlaintextBaseline(benchmark::State& state) {
  const MlpNetwork network =
      network_of(static_cast<std::size_t>(state.range(0)), 3);
  accel::Accelerator device(std::make_unique<accel::DigitalMvm>());
  device.load(network);
  const std::vector<double> input(network.input_size(), 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(device.infer(input));
  }
}
BENCHMARK(BM_ExecuteNetworkPlaintextBaseline)->Arg(16)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMicrosecond);

void BM_PhotonicEngineInfer(benchmark::State& state) {
  const MlpNetwork network = network_of(64, 3);
  accel::Accelerator device(
      std::make_unique<accel::PhotonicMvm>(accel::PhotonicMvmConfig{}, 3));
  device.load(network);
  const std::vector<double> input(64, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(device.infer(input));
  }
}
BENCHMARK(BM_PhotonicEngineInfer)->Unit(benchmark::kMicrosecond);

}  // namespace

NEUROPULS_BENCH_MAIN(print_tables)
