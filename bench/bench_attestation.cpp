// E5 / §III-B — Attestation: runtime vs memory size, the pPUF-speed
// claim, and honest-vs-memory-hiding timing margins.
#include "bench_util.hpp"
#include "core/attestation.hpp"
#include "puf/photonic_puf.hpp"

namespace {

using namespace neuropuls;

void print_scaling_table() {
  bench::banner("E5 / §III-B", "Attestation time vs device memory size");
  core::AttestationConfig config;
  core::AttestationCostModel cost;
  std::printf("  %-16s %-18s %-22s\n", "memory", "chunks",
              "honest time (ms, model)");
  for (std::size_t kib : {64ul, 256ul, 1024ul, 4096ul, 16384ul}) {
    const std::size_t bytes = kib * 1024;
    const double t =
        core::honest_attestation_time_ns(bytes, config, cost) / 1e6;
    std::printf("  %-16s %-18zu %-22.2f\n",
                (std::to_string(kib) + " KiB").c_str(),
                bytes / config.chunk_size, t);
  }
  bench::note("linear in memory size: the walk visits every chunk once.");
}

void print_puf_speed_table() {
  bench::banner("E5 / §III-B",
                "pPUF speed vs per-chunk hash time (\"never slows down\")");
  core::AttestationConfig config;
  std::printf("  %-26s %-22s %-14s\n", "pPUF response time (ns)",
              "attest time 1 MiB (ms)", "slowdown");
  core::AttestationCostModel base;
  const double reference =
      core::honest_attestation_time_ns(1 << 20, config, base);
  for (double puf_ns : {0.0, 60.0, 500.0, 1360.0, 5000.0, 20000.0}) {
    core::AttestationCostModel cost = base;
    cost.puf_response_ns = puf_ns;
    const double t = core::honest_attestation_time_ns(1 << 20, config, cost);
    char slowdown[24];
    std::snprintf(slowdown, sizeof slowdown, "%.2fx", t / reference);
    std::printf("  %-26.0f %-22.2f %-14s\n", puf_ns, t / 1e6, slowdown);
  }
  bench::note("below the per-chunk hash time (~1.4 us) the pPUF is free; "
              "the photonic PUF's interrogation is tens of ns.");
}

void print_attack_margin_table() {
  bench::banner("E5 / §III-B",
                "Honest vs memory-hiding attacker vs time bound");
  const auto cfg = puf::small_photonic_config();
  puf::PhotonicPuf device_puf(cfg, 55, 0);
  puf::PhotonicPuf model(cfg, 55, 0);
  crypto::ChaChaDrbg rng(crypto::bytes_of("e5"));
  crypto::Bytes memory = rng.generate(64 * 1024);

  core::AttestationConfig config;
  config.chunk_size = 1024;
  core::AttestVerifier verifier(model, memory, config,
                                core::AttestationCostModel{});

  std::printf("  %-26s %-10s %-10s %-10s\n", "device", "digest", "time",
              "accepted");
  struct Case {
    const char* name;
    bool corrupt;
    double overhead;
  };
  for (const Case& c : {Case{"honest", false, 1.0},
                        Case{"corrupted (no hiding)", true, 1.0},
                        Case{"hiding @1.15x", true, 1.15},
                        Case{"hiding @1.6x", true, 1.6},
                        Case{"hiding @2.5x", true, 2.5}}) {
    core::AttestDevice device(device_puf, memory, config);
    if (c.corrupt) {
      device.corrupt_memory(12345, 0xEE);
      if (c.overhead > 1.0) {
        device.enable_memory_hiding(memory, c.overhead);
      }
    }
    const auto request = rng.generate(1);  // advance rng deterministically
    (void)request;
    crypto::ChaChaDrbg session_rng(crypto::bytes_of("e5s"));
    const auto msg = verifier.start(1, 1000, session_rng);
    const auto report = device.handle_request(msg);
    const double elapsed =
        verifier.honest_time_ns() * device.last_time_factor();
    const auto outcome = verifier.check(*report, elapsed);
    std::printf("  %-26s %-10s %-10s %-10s\n", c.name,
                outcome.digest_ok ? "ok" : "BAD",
                outcome.time_ok ? "ok" : "OVER",
                outcome.accepted ? "yes" : "no");
  }
  bench::note("the 1.15x hider slips under the 1.3x bound but only by "
              "keeping a full pristine copy — the classic space/time "
              "trade-off the bound parameterises.");
}

void print_tables() {
  print_scaling_table();
  print_puf_speed_table();
  print_attack_margin_table();
}

void BM_AttestationDigest(benchmark::State& state) {
  const auto cfg = puf::small_photonic_config();
  puf::PhotonicPuf device_puf(cfg, 55, 0);
  crypto::ChaChaDrbg rng(crypto::bytes_of("e5b"));
  const crypto::Bytes memory =
      rng.generate(static_cast<std::size_t>(state.range(0)));
  const puf::Challenge c1(device_puf.challenge_bytes(), 0x42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::attestation_digest(memory, device_puf, 7, c1, 1024));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_AttestationDigest)->Arg(16 << 10)->Arg(64 << 10)->Arg(256 << 10)
    ->Unit(benchmark::kMillisecond);

}  // namespace

NEUROPULS_BENCH_MAIN(print_tables)
