// E11 / §II-B — Thermal sensitivity: response BER vs temperature drift,
// with and without the paper's two mitigations (photonic temperature
// sensor compensation, closed-loop temperature control), plus the §IV
// laser-power attack surface.
#include <vector>

#include "bench_util.hpp"
#include "common/parallel.hpp"
#include "crypto/chacha20.hpp"
#include "photonic/thermal.hpp"
#include "puf/photonic_puf.hpp"

namespace {

using namespace neuropuls;

void print_drift_sweep() {
  bench::banner("E11 / §II-B", "Response error vs temperature drift");
  auto cfg = puf::small_photonic_config();
  cfg.challenge_bits = 32;
  const puf::PhotonicPuf device(cfg, 66, 0);
  crypto::ChaChaDrbg rng(crypto::bytes_of("e11"));
  const puf::Challenge c = rng.generate(4);
  const puf::Response reference = device.evaluate_noiseless(c);  // at 300 K

  photonic::PhotonicTemperatureSensor sensor(0.05, 9);
  photonic::TemperatureController controller(300.0, 0.95, sensor);
  photonic::PhotonicTemperatureSensor verifier_sensor(0.05, 10);
  const puf::PhotonicPuf verifier_model(cfg, 66, 0);  // §II-B model path

  // The controller and the verifier sensor consume Gaussian noise per
  // reading, so their draws run sequentially in row order; the pure
  // model evaluations (the expensive part) then fan out over the pool.
  const std::vector<double> ambients = {300.0, 302.0, 305.0,
                                        310.0, 320.0, 340.0};
  std::vector<double> regulated(ambients.size());
  std::vector<double> sensed(ambients.size());
  for (std::size_t i = 0; i < ambients.size(); ++i) {
    regulated[i] = controller.regulate(ambients[i]);
    sensed[i] = verifier_sensor.read(ambients[i]);
  }
  struct Row {
    double raw = 0.0;
    double controlled = 0.0;
    double compensated = 0.0;
  };
  std::vector<Row> rows(ambients.size());
  common::parallel_for(ambients.size(), [&](std::size_t i) {
    rows[i].raw = crypto::fractional_hamming_distance(
        device.evaluate_noiseless_at(c, ambients[i]), reference);
    rows[i].controlled = crypto::fractional_hamming_distance(
        device.evaluate_noiseless_at(c, regulated[i]), reference);
    // Verifier-side compensation: evaluate the model at the sensor
    // reading instead of comparing against the enrollment response.
    rows[i].compensated = crypto::fractional_hamming_distance(
        device.evaluate_noiseless_at(c, ambients[i]),
        verifier_model.evaluate_noiseless_at(c, sensed[i]));
  });

  std::printf("  %-14s %-18s %-22s %-24s\n", "ambient (K)", "uncontrolled",
              "controller (0.95)", "model compensation");
  for (std::size_t i = 0; i < ambients.size(); ++i) {
    std::printf("  %-14.0f %-18.3f %-22.3f %-24.3f\n", ambients[i],
                rows[i].raw, rows[i].controlled, rows[i].compensated);
  }
  bench::note("three §II-B mitigations: closed-loop control shrinks the "
              "die excursion; sensor-driven model compensation (verifier "
              "evaluates its pPUF model at the reported temperature) "
              "cancels the drift to the sensor-accuracy floor.");
}

void print_laser_power_sweep() {
  bench::banner("E11 / §IV", "Laser-power alteration attack surface");
  auto cfg = puf::small_photonic_config();
  cfg.challenge_bits = 32;
  puf::PhotonicPuf device(cfg, 66, 1);
  crypto::ChaChaDrbg rng(crypto::bytes_of("e11p"));
  const puf::Challenge c = rng.generate(4);
  device.set_laser_power_scale(1.0);
  const puf::Response reference = device.evaluate_noiseless(c);

  std::printf("  %-18s %-18s\n", "power scale", "bits flipped");
  for (double scale : {0.5, 0.8, 0.95, 1.0, 1.05, 1.3, 2.0, 4.0}) {
    device.set_laser_power_scale(scale);
    const double d = crypto::fractional_hamming_distance(
        device.evaluate_noiseless(c), reference);
    std::printf("  %-18.2f %-18.3f\n", scale, d);
  }
  bench::note("power alteration perturbs calibrated margins but reveals "
              "structure only gradually — and a genuine verifier's "
              "responses stay valid only near nominal power, so gross "
              "alterations are detectable.");
}

void print_tables() {
  print_drift_sweep();
  print_laser_power_sweep();
}

void BM_EvaluateAcrossTemperature(benchmark::State& state) {
  puf::PhotonicPuf device(puf::small_photonic_config(), 66, 2);
  const puf::Challenge c(2, 0x77);
  double t = 295.0;
  for (auto _ : state) {
    device.set_temperature(t);
    benchmark::DoNotOptimize(device.evaluate_noiseless(c));
    t += 0.5;
    if (t > 320.0) t = 295.0;
  }
}
BENCHMARK(BM_EvaluateAcrossTemperature)->Unit(benchmark::kMicrosecond);

// Whole temperature sweep through the pool (Arg = pool width): one model
// evaluation per sweep point, items = sweep points.
void BM_ThermalSweepBatch(benchmark::State& state) {
  const puf::PhotonicPuf device(puf::small_photonic_config(), 66, 2);
  common::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  const puf::Challenge c(2, 0x77);
  constexpr std::size_t kPoints = 64;
  std::vector<puf::Response> sweep(kPoints);
  for (auto _ : state) {
    pool.parallel_for(kPoints, [&](std::size_t i) {
      sweep[i] = device.evaluate_noiseless_at(
          c, 295.0 + 0.5 * static_cast<double>(i));
    });
    benchmark::DoNotOptimize(sweep);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kPoints));
}
BENCHMARK(BM_ThermalSweepBatch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(static_cast<int>(common::ThreadPool::default_thread_count()))
    ->Unit(benchmark::kMillisecond);

void BM_ThermalEnvironmentStep(benchmark::State& state) {
  photonic::ThermalEnvironment env(300.0, 0.1, 0.05, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.step());
  }
}
BENCHMARK(BM_ThermalEnvironmentStep);

}  // namespace

NEUROPULS_BENCH_MAIN(print_tables)
