// E11 / §II-B — Thermal sensitivity: response BER vs temperature drift,
// with and without the paper's two mitigations (photonic temperature
// sensor compensation, closed-loop temperature control), plus the §IV
// laser-power attack surface.
#include "bench_util.hpp"
#include "crypto/chacha20.hpp"
#include "photonic/thermal.hpp"
#include "puf/photonic_puf.hpp"

namespace {

using namespace neuropuls;

double response_ber_at(puf::PhotonicPuf& device, const puf::Challenge& c,
                       const puf::Response& reference, double kelvin) {
  device.set_temperature(kelvin);
  return crypto::fractional_hamming_distance(device.evaluate_noiseless(c),
                                             reference);
}

void print_drift_sweep() {
  bench::banner("E11 / §II-B", "Response error vs temperature drift");
  auto cfg = puf::small_photonic_config();
  cfg.challenge_bits = 32;
  puf::PhotonicPuf device(cfg, 66, 0);
  crypto::ChaChaDrbg rng(crypto::bytes_of("e11"));
  const puf::Challenge c = rng.generate(4);
  const puf::Response reference = device.evaluate_noiseless(c);  // at 300 K

  photonic::PhotonicTemperatureSensor sensor(0.05, 9);
  photonic::TemperatureController controller(300.0, 0.95, sensor);
  photonic::PhotonicTemperatureSensor verifier_sensor(0.05, 10);
  const puf::PhotonicPuf verifier_model(cfg, 66, 0);  // §II-B model path

  std::printf("  %-14s %-18s %-22s %-24s\n", "ambient (K)", "uncontrolled",
              "controller (0.95)", "model compensation");
  for (double ambient : {300.0, 302.0, 305.0, 310.0, 320.0, 340.0}) {
    const double raw = response_ber_at(device, c, reference, ambient);
    const double regulated_temp = controller.regulate(ambient);
    const double controlled =
        response_ber_at(device, c, reference, regulated_temp);
    // Verifier-side compensation: evaluate the model at the sensor
    // reading instead of comparing against the enrollment response.
    device.set_temperature(ambient);
    const double sensed = verifier_sensor.read(ambient);
    const double compensated = crypto::fractional_hamming_distance(
        device.evaluate_noiseless(c),
        verifier_model.evaluate_noiseless_at(c, sensed));
    std::printf("  %-14.0f %-18.3f %-22.3f %-24.3f\n", ambient, raw,
                controlled, compensated);
  }
  device.set_temperature(300.0);
  bench::note("three §II-B mitigations: closed-loop control shrinks the "
              "die excursion; sensor-driven model compensation (verifier "
              "evaluates its pPUF model at the reported temperature) "
              "cancels the drift to the sensor-accuracy floor.");
}

void print_laser_power_sweep() {
  bench::banner("E11 / §IV", "Laser-power alteration attack surface");
  auto cfg = puf::small_photonic_config();
  cfg.challenge_bits = 32;
  puf::PhotonicPuf device(cfg, 66, 1);
  crypto::ChaChaDrbg rng(crypto::bytes_of("e11p"));
  const puf::Challenge c = rng.generate(4);
  device.set_laser_power_scale(1.0);
  const puf::Response reference = device.evaluate_noiseless(c);

  std::printf("  %-18s %-18s\n", "power scale", "bits flipped");
  for (double scale : {0.5, 0.8, 0.95, 1.0, 1.05, 1.3, 2.0, 4.0}) {
    device.set_laser_power_scale(scale);
    const double d = crypto::fractional_hamming_distance(
        device.evaluate_noiseless(c), reference);
    std::printf("  %-18.2f %-18.3f\n", scale, d);
  }
  bench::note("power alteration perturbs calibrated margins but reveals "
              "structure only gradually — and a genuine verifier's "
              "responses stay valid only near nominal power, so gross "
              "alterations are detectable.");
}

void print_tables() {
  print_drift_sweep();
  print_laser_power_sweep();
}

void BM_EvaluateAcrossTemperature(benchmark::State& state) {
  puf::PhotonicPuf device(puf::small_photonic_config(), 66, 2);
  const puf::Challenge c(2, 0x77);
  double t = 295.0;
  for (auto _ : state) {
    device.set_temperature(t);
    benchmark::DoNotOptimize(device.evaluate_noiseless(c));
    t += 0.5;
    if (t > 320.0) t = 295.0;
  }
}
BENCHMARK(BM_EvaluateAcrossTemperature)->Unit(benchmark::kMicrosecond);

void BM_ThermalEnvironmentStep(benchmark::State& state) {
  photonic::ThermalEnvironment env(300.0, 0.1, 0.05, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.step());
  }
}
BENCHMARK(BM_ThermalEnvironmentStep);

}  // namespace

NEUROPULS_BENCH_MAIN(print_tables)
