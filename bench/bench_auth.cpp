// E2 / Fig. 4 — Mutual-authentication protocol: session cost and verifier
// storage scaling vs the classical CRP-database baseline.
//
// Paper claims reproduced:
//   * "this protocol only needs one CRP to be known by the Verifier at
//     any point, which is more scalable than other solutions that require
//     a large database of CRPs" — the storage table;
//   * lightweight session: a handful of hash/MAC/DRBG operations — the
//     timing cases.
#include "bench_util.hpp"
#include "core/mutual_auth.hpp"
#include "crypto/sha256.hpp"
#include "puf/crp_db.hpp"
#include "puf/photonic_puf.hpp"

namespace {

using namespace neuropuls;

struct AuthFixture {
  std::unique_ptr<puf::PhotonicPuf> puf;
  std::unique_ptr<core::AuthDevice> device;
  std::unique_ptr<core::AuthVerifier> verifier;
};

AuthFixture make_fixture() {
  AuthFixture f;
  f.puf = std::make_unique<puf::PhotonicPuf>(puf::small_photonic_config(),
                                             2024, 0);
  crypto::ChaChaDrbg rng(crypto::bytes_of("bench-auth"));
  const auto provisioned = core::provision(*f.puf, rng);
  const crypto::Bytes memory(4096, 0xA5);
  f.device = std::make_unique<core::AuthDevice>(*f.puf,
                                                provisioned.device_crp, memory);
  f.verifier = std::make_unique<core::AuthVerifier>(
      provisioned.verifier_secret, crypto::Sha256::hash(memory),
      f.puf->challenge_bytes());
  return f;
}

void print_storage_table() {
  bench::banner("E2 / Fig. 4",
                "Verifier storage: HSC-IoT (one CRP) vs CRP-database baseline");
  puf::PhotonicPuf device_puf(puf::small_photonic_config(), 2024, 1);
  const std::size_t crp_bytes =
      device_puf.challenge_bytes() + device_puf.response_bytes();
  std::printf("  %-24s %-22s %-22s\n", "sessions supported",
              "HSC-IoT storage (B)", "CRP database (B)");
  for (std::size_t sessions : {10ul, 100ul, 1000ul, 10000ul, 100000ul}) {
    // HSC-IoT: one response + one fallback, independent of session count.
    const std::size_t hsc = 2 * device_puf.response_bytes();
    const std::size_t db = sessions * crp_bytes;
    std::printf("  %-24zu %-22zu %-22zu\n", sessions, hsc, db);
  }
  bench::note("HSC-IoT state is O(1); the Suh-style database is O(sessions) "
              "and is consumed (one CRP burned per session).");
}

void print_session_trace() {
  bench::banner("E2 / Fig. 4", "Protocol session trace (message sizes)");
  AuthFixture f = make_fixture();
  net::DuplexChannel channel;
  channel.send(net::Direction::kAtoB, f.verifier->start(1, 0xBEEF));
  const auto request = channel.receive(net::Direction::kAtoB);
  const auto response = f.device->handle_request(*request);
  channel.send(net::Direction::kBtoA, *response);
  const auto delivered = channel.receive(net::Direction::kBtoA);
  const auto outcome = f.verifier->process_response(*delivered);
  channel.send(net::Direction::kAtoB, *outcome.confirm);
  const auto confirm = channel.receive(net::Direction::kAtoB);
  (void)f.device->handle_confirm(*confirm);

  std::printf("  %-28s %-12s %-8s\n", "message", "direction", "bytes");
  for (const auto& entry : channel.transcript()) {
    std::printf("  %-28s %-12s %-8zu\n",
                net::message_type_name(entry.message.type).c_str(),
                entry.direction == net::Direction::kAtoB ? "V -> D" : "D -> V",
                entry.message.payload.size());
  }
  std::printf("  session result: %s, memory hash ok: %s\n",
              outcome.status == core::AuthStatus::kOk ? "authenticated" : "FAILED",
              outcome.memory_hash_ok ? "yes" : "no");
}

void print_tables() {
  print_storage_table();
  print_session_trace();
}

void BM_FullAuthSession(benchmark::State& state) {
  AuthFixture f = make_fixture();
  net::DuplexChannel channel;
  std::uint64_t session = 0;
  for (auto _ : state) {
    ++session;
    benchmark::DoNotOptimize(core::run_auth_session(
        *f.verifier, *f.device, channel, session, session * 7));
  }
}
BENCHMARK(BM_FullAuthSession)->Unit(benchmark::kMicrosecond);

void BM_DeviceResponseOnly(benchmark::State& state) {
  AuthFixture f = make_fixture();
  std::uint64_t session = 0;
  for (auto _ : state) {
    ++session;
    const auto request = f.verifier->start(session, session);
    benchmark::DoNotOptimize(f.device->handle_request(request));
  }
}
BENCHMARK(BM_DeviceResponseOnly)->Unit(benchmark::kMicrosecond);

void BM_CrpDatabaseEnrollment(benchmark::State& state) {
  puf::PhotonicPuf device_puf(puf::small_photonic_config(), 2024, 2);
  crypto::ChaChaDrbg rng(crypto::bytes_of("bench-db"));
  const auto crps = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    puf::CrpDatabase db;
    db.enroll(device_puf, crps, rng, 1);
    benchmark::DoNotOptimize(db.storage_bytes());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CrpDatabaseEnrollment)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond)->Complexity(benchmark::oN);

}  // namespace

NEUROPULS_BENCH_MAIN(print_tables)
