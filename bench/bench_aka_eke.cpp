// E9 / §IV — EKE AKA vs HSC-IoT: handshake cost ("computationally more
// expensive"), forward secrecy, and the offline-attack elimination.
#include "attacks/brute_force.hpp"
#include "bench_util.hpp"
#include "core/aka_eke.hpp"
#include "core/secure_channel.hpp"
#include "core/mutual_auth.hpp"
#include "crypto/sha256.hpp"
#include "puf/photonic_puf.hpp"

#include <chrono>

namespace {

using namespace neuropuls;

double measure_ms(const std::function<void()>& fn, int reps) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count() / reps;
}

void print_cost_table() {
  bench::banner("E9 / §IV", "Handshake cost: HSC-IoT vs EKE AKA");
  const crypto::Bytes secret = crypto::bytes_of("current CRP response");

  // HSC-IoT session.
  puf::PhotonicPuf device_puf(puf::small_photonic_config(), 77, 0);
  crypto::ChaChaDrbg rng(crypto::bytes_of("e9"));
  const auto provisioned = core::provision(device_puf, rng);
  const crypto::Bytes memory(1024, 0x11);
  core::AuthDevice device(device_puf, provisioned.device_crp, memory);
  core::AuthVerifier verifier(provisioned.verifier_secret,
                              crypto::Sha256::hash(memory),
                              device_puf.challenge_bytes());
  net::DuplexChannel channel;
  std::uint64_t session = 0;
  const double hsc_ms = measure_ms(
      [&] {
        ++session;
        core::run_auth_session(verifier, device, channel, session, session);
      },
      20);

  const double eke1536_ms = measure_ms(
      [&] {
        core::run_eke_handshake(secret, secret, crypto::DhGroup::modp1536(),
                                1, ++session);
      },
      3);
  const double eke2048_ms = measure_ms(
      [&] {
        core::run_eke_handshake(secret, secret, crypto::DhGroup::modp2048(),
                                1, ++session);
      },
      3);

  std::printf("  %-26s %-16s %-16s %-10s\n", "protocol", "time (ms)",
              "vs HSC-IoT", "PFS");
  std::printf("  %-26s %-16.3f %-16s %-10s\n", "HSC-IoT mutual auth", hsc_ms,
              "1x", "no");
  auto ratio = [](double r) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "%.0fx", r);
    return std::string(buf);
  };
  std::printf("  %-26s %-16.3f %-16s %-10s\n", "EKE AKA (1536-bit group)",
              eke1536_ms, ratio(eke1536_ms / hsc_ms).c_str(), "yes");
  std::printf("  %-26s %-16.3f %-16s %-10s\n", "EKE AKA (2048-bit group)",
              eke2048_ms, ratio(eke2048_ms / hsc_ms).c_str(), "yes");
  bench::note("the paper's trade: EKE is orders of magnitude more compute "
              "(modexp-dominated) but adds perfect forward secrecy and "
              "kills offline dictionary attacks on the CRP.");
}

void print_guessing_table() {
  bench::banner("E9 / §IV", "Attacker guessing economics");
  std::printf("  %-34s %-20s\n", "quantity", "value");
  std::printf("  %-34s %-20.1e\n", "expected guesses (32-bit CRP)",
              attacks::expected_guesses(32));
  std::printf("  %-34s %-20.1e\n",
              "online success, 1e6 attempts (32b)",
              attacks::online_guess_success(32, 1'000'000));
  std::printf("  %-34s %-20.1e\n",
              "EKE rate reduction (1e9 H/s -> 1/s)",
              attacks::eke_rate_reduction(1e9, 1.0));
  bench::note("under EKE every password guess costs a live protocol run: "
              "the attacker loses the 1e9x offline speedup.");
}

void print_tables() {
  print_cost_table();
  print_guessing_table();
}

void BM_EkeHandshake1536(benchmark::State& state) {
  const crypto::Bytes secret = crypto::bytes_of("crp");
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_eke_handshake(
        secret, secret, crypto::DhGroup::modp1536(), 1, ++seed));
  }
}
BENCHMARK(BM_EkeHandshake1536)->Unit(benchmark::kMillisecond);

void BM_EkeHandshake2048(benchmark::State& state) {
  const crypto::Bytes secret = crypto::bytes_of("crp");
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_eke_handshake(
        secret, secret, crypto::DhGroup::modp2048(), 1, ++seed));
  }
}
BENCHMARK(BM_EkeHandshake2048)->Unit(benchmark::kMillisecond);

void BM_Modexp2048(benchmark::State& state) {
  const auto& group = crypto::DhGroup::modp2048();
  crypto::ChaChaDrbg rng(crypto::bytes_of("modexp"));
  const auto pair = crypto::dh_generate(group, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::modexp(group.generator, pair.secret, group.prime));
  }
}
BENCHMARK(BM_Modexp2048)->Unit(benchmark::kMillisecond);

void BM_HscIotSession(benchmark::State& state) {
  puf::PhotonicPuf device_puf(puf::small_photonic_config(), 77, 1);
  crypto::ChaChaDrbg rng(crypto::bytes_of("e9b"));
  const auto provisioned = core::provision(device_puf, rng);
  const crypto::Bytes memory(1024, 0x11);
  core::AuthDevice device(device_puf, provisioned.device_crp, memory);
  core::AuthVerifier verifier(provisioned.verifier_secret,
                              crypto::Sha256::hash(memory),
                              device_puf.challenge_bytes());
  net::DuplexChannel channel;
  std::uint64_t session = 0;
  for (auto _ : state) {
    ++session;
    benchmark::DoNotOptimize(
        core::run_auth_session(verifier, device, channel, session, session));
  }
}
BENCHMARK(BM_HscIotSession)->Unit(benchmark::kMicrosecond);

void BM_SecureChannelRecord(benchmark::State& state) {
  // Bulk data over the AKA-keyed secure channel (seal + open round trip).
  const crypto::Bytes secret = crypto::bytes_of("crp");
  auto handshake = core::run_eke_handshake(
      secret, secret, crypto::DhGroup::modp1536(), 1, 7);
  core::SecureChannel sender(std::move(handshake.initiator.session_key), true);
  core::SecureChannel receiver(std::move(handshake.responder.session_key),
                               false);
  const crypto::Bytes payload(static_cast<std::size_t>(state.range(0)), 0x5C);
  for (auto _ : state) {
    const auto record = sender.seal(payload);
    benchmark::DoNotOptimize(receiver.open(record));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SecureChannelRecord)->Arg(256)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

NEUROPULS_BENCH_MAIN(print_tables)
